#include <cmath>

#include "graph/ccam.h"
#include "graph/dijkstra.h"
#include "graph/object_set.h"
#include "graph/road_network.h"
#include "gtest/gtest.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "tests/test_util.h"

namespace dsks {
namespace {

using ::dsks::testing::MakeRandomDataset;

/// The running example of the paper (Fig. 2 style): a small network whose
/// distances we can verify by hand.
std::unique_ptr<RoadNetwork> MakePaperishNetwork() {
  auto net = std::make_unique<RoadNetwork>();
  // A 2x3 grid with unit spacing 10.
  //  n3 - n4 - n5
  //  |    |    |
  //  n0 - n1 - n2
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      net->AddNode(Point{10.0 * c, 10.0 * r});
    }
  }
  EdgeId e;
  EXPECT_TRUE(net->AddEdge(0, 1, -1, &e).ok());
  EXPECT_TRUE(net->AddEdge(1, 2, -1, &e).ok());
  EXPECT_TRUE(net->AddEdge(3, 4, -1, &e).ok());
  EXPECT_TRUE(net->AddEdge(4, 5, -1, &e).ok());
  EXPECT_TRUE(net->AddEdge(0, 3, -1, &e).ok());
  EXPECT_TRUE(net->AddEdge(1, 4, -1, &e).ok());
  EXPECT_TRUE(net->AddEdge(2, 5, -1, &e).ok());
  net->Finalize();
  return net;
}

TEST(RoadNetworkTest, RejectsInvalidEdges) {
  RoadNetwork net;
  net.AddNode({0, 0});
  net.AddNode({1, 0});
  EdgeId e;
  EXPECT_TRUE(net.AddEdge(0, 5, -1, &e).IsInvalidArgument());
  EXPECT_TRUE(net.AddEdge(0, 0, -1, &e).IsInvalidArgument());
}

TEST(RoadNetworkTest, ReferenceNodeIsSmallerId) {
  RoadNetwork net;
  net.AddNode({0, 0});
  net.AddNode({10, 0});
  EdgeId e;
  ASSERT_TRUE(net.AddEdge(1, 0, -1, &e).ok());  // reversed on purpose
  EXPECT_EQ(net.edge(e).n1, 0u);
  EXPECT_EQ(net.edge(e).n2, 1u);
  EXPECT_DOUBLE_EQ(net.edge(e).length, 10.0);
  EXPECT_DOUBLE_EQ(net.edge(e).weight, 10.0);  // defaulting to length
}

TEST(RoadNetworkTest, CustomWeightIsProportionalAlongEdge) {
  RoadNetwork net;
  net.AddNode({0, 0});
  net.AddNode({10, 0});
  EdgeId e;
  ASSERT_TRUE(net.AddEdge(0, 1, 40.0, &e).ok());  // travel time != length
  net.Finalize();
  // w(n1, p) = w * d(n1,p)/d(n1,n2) (the footnote of §2.1).
  EXPECT_DOUBLE_EQ(net.WeightFromN1(e, 2.5), 10.0);
  EXPECT_DOUBLE_EQ(net.WeightFromN2(e, 2.5), 30.0);
}

TEST(RoadNetworkTest, NeighborsAreComplete) {
  auto net = MakePaperishNetwork();
  EXPECT_EQ(net->Neighbors(0).size(), 2u);
  EXPECT_EQ(net->Neighbors(1).size(), 3u);
  EXPECT_EQ(net->Neighbors(4).size(), 3u);
  // Every edge appears in exactly two adjacency lists.
  size_t total = 0;
  for (NodeId v = 0; v < net->num_nodes(); ++v) {
    total += net->Neighbors(v).size();
  }
  EXPECT_EQ(total, 2 * net->num_edges());
}

TEST(RoadNetworkTest, ProjectOntoEdgeClampsToSegment) {
  auto net = MakePaperishNetwork();
  // Edge 0 connects (0,0)-(10,0).
  Point snapped;
  double dist;
  const double off = net->ProjectOntoEdge(0, Point{4, 3}, &snapped, &dist);
  EXPECT_DOUBLE_EQ(off, 4.0);
  EXPECT_DOUBLE_EQ(dist, 3.0);
  const double off2 = net->ProjectOntoEdge(0, Point{-5, 1}, &snapped, &dist);
  EXPECT_DOUBLE_EQ(off2, 0.0);  // clamped to the endpoint
}

TEST(DijkstraTest, HandComputedDistances) {
  auto net = MakePaperishNetwork();
  const auto dist = DijkstraFromNode(*net, 0);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 10.0);
  EXPECT_DOUBLE_EQ(dist[2], 20.0);
  EXPECT_DOUBLE_EQ(dist[3], 10.0);
  EXPECT_DOUBLE_EQ(dist[4], 20.0);
  EXPECT_DOUBLE_EQ(dist[5], 30.0);
}

TEST(DijkstraTest, LocationToLocationSameEdgeDirect) {
  auto net = MakePaperishNetwork();
  const double d = ExactNetworkDistance(*net, NetworkLocation{0, 2.0},
                                        NetworkLocation{0, 9.0});
  EXPECT_DOUBLE_EQ(d, 7.0);
}

TEST(DijkstraTest, LocationCrossEdge) {
  auto net = MakePaperishNetwork();
  // Point 2 units into edge 0 (from n0) to point 3 units into edge 1
  // (edge 1 connects n1-n2, reference n1): path via n1 = 8 + 3 = 11.
  const double d = ExactNetworkDistance(*net, NetworkLocation{0, 2.0},
                                        NetworkLocation{1, 3.0});
  EXPECT_DOUBLE_EQ(d, 11.0);
}

class DijkstraPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DijkstraPropertyTest, MatchesFloydWarshall) {
  NetworkGenConfig nc;
  nc.num_nodes = 60;
  nc.edge_node_ratio = 1.5;
  nc.seed = GetParam();
  auto net = GenerateRoadNetwork(nc);
  const auto fw = FloydWarshall(*net);
  for (NodeId s = 0; s < net->num_nodes(); s += 7) {
    const auto d = DijkstraFromNode(*net, s);
    for (NodeId v = 0; v < net->num_nodes(); ++v) {
      ASSERT_NEAR(d[v], fw[s][v], 1e-9) << "s=" << s << " v=" << v;
    }
  }
}

TEST_P(DijkstraPropertyTest, BoundedDijkstraIsPrefixOfFull) {
  auto data = MakeRandomDataset(GetParam(), 120, 50);
  const RoadNetwork& net = *data.network;
  const NetworkLocation loc{0, net.edge(0).length / 3.0};
  const double radius = 900.0;
  const auto bounded = BoundedDijkstraFromLocation(net, loc, radius);
  const auto full = BoundedDijkstraFromLocation(net, loc, kInfDistance);
  for (const auto& [v, d] : bounded) {
    ASSERT_NEAR(d, full.at(v), 1e-9);
    EXPECT_LE(d, radius + 1e-9);
  }
  // Everything the full run settles within the radius is present.
  for (const auto& [v, d] : full) {
    if (d <= radius) {
      EXPECT_TRUE(bounded.count(v)) << "node " << v << " missing";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraPropertyTest,
                         ::testing::Values(21, 22, 23, 24, 25));

TEST(ObjectSetTest, AddValidatesInput) {
  auto net = MakePaperishNetwork();
  ObjectSet objects(net.get());
  ObjectId id;
  EXPECT_TRUE(objects.Add(99, 0.0, {1}, &id).IsInvalidArgument());
  EXPECT_TRUE(objects.Add(0, -1.0, {1}, &id).IsInvalidArgument());
  EXPECT_TRUE(objects.Add(0, 99.0, {1}, &id).IsInvalidArgument());
  EXPECT_TRUE(objects.Add(0, 5.0, {}, &id).IsInvalidArgument());
  EXPECT_TRUE(objects.Add(0, 5.0, {3, 1, 3}, &id).ok());
  // Terms are sorted and deduplicated.
  EXPECT_EQ(objects.object(id).terms, (std::vector<TermId>{1, 3}));
}

TEST(ObjectSetTest, ObjectsOnEdgeSortedByOffset) {
  auto net = MakePaperishNetwork();
  ObjectSet objects(net.get());
  ObjectId a;
  ObjectId b;
  ObjectId c;
  ASSERT_TRUE(objects.Add(0, 7.0, {1}, &a).ok());
  ASSERT_TRUE(objects.Add(0, 2.0, {2}, &b).ok());
  ASSERT_TRUE(objects.Add(0, 4.5, {3}, &c).ok());
  objects.Finalize();
  const auto on_edge = objects.ObjectsOnEdge(0);
  ASSERT_EQ(on_edge.size(), 3u);
  EXPECT_EQ(on_edge[0], b);
  EXPECT_EQ(on_edge[1], c);
  EXPECT_EQ(on_edge[2], a);
  EXPECT_TRUE(objects.ObjectsOnEdge(3).empty());
}

TEST(ObjectSetTest, TermMembership) {
  auto net = MakePaperishNetwork();
  ObjectSet objects(net.get());
  ObjectId id;
  ASSERT_TRUE(objects.Add(1, 1.0, {2, 5, 9}, &id).ok());
  objects.Finalize();
  EXPECT_TRUE(objects.ObjectHasTerm(id, 5));
  EXPECT_FALSE(objects.ObjectHasTerm(id, 4));
  const std::vector<TermId> q1{2, 9};
  const std::vector<TermId> q2{2, 4};
  EXPECT_TRUE(objects.ObjectHasAllTerms(id, q1));
  EXPECT_FALSE(objects.ObjectHasAllTerms(id, q2));
  EXPECT_EQ(objects.TotalTermOccurrences(), 3u);
}

class CcamPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CcamPropertyTest, AdjacencyRoundTripsThroughDisk) {
  NetworkGenConfig nc;
  nc.num_nodes = 500;
  nc.edge_node_ratio = 1.6;
  nc.seed = GetParam();
  auto net = GenerateRoadNetwork(nc);

  DiskManager disk;
  CcamFile file = CcamFileBuilder::Build(*net, &disk);
  EXPECT_GT(file.num_pages(), 1u);
  BufferPool pool(&disk, 64);
  CcamGraph graph(&file, &pool);

  std::vector<AdjacentEdge> got;
  for (NodeId v = 0; v < net->num_nodes(); ++v) {
    graph.GetAdjacency(v, &got);
    const auto want = net->Neighbors(v);
    ASSERT_EQ(got.size(), want.size()) << "node " << v;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].neighbor, want[i].neighbor);
      EXPECT_EQ(got[i].edge, want[i].edge);
      EXPECT_DOUBLE_EQ(got[i].weight, want[i].weight);
    }
  }
}

TEST_P(CcamPropertyTest, ZOrderPackingKeepsSpatialLocality) {
  NetworkGenConfig nc;
  nc.num_nodes = 900;
  nc.edge_node_ratio = 1.4;
  nc.seed = GetParam();
  auto net = GenerateRoadNetwork(nc);
  DiskManager disk;
  CcamFile file = CcamFileBuilder::Build(*net, &disk);

  // Locality metric: fraction of edges whose endpoints share a page. With
  // Z-order packing this must be far above the random-placement baseline
  // (pages hold ~60+ nodes of ~900, so random co-location would be <10%).
  size_t co_located = 0;
  for (const Edge& e : net->edges()) {
    if (file.PageOfNode(e.n1) == file.PageOfNode(e.n2)) {
      ++co_located;
    }
  }
  const double frac =
      static_cast<double>(co_located) / static_cast<double>(net->num_edges());
  EXPECT_GT(frac, 0.35) << "CCAM locality collapsed";
}

INSTANTIATE_TEST_SUITE_P(Seeds, CcamPropertyTest,
                         ::testing::Values(31, 32, 33));

class CcamPlacementTest : public ::testing::TestWithParam<uint64_t> {};

/// All three placement policies must serve identical adjacency data; the
/// connectivity ratio must order refined >= z-order >> random.
TEST_P(CcamPlacementTest, PoliciesAgreeOnDataAndOrderOnLocality) {
  NetworkGenConfig nc;
  nc.num_nodes = 800;
  nc.edge_node_ratio = 1.5;
  nc.seed = GetParam();
  auto net = GenerateRoadNetwork(nc);

  struct Variant {
    CcamPlacement placement;
    double ratio;
  };
  std::vector<Variant> variants = {{CcamPlacement::kRandom, 0},
                                   {CcamPlacement::kZOrder, 0},
                                   {CcamPlacement::kZOrderRefined, 0}};
  for (Variant& v : variants) {
    DiskManager disk;
    CcamFile file = CcamFileBuilder::Build(*net, &disk, v.placement);
    v.ratio = CcamConnectivityRatio(*net, file);
    BufferPool pool(&disk, 4096);
    CcamGraph graph(&file, &pool);
    std::vector<AdjacentEdge> got;
    for (NodeId n = 0; n < net->num_nodes(); n += 13) {
      graph.GetAdjacency(n, &got);
      const auto want = net->Neighbors(n);
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].neighbor, want[i].neighbor);
        EXPECT_DOUBLE_EQ(got[i].weight, want[i].weight);
      }
    }
  }
  const double random = variants[0].ratio;
  const double zorder = variants[1].ratio;
  const double refined = variants[2].ratio;
  EXPECT_GT(zorder, 2.0 * random) << "Z-order lost its locality edge";
  EXPECT_GE(refined, zorder) << "refinement must not hurt locality";
}

INSTANTIATE_TEST_SUITE_P(Seeds, CcamPlacementTest,
                         ::testing::Values(41, 42, 43));

TEST(CcamTest, ChargesOnePageReadPerColdAccess) {
  NetworkGenConfig nc;
  nc.num_nodes = 400;
  nc.seed = 5;
  auto net = GenerateRoadNetwork(nc);
  DiskManager disk;
  CcamFile file = CcamFileBuilder::Build(*net, &disk);
  BufferPool pool(&disk, 128);
  CcamGraph graph(&file, &pool);
  disk.mutable_stats()->Reset();

  std::vector<AdjacentEdge> adj;
  graph.GetAdjacency(0, &adj);
  EXPECT_EQ(disk.stats().reads, 1u);
  graph.GetAdjacency(0, &adj);  // now cached
  EXPECT_EQ(disk.stats().reads, 1u);
}

}  // namespace
}  // namespace dsks
