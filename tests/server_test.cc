// Query service + TCP front end: the wire protocol parses and renders
// correctly, admission control sheds exactly, deadlines cancel
// cooperatively with partial work accounted, per-tenant quotas hold,
// micro-batching is result-transparent, and the whole thing survives
// concurrent clients and malformed input over a real socket.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "datagen/presets.h"
#include "datagen/workload.h"
#include "gtest/gtest.h"
#include "harness/database.h"
#include "harness/experiment.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/json.h"
#include "server/query_server.h"
#include "server/query_service.h"

namespace dsks {
namespace {

using server::JsonValue;
using server::JsonWriter;
using server::QueryClient;
using server::QueryServer;
using server::QueryService;
using server::ServerConfig;
using server::ServiceConfig;
using server::ServiceCounters;

// ---------------------------------------------------------------------------
// JSON protocol units

TEST(JsonTest, ParsesScalarsObjectsAndArrays) {
  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse(
                  R"({"a":1,"b":-2.5e2,"c":"x","d":true,"e":null,)"
                  R"("f":[1,2,3],"g":{"h":false}})",
                  &v)
                  .ok());
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.Find("a")->number(), 1.0);
  EXPECT_DOUBLE_EQ(v.Find("b")->number(), -250.0);
  EXPECT_EQ(v.Find("c")->string_value(), "x");
  EXPECT_TRUE(v.Find("d")->bool_value());
  EXPECT_TRUE(v.Find("e")->is_null());
  ASSERT_TRUE(v.Find("f")->is_array());
  EXPECT_EQ(v.Find("f")->array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.Find("f")->array()[1].number(), 2.0);
  ASSERT_TRUE(v.Find("g")->is_object());
  EXPECT_FALSE(v.Find("g")->Find("h")->bool_value());
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonTest, ParsesStringEscapes) {
  JsonValue v;
  ASSERT_TRUE(
      JsonValue::Parse(R"({"s":"a\"b\\c\nd\teA"})", &v).ok());
  EXPECT_EQ(v.Find("s")->string_value(), "a\"b\\c\nd\teA");
}

TEST(JsonTest, RejectsMalformedInputWithBytePosition) {
  JsonValue v;
  const Status s = JsonValue::Parse(R"({"a":})", &v);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("at byte"), std::string::npos) << s.ToString();

  EXPECT_TRUE(JsonValue::Parse("", &v).IsInvalidArgument());
  EXPECT_TRUE(JsonValue::Parse("{", &v).IsInvalidArgument());
  EXPECT_TRUE(JsonValue::Parse("nul", &v).IsInvalidArgument());
  EXPECT_TRUE(JsonValue::Parse("1 2", &v).IsInvalidArgument());  // trailing
  EXPECT_TRUE(JsonValue::Parse(R"({"a":1)", &v).IsInvalidArgument());
  EXPECT_TRUE(JsonValue::Parse("[1,]", &v).IsInvalidArgument());
  EXPECT_TRUE(JsonValue::Parse("Infinity", &v).IsInvalidArgument());
  EXPECT_TRUE(JsonValue::Parse("\"unterminated", &v).IsInvalidArgument());
}

TEST(JsonTest, DepthCapStopsDegenerateNesting) {
  std::string deep;
  for (int i = 0; i < 64; ++i) {
    deep += "[";
  }
  JsonValue v;
  const Status s = JsonValue::Parse(deep, &v);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("deep"), std::string::npos);
}

TEST(JsonTest, WriterRoundTripsThroughParser) {
  JsonWriter w;
  w.BeginObject();
  w.Key("n").Value(0.1);
  w.Key("i").Value(static_cast<uint64_t>(42));
  w.Key("s").Value(std::string("he said \"hi\"\n"));
  w.Key("b").Value(true);
  w.Key("z").Null();
  w.Key("a").BeginArray().Value(1.5).Value(false).EndArray();
  w.Key("o").BeginObject().Key("k").Value("v").EndObject();
  w.EndObject();

  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse(w.str(), &v).ok()) << w.str();
  EXPECT_DOUBLE_EQ(v.Find("n")->number(), 0.1);  // %.17g is lossless
  EXPECT_DOUBLE_EQ(v.Find("i")->number(), 42.0);
  EXPECT_EQ(v.Find("s")->string_value(), "he said \"hi\"\n");
  EXPECT_TRUE(v.Find("b")->bool_value());
  EXPECT_TRUE(v.Find("z")->is_null());
  EXPECT_DOUBLE_EQ(v.Find("a")->array()[0].number(), 1.5);
  EXPECT_EQ(v.Find("o")->Find("k")->string_value(), "v");
}

// ---------------------------------------------------------------------------
// Service + server integration against a shared database

class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig c = ScalePreset(PresetSYN(), 0.03);
    c.objects.keywords_per_object = 6;
    db_ = new Database(c);
    IndexOptions opts;
    opts.kind = IndexKind::kSIF;
    db_->BuildIndex(opts);
    db_->PrepareForQueries();

    WorkloadConfig wc;
    wc.num_queries = 16;
    wc.num_keywords = 2;
    wc.seed = 17;
    workload_ = new Workload(
        GenerateWorkload(db_->objects(), db_->term_stats(), wc));
  }
  static void TearDownTestSuite() {
    delete workload_;
    delete db_;
    workload_ = nullptr;
    db_ = nullptr;
  }

  static std::string RequestLine(const WorkloadQuery& wq,
                                 const std::string& id,
                                 double deadline_ms = 0.0,
                                 bool trace = false) {
    JsonWriter w;
    w.BeginObject();
    w.Key("op").Value("sk");
    if (!id.empty()) {
      w.Key("id").Value(id);
    }
    w.Key("terms").BeginArray();
    for (const TermId t : wq.sk.terms) {
      w.Value(static_cast<uint64_t>(t));
    }
    w.EndArray();
    w.Key("edge").Value(static_cast<uint64_t>(wq.sk.loc.edge));
    w.Key("offset").Value(wq.sk.loc.offset);
    w.Key("delta").Value(wq.sk.delta_max);
    if (deadline_ms > 0.0) {
      w.Key("deadline_ms").Value(deadline_ms);
    }
    if (trace) {
      w.Key("trace").Value(true);
    }
    w.EndObject();
    return w.Take();
  }

  /// Collects completions with a latch so tests can block on "all done".
  struct Collector {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::string> responses;
    size_t expected = 0;

    QueryService::Completion Make() {
      return [this](std::string response) {
        std::lock_guard<std::mutex> lock(mu);
        responses.push_back(std::move(response));
        cv.notify_all();
      };
    }
    void Await(size_t n) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return responses.size() >= n; });
    }
  };

  static std::string StatusOf(const std::string& response) {
    JsonValue doc;
    if (!JsonValue::Parse(response, &doc).ok()) {
      return "<unparseable: " + response + ">";
    }
    const JsonValue* status = doc.Find("status");
    return status != nullptr && status->is_string() ? status->string_value()
                                                    : "<missing>";
  }

  static Database* db_;
  static Workload* workload_;
};

Database* ServerTest::db_ = nullptr;
Workload* ServerTest::workload_ = nullptr;

TEST_F(ServerTest, ServiceRejectsMalformedRequestsBeforeAdmission) {
  ServiceConfig config;
  config.threads = 1;
  config.metrics = nullptr;
  QueryService service(db_, config);

  const std::vector<std::string> bad = {
      "not json at all",
      "{\"op\":\"sk\"}",                                // missing fields
      "{\"op\":\"nope\",\"terms\":[1]}",                // unknown op
      "{\"op\":\"sk\",\"terms\":[],\"edge\":0,\"offset\":0,\"delta\":1}",
      "{\"op\":\"sk\",\"terms\":[1],\"edge\":0,\"offset\":0,\"delta\":-5}",
      "{\"op\":\"sk\",\"terms\":[1],\"edge\":99999999,\"offset\":0,"
      "\"delta\":1}",                                   // edge out of range
      "{\"op\":\"sk\",\"terms\":[1],\"edge\":0,\"offset\":1e300,"
      "\"delta\":1}",                                   // offset off the edge
      "{\"op\":\"div\",\"terms\":[1],\"edge\":0,\"offset\":0,\"delta\":1,"
      "\"k\":0}",                                       // bad k
      "{\"op\":\"div\",\"terms\":[1],\"edge\":0,\"offset\":0,\"delta\":1,"
      "\"lambda\":2}",                                  // bad lambda
  };
  Collector col;
  for (const std::string& line : bad) {
    service.Submit(line, "t", col.Make());
  }
  col.Await(bad.size());
  for (const std::string& r : col.responses) {
    EXPECT_EQ(StatusOf(r), "INVALID_ARGUMENT") << r;
  }
  const ServiceCounters c = service.counters();
  EXPECT_EQ(c.requests, bad.size());
  EXPECT_EQ(c.invalid, bad.size());
  EXPECT_EQ(c.admitted, 0u);
  service.Stop();
}

TEST_F(ServerTest, OverloadShedsExactlyUnderEightSubmitterThreads) {
  // 8 producer threads race Submit against a 1-worker, tiny-queue service
  // whose worker is slowed by the simulated disk. Shedding must be exact:
  // every request is either admitted (and completes) or answers
  // RESOURCE_EXHAUSTED, and the two tallies meet the counters perfectly.
  setenv("DSKS_IO_DELAY_US", "200", /*overwrite=*/1);
  ScopedIoDelay delay(db_, /*yielding=*/true);
  ServiceConfig config;
  config.threads = 1;
  config.queue_capacity = 2;
  config.metrics = nullptr;
  QueryService service(db_, config);

  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 16;
  Collector col;
  std::vector<std::thread> producers;
  for (size_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        const WorkloadQuery& wq =
            workload_->queries[(t * kPerThread + i) % workload_->queries.size()];
        service.Submit(RequestLine(wq, ""), "t" + std::to_string(t),
                       col.Make());
      }
    });
  }
  for (std::thread& t : producers) {
    t.join();
  }
  col.Await(kThreads * kPerThread);  // one response per request, always
  service.Stop();
  unsetenv("DSKS_IO_DELAY_US");

  uint64_t ok = 0, shed = 0, other = 0;
  for (const std::string& r : col.responses) {
    const std::string status = StatusOf(r);
    if (status == "OK") {
      ++ok;
    } else if (status == "RESOURCE_EXHAUSTED") {
      ++shed;
    } else {
      ++other;
      ADD_FAILURE() << "unexpected response: " << r;
    }
  }
  const ServiceCounters c = service.counters();
  EXPECT_EQ(c.requests, kThreads * kPerThread);
  EXPECT_EQ(c.invalid, 0u);
  EXPECT_EQ(c.quota_denied, 0u);
  EXPECT_EQ(c.requests, c.admitted + c.shed);  // exact admission arithmetic
  EXPECT_EQ(c.admitted, c.completed);          // drained: nothing lost
  EXPECT_EQ(shed, c.shed);                     // client view == server view
  EXPECT_EQ(ok, c.admitted);
  EXPECT_GT(c.shed, 0u) << "drill did not overload; tighten the queue";
  EXPECT_EQ(other, 0u);
}

TEST_F(ServerTest, DeadlineCancelsCooperativelyWithPartialTrace) {
  // The simulated disk delay makes the query take many milliseconds; a
  // 2 ms deadline must cancel it mid-run — CANCELLED status, and the
  // requested trace still shows the phases that did run (partial work
  // stays accounted).
  setenv("DSKS_IO_DELAY_US", "500", /*overwrite=*/1);
  ScopedIoDelay delay(db_, /*yielding=*/true);
  ServiceConfig config;
  config.threads = 1;
  config.metrics = nullptr;
  QueryService service(db_, config);

  // Cold cache so the search actually pays the slow reads.
  db_->PrepareForQueries();
  Collector col;
  service.Submit(RequestLine(workload_->queries[0], "q1", /*deadline_ms=*/2.0,
                             /*trace=*/true),
                 "t", col.Make());
  col.Await(1);
  service.Stop();
  unsetenv("DSKS_IO_DELAY_US");

  JsonValue doc;
  ASSERT_TRUE(JsonValue::Parse(col.responses[0], &doc).ok())
      << col.responses[0];
  EXPECT_EQ(doc.Find("status")->string_value(), "CANCELLED")
      << col.responses[0];
  ASSERT_NE(doc.Find("trace"), nullptr) << col.responses[0];
  EXPECT_TRUE(doc.Find("trace")->is_object());
  EXPECT_EQ(service.counters().cancelled, 1u);
  // The id travels through the cancellation path too.
  EXPECT_EQ(doc.Find("id")->string_value(), "q1");
}

TEST_F(ServerTest, QuotaDeniesBeyondBurst) {
  ServiceConfig config;
  config.threads = 1;
  config.metrics = nullptr;
  config.quota.rate_qps = 1e-6;  // effectively no refill during the test
  config.quota.burst = 2.0;
  QueryService service(db_, config);

  Collector col;
  for (int i = 0; i < 4; ++i) {
    service.Submit(RequestLine(workload_->queries[0], ""), "tenant-a",
                   col.Make());
  }
  // A different tenant has its own bucket and is not affected.
  service.Submit(RequestLine(workload_->queries[0], ""), "tenant-b",
                 col.Make());
  col.Await(5);
  service.Stop();

  const ServiceCounters c = service.counters();
  EXPECT_EQ(c.quota_denied, 2u);  // 4 requests against burst 2
  EXPECT_EQ(c.admitted, 3u);      // 2 from tenant-a + 1 from tenant-b
  EXPECT_EQ(c.admitted, c.completed);
}

TEST_F(ServerTest, BatchedExecutionIsBitIdenticalToUnbatched) {
  // Reference: no batching.
  std::vector<std::string> want(3);
  {
    ServiceConfig config;
    config.threads = 1;
    config.metrics = nullptr;
    QueryService service(db_, config);
    Collector col;
    for (int i = 0; i < 3; ++i) {
      service.Submit(RequestLine(workload_->queries[i], ""), "t", col.Make());
    }
    col.Await(3);
    service.Stop();
    want = col.responses;
  }

  // Same three queries, submitted twice each within one batching window.
  ServiceConfig config;
  config.threads = 2;
  config.batch_window_ms = 50.0;
  config.metrics = nullptr;
  QueryService service(db_, config);
  Collector col;
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 3; ++i) {
      service.Submit(RequestLine(workload_->queries[i], ""), "t", col.Make());
    }
  }
  col.Await(6);
  service.Stop();

  const ServiceCounters c = service.counters();
  EXPECT_EQ(c.admitted, 6u);
  EXPECT_EQ(c.admitted, c.completed);
  EXPECT_GT(c.batches, 0u);
  EXPECT_GE(c.batched_queries, 2u);

  // Compare the query-result payload bit for bit: status, count and the
  // full results array (%.17g doubles), ignoring the volatile fields
  // (ms, io, batched).
  const auto payload = [](const std::string& response) {
    JsonValue doc;
    EXPECT_TRUE(JsonValue::Parse(response, &doc).ok()) << response;
    JsonWriter w;
    w.BeginObject();
    w.Key("status").Value(doc.Find("status")->string_value());
    w.Key("count").Value(doc.Find("count")->number());
    w.Key("results").BeginArray();
    for (const JsonValue& r : doc.Find("results")->array()) {
      w.BeginObject()
          .Key("object")
          .Value(r.Find("object")->number())
          .Key("dist")
          .Value(r.Find("dist")->number())
          .EndObject();
    }
    w.EndArray();
    w.EndObject();
    return w.Take();
  };
  std::multiset<std::string> expected, actual;
  for (const std::string& r : want) {
    expected.insert(payload(r));
    expected.insert(payload(r));  // each reference runs twice in the batch
  }
  for (const std::string& r : col.responses) {
    actual.insert(payload(r));
  }
  EXPECT_EQ(expected, actual);
}

// ---------------------------------------------------------------------------
// Over the wire

TEST_F(ServerTest, ConcurrentClientsGetTheirOwnAnswers) {
  ServerConfig sc;
  sc.service.threads = 4;
  sc.service.metrics = nullptr;
  QueryServer server(db_, sc);
  ASSERT_TRUE(server.Start(0).ok());

  constexpr size_t kClients = 4;
  constexpr size_t kQueries = 16;
  std::vector<std::map<std::string, std::string>> responses(kClients);
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      QueryClient client;
      ASSERT_TRUE(client.Connect(server.port()).ok());
      for (size_t i = 0; i < kQueries; ++i) {
        const std::string id =
            "c" + std::to_string(c) + "-" + std::to_string(i);
        ASSERT_TRUE(client
                        .SendLine(RequestLine(
                            workload_->queries[i % workload_->queries.size()],
                            id))
                        .ok());
      }
      for (size_t i = 0; i < kQueries; ++i) {
        std::string line;
        ASSERT_TRUE(client.ReadLine(&line).ok());
        JsonValue doc;
        ASSERT_TRUE(JsonValue::Parse(line, &doc).ok()) << line;
        ASSERT_NE(doc.Find("id"), nullptr) << line;
        responses[c][doc.Find("id")->string_value()] = line;
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }

  // Every client got exactly its own ids back, every answer OK.
  for (size_t c = 0; c < kClients; ++c) {
    ASSERT_EQ(responses[c].size(), kQueries);
    for (size_t i = 0; i < kQueries; ++i) {
      const std::string id = "c" + std::to_string(c) + "-" + std::to_string(i);
      ASSERT_TRUE(responses[c].count(id)) << "client " << c << " missing "
                                          << id;
      EXPECT_EQ(StatusOf(responses[c][id]), "OK") << responses[c][id];
    }
  }
  const ServiceCounters counters = server.counters();
  EXPECT_EQ(counters.requests, kClients * kQueries);
  EXPECT_EQ(counters.admitted, counters.completed);
  server.Stop();
}

TEST_F(ServerTest, MalformedLinesAnswerInvalidArgumentAndConnectionSurvives) {
  ServerConfig sc;
  sc.service.threads = 1;
  sc.service.metrics = nullptr;
  QueryServer server(db_, sc);
  ASSERT_TRUE(server.Start(0).ok());

  QueryClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  std::string response;

  ASSERT_TRUE(client.Request("this is not json", &response).ok());
  EXPECT_EQ(StatusOf(response), "INVALID_ARGUMENT") << response;

  ASSERT_TRUE(client.Request("{\"op\":\"sk\",\"terms\":[1],\"edge\":0,"
                             "\"offset\":0,\"delta\":\"wat\"}",
                             &response)
                  .ok());
  EXPECT_EQ(StatusOf(response), "INVALID_ARGUMENT") << response;

  // The connection is still perfectly usable for a valid query.
  ASSERT_TRUE(
      client.Request(RequestLine(workload_->queries[0], "ok-1"), &response)
          .ok());
  EXPECT_EQ(StatusOf(response), "OK") << response;

  const ServiceCounters c = server.counters();
  EXPECT_EQ(c.requests, 3u);
  EXPECT_EQ(c.invalid, 2u);
  EXPECT_EQ(c.admitted, 1u);
  server.Stop();
}

TEST_F(ServerTest, ObsRoutesShareTheQueryListener) {
  obs::MetricsRegistry registry;
  ServerConfig sc;
  sc.service.threads = 1;
  sc.service.metrics = &registry;
  QueryServer server(db_, sc);
  ASSERT_TRUE(server.Start(0).ok());

  // Run one query so the counters are live.
  QueryClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  std::string response;
  ASSERT_TRUE(
      client.Request(RequestLine(workload_->queries[0], "m"), &response).ok());
  EXPECT_EQ(StatusOf(response), "OK");

  // Plain HTTP GETs on the same port.
  const auto get = [&](const std::string& path) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    const std::string request = "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n";
    EXPECT_EQ(::send(fd, request.data(), request.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(request.size()));
    std::string out;
    char buf[16 * 1024];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        break;
      }
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  };

  const std::string metrics = get("/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("dsks_server_requests"), std::string::npos)
      << metrics;
  EXPECT_NE(get("/healthz").find("200 OK"), std::string::npos);
  EXPECT_NE(get("/varz").find("dsks.server.admitted"), std::string::npos);

  const std::string statusz = get("/statusz");
  EXPECT_NE(statusz.find("200 OK"), std::string::npos) << statusz;
  EXPECT_NE(statusz.find("\"admitted\":1"), std::string::npos) << statusz;

  EXPECT_NE(get("/nope").find("404"), std::string::npos);
  server.Stop();
}

TEST_F(ServerTest, SocketOverloadShedsExactlyAndMetricsStayUp) {
  obs::MetricsRegistry registry;
  setenv("DSKS_IO_DELAY_US", "200", /*overwrite=*/1);
  ScopedIoDelay delay(db_, /*yielding=*/true);
  ServerConfig sc;
  sc.service.threads = 1;
  sc.service.queue_capacity = 2;
  sc.service.metrics = &registry;
  QueryServer server(db_, sc);
  ASSERT_TRUE(server.Start(0).ok());

  constexpr size_t kClients = 8;
  constexpr size_t kQueries = 16;
  std::atomic<uint64_t> ok{0}, shed{0}, other{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      QueryClient client;
      ASSERT_TRUE(client.Connect(server.port()).ok());
      for (size_t i = 0; i < kQueries; ++i) {
        ASSERT_TRUE(
            client
                .SendLine(RequestLine(
                    workload_->queries[(c + i) % workload_->queries.size()],
                    ""))
                .ok());
      }
      for (size_t i = 0; i < kQueries; ++i) {
        std::string line;
        ASSERT_TRUE(client.ReadLine(&line, /*timeout_ms=*/60000).ok());
        const std::string status = StatusOf(line);
        if (status == "OK") {
          ++ok;
        } else if (status == "RESOURCE_EXHAUSTED") {
          ++shed;
        } else {
          ++other;
        }
      }
    });
  }
  // Observability must stay reachable while the drill hammers the server.
  std::atomic<bool> done{false};
  std::atomic<uint64_t> scrapes{0};
  std::thread scraper([&] {
    while (!done.load()) {
      QueryClient raw;
      if (raw.Connect(server.port()).ok()) {
        const std::string request =
            "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        if (::send(raw.fd(), request.data(), request.size(), MSG_NOSIGNAL) ==
            static_cast<ssize_t>(request.size())) {
          char buf[512];
          if (::recv(raw.fd(), buf, sizeof(buf), 0) > 0) {
            scrapes.fetch_add(1);
          }
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  for (std::thread& t : clients) {
    t.join();
  }
  done.store(true);
  scraper.join();
  unsetenv("DSKS_IO_DELAY_US");

  const ServiceCounters c = server.counters();
  server.Stop();
  EXPECT_EQ(c.requests, kClients * kQueries);
  EXPECT_EQ(c.requests, c.admitted + c.shed + c.invalid + c.quota_denied);
  EXPECT_EQ(c.admitted, c.completed);
  EXPECT_EQ(shed.load(), c.shed);
  EXPECT_EQ(ok.load(), c.admitted);
  EXPECT_EQ(other.load(), 0u);
  EXPECT_GT(c.shed, 0u) << "no overload reached the server";
  EXPECT_GT(scrapes.load(), 0u) << "/healthz unreachable during overload";
}

TEST_F(ServerTest, StopIsCleanAndIdempotent) {
  ServerConfig sc;
  sc.service.threads = 1;
  sc.service.metrics = nullptr;
  QueryServer server(db_, sc);
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_TRUE(server.running());
  QueryClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  std::string response;
  ASSERT_TRUE(
      client.Request(RequestLine(workload_->queries[0], "x"), &response).ok());
  EXPECT_EQ(StatusOf(response), "OK");
  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
  // A second server can bind and serve right away.
  QueryServer again(db_, sc);
  ASSERT_TRUE(again.Start(0).ok());
  again.Stop();
}

}  // namespace
}  // namespace dsks