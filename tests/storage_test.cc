#include <cstring>
#include <string>

#include "common/status.h"
#include "gtest/gtest.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage_test_util.h"

namespace dsks {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
}

TEST(DiskManagerTest, AllocateReadWriteRoundTrip) {
  dsks::testing::TestDisk disk;
  const PageId a = disk->AllocatePage();
  const PageId b = disk->AllocatePage();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(disk->num_pages(), 2u);
  EXPECT_EQ(disk->size_bytes(), 2 * kPageSize);

  char buf[kPageSize];
  std::memset(buf, 0xAB, kPageSize);
  disk->WritePage(b, buf);
  char out[kPageSize];
  disk->ReadPage(b, out);
  EXPECT_EQ(std::memcmp(buf, out, kPageSize), 0);

  // Fresh pages are zeroed.
  disk->ReadPage(a, out);
  for (size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(out[i], 0) << "at offset " << i;
  }
  EXPECT_EQ(disk->stats().reads, 2u);
  EXPECT_EQ(disk->stats().writes, 1u);
  EXPECT_EQ(disk->stats().allocations, 2u);
}

TEST(BufferPoolTest, HitAndMissAccounting) {
  dsks::testing::TestDisk disk;
  const PageId p = disk->AllocatePage();
  BufferPool pool(disk.get(), 4);

  char* data = dsks::testing::MustFetch(&pool, p);
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(pool.stats().misses, 1u);
  pool.UnpinPage(p, false);

  dsks::testing::MustFetch(&pool, p);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
  pool.UnpinPage(p, false);
  EXPECT_DOUBLE_EQ(pool.stats().hit_rate(), 0.5);
}

TEST(BufferPoolTest, StatsSnapshotAndReset) {
  dsks::testing::TestDisk disk;
  const PageId p = disk->AllocatePage();
  BufferPool pool(disk.get(), 4);
  dsks::testing::MustFetch(&pool, p);
  pool.UnpinPage(p, false);
  dsks::testing::MustFetch(&pool, p);
  pool.UnpinPage(p, false);

  // One plain-struct read of all counters together.
  const BufferPoolStatsSnapshot s = pool.stats_snapshot();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.accesses(), 2u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.5);

  const DiskStatsSnapshot d = disk->stats_snapshot();
  EXPECT_EQ(d.reads, 1u);
  EXPECT_EQ(d.allocations, 1u);

  // Reset zeroes the counters so the next phase measures a pure delta.
  pool.ResetStats();
  disk->ResetStats();
  EXPECT_EQ(pool.stats_snapshot().accesses(), 0u);
  EXPECT_DOUBLE_EQ(pool.stats_snapshot().hit_rate(), 0.0);
  EXPECT_EQ(disk->stats_snapshot().reads, 0u);
  dsks::testing::MustFetch(&pool, p);
  pool.UnpinPage(p, false);
  EXPECT_EQ(pool.stats_snapshot().hits, 1u);
  EXPECT_EQ(pool.stats_snapshot().misses, 0u);
}

TEST(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  dsks::testing::TestDisk disk;
  PageId pages[3];
  for (PageId& p : pages) p = disk->AllocatePage();
  BufferPool pool(disk.get(), 2);

  dsks::testing::MustFetch(&pool, pages[0]);
  pool.UnpinPage(pages[0], false);
  dsks::testing::MustFetch(&pool, pages[1]);
  pool.UnpinPage(pages[1], false);
  // Touch page 0 so page 1 becomes the LRU victim.
  dsks::testing::MustFetch(&pool, pages[0]);
  pool.UnpinPage(pages[0], false);

  dsks::testing::MustFetch(&pool, pages[2]);  // evicts pages[1]
  pool.UnpinPage(pages[2], false);
  EXPECT_EQ(pool.stats().evictions, 1u);

  // pages[0] must still be cached, pages[1] must not.
  const uint64_t misses_before = pool.stats().misses;
  dsks::testing::MustFetch(&pool, pages[0]);
  pool.UnpinPage(pages[0], false);
  EXPECT_EQ(pool.stats().misses, misses_before);
  dsks::testing::MustFetch(&pool, pages[1]);
  pool.UnpinPage(pages[1], false);
  EXPECT_EQ(pool.stats().misses, misses_before + 1);
}

TEST(BufferPoolTest, DirtyPageWrittenBackOnEviction) {
  dsks::testing::TestDisk disk;
  const PageId a = disk->AllocatePage();
  const PageId b = disk->AllocatePage();
  BufferPool pool(disk.get(), 1);

  char* data = dsks::testing::MustFetch(&pool, a);
  data[0] = 'x';
  pool.UnpinPage(a, /*dirty=*/true);

  dsks::testing::MustFetch(&pool, b);  // evicts a, forcing the write-back
  pool.UnpinPage(b, false);

  char out[kPageSize];
  disk->ReadPage(a, out);
  EXPECT_EQ(out[0], 'x');
}

TEST(BufferPoolTest, PinnedPagesSurviveEvictionPressure) {
  dsks::testing::TestDisk disk;
  PageId pages[4];
  for (PageId& p : pages) p = disk->AllocatePage();
  BufferPool pool(disk.get(), 2);

  char* pinned = dsks::testing::MustFetch(&pool, pages[0]);
  pinned[1] = 'p';
  // Cycle other pages through the remaining frame.
  for (int round = 0; round < 3; ++round) {
    for (int i = 1; i < 4; ++i) {
      dsks::testing::MustFetch(&pool, pages[i]);
      pool.UnpinPage(pages[i], false);
    }
  }
  // The pinned frame was never evicted: the pointer still works.
  EXPECT_EQ(pinned[1], 'p');
  pool.UnpinPage(pages[0], true);
}

TEST(BufferPoolTest, NewPageIsPinnedAndZeroed) {
  dsks::testing::TestDisk disk;
  BufferPool pool(disk.get(), 2);
  PageId id;
  char* data = pool.NewPage(&id);
  for (size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(data[i], 0);
  }
  data[7] = 'z';
  pool.UnpinPage(id, true);
  pool.FlushAll();
  char out[kPageSize];
  disk->ReadPage(id, out);
  EXPECT_EQ(out[7], 'z');
}

TEST(BufferPoolTest, SetCapacityEvictsDown) {
  dsks::testing::TestDisk disk;
  BufferPool pool(disk.get(), 8);
  for (int i = 0; i < 8; ++i) {
    PageId id;
    pool.NewPage(&id);
    pool.UnpinPage(id, true);
  }
  EXPECT_EQ(pool.num_frames_in_use(), 8u);
  pool.SetCapacity(2);
  EXPECT_LE(pool.num_frames_in_use(), 2u);
  EXPECT_EQ(pool.stats().evictions, 6u);
}

TEST(BufferPoolTest, ClearDropsCleanAndDirtyFrames) {
  dsks::testing::TestDisk disk;
  BufferPool pool(disk.get(), 4);
  PageId id;
  char* data = pool.NewPage(&id);
  data[0] = 'c';
  pool.UnpinPage(id, true);
  pool.Clear();
  EXPECT_EQ(pool.num_frames_in_use(), 0u);
  char out[kPageSize];
  disk->ReadPage(id, out);
  EXPECT_EQ(out[0], 'c');  // dirty content persisted
}

// Regression: fetching capacity+1 pages with every frame pinned used to
// CHECK-fail ("buffer pool exhausted"); the pool now over-allocates
// temporary frames and trims back as pins drain.
TEST(BufferPoolTest, AllPinnedOverflowsInsteadOfAborting) {
  dsks::testing::TestDisk disk;
  constexpr size_t kCapacity = 2;
  PageId pages[kCapacity + 1];
  for (PageId& p : pages) p = disk->AllocatePage();
  BufferPool pool(disk.get(), kCapacity);

  char* data[kCapacity + 1];
  for (size_t i = 0; i <= kCapacity; ++i) {
    data[i] = dsks::testing::MustFetch(&pool, pages[i]);
    ASSERT_NE(data[i], nullptr);
    data[i][0] = static_cast<char>('a' + i);
  }
  // All capacity+1 pages are pinned simultaneously: the pool ran over its
  // target instead of aborting, and every pointer is usable.
  EXPECT_EQ(pool.num_frames_in_use(), kCapacity + 1);
  for (size_t i = 0; i <= kCapacity; ++i) {
    EXPECT_EQ(data[i][0], static_cast<char>('a' + i));
    pool.UnpinPage(pages[i], /*dirty=*/true);
  }
  // Unpinning drained the overflow back to the capacity target.
  EXPECT_LE(pool.num_frames_in_use(), kCapacity);
  // Overflow eviction wrote the dirty overflow frame back.
  pool.FlushAll();
  char out[kPageSize];
  for (size_t i = 0; i <= kCapacity; ++i) {
    disk->ReadPage(pages[i], out);
    EXPECT_EQ(out[0], static_cast<char>('a' + i)) << "page " << i;
  }
}

// Regression: shrinking below the pinned set used to CHECK-fail; the
// shrink is now deferred and completes as pins drain.
TEST(BufferPoolTest, SetCapacityBelowPinnedSetDefersShrink) {
  dsks::testing::TestDisk disk;
  PageId pages[3];
  for (PageId& p : pages) p = disk->AllocatePage();
  BufferPool pool(disk.get(), 4);

  for (PageId p : pages) {
    dsks::testing::MustFetch(&pool, p);  // pinned
  }
  pool.SetCapacity(1);  // survives: 3 pages are pinned
  EXPECT_EQ(pool.capacity(), 1u);
  EXPECT_EQ(pool.num_frames_in_use(), 3u);

  pool.UnpinPage(pages[0], false);
  EXPECT_EQ(pool.num_frames_in_use(), 2u);  // one evicted, two still pinned
  pool.UnpinPage(pages[1], false);
  pool.UnpinPage(pages[2], false);
  EXPECT_LE(pool.num_frames_in_use(), 1u);
}

TEST(BufferPoolDeathTest, DoubleUnpinIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  dsks::testing::TestDisk disk;
  const PageId a = disk->AllocatePage();
  BufferPool pool(disk.get(), 2);
  dsks::testing::MustFetch(&pool, a);
  pool.UnpinPage(a, false);
  EXPECT_DEATH(pool.UnpinPage(a, false), "unpin of unpinned page");
}

TEST(DiskManagerDeathTest, ReadOfUnallocatedPageIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  dsks::testing::TestDisk disk;
  char buf[kPageSize];
  EXPECT_DEATH(disk->ReadPage(7, buf), "unallocated");
}

TEST(PageGuardTest, ReleasesOnDestruction) {
  dsks::testing::TestDisk disk;
  const PageId a = disk->AllocatePage();
  BufferPool pool(disk.get(), 1);
  {
    PageGuard guard = FetchForBuild(&pool, a);
    ASSERT_TRUE(guard.valid());
    guard.data()[3] = 'g';
    guard.MarkDirty();
  }
  // The pin is gone: the single frame can be reused.
  PageId b = disk->AllocatePage();
  PageGuard other = FetchForBuild(&pool, b);
  EXPECT_TRUE(other.valid());
  other.Release();
  char out[kPageSize];
  pool.FlushAll();
  disk->ReadPage(a, out);
  EXPECT_EQ(out[3], 'g');
}

TEST(PageGuardTest, MoveTransfersOwnership) {
  dsks::testing::TestDisk disk;
  const PageId a = disk->AllocatePage();
  BufferPool pool(disk.get(), 2);
  PageGuard g1 = FetchForBuild(&pool, a);
  PageGuard g2 = std::move(g1);
  EXPECT_FALSE(g1.valid());  // NOLINT(bugprone-use-after-move): intended
  EXPECT_TRUE(g2.valid());
  EXPECT_EQ(g2.id(), a);
}

}  // namespace
}  // namespace dsks
