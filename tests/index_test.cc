#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "index/inverted_file.h"
#include "index/inverted_rtree.h"
#include "index/kd_edge_order.h"
#include "index/query_log.h"
#include "index/sif.h"
#include "index/sif_group.h"
#include "index/sif_partitioned.h"
#include "index/signature.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "tests/test_util.h"

namespace dsks {
namespace {

using ::dsks::testing::MakeRandomDataset;
using ::dsks::testing::TestDataset;

/// Ground truth for LoadObjects: scan the edge, apply the AND constraint.
std::vector<LoadedObject> ReferenceLoadObjects(const ObjectSet& objects,
                                               EdgeId edge,
                                               std::span<const TermId> terms) {
  const RoadNetwork& net = objects.network();
  std::vector<LoadedObject> out;
  for (ObjectId id : objects.ObjectsOnEdge(edge)) {
    if (objects.ObjectHasAllTerms(id, terms)) {
      out.push_back(LoadedObject{
          id, net.WeightFromN1(edge, objects.object(id).offset)});
    }
  }
  return out;
}

void ExpectSameLoad(const std::vector<LoadedObject>& got,
                    const std::vector<LoadedObject>& want, EdgeId edge,
                    const std::string& name) {
  ASSERT_EQ(got.size(), want.size()) << name << " edge " << edge;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << name << " edge " << edge;
    EXPECT_NEAR(got[i].w1, want[i].w1, 1e-9) << name << " edge " << edge;
  }
}

struct IndexSweepParam {
  uint64_t seed;
  size_t vocab;
  size_t keywords;
  size_t query_terms;
};

class IndexEquivalenceTest
    : public ::testing::TestWithParam<IndexSweepParam> {};

/// The central index property: IR, IF, SIF, SIF-P and SIF-G all implement
/// Algorithm 2 — on any edge and any keyword set they must return exactly
/// the objects the direct scan returns.
TEST_P(IndexEquivalenceTest, AllIndexesMatchReferenceScan) {
  const IndexSweepParam p = GetParam();
  TestDataset data =
      MakeRandomDataset(p.seed, 120, 500, p.vocab, p.keywords, 1.0);
  const size_t vocab = p.vocab;

  DiskManager disk;
  BufferPool pool(&disk, 1u << 16);

  std::vector<std::unique_ptr<ObjectIndex>> indexes;
  indexes.push_back(
      std::make_unique<InvertedRTreeIndex>(&pool, *data.objects, vocab));
  indexes.push_back(
      std::make_unique<InvertedFileIndex>(&pool, *data.objects, vocab));
  // Force signatures for (almost) every term so the test exercises them.
  indexes.push_back(
      std::make_unique<SifIndex>(&pool, *data.objects, vocab, 1));
  SifPConfig sifp;
  sifp.max_cuts = 3;
  sifp.heavy_edge_fraction = 0.5;
  sifp.log_provider = MakeQueryLogProvider(QueryLogMode::kFrequency, {},
                                           p.query_terms, 6, p.seed);
  indexes.push_back(std::make_unique<SifPartitionedIndex>(
      &pool, *data.objects, vocab, sifp, 1));
  indexes.push_back(std::make_unique<SifGroupIndex>(&pool, *data.objects,
                                                    vocab, 10, 1));

  Random rng(p.seed ^ 0xD00D);
  std::vector<LoadedObject> got;
  for (int round = 0; round < 400; ++round) {
    const EdgeId edge =
        static_cast<EdgeId>(rng.Uniform(data.network->num_edges()));
    std::vector<TermId> terms;
    while (terms.size() < p.query_terms) {
      const TermId t = static_cast<TermId>(rng.Uniform(vocab));
      if (std::find(terms.begin(), terms.end(), t) == terms.end()) {
        terms.push_back(t);
      }
    }
    std::sort(terms.begin(), terms.end());
    const auto want = ReferenceLoadObjects(*data.objects, edge, terms);
    for (auto& index : indexes) {
      index->LoadObjects(edge, terms, &got);
      ExpectSameLoad(got, want, edge, index->name());
    }
  }
}

/// SIF must never load fewer objects than reality (no false negatives) and
/// must skip at least as many edges as IF (which skips none).
TEST_P(IndexEquivalenceTest, SignatureSkipsOnlyEmptyEdges) {
  const IndexSweepParam p = GetParam();
  TestDataset data =
      MakeRandomDataset(p.seed, 100, 400, p.vocab, p.keywords, 1.0);
  DiskManager disk;
  BufferPool pool(&disk, 1u << 16);
  SifIndex sif(&pool, *data.objects, p.vocab, 1);

  Random rng(p.seed);
  std::vector<LoadedObject> got;
  for (int round = 0; round < 300; ++round) {
    const EdgeId edge =
        static_cast<EdgeId>(rng.Uniform(data.network->num_edges()));
    std::vector<TermId> terms{static_cast<TermId>(rng.Uniform(p.vocab))};
    const uint64_t skipped_before = sif.stats().edges_skipped_by_signature;
    sif.LoadObjects(edge, terms, &got);
    const bool skipped =
        sif.stats().edges_skipped_by_signature > skipped_before;
    const auto want = ReferenceLoadObjects(*data.objects, edge, terms);
    if (skipped) {
      EXPECT_TRUE(want.empty()) << "signature skipped a non-empty edge";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IndexEquivalenceTest,
    ::testing::Values(IndexSweepParam{101, 20, 4, 2},
                      IndexSweepParam{102, 50, 6, 3},
                      IndexSweepParam{103, 12, 3, 1},
                      IndexSweepParam{104, 200, 8, 3},
                      IndexSweepParam{105, 30, 5, 4}));

TEST(SifIndexTest, FewerFalseHitObjectsThanIF) {
  TestDataset data = MakeRandomDataset(777, 150, 800, 40, 5, 1.1);
  DiskManager disk;
  BufferPool pool(&disk, 1u << 16);
  InvertedFileIndex iff(&pool, *data.objects, 40);
  SifIndex sif(&pool, *data.objects, 40, 1);

  Random rng(888);
  std::vector<LoadedObject> out;
  for (int round = 0; round < 500; ++round) {
    const EdgeId edge =
        static_cast<EdgeId>(rng.Uniform(data.network->num_edges()));
    std::vector<TermId> terms;
    while (terms.size() < 3) {
      const TermId t = static_cast<TermId>(rng.Uniform(40));
      if (std::find(terms.begin(), terms.end(), t) == terms.end()) {
        terms.push_back(t);
      }
    }
    std::sort(terms.begin(), terms.end());
    iff.LoadObjects(edge, terms, &out);
    sif.LoadObjects(edge, terms, &out);
  }
  EXPECT_LE(sif.stats().false_hit_objects, iff.stats().false_hit_objects);
  EXPECT_GT(sif.stats().edges_skipped_by_signature, 0u);
  EXPECT_EQ(iff.stats().edges_skipped_by_signature, 0u);
}

TEST(SignatureFileTest, ExactForSignedTermsPassThroughForSmall) {
  TestDataset data = MakeRandomDataset(999, 80, 300, 25, 4, 1.2);
  KdEdgeOrder order(*data.network);
  // Threshold high enough that some terms stay unsigned.
  SignatureFile sig(*data.objects, order, 25, 40);

  // Ground truth presence.
  std::vector<std::vector<bool>> present(
      25, std::vector<bool>(data.network->num_edges(), false));
  for (const auto& obj : data.objects->objects()) {
    for (TermId t : obj.terms) {
      present[t][obj.edge] = true;
    }
  }
  for (TermId t = 0; t < 25; ++t) {
    for (EdgeId e = 0; e < data.network->num_edges(); ++e) {
      if (sig.HasSignature(t)) {
        EXPECT_EQ(sig.Test(e, t), present[t][e])
            << "term " << t << " edge " << e;
      } else {
        EXPECT_TRUE(sig.Test(e, t));  // pass-through, never a false negative
      }
    }
  }
  EXPECT_GT(sig.SizeBytes(), 0u);
}

TEST(KdEdgeOrderTest, PositionsAreAPermutation) {
  TestDataset data = MakeRandomDataset(31, 200, 50, 10, 3);
  KdEdgeOrder order(*data.network);
  const size_t m = data.network->num_edges();
  std::vector<bool> seen(m, false);
  for (EdgeId e = 0; e < m; ++e) {
    const uint32_t pos = order.PositionOf(e);
    ASSERT_LT(pos, m);
    EXPECT_FALSE(seen[pos]);
    seen[pos] = true;
    EXPECT_EQ(order.EdgeAt(pos), e);
  }
}

TEST(KdEdgeOrderTest, CompactedTrieSizeBounds) {
  TestDataset data = MakeRandomDataset(32, 300, 50, 10, 3);
  KdEdgeOrder order(*data.network);
  const auto m = static_cast<uint32_t>(data.network->num_edges());

  // Uniform bitmaps compact to a single node.
  EXPECT_EQ(order.CompactedTrieNodes({}), 1u);
  std::vector<uint32_t> all(m);
  for (uint32_t i = 0; i < m; ++i) all[i] = i;
  EXPECT_EQ(order.CompactedTrieNodes(all), 1u);

  // A contiguous half compacts much better than a scattered set of the
  // same cardinality.
  std::vector<uint32_t> half(all.begin(), all.begin() + m / 2);
  std::vector<uint32_t> scattered;
  for (uint32_t i = 0; i < m; i += 2) scattered.push_back(i);
  EXPECT_LT(order.CompactedTrieNodes(half),
            order.CompactedTrieNodes(scattered));
  // Never more nodes than a full binary trie over m leaves.
  EXPECT_LE(order.CompactedTrieNodes(scattered), 4 * uint64_t{m});
}

TEST(SifGroupIndexTest, PairListsDetectMissingConjunctions) {
  TestDataset data = MakeRandomDataset(444, 100, 400, 15, 4, 1.2);
  DiskManager disk;
  BufferPool pool(&disk, 1u << 16);
  SifGroupIndex sifg(&pool, *data.objects, 15, 8, 1);
  SifIndex sif(&pool, *data.objects, 15, 1);
  EXPECT_GT(sifg.num_indexed_pairs(), 0u);
  EXPECT_GT(sifg.pair_list_bytes(), 0u);
  EXPECT_GT(sifg.SizeBytes(), sif.SizeBytes());

  Random rng(445);
  std::vector<LoadedObject> out;
  for (int round = 0; round < 400; ++round) {
    const EdgeId edge =
        static_cast<EdgeId>(rng.Uniform(data.network->num_edges()));
    std::vector<TermId> terms{static_cast<TermId>(rng.Uniform(15)),
                              static_cast<TermId>(rng.Uniform(15))};
    std::sort(terms.begin(), terms.end());
    terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
    sifg.LoadObjects(edge, terms, &out);
    const auto want = ReferenceLoadObjects(*data.objects, edge, terms);
    ExpectSameLoad(out, want, edge, "SIF-G");
  }
  // The pair lists must have pruned at least some probes beyond SIF.
  EXPECT_GT(sifg.stats().edges_skipped_by_signature, 0u);
}

struct IngestionParam {
  uint64_t seed;
  int index_kind;  // 0 = IF, 1 = SIF, 2 = SIF-P, 3 = SIF-G
};

class DynamicIngestionTest
    : public ::testing::TestWithParam<IngestionParam> {};

/// Build an index over the first half of the objects, ingest the second
/// half with AddObject, and require LoadObjects to equal the reference
/// scan over the *complete* object set on every edge.
TEST_P(DynamicIngestionTest, IngestedIndexMatchesFullReference) {
  const auto p = GetParam();
  constexpr size_t kVocab = 18;
  TestDataset full = MakeRandomDataset(p.seed, 90, 360, kVocab, 4, 1.0);
  const RoadNetwork& net = *full.network;

  // Partial snapshot: the first half of the objects, same network.
  ObjectSet partial(&net);
  const size_t half = full.objects->size() / 2;
  for (ObjectId id = 0; id < half; ++id) {
    const auto& o = full.objects->object(id);
    ObjectId out;
    ASSERT_TRUE(partial.Add(o.edge, o.offset, o.terms, &out).ok());
  }
  partial.Finalize();

  DiskManager disk;
  BufferPool pool(&disk, 1u << 16);
  std::unique_ptr<InvertedFileIndex> index;
  switch (p.index_kind) {
    case 0:
      index = std::make_unique<InvertedFileIndex>(&pool, partial, kVocab);
      break;
    case 1:
      index = std::make_unique<SifIndex>(&pool, partial, kVocab, 1);
      break;
    case 2: {
      SifPConfig cfg;
      cfg.heavy_edge_fraction = 0.5;
      cfg.log_provider =
          MakeQueryLogProvider(QueryLogMode::kFrequency, {}, 2, 6, p.seed);
      index = std::make_unique<SifPartitionedIndex>(&pool, partial, kVocab,
                                                    cfg, 1);
      break;
    }
    default:
      index = std::make_unique<SifGroupIndex>(&pool, partial, kVocab, 8, 1);
      break;
  }

  // Ingest the second half.
  for (ObjectId id = static_cast<ObjectId>(half); id < full.objects->size();
       ++id) {
    const auto& o = full.objects->object(id);
    index->AddObject(id, o.edge, net.WeightFromN1(o.edge, o.offset),
                     o.terms);
  }

  // The ingested index must answer like a scan of the full set. (Ids
  // coincide because partial ids equal full ids for the first half and
  // AddObject used the full-set ids for the rest; only w1/id matter.)
  Random rng(p.seed ^ 0x1217);
  std::vector<LoadedObject> got;
  for (int round = 0; round < 250; ++round) {
    const EdgeId edge = static_cast<EdgeId>(rng.Uniform(net.num_edges()));
    std::vector<TermId> terms;
    while (terms.size() < 2) {
      const TermId t = static_cast<TermId>(rng.Uniform(kVocab));
      if (std::find(terms.begin(), terms.end(), t) == terms.end()) {
        terms.push_back(t);
      }
    }
    std::sort(terms.begin(), terms.end());
    index->LoadObjects(edge, terms, &got);
    auto want = ReferenceLoadObjects(*full.objects, edge, terms);
    // Order may differ (ingested objects are ranked after build-time
    // ones); compare as id-sorted sets.
    auto by_id = [](const LoadedObject& a, const LoadedObject& b) {
      return a.id < b.id;
    };
    std::sort(got.begin(), got.end(), by_id);
    std::sort(want.begin(), want.end(), by_id);
    ASSERT_EQ(got.size(), want.size()) << "edge " << edge;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id);
      EXPECT_NEAR(got[i].w1, want[i].w1, 1e-9);
    }
  }
}

std::string IngestionParamName(
    const ::testing::TestParamInfo<IngestionParam>& info) {
  static const char* kNames[] = {"IF", "SIF", "SIFP", "SIFG"};
  return std::string(kNames[info.param.index_kind]) + "_seed" +
         std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DynamicIngestionTest,
    ::testing::Values(IngestionParam{901, 0}, IngestionParam{902, 1},
                      IngestionParam{903, 2}, IngestionParam{904, 3},
                      IngestionParam{905, 1}),
    IngestionParamName);

TEST(IndexSizeTest, SifAddsOnlySmallSummaryOverIF) {
  TestDataset data = MakeRandomDataset(555, 150, 1000, 60, 6, 1.1);
  DiskManager disk;
  BufferPool pool(&disk, 1u << 16);
  InvertedFileIndex iff(&pool, *data.objects, 60);
  SifIndex sif(&pool, *data.objects, 60, 1);
  // Fig. 6(c): signatures are compact relative to the inverted file.
  EXPECT_GT(sif.SizeBytes(), iff.SizeBytes());
  EXPECT_LT(static_cast<double>(sif.SizeBytes() - iff.SizeBytes()),
            0.5 * static_cast<double>(iff.SizeBytes()));
}

}  // namespace
}  // namespace dsks
