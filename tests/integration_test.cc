#include <algorithm>
#include <vector>

#include "datagen/presets.h"
#include "datagen/workload.h"
#include "gtest/gtest.h"
#include "harness/database.h"
#include "harness/experiment.h"
#include "tests/test_util.h"

namespace dsks {
namespace {

/// A preset scaled down far enough for fast end-to-end tests.
DatasetConfig TinyPreset() {
  DatasetConfig c = ScalePreset(PresetSYN(), 0.03);
  c.objects.keywords_per_object = 6;
  return c;
}

class DatabaseIntegrationTest
    : public ::testing::TestWithParam<IndexKind> {};

TEST_P(DatabaseIntegrationTest, EndToEndSkAndDivQueries) {
  Database db(TinyPreset());
  IndexOptions opts;
  opts.kind = GetParam();
  const auto info = db.BuildIndex(opts);
  EXPECT_GT(info.size_bytes, 0u);
  db.PrepareForQueries();

  WorkloadConfig wc;
  wc.num_queries = 8;
  wc.num_keywords = 2;
  wc.seed = 5;
  const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);

  for (const auto& wq : wl.queries) {
    db.ResetCounters();
    const auto results = db.RunSkQuery(wq.sk, wq.edge);
    // Verify against the brute-force reference.
    const auto want = testing::BruteForceSkSearch(db.network(), db.objects(),
                                                  wq.sk);
    ASSERT_EQ(results.size(), want.size())
        << IndexKindName(GetParam());
    // Every returned object satisfies the constraint.
    for (const auto& r : results) {
      EXPECT_TRUE(db.objects().ObjectHasAllTerms(r.id, wq.sk.terms));
    }
  }

  // Diversified queries: COM == SEQ.
  for (size_t i = 0; i < 3; ++i) {
    DivQuery dq;
    dq.sk = wl.queries[i].sk;
    dq.k = 6;
    dq.lambda = 0.8;
    const auto seq = db.RunDivQuery(dq, wl.queries[i].edge, false);
    const auto com = db.RunDivQuery(dq, wl.queries[i].edge, true);
    std::vector<ObjectId> a;
    std::vector<ObjectId> b;
    for (const auto& r : seq.selected) a.push_back(r.id);
    for (const auto& r : com.selected) b.push_back(r.id);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << IndexKindName(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, DatabaseIntegrationTest,
                         ::testing::Values(IndexKind::kIR, IndexKind::kIF,
                                           IndexKind::kSIF, IndexKind::kSIFP,
                                           IndexKind::kSIFG),
                         [](const auto& info) {
                           std::string n = IndexKindName(info.param);
                           n.erase(std::remove(n.begin(), n.end(), '-'),
                                   n.end());
                           return n;
                         });

TEST(DatabaseTest, IoCountingIsPerQuery) {
  Database db(TinyPreset());
  IndexOptions opts;
  opts.kind = IndexKind::kSIF;
  db.BuildIndex(opts);
  db.PrepareForQueries();

  WorkloadConfig wc;
  wc.num_queries = 1;
  wc.seed = 6;
  const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);
  db.ResetCounters();
  db.RunSkQuery(wl.queries[0].sk, wl.queries[0].edge);
  const uint64_t io1 = db.IoCount();
  EXPECT_GT(io1, 0u);
  db.ResetCounters();
  EXPECT_EQ(db.IoCount(), 0u);
}

TEST(DatabaseTest, SifNeverSlowerThanIfInIo) {
  // The headline §5.1 trend at tiny scale: total workload I/O of SIF is
  // below IF (signatures prune probes).
  const DatasetConfig preset = TinyPreset();
  WorkloadConfig wc;
  wc.num_queries = 12;
  wc.num_keywords = 3;
  wc.seed = 7;

  double io_if = 0.0;
  double io_sif = 0.0;
  {
    Database db(preset);
    IndexOptions o;
    o.kind = IndexKind::kIF;
    db.BuildIndex(o);
    db.PrepareForQueries();
    const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);
    io_if = RunSkWorkload(&db, wl).avg_io;
  }
  {
    Database db(preset);
    IndexOptions o;
    o.kind = IndexKind::kSIF;
    o.signature_min_postings = 1;  // sign every keyword
    db.BuildIndex(o);
    db.PrepareForQueries();
    const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);
    io_sif = RunSkWorkload(&db, wl).avg_io;
  }
  EXPECT_LE(io_sif, io_if);
}

TEST(ExperimentTest, WorkloadMetricsAreAveraged) {
  Database db(TinyPreset());
  IndexOptions opts;
  opts.kind = IndexKind::kSIF;
  db.BuildIndex(opts);
  db.PrepareForQueries();
  WorkloadConfig wc;
  wc.num_queries = 5;
  wc.seed = 8;
  const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);
  const SkWorkloadMetrics m = RunSkWorkload(&db, wl);
  EXPECT_GE(m.avg_io, 0.0);
  EXPECT_GE(m.avg_millis, 0.0);
  // The 95th percentile can never undercut the fastest query; with five
  // samples it equals the maximum, so it bounds the average from above.
  EXPECT_GE(m.p95_millis, m.avg_millis);

  const DivWorkloadMetrics dm = RunDivWorkload(&db, wl, 4, 0.8, true);
  EXPECT_GE(dm.avg_candidates, 0.0);
  EXPECT_GE(dm.avg_objective, 0.0);
  EXPECT_GE(dm.p95_millis, dm.avg_millis);
}

TEST(DatabaseTest, KnnAndRankedQueriesThroughTheFacade) {
  Database db(TinyPreset());
  IndexOptions opts;
  opts.kind = IndexKind::kSIF;
  db.BuildIndex(opts);
  db.PrepareForQueries();

  const auto& anchor = db.objects().object(17 % db.objects().size());
  SkQuery q;
  q.loc = NetworkLocation{anchor.edge, anchor.offset};
  q.terms = {anchor.terms[0]};
  q.delta_max = 2000.0;
  const QueryEdgeInfo qe = MakeQueryEdgeInfo(db.network(), q.loc);

  // kNN: prefix of the full result, closest first.
  const auto full = db.RunSkQuery(q, qe);
  const auto knn = db.RunKnnQuery(q, qe, 3);
  ASSERT_LE(knn.size(), 3u);
  ASSERT_LE(knn.size(), full.size());
  for (size_t i = 0; i < knn.size(); ++i) {
    EXPECT_NEAR(knn[i].dist, full[i].dist, 1e-9);
  }

  // Ranked: partial matches allowed, so at least as many hits compete.
  RankedQuery rq;
  rq.sk = q;
  rq.sk.terms = anchor.terms;  // several keywords, OR semantics
  rq.k = 5;
  rq.alpha = 0.5;
  const auto ranked = db.RunRankedQuery(rq, qe);
  EXPECT_FALSE(ranked.empty());
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].score, ranked[i].score + 1e-12);
  }
  // The anchor object itself matches everything at distance 0.
  EXPECT_EQ(ranked[0].id, anchor.id);
}

TEST(TablePrinterTest, FormatsRows) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  t.AddRow({TablePrinter::Fmt(3.14159, 2), TablePrinter::Fmt(2.0, 0)});
  t.Print();  // smoke: must not crash
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace dsks
