// CRC32C: the page checksum must match the published Castagnoli vectors —
// a homegrown variant would still catch bit flips, but these values are
// what makes the checksums comparable with other CRC32C implementations.
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "gtest/gtest.h"

namespace dsks {
namespace {

TEST(Crc32cTest, StandardCheckValue) {
  // The canonical CRC-32C check value (RFC 3720 / every CRC catalogue).
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xE3069283u);
}

TEST(Crc32cTest, Rfc3720Vectors) {
  // iSCSI test patterns from RFC 3720 §B.4.
  unsigned char buf[32];
  std::memset(buf, 0x00, sizeof(buf));
  EXPECT_EQ(crc32c::Value(buf, sizeof(buf)), 0x8A9136AAu);
  std::memset(buf, 0xFF, sizeof(buf));
  EXPECT_EQ(crc32c::Value(buf, sizeof(buf)), 0x62A8AB43u);
  for (size_t i = 0; i < sizeof(buf); ++i) {
    buf[i] = static_cast<unsigned char>(i);
  }
  EXPECT_EQ(crc32c::Value(buf, sizeof(buf)), 0x46DD794Eu);
  for (size_t i = 0; i < sizeof(buf); ++i) {
    buf[i] = static_cast<unsigned char>(31 - i);
  }
  EXPECT_EQ(crc32c::Value(buf, sizeof(buf)), 0x113FDB5Cu);
}

TEST(Crc32cTest, EmptyInput) {
  EXPECT_EQ(crc32c::Value("", 0), 0u);
}

TEST(Crc32cTest, ExtendComposesLikeOnePass) {
  const std::string data =
      "pages are checksummed out-of-line so their layout never changes";
  const uint32_t whole = crc32c::Value(data.data(), data.size());
  for (size_t split : {size_t{0}, size_t{1}, size_t{7}, data.size() / 2,
                       data.size() - 1, data.size()}) {
    const uint32_t head = crc32c::Value(data.data(), split);
    const uint32_t both =
        crc32c::Extend(head, data.data() + split, data.size() - split);
    EXPECT_EQ(both, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, PageSizedInputsMatchBitwiseReference) {
  // The hardware path switches to three interleaved crc32 chains for
  // inputs >= ~4 KiB (the page-verify hot path); check it against a
  // definitionally-correct bit-at-a-time reference at sizes around the
  // block boundaries and at the page size itself.
  auto reference = [](const std::vector<unsigned char>& data) {
    uint32_t crc = 0xFFFFFFFFu;
    for (unsigned char byte : data) {
      crc ^= byte;
      for (int i = 0; i < 8; ++i) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
      }
    }
    return ~crc;
  };
  uint32_t state = 0x12345678u;
  for (size_t n : {size_t{4079}, size_t{4080}, size_t{4081}, size_t{4096},
                   size_t{8192}, size_t{12240}, size_t{12241}}) {
    std::vector<unsigned char> data(n);
    for (size_t i = 0; i < n; ++i) {
      state = state * 1664525u + 1013904223u;  // LCG, any spread will do
      data[i] = static_cast<unsigned char>(state >> 24);
    }
    EXPECT_EQ(crc32c::Value(data.data(), n), reference(data)) << "n=" << n;
    // Extend() seeded from a prior sum must also cross the interleaved
    // path correctly.
    const uint32_t head = crc32c::Value(data.data(), 13);
    EXPECT_EQ(crc32c::Extend(head, data.data() + 13, n - 13), reference(data))
        << "extend n=" << n;
  }
}

TEST(Crc32cTest, EveryBitFlipChangesTheSum) {
  // The property the storage layer actually relies on: a single flipped
  // bit anywhere in a page never goes unnoticed. (True for any CRC; this
  // guards against byte-order or length bugs in the implementation.)
  std::vector<char> page(512, '\x5A');
  const uint32_t clean = crc32c::Value(page.data(), page.size());
  for (size_t bit = 0; bit < page.size() * 8; bit += 97) {
    page[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    EXPECT_NE(crc32c::Value(page.data(), page.size()), clean)
        << "flip at bit " << bit;
    page[bit / 8] ^= static_cast<char>(1u << (bit % 8));
  }
  EXPECT_EQ(crc32c::Value(page.data(), page.size()), clean);
}

}  // namespace
}  // namespace dsks
