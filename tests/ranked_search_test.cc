#include <algorithm>
#include <memory>
#include <vector>

#include "core/ranked_search.h"
#include "datagen/workload.h"
#include "graph/ccam.h"
#include "gtest/gtest.h"
#include "index/sif.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "tests/test_util.h"

namespace dsks {
namespace {

using ::dsks::testing::MakeRandomDataset;
using ::dsks::testing::TestDataset;

struct RankedFixture {
  TestDataset data;
  DiskManager disk;
  std::unique_ptr<BufferPool> pool;
  CcamFile ccam;
  std::unique_ptr<CcamGraph> graph;
  std::unique_ptr<SifIndex> index;

  explicit RankedFixture(uint64_t seed) {
    data = MakeRandomDataset(seed, 130, 450, 22, 4, 1.0);
    pool = std::make_unique<BufferPool>(&disk, 1u << 15);
    ccam = CcamFileBuilder::Build(*data.network, &disk);
    graph = std::make_unique<CcamGraph>(&ccam, pool.get());
    index = std::make_unique<SifIndex>(pool.get(), *data.objects, 22, 1);
  }
};

/// Brute-force ranked reference: exact distances, OR semantics, exact
/// scores, sorted by (score, id).
std::vector<RankedResult> BruteForceRanked(const RoadNetwork& net,
                                           const ObjectSet& objects,
                                           const RankedQuery& q) {
  std::vector<NetworkLocation> locs;
  std::vector<ObjectId> ids;
  std::vector<uint32_t> matched;
  for (const auto& obj : objects.objects()) {
    uint32_t m = 0;
    for (TermId t : q.sk.terms) {
      m += objects.ObjectHasTerm(obj.id, t) ? 1 : 0;
    }
    if (m > 0) {
      locs.push_back(NetworkLocation{obj.edge, obj.offset});
      ids.push_back(obj.id);
      matched.push_back(m);
    }
  }
  const auto dist = DistancesToLocations(net, q.sk.loc, locs);
  std::vector<RankedResult> all;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (dist[i] > q.sk.delta_max) continue;
    RankedResult r;
    r.id = ids[i];
    r.dist = dist[i];
    r.matched = matched[i];
    r.score = q.alpha * (dist[i] / q.sk.delta_max) +
              (1.0 - q.alpha) *
                  (1.0 - static_cast<double>(matched[i]) /
                             static_cast<double>(q.sk.terms.size()));
    all.push_back(r);
  }
  std::sort(all.begin(), all.end(), [](const RankedResult& a,
                                       const RankedResult& b) {
    return a.score != b.score ? a.score < b.score : a.id < b.id;
  });
  if (all.size() > q.k) {
    all.resize(q.k);
  }
  return all;
}

struct RankedSweep {
  uint64_t seed;
  size_t k;
  double alpha;
  double delta_max;
};

class RankedSearchPropertyTest
    : public ::testing::TestWithParam<RankedSweep> {};

TEST_P(RankedSearchPropertyTest, MatchesBruteForce) {
  const RankedSweep p = GetParam();
  RankedFixture fx(p.seed);
  Random rng(p.seed ^ 0xABC);

  for (int round = 0; round < 8; ++round) {
    RankedQuery q;
    q.sk.loc = testing::LocationOfObject(*fx.data.objects, rng.Uniform(450));
    while (q.sk.terms.size() < 3) {
      const TermId t = static_cast<TermId>(rng.Uniform(22));
      if (std::find(q.sk.terms.begin(), q.sk.terms.end(), t) ==
          q.sk.terms.end()) {
        q.sk.terms.push_back(t);
      }
    }
    std::sort(q.sk.terms.begin(), q.sk.terms.end());
    q.sk.delta_max = p.delta_max;
    q.k = p.k;
    q.alpha = p.alpha;

    const QueryEdgeInfo qe = MakeQueryEdgeInfo(*fx.data.network, q.sk.loc);
    RankedSearchStats stats;
    std::vector<RankedResult> got;
    ASSERT_TRUE(
        RankedSkSearch(fx.graph.get(), fx.index.get(), q, qe, &got, &stats)
            .ok());
    const auto want =
        BruteForceRanked(*fx.data.network, *fx.data.objects, q);
    ASSERT_EQ(got.size(), want.size()) << "round " << round;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id) << "round " << round << " i=" << i;
      EXPECT_NEAR(got[i].score, want[i].score, 1e-9);
      EXPECT_EQ(got[i].matched, want[i].matched);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RankedSearchPropertyTest,
    ::testing::Values(RankedSweep{501, 5, 0.5, 1200.0},
                      RankedSweep{502, 10, 0.8, 900.0},
                      RankedSweep{503, 3, 0.2, 1500.0},
                      RankedSweep{504, 8, 1.0, 2000.0},
                      RankedSweep{505, 20, 0.6, 2500.0},
                      RankedSweep{506, 1, 0.9, 800.0}));

TEST(RankedSearchTest, HighAlphaTerminatesEarly) {
  RankedFixture fx(510);
  RankedQuery q;
  q.sk.loc = testing::LocationOfObject(*fx.data.objects, 7);
  q.sk.terms = {0, 1};
  q.sk.delta_max = 5000.0;  // covers most of the network
  q.k = 3;
  q.alpha = 1.0;  // pure distance: nearest objects win immediately
  const QueryEdgeInfo qe = MakeQueryEdgeInfo(*fx.data.network, q.sk.loc);
  RankedSearchStats stats;
  std::vector<RankedResult> got;
  ASSERT_TRUE(
      RankedSkSearch(fx.graph.get(), fx.index.get(), q, qe, &got, &stats)
          .ok());
  ASSERT_EQ(got.size(), 3u);
  EXPECT_TRUE(stats.early_terminated);
  EXPECT_LT(stats.nodes_settled, fx.data.network->num_nodes());
}

TEST(RankedSearchTest, FullTextMatchOutranksCloserPartialMatch) {
  RankedFixture fx(511);
  // With alpha small, an object matching all keywords beats a nearer
  // object matching one.
  RankedQuery q;
  q.sk.loc = testing::LocationOfObject(*fx.data.objects, 99);
  q.sk.terms = {0, 1, 2};
  q.sk.delta_max = 3000.0;
  q.k = 5;
  q.alpha = 0.1;
  const QueryEdgeInfo qe = MakeQueryEdgeInfo(*fx.data.network, q.sk.loc);
  std::vector<RankedResult> got;
  ASSERT_TRUE(
      RankedSkSearch(fx.graph.get(), fx.index.get(), q, qe, &got).ok());
  ASSERT_FALSE(got.empty());
  // Results are score-sorted, and matched counts dominate under low alpha:
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_GE(got[i - 1].matched + 1, got[i].matched);
  }
}

TEST(BooleanKnnTest, ReturnsKClosestMatching) {
  RankedFixture fx(512);
  SkQuery q;
  q.loc = testing::LocationOfObject(*fx.data.objects, 3);
  q.terms = {0};
  q.delta_max = 4000.0;
  const QueryEdgeInfo qe = MakeQueryEdgeInfo(*fx.data.network, q.loc);
  std::vector<SkResult> knn;
  ASSERT_TRUE(
      BooleanKnnSearch(fx.graph.get(), fx.index.get(), q, qe, 4, &knn).ok());
  const auto all = testing::BruteForceSkSearch(*fx.data.network,
                                               *fx.data.objects, q);
  ASSERT_GE(all.size(), 4u);
  ASSERT_EQ(knn.size(), 4u);
  for (size_t i = 0; i < knn.size(); ++i) {
    EXPECT_NEAR(knn[i].dist, all[i].dist, 1e-9);
  }
}

}  // namespace
}  // namespace dsks
