#include <algorithm>
#include <limits>
#include <span>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "index/partition.h"

namespace dsks {
namespace {

/// The worked example of §3.3 / Fig. 3: five objects
/// o1(t1,t3) o2(t2,t3) o3(t1) o4(t1) o5(t1,t4) on one edge.
std::vector<std::vector<TermId>> PaperEdgeObjects() {
  return {{1, 3}, {2, 3}, {1}, {1}, {1, 4}};
}

std::vector<LogQuery> PaperQueries() {
  return {LogQuery{{1, 3}, 1.0},   // q1: true hit
          LogQuery{{2, 4}, 1.0},   // q2: false hit, all 5 loaded
          LogQuery{{1, 2}, 1.0}};  // q3: false hit, all 5 loaded
}

TEST(PartitionCostTest, MatchesPaperExampleUnpartitioned) {
  const auto objs = PaperEdgeObjects();
  const EdgePartition whole;  // no cuts
  const auto queries = PaperQueries();
  EXPECT_DOUBLE_EQ(PartitionCost(objs, whole, {&queries[0], 1}), 0.0);
  EXPECT_DOUBLE_EQ(PartitionCost(objs, whole, {&queries[1], 1}), 5.0);
  EXPECT_DOUBLE_EQ(PartitionCost(objs, whole, {&queries[2], 1}), 5.0);
  // q with a keyword absent from the edge fails the signature test: free.
  const LogQuery absent{{1, 5}, 1.0};
  EXPECT_DOUBLE_EQ(PartitionCost(objs, whole, {&absent, 1}), 0.0);
}

TEST(PartitionCostTest, MatchesPaperExamplePartitioned) {
  const auto objs = PaperEdgeObjects();
  EdgePartition p;  // e1 = {o1,o2}, e2 = {o3,o4,o5} (Fig. 3(a))
  p.boundaries = {2};
  const auto queries = PaperQueries();
  EXPECT_DOUBLE_EQ(PartitionCost(objs, p, {&queries[0], 1}), 0.0);
  EXPECT_DOUBLE_EQ(PartitionCost(objs, p, {&queries[1], 1}), 0.0);
  // q3 = {t1,t2}: e1 is a false hit of cost 2, e2 fails the test.
  EXPECT_DOUBLE_EQ(PartitionCost(objs, p, {&queries[2], 1}), 2.0);
}

TEST(GreedyPartitionTest, FindsTheBeneficialCutOnPaperExample) {
  const auto objs = PaperEdgeObjects();
  const auto queries = PaperQueries();
  const EdgePartition p = GreedyPartition(objs, queries, 1);
  ASSERT_EQ(p.boundaries.size(), 1u);
  // With one cut, splitting after o2 removes both q2's and most of q3's
  // false-hit cost; verify the greedy picked a cut at least that good.
  EdgePartition best_manual;
  best_manual.boundaries = {2};
  EXPECT_LE(PartitionCost(objs, p, queries),
            PartitionCost(objs, best_manual, queries));
}

TEST(GreedyPartitionTest, NoCutWhenNothingImproves) {
  // One object: nothing to split.
  std::vector<std::vector<TermId>> single = {{1, 2}};
  const std::vector<LogQuery> log = {LogQuery{{1, 2}, 1.0}};
  EXPECT_TRUE(GreedyPartition(single, log, 3).boundaries.empty());

  // All queries are true hits everywhere: cost is already 0.
  std::vector<std::vector<TermId>> objs = {{1}, {1}, {1}};
  const std::vector<LogQuery> log2 = {LogQuery{{1}, 1.0}};
  EXPECT_TRUE(GreedyPartition(objs, log2, 3).boundaries.empty());
}

TEST(DpPartitionTest, ZeroAndTrivialCases) {
  std::vector<std::vector<TermId>> objs = {{1}, {2}};
  const std::vector<LogQuery> log = {LogQuery{{1, 2}, 1.0}};
  EXPECT_TRUE(DpPartition(objs, log, 0).boundaries.empty());
  const EdgePartition p = DpPartition(objs, log, 1);
  // Splitting {1}|{2} kills the false hit entirely.
  EXPECT_EQ(p.boundaries.size(), 1u);
  EXPECT_DOUBLE_EQ(PartitionCost(objs, p, log), 0.0);
}

/// Exhaustive reference: try every subset of cut positions up to `cuts`.
double BruteBestCost(std::span<const std::vector<TermId>> objs,
                     std::span<const LogQuery> log, size_t cuts) {
  const size_t m = objs.size();
  double best = std::numeric_limits<double>::infinity();
  const size_t positions = m - 1;
  for (uint32_t mask = 0; mask < (1u << positions); ++mask) {
    if (static_cast<size_t>(__builtin_popcount(mask)) > cuts) {
      continue;
    }
    EdgePartition p;
    for (size_t i = 0; i < positions; ++i) {
      if (mask & (1u << i)) {
        p.boundaries.push_back(static_cast<uint16_t>(i + 1));
      }
    }
    best = std::min(best, PartitionCost(objs, p, log));
  }
  return best;
}

struct PartitionSweep {
  uint64_t seed;
  size_t m;        // objects on the edge
  size_t vocab;
  size_t cuts;
};

class PartitionPropertyTest
    : public ::testing::TestWithParam<PartitionSweep> {};

TEST_P(PartitionPropertyTest, DpIsOptimalAndGreedyIsNoBetter) {
  const auto p = GetParam();
  Random rng(p.seed);
  std::vector<std::vector<TermId>> objs(p.m);
  for (auto& terms : objs) {
    const size_t n = 1 + rng.Uniform(3);
    while (terms.size() < n) {
      const TermId t = static_cast<TermId>(rng.Uniform(p.vocab));
      if (std::find(terms.begin(), terms.end(), t) == terms.end()) {
        terms.push_back(t);
      }
    }
    std::sort(terms.begin(), terms.end());
  }
  std::vector<LogQuery> log;
  for (int q = 0; q < 6; ++q) {
    std::vector<TermId> terms;
    while (terms.size() < 2) {
      const TermId t = static_cast<TermId>(rng.Uniform(p.vocab));
      if (std::find(terms.begin(), terms.end(), t) == terms.end()) {
        terms.push_back(t);
      }
    }
    std::sort(terms.begin(), terms.end());
    log.push_back(LogQuery{std::move(terms), 1.0 / 6});
  }

  const double brute = BruteBestCost(objs, log, p.cuts);
  const EdgePartition dp = DpPartition(objs, log, p.cuts);
  EXPECT_LE(dp.boundaries.size(), p.cuts);
  EXPECT_NEAR(PartitionCost(objs, dp, log), brute, 1e-9);

  const EdgePartition greedy = GreedyPartition(objs, log, p.cuts);
  EXPECT_GE(PartitionCost(objs, greedy, log), brute - 1e-9);
  // Greedy never loses to the trivial no-cut partition.
  EXPECT_LE(PartitionCost(objs, greedy, log),
            PartitionCost(objs, EdgePartition{}, log) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionPropertyTest,
    ::testing::Values(PartitionSweep{1, 5, 5, 1},
                      PartitionSweep{2, 6, 4, 2},
                      PartitionSweep{3, 8, 6, 3},
                      PartitionSweep{4, 9, 5, 2},
                      PartitionSweep{5, 10, 8, 3},
                      PartitionSweep{6, 7, 3, 4},
                      PartitionSweep{7, 12, 6, 3}));

TEST(EdgePartitionTest, RangesTileTheEdge) {
  EdgePartition p;
  p.boundaries = {2, 5, 7};
  const size_t m = 10;
  size_t expect_start = 0;
  for (size_t i = 0; i < p.num_virtual_edges(); ++i) {
    size_t s;
    size_t e;
    p.Range(i, m, &s, &e);
    EXPECT_EQ(s, expect_start);
    EXPECT_GT(e, s);
    expect_start = e;
  }
  EXPECT_EQ(expect_start, m);
}

}  // namespace
}  // namespace dsks
