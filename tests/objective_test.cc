#include <vector>

#include "core/objective.h"
#include "gtest/gtest.h"

namespace dsks {
namespace {

TEST(ObjectiveTest, RelevanceAndDiversityRanges) {
  const Objective obj(0.8, 1000.0);
  EXPECT_DOUBLE_EQ(obj.Relevance(0.0), 1.0);
  EXPECT_DOUBLE_EQ(obj.Relevance(1000.0), 0.0);
  EXPECT_DOUBLE_EQ(obj.Diversity(0.0), 0.0);
  EXPECT_DOUBLE_EQ(obj.Diversity(2000.0), 1.0);
}

TEST(ObjectiveTest, ThetaBlendsWithLambda) {
  // λ = 1: only relevance; λ = 0: only diversity.
  const Objective rel_only(1.0, 1000.0);
  EXPECT_DOUBLE_EQ(rel_only.Theta(200, 400, 1234), (0.8 + 0.6) / 2.0);
  const Objective div_only(0.0, 1000.0);
  EXPECT_DOUBLE_EQ(div_only.Theta(200, 400, 500), 0.25);
  // Blend.
  const Objective mixed(0.8, 1000.0);
  EXPECT_DOUBLE_EQ(mixed.Theta(200, 400, 500),
                   0.8 * 0.7 + 0.2 * 0.25);
}

TEST(ObjectiveTest, UnseenPairBoundDominatesAnyRealUnseenPair) {
  const Objective obj(0.7, 1000.0);
  const double gamma = 600.0;
  const double bound = obj.ThetaUpperBoundUnseenPair(gamma);
  // Any pair of unseen objects has both distances in [gamma, delta_max]
  // and pair distance <= 2 * delta_max.
  for (double du : {600.0, 800.0, 1000.0}) {
    for (double dv : {600.0, 750.0, 1000.0}) {
      for (double duv : {0.0, 900.0, 2000.0}) {
        EXPECT_LE(obj.Theta(du, dv, duv), bound + 1e-12);
      }
    }
  }
}

TEST(ObjectiveTest, SeenUnseenBoundDominates) {
  const Objective obj(0.6, 1000.0);
  const double gamma = 500.0;
  const double dist_qo = 200.0;
  const double bound = obj.ThetaUpperBoundSeenUnseen(dist_qo, gamma);
  // The unseen side is at >= gamma; δ(o, unseen) <= δ(q,o) + δ(q,unseen)
  // <= dist_qo + delta_max.
  for (double dv : {500.0, 700.0, 1000.0}) {
    for (double duv : {0.0, 600.0, 1200.0}) {
      EXPECT_LE(obj.Theta(dist_qo, dv, duv), bound + 1e-12);
    }
  }
}

TEST(ObjectiveTest, BoundsDecreaseAsGammaGrows) {
  const Objective obj(0.8, 1000.0);
  double prev_uu = 2.0;
  double prev_su = 2.0;
  for (double gamma = 0.0; gamma <= 1000.0; gamma += 100.0) {
    const double uu = obj.ThetaUpperBoundUnseenPair(gamma);
    const double su = obj.ThetaUpperBoundSeenUnseen(300.0, gamma);
    EXPECT_LE(uu, prev_uu + 1e-12);
    EXPECT_LE(su, prev_su + 1e-12);
    prev_uu = uu;
    prev_su = su;
  }
}

TEST(ObjectiveTest, ObjectiveValueMatchesManualSum) {
  const Objective obj(0.5, 100.0);
  // Three objects at distances 10, 20, 30; pairwise 40, 60, 80.
  const std::vector<double> dq = {10, 20, 30};
  std::vector<double> pw(9, 0.0);
  auto set = [&pw](size_t u, size_t v, double d) {
    pw[u * 3 + v] = d;
    pw[v * 3 + u] = d;
  };
  set(0, 1, 40);
  set(0, 2, 60);
  set(1, 2, 80);
  double manual = 0.0;
  manual += 2 * obj.Theta(10, 20, 40);
  manual += 2 * obj.Theta(10, 30, 60);
  manual += 2 * obj.Theta(20, 30, 80);
  manual /= 6.0;
  EXPECT_NEAR(obj.ObjectiveValue(dq, pw), manual, 1e-12);
}

TEST(ObjectiveTest, DecompositionIdentity) {
  // f(S) = (λ/k)Σrel + ((1-λ)/(k(k-1)))Σ_{u≠v} div (§2.3).
  const Objective obj(0.8, 500.0);
  const std::vector<double> dq = {50, 120, 300, 410};
  const size_t k = dq.size();
  std::vector<double> pw(k * k, 0.0);
  double counter = 100.0;
  for (size_t u = 0; u < k; ++u) {
    for (size_t v = u + 1; v < k; ++v) {
      pw[u * k + v] = counter;
      pw[v * k + u] = counter;
      counter += 77.0;
    }
  }
  double rel_sum = 0.0;
  for (double d : dq) rel_sum += obj.Relevance(d);
  double div_sum = 0.0;
  for (size_t u = 0; u < k; ++u) {
    for (size_t v = 0; v < k; ++v) {
      if (u != v) div_sum += obj.Diversity(pw[u * k + v]);
    }
  }
  const double expected =
      0.8 / k * rel_sum + 0.2 / (k * (k - 1.0)) * div_sum;
  EXPECT_NEAR(obj.ObjectiveValue(dq, pw), expected, 1e-12);
}

}  // namespace
}  // namespace dsks
