// Observability subsystem: nearest-rank percentiles, the latency
// histogram (bucketing, merge semantics), the metrics registry, and the
// per-query phase trace with I/O attribution against a real buffer pool
// and a real Database.
#include <string>
#include <thread>
#include <vector>

#include "datagen/presets.h"
#include "datagen/workload.h"
#include "gtest/gtest.h"
#include "harness/database.h"
#include "obs/io_account.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage_test_util.h"

namespace dsks {
namespace {

// ---------------------------------------------------------------------------
// NearestRankPercentile

TEST(PercentileTest, ExactRanksOnKnownSets) {
  std::vector<double> sorted;
  for (int i = 1; i <= 100; ++i) {
    sorted.push_back(static_cast<double>(i));
  }
  // ceil semantics: p99 of 100 samples is rank 99 (index 98), NOT the max.
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile(sorted, 99), 99.0);
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile(sorted, 50), 50.0);
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile(sorted, 95), 95.0);
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile(sorted, 100), 100.0);
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile(sorted, 1), 1.0);
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile(sorted, 0), 1.0);
}

TEST(PercentileTest, SmallSampleBoundaries) {
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile({}, 95), 0.0);

  const std::vector<double> one = {7.0};
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile(one, 0), 7.0);
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile(one, 50), 7.0);
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile(one, 100), 7.0);

  // n = 10: p95 -> rank ceil(9.5) = 10 (the max); p50 -> rank 5; p99 ->
  // rank 10; p10 -> rank 1.
  std::vector<double> ten;
  for (int i = 1; i <= 10; ++i) {
    ten.push_back(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile(ten, 95), 10.0);
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile(ten, 99), 10.0);
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile(ten, 50), 5.0);
  EXPECT_DOUBLE_EQ(obs::NearestRankPercentile(ten, 10), 1.0);
}

// ---------------------------------------------------------------------------
// Histogram

TEST(HistogramTest, BucketBoundsAreMonotonicAndIndexInverts) {
  double prev = 0.0;
  for (size_t i = 0; i < obs::Histogram::kNumBuckets; ++i) {
    const double ub = obs::Histogram::BucketUpperBound(i);
    EXPECT_GT(ub, prev);
    prev = ub;
    // A value exactly at the bound maps into that bucket.
    EXPECT_EQ(obs::Histogram::BucketIndex(ub), i);
  }
  // Out-of-range values clamp.
  EXPECT_EQ(obs::Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(obs::Histogram::BucketIndex(prev * 10.0),
            obs::Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, RecordAndSnapshotSummary) {
  obs::Histogram h;
  EXPECT_EQ(h.Snapshot().min, 0.0);  // empty maps the +inf sentinel to 0

  h.Record(1.0);
  h.Record(2.0);
  h.Record(10.0);
  const obs::HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 13.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_NEAR(s.avg(), 13.0 / 3.0, 1e-12);

  // Bucketed percentile with linear interpolation: rank 2 of 3 lands on
  // the 2.0 sample, whose bucket holds exactly one sample, so the
  // midpoint rule puts the estimate at the middle of 2.0's bucket —
  // within half a bucket width of the true value instead of the old
  // whole-bucket upward bias.
  const size_t bi = obs::Histogram::BucketIndex(2.0);
  const double lo = bi == 0 ? 0.0 : obs::Histogram::BucketUpperBound(bi - 1);
  const double hi = obs::Histogram::BucketUpperBound(bi);
  EXPECT_DOUBLE_EQ(s.Percentile(50), (lo + hi) / 2.0);
  // Extreme ranks bypass interpolation and report the observed extremes.
  EXPECT_DOUBLE_EQ(s.Percentile(1), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 10.0);

  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Snapshot().min, 0.0);
}

TEST(HistogramTest, MergedPerWorkerEqualsPooled) {
  // The same value stream split over three "worker" histograms and merged
  // must be bucket-for-bucket identical to one pooled recorder.
  obs::Histogram pooled;
  obs::Histogram workers[3];
  for (int i = 0; i < 300; ++i) {
    const double ms = 0.01 * static_cast<double>(i + 1);
    pooled.Record(ms);
    workers[i % 3].Record(ms);
  }
  obs::HistogramSnapshot merged;
  for (const obs::Histogram& w : workers) {
    merged.MergeFrom(w.Snapshot());
  }
  const obs::HistogramSnapshot want = pooled.Snapshot();
  EXPECT_EQ(merged.count, want.count);
  EXPECT_DOUBLE_EQ(merged.min, want.min);
  EXPECT_DOUBLE_EQ(merged.max, want.max);
  EXPECT_NEAR(merged.sum, want.sum, 1e-9);
  EXPECT_EQ(merged.buckets, want.buckets);
  for (int pct : {50, 95, 99, 100}) {
    EXPECT_DOUBLE_EQ(merged.Percentile(pct), want.Percentile(pct)) << pct;
  }

  // Histogram::MergeFrom (used when Drain folds a batch into the
  // registry) matches the snapshot-level merge.
  obs::Histogram folded;
  for (const obs::Histogram& w : workers) {
    folded.MergeFrom(w.Snapshot());
  }
  EXPECT_EQ(folded.Snapshot().buckets, want.buckets);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistryTest, NamedMetricsAreStableIdentities) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("queries");
  a.Add(3);
  EXPECT_EQ(&reg.counter("queries"), &a);  // resolve-once contract
  EXPECT_EQ(reg.counter("queries").value(), 3u);
  reg.gauge("pool.frames").Set(42.0);
  reg.histogram("latency").Record(1.5);

  reg.ResetOwned();
  EXPECT_EQ(reg.counter("queries").value(), 0u);
  EXPECT_EQ(reg.gauge("pool.frames").value(), 0.0);
  EXPECT_EQ(reg.histogram("latency").count(), 0u);
}

TEST(MetricsRegistryTest, SourcesBindAndUnbindByPrefix) {
  obs::MetricsRegistry reg;
  uint64_t live = 7;
  reg.BindSource("db.pool.hits", [&live] { return live; });
  reg.BindSource("db.disk.reads", [] { return uint64_t{11}; });
  reg.BindSource("other.thing", [] { return uint64_t{1}; });

  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"db.pool.hits\":7"), std::string::npos) << json;
  live = 9;  // live callback: next dump sees the new value
  json = reg.ToJson();
  EXPECT_NE(json.find("\"db.pool.hits\":9"), std::string::npos) << json;

  reg.UnbindSourcesWithPrefix("db.");
  json = reg.ToJson();
  EXPECT_EQ(json.find("db.pool.hits"), std::string::npos) << json;
  EXPECT_EQ(json.find("db.disk.reads"), std::string::npos) << json;
  EXPECT_NE(json.find("other.thing"), std::string::npos) << json;
}

TEST(MetricsRegistryTest, PrometheusExposition) {
  obs::MetricsRegistry reg;
  reg.counter("executor.queries").Add(5);
  reg.histogram("executor.query_ms").Record(2.0);
  const std::string prom = reg.ToPrometheus();
  // Names sanitized ('.' -> '_') and prefixed.
  EXPECT_NE(prom.find("# TYPE dsks_executor_queries counter"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("dsks_executor_queries 5"), std::string::npos) << prom;
  EXPECT_NE(prom.find("# TYPE dsks_executor_query_ms summary"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("dsks_executor_query_ms{quantile=\"0.99\"}"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("dsks_executor_query_ms_count 1"), std::string::npos)
      << prom;
}

TEST(MetricsRegistryTest, StorageBindMetricsExposesLiveCounters) {
  dsks::testing::TestDisk disk;
  BufferPool pool(disk.get(), 4);
  obs::MetricsRegistry reg;
  pool.BindMetrics(&reg, "db.pool");
  disk->BindMetrics(&reg, "db.disk");

  const PageId p = disk->AllocatePage();
  dsks::testing::MustFetch(&pool, p);
  pool.UnpinPage(p, false);
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"db.pool.misses\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"db.disk.reads\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"db.disk.pages\":1"), std::string::npos) << json;

  reg.UnbindSourcesWithPrefix("db.");
}

TEST(MetricsRegistryTest, GaugeAddSubIsAtomic) {
  obs::MetricsRegistry reg;
  obs::Gauge& g = reg.gauge("dsks.query.in_flight");
  g.Add(3.0);
  g.Sub(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);

  // Concurrent balanced Add/Sub pairs must cancel exactly (the CAS loop
  // loses no update), leaving the prior value.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < 10000; ++i) {
        g.Add(1.0);
        g.Sub(1.0);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

// ---------------------------------------------------------------------------
// QueryTrace

TEST(QueryTraceTest, SpanNestingAndExactIoDeltas) {
  dsks::testing::TestDisk disk;
  BufferPool pool(disk.get(), 2);
  obs::QueryTrace trace;
  trace.BindIoSources(&pool.stats(), &disk->stats());

  std::vector<PageId> pages;
  for (int i = 0; i < 4; ++i) {
    PageId id;
    pool.NewPage(&id);
    pool.UnpinPage(id, true);
    pages.push_back(id);
  }
  pool.Clear();  // cold cache: the traced fetches below all miss first

  const uint32_t root = trace.OpenSpan(obs::Phase::kQuery);
  {
    // Child A: two misses.
    obs::ScopedSpan a(&trace, obs::Phase::kKeywordLookup);
    dsks::testing::MustFetch(&pool, pages[0]);
    pool.UnpinPage(pages[0], false);
    dsks::testing::MustFetch(&pool, pages[1]);
    pool.UnpinPage(pages[1], false);
  }
  {
    // Child B: one hit, nothing from disk.
    obs::ScopedSpan b(&trace, obs::Phase::kNetworkExpansion);
    dsks::testing::MustFetch(&pool, pages[0]);
    pool.UnpinPage(pages[0], false);
  }
  // Root-exclusive: one miss outside any child span.
  dsks::testing::MustFetch(&pool, pages[2]);
  pool.UnpinPage(pages[2], false);
  trace.CloseSpan(root);
  ASSERT_EQ(trace.open_depth(), 0u);

  ASSERT_EQ(trace.spans().size(), 3u);
  const obs::TraceSpan& rs = trace.spans()[0];
  const obs::TraceSpan& as = trace.spans()[1];
  const obs::TraceSpan& bs = trace.spans()[2];
  EXPECT_EQ(as.parent, 0u);
  EXPECT_EQ(bs.parent, 0u);
  EXPECT_EQ(as.depth, 1u);

  EXPECT_EQ(as.inclusive_io.pool_misses, 2u);
  EXPECT_EQ(as.inclusive_io.disk_reads, 2u);
  EXPECT_EQ(bs.inclusive_io.pool_hits, 1u);
  EXPECT_EQ(bs.inclusive_io.disk_reads, 0u);
  EXPECT_EQ(rs.inclusive_io.pool_misses, 3u);
  EXPECT_EQ(rs.exclusive_io().pool_misses, 1u);
  EXPECT_EQ(rs.exclusive_io().disk_reads, 1u);

  // Telescoping identity: per-phase exclusive totals sum exactly to the
  // root's inclusive totals, for time and I/O alike.
  int64_t phase_ns = 0;
  obs::IoCounters phase_io;
  for (const auto& t : trace.AggregateByPhase()) {
    phase_ns += t.exclusive_ns;
    phase_io += t.io;
  }
  EXPECT_EQ(phase_ns, rs.inclusive_ns);
  EXPECT_EQ(phase_io, rs.inclusive_io);

  // Rendering smoke: both forms mention every recorded phase.
  const std::string text = trace.ToText();
  const std::string json = trace.ToJson();
  for (const char* phase : {"query", "keyword_lookup", "network_expansion"}) {
    EXPECT_NE(text.find(phase), std::string::npos) << text;
    EXPECT_NE(json.find(phase), std::string::npos) << json;
  }

  trace.Clear();
  EXPECT_TRUE(trace.spans().empty());
}

TEST(QueryTraceTest, AggregateTreeMergesSiblingsOfSamePhase) {
  obs::QueryTrace trace;  // no I/O sources: deltas stay zero, timing works
  const uint32_t root = trace.OpenSpan(obs::Phase::kQuery);
  for (int i = 0; i < 5; ++i) {
    obs::ScopedSpan s(&trace, obs::Phase::kNetworkExpansion);
    obs::ScopedSpan nested(&trace, obs::Phase::kKeywordLookup);
  }
  trace.CloseSpan(root);

  const auto nodes = trace.AggregateTree();
  // 11 raw spans fold into 3 tree nodes: query -> expansion -> lookup.
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0].phase, obs::Phase::kQuery);
  EXPECT_EQ(nodes[0].count, 1u);
  EXPECT_EQ(nodes[1].phase, obs::Phase::kNetworkExpansion);
  EXPECT_EQ(nodes[1].count, 5u);
  EXPECT_EQ(nodes[1].parent, 0u);
  EXPECT_EQ(nodes[2].phase, obs::Phase::kKeywordLookup);
  EXPECT_EQ(nodes[2].count, 5u);
  EXPECT_EQ(nodes[2].parent, 1u);
}

TEST(QueryTraceTest, TracedDivQueryBalancesAgainstRootTotals) {
  DatasetConfig cfg = ScalePreset(PresetSYN(), 0.03);
  cfg.objects.keywords_per_object = 6;
  Database db(cfg);
  IndexOptions opts;
  opts.kind = IndexKind::kSIF;
  db.BuildIndex(opts);
  db.PrepareForQueries();

  WorkloadConfig wc;
  wc.num_queries = 4;
  wc.num_keywords = 2;
  wc.seed = 31;
  const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);

  obs::QueryTrace trace;
  trace.BindIoSources(&db.pool()->stats(), &db.disk()->stats());
  QueryContext ctx;
  ctx.trace = &trace;

  db.ResetCounters();
  for (const WorkloadQuery& wq : wl.queries) {
    DivQuery dq;
    dq.sk = wq.sk;
    dq.k = 6;
    dq.lambda = 0.8;
    db.RunDivQuery(dq, wq.edge, /*use_com=*/true, &ctx);
  }
  ASSERT_EQ(trace.open_depth(), 0u);

  // Single-threaded, so attribution is exact: every phase's exclusive
  // time/I/O sums to the inclusive totals of the kQuery roots, and the
  // root spans' disk reads equal the database's own I/O counter.
  int64_t root_ns = 0;
  obs::IoCounters root_io;
  size_t roots = 0;
  for (const obs::TraceSpan& s : trace.spans()) {
    if (s.parent == obs::TraceSpan::kNoParent) {
      EXPECT_EQ(s.phase, obs::Phase::kQuery);
      root_ns += s.inclusive_ns;
      root_io += s.inclusive_io;
      ++roots;
    }
  }
  EXPECT_EQ(roots, wl.queries.size());

  const auto totals = trace.AggregateByPhase();
  int64_t phase_ns = 0;
  obs::IoCounters phase_io;
  for (const auto& t : totals) {
    phase_ns += t.exclusive_ns;
    phase_io += t.io;
  }
  EXPECT_EQ(phase_ns, root_ns);
  EXPECT_EQ(phase_io, root_io);
  EXPECT_EQ(root_io.disk_reads, db.IoCount());

  // The traced run exercised the real phases.
  using P = obs::Phase;
  EXPECT_GT(totals[static_cast<size_t>(P::kKeywordLookup)].spans, 0u);
  EXPECT_GT(totals[static_cast<size_t>(P::kNetworkExpansion)].spans, 0u);
  EXPECT_GT(totals[static_cast<size_t>(P::kGreedySelection)].spans, 0u);
}

TEST(QueryTraceTest, ContextBoundTraceIgnoresForeignTraffic) {
  // A context-bound trace reads thread-charged counters, so another
  // thread hammering the same pool mid-span must not leak into its
  // deltas — the flaw the old shared-counter binding had by design.
  dsks::testing::TestDisk disk;
  BufferPool pool(disk.get(), 4);

  std::vector<PageId> pages;
  for (int i = 0; i < 4; ++i) {
    PageId id;
    pool.NewPage(&id);
    pool.UnpinPage(id, true);
    pages.push_back(id);
  }
  pool.Clear();
  const BufferPoolStatsSnapshot pool_before = pool.stats_snapshot();

  obs::IoCounters io;
  obs::QueryTrace trace;
  trace.BindContextIo(&io);
  obs::ScopedIoAccount account(&io);

  const uint32_t root = trace.OpenSpan(obs::Phase::kQuery);
  // Foreign traffic concurrent with the open span, on disjoint pages so
  // this thread's hit/miss pattern stays deterministic.
  std::thread foreign([&pool, &pages] {
    for (int i = 0; i < 8; ++i) {
      dsks::testing::MustFetch(&pool, pages[2 + i % 2]);
      pool.UnpinPage(pages[2 + i % 2], false);
    }
  });
  dsks::testing::MustFetch(&pool, pages[0]);
  pool.UnpinPage(pages[0], false);
  dsks::testing::MustFetch(&pool, pages[0]);
  pool.UnpinPage(pages[0], false);
  dsks::testing::MustFetch(&pool, pages[1]);
  pool.UnpinPage(pages[1], false);
  foreign.join();
  trace.CloseSpan(root);

  // Exactly this thread's I/O: two cold misses, one repeat hit.
  const obs::TraceSpan& rs = trace.spans().front();
  EXPECT_EQ(rs.inclusive_io.pool_misses, 2u);
  EXPECT_EQ(rs.inclusive_io.pool_hits, 1u);
  EXPECT_EQ(rs.inclusive_io.disk_reads, 2u);
  EXPECT_EQ(io, rs.inclusive_io);

  // The foreign thread's fetches really happened — they landed in the
  // shared pool counters, just not in this context's account.
  const BufferPoolStatsSnapshot pool_after = pool.stats_snapshot();
  EXPECT_EQ(pool_after.hits + pool_after.misses -
                (pool_before.hits + pool_before.misses),
            3u + 8u);
}

}  // namespace
}  // namespace dsks
