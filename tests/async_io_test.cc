// The asynchronous read path: speculative prefetches submitted to an
// async engine (io_uring or worker pool) must change *when* pages arrive,
// never *what* any query computes. Pins: async-vs-sync bit-identical
// SK/ranked/diversified results; injected-fault draws landing at
// completion time with counts identical to the sync regime (the injector
// hashes a per-op counter, so completion order cannot move a draw);
// corruption caught by the completion-side CRC verify; clean pool
// destruction and Clear() with reads still in flight; and the engine
// identity surfaced through DiskManager. Runs against the env-selected
// backend (DSKS_TEST_BACKEND), so check.sh drills the io_uring rung on
// file and the worker pool on sim.
#include <atomic>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "datagen/presets.h"
#include "datagen/workload.h"
#include "gtest/gtest.h"
#include "harness/database.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage_test_util.h"

namespace dsks {
namespace {

DiskOptions OptionsWithIo(const std::string& tag, IoMode io) {
  DiskOptions options = testing::TestDiskOptions(tag);
  options.io = io;
  return options;
}

/// Allocates `n` pages with a per-page pattern (same as prefetch_test).
void FillPages(DiskManager* disk, size_t n) {
  std::vector<char> buf(kPageSize);
  for (size_t i = 0; i < n; ++i) {
    const PageId id = disk->AllocatePage();
    std::memset(buf.data(), static_cast<int>('A' + (i % 23)), kPageSize);
    ASSERT_TRUE(disk->WritePage(id, buf.data()).ok());
  }
}

TEST(AsyncIoEngineTest, EngineIdentityMatchesRequestedRegime) {
  const DiskOptions sync_opts = OptionsWithIo("engid_s", IoMode::kSync);
  DiskManager sync_disk(sync_opts);
  EXPECT_FALSE(sync_disk.async_enabled());
  EXPECT_STREQ(sync_disk.io_engine_name(), "sync");

  const DiskOptions async_opts = OptionsWithIo("engid_a", IoMode::kAsync);
  DiskManager async_disk(async_opts);
  EXPECT_TRUE(async_disk.async_enabled());
  const std::string engine = async_disk.io_engine_name();
  EXPECT_TRUE(engine == "io_uring" || engine == "worker-pool") << engine;

  testing::RemoveDiskFiles(sync_opts);
  testing::RemoveDiskFiles(async_opts);
}

// A full prefetch → drain cycle on the async engine: the in-flight gauge
// returns to zero, every page arrives with the right bytes, and the
// lifecycle counters telescope exactly.
TEST(AsyncIoEngineTest, PrefetchDrainsCleanAndTelescopes) {
  const DiskOptions options = OptionsWithIo("drain", IoMode::kAsync);
  {
    DiskManager disk(options);
    constexpr size_t kPages = 48;
    FillPages(&disk, kPages);
    BufferPool pool(&disk, kPages + 8);

    std::vector<PageId> ids(kPages);
    for (size_t i = 0; i < kPages; ++i) {
      ids[i] = static_cast<PageId>(i);
    }
    pool.Prefetch(std::span<const PageId>(ids));
    pool.DrainPrefetches();
    EXPECT_EQ(pool.prefetch_inflight(), 0u);

    for (size_t i = 0; i < kPages; ++i) {
      char* data = testing::MustFetch(&pool, ids[i]);
      EXPECT_EQ(data[0], static_cast<char>('A' + (i % 23))) << "page " << i;
      pool.UnpinPage(ids[i], /*dirty=*/false);
    }
    ASSERT_TRUE(pool.Clear().ok());
    const BufferPoolStatsSnapshot s = pool.stats_snapshot();
    EXPECT_EQ(s.prefetch_issued, kPages);
    EXPECT_EQ(s.prefetch_hits, kPages);
    EXPECT_EQ(s.prefetch_issued,
              s.prefetch_hits + s.prefetch_wasted + s.prefetch_dropped);
  }
  testing::RemoveDiskFiles(options);
}

// Seeded fault draws are a pure function of (seed, op index, p): the same
// prefetch sequence must consume the same number of injected read faults
// under sync and async I/O, no matter which thread or order completions
// ran in. This is what keeps `dsks_cli chaos --io=async` comparable with
// the sync chaos numbers.
TEST(AsyncIoEngineTest, FaultDrawsMatchSyncRegimeExactly) {
  constexpr size_t kPages = 64;
  uint64_t faults[2];
  uint64_t dropped[2];
  const IoMode modes[2] = {IoMode::kSync, IoMode::kAsync};
  for (int m = 0; m < 2; ++m) {
    const DiskOptions options = OptionsWithIo("fdraw", modes[m]);
    {
      DiskManager disk(options);
      FillPages(&disk, kPages);
      BufferPool pool(&disk, kPages + 8);

      FaultInjector::Config cfg;
      cfg.read_fault_p = 0.25;
      cfg.seed = 1234;
      disk.fault_injector()->Configure(cfg);

      std::vector<PageId> ids(kPages);
      for (size_t i = 0; i < kPages; ++i) {
        ids[i] = static_cast<PageId>(i);
      }
      pool.Prefetch(std::span<const PageId>(ids));
      pool.DrainPrefetches();
      disk.fault_injector()->Disarm();

      faults[m] = disk.fault_injector()->stats().read_faults;
      dropped[m] = pool.stats_snapshot().prefetch_dropped;
      ASSERT_TRUE(pool.Clear().ok());
    }
    testing::RemoveDiskFiles(options);
  }
  EXPECT_GT(faults[0], 0u) << "p=0.25 over 64 reads must draw some faults";
  EXPECT_EQ(faults[0], faults[1]);
  EXPECT_EQ(dropped[0], dropped[1]);
}

// At-rest corruption is caught by the CRC verify that runs on the
// completion path: the poisoned frame is dropped (never published), and
// the demand fetch reports Corruption instead of serving bad bytes.
TEST(AsyncIoEngineTest, CorruptionCaughtAtCompletionTime) {
  const DiskOptions options = OptionsWithIo("ccorr", IoMode::kAsync);
  {
    DiskManager disk(options);
    constexpr size_t kPages = 4;
    FillPages(&disk, kPages);
    disk.CorruptStoredPage(2, /*bit_index=*/12345);
    BufferPool pool(&disk, kPages + 2);

    PageId ids[kPages] = {0, 1, 2, 3};
    pool.Prefetch(std::span<const PageId>(ids, kPages));
    pool.DrainPrefetches();

    const BufferPoolStatsSnapshot s = pool.stats_snapshot();
    EXPECT_EQ(s.prefetch_dropped, 1u);
    EXPECT_GE(disk.stats_snapshot().corruptions_detected, 1u);

    char* data = nullptr;
    EXPECT_TRUE(pool.FetchPage(2, &data).IsCorruption());
    // The healthy batch mates were published normally.
    data = testing::MustFetch(&pool, 1);
    EXPECT_EQ(data[0], 'B');
    pool.UnpinPage(1, /*dirty=*/false);
    ASSERT_TRUE(pool.Clear().ok());
  }
  testing::RemoveDiskFiles(options);
}

// Destroying the pool (and Clear()) with reads still in flight must drain
// them first: completions land on live frames, nothing leaks, and the
// demand path never touches a dead pool. The simulated disk sleeps per
// async read, so the prefetches are genuinely outstanding when the pool
// goes down.
TEST(AsyncIoEngineTest, DestructionWithReadsInFlightDrainsCleanly) {
  for (int round = 0; round < 3; ++round) {
    DiskOptions options;  // sim: the only backend with a latency knob
    options.io = IoMode::kAsync;
    DiskManager disk(options);
    constexpr size_t kPages = 24;
    FillPages(&disk, kPages);
    disk.set_read_delay_us(500.0);

    {
      BufferPool pool(&disk, kPages + 4);
      std::vector<PageId> ids(kPages);
      for (size_t i = 0; i < kPages; ++i) {
        ids[i] = static_cast<PageId>(i);
      }
      if (round == 1) {
        // Clear() under fire: in-flight frames are drained, then every
        // frame (pin 0) is evictable — nothing may survive.
        pool.Prefetch(std::span<const PageId>(ids));
        ASSERT_TRUE(pool.Clear().ok());
        EXPECT_EQ(pool.prefetch_inflight(), 0u);
      }
      pool.Prefetch(std::span<const PageId>(ids));
      // Scope exit: ~BufferPool with (most of) the burst outstanding.
    }
    // The disk outlives the pool and stays usable after the drain.
    std::vector<char> buf(kPageSize);
    ASSERT_TRUE(disk.ReadPage(0, buf.data()).ok());
    EXPECT_EQ(buf[0], 'A');
  }
}

// Concurrent issuers against a tiny pool while the owner tears it down:
// 4 threads hammer Prefetch/FetchPage, join, and the pool is destroyed
// with whatever their last bursts left in flight. Run under TSan by
// check.sh with DSKS_TEST_IO=async.
TEST(AsyncIoEngineTest, ConcurrentShutdownStress) {
  for (int round = 0; round < 2; ++round) {
    DiskOptions options;
    options.io = IoMode::kAsync;
    options.io_depth = 16;  // small window: submit/complete churns
    DiskManager disk(options);
    constexpr size_t kPages = 32;
    FillPages(&disk, kPages);
    disk.set_read_delay_us(100.0);

    BufferPool pool(&disk, 8);  // eviction pressure
    constexpr int kThreads = 4;
    std::atomic<uint32_t> errors{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        uint64_t rng = 0x2545F4914F6CDD1Dull * static_cast<uint64_t>(t + 1);
        auto next = [&rng] {
          rng = rng * 6364136223846793005ull + 1442695040888963407ull;
          return static_cast<size_t>(rng >> 33);
        };
        for (int r = 0; r < 50; ++r) {
          if (t % 2 == 0) {
            PageId ids[4];
            for (PageId& id : ids) {
              id = static_cast<PageId>(next() % kPages);
            }
            pool.Prefetch(std::span<const PageId>(ids, 4));
          } else {
            const PageId id = static_cast<PageId>(next() % kPages);
            char* data = nullptr;
            if (!pool.FetchPage(id, &data).ok()) {
              errors.fetch_add(1);
              continue;
            }
            if (data[0] != static_cast<char>('A' + (id % 23))) {
              errors.fetch_add(1);
            }
            pool.UnpinPage(id, /*dirty=*/false);
          }
        }
      });
    }
    for (std::thread& th : threads) {
      th.join();
    }
    EXPECT_EQ(errors.load(), 0u);
    // No drain: ~BufferPool must handle the leftovers itself.
  }
}

// --- whole-query equivalence ----------------------------------------------

// SK, ranked and diversified results must be bit-identical under sync and
// async I/O: the async engine only changes when speculative pages arrive,
// and every demand read still verifies the same bytes. Two databases are
// built from the same dataset seed on the env-selected backend, differing
// only in DiskOptions::io.
TEST(AsyncIoQueryTest, ResultsBitIdenticalAcrossIoRegimes) {
  DatasetConfig config = ScalePreset(PresetSYN(), 0.2);
  config.objects.keywords_per_object = 6;

  struct Run {
    std::vector<std::vector<SkResult>> sk;
    std::vector<std::vector<RankedResult>> ranked;
    std::vector<std::vector<ObjectId>> div;
  };
  Run runs[2];
  const IoMode modes[2] = {IoMode::kSync, IoMode::kAsync};
  size_t num_queries = 0;
  for (int m = 0; m < 2; ++m) {
    const DiskOptions options = OptionsWithIo("ioequiv", modes[m]);
    {
      Database db(config, options);
      IndexOptions opts;
      opts.kind = IndexKind::kSIF;
      db.BuildIndex(opts);
      db.PrepareForQueries();

      WorkloadConfig wc;
      wc.num_queries = 12;
      wc.num_keywords = 2;
      wc.seed = 77;
      const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);
      num_queries = wl.queries.size();
      ASSERT_TRUE(db.pool()->Clear().ok());  // cold start for both regimes
      for (const WorkloadQuery& wq : wl.queries) {
        std::vector<SkResult> sk;
        ASSERT_TRUE(db.RunSkQuery(wq.sk, wq.edge, &sk).ok());
        runs[m].sk.push_back(std::move(sk));

        RankedQuery rq;
        rq.sk = wq.sk;
        rq.k = 8;
        std::vector<RankedResult> ranked;
        ASSERT_TRUE(db.RunRankedQuery(rq, wq.edge, &ranked).ok());
        runs[m].ranked.push_back(std::move(ranked));

        DivQuery dq;
        dq.sk = wq.sk;
        dq.k = 4;
        dq.lambda = 0.8;
        DivSearchOutput div;
        ASSERT_TRUE(db.RunDivQuery(dq, wq.edge, /*use_com=*/true, &div).ok());
        std::vector<ObjectId> selected;
        for (const SkResult& r : div.selected) {
          selected.push_back(r.id);
        }
        runs[m].div.push_back(std::move(selected));
      }
      // The async run must have genuinely used the engine.
      EXPECT_EQ(db.disk()->async_enabled(), modes[m] == IoMode::kAsync);
    }
    testing::RemoveDiskFiles(options);
  }

  for (size_t q = 0; q < num_queries; ++q) {
    ASSERT_EQ(runs[0].sk[q].size(), runs[1].sk[q].size()) << "query " << q;
    for (size_t i = 0; i < runs[0].sk[q].size(); ++i) {
      EXPECT_EQ(runs[0].sk[q][i].id, runs[1].sk[q][i].id);
      EXPECT_EQ(std::memcmp(&runs[0].sk[q][i].dist, &runs[1].sk[q][i].dist,
                            sizeof(double)),
                0)
          << "query " << q << " result " << i;
    }
    ASSERT_EQ(runs[0].ranked[q].size(), runs[1].ranked[q].size());
    for (size_t i = 0; i < runs[0].ranked[q].size(); ++i) {
      EXPECT_EQ(runs[0].ranked[q][i].id, runs[1].ranked[q][i].id);
      EXPECT_EQ(std::memcmp(&runs[0].ranked[q][i].score,
                            &runs[1].ranked[q][i].score, sizeof(double)),
                0);
    }
    EXPECT_EQ(runs[0].div[q], runs[1].div[q]) << "query " << q;
  }
}

}  // namespace
}  // namespace dsks
