#include <cmath>

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "text/term_stats.h"
#include "text/vocabulary.h"
#include "text/zipf.h"

namespace dsks {
namespace {

TEST(VocabularyTest, InternIsIdempotent) {
  Vocabulary v;
  const TermId a = v.Intern("lobster");
  const TermId b = v.Intern("pancake");
  EXPECT_NE(a, b);
  EXPECT_EQ(v.Intern("lobster"), a);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.Name(a), "lobster");
  EXPECT_EQ(v.Lookup("pancake"), b);
  EXPECT_EQ(v.Lookup("sushi"), kInvalidTermId);
}

TEST(VocabularyTest, SyntheticTermsAreDense) {
  Vocabulary v;
  v.AddSyntheticTerms(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.Lookup("term0"), 0u);
  EXPECT_EQ(v.Lookup("term99"), 99u);
}

TEST(ZipfTest, ProbabilitiesSumToOneAndDecrease) {
  ZipfSampler zipf(1000, 1.1);
  double sum = 0.0;
  double prev = 1.0;
  for (size_t r = 0; r < zipf.n(); ++r) {
    const double p = zipf.Probability(r);
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, SkewControlsHeadMass) {
  // Higher z concentrates more mass on the top ranks.
  ZipfSampler mild(10000, 0.9);
  ZipfSampler steep(10000, 1.3);
  double mild_head = 0.0;
  double steep_head = 0.0;
  for (size_t r = 0; r < 10; ++r) {
    mild_head += mild.Probability(r);
    steep_head += steep.Probability(r);
  }
  EXPECT_GT(steep_head, mild_head);
}

TEST(ZipfTest, EmpiricalFrequencyTracksTheory) {
  ZipfSampler zipf(50, 1.0);
  Random rng(77);
  std::vector<int> counts(50, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    ++counts[zipf.Sample(&rng)];
  }
  for (size_t r : {0ul, 1ul, 5ul, 20ul}) {
    const double expected = zipf.Probability(r) * n;
    EXPECT_NEAR(counts[r], expected, expected * 0.1 + 30)
        << "rank " << r;
  }
}

TEST(TermStatsTest, CountsOccurrencesAndRanks) {
  auto data = testing::MakeRandomDataset(42, 80, 300, 25, 4);
  TermStats stats(*data.objects, 25);
  EXPECT_EQ(stats.vocab_size(), 25u);

  uint64_t total = 0;
  for (TermId t = 0; t < 25; ++t) {
    total += stats.Frequency(t);
  }
  EXPECT_EQ(total, stats.total_occurrences());
  EXPECT_EQ(total, data.objects->TotalTermOccurrences());

  // ByFrequency is ordered by decreasing frequency.
  const auto& order = stats.ByFrequency();
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(stats.Frequency(order[i - 1]), stats.Frequency(order[i]));
  }
  // The cumulative distribution ends at the total.
  EXPECT_DOUBLE_EQ(stats.CumulativeByFrequency().back(),
                   static_cast<double>(total));
}

}  // namespace
}  // namespace dsks
