#include <cmath>

#include "graph/landmarks.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace dsks {
namespace {

using ::dsks::testing::MakeRandomDataset;

class LandmarkPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LandmarkPropertyTest, LowerBoundIsAdmissible) {
  auto data = MakeRandomDataset(GetParam(), 120, 10);
  const RoadNetwork& net = *data.network;
  LandmarkIndex index(&net, 6);
  // Compare against exact distances from a few sources.
  Random rng(GetParam());
  for (int round = 0; round < 5; ++round) {
    const NodeId s = static_cast<NodeId>(rng.Uniform(net.num_nodes()));
    const auto exact = DijkstraFromNode(net, s);
    for (NodeId v = 0; v < net.num_nodes(); v += 7) {
      EXPECT_LE(index.LowerBound(s, v), exact[v] + 1e-9)
          << "bound above truth for " << s << "->" << v;
    }
  }
}

TEST_P(LandmarkPropertyTest, AStarMatchesDijkstra) {
  auto data = MakeRandomDataset(GetParam() ^ 0xAA, 150, 10);
  const RoadNetwork& net = *data.network;
  LandmarkIndex index(&net, 8);
  Random rng(GetParam());
  for (int round = 0; round < 30; ++round) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(net.num_nodes()));
    const NodeId v = static_cast<NodeId>(rng.Uniform(net.num_nodes()));
    const auto exact = DijkstraFromNode(net, u);
    uint64_t expanded = 0;
    EXPECT_NEAR(index.Distance(u, v, &expanded), exact[v], 1e-9);
    EXPECT_GT(expanded, 0u);
  }
}

TEST_P(LandmarkPropertyTest, GoalDirectionExpandsFewerNodes) {
  auto data = MakeRandomDataset(GetParam() ^ 0xBB, 900, 10);
  const RoadNetwork& net = *data.network;
  LandmarkIndex index(&net, 12);
  Random rng(GetParam());
  uint64_t astar_total = 0;
  uint64_t dijkstra_total = 0;
  for (int round = 0; round < 10; ++round) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(net.num_nodes()));
    const NodeId v = static_cast<NodeId>(rng.Uniform(net.num_nodes()));
    uint64_t expanded = 0;
    index.Distance(u, v, &expanded);
    astar_total += expanded;
    // Plain Dijkstra would settle (roughly) every node closer than v; we
    // measure its actual cost by running it and counting nodes within
    // δ(u, v).
    const auto exact = DijkstraFromNode(net, u);
    for (NodeId x = 0; x < net.num_nodes(); ++x) {
      if (exact[x] <= exact[v]) {
        ++dijkstra_total;
      }
    }
  }
  EXPECT_LT(astar_total, dijkstra_total)
      << "landmark guidance failed to shrink the search";
}

TEST_P(LandmarkPropertyTest, LocationDistanceMatchesExact) {
  auto data = MakeRandomDataset(GetParam() ^ 0xCC, 130, 60);
  const RoadNetwork& net = *data.network;
  LandmarkIndex index(&net, 6);
  Random rng(GetParam());
  for (int round = 0; round < 15; ++round) {
    const auto& a = data.objects->object(
        static_cast<ObjectId>(rng.Uniform(data.objects->size())));
    const auto& b = data.objects->object(
        static_cast<ObjectId>(rng.Uniform(data.objects->size())));
    const NetworkLocation la{a.edge, a.offset};
    const NetworkLocation lb{b.edge, b.offset};
    EXPECT_NEAR(index.Distance(la, lb), ExactNetworkDistance(net, la, lb),
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LandmarkPropertyTest,
                         ::testing::Values(71, 72, 73));

TEST(LandmarkIndexTest, SizeGrowsWithLandmarks) {
  auto data = MakeRandomDataset(99, 100, 10);
  LandmarkIndex small(data.network.get(), 2);
  LandmarkIndex big(data.network.get(), 8);
  EXPECT_EQ(small.num_landmarks(), 2u);
  EXPECT_EQ(big.num_landmarks(), 8u);
  EXPECT_GT(big.SizeBytes(), small.SizeBytes());
  // Landmarks are distinct nodes.
  auto nodes = big.landmark_nodes();
  std::sort(nodes.begin(), nodes.end());
  EXPECT_EQ(std::unique(nodes.begin(), nodes.end()), nodes.end());
}

}  // namespace
}  // namespace dsks
