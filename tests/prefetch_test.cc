// Batched I/O and speculative prefetch: the DiskManager batch read must be
// observationally identical to a sequential ReadPage loop; FetchPages must
// be all-or-nothing; Prefetch must never surface a failure to a query; the
// prefetch lifecycle counters must telescope (issued = hits + wasted +
// dropped at quiescence); and whole-query results must be bit-identical
// with prefetching on or off. Runs against the env-selected backend
// (DSKS_TEST_BACKEND), so check.sh drills both sim and file.
#include <atomic>
#include <cstring>
#include <span>
#include <thread>
#include <vector>

#include "common/status.h"
#include "datagen/presets.h"
#include "datagen/workload.h"
#include "gtest/gtest.h"
#include "harness/database.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage_test_util.h"

namespace dsks {
namespace {

Workload MakeWorkload(const Database& db, size_t n, uint64_t seed) {
  WorkloadConfig wc;
  wc.num_queries = n;
  wc.num_keywords = 2;
  wc.seed = seed;
  return GenerateWorkload(db.objects(), db.term_stats(), wc);
}

/// Allocates `n` pages filled with a per-page pattern, written through the
/// disk manager so checksums are recorded.
void FillPages(DiskManager* disk, size_t n) {
  std::vector<char> buf(kPageSize);
  for (size_t i = 0; i < n; ++i) {
    const PageId id = disk->AllocatePage();
    std::memset(buf.data(), static_cast<int>('A' + (i % 23)), kPageSize);
    ASSERT_TRUE(disk->WritePage(id, buf.data()).ok());
  }
}

// --- DiskManager batch reads ----------------------------------------------

TEST(BatchReadTest, BatchMatchesSequentialReads) {
  testing::TestDisk disk("batch");
  constexpr size_t kPages = 40;
  FillPages(disk.get(), kPages);

  // A batch mixing contiguous runs, gaps and descending order: the run
  // coalescer must not assume sorted input.
  const PageId ids[] = {0, 1, 2, 3, 10, 11, 7, 39, 38, 20};
  constexpr size_t kBatch = sizeof(ids) / sizeof(ids[0]);
  std::vector<char> batch_buf(kBatch * kPageSize);
  std::vector<PageReadRequest> reqs(kBatch);
  for (size_t i = 0; i < kBatch; ++i) {
    reqs[i].id = ids[i];
    reqs[i].out = batch_buf.data() + i * kPageSize;
  }
  disk->ReadPages(std::span<PageReadRequest>(reqs));

  std::vector<char> single(kPageSize);
  for (size_t i = 0; i < kBatch; ++i) {
    ASSERT_TRUE(reqs[i].status.ok()) << "page " << ids[i];
    ASSERT_TRUE(disk->ReadPage(ids[i], single.data()).ok());
    EXPECT_EQ(std::memcmp(reqs[i].out, single.data(), kPageSize), 0)
        << "page " << ids[i];
  }
  EXPECT_EQ(disk->stats_snapshot().reads, kBatch + kBatch)
      << "each batched page accounts one read, like the sequential loop";
}

TEST(BatchReadTest, PerPageFaultsDoNotPoisonBatchMates) {
  testing::TestDisk disk("batchfault");
  constexpr size_t kPages = 8;
  FillPages(disk.get(), kPages);

  disk->fault_injector()->FailPageReads(3, 1);
  std::vector<char> buf(kPages * kPageSize);
  std::vector<PageReadRequest> reqs(kPages);
  for (size_t i = 0; i < kPages; ++i) {
    reqs[i].id = static_cast<PageId>(i);
    reqs[i].out = buf.data() + i * kPageSize;
  }
  disk->ReadPages(std::span<PageReadRequest>(reqs));

  std::vector<char> single(kPageSize);
  for (size_t i = 0; i < kPages; ++i) {
    if (i == 3) {
      EXPECT_TRUE(reqs[i].status.IsIOError());
      continue;
    }
    ASSERT_TRUE(reqs[i].status.ok()) << "page " << i;
    ASSERT_TRUE(disk->ReadPage(reqs[i].id, single.data()).ok());
    EXPECT_EQ(std::memcmp(reqs[i].out, single.data(), kPageSize), 0);
  }
}

// --- FetchPages -----------------------------------------------------------

TEST(FetchPagesTest, PinsEveryPageAndReadsOnce) {
  testing::TestDisk disk("fetchpages");
  constexpr size_t kPages = 12;
  FillPages(disk.get(), kPages);
  BufferPool pool(disk.get(), kPages + 4);

  PageId ids[kPages];
  char* outs[kPages];
  for (size_t i = 0; i < kPages; ++i) {
    ids[i] = static_cast<PageId>(i);
  }
  ASSERT_TRUE(pool.FetchPages(std::span<const PageId>(ids, kPages),
                              std::span<char*>(outs, kPages))
                  .ok());
  for (size_t i = 0; i < kPages; ++i) {
    ASSERT_NE(outs[i], nullptr);
    EXPECT_EQ(outs[i][0], static_cast<char>('A' + (i % 23)));
    pool.UnpinPage(ids[i], /*dirty=*/false);
  }
  const BufferPoolStatsSnapshot s = pool.stats_snapshot();
  EXPECT_EQ(s.misses, kPages);
  EXPECT_EQ(s.hits, 0u);
  ASSERT_TRUE(pool.Clear().ok()) << "nothing may remain pinned";
}

TEST(FetchPagesTest, FailureUnpinsEverything) {
  testing::TestDisk disk("fetchfail");
  constexpr size_t kPages = 6;
  FillPages(disk.get(), kPages);
  BufferPool pool(disk.get(), kPages + 2);

  disk->fault_injector()->FailPageReads(4, 1);
  PageId ids[kPages];
  char* outs[kPages];
  for (size_t i = 0; i < kPages; ++i) {
    ids[i] = static_cast<PageId>(i);
  }
  const Status s = pool.FetchPages(std::span<const PageId>(ids, kPages),
                                   std::span<char*>(outs, kPages));
  EXPECT_TRUE(s.IsIOError());
  // All-or-nothing: Clear() CHECK-fails on any leaked pin, so passing here
  // proves the rollback released every page the call had pinned.
  ASSERT_TRUE(pool.Clear().ok());

  // The fault was consumed by the failed batch; a retry succeeds.
  ASSERT_TRUE(pool.FetchPages(std::span<const PageId>(ids, kPages),
                              std::span<char*>(outs, kPages))
                  .ok());
  for (size_t i = 0; i < kPages; ++i) {
    pool.UnpinPage(ids[i], /*dirty=*/false);
  }
}

// --- Prefetch -------------------------------------------------------------

TEST(PrefetchTest, CountersTelescope) {
  testing::TestDisk disk("telescope");
  constexpr size_t kPages = 16;
  FillPages(disk.get(), kPages);
  BufferPool pool(disk.get(), kPages + 4);

  PageId ids[kPages];
  for (size_t i = 0; i < kPages; ++i) {
    ids[i] = static_cast<PageId>(i);
  }
  pool.Prefetch(std::span<const PageId>(ids, kPages));
  BufferPoolStatsSnapshot s = pool.stats_snapshot();
  EXPECT_EQ(s.prefetch_issued, kPages);
  EXPECT_EQ(s.misses, 0u) << "speculative reads are not demand misses";

  // The in-flight gauge drains to zero once every completion has landed
  // (trivially immediate under --io=sync).
  pool.DrainPrefetches();
  EXPECT_EQ(pool.prefetch_inflight(), 0u);

  // Demand-touch the first half: those become prefetch hits.
  for (size_t i = 0; i < kPages / 2; ++i) {
    char* data = testing::MustFetch(&pool, ids[i]);
    EXPECT_EQ(data[0], static_cast<char>('A' + (i % 23)));
    pool.UnpinPage(ids[i], /*dirty=*/false);
  }
  // Drop the rest untouched: those count as wasted.
  ASSERT_TRUE(pool.Clear().ok());

  s = pool.stats_snapshot();
  EXPECT_EQ(s.prefetch_hits, kPages / 2);
  EXPECT_EQ(s.prefetch_wasted, kPages - kPages / 2);
  EXPECT_EQ(s.prefetch_dropped, 0u);
  EXPECT_EQ(s.prefetch_issued,
            s.prefetch_hits + s.prefetch_wasted + s.prefetch_dropped);
}

TEST(PrefetchTest, InjectedFaultIsDroppedAndNeverFailsTheDemandFetch) {
  testing::TestDisk disk("prefault");
  constexpr size_t kPages = 4;
  FillPages(disk.get(), kPages);
  BufferPool pool(disk.get(), kPages + 2);

  // The speculative read of page 2 fails; Prefetch must swallow it.
  disk->fault_injector()->FailPageReads(2, 1);
  PageId ids[kPages] = {0, 1, 2, 3};
  pool.Prefetch(std::span<const PageId>(ids, kPages));
  pool.DrainPrefetches();  // under --io=async the drop lands on completion

  BufferPoolStatsSnapshot s = pool.stats_snapshot();
  EXPECT_EQ(s.prefetch_issued, kPages);
  EXPECT_EQ(s.prefetch_dropped, 1u);

  // The demand fetch retries from scratch (the one-shot fault is spent)
  // and returns the right bytes — the query never sees the dropped read.
  char* data = nullptr;
  ASSERT_TRUE(pool.FetchPage(2, &data).ok());
  EXPECT_EQ(data[0], static_cast<char>('A' + 2));
  pool.UnpinPage(2, /*dirty=*/false);

  ASSERT_TRUE(pool.Clear().ok());
  s = pool.stats_snapshot();
  EXPECT_EQ(s.prefetch_issued,
            s.prefetch_hits + s.prefetch_wasted + s.prefetch_dropped);
}

TEST(PrefetchTest, DisabledPrefetchIsANoOp) {
  testing::TestDisk disk("predisabled");
  constexpr size_t kPages = 4;
  FillPages(disk.get(), kPages);
  BufferPool pool(disk.get(), kPages + 2);
  pool.set_prefetch_enabled(false);

  PageId ids[kPages] = {0, 1, 2, 3};
  pool.Prefetch(std::span<const PageId>(ids, kPages));
  const BufferPoolStatsSnapshot s = pool.stats_snapshot();
  EXPECT_EQ(s.prefetch_issued, 0u);
  EXPECT_EQ(disk->stats_snapshot().reads, 0u);
}

TEST(PrefetchTest, SkipsResidentAndUnallocatedPages) {
  testing::TestDisk disk("preskip");
  constexpr size_t kPages = 4;
  FillPages(disk.get(), kPages);
  BufferPool pool(disk.get(), kPages + 2);

  char* data = testing::MustFetch(&pool, 1);  // page 1 resident and pinned
  PageId ids[] = {1, 3, 999};                 // resident, cold, unallocated
  pool.Prefetch(std::span<const PageId>(ids, 3));
  const BufferPoolStatsSnapshot s = pool.stats_snapshot();
  EXPECT_EQ(s.prefetch_issued, 1u) << "only the cold allocated page";
  (void)data;
  pool.UnpinPage(1, /*dirty=*/false);
  ASSERT_TRUE(pool.Clear().ok());
}

// Regression: a Prefetch naming a page whose frame is currently pinned
// *and* dirty must be a counted no-op (prefetch_dropped), never a queued
// read — a speculative disk read of a page the writer is mutating would
// race the write-back and could clobber the frame with stale bytes.
TEST(PrefetchTest, PinnedDirtyPageIsACountedNoOp) {
  testing::TestDisk disk("predirty");
  constexpr size_t kPages = 4;
  FillPages(disk.get(), kPages);
  BufferPool pool(disk.get(), kPages + 2);

  // Make page 1 resident, dirty, and pinned: fetch, unpin dirty, re-pin.
  char* data = testing::MustFetch(&pool, 1);
  data[0] = 'z';
  pool.UnpinPage(1, /*dirty=*/true);
  data = testing::MustFetch(&pool, 1);

  const uint64_t reads_before = disk->stats_snapshot().reads;
  const BufferPoolStatsSnapshot before = pool.stats_snapshot();
  PageId ids[] = {1};
  pool.Prefetch(std::span<const PageId>(ids, 1));
  pool.DrainPrefetches();

  const BufferPoolStatsSnapshot after = pool.stats_snapshot();
  EXPECT_EQ(after.prefetch_issued, before.prefetch_issued + 1);
  EXPECT_EQ(after.prefetch_dropped, before.prefetch_dropped + 1);
  EXPECT_EQ(disk->stats_snapshot().reads, reads_before)
      << "the refusal must not touch the disk";
  EXPECT_EQ(data[0], 'z') << "the writer's bytes survive";

  pool.UnpinPage(1, /*dirty=*/false);
  ASSERT_TRUE(pool.Clear().ok());
  const BufferPoolStatsSnapshot s = pool.stats_snapshot();
  EXPECT_EQ(s.prefetch_issued,
            s.prefetch_hits + s.prefetch_wasted + s.prefetch_dropped);
  EXPECT_EQ(pool.prefetch_inflight(), 0u);
}

// An 8-thread mix of Prefetch, demand fetches and capacity-pressure
// eviction over a pool much smaller than the page set. Run under TSan by
// check.sh; the assertions here are liveness plus the telescoping
// invariant at quiescence.
TEST(PrefetchTest, ConcurrentPrefetchFetchEvictionStress) {
  testing::TestDisk disk("prestress");
  constexpr size_t kPages = 64;
  FillPages(disk.get(), kPages);
  BufferPool pool(disk.get(), 8);  // heavy eviction pressure

  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::atomic<uint32_t> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t rng = 0x9E3779B9u * static_cast<uint64_t>(t + 1);
      auto next = [&rng] {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<size_t>(rng >> 33);
      };
      for (int r = 0; r < kRounds; ++r) {
        if (t % 2 == 0) {
          PageId ids[4];
          for (PageId& id : ids) {
            id = static_cast<PageId>(next() % kPages);
          }
          // Prefetch tolerates duplicate ids (unlike FetchPages).
          pool.Prefetch(std::span<const PageId>(ids, 4));
        } else {
          const PageId id = static_cast<PageId>(next() % kPages);
          char* data = nullptr;
          if (!pool.FetchPage(id, &data).ok()) {
            errors.fetch_add(1);
            continue;
          }
          if (data[0] != static_cast<char>('A' + (id % 23))) {
            errors.fetch_add(1);
          }
          pool.UnpinPage(id, /*dirty=*/false);
        }
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  EXPECT_EQ(errors.load(), 0u);
  ASSERT_TRUE(pool.Clear().ok());
  const BufferPoolStatsSnapshot s = pool.stats_snapshot();
  EXPECT_EQ(s.prefetch_issued,
            s.prefetch_hits + s.prefetch_wasted + s.prefetch_dropped);
}

// --- whole-query equivalence ----------------------------------------------

// SK, ranked and diversified results must be bit-identical with prefetch
// on vs off: prefetching only moves pages into the pool earlier, it never
// changes what any read returns. The dataset is sized so expansions pass
// the frontier-prefetch interval (>32 settled nodes per query) — on the
// tiny preset no prefetch would fire and the test would vacuously pass.
TEST(PrefetchQueryTest, ResultsBitIdenticalPrefetchOnOff) {
  DatasetConfig config = ScalePreset(PresetSYN(), 0.2);
  config.objects.keywords_per_object = 6;
  testing::BackendDatabase bdb(config, "preequiv");
  Database& db = *bdb;
  IndexOptions opts;
  opts.kind = IndexKind::kSIF;
  db.BuildIndex(opts);
  db.PrepareForQueries();
  const Workload wl = MakeWorkload(db, 16, 41);

  struct Run {
    std::vector<std::vector<SkResult>> sk;
    std::vector<std::vector<RankedResult>> ranked;
    std::vector<std::vector<ObjectId>> div;
  };
  Run runs[2];
  uint64_t issued[2] = {0, 0};
  for (int mode = 0; mode < 2; ++mode) {
    const bool prefetch_on = mode == 0;
    db.SetPrefetchEnabled(prefetch_on);
    ASSERT_TRUE(db.pool()->Clear().ok());  // same cold start for both
    db.ResetCounters();
    for (const WorkloadQuery& wq : wl.queries) {
      std::vector<SkResult> sk;
      ASSERT_TRUE(db.RunSkQuery(wq.sk, wq.edge, &sk).ok());
      runs[mode].sk.push_back(std::move(sk));

      RankedQuery rq;
      rq.sk = wq.sk;
      rq.k = 8;
      std::vector<RankedResult> ranked;
      ASSERT_TRUE(db.RunRankedQuery(rq, wq.edge, &ranked).ok());
      runs[mode].ranked.push_back(std::move(ranked));

      DivQuery dq;
      dq.sk = wq.sk;
      dq.k = 4;
      dq.lambda = 0.8;
      DivSearchOutput div;
      ASSERT_TRUE(db.RunDivQuery(dq, wq.edge, /*use_com=*/true, &div).ok());
      std::vector<ObjectId> selected;
      for (const SkResult& r : div.selected) {
        selected.push_back(r.id);
      }
      runs[mode].div.push_back(std::move(selected));
    }
    issued[mode] = db.pool()->stats_snapshot().prefetch_issued;
  }
  EXPECT_GT(issued[0], 0u) << "the prefetch run must actually prefetch";
  EXPECT_EQ(issued[1], 0u) << "the control run must not";

  for (size_t q = 0; q < wl.queries.size(); ++q) {
    ASSERT_EQ(runs[0].sk[q].size(), runs[1].sk[q].size()) << "query " << q;
    for (size_t i = 0; i < runs[0].sk[q].size(); ++i) {
      EXPECT_EQ(runs[0].sk[q][i].id, runs[1].sk[q][i].id);
      EXPECT_EQ(std::memcmp(&runs[0].sk[q][i].dist, &runs[1].sk[q][i].dist,
                            sizeof(double)),
                0)
          << "query " << q << " result " << i;
    }
    ASSERT_EQ(runs[0].ranked[q].size(), runs[1].ranked[q].size());
    for (size_t i = 0; i < runs[0].ranked[q].size(); ++i) {
      EXPECT_EQ(runs[0].ranked[q][i].id, runs[1].ranked[q][i].id);
      EXPECT_EQ(std::memcmp(&runs[0].ranked[q][i].score,
                            &runs[1].ranked[q][i].score, sizeof(double)),
                0);
    }
    EXPECT_EQ(runs[0].div[q], runs[1].div[q]) << "query " << q;
  }
}

}  // namespace
}  // namespace dsks
