// Storage fault injection: deterministic fault draws, one-shot and
// targeted faults, checksum verification on read, and the contract that
// every failure surfaces as a Status while the disk/pool stay usable.
#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage_test_util.h"
#include "storage/fault_injector.h"
#include "storage/page.h"

namespace dsks {
namespace {

/// Fills `page` with a pattern derived from `tag`.
void FillPage(char* page, char tag) { std::memset(page, tag, kPageSize); }

TEST(FaultInjectionTest, DisarmedDiskReadsAndWritesCleanly) {
  dsks::testing::TestDisk disk;
  const PageId p = disk->AllocatePage();
  char buf[kPageSize];
  FillPage(buf, 'a');
  ASSERT_TRUE(disk->WritePage(p, buf).ok());
  char out[kPageSize];
  ASSERT_TRUE(disk->ReadPage(p, out).ok());
  EXPECT_EQ(std::memcmp(buf, out, kPageSize), 0);
  EXPECT_FALSE(disk->fault_injector()->armed());
  EXPECT_EQ(disk->stats().read_faults.load(), 0u);
  EXPECT_EQ(disk->stats().corruptions_detected.load(), 0u);
}

TEST(FaultInjectionTest, OneShotReadFaultFiresExactlyOnce) {
  dsks::testing::TestDisk disk;
  const PageId p = disk->AllocatePage();
  char buf[kPageSize];
  FillPage(buf, 'b');
  ASSERT_TRUE(disk->WritePage(p, buf).ok());

  disk->fault_injector()->InjectReadFaultOnce();
  EXPECT_TRUE(disk->fault_injector()->armed());
  char out[kPageSize];
  EXPECT_TRUE(disk->ReadPage(p, out).IsIOError());
  // The fault is consumed: the retry succeeds with intact data.
  ASSERT_TRUE(disk->ReadPage(p, out).ok());
  EXPECT_EQ(std::memcmp(buf, out, kPageSize), 0);
  EXPECT_EQ(disk->stats().read_faults.load(), 1u);
  EXPECT_EQ(disk->fault_injector()->stats().read_faults, 1u);
}

TEST(FaultInjectionTest, OneShotWriteFaultLeavesStoredPageIntact) {
  dsks::testing::TestDisk disk;
  const PageId p = disk->AllocatePage();
  char original[kPageSize];
  FillPage(original, 'c');
  ASSERT_TRUE(disk->WritePage(p, original).ok());

  disk->fault_injector()->InjectWriteFaultOnce();
  char update[kPageSize];
  FillPage(update, 'd');
  EXPECT_TRUE(disk->WritePage(p, update).IsIOError());
  // The failed write must not have touched the page or its checksum.
  char out[kPageSize];
  ASSERT_TRUE(disk->ReadPage(p, out).ok());
  EXPECT_EQ(std::memcmp(original, out, kPageSize), 0);
  EXPECT_EQ(disk->stats().write_faults.load(), 1u);
}

TEST(FaultInjectionTest, TargetedPageFaultsHitOnlyThatPage) {
  dsks::testing::TestDisk disk;
  const PageId victim = disk->AllocatePage();
  const PageId bystander = disk->AllocatePage();
  char buf[kPageSize];
  FillPage(buf, 'e');
  ASSERT_TRUE(disk->WritePage(victim, buf).ok());
  ASSERT_TRUE(disk->WritePage(bystander, buf).ok());

  disk->fault_injector()->FailPageReads(victim, 2);
  char out[kPageSize];
  EXPECT_TRUE(disk->ReadPage(victim, out).IsIOError());
  ASSERT_TRUE(disk->ReadPage(bystander, out).ok());  // unaffected
  EXPECT_TRUE(disk->ReadPage(victim, out).IsIOError());
  // Two targeted faults armed, two fired; the page recovers.
  ASSERT_TRUE(disk->ReadPage(victim, out).ok());
  EXPECT_EQ(std::memcmp(buf, out, kPageSize), 0);
  EXPECT_EQ(disk->stats().read_faults.load(), 2u);
}

TEST(FaultInjectionTest, AtRestCorruptionIsCaughtByChecksum) {
  dsks::testing::TestDisk disk;
  const PageId p = disk->AllocatePage();
  char buf[kPageSize];
  FillPage(buf, 'f');
  ASSERT_TRUE(disk->WritePage(p, buf).ok());

  disk->CorruptStoredPage(p, /*bit_index=*/12345);
  char out[kPageSize];
  EXPECT_TRUE(disk->ReadPage(p, out).IsCorruption());
  EXPECT_EQ(disk->stats().corruptions_detected.load(), 1u);
  // Rewriting the page refreshes the checksum and heals it.
  ASSERT_TRUE(disk->WritePage(p, buf).ok());
  ASSERT_TRUE(disk->ReadPage(p, out).ok());
  EXPECT_EQ(std::memcmp(buf, out, kPageSize), 0);
}

TEST(FaultInjectionTest, InjectedBitFlipOnReadIsCorruption) {
  dsks::testing::TestDisk disk;
  const PageId p = disk->AllocatePage();
  char buf[kPageSize];
  FillPage(buf, 'g');
  ASSERT_TRUE(disk->WritePage(p, buf).ok());

  FaultInjector::Config cfg;
  cfg.corrupt_read_p = 1.0;  // every read comes back with one flipped bit
  cfg.seed = 99;
  disk->fault_injector()->Configure(cfg);
  char out[kPageSize];
  EXPECT_TRUE(disk->ReadPage(p, out).IsCorruption());
  EXPECT_GE(disk->fault_injector()->stats().corruptions, 1u);
  EXPECT_GE(disk->stats().corruptions_detected.load(), 1u);

  disk->fault_injector()->Disarm();
  EXPECT_FALSE(disk->fault_injector()->armed());
  // The stored page was never touched — only the returned copy was.
  ASSERT_TRUE(disk->ReadPage(p, out).ok());
  EXPECT_EQ(std::memcmp(buf, out, kPageSize), 0);
}

TEST(FaultInjectionTest, FaultCountIsAFunctionOfSeedAndOpCount) {
  // The injector hashes (seed, op counter), so the number of faults over N
  // reads is reproducible run to run — the property the chaos test's exact
  // accounting relies on.
  constexpr size_t kReads = 4000;
  constexpr double kP = 0.01;
  auto run = [](uint64_t seed) {
    dsks::testing::TestDisk disk;
    const PageId p = disk->AllocatePage();
    char buf[kPageSize];
    FillPage(buf, 'h');
    const Status ws = disk->WritePage(p, buf);
    EXPECT_TRUE(ws.ok());
    FaultInjector::Config cfg;
    cfg.read_fault_p = kP;
    cfg.seed = seed;
    disk->fault_injector()->Configure(cfg);
    size_t faults = 0;
    char out[kPageSize];
    for (size_t i = 0; i < kReads; ++i) {
      if (disk->ReadPage(p, out).IsIOError()) {
        ++faults;
      }
    }
    return faults;
  };
  const size_t a = run(42);
  EXPECT_EQ(a, run(42)) << "same seed, same op count, same fault count";
  EXPECT_NE(a, run(43)) << "a different seed draws a different pattern";
  // The rate is in the right ballpark (40 expected; 5x margins).
  EXPECT_GT(a, 8u);
  EXPECT_LT(a, 200u);
}

TEST(FaultInjectionTest, BufferPoolPropagatesReadErrorsAndRecovers) {
  dsks::testing::TestDisk disk;
  BufferPool pool(disk.get(), 8);
  PageId p;
  char* data = pool.NewPage(&p);
  FillPage(data, 'i');
  pool.UnpinPage(p, /*dirty=*/true);
  ASSERT_TRUE(pool.FlushAll().ok());
  ASSERT_TRUE(pool.Clear().ok());  // force the next fetch to miss

  disk->fault_injector()->FailPageReads(p, 1);
  char* out = reinterpret_cast<char*>(0x1);
  char* const sentinel = out;
  EXPECT_TRUE(pool.FetchPage(p, &out).IsIOError());
  EXPECT_EQ(out, sentinel) << "failed fetch must not touch *out";
  // Nothing is pinned after a failed fetch; the pool remains usable and
  // the next fetch re-reads the page successfully.
  ASSERT_TRUE(pool.FetchPage(p, &out).ok());
  EXPECT_EQ(out[17], 'i');
  pool.UnpinPage(p, /*dirty=*/false);
}

TEST(FaultInjectionTest, BufferPoolSurfacesCorruptPage) {
  dsks::testing::TestDisk disk;
  BufferPool pool(disk.get(), 8);
  PageId p;
  char* data = pool.NewPage(&p);
  FillPage(data, 'j');
  pool.UnpinPage(p, /*dirty=*/true);
  ASSERT_TRUE(pool.FlushAll().ok());
  ASSERT_TRUE(pool.Clear().ok());

  disk->CorruptStoredPage(p, /*bit_index=*/7);
  char* out = nullptr;
  EXPECT_TRUE(pool.FetchPage(p, &out).IsCorruption());
  EXPECT_EQ(disk->stats().corruptions_detected.load(), 1u);
}

TEST(FaultInjectionTest, CachedPagesAreImmuneToReadFaults) {
  // Checksum verification and read faults live on the miss path only: a
  // page resident in the pool never touches the disk again.
  dsks::testing::TestDisk disk;
  BufferPool pool(disk.get(), 8);
  PageId p;
  char* data = pool.NewPage(&p);
  FillPage(data, 'k');
  pool.UnpinPage(p, /*dirty=*/true);
  ASSERT_TRUE(pool.FlushAll().ok());

  FaultInjector::Config cfg;
  cfg.read_fault_p = 1.0;  // every *disk* read fails...
  cfg.seed = 7;
  disk->fault_injector()->Configure(cfg);
  char* out = nullptr;
  ASSERT_TRUE(pool.FetchPage(p, &out).ok());  // ...but this one is a hit
  EXPECT_EQ(out[3], 'k');
  pool.UnpinPage(p, /*dirty=*/false);
  EXPECT_EQ(disk->stats().read_faults.load(), 0u);
}

}  // namespace
}  // namespace dsks
