#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"
#include "core/core_pairs.h"
#include "core/diversify.h"
#include "gtest/gtest.h"

namespace dsks {
namespace {

/// Random symmetric theta matrix over object ids 0..n-1 with distinct
/// values (ties have measure zero with a continuous RNG).
struct ThetaWorld {
  std::vector<std::vector<double>> theta;

  CorePairSet::ThetaById Fn() const {
    return [this](ObjectId a, ObjectId b) { return theta[a][b]; };
  }
};

ThetaWorld MakeThetaWorld(uint64_t seed, size_t n) {
  ThetaWorld w;
  Random rng(seed);
  w.theta.assign(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double t = rng.NextDouble();
      w.theta[i][j] = t;
      w.theta[j][i] = t;
    }
  }
  return w;
}

/// From-scratch reference: Algorithm 1's pair selection over the ids.
std::vector<ScoredPair> GreedyPairsReference(const std::vector<ObjectId>& ids,
                                             const ThetaWorld& w,
                                             size_t num_pairs) {
  std::vector<ScoredPair> pairs;
  std::vector<ObjectId> remaining = ids;
  while (pairs.size() < num_pairs && remaining.size() >= 2) {
    bool found = false;
    ScoredPair best;
    ObjectId bi = 0;
    ObjectId bj = 0;
    for (size_t i = 0; i < remaining.size(); ++i) {
      for (size_t j = i + 1; j < remaining.size(); ++j) {
        const ScoredPair sp = ScoredPair::Make(
            w.theta[remaining[i]][remaining[j]], remaining[i], remaining[j]);
        if (!found || sp.Better(best)) {
          found = true;
          best = sp;
          bi = remaining[i];
          bj = remaining[j];
        }
      }
    }
    pairs.push_back(best);
    remaining.erase(std::remove(remaining.begin(), remaining.end(), bi),
                    remaining.end());
    remaining.erase(std::remove(remaining.begin(), remaining.end(), bj),
                    remaining.end());
  }
  return pairs;
}

struct CorePairSweep {
  uint64_t seed;
  size_t n;          // total objects streamed
  size_t num_pairs;  // k/2
};

class CorePairPropertyTest
    : public ::testing::TestWithParam<CorePairSweep> {};

/// The §4.2 invariant: after every arrival, the incrementally maintained
/// CP equals the from-scratch greedy pairs over all objects seen so far,
/// and θ_T never decreases (Theorem 1).
TEST_P(CorePairPropertyTest, MatchesFromScratchGreedyAfterEveryArrival) {
  const auto p = GetParam();
  const ThetaWorld w = MakeThetaWorld(p.seed, p.n);
  const size_t k = p.num_pairs * 2;

  std::vector<ObjectId> seen;
  for (ObjectId id = 0; id < k; ++id) {
    seen.push_back(id);
  }
  CorePairSet cp(p.num_pairs);
  cp.Init(GreedyPairsReference(seen, w, p.num_pairs));
  ASSERT_TRUE(cp.full());

  double prev_theta_t = cp.threshold().theta;
  for (ObjectId id = static_cast<ObjectId>(k); id < p.n; ++id) {
    seen.push_back(id);
    cp.OnArrival(id, seen, w.Fn());

    // θ_T monotonicity.
    EXPECT_GE(cp.threshold().theta, prev_theta_t - 1e-12);
    prev_theta_t = cp.threshold().theta;

    // Exact match with the from-scratch greedy.
    const auto want = GreedyPairsReference(seen, w, p.num_pairs);
    const auto& got = cp.pairs();
    ASSERT_EQ(got.size(), want.size()) << "after arrival " << id;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].a, want[i].a) << "arrival " << id << " pair " << i;
      EXPECT_EQ(got[i].b, want[i].b) << "arrival " << id << " pair " << i;
      EXPECT_NEAR(got[i].theta, want[i].theta, 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CorePairPropertyTest,
    ::testing::Values(CorePairSweep{1, 30, 2},
                      CorePairSweep{2, 40, 3},
                      CorePairSweep{3, 60, 5},
                      CorePairSweep{4, 25, 1},
                      CorePairSweep{5, 80, 4},
                      CorePairSweep{6, 50, 7},
                      CorePairSweep{7, 100, 5}));

TEST(CorePairSetTest, CoreObjectsAndMembership) {
  const ThetaWorld w = MakeThetaWorld(11, 10);
  std::vector<ObjectId> seen = {0, 1, 2, 3};
  CorePairSet cp(2);
  cp.Init(GreedyPairsReference(seen, w, 2));
  const auto core = cp.CoreObjects();
  EXPECT_EQ(core.size(), 4u);
  for (ObjectId id : core) {
    EXPECT_TRUE(cp.IsCore(id));
  }
  EXPECT_FALSE(cp.IsCore(9));
}

TEST(CorePairSetTest, ArrivalBelowThresholdChangesNothing) {
  // Build a world where object 4 is uniformly terrible.
  ThetaWorld w = MakeThetaWorld(12, 5);
  for (size_t i = 0; i < 5; ++i) {
    w.theta[4][i] = w.theta[i][4] = 1e-6;
  }
  std::vector<ObjectId> seen = {0, 1, 2, 3};
  CorePairSet cp(2);
  cp.Init(GreedyPairsReference(seen, w, 2));
  const auto before = cp.pairs();
  seen.push_back(4);
  cp.OnArrival(4, seen, w.Fn());
  const auto& after = cp.pairs();
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].a, after[i].a);
    EXPECT_EQ(before[i].b, after[i].b);
  }
}

TEST(CorePairSetTest, DominatingArrivalTriggersCascade) {
  // Craft the paper's case iii: the newcomer pairs with a core object,
  // displacing its partner, which then re-enters and pairs elsewhere.
  ThetaWorld w;
  w.theta.assign(6, std::vector<double>(6, 0.01));
  auto set = [&w](ObjectId a, ObjectId b, double t) {
    w.theta[a][b] = w.theta[b][a] = t;
  };
  set(0, 1, 0.90);  // initial pair 1
  set(2, 3, 0.80);  // initial pair 2
  std::vector<ObjectId> seen = {0, 1, 2, 3};
  CorePairSet cp(2);
  cp.Init(GreedyPairsReference(seen, w, 2));

  set(4, 0, 0.95);  // newcomer beats pair 1 through core object 0
  set(1, 5, 0.0);   // (5 unused)
  set(1, 2, 0.85);  // displaced object 1 now beats pair 2 via object 2
  seen.push_back(4);
  cp.OnArrival(4, seen, w.Fn());

  const auto want = GreedyPairsReference(seen, w, 2);
  const auto& got = cp.pairs();
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].a, want[i].a);
    EXPECT_EQ(got[i].b, want[i].b);
  }
  // The cascade happened: (0,4) and (1,2) are the pairs now.
  EXPECT_TRUE(cp.IsCore(4));
  EXPECT_TRUE(cp.IsCore(1));
  EXPECT_FALSE(cp.IsCore(3));
}

}  // namespace
}  // namespace dsks
