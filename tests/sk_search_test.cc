#include <algorithm>
#include <memory>
#include <vector>

#include "core/sk_search.h"
#include "datagen/workload.h"
#include "graph/ccam.h"
#include "gtest/gtest.h"
#include "index/sif.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "tests/test_util.h"

namespace dsks {
namespace {

using ::dsks::testing::BruteForceSkSearch;
using ::dsks::testing::MakeRandomDataset;
using ::dsks::testing::TestDataset;

/// Everything an INE test needs, wired together.
struct SearchFixture {
  TestDataset data;
  DiskManager disk;
  std::unique_ptr<BufferPool> pool;
  CcamFile ccam;
  std::unique_ptr<CcamGraph> graph;
  std::unique_ptr<SifIndex> index;

  explicit SearchFixture(uint64_t seed, size_t nodes = 150,
                         size_t objects = 500, size_t vocab = 25,
                         size_t keywords = 4) {
    data = MakeRandomDataset(seed, nodes, objects, vocab, keywords, 1.0);
    pool = std::make_unique<BufferPool>(&disk, 1u << 15);
    ccam = CcamFileBuilder::Build(*data.network, &disk);
    graph = std::make_unique<CcamGraph>(&ccam, pool.get());
    index = std::make_unique<SifIndex>(pool.get(), *data.objects, vocab, 1);
  }

  IncrementalSkSearch MakeSearch(const SkQuery& query) {
    const QueryEdgeInfo info =
        MakeQueryEdgeInfo(*data.network, query.loc);
    return IncrementalSkSearch(graph.get(), index.get(), query, info);
  }
};

struct SkSweepParam {
  uint64_t seed;
  size_t query_terms;
  double delta_max;
};

class SkSearchPropertyTest : public ::testing::TestWithParam<SkSweepParam> {};

/// Algorithm 3 must return exactly the brute-force result set, with exact
/// distances, in non-decreasing distance order.
TEST_P(SkSearchPropertyTest, MatchesBruteForce) {
  const SkSweepParam p = GetParam();
  SearchFixture fx(p.seed);
  Random rng(p.seed ^ 0xACE);

  for (int round = 0; round < 12; ++round) {
    SkQuery query;
    query.loc = testing::LocationOfObject(*fx.data.objects,
                                          rng.Uniform(500));
    while (query.terms.size() < p.query_terms) {
      const TermId t = static_cast<TermId>(rng.Uniform(25));
      if (std::find(query.terms.begin(), query.terms.end(), t) ==
          query.terms.end()) {
        query.terms.push_back(t);
      }
    }
    std::sort(query.terms.begin(), query.terms.end());
    query.delta_max = p.delta_max;

    auto search = fx.MakeSearch(query);
    std::vector<SkResult> got;
    SkResult r;
    double prev = 0.0;
    while (search.Next(&r)) {
      EXPECT_GE(r.dist, prev - 1e-9) << "order violated";
      prev = r.dist;
      EXPECT_LE(r.dist, query.delta_max + 1e-9);
      got.push_back(r);
    }

    const auto want = BruteForceSkSearch(*fx.data.network, *fx.data.objects,
                                         query);
    ASSERT_EQ(got.size(), want.size()) << "round " << round;
    // Compare as sets (ties may order differently).
    std::sort(got.begin(), got.end(),
              [](const SkResult& a, const SkResult& b) {
                return a.dist != b.dist ? a.dist < b.dist : a.id < b.id;
              });
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id) << "round " << round << " i=" << i;
      EXPECT_NEAR(got[i].dist, want[i].dist, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SkSearchPropertyTest,
    ::testing::Values(SkSweepParam{201, 1, 400.0},
                      SkSweepParam{202, 2, 900.0},
                      SkSweepParam{203, 3, 1500.0},
                      SkSweepParam{204, 2, 3000.0},
                      SkSweepParam{205, 4, 50000.0},  // whole network
                      SkSweepParam{206, 1, 50.0}));   // tiny range

TEST(SkSearchTest, ResultsCarryConsistentEdgeGeometry) {
  SearchFixture fx(301);
  SkQuery query;
  query.loc = testing::LocationOfObject(*fx.data.objects, 3);
  query.terms = {0};
  query.delta_max = 2000.0;
  auto search = fx.MakeSearch(query);
  SkResult r;
  int checked = 0;
  while (search.Next(&r)) {
    const Edge& e = fx.data.network->edge(r.edge);
    EXPECT_EQ(r.n1, e.n1);
    EXPECT_EQ(r.n2, e.n2);
    EXPECT_DOUBLE_EQ(r.edge_weight, e.weight);
    EXPECT_GE(r.w1, -1e-9);
    EXPECT_LE(r.w1, e.weight + 1e-9);
    const auto& obj = fx.data.objects->object(r.id);
    EXPECT_EQ(obj.edge, r.edge);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(SkSearchTest, TerminateStopsTheStream) {
  SearchFixture fx(302);
  SkQuery query;
  query.loc = testing::LocationOfObject(*fx.data.objects, 9);
  query.terms = {0};
  query.delta_max = 5000.0;
  auto search = fx.MakeSearch(query);
  SkResult r;
  ASSERT_TRUE(search.Next(&r));
  search.Terminate();
  EXPECT_FALSE(search.Next(&r));
}

TEST(SkSearchTest, EmptyWhenKeywordAbsent) {
  SearchFixture fx(303);
  SkQuery query;
  query.loc = testing::LocationOfObject(*fx.data.objects, 0);
  query.terms = {23, 24};  // rare tail terms co-occurring is unlikely;
  query.delta_max = 100.0;  // and the range is tiny
  auto search = fx.MakeSearch(query);
  const auto want =
      BruteForceSkSearch(*fx.data.network, *fx.data.objects, query);
  SkResult r;
  size_t got = 0;
  while (search.Next(&r)) ++got;
  EXPECT_EQ(got, want.size());
}

TEST(SkSearchTest, QueryOnObjectFindsItAtDistanceZero) {
  SearchFixture fx(304);
  // Query placed exactly on object 0, with one of its keywords.
  const auto& obj = fx.data.objects->object(0);
  SkQuery query;
  query.loc = NetworkLocation{obj.edge, obj.offset};
  query.terms = {obj.terms[0]};
  query.delta_max = 500.0;
  auto search = fx.MakeSearch(query);
  SkResult r;
  ASSERT_TRUE(search.Next(&r));
  EXPECT_NEAR(r.dist, 0.0, 1e-9);
}

TEST(SkSearchTest, ExpansionIsBoundedByDeltaMax) {
  SearchFixture fx(305);
  SkQuery query;
  query.loc = testing::LocationOfObject(*fx.data.objects, 1);
  query.terms = {0};
  query.delta_max = 300.0;
  auto small = fx.MakeSearch(query);
  SkResult r;
  while (small.Next(&r)) {
  }
  const uint64_t small_nodes = small.stats().nodes_settled;

  query.delta_max = 3000.0;
  auto large = fx.MakeSearch(query);
  while (large.Next(&r)) {
  }
  EXPECT_LT(small_nodes, large.stats().nodes_settled);
  EXPECT_LT(small_nodes, fx.data.network->num_nodes());
}

}  // namespace
}  // namespace dsks
