#ifndef DSKS_TESTS_TEST_UTIL_H_
#define DSKS_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <memory>
#include <vector>

#include "common/random.h"
#include "core/query.h"
#include "datagen/network_generator.h"
#include "datagen/object_generator.h"
#include "graph/dijkstra.h"
#include "graph/object_set.h"
#include "graph/road_network.h"

namespace dsks::testing {

/// A small generated dataset for property tests.
struct TestDataset {
  std::unique_ptr<RoadNetwork> network;
  std::unique_ptr<ObjectSet> objects;
};

inline TestDataset MakeRandomDataset(uint64_t seed, size_t num_nodes = 150,
                                     size_t num_objects = 400,
                                     size_t vocab_size = 30,
                                     size_t keywords_per_object = 4,
                                     double zipf_z = 1.0) {
  NetworkGenConfig nc;
  nc.num_nodes = num_nodes;
  nc.edge_node_ratio = 1.4;
  nc.seed = seed;
  ObjectGenConfig oc;
  oc.num_objects = num_objects;
  oc.vocab_size = vocab_size;
  oc.keywords_per_object = keywords_per_object;
  oc.fixed_keyword_count = false;
  oc.zipf_z = zipf_z;
  oc.seed = seed ^ 0x5555;
  TestDataset d;
  d.network = GenerateRoadNetwork(nc);
  d.objects = GenerateObjects(*d.network, oc);
  return d;
}

/// Reference SK search: exact distances to every object, filtered by the
/// AND keyword constraint and δmax, sorted by (distance, id).
struct BruteResult {
  ObjectId id;
  double dist;
};

inline std::vector<BruteResult> BruteForceSkSearch(
    const RoadNetwork& net, const ObjectSet& objects, const SkQuery& query) {
  std::vector<NetworkLocation> locs;
  std::vector<ObjectId> ids;
  for (const auto& obj : objects.objects()) {
    if (objects.ObjectHasAllTerms(obj.id, query.terms)) {
      locs.push_back(NetworkLocation{obj.edge, obj.offset});
      ids.push_back(obj.id);
    }
  }
  const std::vector<double> dist = DistancesToLocations(net, query.loc, locs);
  std::vector<BruteResult> out;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (dist[i] <= query.delta_max) {
      out.push_back(BruteResult{ids[i], dist[i]});
    }
  }
  std::sort(out.begin(), out.end(), [](const BruteResult& a,
                                       const BruteResult& b) {
    return a.dist != b.dist ? a.dist < b.dist : a.id < b.id;
  });
  return out;
}

/// A deterministic "query" location: the position of the object with the
/// given index (mod size).
inline NetworkLocation LocationOfObject(const ObjectSet& objects,
                                        size_t index) {
  const auto& obj = objects.object(
      static_cast<ObjectId>(index % objects.size()));
  return NetworkLocation{obj.edge, obj.offset};
}

}  // namespace dsks::testing

#endif  // DSKS_TESTS_TEST_UTIL_H_
