#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "graph/serialization.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace dsks {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializationTest, RoundTripPreservesEverything) {
  auto data = testing::MakeRandomDataset(123, 120, 300, 25, 4);
  const std::string path = TempPath("roundtrip.dsks");
  ASSERT_TRUE(SaveDataset(*data.network, *data.objects, path).ok());

  std::unique_ptr<RoadNetwork> net;
  std::unique_ptr<ObjectSet> objs;
  ASSERT_TRUE(LoadDataset(path, &net, &objs).ok());

  ASSERT_EQ(net->num_nodes(), data.network->num_nodes());
  ASSERT_EQ(net->num_edges(), data.network->num_edges());
  for (NodeId v = 0; v < net->num_nodes(); ++v) {
    EXPECT_EQ(net->node(v).loc, data.network->node(v).loc);
  }
  for (EdgeId e = 0; e < net->num_edges(); ++e) {
    EXPECT_EQ(net->edge(e).n1, data.network->edge(e).n1);
    EXPECT_EQ(net->edge(e).n2, data.network->edge(e).n2);
    EXPECT_DOUBLE_EQ(net->edge(e).weight, data.network->edge(e).weight);
    EXPECT_DOUBLE_EQ(net->edge(e).length, data.network->edge(e).length);
  }
  ASSERT_EQ(objs->size(), data.objects->size());
  for (ObjectId id = 0; id < objs->size(); ++id) {
    const auto& a = objs->object(id);
    const auto& b = data.objects->object(id);
    EXPECT_EQ(a.edge, b.edge);
    EXPECT_DOUBLE_EQ(a.offset, b.offset);
    EXPECT_EQ(a.terms, b.terms);
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileIsNotFound) {
  std::unique_ptr<RoadNetwork> net;
  std::unique_ptr<ObjectSet> objs;
  EXPECT_TRUE(
      LoadDataset("/nonexistent/nope.dsks", &net, &objs).IsNotFound());
}

TEST(SerializationTest, BadMagicIsCorruption) {
  const std::string path = TempPath("badmagic.dsks");
  {
    std::ofstream out(path, std::ios::binary);
    out << "JUNKJUNKJUNK";
  }
  std::unique_ptr<RoadNetwork> net;
  std::unique_ptr<ObjectSet> objs;
  EXPECT_TRUE(LoadDataset(path, &net, &objs).IsCorruption());
  std::remove(path.c_str());
}

TEST(SerializationTest, TruncatedFileIsCorruption) {
  auto data = testing::MakeRandomDataset(321, 60, 80, 15, 3);
  const std::string full = TempPath("full.dsks");
  ASSERT_TRUE(SaveDataset(*data.network, *data.objects, full).ok());

  // Truncate at several byte positions; every one must fail cleanly.
  std::ifstream in(full, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  for (size_t cut : {5ul, 20ul, bytes.size() / 2, bytes.size() - 3}) {
    const std::string path = TempPath("truncated.dsks");
    {
      std::ofstream out(path, std::ios::binary);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    std::unique_ptr<RoadNetwork> net;
    std::unique_ptr<ObjectSet> objs;
    const Status s = LoadDataset(path, &net, &objs);
    EXPECT_TRUE(s.IsCorruption()) << "cut at " << cut << ": " << s.ToString();
    std::remove(path.c_str());
  }
  std::remove(full.c_str());
}

TEST(SerializationTest, WrongVersionIsCorruption) {
  auto data = testing::MakeRandomDataset(322, 40, 50, 10, 3);
  const std::string path = TempPath("badversion.dsks");
  ASSERT_TRUE(SaveDataset(*data.network, *data.objects, path).ok());
  {
    // The u32 version lives right after the 4-byte magic.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(4);
    const uint32_t bogus = 9999;
    f.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  }
  std::unique_ptr<RoadNetwork> net;
  std::unique_ptr<ObjectSet> objs;
  const Status s = LoadDataset(path, &net, &objs);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  std::remove(path.c_str());
}

TEST(SerializationTest, ImplausibleCountsAreCorruptionNotBadAlloc) {
  // A flipped bit in a count field must fail cleanly, not attempt a
  // multi-gigabyte allocation. The node loop reads coordinates per node,
  // so a huge count lands in "truncated node table"; the term-count guard
  // catches the per-object case explicitly.
  auto data = testing::MakeRandomDataset(323, 40, 50, 10, 3);
  const std::string full = TempPath("counts.dsks");
  ASSERT_TRUE(SaveDataset(*data.network, *data.objects, full).ok());
  std::ifstream in(full, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  // Node count (u64 at offset 8) blown up to 2^40.
  std::string blown = bytes;
  const uint64_t huge = uint64_t{1} << 40;
  std::memcpy(&blown[8], &huge, sizeof(huge));
  const std::string path = TempPath("hugecount.dsks");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(blown.data(), static_cast<std::streamsize>(blown.size()));
  }
  std::unique_ptr<RoadNetwork> net;
  std::unique_ptr<ObjectSet> objs;
  const Status s = LoadDataset(path, &net, &objs);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  std::remove(path.c_str());
  std::remove(full.c_str());
}

TEST(SerializationTest, EdgeReferencingMissingNodeIsCorruption) {
  // Hand-build a file whose edge table points at a node that is not in
  // the node table: structurally complete, semantically corrupt.
  const std::string path = TempPath("badedge.dsks");
  {
    std::ofstream out(path, std::ios::binary);
    out.write("DSKS", 4);
    const uint32_t version = 1;
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    const uint64_t num_nodes = 2;
    out.write(reinterpret_cast<const char*>(&num_nodes), sizeof(num_nodes));
    const double coords[4] = {0.0, 0.0, 1.0, 0.0};
    out.write(reinterpret_cast<const char*>(coords), sizeof(coords));
    const uint64_t num_edges = 1;
    out.write(reinterpret_cast<const char*>(&num_edges), sizeof(num_edges));
    const uint32_t n1 = 0;
    const uint32_t n2 = 57;  // no such node
    const double weight = 1.0;
    out.write(reinterpret_cast<const char*>(&n1), sizeof(n1));
    out.write(reinterpret_cast<const char*>(&n2), sizeof(n2));
    out.write(reinterpret_cast<const char*>(&weight), sizeof(weight));
  }
  std::unique_ptr<RoadNetwork> net;
  std::unique_ptr<ObjectSet> objs;
  const Status s = LoadDataset(path, &net, &objs);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  std::remove(path.c_str());
}

TEST(SerializationTest, ShortWriteToUnwritablePathFailsCleanly) {
  auto data = testing::MakeRandomDataset(324, 40, 50, 10, 3);
  const Status s =
      SaveDataset(*data.network, *data.objects, "/nonexistent/dir/x.dsks");
  EXPECT_FALSE(s.ok());
}

TEST(SerializationTest, SaveRequiresFinalizedDataset) {
  RoadNetwork net;
  net.AddNode({0, 0});
  net.AddNode({1, 0});
  ObjectSet objs(&net);
  EXPECT_TRUE(SaveDataset(net, objs, TempPath("x.dsks")).IsInvalidArgument());
}

}  // namespace
}  // namespace dsks
