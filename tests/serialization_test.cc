#include <cstdio>
#include <fstream>
#include <string>

#include "graph/serialization.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace dsks {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializationTest, RoundTripPreservesEverything) {
  auto data = testing::MakeRandomDataset(123, 120, 300, 25, 4);
  const std::string path = TempPath("roundtrip.dsks");
  ASSERT_TRUE(SaveDataset(*data.network, *data.objects, path).ok());

  std::unique_ptr<RoadNetwork> net;
  std::unique_ptr<ObjectSet> objs;
  ASSERT_TRUE(LoadDataset(path, &net, &objs).ok());

  ASSERT_EQ(net->num_nodes(), data.network->num_nodes());
  ASSERT_EQ(net->num_edges(), data.network->num_edges());
  for (NodeId v = 0; v < net->num_nodes(); ++v) {
    EXPECT_EQ(net->node(v).loc, data.network->node(v).loc);
  }
  for (EdgeId e = 0; e < net->num_edges(); ++e) {
    EXPECT_EQ(net->edge(e).n1, data.network->edge(e).n1);
    EXPECT_EQ(net->edge(e).n2, data.network->edge(e).n2);
    EXPECT_DOUBLE_EQ(net->edge(e).weight, data.network->edge(e).weight);
    EXPECT_DOUBLE_EQ(net->edge(e).length, data.network->edge(e).length);
  }
  ASSERT_EQ(objs->size(), data.objects->size());
  for (ObjectId id = 0; id < objs->size(); ++id) {
    const auto& a = objs->object(id);
    const auto& b = data.objects->object(id);
    EXPECT_EQ(a.edge, b.edge);
    EXPECT_DOUBLE_EQ(a.offset, b.offset);
    EXPECT_EQ(a.terms, b.terms);
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileIsNotFound) {
  std::unique_ptr<RoadNetwork> net;
  std::unique_ptr<ObjectSet> objs;
  EXPECT_TRUE(
      LoadDataset("/nonexistent/nope.dsks", &net, &objs).IsNotFound());
}

TEST(SerializationTest, BadMagicIsCorruption) {
  const std::string path = TempPath("badmagic.dsks");
  {
    std::ofstream out(path, std::ios::binary);
    out << "JUNKJUNKJUNK";
  }
  std::unique_ptr<RoadNetwork> net;
  std::unique_ptr<ObjectSet> objs;
  EXPECT_TRUE(LoadDataset(path, &net, &objs).IsCorruption());
  std::remove(path.c_str());
}

TEST(SerializationTest, TruncatedFileIsCorruption) {
  auto data = testing::MakeRandomDataset(321, 60, 80, 15, 3);
  const std::string full = TempPath("full.dsks");
  ASSERT_TRUE(SaveDataset(*data.network, *data.objects, full).ok());

  // Truncate at several byte positions; every one must fail cleanly.
  std::ifstream in(full, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  for (size_t cut : {5ul, 20ul, bytes.size() / 2, bytes.size() - 3}) {
    const std::string path = TempPath("truncated.dsks");
    {
      std::ofstream out(path, std::ios::binary);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    std::unique_ptr<RoadNetwork> net;
    std::unique_ptr<ObjectSet> objs;
    const Status s = LoadDataset(path, &net, &objs);
    EXPECT_TRUE(s.IsCorruption()) << "cut at " << cut << ": " << s.ToString();
    std::remove(path.c_str());
  }
  std::remove(full.c_str());
}

TEST(SerializationTest, SaveRequiresFinalizedDataset) {
  RoadNetwork net;
  net.AddNode({0, 0});
  net.AddNode({1, 0});
  ObjectSet objs(&net);
  EXPECT_TRUE(SaveDataset(net, objs, TempPath("x.dsks")).IsInvalidArgument());
}

}  // namespace
}  // namespace dsks
