// StatsServer: a real client over a real loopback socket must get valid
// responses from every route, correct errors for everything else, and a
// clean idempotent shutdown.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>

#include "gtest/gtest.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/stats_server.h"

namespace dsks {
namespace {

/// One raw HTTP exchange against 127.0.0.1:port; returns the full
/// response (status line, headers, body) or "" on connect failure.
std::string HttpExchange(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      break;
    }
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(uint16_t port, const std::string& path) {
  return HttpExchange(port, "GET " + path +
                                " HTTP/1.1\r\nHost: localhost\r\n"
                                "Connection: close\r\n\r\n");
}

TEST(StatsServerTest, ServesMetricsVarzTracezOnEphemeralPort) {
  obs::MetricsRegistry reg;
  reg.counter("executor.queries").Add(5);
  reg.histogram("executor.query_ms").Record(2.0);
  obs::FlightRecorder rec;
  obs::QuerySummary s;
  s.total_ms = 7.0;
  rec.Record(s);

  obs::StatsServer server(&reg, &rec);
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);

  const std::string health = Get(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("ok"), std::string::npos) << health;

  const std::string metrics = Get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("# TYPE dsks_executor_queries counter"),
            std::string::npos)
      << metrics;

  // Query strings are stripped before routing (scrapers add them).
  const std::string varz = Get(server.port(), "/varz?pretty=1");
  EXPECT_NE(varz.find("200 OK"), std::string::npos) << varz;
  EXPECT_NE(varz.find("\"executor.queries\":5"), std::string::npos) << varz;

  const std::string tracez = Get(server.port(), "/tracez");
  EXPECT_NE(tracez.find("200 OK"), std::string::npos) << tracez;
  EXPECT_NE(tracez.find("\"recorded\":1"), std::string::npos) << tracez;
  EXPECT_NE(tracez.find("\"ms\":7.000000"), std::string::npos) << tracez;

  EXPECT_NE(Get(server.port(), "/nope").find("404"), std::string::npos);
  const std::string post =
      HttpExchange(server.port(),
                   "POST /metrics HTTP/1.1\r\nHost: x\r\n"
                   "Connection: close\r\n\r\n");
  EXPECT_NE(post.find("405"), std::string::npos) << post;

  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

TEST(StatsServerTest, NullSourcesServe404ButStayHealthy) {
  obs::StatsServer server(nullptr, nullptr);
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_NE(Get(server.port(), "/healthz").find("200 OK"), std::string::npos);
  EXPECT_NE(Get(server.port(), "/metrics").find("404"), std::string::npos);
  EXPECT_NE(Get(server.port(), "/tracez").find("404"), std::string::npos);
  server.Stop();
}

TEST(StatsServerTest, SlowClientCannotWedgeTheAcceptLoop) {
  // Regression for the single-accept-loop wedge: a client that connects,
  // sends a request, and then never reads the response used to stall the
  // loop for as long as the kernel socket buffer stayed full — SO_SNDTIMEO
  // only bounded each send() call, and a trickle-reading client resets
  // that clock forever. The fix is an overall per-connection budget.
  obs::MetricsRegistry reg;
  // Make the response body large enough (hundreds of KB) that it cannot
  // fit in the socket buffers of a non-reading client.
  for (int i = 0; i < 4000; ++i) {
    reg.counter("padding.counter." + std::to_string(i)).Add(1);
  }
  obs::StatsServer server(&reg, nullptr);
  server.set_io_timeout_ms(300);
  ASSERT_TRUE(server.Start(0).ok());

  // The stalled client: request /varz, never read a byte of the answer.
  const int stalled = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(stalled, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  // Shrink the receive window so the server hits EAGAIN quickly.
  const int tiny = 4096;
  ::setsockopt(stalled, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
  ASSERT_EQ(
      ::connect(stalled, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string request =
      "GET /varz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(::send(stalled, request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));

  // A well-behaved client must still be served promptly: the stalled one
  // is dropped after the budget, not waited on forever. Allow for the
  // budget itself plus scheduling noise, nothing more.
  const auto t0 = std::chrono::steady_clock::now();
  const std::string health = Get(server.port(), "/healthz");
  const double waited_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_NE(health.find("200 OK"), std::string::npos) << health;
  EXPECT_LT(waited_ms, 5000.0);

  ::close(stalled);
  server.Stop();
}

TEST(StatsServerTest, TwoServersCoexistOnDistinctPorts) {
  obs::MetricsRegistry reg;
  obs::StatsServer a(&reg, nullptr);
  obs::StatsServer b(&reg, nullptr);
  ASSERT_TRUE(a.Start(0).ok());
  ASSERT_TRUE(b.Start(0).ok());
  EXPECT_NE(a.port(), b.port());
  EXPECT_NE(Get(a.port(), "/healthz").find("200"), std::string::npos);
  EXPECT_NE(Get(b.port(), "/healthz").find("200"), std::string::npos);
  // Destructors stop both; `a` explicitly, `b` via RAII.
  a.Stop();
}

}  // namespace
}  // namespace dsks
