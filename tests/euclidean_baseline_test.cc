#include <algorithm>
#include <memory>
#include <vector>

#include "core/euclidean_baseline.h"
#include "core/sk_search.h"
#include "datagen/workload.h"
#include "graph/ccam.h"
#include "gtest/gtest.h"
#include "index/inverted_rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "tests/test_util.h"

namespace dsks {
namespace {

using ::dsks::testing::MakeRandomDataset;
using ::dsks::testing::TestDataset;

class EuclideanBaselineTest : public ::testing::TestWithParam<uint64_t> {};

/// The filter-and-refine baseline must return exactly the Definition 1
/// result set (it is an alternative evaluation strategy, not an
/// approximation) — equivalence holds because edge weights equal edge
/// lengths in these datasets, making Euclidean distance a lower bound.
TEST_P(EuclideanBaselineTest, EquivalentToBruteForce) {
  TestDataset data = MakeRandomDataset(GetParam(), 140, 450, 20, 4, 1.0);
  DiskManager disk;
  BufferPool pool(&disk, 1u << 15);
  const CcamFile ccam = CcamFileBuilder::Build(*data.network, &disk);
  CcamGraph graph(&ccam, &pool);
  InvertedRTreeIndex index(&pool, *data.objects, 20);

  Random rng(GetParam() ^ 0xE0C1);
  for (int round = 0; round < 10; ++round) {
    SkQuery q;
    q.loc = testing::LocationOfObject(*data.objects, rng.Uniform(450));
    q.terms = {static_cast<TermId>(rng.Uniform(6)),
               static_cast<TermId>(6 + rng.Uniform(14))};
    std::sort(q.terms.begin(), q.terms.end());
    q.delta_max = 300.0 + 200.0 * static_cast<double>(round);

    const QueryEdgeInfo qe = MakeQueryEdgeInfo(*data.network, q.loc);
    EuclideanBaselineStats stats;
    std::vector<SkResult> got;
    ASSERT_TRUE(EuclideanFilterRefine(&graph, *data.network, &index, q, qe,
                                      &got, &stats)
                    .ok());
    const auto want =
        testing::BruteForceSkSearch(*data.network, *data.objects, q);
    ASSERT_EQ(got.size(), want.size()) << "round " << round;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id);
      EXPECT_NEAR(got[i].dist, want[i].dist, 1e-9);
    }
    // The filter never under-approximates.
    EXPECT_GE(stats.euclidean_candidates, got.size());
    EXPECT_EQ(stats.verified, got.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EuclideanBaselineTest,
                         ::testing::Values(601, 602, 603, 604));

TEST(EuclideanBaselineTest, FilterAdmitsNetworkUnreachableCandidates) {
  // A network where Euclidean proximity lies: two parallel roads connected
  // only at the far end, so the straight-line neighbour is a long drive.
  RoadNetwork net;
  //  n0 --- n1 --- n2
  //                |
  //  n3 --- n4 --- n5     (n0..n2 at y=0, n3..n5 at y=6; join at x=200)
  net.AddNode({0, 0});
  net.AddNode({100, 0});
  net.AddNode({200, 0});
  net.AddNode({0, 6});
  net.AddNode({100, 6});
  net.AddNode({200, 6});
  EdgeId e01;
  EdgeId e12;
  EdgeId e34;
  EdgeId e45;
  EdgeId e25;
  ASSERT_TRUE(net.AddEdge(0, 1, -1, &e01).ok());
  ASSERT_TRUE(net.AddEdge(1, 2, -1, &e12).ok());
  ASSERT_TRUE(net.AddEdge(3, 4, -1, &e34).ok());
  ASSERT_TRUE(net.AddEdge(4, 5, -1, &e45).ok());
  ASSERT_TRUE(net.AddEdge(2, 5, -1, &e25).ok());
  net.Finalize();

  ObjectSet objects(&net);
  ObjectId across;
  ObjectId along;
  // Object straight across the gap (Euclidean ~6, network ~400).
  ASSERT_TRUE(objects.Add(e34, 10.0, {1}, &across).ok());
  // Object down the same road (network 50).
  ASSERT_TRUE(objects.Add(e01, 60.0, {1}, &along).ok());
  objects.Finalize();

  DiskManager disk;
  BufferPool pool(&disk, 256);
  const CcamFile ccam = CcamFileBuilder::Build(net, &disk);
  CcamGraph graph(&ccam, &pool);
  InvertedRTreeIndex index(&pool, objects, 4);

  SkQuery q;
  q.loc = NetworkLocation{e01, 10.0};
  q.terms = {1};
  q.delta_max = 100.0;
  const QueryEdgeInfo qe = MakeQueryEdgeInfo(net, q.loc);
  EuclideanBaselineStats stats;
  std::vector<SkResult> got;
  ASSERT_TRUE(
      EuclideanFilterRefine(&graph, net, &index, q, qe, &got, &stats).ok());

  // The Euclidean filter admits both objects; only one survives.
  EXPECT_EQ(stats.euclidean_candidates, 2u);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, along);
}

}  // namespace
}  // namespace dsks
