#include <map>
#include <tuple>
#include <vector>

#include "btree/bplus_tree.h"
#include "common/random.h"
#include "gtest/gtest.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace dsks {
namespace {

class BPlusTreeTest : public ::testing::Test {
 protected:
  BPlusTreeTest() : pool_(&disk_, 4096) {}

  DiskManager disk_;
  BufferPool pool_;
};

TEST_F(BPlusTreeTest, EmptyTreeFindsNothing) {
  BPlusTree tree = BPlusTree::Create(&pool_);
  EXPECT_FALSE(tree.Get(42).has_value());
  EXPECT_EQ(tree.CountEntries(), 0u);
  EXPECT_EQ(tree.CountPages(), 1u);
}

TEST_F(BPlusTreeTest, SingleLeafInsertGet) {
  BPlusTree tree = BPlusTree::Create(&pool_);
  tree.Insert(5, 50);
  tree.Insert(1, 10);
  tree.Insert(9, 90);
  EXPECT_EQ(tree.Get(5), 50u);
  EXPECT_EQ(tree.Get(1), 10u);
  EXPECT_EQ(tree.Get(9), 90u);
  EXPECT_FALSE(tree.Get(2).has_value());
  EXPECT_EQ(tree.CountEntries(), 3u);
}

TEST_F(BPlusTreeTest, OverwriteKeepsSingleEntry) {
  BPlusTree tree = BPlusTree::Create(&pool_);
  tree.Insert(7, 1);
  tree.Insert(7, 2);
  EXPECT_EQ(tree.Get(7), 2u);
  EXPECT_EQ(tree.CountEntries(), 1u);
}

TEST_F(BPlusTreeTest, RangeScanOrderedAndBounded) {
  BPlusTree tree = BPlusTree::Create(&pool_);
  for (uint64_t k = 0; k < 100; k += 2) {
    tree.Insert(k, k * 10);
  }
  std::vector<uint64_t> keys;
  tree.RangeScan(10, 30, [&keys](uint64_t k, uint64_t v) {
    EXPECT_EQ(v, k * 10);
    keys.push_back(k);
    return true;
  });
  std::vector<uint64_t> expected = {10, 12, 14, 16, 18, 20,
                                    22, 24, 26, 28, 30};
  EXPECT_EQ(keys, expected);
}

TEST_F(BPlusTreeTest, RangeScanEarlyStop) {
  BPlusTree tree = BPlusTree::Create(&pool_);
  for (uint64_t k = 0; k < 50; ++k) tree.Insert(k, k);
  int seen = 0;
  tree.RangeScan(0, UINT64_MAX, [&seen](uint64_t, uint64_t) {
    ++seen;
    return seen < 5;
  });
  EXPECT_EQ(seen, 5);
}

TEST_F(BPlusTreeTest, SplitsGrowTheTree) {
  BPlusTree tree = BPlusTree::Create(&pool_);
  const size_t n = BPlusTree::LeafCapacity() * 3;
  for (uint64_t k = 0; k < n; ++k) {
    tree.Insert(k, k + 1);
  }
  EXPECT_GT(tree.CountPages(), 3u);
  EXPECT_EQ(tree.CountEntries(), n);
  for (uint64_t k = 0; k < n; ++k) {
    ASSERT_EQ(tree.Get(k), k + 1) << "key " << k;
  }
}

struct RandomOpsParam {
  uint64_t seed;
  size_t ops;
  uint64_t key_space;
};

class BPlusTreeRandomTest
    : public ::testing::TestWithParam<RandomOpsParam> {};

/// Property: under a random stream of inserts/overwrites, the tree behaves
/// exactly like std::map, including full-range iteration order.
TEST_P(BPlusTreeRandomTest, MatchesStdMap) {
  const RandomOpsParam p = GetParam();
  DiskManager disk;
  BufferPool pool(&disk, 4096);
  BPlusTree tree = BPlusTree::Create(&pool);
  std::map<uint64_t, uint64_t> ref;
  Random rng(p.seed);

  for (size_t i = 0; i < p.ops; ++i) {
    const uint64_t key = rng.Uniform(p.key_space);
    const uint64_t value = rng.Uniform(1u << 30);
    tree.Insert(key, value);
    ref[key] = value;
  }

  // Point lookups, present and absent.
  for (size_t i = 0; i < 200; ++i) {
    const uint64_t key = rng.Uniform(p.key_space * 2);
    auto it = ref.find(key);
    auto got = tree.Get(key);
    if (it == ref.end()) {
      EXPECT_FALSE(got.has_value()) << "key " << key;
    } else {
      ASSERT_TRUE(got.has_value()) << "key " << key;
      EXPECT_EQ(*got, it->second);
    }
  }

  // Full scan matches the ordered reference.
  std::vector<std::pair<uint64_t, uint64_t>> scanned;
  tree.RangeScan(0, UINT64_MAX, [&scanned](uint64_t k, uint64_t v) {
    scanned.emplace_back(k, v);
    return true;
  });
  ASSERT_EQ(scanned.size(), ref.size());
  size_t i = 0;
  for (const auto& [k, v] : ref) {
    EXPECT_EQ(scanned[i].first, k);
    EXPECT_EQ(scanned[i].second, v);
    ++i;
  }

  // Random sub-range scans.
  for (int round = 0; round < 20; ++round) {
    uint64_t lo = rng.Uniform(p.key_space);
    uint64_t hi = rng.Uniform(p.key_space);
    if (lo > hi) std::swap(lo, hi);
    std::vector<uint64_t> got;
    tree.RangeScan(lo, hi, [&got](uint64_t k, uint64_t) {
      got.push_back(k);
      return true;
    });
    std::vector<uint64_t> want;
    for (auto it = ref.lower_bound(lo); it != ref.end() && it->first <= hi;
         ++it) {
      want.push_back(it->first);
    }
    EXPECT_EQ(got, want) << "range [" << lo << "," << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BPlusTreeRandomTest,
    ::testing::Values(RandomOpsParam{1, 100, 200},
                      RandomOpsParam{2, 1000, 500},
                      RandomOpsParam{3, 5000, 100000},
                      RandomOpsParam{4, 20000, 1u << 20},
                      RandomOpsParam{5, 3000, 64},  // heavy overwrite
                      RandomOpsParam{6, 12000, 12000}));

class BPlusTreeBulkLoadTest : public ::testing::TestWithParam<size_t> {};

/// BulkLoad must be equivalent to one-by-one insertion, including mixed
/// use (inserts after a bulk load).
TEST_P(BPlusTreeBulkLoadTest, EquivalentToInsertion) {
  const size_t n = GetParam();
  DiskManager disk;
  BufferPool pool(&disk, 8192);
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  pairs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pairs.emplace_back(i * 3 + 1, i * 7);
  }
  BPlusTree tree = BPlusTree::BulkLoad(&pool, pairs);
  EXPECT_EQ(tree.CountEntries(), n);
  for (const auto& [k, v] : pairs) {
    ASSERT_EQ(tree.Get(k), v) << "key " << k;
  }
  EXPECT_FALSE(tree.Get(0).has_value());

  // Scans stay ordered across leaf boundaries.
  uint64_t prev = 0;
  bool first = true;
  size_t seen = 0;
  tree.RangeScan(0, UINT64_MAX, [&](uint64_t k, uint64_t) {
    if (!first) {
      EXPECT_GT(k, prev);
    }
    prev = k;
    first = false;
    ++seen;
    return true;
  });
  EXPECT_EQ(seen, n);

  // Follow-up inserts (both fresh keys and overwrites) still work.
  tree.Insert(0, 42);
  tree.Insert(1, 43);  // overwrite
  EXPECT_EQ(tree.Get(0), 42u);
  EXPECT_EQ(tree.Get(1), 43u);
  EXPECT_EQ(tree.CountEntries(), n + 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BPlusTreeBulkLoadTest,
                         ::testing::Values(1, 2, 100, 255, 256, 1000, 10000,
                                           70000));

/// Sequential ascending and descending insertion are classic split-path
/// edge cases.
TEST(BPlusTreeOrderTest, AscendingAndDescendingInsertion) {
  for (bool ascending : {true, false}) {
    DiskManager disk;
    BufferPool pool(&disk, 4096);
    BPlusTree tree = BPlusTree::Create(&pool);
    const size_t n = BPlusTree::LeafCapacity() * 5 + 17;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t k = ascending ? i : n - 1 - i;
      tree.Insert(k, k ^ 0xFF);
    }
    EXPECT_EQ(tree.CountEntries(), n);
    uint64_t prev = 0;
    bool first = true;
    tree.RangeScan(0, UINT64_MAX, [&](uint64_t k, uint64_t v) {
      EXPECT_EQ(v, k ^ 0xFF);
      if (!first) {
        EXPECT_GT(k, prev);
      }
      prev = k;
      first = false;
      return true;
    });
  }
}

}  // namespace
}  // namespace dsks
