#include <algorithm>
#include <iterator>
#include <numeric>
#include <vector>

#include "common/random.h"

#include "datagen/network_generator.h"
#include "datagen/object_generator.h"
#include "datagen/presets.h"
#include "datagen/workload.h"
#include "graph/dijkstra.h"
#include "gtest/gtest.h"
#include "text/term_stats.h"

namespace dsks {
namespace {

TEST(NetworkGeneratorTest, RespectsNodeAndEdgeTargets) {
  NetworkGenConfig c;
  c.num_nodes = 1000;
  c.edge_node_ratio = 1.5;
  c.seed = 1;
  auto net = GenerateRoadNetwork(c);
  // The grid rounds the node count; stay within 5%.
  EXPECT_NEAR(static_cast<double>(net->num_nodes()), 1000.0, 50.0);
  const double ratio = static_cast<double>(net->num_edges()) /
                       static_cast<double>(net->num_nodes());
  EXPECT_NEAR(ratio, 1.5, 0.1);
}

TEST(NetworkGeneratorTest, GraphIsConnected) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    NetworkGenConfig c;
    c.num_nodes = 400;
    c.edge_node_ratio = 1.05;  // sparsest setting
    c.seed = seed;
    auto net = GenerateRoadNetwork(c);
    const auto dist = DijkstraFromNode(*net, 0);
    for (NodeId v = 0; v < net->num_nodes(); ++v) {
      ASSERT_NE(dist[v], kInfDistance) << "node " << v << " unreachable";
    }
  }
}

TEST(NetworkGeneratorTest, CoordinatesInsideDataSpace) {
  NetworkGenConfig c;
  c.num_nodes = 500;
  c.seed = 9;
  auto net = GenerateRoadNetwork(c);
  for (const Node& n : net->nodes()) {
    EXPECT_GE(n.loc.x, 0.0);
    EXPECT_LE(n.loc.x, 10000.0);
    EXPECT_GE(n.loc.y, 0.0);
    EXPECT_LE(n.loc.y, 10000.0);
  }
}

TEST(NetworkGeneratorTest, DeterministicForSameSeed) {
  NetworkGenConfig c;
  c.num_nodes = 300;
  c.seed = 77;
  auto a = GenerateRoadNetwork(c);
  auto b = GenerateRoadNetwork(c);
  ASSERT_EQ(a->num_nodes(), b->num_nodes());
  ASSERT_EQ(a->num_edges(), b->num_edges());
  for (EdgeId e = 0; e < a->num_edges(); ++e) {
    EXPECT_EQ(a->edge(e).n1, b->edge(e).n1);
    EXPECT_EQ(a->edge(e).n2, b->edge(e).n2);
  }
}

TEST(ObjectGeneratorTest, ObjectsLieOnEdgesWithValidTerms) {
  NetworkGenConfig nc;
  nc.num_nodes = 200;
  nc.seed = 3;
  auto net = GenerateRoadNetwork(nc);
  ObjectGenConfig oc;
  oc.num_objects = 2000;
  oc.vocab_size = 100;
  oc.keywords_per_object = 5;
  oc.seed = 4;
  auto objects = GenerateObjects(*net, oc);
  ASSERT_EQ(objects->size(), 2000u);
  for (const auto& obj : objects->objects()) {
    ASSERT_LT(obj.edge, net->num_edges());
    EXPECT_GE(obj.offset, 0.0);
    EXPECT_LE(obj.offset, net->edge(obj.edge).length);
    EXPECT_EQ(obj.terms.size(), 5u);  // fixed count
    for (TermId t : obj.terms) {
      EXPECT_LT(t, 100u);
    }
  }
}

TEST(ObjectGeneratorTest, ZipfSkewShowsInTermFrequencies) {
  NetworkGenConfig nc;
  nc.num_nodes = 150;
  nc.seed = 5;
  auto net = GenerateRoadNetwork(nc);
  ObjectGenConfig oc;
  oc.num_objects = 4000;
  oc.vocab_size = 500;
  oc.keywords_per_object = 8;
  oc.zipf_z = 1.2;
  oc.seed = 6;
  auto objects = GenerateObjects(*net, oc);
  TermStats stats(*objects, 500);
  // The most frequent term dominates the median term by a wide margin.
  const TermId top = stats.ByFrequency().front();
  const TermId mid = stats.ByFrequency()[250];
  EXPECT_GT(stats.Frequency(top), 10 * std::max<uint64_t>(
                                           1, stats.Frequency(mid)));
}

TEST(ObjectGeneratorTest, TopicModelCreatesCoOccurrence) {
  NetworkGenConfig nc;
  nc.num_nodes = 200;
  nc.seed = 21;
  auto net = GenerateRoadNetwork(nc);

  ObjectGenConfig oc;
  oc.num_objects = 4000;
  oc.vocab_size = 800;
  oc.keywords_per_object = 6;
  oc.zipf_z = 1.0;
  oc.seed = 22;

  // Independent baseline.
  auto indep = GenerateObjects(*net, oc);
  // Topic-structured variant.
  oc.num_topics = 40;
  auto topical = GenerateObjects(*net, oc);

  // Co-occurrence metric: how many *other* objects satisfy a 3-keyword
  // conjunction drawn from a random object's keyword set? This is exactly
  // what conjunctive queries need; topic structure must raise it sharply.
  auto conjunction_matches = [](const ObjectSet& objects) {
    Random rng(23);
    uint64_t total = 0;
    for (int round = 0; round < 150; ++round) {
      const auto& src = objects.object(
          static_cast<ObjectId>(rng.Uniform(objects.size())));
      if (src.terms.size() < 3) continue;
      std::vector<TermId> terms = src.terms;
      std::shuffle(terms.begin(), terms.end(), rng.engine());
      terms.resize(3);
      std::sort(terms.begin(), terms.end());
      for (const auto& obj : objects.objects()) {
        if (obj.id != src.id && objects.ObjectHasAllTerms(obj.id, terms)) {
          ++total;
        }
      }
    }
    return total;
  };
  const uint64_t topical_matches = conjunction_matches(*topical);
  const uint64_t indep_matches = conjunction_matches(*indep);
  EXPECT_GT(topical_matches, 3 * indep_matches + 50);
}

TEST(ObjectGeneratorTest, TopicModelClustersSpatially) {
  NetworkGenConfig nc;
  nc.num_nodes = 400;
  nc.seed = 24;
  auto net = GenerateRoadNetwork(nc);
  ObjectGenConfig oc;
  oc.num_objects = 6000;
  oc.vocab_size = 800;
  oc.keywords_per_object = 6;
  oc.num_topics = 40;
  oc.topic_spatial_coherence = 0.8;
  oc.seed = 25;
  auto objects = GenerateObjects(*net, oc);

  // Same-edge object pairs must share far more terms than random pairs.
  double same_edge = 0.0;
  size_t same_edge_pairs = 0;
  for (EdgeId e = 0; e < net->num_edges(); ++e) {
    const auto on_edge = objects->ObjectsOnEdge(e);
    for (size_t i = 0; i + 1 < on_edge.size() && i < 4; ++i) {
      const auto& a = objects->object(on_edge[i]);
      const auto& b = objects->object(on_edge[i + 1]);
      std::vector<TermId> common;
      std::set_intersection(a.terms.begin(), a.terms.end(), b.terms.begin(),
                            b.terms.end(), std::back_inserter(common));
      same_edge += static_cast<double>(common.size());
      ++same_edge_pairs;
    }
  }
  ASSERT_GT(same_edge_pairs, 100u);
  same_edge /= static_cast<double>(same_edge_pairs);

  Random rng(26);
  double random_pairs_shared = 0.0;
  const int pairs = 4000;
  for (int i = 0; i < pairs; ++i) {
    const auto& a = objects->object(
        static_cast<ObjectId>(rng.Uniform(objects->size())));
    const auto& b = objects->object(
        static_cast<ObjectId>(rng.Uniform(objects->size())));
    std::vector<TermId> common;
    std::set_intersection(a.terms.begin(), a.terms.end(), b.terms.begin(),
                          b.terms.end(), std::back_inserter(common));
    random_pairs_shared += static_cast<double>(common.size());
  }
  random_pairs_shared /= pairs;
  EXPECT_GT(same_edge, 1.5 * random_pairs_shared);
}

TEST(PresetsTest, ShapesMatchTable2) {
  const auto presets = AllPresets();
  ASSERT_EQ(presets.size(), 4u);
  const DatasetConfig na = PresetNA();
  const DatasetConfig tw = PresetTW();
  const DatasetConfig sf = PresetSF();
  // NA is the sparsest network; TW the densest and largest.
  EXPECT_LT(na.network.edge_node_ratio, sf.network.edge_node_ratio);
  EXPECT_GT(tw.network.edge_node_ratio, 2.0);
  EXPECT_GT(tw.network.num_nodes, na.network.num_nodes);
  // SF has the longest texts and smallest vocabulary (Table 2).
  EXPECT_GT(sf.objects.keywords_per_object, na.objects.keywords_per_object);
  EXPECT_LT(sf.objects.vocab_size, na.objects.vocab_size);
}

TEST(PresetsTest, ScalePresetShrinksCounts) {
  const DatasetConfig base = PresetSYN();
  const DatasetConfig small = ScalePreset(base, 0.1);
  EXPECT_LT(small.network.num_nodes, base.network.num_nodes);
  EXPECT_LT(small.objects.num_objects, base.objects.num_objects);
  EXPECT_GT(small.objects.vocab_size,
            small.objects.keywords_per_object * 2);
}

TEST(WorkloadTest, QueriesFollowTheSpec) {
  NetworkGenConfig nc;
  nc.num_nodes = 200;
  nc.seed = 8;
  auto net = GenerateRoadNetwork(nc);
  ObjectGenConfig oc;
  oc.num_objects = 3000;
  oc.vocab_size = 200;
  oc.keywords_per_object = 6;
  oc.seed = 9;
  auto objects = GenerateObjects(*net, oc);
  TermStats stats(*objects, 200);

  WorkloadConfig wc;
  wc.num_queries = 50;
  wc.num_keywords = 3;
  wc.seed = 10;
  const Workload wl = GenerateWorkload(*objects, stats, wc);
  ASSERT_EQ(wl.queries.size(), 50u);
  for (const auto& wq : wl.queries) {
    EXPECT_EQ(wq.sk.terms.size(), 3u);
    EXPECT_TRUE(std::is_sorted(wq.sk.terms.begin(), wq.sk.terms.end()));
    EXPECT_DOUBLE_EQ(wq.sk.delta_max, 1500.0);  // 500 * l
    ASSERT_LT(wq.sk.loc.edge, net->num_edges());
    EXPECT_EQ(wq.edge.edge, wq.sk.loc.edge);
    EXPECT_LT(wq.edge.n1, wq.edge.n2);
    EXPECT_GE(wq.edge.w1, 0.0);
    EXPECT_LE(wq.edge.w1, wq.edge.weight + 1e-9);
  }
}

TEST(WorkloadTest, FrequencyBiasedKeywordChoice) {
  NetworkGenConfig nc;
  nc.num_nodes = 150;
  nc.seed = 11;
  auto net = GenerateRoadNetwork(nc);
  ObjectGenConfig oc;
  oc.num_objects = 3000;
  oc.vocab_size = 300;
  oc.keywords_per_object = 6;
  oc.zipf_z = 1.1;
  oc.seed = 12;
  auto objects = GenerateObjects(*net, oc);
  TermStats stats(*objects, 300);
  WorkloadConfig wc;
  wc.num_queries = 400;
  wc.num_keywords = 1;
  wc.seed = 13;
  const Workload wl = GenerateWorkload(*objects, stats, wc);
  // The head term (rank 0) must appear far more often than a tail term.
  size_t head_hits = 0;
  size_t tail_hits = 0;
  const TermId head = stats.ByFrequency().front();
  const TermId tail = stats.ByFrequency()[250];
  for (const auto& wq : wl.queries) {
    head_hits += wq.sk.terms[0] == head ? 1 : 0;
    tail_hits += wq.sk.terms[0] == tail ? 1 : 0;
  }
  EXPECT_GT(head_hits, tail_hits + 5);
}

TEST(WorkloadTest, CoLocatedKeywordsAreSatisfiable) {
  NetworkGenConfig nc;
  nc.num_nodes = 150;
  nc.seed = 27;
  auto net = GenerateRoadNetwork(nc);
  ObjectGenConfig oc;
  oc.num_objects = 2000;
  oc.vocab_size = 400;
  oc.keywords_per_object = 6;
  oc.num_topics = 20;
  oc.seed = 28;
  auto objects = GenerateObjects(*net, oc);
  TermStats stats(*objects, 400);

  WorkloadConfig wc;
  wc.num_queries = 60;
  wc.num_keywords = 3;
  wc.keyword_source = KeywordSource::kCoLocatedObject;
  wc.seed = 29;
  const Workload wl = GenerateWorkload(*objects, stats, wc);
  for (const auto& wq : wl.queries) {
    // Some object (the co-located one) satisfies the whole conjunction.
    bool satisfiable = false;
    for (const auto& obj : objects->objects()) {
      if (objects->ObjectHasAllTerms(obj.id, wq.sk.terms)) {
        satisfiable = true;
        break;
      }
    }
    EXPECT_TRUE(satisfiable);
  }
}

TEST(WorkloadTest, GlobalFrequencyModeMatchesPaperSpec) {
  NetworkGenConfig nc;
  nc.num_nodes = 150;
  nc.seed = 30;
  auto net = GenerateRoadNetwork(nc);
  ObjectGenConfig oc;
  oc.num_objects = 2000;
  oc.vocab_size = 300;
  oc.keywords_per_object = 6;
  oc.seed = 31;
  auto objects = GenerateObjects(*net, oc);
  TermStats stats(*objects, 300);
  WorkloadConfig wc;
  wc.num_queries = 300;
  wc.num_keywords = 2;
  wc.keyword_source = KeywordSource::kGlobalFrequency;
  wc.seed = 32;
  const Workload wl = GenerateWorkload(*objects, stats, wc);
  // Terms are distinct, sorted, and biased toward the head.
  size_t head_hits = 0;
  const TermId head = stats.ByFrequency().front();
  for (const auto& wq : wl.queries) {
    ASSERT_EQ(wq.sk.terms.size(), 2u);
    EXPECT_NE(wq.sk.terms[0], wq.sk.terms[1]);
    head_hits += std::count(wq.sk.terms.begin(), wq.sk.terms.end(), head);
  }
  EXPECT_GT(head_hits, 10u);
}

TEST(WorkloadTest, DeltaMaxOverride) {
  NetworkGenConfig nc;
  nc.num_nodes = 100;
  nc.seed = 14;
  auto net = GenerateRoadNetwork(nc);
  ObjectGenConfig oc;
  oc.num_objects = 500;
  oc.vocab_size = 50;
  oc.keywords_per_object = 4;
  oc.seed = 15;
  auto objects = GenerateObjects(*net, oc);
  TermStats stats(*objects, 50);
  WorkloadConfig wc;
  wc.num_queries = 10;
  wc.delta_max_override = 777.0;
  wc.seed = 16;
  const Workload wl = GenerateWorkload(*objects, stats, wc);
  for (const auto& wq : wl.queries) {
    EXPECT_DOUBLE_EQ(wq.sk.delta_max, 777.0);
  }
}

}  // namespace
}  // namespace dsks
