// Multi-threaded stress tests for the latched buffer pool. Run under
// -DDSKS_SANITIZE=thread (tools/check.sh) to prove the absence of data
// races; the assertions here additionally pin down the logical invariants
// (no lost writes, correct contents under eviction pressure, overflow
// draining).
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage_test_util.h"

namespace dsks {
namespace {

/// Deterministic byte pattern for page `id`.
char PatternByte(PageId id, size_t offset) {
  return static_cast<char>((id * 131 + offset * 7 + 3) & 0xFF);
}

void FillPattern(PageId id, char* data) {
  for (size_t i = 0; i < 64; ++i) {
    data[i] = PatternByte(id, i);
  }
}

void ExpectPattern(PageId id, const char* data) {
  for (size_t i = 0; i < 64; ++i) {
    ASSERT_EQ(data[i], PatternByte(id, i)) << "page " << id << " offset " << i;
  }
}

// N threads x M iterations of Fetch(read-only verify)/Unpin over a pool
// much smaller than the page set, so evictions and re-reads happen
// constantly. Writers only touch pages they created themselves (the pool
// latches its metadata, not page contents — see the header).
TEST(BufferPoolConcurrencyTest, RandomFetchUnpinNewStress) {
  dsks::testing::TestDisk disk;
  constexpr size_t kSeedPages = 64;
  constexpr size_t kThreads = 8;
  constexpr size_t kIters = 2000;

  std::vector<PageId> seeded(kSeedPages);
  BufferPool pool(disk.get(), 8);
  for (size_t i = 0; i < kSeedPages; ++i) {
    char* data = pool.NewPage(&seeded[i]);
    FillPattern(seeded[i], data);
    pool.UnpinPage(seeded[i], /*dirty=*/true);
  }
  pool.FlushAll();
  pool.Clear();

  std::atomic<uint64_t> verified{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &disk, &seeded, &verified, t] {
      Random rng(1234 + t);
      std::vector<PageId> mine;
      for (size_t i = 0; i < kIters; ++i) {
        const uint64_t dice = rng.Uniform(10);
        if (dice < 8) {
          // Read-only fetch of a shared seeded page; verify its pattern.
          const PageId id = seeded[rng.Uniform(kSeedPages)];
          const char* data = dsks::testing::MustFetch(&pool, id);
          ExpectPattern(id, data);
          pool.UnpinPage(id, false);
          verified.fetch_add(1, std::memory_order_relaxed);
        } else if (dice == 8 || mine.empty()) {
          // Create a private page and stamp it (single writer per page).
          PageId id;
          char* data = pool.NewPage(&id);
          FillPattern(id, data);
          pool.UnpinPage(id, /*dirty=*/true);
          mine.push_back(id);
        } else {
          // Re-fetch one of our own pages and verify it round-tripped
          // through eviction/write-back.
          const PageId id = mine[rng.Uniform(mine.size())];
          const char* data = dsks::testing::MustFetch(&pool, id);
          ExpectPattern(id, data);
          pool.UnpinPage(id, false);
          verified.fetch_add(1, std::memory_order_relaxed);
        }
      }
      (void)disk;
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_GT(verified.load(), 0u);

  // Stats are relaxed counters but must still balance: every miss did
  // exactly one disk read (checked before the verification reads below).
  EXPECT_EQ(pool.stats().misses.load(), disk->stats().reads.load());

  // Every page — seeded or thread-created — must carry its pattern after a
  // final flush, proving no write-back was lost under concurrency.
  pool.FlushAll();
  char out[kPageSize];
  for (PageId id = 0; id < disk->num_pages(); ++id) {
    disk->ReadPage(id, out);
    ExpectPattern(id, out);
  }
}

// All threads pin simultaneously so the pinned set exceeds capacity: every
// fetch must succeed (overflow frames), and the pool must drain back to
// its target once the pins are released.
TEST(BufferPoolConcurrencyTest, ConcurrentPinOverflowDrains) {
  dsks::testing::TestDisk disk;
  constexpr size_t kThreads = 8;
  constexpr size_t kCapacity = 4;
  std::vector<PageId> pages(kThreads);
  for (PageId& p : pages) p = disk->AllocatePage();
  BufferPool pool(disk.get(), kCapacity);

  std::atomic<size_t> pinned{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &pages, &pinned, t] {
      char* data = dsks::testing::MustFetch(&pool, pages[t]);
      ASSERT_NE(data, nullptr);
      pinned.fetch_add(1);
      // Hold the pin until every thread has one, forcing > capacity pins.
      while (pinned.load() < kThreads) {
        std::this_thread::yield();
      }
      data[0] = static_cast<char>(t);
      pool.UnpinPage(pages[t], /*dirty=*/true);
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_LE(pool.num_frames_in_use(), kCapacity);
  pool.FlushAll();
  char out[kPageSize];
  for (size_t t = 0; t < kThreads; ++t) {
    disk->ReadPage(pages[t], out);
    EXPECT_EQ(out[0], static_cast<char>(t));
  }
}

// Concurrent misses on the same cold page: exactly one thread performs the
// disk read (the others wait on the in-flight frame), and all observe the
// same contents.
TEST(BufferPoolConcurrencyTest, ConcurrentMissesOnSamePageReadOnce) {
  dsks::testing::TestDisk disk;
  const PageId page = disk->AllocatePage();
  {
    BufferPool seeder(disk.get(), 2);
    char* data = dsks::testing::MustFetch(&seeder, page);
    FillPattern(page, data);
    seeder.UnpinPage(page, /*dirty=*/true);
    seeder.FlushAll();
  }
  disk->mutable_stats()->Reset();

  BufferPool pool(disk.get(), 4);
  constexpr size_t kThreads = 8;
  std::atomic<size_t> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &ready, page] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
        std::this_thread::yield();
      }
      const char* data = dsks::testing::MustFetch(&pool, page);
      ExpectPattern(page, data);
      pool.UnpinPage(page, false);
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  // The page stayed resident throughout, so it was read exactly once.
  EXPECT_EQ(disk->stats().reads.load(), 1u);
  EXPECT_EQ(pool.stats().misses.load(), 1u);
  EXPECT_EQ(pool.stats().hits.load(), kThreads - 1);
}

}  // namespace
}  // namespace dsks
