#include <algorithm>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace dsks {
namespace {

std::vector<RTree::Entry> RandomPoints(size_t n, uint64_t seed) {
  Random rng(seed);
  std::vector<RTree::Entry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Point p{rng.UniformDouble(0, 10000), rng.UniformDouble(0, 10000)};
    entries.push_back(RTree::Entry{Mbr::FromPoint(p), i});
  }
  return entries;
}

TEST(RTreeTest, EmptyTree) {
  DiskManager disk;
  BufferPool pool(&disk, 1024);
  RTree tree = RTree::BulkLoad(&pool, {});
  int count = 0;
  tree.RangeSearch(Mbr::FromPoints({0, 0}, {10000, 10000}),
                   [&count](const Mbr&, uint64_t) {
                     ++count;
                     return true;
                   });
  EXPECT_EQ(count, 0);
  RTree::Entry e;
  EXPECT_FALSE(tree.Nearest(Point{1, 1}, &e));
  EXPECT_EQ(tree.CountPages(), 1u);
}

TEST(RTreeTest, SingleEntry) {
  DiskManager disk;
  BufferPool pool(&disk, 1024);
  RTree tree =
      RTree::BulkLoad(&pool, {RTree::Entry{Mbr::FromPoint({5, 5}), 77}});
  RTree::Entry e;
  ASSERT_TRUE(tree.Nearest(Point{0, 0}, &e));
  EXPECT_EQ(e.payload, 77u);
  int hits = 0;
  tree.RangeSearch(Mbr::FromPoints({4, 4}, {6, 6}),
                   [&hits](const Mbr&, uint64_t) {
                     ++hits;
                     return true;
                   });
  EXPECT_EQ(hits, 1);
}

struct RTreeParam {
  uint64_t seed;
  size_t n;
};

class RTreeRandomTest : public ::testing::TestWithParam<RTreeParam> {};

TEST_P(RTreeRandomTest, RangeSearchMatchesLinearScan) {
  const auto [seed, n] = GetParam();
  DiskManager disk;
  BufferPool pool(&disk, 4096);
  auto entries = RandomPoints(n, seed);
  RTree tree = RTree::BulkLoad(&pool, entries);

  Random rng(seed ^ 0xBEEF);
  for (int round = 0; round < 25; ++round) {
    const double x1 = rng.UniformDouble(0, 10000);
    const double y1 = rng.UniformDouble(0, 10000);
    const double w = rng.UniformDouble(0, 3000);
    const double h = rng.UniformDouble(0, 3000);
    const Mbr range = Mbr::FromPoints({x1, y1}, {x1 + w, y1 + h});

    std::vector<uint64_t> got;
    tree.RangeSearch(range, [&got](const Mbr&, uint64_t id) {
      got.push_back(id);
      return true;
    });
    std::sort(got.begin(), got.end());

    std::vector<uint64_t> want;
    for (const auto& e : entries) {
      if (e.mbr.Intersects(range)) {
        want.push_back(e.payload);
      }
    }
    std::sort(want.begin(), want.end());
    ASSERT_EQ(got, want) << "round " << round;
  }
}

TEST_P(RTreeRandomTest, NearestMatchesLinearScan) {
  const auto [seed, n] = GetParam();
  DiskManager disk;
  BufferPool pool(&disk, 4096);
  auto entries = RandomPoints(n, seed);
  RTree tree = RTree::BulkLoad(&pool, entries);

  Random rng(seed ^ 0xF00D);
  for (int round = 0; round < 25; ++round) {
    const Point q{rng.UniformDouble(0, 10000), rng.UniformDouble(0, 10000)};
    RTree::Entry got;
    ASSERT_TRUE(tree.Nearest(q, &got));
    double best = 1e18;
    for (const auto& e : entries) {
      best = std::min(best, e.mbr.MinDistance(q));
    }
    EXPECT_NEAR(got.mbr.MinDistance(q), best, 1e-9);
  }
}

TEST_P(RTreeRandomTest, EarlyStopVisitsAtMostRequested) {
  const auto [seed, n] = GetParam();
  DiskManager disk;
  BufferPool pool(&disk, 4096);
  RTree tree = RTree::BulkLoad(&pool, RandomPoints(n, seed));
  int seen = 0;
  tree.RangeSearch(Mbr::FromPoints({0, 0}, {10000, 10000}),
                   [&seen](const Mbr&, uint64_t) {
                     ++seen;
                     return seen < 3;
                   });
  EXPECT_EQ(seen, std::min<size_t>(3, n));
}

INSTANTIATE_TEST_SUITE_P(Sweep, RTreeRandomTest,
                         ::testing::Values(RTreeParam{11, 10},
                                           RTreeParam{12, 101},   // 1 leaf+
                                           RTreeParam{13, 1000},  // 2 levels
                                           RTreeParam{14, 15000}, // 3 levels
                                           RTreeParam{15, 257}));

class RTreeInsertTest : public ::testing::TestWithParam<RTreeParam> {};

/// Dynamic insertion must preserve exactly the same search semantics as a
/// bulk-loaded tree over the same data.
TEST_P(RTreeInsertTest, InsertedTreeMatchesLinearScan) {
  const auto [seed, n] = GetParam();
  DiskManager disk;
  BufferPool pool(&disk, 8192);
  auto entries = RandomPoints(n, seed);
  RTree tree = RTree::CreateEmpty(&pool);
  for (const auto& e : entries) {
    tree.Insert(e);
  }

  Random rng(seed ^ 0xCAFE);
  for (int round = 0; round < 20; ++round) {
    const double x1 = rng.UniformDouble(0, 10000);
    const double y1 = rng.UniformDouble(0, 10000);
    const Mbr range = Mbr::FromPoints(
        {x1, y1},
        {x1 + rng.UniformDouble(0, 4000), y1 + rng.UniformDouble(0, 4000)});
    std::vector<uint64_t> got;
    tree.RangeSearch(range, [&got](const Mbr&, uint64_t id) {
      got.push_back(id);
      return true;
    });
    std::sort(got.begin(), got.end());
    std::vector<uint64_t> want;
    for (const auto& e : entries) {
      if (e.mbr.Intersects(range)) {
        want.push_back(e.payload);
      }
    }
    std::sort(want.begin(), want.end());
    ASSERT_EQ(got, want) << "round " << round;
  }

  // Nearest also agrees with a scan.
  for (int round = 0; round < 10; ++round) {
    const Point q{rng.UniformDouble(0, 10000), rng.UniformDouble(0, 10000)};
    RTree::Entry got;
    ASSERT_TRUE(tree.Nearest(q, &got));
    double best = 1e18;
    for (const auto& e : entries) {
      best = std::min(best, e.mbr.MinDistance(q));
    }
    EXPECT_NEAR(got.mbr.MinDistance(q), best, 1e-9);
  }
}

TEST_P(RTreeInsertTest, MixedBulkLoadAndInsert) {
  const auto [seed, n] = GetParam();
  DiskManager disk;
  BufferPool pool(&disk, 8192);
  auto entries = RandomPoints(n, seed);
  const size_t half = entries.size() / 2;
  std::vector<RTree::Entry> first_half(entries.begin(),
                                       entries.begin() + half);
  RTree tree = RTree::BulkLoad(&pool, first_half);
  for (size_t i = half; i < entries.size(); ++i) {
    tree.Insert(entries[i]);
  }
  size_t count = 0;
  tree.RangeSearch(Mbr::FromPoints({0, 0}, {10000, 10000}),
                   [&count](const Mbr&, uint64_t) {
                     ++count;
                     return true;
                   });
  EXPECT_EQ(count, entries.size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, RTreeInsertTest,
                         ::testing::Values(RTreeParam{21, 5},
                                           RTreeParam{22, 150},
                                           RTreeParam{23, 1200},
                                           RTreeParam{24, 5000}));

TEST(RTreeInsertTest, GrowsHeightUnderInsertion) {
  DiskManager disk;
  BufferPool pool(&disk, 8192);
  RTree tree = RTree::CreateEmpty(&pool);
  EXPECT_EQ(tree.height(), 1);
  const size_t n = RTree::LeafCapacity() * 3;
  auto entries = RandomPoints(n, 99);
  for (const auto& e : entries) {
    tree.Insert(e);
  }
  EXPECT_GE(tree.height(), 2);
  EXPECT_GT(tree.CountPages(), 2u);
}

TEST(RTreeTest, MultiLevelTreeHasExpectedHeight) {
  DiskManager disk;
  BufferPool pool(&disk, 8192);
  const size_t cap = RTree::LeafCapacity();
  RTree small = RTree::BulkLoad(&pool, RandomPoints(cap, 1));
  EXPECT_EQ(small.height(), 1);
  RTree medium = RTree::BulkLoad(&pool, RandomPoints(cap * 3, 2));
  EXPECT_EQ(medium.height(), 2);
  RTree large = RTree::BulkLoad(&pool, RandomPoints(cap * cap + 1, 3));
  EXPECT_EQ(large.height(), 3);
}

}  // namespace
}  // namespace dsks
