#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "index/object_file.h"
#include "index/posting_file.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "tests/test_util.h"

namespace dsks {
namespace {

TEST(PostingFileTest, SingleRunRoundTrip) {
  DiskManager disk;
  BufferPool pool(&disk, 256);
  PostingFile file(&pool);
  std::vector<PostingFile::Entry> run = {
      {10, 0, 1.5}, {11, 1, 2.5}, {12, 2, 3.75}};
  const auto loc = file.AppendRun(run);
  EXPECT_EQ(PostingFile::RunLength(loc), 3u);

  std::vector<PostingFile::Entry> out;
  file.ReadRun(loc, &out);
  ASSERT_EQ(out.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out[i].object, run[i].object);
    EXPECT_EQ(out[i].pos, run[i].pos);
    EXPECT_DOUBLE_EQ(out[i].w1, run[i].w1);
  }
}

TEST(PostingFileTest, ManyRunsArePackedTightly) {
  DiskManager disk;
  BufferPool pool(&disk, 256);
  PostingFile file(&pool);
  std::vector<PostingFile::Locator> locs;
  std::vector<std::vector<PostingFile::Entry>> runs;
  for (uint32_t r = 0; r < 100; ++r) {
    std::vector<PostingFile::Entry> run;
    for (uint32_t i = 0; i <= r % 7; ++i) {
      run.push_back(PostingFile::Entry{r * 100 + i,
                                       static_cast<uint16_t>(i), r + 0.25});
    }
    locs.push_back(file.AppendRun(run));
    runs.push_back(std::move(run));
  }
  // ~400 entries at 256/page must not exceed 3 pages.
  EXPECT_LE(file.num_pages(), 3u);
  std::vector<PostingFile::Entry> out;
  for (size_t r = 0; r < runs.size(); ++r) {
    file.ReadRun(locs[r], &out);
    ASSERT_EQ(out.size(), runs[r].size()) << "run " << r;
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i].object, runs[r][i].object);
      EXPECT_DOUBLE_EQ(out[i].w1, runs[r][i].w1);
    }
  }
}

TEST(PostingFileTest, RunLargerThanOnePageSpansContiguously) {
  DiskManager disk;
  BufferPool pool(&disk, 256);
  PostingFile file(&pool);
  const size_t per_page = PostingFile::EntriesPerPage();
  // A run 2.5 pages long must round trip across page boundaries.
  std::vector<PostingFile::Entry> big;
  for (uint32_t i = 0; i < per_page * 5 / 2; ++i) {
    big.push_back(PostingFile::Entry{1000 + i,
                                     static_cast<uint16_t>(i % 65535),
                                     i * 0.5});
  }
  const auto loc = file.AppendRun(big);
  EXPECT_EQ(file.num_pages(), 3u);
  std::vector<PostingFile::Entry> out;
  file.ReadRun(loc, &out);
  ASSERT_EQ(out.size(), big.size());
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i].object, big[i].object);
    ASSERT_DOUBLE_EQ(out[i].w1, big[i].w1);
  }
}

TEST(PostingFileTest, ToleratesInterleavedForeignAllocations) {
  // Dynamic ingestion interleaves B+tree page splits with posting
  // appends; runs must stay readable regardless.
  DiskManager disk;
  BufferPool pool(&disk, 256);
  PostingFile file(&pool);
  std::vector<PostingFile::Locator> locs;
  std::vector<std::vector<PostingFile::Entry>> runs;
  Random rng(9);
  for (int r = 0; r < 60; ++r) {
    std::vector<PostingFile::Entry> run;
    const size_t len = 1 + rng.Uniform(40);
    for (uint32_t i = 0; i < len; ++i) {
      run.push_back(PostingFile::Entry{static_cast<ObjectId>(r * 100 + i),
                                       static_cast<uint16_t>(i), r + 0.5});
    }
    locs.push_back(file.AppendRun(run));
    runs.push_back(std::move(run));
    // A foreign structure grabs pages in between.
    if (r % 3 == 0) {
      disk.AllocatePage();
    }
  }
  std::vector<PostingFile::Entry> out;
  for (size_t r = 0; r < runs.size(); ++r) {
    file.ReadRun(locs[r], &out);
    ASSERT_EQ(out.size(), runs[r].size()) << "run " << r;
    for (size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i].object, runs[r][i].object);
    }
  }
}

TEST(ObjectFileTest, RecordsRoundTrip) {
  auto data = testing::MakeRandomDataset(55, 100, 300, 20, 3);
  DiskManager disk;
  BufferPool pool(&disk, 1024);
  ObjectFile file(&pool, *data.objects);
  EXPECT_GT(file.num_pages(), 0u);

  const RoadNetwork& net = *data.network;
  for (ObjectId id = 0; id < data.objects->size(); ++id) {
    const auto& obj = data.objects->object(id);
    const ObjectFile::Record rec = file.Get(id);
    ASSERT_EQ(rec.edge, obj.edge);
    EXPECT_DOUBLE_EQ(rec.w1, net.WeightFromN1(obj.edge, obj.offset));
  }
}

TEST(ObjectFileTest, PositionsMatchEdgeOrder) {
  auto data = testing::MakeRandomDataset(56, 100, 300, 20, 3);
  DiskManager disk;
  BufferPool pool(&disk, 1024);
  ObjectFile file(&pool, *data.objects);
  for (EdgeId e = 0; e < data.network->num_edges(); ++e) {
    uint16_t expected = 0;
    for (ObjectId id : data.objects->ObjectsOnEdge(e)) {
      EXPECT_EQ(file.Get(id).pos, expected) << "edge " << e;
      ++expected;
    }
  }
}

}  // namespace
}  // namespace dsks
