#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/distance_oracle.h"
#include "core/div_search.h"
#include "core/sk_search.h"
#include "datagen/workload.h"
#include "graph/ccam.h"
#include "graph/dijkstra.h"
#include "gtest/gtest.h"
#include "index/sif.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "tests/test_util.h"

namespace dsks {
namespace {

using ::dsks::testing::MakeRandomDataset;
using ::dsks::testing::TestDataset;

struct DivFixture {
  TestDataset data;
  DiskManager disk;
  std::unique_ptr<BufferPool> pool;
  CcamFile ccam;
  std::unique_ptr<CcamGraph> graph;
  std::unique_ptr<SifIndex> index;

  explicit DivFixture(uint64_t seed, size_t nodes = 150, size_t objects = 500,
                      size_t vocab = 20, size_t keywords = 4) {
    data = MakeRandomDataset(seed, nodes, objects, vocab, keywords, 1.0);
    pool = std::make_unique<BufferPool>(&disk, 1u << 15);
    ccam = CcamFileBuilder::Build(*data.network, &disk);
    graph = std::make_unique<CcamGraph>(&ccam, pool.get());
    index = std::make_unique<SifIndex>(pool.get(), *data.objects, vocab, 1);
  }

  DivSearchOutput Run(
      const DivQuery& q, bool com,
      OracleStrategy strategy = OracleStrategy::kSharedExpansion) {
    const QueryEdgeInfo info = MakeQueryEdgeInfo(*data.network, q.sk.loc);
    IncrementalSkSearch search(graph.get(), index.get(), q.sk, info);
    PairwiseDistanceOracle oracle(graph.get(), 2.0 * q.sk.delta_max, strategy);
    oracle.SetQueryEdge(info);
    return com ? DiversifiedSearchCOM(&search, q, &oracle)
               : DiversifiedSearchSEQ(&search, q, &oracle);
  }
};

std::vector<ObjectId> SortedIds(const std::vector<SkResult>& v) {
  std::vector<ObjectId> ids;
  ids.reserve(v.size());
  for (const auto& r : v) ids.push_back(r.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

struct DivSweep {
  uint64_t seed;
  size_t k;
  double lambda;
  double delta_max;
  TermId term;
};

class ComSeqEquivalenceTest : public ::testing::TestWithParam<DivSweep> {};

/// The headline correctness property of §4: COM (incremental + pruning +
/// early termination) must return exactly the objects SEQ's full greedy
/// returns, with the same objective value.
TEST_P(ComSeqEquivalenceTest, ComEqualsSeq) {
  const DivSweep p = GetParam();
  DivFixture fx(p.seed);
  Random rng(p.seed ^ 0x777);

  for (int round = 0; round < 6; ++round) {
    DivQuery q;
    q.sk.loc = testing::LocationOfObject(*fx.data.objects,
                                         rng.Uniform(500));
    q.sk.terms = {p.term};
    q.sk.delta_max = p.delta_max;
    q.k = p.k;
    q.lambda = p.lambda;

    const DivSearchOutput seq = fx.Run(q, /*com=*/false);
    const DivSearchOutput com = fx.Run(q, /*com=*/true);

    EXPECT_EQ(SortedIds(com.selected), SortedIds(seq.selected))
        << "seed " << p.seed << " round " << round;
    EXPECT_NEAR(com.objective, seq.objective, 1e-9);
    // COM never pulls more candidates than SEQ retrieves.
    EXPECT_LE(com.stats.candidates, seq.stats.candidates);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ComSeqEquivalenceTest,
    ::testing::Values(DivSweep{61, 4, 0.8, 1200.0, 0},
                      DivSweep{62, 6, 0.5, 1500.0, 1},
                      DivSweep{63, 10, 0.9, 2000.0, 0},
                      DivSweep{64, 2, 0.7, 900.0, 2},
                      DivSweep{65, 8, 0.6, 2500.0, 0},
                      DivSweep{66, 10, 0.8, 4000.0, 1}));

TEST(DivSearchTest, FewerCandidatesThanKReturnsAll) {
  DivFixture fx(71);
  DivQuery q;
  q.sk.loc = testing::LocationOfObject(*fx.data.objects, 0);
  q.sk.terms = {17, 18};  // rare tail conjunction
  q.sk.delta_max = 200.0;
  q.k = 10;
  q.lambda = 0.8;
  const auto seq = fx.Run(q, false);
  const auto com = fx.Run(q, true);
  EXPECT_EQ(SortedIds(com.selected), SortedIds(seq.selected));
  EXPECT_LE(com.selected.size(), q.k);
}

TEST(DivSearchTest, KOneReturnsNearestObject) {
  DivFixture fx(72);
  DivQuery q;
  q.sk.loc = testing::LocationOfObject(*fx.data.objects, 5);
  q.sk.terms = {0};
  q.sk.delta_max = 2000.0;
  q.k = 1;
  q.lambda = 0.8;
  const auto com = fx.Run(q, true);
  ASSERT_EQ(com.selected.size(), 1u);
  const auto seq = fx.Run(q, false);
  ASSERT_EQ(seq.selected.size(), 1u);
  EXPECT_EQ(com.selected[0].id, seq.selected[0].id);
  EXPECT_TRUE(com.stats.early_terminated);
}

TEST(DivSearchTest, EarlyTerminationSavesCandidates) {
  // Large range + relevance-heavy lambda: COM should terminate the
  // expansion well before SEQ exhausts it on at least some queries.
  DivFixture fx(73, 200, 900, 15, 4);
  Random rng(99);
  uint64_t seq_total = 0;
  uint64_t com_total = 0;
  bool terminated_once = false;
  for (int round = 0; round < 8; ++round) {
    DivQuery q;
    q.sk.loc = testing::LocationOfObject(*fx.data.objects, rng.Uniform(900));
    q.sk.terms = {0};
    q.sk.delta_max = 5000.0;
    q.k = 4;
    q.lambda = 0.9;
    const auto seq = fx.Run(q, false);
    const auto com = fx.Run(q, true);
    EXPECT_EQ(SortedIds(com.selected), SortedIds(seq.selected));
    seq_total += seq.stats.candidates;
    com_total += com.stats.candidates;
    terminated_once = terminated_once || com.stats.early_terminated;
  }
  EXPECT_TRUE(terminated_once);
  EXPECT_LT(com_total, seq_total);
}

TEST(DivSearchTest, SelectionRespectsKeywordConstraint) {
  DivFixture fx(74);
  DivQuery q;
  q.sk.loc = testing::LocationOfObject(*fx.data.objects, 11);
  q.sk.terms = {0, 1};
  q.sk.delta_max = 3000.0;
  q.k = 6;
  q.lambda = 0.7;
  for (bool com : {false, true}) {
    const auto out = fx.Run(q, com);
    for (const SkResult& r : out.selected) {
      EXPECT_TRUE(fx.data.objects->ObjectHasAllTerms(r.id, q.sk.terms));
      EXPECT_LE(r.dist, q.sk.delta_max + 1e-9);
    }
  }
}

TEST(DivSearchTest, ObjectiveRespondsToLambda) {
  // λ = 1 maximizes closeness: the selected set must be the k nearest.
  DivFixture fx(75);
  DivQuery q;
  q.sk.loc = testing::LocationOfObject(*fx.data.objects, 21);
  q.sk.terms = {0};
  q.sk.delta_max = 2500.0;
  q.k = 4;
  q.lambda = 1.0;
  const auto out = fx.Run(q, false);
  ASSERT_EQ(out.selected.size(), 4u);

  // Gather all candidates to find the true 4 nearest.
  SkQuery plain = q.sk;
  const QueryEdgeInfo info = MakeQueryEdgeInfo(*fx.data.network, plain.loc);
  IncrementalSkSearch search(fx.graph.get(), fx.index.get(), plain, info);
  std::vector<SkResult> all;
  SkResult r;
  while (search.Next(&r)) all.push_back(r);
  ASSERT_GE(all.size(), 4u);
  // With λ=1, θ(u,v) depends only on the two relevances, so greedy pair
  // selection picks the closest available objects.
  double worst_selected = 0.0;
  for (const auto& s : out.selected) {
    worst_selected = std::max(worst_selected, s.dist);
  }
  std::sort(all.begin(), all.end(),
            [](const SkResult& a, const SkResult& b) {
              return a.dist < b.dist;
            });
  EXPECT_NEAR(worst_selected, all[3].dist, 1e-9);
}

TEST(DivSearchTest, CoLocatedObjectsAndTiedDistances) {
  // Objects stacked at identical positions create exact distance ties;
  // the deterministic total order must keep COM == SEQ.
  RoadNetwork net;
  net.AddNode({0, 0});
  net.AddNode({100, 0});
  net.AddNode({200, 0});
  net.AddNode({100, 100});
  EdgeId e01;
  EdgeId e12;
  EdgeId e13;
  ASSERT_TRUE(net.AddEdge(0, 1, -1, &e01).ok());
  ASSERT_TRUE(net.AddEdge(1, 2, -1, &e12).ok());
  ASSERT_TRUE(net.AddEdge(1, 3, -1, &e13).ok());
  net.Finalize();

  ObjectSet objects(&net);
  ObjectId id;
  for (int copy = 0; copy < 3; ++copy) {
    ASSERT_TRUE(objects.Add(e01, 50.0, {1}, &id).ok());  // triple stack
    ASSERT_TRUE(objects.Add(e12, 30.0, {1}, &id).ok());  // another stack
  }
  ASSERT_TRUE(objects.Add(e13, 80.0, {1}, &id).ok());
  objects.Finalize();

  DiskManager disk;
  BufferPool pool(&disk, 512);
  const CcamFile ccam = CcamFileBuilder::Build(net, &disk);
  CcamGraph graph(&ccam, &pool);
  SifIndex index(&pool, objects, 4, 1);

  DivQuery dq;
  dq.sk.loc = NetworkLocation{e01, 10.0};
  dq.sk.terms = {1};
  dq.sk.delta_max = 400.0;
  dq.k = 4;
  dq.lambda = 0.6;
  const QueryEdgeInfo qe = MakeQueryEdgeInfo(net, dq.sk.loc);

  auto run = [&](bool com) {
    IncrementalSkSearch search(&graph, &index, dq.sk, qe);
    PairwiseDistanceOracle oracle(&graph, 2.0 * dq.sk.delta_max);
    return com ? DiversifiedSearchCOM(&search, dq, &oracle)
               : DiversifiedSearchSEQ(&search, dq, &oracle);
  };
  const auto seq = run(false);
  const auto com = run(true);
  EXPECT_EQ(SortedIds(com.selected), SortedIds(seq.selected));
  EXPECT_NEAR(com.objective, seq.objective, 1e-9);
  EXPECT_EQ(seq.selected.size(), 4u);
}

TEST(PairwiseDistanceOracleTest, MatchesExactDistances) {
  DivFixture fx(76);
  const RoadNetwork& net = *fx.data.network;
  // Gather a handful of results around a query.
  DivQuery q;
  q.sk.loc = testing::LocationOfObject(*fx.data.objects, 2);
  q.sk.terms = {0};
  q.sk.delta_max = 1500.0;
  const QueryEdgeInfo info = MakeQueryEdgeInfo(net, q.sk.loc);
  IncrementalSkSearch search(fx.graph.get(), fx.index.get(), q.sk, info);
  std::vector<SkResult> results;
  SkResult r;
  while (search.Next(&r) && results.size() < 12) results.push_back(r);
  ASSERT_GE(results.size(), 2u);

  const QueryEdgeInfo qe = info;
  for (const OracleStrategy strategy :
       {OracleStrategy::kPerObjectDijkstra, OracleStrategy::kSharedExpansion}) {
    PairwiseDistanceOracle oracle(fx.graph.get(), 2.0 * q.sk.delta_max,
                                  strategy);
    oracle.SetQueryEdge(qe);
    for (size_t i = 0; i < results.size(); ++i) {
      for (size_t j = 0; j < results.size(); ++j) {
        const auto& a = fx.data.objects->object(results[i].id);
        const auto& b = fx.data.objects->object(results[j].id);
        const double want = ExactNetworkDistance(
            net, NetworkLocation{a.edge, a.offset},
            NetworkLocation{b.edge, b.offset});
        const double got = oracle.Distance(results[i], results[j]);
        ASSERT_NEAR(got, want, 1e-9) << i << "," << j;
      }
    }
    // Distances are evaluated from the canonical (smaller (dist, id)) side,
    // so the farthest result never needs its own field; the shared strategy
    // certifies some sources from the query expansion and needs even fewer.
    if (strategy == OracleStrategy::kPerObjectDijkstra) {
      EXPECT_EQ(oracle.fields_computed(), results.size() - 1);
    } else {
      EXPECT_LE(oracle.fields_computed(), results.size() - 1);
      EXPECT_GT(oracle.stats().pairs_shared_exact, 0u);
    }
  }
}

TEST(PairwiseDistanceOracleTest, DropFieldForcesRecompute) {
  DivFixture fx(77);
  DivQuery q;
  q.sk.loc = testing::LocationOfObject(*fx.data.objects, 1);
  q.sk.terms = {0};
  q.sk.delta_max = 1000.0;
  const QueryEdgeInfo info = MakeQueryEdgeInfo(*fx.data.network, q.sk.loc);
  IncrementalSkSearch search(fx.graph.get(), fx.index.get(), q.sk, info);
  SkResult a;
  SkResult b;
  SkResult c;
  ASSERT_TRUE(search.Next(&a));
  ASSERT_TRUE(search.Next(&b));
  ASSERT_TRUE(search.Next(&c));
  PairwiseDistanceOracle oracle(fx.graph.get(), 2000.0,
                                OracleStrategy::kPerObjectDijkstra);
  const double d1 = oracle.Distance(a, b);
  EXPECT_EQ(oracle.fields_computed(), 1u);
  oracle.Distance(a, b);
  EXPECT_EQ(oracle.fields_computed(), 1u);  // field cached
  // Distance is evaluated from the canonical side's field — the smaller
  // (dist, id), which is `a` since the search emitted it first.
  oracle.DropField(a.id);
  // The already-evaluated pair is memoized independently of field
  // lifetimes, so re-asking it costs nothing even after the drop...
  const double d2 = oracle.Distance(a, b);
  EXPECT_EQ(oracle.fields_computed(), 1u);
  EXPECT_DOUBLE_EQ(d1, d2);
  // ...but a fresh pair from the dropped source must recompute the field.
  oracle.Distance(a, c);
  EXPECT_EQ(oracle.fields_computed(), 2u);
}

/// Ground-truth pairwise distance from a Floyd-Warshall node matrix:
/// Equation 1 over the four endpoint combinations, the same-edge direct
/// path, capped at `radius` like the oracle.
double FwPairDistance(const std::vector<std::vector<double>>& fw,
                      const SkResult& a, const SkResult& b, double radius) {
  double best = radius;
  if (a.edge == b.edge) {
    best = std::min(best, std::abs(a.w1 - b.w1));
  }
  const NodeId an[2] = {a.n1, a.n2};
  const double ao[2] = {a.w1, a.edge_weight - a.w1};
  const NodeId bn[2] = {b.n1, b.n2};
  const double bo[2] = {b.w1, b.edge_weight - b.w1};
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      best = std::min(best, fw[an[i]][bn[j]] + ao[i] + bo[j]);
    }
  }
  return best;
}

/// The shared-expansion oracle must agree with the per-object oracle (and
/// with Floyd-Warshall ground truth) on every pair, across random networks
/// and query placements.
TEST(SharedExpansionOracleTest, MatchesPerObjectOracleAndFloydWarshall) {
  for (const uint64_t seed : {101u, 102u, 103u}) {
    DivFixture fx(seed);
    const std::vector<std::vector<double>> fw = FloydWarshall(*fx.data.network);
    Random rng(seed ^ 0x5EED);
    for (int round = 0; round < 3; ++round) {
      DivQuery q;
      q.sk.loc = testing::LocationOfObject(*fx.data.objects, rng.Uniform(500));
      q.sk.terms = {static_cast<TermId>(round % 3)};
      q.sk.delta_max = 1200.0 + 400.0 * round;
      const double radius = 2.0 * q.sk.delta_max;
      const QueryEdgeInfo info = MakeQueryEdgeInfo(*fx.data.network, q.sk.loc);
      IncrementalSkSearch search(fx.graph.get(), fx.index.get(), q.sk, info);
      std::vector<SkResult> results;
      SkResult r;
      while (search.Next(&r) && results.size() < 15) results.push_back(r);
      if (results.size() < 2) continue;

      PairwiseDistanceOracle shared(fx.graph.get(), radius,
                                    OracleStrategy::kSharedExpansion);
      shared.SetQueryEdge(info);
      PairwiseDistanceOracle per_object(fx.graph.get(), radius,
                                        OracleStrategy::kPerObjectDijkstra);
      for (size_t i = 0; i < results.size(); ++i) {
        for (size_t j = 0; j < results.size(); ++j) {
          const double want = FwPairDistance(fw, results[i], results[j],
                                             radius);
          const double got_shared = shared.Distance(results[i], results[j]);
          const double got_per_object =
              per_object.Distance(results[i], results[j]);
          ASSERT_NEAR(got_shared, want, 1e-9)
              << "seed " << seed << " round " << round << " pair " << i << ","
              << j;
          ASSERT_NEAR(got_shared, got_per_object, 1e-9);
        }
      }
      // The whole point of the shared pass: fewer per-object expansions.
      EXPECT_LE(shared.fields_computed(), per_object.fields_computed());
    }
  }
}

/// Acceptance property: swapping the oracle strategy changes *nothing*
/// about the diversification answer — SEQ and COM select identical object
/// sets under either strategy, on randomized instances.
TEST(SharedExpansionOracleTest, BitIdenticalDiversificationAcrossStrategies) {
  uint64_t fields_shared = 0;
  uint64_t fields_per_object = 0;
  for (const uint64_t seed : {111u, 112u, 113u, 114u}) {
    DivFixture fx(seed);
    Random rng(seed ^ 0xD1F);
    for (int round = 0; round < 4; ++round) {
      DivQuery q;
      q.sk.loc = testing::LocationOfObject(*fx.data.objects, rng.Uniform(500));
      q.sk.terms = {static_cast<TermId>(round % 3)};
      q.sk.delta_max = 1000.0 + 500.0 * (round % 3);
      q.k = 4 + 2 * (round % 3);
      q.lambda = 0.6 + 0.1 * round;

      for (const bool com : {false, true}) {
        const DivSearchOutput s =
            fx.Run(q, com, OracleStrategy::kSharedExpansion);
        const DivSearchOutput p =
            fx.Run(q, com, OracleStrategy::kPerObjectDijkstra);
        EXPECT_EQ(SortedIds(s.selected), SortedIds(p.selected))
            << "seed " << seed << " round " << round << " com " << com;
        EXPECT_NEAR(s.objective, p.objective, 1e-9);
        fields_shared += s.stats.distance_fields;
        fields_per_object += p.stats.distance_fields;
      }
    }
  }
  // Across the whole sweep the shared strategy must do strictly less
  // per-object Dijkstra work (the acceptance bar is >= 2x; asserting < 1x
  // keeps the test robust to topology while the bench records the ratio).
  EXPECT_LT(fields_shared, fields_per_object);
}

}  // namespace
}  // namespace dsks
