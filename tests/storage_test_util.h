#ifndef DSKS_TESTS_STORAGE_TEST_UTIL_H_
#define DSKS_TESTS_STORAGE_TEST_UTIL_H_

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/macros.h"
#include "datagen/presets.h"
#include "harness/database.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace dsks {
namespace testing {

/// Storage and chaos suites run against the backend named by the
/// DSKS_TEST_BACKEND environment variable ("sim" default, "file"), so
/// check.sh can run the same binaries against both.
inline bool FileBackendRequested() {
  const char* env = std::getenv("DSKS_TEST_BACKEND");
  return env != nullptr && std::string(env) == "file";
}

/// Same pattern for the speculative-read path: DSKS_TEST_IO=async reruns
/// the storage suites with fire-and-forget prefetches completing on
/// engine threads (io_uring or worker pool), sync otherwise.
inline bool AsyncIoRequested() {
  const char* env = std::getenv("DSKS_TEST_IO");
  return env != nullptr && std::string(env) == "async";
}

/// A fresh, collision-free path for a file-backend index file.
inline std::string FreshDiskPath(const std::string& tag) {
  static std::atomic<uint64_t> counter{0};
  const char* tmp = std::getenv("TMPDIR");
  const std::string dir = (tmp != nullptr && tmp[0] != '\0') ? tmp : "/tmp";
  return dir + "/dsks_" + tag + "_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".pages";
}

/// DiskOptions for the env-selected backend, with a fresh file path when
/// the file backend is requested.
inline DiskOptions TestDiskOptions(const std::string& tag) {
  DiskOptions options;
  if (FileBackendRequested()) {
    options.backend = DiskBackendKind::kFile;
    options.path = FreshDiskPath(tag);
  }
  if (AsyncIoRequested()) {
    options.io = IoMode::kAsync;
  }
  return options;
}

/// DiskOptions that force the file backend regardless of the env var
/// (durability tests are file-specific).
inline DiskOptions FileDiskOptions(const std::string& tag) {
  DiskOptions options;
  options.backend = DiskBackendKind::kFile;
  options.path = FreshDiskPath(tag);
  if (AsyncIoRequested()) {
    options.io = IoMode::kAsync;
  }
  return options;
}

inline void RemoveDiskFiles(const DiskOptions& options) {
  if (options.backend == DiskBackendKind::kFile && !options.path.empty()) {
    std::remove(options.path.c_str());
    std::remove((options.path + ".crc").c_str());
  }
}

/// A DiskManager on the env-selected backend whose files are removed on
/// destruction. Dereferences like a DiskManager pointer.
class TestDisk {
 public:
  explicit TestDisk(const std::string& tag = "disk")
      : options_(TestDiskOptions(tag)), disk_(options_) {}
  ~TestDisk() { RemoveDiskFiles(options_); }

  TestDisk(const TestDisk&) = delete;
  TestDisk& operator=(const TestDisk&) = delete;

  DiskManager* get() { return &disk_; }
  DiskManager* operator->() { return &disk_; }
  DiskManager& operator*() { return disk_; }
  const DiskOptions& options() const { return options_; }

 private:
  DiskOptions options_;
  DiskManager disk_;
};

/// A Database on the env-selected backend whose files are removed on
/// destruction.
class BackendDatabase {
 public:
  explicit BackendDatabase(const DatasetConfig& config,
                           const std::string& tag = "db")
      : options_(TestDiskOptions(tag)), db_(config, options_) {}
  ~BackendDatabase() { RemoveDiskFiles(options_); }

  BackendDatabase(const BackendDatabase&) = delete;
  BackendDatabase& operator=(const BackendDatabase&) = delete;

  Database* operator->() { return &db_; }
  Database& operator*() { return db_; }
  Database* get() { return &db_; }
  const DiskOptions& options() const { return options_; }

 private:
  DiskOptions options_;  // declared before db_: Database borrows nothing,
                         // but the path must outlive construction
  Database db_;
};

/// Test replacement for the removed BufferPool::FetchPageOrDie: pins page
/// `id` and returns its frame, CHECK-failing on a disk error. Tests that
/// exercise fault paths use FetchPage / PageGuard::Fetch directly.
inline char* MustFetch(BufferPool* pool, PageId id) {
  char* data = nullptr;
  const Status s = pool->FetchPage(id, &data);
  DSKS_CHECK_MSG(s.ok(), "MustFetch on a faulty disk");
  return data;
}

}  // namespace testing
}  // namespace dsks

#endif  // DSKS_TESTS_STORAGE_TEST_UTIL_H_
