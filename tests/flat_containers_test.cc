#include "common/flat_containers.h"

#include <algorithm>
#include <cstdint>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"

namespace dsks {
namespace {

TEST(FlatHashMapTest, EmptyMapBehaviour) {
  FlatHashMap<uint32_t, double> map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(7), nullptr);
  EXPECT_EQ(map.count(7), 0u);
  EXPECT_EQ(map.erase(7), 0u);
  EXPECT_EQ(map.begin(), map.end());
}

TEST(FlatHashMapTest, InsertFindOverwrite) {
  FlatHashMap<uint32_t, double> map;
  auto [v1, inserted1] = map.try_emplace(42, 1.5);
  EXPECT_TRUE(inserted1);
  EXPECT_DOUBLE_EQ(*v1, 1.5);
  // Second try_emplace of the same key does not overwrite.
  auto [v2, inserted2] = map.try_emplace(42, 9.9);
  EXPECT_FALSE(inserted2);
  EXPECT_DOUBLE_EQ(*v2, 1.5);
  EXPECT_EQ(map.size(), 1u);
  // operator[] / insert_or_assign do overwrite.
  map[42] = 2.5;
  EXPECT_DOUBLE_EQ(map.at(42), 2.5);
  map.insert_or_assign(42, 3.5);
  EXPECT_DOUBLE_EQ(map.at(42), 3.5);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMapTest, GrowthKeepsAllEntries) {
  FlatHashMap<uint32_t, uint32_t> map;
  const uint32_t n = 10000;
  for (uint32_t k = 0; k < n; ++k) {
    map.try_emplace(k * 3 + 1, k);
  }
  EXPECT_EQ(map.size(), n);
  EXPECT_GE(map.capacity(), n);
  for (uint32_t k = 0; k < n; ++k) {
    const uint32_t* v = map.find(k * 3 + 1);
    ASSERT_NE(v, nullptr) << "key " << k * 3 + 1;
    EXPECT_EQ(*v, k);
  }
  EXPECT_EQ(map.find(0), nullptr);  // never inserted
}

TEST(FlatHashMapTest, ClearKeepsCapacity) {
  FlatHashMap<uint32_t, uint32_t> map;
  for (uint32_t k = 0; k < 1000; ++k) {
    map.try_emplace(k, k);
  }
  const size_t cap = map.capacity();
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.capacity(), cap);
  EXPECT_EQ(map.find(1), nullptr);
  // Refilling the same keys must not grow.
  for (uint32_t k = 0; k < 1000; ++k) {
    map.try_emplace(k, k + 1);
  }
  EXPECT_EQ(map.capacity(), cap);
  EXPECT_EQ(map.at(999), 1000u);
}

TEST(FlatHashMapTest, ReserveAvoidsRehash) {
  FlatHashMap<uint32_t, uint32_t> map;
  map.reserve(1000);
  const size_t cap = map.capacity();
  EXPECT_GE(cap * 3 / 4, 1000u);
  for (uint32_t k = 0; k < 1000; ++k) {
    map.try_emplace(k, k);
  }
  EXPECT_EQ(map.capacity(), cap);
}

/// Randomized erase/insert cross-checked against std::unordered_map — this
/// is what validates the backward-shift deletion under long probe chains.
TEST(FlatHashMapTest, RandomizedOperationsMatchUnorderedMap) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    FlatHashMap<uint64_t, uint64_t> flat;
    std::unordered_map<uint64_t, uint64_t> ref;
    Random rng(seed);
    for (int op = 0; op < 20000; ++op) {
      // Small key universe forces collisions, reinsertion after erase, and
      // probe chains that wrap the slot array.
      const uint64_t key = rng.Uniform(512);
      const uint64_t kind = rng.Uniform(10);
      if (kind < 6) {
        const uint64_t value = rng.Uniform(1u << 20);
        flat.insert_or_assign(key, value);
        ref[key] = value;
      } else if (kind < 9) {
        EXPECT_EQ(flat.erase(key), ref.erase(key));
      } else {
        const uint64_t* got = flat.find(key);
        const auto it = ref.find(key);
        ASSERT_EQ(got != nullptr, it != ref.end());
        if (got != nullptr) {
          EXPECT_EQ(*got, it->second);
        }
      }
      ASSERT_EQ(flat.size(), ref.size());
    }
    // Full sweep at the end: every key agrees in both directions.
    for (const auto& [k, v] : ref) {
      const uint64_t* got = flat.find(k);
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(*got, v);
    }
    size_t seen = 0;
    for (const auto& [k, v] : flat) {
      ASSERT_TRUE(ref.count(k));
      EXPECT_EQ(ref.at(k), v);
      ++seen;
    }
    EXPECT_EQ(seen, ref.size());
  }
}

/// Iteration yields each entry exactly once and the *set* of entries is
/// independent of insertion order (the order itself is unspecified).
TEST(FlatHashMapTest, IterationSetIndependentOfInsertionOrder) {
  std::vector<uint32_t> keys;
  for (uint32_t k = 0; k < 200; ++k) {
    keys.push_back(k * 7 + 3);
  }
  FlatHashMap<uint32_t, uint32_t> forward;
  for (uint32_t k : keys) {
    forward.try_emplace(k, k * 2);
  }
  FlatHashMap<uint32_t, uint32_t> backward;
  for (auto it = keys.rbegin(); it != keys.rend(); ++it) {
    backward.try_emplace(*it, *it * 2);
  }
  std::set<std::pair<uint32_t, uint32_t>> a;
  std::set<std::pair<uint32_t, uint32_t>> b;
  for (const auto& kv : forward) a.insert({kv.first, kv.second});
  for (const auto& kv : backward) b.insert({kv.first, kv.second});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), keys.size());
}

TEST(EpochArrayTest, ResetMakesEverySlotUnset) {
  EpochArray<double> arr;
  arr.EnsureSize(64);
  arr.Set(3, 1.25);
  arr.Set(63, 2.5);
  EXPECT_TRUE(arr.Contains(3));
  EXPECT_DOUBLE_EQ(arr.Get(3), 1.25);
  ASSERT_NE(arr.Find(63), nullptr);
  EXPECT_DOUBLE_EQ(*arr.Find(63), 2.5);
  arr.Reset();
  // Stale-epoch reads: everything written before the reset is unset.
  EXPECT_FALSE(arr.Contains(3));
  EXPECT_FALSE(arr.Contains(63));
  EXPECT_EQ(arr.Find(3), nullptr);
  // A fresh write after the reset is visible and stale values don't leak.
  arr.Set(3, 9.0);
  EXPECT_DOUBLE_EQ(arr.Get(3), 9.0);
  EXPECT_FALSE(arr.Contains(63));
}

TEST(EpochArrayTest, OutOfRangeContainsIsFalse) {
  EpochArray<int> arr;
  arr.EnsureSize(8);
  EXPECT_FALSE(arr.Contains(8));
  EXPECT_FALSE(arr.Contains(1u << 30));
  EXPECT_EQ(arr.Find(8), nullptr);
}

TEST(EpochArrayTest, GrowthMidEpochPreservesLiveEntries) {
  EpochArray<int> arr;
  arr.EnsureSize(4);
  arr.Set(1, 11);
  arr.EnsureSize(1024);  // grow while an epoch is live
  EXPECT_TRUE(arr.Contains(1));
  EXPECT_EQ(arr.Get(1), 11);
  EXPECT_FALSE(arr.Contains(1000));  // new slots start unset
  arr.Set(1000, 7);
  EXPECT_EQ(arr.Get(1000), 7);
}

TEST(EpochArrayTest, ManyResetsNeverResurrectStaleValues) {
  EpochArray<int> arr;
  arr.EnsureSize(16);
  for (int round = 0; round < 1000; ++round) {
    const size_t slot = static_cast<size_t>(round) % 16;
    EXPECT_FALSE(arr.Contains(slot)) << "round " << round;
    arr.Set(slot, round);
    EXPECT_EQ(arr.Get(slot), round);
    arr.Reset();
  }
}

TEST(ReusableMinHeapTest, PopsInSortedOrderAndClearKeepsCapacity) {
  ReusableMinHeap<std::pair<double, uint32_t>> heap;
  Random rng(77);
  std::vector<std::pair<double, uint32_t>> items;
  for (uint32_t i = 0; i < 500; ++i) {
    // Duplicate distances exercise the id tie-break of pair ordering.
    items.push_back({static_cast<double>(rng.Uniform(50)), i});
  }
  for (const auto& it : items) {
    heap.push(it);
  }
  EXPECT_EQ(heap.size(), items.size());
  std::sort(items.begin(), items.end());
  for (const auto& want : items) {
    ASSERT_FALSE(heap.empty());
    EXPECT_EQ(heap.top(), want);
    heap.pop();
  }
  EXPECT_TRUE(heap.empty());
  heap.clear();
  heap.push({1.0, 1});
  EXPECT_EQ(heap.top(), (std::pair<double, uint32_t>{1.0, 1}));
}

}  // namespace
}  // namespace dsks
