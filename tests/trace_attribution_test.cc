// Exact per-query I/O attribution under real concurrency: eight threads
// run traced queries against one shared Database (with storage faults
// armed), and two identities must hold exactly — per trace, the sum of
// every phase's exclusive share equals the root's inclusive total; across
// threads, the per-context charges sum to the global pool/disk counter
// deltas, proving no thread's traffic leaks into another's account.
#include <array>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/status.h"
#include "datagen/presets.h"
#include "datagen/workload.h"
#include "gtest/gtest.h"
#include "harness/database.h"
#include "obs/io_account.h"
#include "obs/trace.h"
#include "storage/fault_injector.h"
#include "storage_test_util.h"

namespace dsks {
namespace {

DatasetConfig TinyPreset() {
  DatasetConfig c = ScalePreset(PresetSYN(), 0.03);
  c.objects.keywords_per_object = 6;
  return c;
}

TEST(TraceAttributionTest, EightThreadsTelescopeExactlyUnderFaults) {
  // Pin the sync regime even under DSKS_TEST_IO=async: exact per-query
  // attribution is defined for reads performed on the query's own thread,
  // while async completions land on engine threads and are charged to the
  // global counters only — the "charges sum to the global deltas" identity
  // this test pins holds only when every read has an owning query.
  DiskOptions disk_options = testing::TestDiskOptions("attr");
  disk_options.io = IoMode::kSync;
  Database db(TinyPreset(), disk_options);
  IndexOptions opts;
  opts.kind = IndexKind::kSIF;
  db.BuildIndex(opts);
  db.PrepareForQueries();

  WorkloadConfig wc;
  wc.num_queries = 24;
  wc.num_keywords = 2;
  wc.seed = 99;
  const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);

  // Faults on: failed queries unwind early, and their partial traces must
  // still balance and their partial I/O must still be charged exactly.
  FaultInjector::Config fc;
  fc.read_fault_p = 1e-2;
  fc.seed = 42;
  db.disk()->fault_injector()->Configure(fc);

  const BufferPoolStatsSnapshot pool_before = db.pool()->stats_snapshot();
  const auto disk_before = db.disk()->stats_snapshot();

  constexpr size_t kThreads = 8;
  constexpr size_t kRepeats = 4;
  std::vector<obs::IoCounters> charged(kThreads);
  std::array<uint64_t, kThreads> telescope_failures{};
  std::atomic<uint64_t> query_errors{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread owns its context and trace; Database::Run* installs
      // the context's counters as this thread's charge target.
      QueryContext ctx;
      obs::QueryTrace trace;
      trace.BindContextIo(&ctx.io);
      for (size_t r = 0; r < kRepeats; ++r) {
        for (const WorkloadQuery& wq : wl.queries) {
          trace.Clear();
          ctx.trace = &trace;
          std::vector<SkResult> results;
          const Status s = db.RunSkQuery(wq.sk, wq.edge, &results, &ctx);
          ctx.trace = nullptr;
          if (!s.ok()) {
            query_errors.fetch_add(1);
          }
          if (trace.open_depth() != 0 || trace.spans().empty()) {
            ++telescope_failures[t];
            continue;
          }
          const obs::TraceSpan& root = trace.spans().front();
          int64_t exclusive_ns = 0;
          obs::IoCounters exclusive_io;
          for (const obs::TraceSpan& span : trace.spans()) {
            exclusive_ns += span.exclusive_ns();
            exclusive_io += span.exclusive_io();
          }
          if (exclusive_ns != root.inclusive_ns ||
              !(exclusive_io == root.inclusive_io)) {
            ++telescope_failures[t];
          }
        }
      }
      charged[t] = ctx.io;
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }

  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(telescope_failures[t], 0u) << "thread " << t;
  }

  // The fault rate is high enough that this seeded run does fail queries;
  // attribution exactness must survive those unwinds.
  EXPECT_GT(db.disk()->fault_injector()->stats().read_faults, 0u);

  // Cross-thread: summed per-context charges equal the global deltas for
  // every counter pair — nothing double-charged, nothing dropped, no
  // account polluted by a neighbor. Exactness relies on every global
  // increment having a co-located thread-affine charge.
  obs::IoCounters total;
  for (const obs::IoCounters& io : charged) {
    total += io;
  }
  const BufferPoolStatsSnapshot pool_after = db.pool()->stats_snapshot();
  const auto disk_after = db.disk()->stats_snapshot();
  EXPECT_EQ(total.pool_hits, pool_after.hits - pool_before.hits);
  EXPECT_EQ(total.pool_misses, pool_after.misses - pool_before.misses);
  EXPECT_EQ(total.prefetched_pages,
            pool_after.prefetch_issued - pool_before.prefetch_issued);
  EXPECT_EQ(total.disk_reads, disk_after.reads - disk_before.reads);
  EXPECT_EQ(total.disk_writes, disk_after.writes - disk_before.writes);
  EXPECT_GT(total.pool_hits + total.pool_misses, 0u);
  EXPECT_GT(total.disk_reads, 0u);

  testing::RemoveDiskFiles(disk_options);
}

TEST(TraceAttributionTest, ScopedAccountRestoresAndNullIsNoop) {
  obs::IoCounters outer;
  obs::IoCounters inner;
  EXPECT_EQ(obs::CurrentIoAccount(), nullptr);
  {
    obs::ScopedIoAccount a(&outer);
    EXPECT_EQ(obs::CurrentIoAccount(), &outer);
    {
      // A null installation keeps the current account: Run* called with
      // no context must not silently detach an enclosing attribution.
      obs::ScopedIoAccount b(nullptr);
      EXPECT_EQ(obs::CurrentIoAccount(), &outer);
      {
        obs::ScopedIoAccount c(&inner);
        EXPECT_EQ(obs::CurrentIoAccount(), &inner);
        obs::ChargePoolHit();
      }
      EXPECT_EQ(obs::CurrentIoAccount(), &outer);
    }
    obs::ChargePoolMiss();
    obs::ChargeDiskRead();
  }
  EXPECT_EQ(obs::CurrentIoAccount(), nullptr);
  obs::ChargePoolHit();  // uncharged: no account installed
  EXPECT_EQ(inner.pool_hits, 1u);
  EXPECT_EQ(outer.pool_hits, 0u);
  EXPECT_EQ(outer.pool_misses, 1u);
  EXPECT_EQ(outer.disk_reads, 1u);
}

}  // namespace
}  // namespace dsks
