// FlightRecorder retention invariants (recent ring, slowest top-K, error
// retention) under both sequential and concurrent writers, plus the
// TraceSampler's deterministic 1-in-N schedule and its record-anyway
// overrides for errors and slow queries.
#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/sampler.h"

namespace dsks {
namespace {

obs::QuerySummary MakeSummary(double ms, bool error = false,
                              bool traced = false) {
  obs::QuerySummary s;
  s.kind = "sk";
  s.terms = 2;
  s.status = error ? "IO_ERROR" : "OK";
  s.error = error;
  s.traced = traced;
  s.total_ms = ms;
  s.total_io.pool_misses = 3;
  s.total_io.disk_reads = 3;
  return s;
}

TEST(FlightRecorderTest, RecentRingKeepsNewestAndSlowestSurviveEviction) {
  obs::FlightRecorder::Options opt;
  opt.recent_capacity = 4;
  opt.slow_capacity = 2;
  opt.error_capacity = 2;
  obs::FlightRecorder rec(opt);

  // Increasing latency: the slowest are also the newest, then one early
  // spike that recency must evict but the slow region must retain.
  const uint64_t first = rec.Record(MakeSummary(100.0));
  EXPECT_EQ(first, 1u);
  for (int i = 1; i <= 9; ++i) {
    rec.Record(MakeSummary(static_cast<double>(i)));
  }
  const obs::FlightRecorder::Snapshot snap = rec.TakeSnapshot();
  EXPECT_EQ(snap.recorded, 10u);

  // recent: newest first, exactly the ring capacity.
  ASSERT_EQ(snap.recent.size(), 4u);
  for (size_t i = 0; i < snap.recent.size(); ++i) {
    EXPECT_EQ(snap.recent[i].seq, 10u - i);
  }

  // slowest: the 100ms spike (seq 1, long gone from recent) plus the 9ms
  // runner-up, slowest first.
  ASSERT_EQ(snap.slowest.size(), 2u);
  EXPECT_DOUBLE_EQ(snap.slowest[0].total_ms, 100.0);
  EXPECT_EQ(snap.slowest[0].seq, 1u);
  EXPECT_DOUBLE_EQ(snap.slowest[1].total_ms, 9.0);

  EXPECT_TRUE(snap.errors.empty());
}

TEST(FlightRecorderTest, ErrorsAreRetainedPastRecencyEviction) {
  obs::FlightRecorder::Options opt;
  opt.recent_capacity = 2;
  opt.slow_capacity = 1;
  opt.error_capacity = 3;
  obs::FlightRecorder rec(opt);

  rec.Record(MakeSummary(1.0, /*error=*/true));
  for (int i = 0; i < 10; ++i) {
    rec.Record(MakeSummary(2.0));
  }
  rec.Record(MakeSummary(3.0, /*error=*/true));

  const obs::FlightRecorder::Snapshot snap = rec.TakeSnapshot();
  ASSERT_EQ(snap.errors.size(), 2u);
  EXPECT_EQ(snap.errors[0].seq, 12u);  // newest first
  EXPECT_EQ(snap.errors[1].seq, 1u);
  EXPECT_STREQ(snap.errors[0].status, "IO_ERROR");
  // Both errors also went through the recent ring; only the newest remains.
  EXPECT_EQ(snap.recent[0].seq, 12u);
}

TEST(FlightRecorderTest, OccupancyGaugeTracksLiveSlotsAndClear) {
  obs::MetricsRegistry reg;
  obs::Gauge& gauge = reg.gauge("dsks.flight_recorder.entries");
  obs::FlightRecorder::Options opt;
  opt.recent_capacity = 2;
  opt.slow_capacity = 2;
  opt.error_capacity = 2;
  obs::FlightRecorder rec(opt);
  rec.set_occupancy_gauge(&gauge);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);

  rec.Record(MakeSummary(1.0));  // recent + slowest
  EXPECT_DOUBLE_EQ(gauge.value(), 2.0);
  EXPECT_EQ(rec.size(), 2u);
  rec.Record(MakeSummary(2.0, /*error=*/true));  // all three regions
  EXPECT_DOUBLE_EQ(gauge.value(), 5.0);
  // recent and slowest are full: further OK records only replace slots.
  rec.Record(MakeSummary(3.0));
  EXPECT_DOUBLE_EQ(gauge.value(), 5.0);
  rec.Record(MakeSummary(4.0));
  EXPECT_DOUBLE_EQ(gauge.value(), 5.0);

  rec.Clear();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.TakeSnapshot().recent.size(), 0u);
  // Seq numbering restarts after Clear.
  EXPECT_EQ(rec.Record(MakeSummary(1.0)), 1u);
}

TEST(FlightRecorderTest, ConcurrentWritersLoseNothing) {
  obs::FlightRecorder::Options opt;
  opt.recent_capacity = 64;
  opt.slow_capacity = 8;
  opt.error_capacity = 16;
  obs::FlightRecorder rec(opt);

  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 500;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        const bool error = i % 97 == 0;
        rec.Record(MakeSummary(
            static_cast<double>(t * kPerThread + i) * 0.001, error));
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }

  EXPECT_EQ(rec.recorded(), kThreads * kPerThread);
  const obs::FlightRecorder::Snapshot snap = rec.TakeSnapshot();
  EXPECT_EQ(snap.recorded, kThreads * kPerThread);
  EXPECT_EQ(snap.recent.size(), opt.recent_capacity);
  EXPECT_EQ(snap.slowest.size(), opt.slow_capacity);
  EXPECT_EQ(snap.errors.size(), opt.error_capacity);

  // Seqs were assigned once each: every region holds distinct ones, the
  // rings in strictly newest-first order.
  std::set<uint64_t> seqs;
  for (size_t i = 0; i < snap.recent.size(); ++i) {
    EXPECT_TRUE(seqs.insert(snap.recent[i].seq).second);
    if (i > 0) {
      EXPECT_LT(snap.recent[i].seq, snap.recent[i - 1].seq);
    }
  }
  // The global slowest record (the last of thread 7) survived.
  EXPECT_DOUBLE_EQ(snap.slowest[0].total_ms,
                   (kThreads * kPerThread - 1) * 0.001);
  for (size_t i = 1; i < snap.slowest.size(); ++i) {
    EXPECT_GE(snap.slowest[i - 1].total_ms, snap.slowest[i].total_ms);
  }
  for (const obs::QuerySummary& s : snap.errors) {
    EXPECT_TRUE(s.error);
  }
}

TEST(FlightRecorderTest, RendersTextAndJson) {
  obs::FlightRecorder rec;
  obs::QuerySummary traced = MakeSummary(5.0, /*error=*/false, /*traced=*/true);
  traced.phase_exclusive_ns[static_cast<size_t>(obs::Phase::kQuery)] = 1000000;
  traced.phase_io[static_cast<size_t>(obs::Phase::kQuery)].disk_reads = 3;
  rec.Record(traced);
  rec.Record(MakeSummary(1.0, /*error=*/true));

  const std::string text = rec.ToText();
  EXPECT_NE(text.find("slowest"), std::string::npos) << text;
  EXPECT_NE(text.find("IO_ERROR"), std::string::npos) << text;
  EXPECT_NE(text.find("[traced]"), std::string::npos) << text;

  const std::string json = rec.ToJson();
  EXPECT_NE(json.find("\"recorded\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"phases\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"query\":{\"own_ms\":1.000000"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"status\":\"IO_ERROR\""), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// TraceSampler

TEST(TraceSamplerTest, OneInNIsExactAndDeterministic) {
  obs::TraceSamplerConfig cfg;
  cfg.sample_every = 4;
  cfg.seed = 7;
  obs::TraceSampler a(cfg, /*stream=*/0);
  obs::TraceSampler b(cfg, /*stream=*/0);
  size_t hits = 0;
  for (int i = 0; i < 64; ++i) {
    const bool ha = a.ShouldTrace();
    EXPECT_EQ(ha, b.ShouldTrace()) << i;  // same stream, same schedule
    hits += ha ? 1 : 0;
  }
  EXPECT_EQ(hits, 16u);  // exactly 1 in 4, not 1-in-4-on-average
}

TEST(TraceSamplerTest, StreamsArePhasedApart) {
  obs::TraceSamplerConfig cfg;
  cfg.sample_every = 4;
  cfg.seed = 0;
  // Each stream still traces exactly 1 in 4; the golden-ratio phase
  // spreads the first hit so workers do not trace in lockstep.
  std::set<size_t> first_hit;
  for (uint64_t stream = 0; stream < 4; ++stream) {
    obs::TraceSampler s(cfg, stream);
    size_t hits = 0;
    for (size_t i = 0; i < 64; ++i) {
      if (s.ShouldTrace()) {
        if (hits == 0) {
          first_hit.insert(i);
        }
        ++hits;
      }
    }
    EXPECT_EQ(hits, 16u) << "stream " << stream;
  }
  EXPECT_GT(first_hit.size(), 1u);
}

TEST(TraceSamplerTest, DisabledSamplerNeverTraces) {
  obs::TraceSampler s(obs::TraceSamplerConfig{}, /*stream=*/3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(s.ShouldTrace());
  }
}

TEST(TraceSamplerTest, ShouldRecordOverrides) {
  obs::TraceSamplerConfig cfg;
  cfg.slow_ms = 5.0;
  obs::TraceSampler s(cfg, 0);
  EXPECT_TRUE(s.ShouldRecord(/*traced=*/true, /*ok=*/true, 0.1));
  EXPECT_TRUE(s.ShouldRecord(/*traced=*/false, /*ok=*/false, 0.1));
  EXPECT_TRUE(s.ShouldRecord(/*traced=*/false, /*ok=*/true, 9.0));
  EXPECT_FALSE(s.ShouldRecord(/*traced=*/false, /*ok=*/true, 0.1));

  // No slow threshold: only sampling and errors keep records.
  obs::TraceSampler t(obs::TraceSamplerConfig{}, 0);
  EXPECT_FALSE(t.ShouldRecord(/*traced=*/false, /*ok=*/true, 1e9));
  EXPECT_TRUE(t.ShouldRecord(/*traced=*/false, /*ok=*/false, 0.0));
}

}  // namespace
}  // namespace dsks
