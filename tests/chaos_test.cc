// Chaos: a concurrent workload on a faulty disk must degrade into counted
// per-query failures — never a crash, never a miscount. Also covers the
// API-boundary validation that keeps malformed queries from aborting.
#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/status.h"
#include "datagen/presets.h"
#include "datagen/workload.h"
#include "gtest/gtest.h"
#include "harness/database.h"
#include "storage_test_util.h"
#include "harness/query_executor.h"
#include "obs/metrics.h"
#include "storage/fault_injector.h"

namespace dsks {
namespace {

DatasetConfig TinyPreset() {
  DatasetConfig c = ScalePreset(PresetSYN(), 0.03);
  c.objects.keywords_per_object = 6;
  return c;
}

Workload MakeWorkload(const Database& db, size_t n, uint64_t seed) {
  WorkloadConfig wc;
  wc.num_queries = n;
  wc.num_keywords = 2;
  wc.seed = seed;
  return GenerateWorkload(db.objects(), db.term_stats(), wc);
}

TEST(ChaosTest, SurvivesSeededReadFaultsWithExactAccounting) {
  // Pin the sync regime even under DSKS_TEST_IO=async: this test requires
  // that injected faults *surface* as query errors, but async prefetch
  // legitimately absorbs nearly all of them — demand fetches join
  // in-flight speculative reads instead of drawing their own faults, and
  // how many demand reads remain is a timing accident (under TSan it can
  // be zero). Fault accounting on the async path is covered by
  // fault_injection_test / async_io_test; executor-level accounting needs
  // the deterministic sync fault surface.
  DiskOptions disk_options = testing::TestDiskOptions("chaos_acct");
  disk_options.io = IoMode::kSync;
  Database db(TinyPreset(), disk_options);
  IndexOptions opts;
  opts.kind = IndexKind::kSIF;
  db.BuildIndex(opts);
  db.PrepareForQueries();  // small pool: queries keep missing to disk

  const Workload wl = MakeWorkload(db, 64, 17);

  // Prefetching deliberately absorbs faults that land on speculative
  // reads (the page is re-read on the demand path, which redraws the
  // fault), so only demand-read faults surface as query errors — and the
  // demand share of reads is an interleaving accident, down to a few
  // percent when the batched issuers are ahead. The rate is set high
  // enough that the *demand* slice alone still faults many times over
  // (expected dozens, P(zero) negligible) — the test runs with prefetch
  // ON precisely to prove the absorbed faults never break the accounting.
  FaultInjector::Config fc;
  fc.read_fault_p = 5e-2;
  fc.seed = 42;
  db.disk()->fault_injector()->Configure(fc);

  // Independent tally: the test itself counts every non-OK status the
  // tasks observe, then requires the executor's books to match exactly.
  std::array<std::atomic<uint64_t>, Status::kNumCodes> seen{};
  obs::MetricsRegistry registry;
  ExecutorConfig config;
  config.num_threads = 8;
  config.metrics = &registry;
  QueryExecutor exec(config);
  constexpr size_t kRounds = 4;
  for (size_t round = 0; round < kRounds; ++round) {
    for (const WorkloadQuery& wq : wl.queries) {
      const WorkloadQuery* q = &wq;
      exec.SubmitQuery([&db, &seen, q](QueryContext* ctx) {
        std::vector<SkResult> results;
        const Status s = db.RunSkQuery(q->sk, q->edge, &results, ctx);
        if (!s.ok()) {
          seen[static_cast<size_t>(s.code())].fetch_add(1);
        }
        return s;
      });
    }
  }
  const QueryExecutor::DrainResult drained = exec.Drain();
  db.disk()->fault_injector()->Disarm();

  EXPECT_EQ(drained.samples.size(), wl.queries.size() * kRounds);
  uint64_t total = 0;
  for (size_t c = 0; c < Status::kNumCodes; ++c) {
    EXPECT_EQ(drained.errors[c], seen[c].load())
        << "code " << Status::CodeName(static_cast<Status::Code>(c));
    total += drained.errors[c];
  }
  EXPECT_EQ(drained.total_errors(), total);
  // Valid queries on a disk that only throws IO faults can fail only with
  // IO_ERROR — no invalid-argument, no corruption, nothing unexplained.
  EXPECT_EQ(total,
            drained.errors[static_cast<size_t>(Status::Code::kIOError)]);
  // The injected faults actually happened (64 queries x 4 rounds on a
  // cold-ish pool draws thousands of reads at p=1e-3).
  EXPECT_GT(db.disk()->stats().read_faults.load(), 0u);
  EXPECT_GT(total, 0u);
  // Drain published the failure counters under their code label.
  EXPECT_EQ(registry.counter("dsks.query.errors.IO_ERROR").value(), total);

  // With the injector disarmed the same database answers cleanly again.
  std::vector<SkResult> results;
  EXPECT_TRUE(
      db.RunSkQuery(wl.queries[0].sk, wl.queries[0].edge, &results).ok());

  testing::RemoveDiskFiles(disk_options);
}

TEST(ChaosTest, TransientFaultIsAbsorbedByRetry) {
  testing::BackendDatabase bdb(TinyPreset());
  Database& db = *bdb;
  IndexOptions opts;
  opts.kind = IndexKind::kSIF;
  db.BuildIndex(opts);
  db.PrepareForQueries();
  const Workload wl = MakeWorkload(db, 1, 23);

  // Prefetch reads would race the demand path for the one-shot fault: a
  // speculative read consuming it is dropped silently, leaving zero
  // retries. Pin prefetch off so the fault deterministically hits the
  // demand read this test is about.
  db.SetPrefetchEnabled(false);

  // One one-shot read fault, one retry allowed: the first attempt fails
  // mid-query, the rerun reads clean. Fully deterministic.
  db.disk()->fault_injector()->InjectReadFaultOnce();
  ExecutorConfig config;
  config.num_threads = 1;
  config.max_retries = 1;
  config.retry_backoff_millis = 0.0;
  config.metrics = nullptr;
  QueryExecutor exec(config);
  const WorkloadQuery* q = &wl.queries[0];
  exec.SubmitQuery([&db, q](QueryContext* ctx) {
    std::vector<SkResult> results;
    return db.RunSkQuery(q->sk, q->edge, &results, ctx);
  });
  const QueryExecutor::DrainResult drained = exec.Drain();
  EXPECT_EQ(drained.total_errors(), 0u) << "the retry must succeed";
  EXPECT_EQ(drained.retries, 1u);
}

TEST(ChaosTest, ColdReadOfFlippedBitReportsCorruption) {
  testing::BackendDatabase bdb(TinyPreset());
  Database& db = *bdb;
  IndexOptions opts;
  opts.kind = IndexKind::kSIF;
  db.BuildIndex(opts);
  db.PrepareForQueries();
  const Workload wl = MakeWorkload(db, 1, 31);

  // Every cold read returns a bit-flipped copy; the page checksum turns
  // that silent corruption into a loud kCorruption on the first miss.
  FaultInjector::Config fc;
  fc.corrupt_read_p = 1.0;
  fc.seed = 5;
  db.disk()->fault_injector()->Configure(fc);
  std::vector<SkResult> results;
  const Status s =
      db.RunSkQuery(wl.queries[0].sk, wl.queries[0].edge, &results);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  db.disk()->fault_injector()->Disarm();
  EXPECT_GT(db.disk()->stats().corruptions_detected.load(), 0u);

  // Corruption is permanent, not transient: the retry policy must not
  // burn attempts on it.
  db.disk()->fault_injector()->Configure(fc);
  ExecutorConfig config;
  config.num_threads = 1;
  config.max_retries = 5;
  config.retry_backoff_millis = 0.0;
  config.metrics = nullptr;
  QueryExecutor exec(config);
  const WorkloadQuery* q = &wl.queries[0];
  exec.SubmitQuery([&db, q](QueryContext* ctx) {
    std::vector<SkResult> out;
    return db.RunSkQuery(q->sk, q->edge, &out, ctx);
  });
  const QueryExecutor::DrainResult drained = exec.Drain();
  db.disk()->fault_injector()->Disarm();
  EXPECT_EQ(drained.retries, 0u);
  EXPECT_EQ(drained.errors[static_cast<size_t>(Status::Code::kCorruption)],
            1u);
}

TEST(ChaosTest, FaultFreeResultsAreIdenticalBeforeAndAfterChaos) {
  // The fault machinery must be invisible when idle: the same query gives
  // byte-identical results before injection, and again after the injector
  // is disarmed (checksums healed by rewrites notwithstanding).
  testing::BackendDatabase bdb(TinyPreset());
  Database& db = *bdb;
  IndexOptions opts;
  opts.kind = IndexKind::kSIF;
  db.BuildIndex(opts);
  db.PrepareForQueries();
  const Workload wl = MakeWorkload(db, 8, 41);

  auto run_all = [&db, &wl] {
    std::vector<std::vector<SkResult>> all;
    for (const WorkloadQuery& wq : wl.queries) {
      std::vector<SkResult> results;
      EXPECT_TRUE(db.RunSkQuery(wq.sk, wq.edge, &results).ok());
      all.push_back(std::move(results));
    }
    return all;
  };
  const auto before = run_all();

  FaultInjector::Config fc;
  fc.read_fault_p = 0.05;
  fc.seed = 77;
  db.disk()->fault_injector()->Configure(fc);
  for (const WorkloadQuery& wq : wl.queries) {
    std::vector<SkResult> results;
    (void)db.RunSkQuery(wq.sk, wq.edge, &results);  // may fail; must not crash
  }
  db.disk()->fault_injector()->Disarm();

  const auto after = run_all();
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    ASSERT_EQ(before[i].size(), after[i].size()) << "query " << i;
    for (size_t j = 0; j < before[i].size(); ++j) {
      EXPECT_EQ(before[i][j].id, after[i][j].id);
      EXPECT_DOUBLE_EQ(before[i][j].dist, after[i][j].dist);
    }
  }
}

// --- API-boundary validation: malformed queries are InvalidArgument ------

class ValidationTest : public ::testing::Test {
 protected:
  ValidationTest() : db_(TinyPreset()) {
    IndexOptions opts;
    opts.kind = IndexKind::kSIF;
    db_->BuildIndex(opts);
    db_->PrepareForQueries();
    wl_ = MakeWorkload(*db_, 1, 53);
  }

  testing::BackendDatabase db_;
  Workload wl_;
};

TEST_F(ValidationTest, EmptyTermListIsInvalidArgument) {
  SkQuery q = wl_.queries[0].sk;
  q.terms.clear();
  std::vector<SkResult> out;
  EXPECT_TRUE(
      db_->RunSkQuery(q, wl_.queries[0].edge, &out).IsInvalidArgument());
}

TEST_F(ValidationTest, NonPositiveOrNanDeltaIsInvalidArgument) {
  SkQuery q = wl_.queries[0].sk;
  std::vector<SkResult> out;
  q.delta_max = 0.0;
  EXPECT_TRUE(
      db_->RunSkQuery(q, wl_.queries[0].edge, &out).IsInvalidArgument());
  q.delta_max = -5.0;
  EXPECT_TRUE(
      db_->RunSkQuery(q, wl_.queries[0].edge, &out).IsInvalidArgument());
  q.delta_max = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(
      db_->RunSkQuery(q, wl_.queries[0].edge, &out).IsInvalidArgument());
}

TEST_F(ValidationTest, OutOfRangeEdgeIsInvalidArgument) {
  SkQuery q = wl_.queries[0].sk;
  q.loc.edge = static_cast<EdgeId>(db_->network().num_edges() + 100);
  std::vector<SkResult> out;
  EXPECT_TRUE(
      db_->RunSkQuery(q, wl_.queries[0].edge, &out).IsInvalidArgument());
}

TEST_F(ValidationTest, UnsortedDuplicateTermsAreCanonicalized) {
  const SkQuery& good = wl_.queries[0].sk;
  std::vector<SkResult> want;
  ASSERT_TRUE(db_->RunSkQuery(good, wl_.queries[0].edge, &want).ok());

  SkQuery messy = good;
  std::reverse(messy.terms.begin(), messy.terms.end());
  messy.terms.push_back(messy.terms.front());  // duplicate
  std::vector<SkResult> got;
  ASSERT_TRUE(db_->RunSkQuery(messy, wl_.queries[0].edge, &got).ok());
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id);
  }
}

TEST_F(ValidationTest, DivQueryValidatesKAndLambda) {
  DivQuery dq;
  dq.sk = wl_.queries[0].sk;
  dq.k = 0;
  dq.lambda = 0.8;
  DivSearchOutput out;
  EXPECT_TRUE(db_->RunDivQuery(dq, wl_.queries[0].edge, /*use_com=*/true, &out)
                  .IsInvalidArgument());
  dq.k = 4;
  dq.lambda = 1.5;
  EXPECT_TRUE(db_->RunDivQuery(dq, wl_.queries[0].edge, /*use_com=*/true, &out)
                  .IsInvalidArgument());
  dq.lambda = 0.8;
  EXPECT_TRUE(db_->RunDivQuery(dq, wl_.queries[0].edge, /*use_com=*/true, &out)
                  .ok());
}

TEST_F(ValidationTest, KnnAndRankedValidateTheirParameters) {
  std::vector<SkResult> knn;
  EXPECT_TRUE(db_->RunKnnQuery(wl_.queries[0].sk, wl_.queries[0].edge,
                              /*k=*/0, &knn)
                  .IsInvalidArgument());
  RankedQuery rq;
  rq.sk = wl_.queries[0].sk;
  rq.k = 5;
  rq.alpha = 2.0;
  std::vector<RankedResult> ranked;
  EXPECT_TRUE(db_->RunRankedQuery(rq, wl_.queries[0].edge, &ranked)
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace dsks
