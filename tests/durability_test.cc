// Durability of the file backend: build → flush → reopen must verify
// every page; torn writes and stale sidecars must surface as CORRUPTION
// Status (the process survives); and the two backends must be
// observationally identical — same dataset, same workload, bit-identical
// result sets.
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "datagen/presets.h"
#include "datagen/workload.h"
#include "gtest/gtest.h"
#include "harness/database.h"
#include "obs/metrics.h"
#include "storage/disk_manager.h"
#include "storage/file_disk_backend.h"
#include "storage_test_util.h"

namespace dsks {
namespace {

DatasetConfig TinyPreset() {
  DatasetConfig c = ScalePreset(PresetSYN(), 0.03);
  c.objects.keywords_per_object = 6;
  return c;
}

Workload MakeWorkload(const Database& db, size_t n, uint64_t seed) {
  WorkloadConfig wc;
  wc.num_queries = n;
  wc.num_keywords = 2;
  wc.seed = seed;
  return GenerateWorkload(db.objects(), db.term_stats(), wc);
}

// --- backend equivalence --------------------------------------------------

TEST(BackendEquivalenceTest, SkAndDivResultsAreBitIdentical) {
  const DatasetConfig config = TinyPreset();
  IndexOptions opts;
  opts.kind = IndexKind::kSIF;

  Database sim_db(config);  // default: sim backend
  sim_db.BuildIndex(opts);
  sim_db.PrepareForQueries();

  const DiskOptions file_options = testing::FileDiskOptions("equiv");
  Database file_db(config, file_options);
  file_db.BuildIndex(opts);
  file_db.PrepareForQueries();

  const Workload wl = MakeWorkload(sim_db, 24, 97);
  for (const WorkloadQuery& wq : wl.queries) {
    std::vector<SkResult> sim_results;
    std::vector<SkResult> file_results;
    ASSERT_TRUE(sim_db.RunSkQuery(wq.sk, wq.edge, &sim_results).ok());
    ASSERT_TRUE(file_db.RunSkQuery(wq.sk, wq.edge, &file_results).ok());
    ASSERT_EQ(sim_results.size(), file_results.size());
    for (size_t i = 0; i < sim_results.size(); ++i) {
      EXPECT_EQ(sim_results[i].id, file_results[i].id);
      // Bit-identical, not approximately equal: both backends must feed
      // the search the exact same pages.
      EXPECT_EQ(std::memcmp(&sim_results[i].dist, &file_results[i].dist,
                            sizeof(double)),
                0);
    }

    DivQuery dq;
    dq.sk = wq.sk;
    dq.k = 4;
    dq.lambda = 0.8;
    DivSearchOutput sim_div;
    DivSearchOutput file_div;
    ASSERT_TRUE(sim_db.RunDivQuery(dq, wq.edge, /*use_com=*/true, &sim_div).ok());
    ASSERT_TRUE(
        file_db.RunDivQuery(dq, wq.edge, /*use_com=*/true, &file_div).ok());
    ASSERT_EQ(sim_div.selected.size(), file_div.selected.size());
    for (size_t i = 0; i < sim_div.selected.size(); ++i) {
      EXPECT_EQ(sim_div.selected[i].id, file_div.selected[i].id);
    }
  }
  // Identical page traffic too: same misses means the backends served the
  // same logical reads.
  EXPECT_EQ(sim_db.disk()->num_pages(), file_db.disk()->num_pages());

  testing::RemoveDiskFiles(file_options);
}

// --- build / flush / reopen ----------------------------------------------

TEST(DurabilityTest, BuildFlushReopenEveryPageVerifies) {
  const DiskOptions options = testing::FileDiskOptions("reopen");
  size_t built_pages = 0;
  {
    Database db(TinyPreset(), options);
    IndexOptions opts;
    opts.kind = IndexKind::kSIF;
    db.BuildIndex(opts);
    ASSERT_TRUE(db.FlushStorage().ok());
    built_pages = db.disk()->num_pages();
    ASSERT_GT(built_pages, 0u);
  }
  // The Database is gone; only the files remain. Reopen and verify every
  // page against the persisted sidecar.
  std::unique_ptr<DiskManager> reopened;
  ASSERT_TRUE(DiskManager::OpenExisting(options, &reopened).ok());
  EXPECT_EQ(reopened->num_pages(), built_pages)
      << "allocation watermark must survive reopen";
  std::vector<char> buf(kPageSize);
  for (PageId id = 0; id < built_pages; ++id) {
    ASSERT_TRUE(reopened->ReadPage(id, buf.data()).ok()) << "page " << id;
  }
  EXPECT_EQ(reopened->stats().corruptions_detected.load(), 0u);
  reopened.reset();
  testing::RemoveDiskFiles(options);
}

TEST(DurabilityTest, TornWriteSurfacesCorruptionOnColdRead) {
  const DiskOptions options = testing::FileDiskOptions("torn");
  size_t num_pages = 0;
  {
    DiskManager disk(options);
    char buf[kPageSize];
    for (int i = 0; i < 4; ++i) {
      const PageId id = disk.AllocatePage();
      std::memset(buf, 'a' + i, kPageSize);
      ASSERT_TRUE(disk.WritePage(id, buf).ok());
    }
    ASSERT_TRUE(disk.Flush().ok());
    num_pages = disk.num_pages();
  }
  // Tear the last page: the file ends mid-page, as after a crashed write.
  ASSERT_EQ(::truncate(options.path.c_str(),
                       static_cast<off_t>(num_pages) * kPageSize - 100),
            0);

  std::unique_ptr<DiskManager> reopened;
  ASSERT_TRUE(DiskManager::OpenExisting(options, &reopened).ok());
  char out[kPageSize];
  // Intact pages still verify...
  for (PageId id = 0; id + 1 < num_pages; ++id) {
    EXPECT_TRUE(reopened->ReadPage(id, out).ok()) << "page " << id;
  }
  // ...and the torn one is a loud Corruption, not an abort or garbage.
  const Status s = reopened->ReadPage(static_cast<PageId>(num_pages - 1), out);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_GE(reopened->stats().corruptions_detected.load(), 1u);
  reopened.reset();
  testing::RemoveDiskFiles(options);
}

TEST(DurabilityTest, StaleSidecarSurfacesCorruptionOnColdRead) {
  const DiskOptions options = testing::FileDiskOptions("stale");
  PageId victim = 0;
  {
    DiskManager disk(options);
    char buf[kPageSize];
    for (int i = 0; i < 3; ++i) {
      const PageId id = disk.AllocatePage();
      std::memset(buf, 'x' + i, kPageSize);
      ASSERT_TRUE(disk.WritePage(id, buf).ok());
      victim = id;
    }
    ASSERT_TRUE(disk.Flush().ok());
    // Overwrite the victim *after* the flush and close without flushing:
    // the data file now disagrees with the persisted sidecar, exactly the
    // state a crash between data write and sidecar flush leaves behind.
    std::memset(buf, 'Z', kPageSize);
    ASSERT_TRUE(disk.WritePage(victim, buf).ok());
  }

  std::unique_ptr<DiskManager> reopened;
  ASSERT_TRUE(DiskManager::OpenExisting(options, &reopened).ok());
  char out[kPageSize];
  const Status s = reopened->ReadPage(victim, out);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  // The untouched pages still verify.
  for (PageId id = 0; id < victim; ++id) {
    EXPECT_TRUE(reopened->ReadPage(id, out).ok()) << "page " << id;
  }
  reopened.reset();
  testing::RemoveDiskFiles(options);
}

TEST(DurabilityTest, MissingSidecarFailsOpenWithoutAborting) {
  const DiskOptions options = testing::FileDiskOptions("nosidecar");
  {
    DiskManager disk(options);
    char buf[kPageSize] = {0};
    const PageId id = disk.AllocatePage();
    ASSERT_TRUE(disk.WritePage(id, buf).ok());
    ASSERT_TRUE(disk.Flush().ok());
  }
  ASSERT_EQ(std::remove((options.path + ".crc").c_str()), 0);
  std::unique_ptr<DiskManager> reopened;
  const Status s = DiskManager::OpenExisting(options, &reopened);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_EQ(reopened, nullptr);
  testing::RemoveDiskFiles(options);
}

TEST(DurabilityTest, OpenExistingRejectsSimBackend) {
  std::unique_ptr<DiskManager> reopened;
  EXPECT_TRUE(
      DiskManager::OpenExisting(DiskOptions{}, &reopened).IsInvalidArgument());
}

TEST(DurabilityTest, ReadDelayKnobIsANoOpOnFileBackend) {
  const DiskOptions options = testing::FileDiskOptions("delay");
  DiskManager disk(options);
  // Documented contract: the simulated-latency knobs model the device the
  // sim backend replaces; on the file backend they are no-ops.
  disk.set_read_delay_us(5000.0);
  disk.set_read_delay_yields(true);
  EXPECT_EQ(disk.read_delay_us(), 0.0);
  EXPECT_FALSE(disk.read_delay_yields());
  testing::RemoveDiskFiles(options);
}

// --- flush cost -----------------------------------------------------------

TEST(DurabilityTest, FlushRewritesOnlyDirtyCrcEntries) {
  const DiskOptions options = testing::FileDiskOptions("dirtycrc");
  std::unique_ptr<FileDiskBackend> backend;
  ASSERT_TRUE(FileDiskBackend::Create(options, &backend).ok());

  constexpr size_t kPages = 64;
  std::vector<char> page(kPageSize, 'x');
  for (size_t i = 0; i < kPages; ++i) {
    const PageId id = backend->AllocatePage();
    ASSERT_TRUE(
        backend->WritePage(id, page.data(), static_cast<uint32_t>(i)).ok());
  }
  ASSERT_TRUE(backend->Flush().ok());
  EXPECT_EQ(backend->crc_entries_rewritten(), kPages)
      << "the first flush persists every allocated entry";

  // A clean flush rewrites nothing (only the header).
  ASSERT_TRUE(backend->Flush().ok());
  EXPECT_EQ(backend->crc_entries_rewritten(), kPages);

  // One dirtied page costs one sidecar entry, not O(all pages) — the
  // regression this test pins: Flush used to rewrite the whole sidecar.
  ASSERT_TRUE(backend->WritePage(kPages / 2, page.data(), 0x5555u).ok());
  ASSERT_TRUE(backend->Flush().ok());
  EXPECT_EQ(backend->crc_entries_rewritten(), kPages + 1);

  backend.reset();
  testing::RemoveDiskFiles(options);
}

// --- rebuild leak ---------------------------------------------------------

TEST(RebuildTest, RepeatedBuildIndexDoesNotLeakPages) {
  testing::BackendDatabase db(TinyPreset(), "rebuild");
  IndexOptions opts;
  opts.kind = IndexKind::kSIF;
  db->BuildIndex(opts);
  const size_t pages_after_first = db->disk()->num_pages();

  // Rebuilds — same kind and a different one — must reuse the superseded
  // extent, not grow the disk monotonically (the old behaviour leaked
  // every predecessor's pages forever).
  for (int round = 0; round < 3; ++round) {
    opts.kind = (round % 2 == 0) ? IndexKind::kIF : IndexKind::kSIF;
    db->BuildIndex(opts);
  }
  opts.kind = IndexKind::kSIF;
  db->BuildIndex(opts);
  EXPECT_EQ(db->disk()->num_pages(), pages_after_first)
      << "rebuilding the same index kind must not grow the disk";

  // The leak gauge agrees: nothing outside CCAM + live index.
  obs::MetricsRegistry registry;
  db->BindMetrics(&registry, "db");
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"db.disk.leaked_pages\":0"), std::string::npos)
      << json;
  db->UnbindMetrics(&registry, "db");

  // And the rebuilt database still answers queries.
  db->PrepareForQueries();
  const Workload wl = MakeWorkload(*db, 4, 11);
  for (const WorkloadQuery& wq : wl.queries) {
    std::vector<SkResult> results;
    EXPECT_TRUE(db->RunSkQuery(wq.sk, wq.edge, &results).ok());
  }
}

}  // namespace
}  // namespace dsks
