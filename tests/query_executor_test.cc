// QueryExecutor: thread-pool mechanics (bounded queue, drain, reuse) and
// end-to-end correctness of concurrent queries against one shared
// Database — every worker must see exactly the results the sequential
// harness produces.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <thread>
#include <vector>

#include "datagen/presets.h"
#include "datagen/workload.h"
#include "gtest/gtest.h"
#include "harness/database.h"
#include "harness/query_executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dsks {
namespace {

DatasetConfig TinyPreset() {
  DatasetConfig c = ScalePreset(PresetSYN(), 0.03);
  c.objects.keywords_per_object = 6;
  return c;
}

TEST(QueryExecutorTest, RunsEveryTaskExactlyOnce) {
  ExecutorConfig config;
  config.num_threads = 4;
  config.queue_capacity = 8;  // forces Submit to block and back-pressure
  QueryExecutor exec(config);
  constexpr size_t kTasks = 500;
  std::atomic<uint64_t> sum{0};
  for (size_t i = 0; i < kTasks; ++i) {
    exec.Submit([&sum, i] { sum.fetch_add(i + 1); });
  }
  QueryExecutor::DrainResult res = exec.Drain();
  EXPECT_EQ(res.samples.size(), kTasks);
  EXPECT_EQ(sum.load(), kTasks * (kTasks + 1) / 2);
  // The merged histogram covers exactly the drained samples.
  EXPECT_EQ(res.latency.count, kTasks);

  // The executor is reusable after a drain; samples were consumed.
  exec.Submit([&sum] { sum.fetch_add(1); });
  res = exec.Drain();
  EXPECT_EQ(res.samples.size(), 1u);
  EXPECT_EQ(res.latency.count, 1u);
}

TEST(QueryExecutorTest, DrainPublishesIntoRegistry) {
  obs::MetricsRegistry registry;
  ExecutorConfig config;
  config.num_threads = 3;
  config.metrics = &registry;
  QueryExecutor exec(config);
  for (int i = 0; i < 20; ++i) {
    exec.Submit([] {});
  }
  exec.Drain();
  EXPECT_EQ(registry.counter("executor.queries").value(), 20u);
  EXPECT_EQ(registry.histogram("executor.query_ms").count(), 20u);
}

TEST(QueryExecutorTest, SummarizeThroughputPercentiles) {
  // 100 samples 1..100 ms over a 1 s wall: 100 qps, p50=50, p99=99.
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) {
    samples.push_back(static_cast<double>(i));
  }
  const ThroughputMetrics m = SummarizeThroughput(4, 1000.0, samples);
  EXPECT_EQ(m.num_threads, 4u);
  EXPECT_EQ(m.queries, 100u);
  EXPECT_DOUBLE_EQ(m.qps, 100.0);
  EXPECT_DOUBLE_EQ(m.avg_millis, 50.5);
  EXPECT_DOUBLE_EQ(m.p50_millis, 50.0);
  EXPECT_DOUBLE_EQ(m.p95_millis, 95.0);
  EXPECT_DOUBLE_EQ(m.p99_millis, 99.0);
}

TEST(QueryExecutorTest, ConcurrentSkQueriesMatchSequentialResults) {
  Database db(TinyPreset());
  IndexOptions opts;
  opts.kind = IndexKind::kSIF;
  db.BuildIndex(opts);
  db.PrepareForQueries();

  WorkloadConfig wc;
  wc.num_queries = 24;
  wc.num_keywords = 2;
  wc.seed = 17;
  const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);

  // Sequential reference: result multiset per query.
  std::vector<std::vector<ObjectId>> want(wl.queries.size());
  for (size_t i = 0; i < wl.queries.size(); ++i) {
    for (const SkResult& r :
         db.RunSkQuery(wl.queries[i].sk, wl.queries[i].edge)) {
      want[i].push_back(r.id);
    }
  }

  // Concurrent run over a cold cache: same queries, 4 threads, 3 rounds.
  db.PrepareForQueries();
  constexpr size_t kRounds = 3;
  ExecutorConfig config;
  config.num_threads = 4;
  QueryExecutor exec(config);
  std::vector<std::vector<ObjectId>> got(wl.queries.size() * kRounds);
  for (size_t round = 0; round < kRounds; ++round) {
    for (size_t i = 0; i < wl.queries.size(); ++i) {
      std::vector<ObjectId>* out = &got[round * wl.queries.size() + i];
      const WorkloadQuery* wq = &wl.queries[i];
      exec.Submit([&db, wq, out] {
        for (const SkResult& r : db.RunSkQuery(wq->sk, wq->edge)) {
          out->push_back(r.id);
        }
      });
    }
  }
  const QueryExecutor::DrainResult res = exec.Drain();
  EXPECT_EQ(res.samples.size(), wl.queries.size() * kRounds);
  for (size_t round = 0; round < kRounds; ++round) {
    for (size_t i = 0; i < wl.queries.size(); ++i) {
      EXPECT_EQ(got[round * wl.queries.size() + i], want[i])
          << "query " << i << " round " << round;
    }
  }
}

TEST(QueryExecutorTest, ConcurrentThroughputHelperRuns) {
  // Keep the harness helper exercised without timing assertions (CI boxes
  // vary); correctness of the numbers is covered by the summarize test.
  setenv("DSKS_IO_DELAY_US", "0", /*overwrite=*/1);
  Database db(TinyPreset());
  IndexOptions opts;
  opts.kind = IndexKind::kSIF;
  db.BuildIndex(opts);
  db.PrepareForQueries();

  WorkloadConfig wc;
  wc.num_queries = 8;
  wc.num_keywords = 2;
  wc.seed = 23;
  const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);

  const ThroughputMetrics m = RunSkWorkloadConcurrent(&db, wl, 4, 2);
  EXPECT_EQ(m.num_threads, 4u);
  EXPECT_EQ(m.queries, wl.queries.size() * 2);
  EXPECT_GT(m.qps, 0.0);
  EXPECT_GE(m.p99_millis, m.p50_millis);

  const ThroughputMetrics d =
      RunDivWorkloadConcurrent(&db, wl, /*k=*/4, /*lambda=*/0.8,
                               /*use_com=*/true, 2, 1);
  EXPECT_EQ(d.queries, wl.queries.size());
  unsetenv("DSKS_IO_DELAY_US");
}

TEST(QueryExecutorTest, ConcurrentTracedQueriesNestAndBalance) {
  // One QueryTrace per task (a trace serves one query at a time); the
  // shared pool/disk counters race across workers, but the telescoping
  // identity — sum of every span's exclusive share equals the root's
  // inclusive total — holds per trace regardless, for time and I/O alike.
  Database db(TinyPreset());
  IndexOptions opts;
  opts.kind = IndexKind::kSIF;
  db.BuildIndex(opts);
  db.PrepareForQueries();

  WorkloadConfig wc;
  wc.num_queries = 16;
  wc.num_keywords = 2;
  wc.seed = 29;
  const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);

  ExecutorConfig config;
  config.num_threads = 4;
  config.metrics = nullptr;
  QueryExecutor exec(config);
  std::vector<obs::QueryTrace> traces(wl.queries.size());
  for (size_t i = 0; i < wl.queries.size(); ++i) {
    obs::QueryTrace* trace = &traces[i];
    trace->BindIoSources(&db.pool()->stats(), &db.disk()->stats());
    const WorkloadQuery* wq = &wl.queries[i];
    exec.SubmitWithContext([&db, wq, trace](QueryContext* ctx) {
      ctx->trace = trace;
      DivQuery dq;
      dq.sk = wq->sk;
      dq.k = 4;
      dq.lambda = 0.8;
      db.RunDivQuery(dq, wq->edge, /*use_com=*/true, ctx);
      ctx->trace = nullptr;
    });
  }
  exec.Drain();

  for (const obs::QueryTrace& trace : traces) {
    ASSERT_EQ(trace.open_depth(), 0u);
    ASSERT_FALSE(trace.spans().empty());
    const obs::TraceSpan& root = trace.spans().front();
    EXPECT_EQ(root.phase, obs::Phase::kQuery);
    EXPECT_EQ(root.parent, obs::TraceSpan::kNoParent);

    int64_t exclusive_ns = 0;
    obs::IoCounters exclusive_io;
    for (const obs::TraceSpan& s : trace.spans()) {
      EXPECT_GE(s.inclusive_ns, s.child_ns);
      exclusive_ns += s.exclusive_ns();
      exclusive_io += s.exclusive_io();
    }
    EXPECT_EQ(exclusive_ns, root.inclusive_ns);
    EXPECT_EQ(exclusive_io, root.inclusive_io);
  }
}

TEST(QueryExecutorTest, SampledTracingIsExactAndFeedsTheRecorder) {
  setenv("DSKS_IO_DELAY_US", "0", /*overwrite=*/1);
  Database db(TinyPreset());
  IndexOptions opts;
  opts.kind = IndexKind::kSIF;
  db.BuildIndex(opts);
  db.PrepareForQueries();

  WorkloadConfig wc;
  wc.num_queries = 16;
  wc.num_keywords = 2;
  wc.seed = 37;
  const Workload wl = GenerateWorkload(db.objects(), db.term_stats(), wc);

  obs::TraceSamplerConfig sampling;
  sampling.sample_every = 4;
  obs::FlightRecorder recorder;
  // One worker, so the countdown sampler's schedule is exact: 64 queries
  // at 1-in-4 trace exactly 16 — by construction, not by expectation.
  const ThroughputMetrics m = RunSkWorkloadConcurrent(
      &db, wl, /*num_threads=*/1, /*repeat=*/4, sampling, &recorder);
  EXPECT_EQ(m.queries, 64u);
  EXPECT_EQ(m.sampled, 16u);
  EXPECT_EQ(m.sample_rate, 4u);
  EXPECT_EQ(recorder.recorded(), 16u);

  // Every recorded summary is a traced, tagged OK query whose per-phase
  // I/O telescopes exactly to the context-charged total.
  const obs::FlightRecorder::Snapshot snap = recorder.TakeSnapshot();
  ASSERT_EQ(snap.recent.size(), 16u);
  for (const obs::QuerySummary& s : snap.recent) {
    EXPECT_STREQ(s.kind, "sk");
    EXPECT_STREQ(s.status, "OK");
    EXPECT_TRUE(s.traced);
    EXPECT_GT(s.terms, 0u);
    obs::IoCounters phase_io;
    for (size_t p = 0; p < obs::kNumPhases; ++p) {
      phase_io += s.phase_io[p];
    }
    EXPECT_EQ(phase_io, s.total_io);
  }
  unsetenv("DSKS_IO_DELAY_US");
}

TEST(QueryExecutorTest, ErrorsAndSlowQueriesAreRecordedWithoutSampling) {
  obs::TraceSamplerConfig sampling;  // sample_every = 0: tracing off
  sampling.slow_ms = 5.0;
  obs::FlightRecorder recorder;
  ExecutorConfig config;
  config.num_threads = 2;
  config.metrics = nullptr;
  config.sampling = sampling;
  config.flight_recorder = &recorder;
  QueryExecutor exec(config);

  for (int i = 0; i < 4; ++i) {
    exec.SubmitQuery(QueryTag{"fail", 1}, [](QueryContext*) {
      return Status::IOError("injected");
    });
  }
  exec.SubmitQuery(QueryTag{"slow", 2}, [](QueryContext*) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return Status::Ok();
  });
  for (int i = 0; i < 8; ++i) {
    exec.SubmitQuery(QueryTag{"fast", 3},
                     [](QueryContext*) { return Status::Ok(); });
  }
  const QueryExecutor::DrainResult res = exec.Drain();
  EXPECT_EQ(res.sampled, 0u);  // nothing traced, yet plenty recorded

  // 4 errors + 1 over-threshold query; the fast OK queries left no trace.
  EXPECT_EQ(recorder.recorded(), 5u);
  const obs::FlightRecorder::Snapshot snap = recorder.TakeSnapshot();
  size_t errors = 0;
  size_t slow = 0;
  for (const obs::QuerySummary& s : snap.recent) {
    EXPECT_FALSE(s.traced);
    if (s.error) {
      ++errors;
      EXPECT_STREQ(s.kind, "fail");
      EXPECT_STREQ(s.status, "IO_ERROR");
    } else {
      ++slow;
      EXPECT_STREQ(s.kind, "slow");
      EXPECT_GE(s.total_ms, 5.0);
    }
  }
  EXPECT_EQ(errors, 4u);
  EXPECT_EQ(slow, 1u);
  EXPECT_EQ(snap.errors.size(), 4u);
}

TEST(QueryExecutorTest, TrySubmitNeverBlocksOnSaturatedQueue) {
  // Regression for the server-facing bug: Submit blocks forever when the
  // queue is full, which on a network thread means one overload wedges
  // the whole front end. TrySubmitQuery must answer "no" immediately (or
  // within its bounded wait) instead.
  ExecutorConfig config;
  config.num_threads = 1;
  config.queue_capacity = 2;
  config.metrics = nullptr;
  QueryExecutor exec(config);

  // Stall the single worker and wait until it has actually popped the
  // stall task — only then is "fill to capacity" deterministic (a later
  // pop would free a queue slot mid-test).
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  exec.Submit([&started, &release] {
    started.store(true);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  size_t admitted = 0;
  for (size_t i = 0; i < config.queue_capacity + 1; ++i) {
    if (exec.TrySubmitQuery([](QueryContext*) { return Status::Ok(); })) {
      ++admitted;
    }
  }
  EXPECT_EQ(admitted, config.queue_capacity);

  // Queue is now full: an immediate TrySubmit is rejected without
  // blocking, and a bounded-wait TrySubmit gives up within its budget.
  EXPECT_FALSE(
      exec.TrySubmitQuery([](QueryContext*) { return Status::Ok(); }));
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(exec.TrySubmitQuery(
      [](QueryContext*) { return Status::Ok(); }, /*wait_millis=*/20.0));
  const double waited =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(waited, 15.0);   // honored the bounded wait...
  EXPECT_LT(waited, 5000.0);  // ...but never blocked indefinitely

  release.store(true);
  const QueryExecutor::DrainResult res = exec.Drain();
  // Everything admitted ran; nothing rejected leaked into the queue.
  EXPECT_EQ(res.samples.size(), 1 + admitted);

  // After the drain there is space again: a bounded-wait submit succeeds.
  EXPECT_TRUE(exec.TrySubmitQuery(
      [](QueryContext*) { return Status::Ok(); }, /*wait_millis=*/1000.0));
  exec.Drain();
}

TEST(QueryExecutorTest, ValidationRejectsAreNotServedThroughput) {
  // Regression: queries rejected at the Normalize* validation boundary
  // used to count toward qps and the latency distribution, so a chaos run
  // full of malformed input looked *faster*. They must surface only under
  // errors/rejected.
  obs::MetricsRegistry registry;
  ExecutorConfig config;
  config.num_threads = 2;
  config.metrics = &registry;
  QueryExecutor exec(config);

  constexpr size_t kOk = 12;
  constexpr size_t kRejected = 5;
  for (size_t i = 0; i < kOk; ++i) {
    exec.SubmitQuery([](QueryContext*) { return Status::Ok(); });
  }
  for (size_t i = 0; i < kRejected; ++i) {
    exec.SubmitQuery([](QueryContext*) {
      return Status::InvalidArgument("bad query");
    });
  }
  const QueryExecutor::DrainResult res = exec.Drain();
  EXPECT_EQ(res.samples.size(), kOk);
  EXPECT_EQ(res.latency.count, kOk);
  EXPECT_EQ(res.rejected, kRejected);
  EXPECT_EQ(res.errors[static_cast<size_t>(Status::Code::kInvalidArgument)],
            kRejected);
  EXPECT_EQ(registry.counter("dsks.query.rejected").value(), kRejected);
  // Served-query metrics exclude the rejects.
  EXPECT_EQ(registry.counter("executor.queries").value(), kOk);
  EXPECT_EQ(registry.histogram("executor.query_ms").count(), kOk);

  const ThroughputMetrics m =
      SummarizeThroughput(2, 100.0, res.samples, res.total_errors(),
                          res.rejected);
  EXPECT_EQ(m.queries, kOk);
  EXPECT_EQ(m.rejected, kRejected);
  EXPECT_EQ(m.errors, kRejected);
  EXPECT_DOUBLE_EQ(m.qps, 1000.0 * kOk / 100.0);
  EXPECT_DOUBLE_EQ(m.error_rate,
                   static_cast<double>(kRejected) / (kOk + kRejected));
}

TEST(QueryExecutorTest, RejectedOnlyBatchStillReportsErrorRate) {
  ExecutorConfig config;
  config.num_threads = 1;
  config.metrics = nullptr;
  QueryExecutor exec(config);
  for (int i = 0; i < 3; ++i) {
    exec.SubmitQuery([](QueryContext*) {
      return Status::InvalidArgument("bad");
    });
  }
  const QueryExecutor::DrainResult res = exec.Drain();
  const ThroughputMetrics m = SummarizeThroughput(
      1, 50.0, res.samples, res.total_errors(), res.rejected);
  EXPECT_EQ(m.queries, 0u);
  EXPECT_DOUBLE_EQ(m.qps, 0.0);
  EXPECT_EQ(m.rejected, 3u);
  EXPECT_DOUBLE_EQ(m.error_rate, 1.0);
}

}  // namespace
}  // namespace dsks
