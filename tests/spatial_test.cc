#include <cmath>

#include "common/random.h"
#include "gtest/gtest.h"
#include "spatial/mbr.h"
#include "spatial/point.h"
#include "spatial/zorder.h"

namespace dsks {
namespace {

TEST(PointTest, EuclideanDistance) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance({1, 1}, {1, 1}), 0.0);
}

TEST(MbrTest, EmptyAndExtend) {
  Mbr m = Mbr::Empty();
  EXPECT_TRUE(m.IsEmpty());
  EXPECT_DOUBLE_EQ(m.Area(), 0.0);
  m.Extend(Point{2, 3});
  EXPECT_FALSE(m.IsEmpty());
  EXPECT_DOUBLE_EQ(m.Area(), 0.0);  // degenerate point box
  m.Extend(Point{4, 7});
  EXPECT_DOUBLE_EQ(m.Area(), 2.0 * 4.0);
  EXPECT_TRUE(m.Contains(Point{3, 5}));
  EXPECT_FALSE(m.Contains(Point{1, 5}));
}

TEST(MbrTest, IntersectsIsSymmetricAndTightOnBoundary) {
  const Mbr a = Mbr::FromPoints({0, 0}, {2, 2});
  const Mbr b = Mbr::FromPoints({2, 2}, {4, 4});  // touching corner
  const Mbr c = Mbr::FromPoints({3, 0}, {5, 1});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(c.Intersects(a));
}

TEST(MbrTest, MinDistanceZeroInsidePositiveOutside) {
  const Mbr m = Mbr::FromPoints({0, 0}, {10, 10});
  EXPECT_DOUBLE_EQ(m.MinDistance(Point{5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(m.MinDistance(Point{13, 14}), 5.0);  // corner distance
  EXPECT_DOUBLE_EQ(m.MinDistance(Point{-2, 5}), 2.0);   // edge distance
}

TEST(MbrTest, EnlargementIsZeroForContainedBox) {
  const Mbr big = Mbr::FromPoints({0, 0}, {10, 10});
  const Mbr inner = Mbr::FromPoints({2, 2}, {3, 3});
  EXPECT_DOUBLE_EQ(big.Enlargement(inner), 0.0);
  EXPECT_GT(inner.Enlargement(big), 0.0);
}

TEST(ZOrderTest, CellRoundTrip) {
  for (uint32_t cx : {0u, 1u, 255u, 65535u}) {
    for (uint32_t cy : {0u, 42u, 65535u}) {
      const uint64_t code = ZOrder::EncodeCell(cx, cy);
      uint32_t rx = 0;
      uint32_t ry = 0;
      ZOrder::DecodeCell(code, &rx, &ry);
      EXPECT_EQ(rx, cx);
      EXPECT_EQ(ry, cy);
    }
  }
}

TEST(ZOrderTest, EncodeDecodeApproxWithinOneCell) {
  Random rng(17);
  const double cell =
      (ZOrder::kSpaceMax - ZOrder::kSpaceMin) / (ZOrder::kCellsPerDim - 1);
  for (int i = 0; i < 1000; ++i) {
    const Point p{rng.UniformDouble(0, 10000), rng.UniformDouble(0, 10000)};
    const Point q = ZOrder::DecodeApprox(ZOrder::Encode(p));
    EXPECT_LE(std::abs(p.x - q.x), cell + 1e-9);
    EXPECT_LE(std::abs(p.y - q.y), cell + 1e-9);
  }
}

TEST(ZOrderTest, QuantizeClampsOutOfRange) {
  EXPECT_EQ(ZOrder::Quantize(-5.0), 0u);
  EXPECT_EQ(ZOrder::Quantize(1e9), ZOrder::kCellsPerDim - 1);
}

/// Z-order locality: points in the same quadrant share the leading bits,
/// so quadrant order is preserved at the top level.
TEST(ZOrderTest, QuadrantOrdering) {
  const uint64_t sw = ZOrder::Encode({100, 100});
  const uint64_t se = ZOrder::Encode({9900, 100});
  const uint64_t nw = ZOrder::Encode({100, 9900});
  const uint64_t ne = ZOrder::Encode({9900, 9900});
  EXPECT_LT(sw, se);
  EXPECT_LT(se, nw);  // y-bit is more significant than x-bit
  EXPECT_LT(nw, ne);
}

TEST(ZOrderTest, MonotoneAlongEqualCells) {
  // Identical points encode identically; nearby points in one cell too.
  const Point p{1234.5, 6789.0};
  EXPECT_EQ(ZOrder::Encode(p), ZOrder::Encode(p));
}

}  // namespace
}  // namespace dsks
