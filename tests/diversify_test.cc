#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"
#include "core/diversify.h"
#include "core/objective.h"
#include "gtest/gtest.h"

namespace dsks {
namespace {

/// Synthetic candidates on a line: pairwise distance = |pos_u - pos_v|,
/// query distance = dist field. Cheap, exact, and triangle-inequality
/// consistent — ideal for diversification unit tests.
struct LineWorld {
  std::vector<SkResult> candidates;
  double lambda;
  double delta_max;

  double Dist(const SkResult& a, const SkResult& b) const {
    return std::abs(positions[a.id] - positions[b.id]);
  }
  ThetaFn Theta() const {
    const Objective obj(lambda, delta_max);
    return [this, obj](const SkResult& a, const SkResult& b) {
      return obj.Theta(a.dist, b.dist, Dist(a, b));
    };
  }
  std::vector<double> positions;
};

LineWorld MakeLineWorld(uint64_t seed, size_t n, double lambda = 0.7,
                        double delta_max = 1000.0) {
  LineWorld w;
  w.lambda = lambda;
  w.delta_max = delta_max;
  Random rng(seed);
  w.positions.resize(n);
  for (size_t i = 0; i < n; ++i) {
    SkResult r;
    r.id = static_cast<ObjectId>(i);
    r.dist = rng.UniformDouble(0, delta_max);
    w.positions[i] = rng.UniformDouble(0, delta_max);
    w.candidates.push_back(r);
  }
  return w;
}

TEST(ScoredPairTest, TotalOrder) {
  const ScoredPair a = ScoredPair::Make(0.9, 3, 1);
  EXPECT_EQ(a.a, 1u);
  EXPECT_EQ(a.b, 3u);
  const ScoredPair b = ScoredPair::Make(0.8, 0, 2);
  EXPECT_TRUE(a.Better(b));
  EXPECT_FALSE(b.Better(a));
  // Tie on theta: smaller ids win.
  const ScoredPair c = ScoredPair::Make(0.9, 0, 9);
  EXPECT_TRUE(c.Better(a));
  EXPECT_FALSE(a.Better(a));
}

TEST(GreedyDiversifyTest, PicksDisjointPairsInDescendingOrder) {
  LineWorld w = MakeLineWorld(7, 30);
  const auto result = GreedyDiversify(w.candidates, 10, w.Theta());
  ASSERT_EQ(result.pairs.size(), 5u);
  ASSERT_EQ(result.selected.size(), 10u);

  // Pairs are disjoint and ordered by the total order.
  std::vector<ObjectId> members;
  for (size_t i = 0; i < result.pairs.size(); ++i) {
    members.push_back(result.pairs[i].a);
    members.push_back(result.pairs[i].b);
    if (i > 0) {
      EXPECT_TRUE(result.pairs[i - 1].Better(result.pairs[i]));
    }
  }
  std::sort(members.begin(), members.end());
  EXPECT_EQ(std::unique(members.begin(), members.end()), members.end());

  // The first pair is the global maximum.
  const ThetaFn theta = w.Theta();
  for (size_t i = 0; i < w.candidates.size(); ++i) {
    for (size_t j = i + 1; j < w.candidates.size(); ++j) {
      const ScoredPair sp = ScoredPair::Make(
          theta(w.candidates[i], w.candidates[j]), w.candidates[i].id,
          w.candidates[j].id);
      EXPECT_FALSE(sp.Better(result.pairs[0]));
    }
  }
}

TEST(GreedyDiversifyTest, FewerCandidatesThanK) {
  LineWorld w = MakeLineWorld(8, 4);
  const auto result = GreedyDiversify(w.candidates, 10, w.Theta());
  EXPECT_EQ(result.selected.size(), 4u);
  EXPECT_EQ(result.pairs.size(), 2u);
}

TEST(GreedyDiversifyTest, OddKAddsClosestRemaining) {
  LineWorld w = MakeLineWorld(9, 20);
  const auto result = GreedyDiversify(w.candidates, 5, w.Theta());
  ASSERT_EQ(result.pairs.size(), 2u);
  ASSERT_EQ(result.selected.size(), 5u);
  // The extra (5th) object is the closest unpaired candidate.
  std::vector<ObjectId> paired;
  for (const auto& p : result.pairs) {
    paired.push_back(p.a);
    paired.push_back(p.b);
  }
  const SkResult& extra = result.selected.back();
  EXPECT_EQ(std::count(paired.begin(), paired.end(), extra.id), 0);
  for (const auto& c : w.candidates) {
    if (std::count(paired.begin(), paired.end(), c.id) == 0) {
      EXPECT_LE(extra.dist, c.dist + 1e-12);
    }
  }
}

TEST(GreedyDiversifyTest, KOneReturnsClosest) {
  LineWorld w = MakeLineWorld(10, 15);
  const auto result = GreedyDiversify(w.candidates, 1, w.Theta());
  ASSERT_EQ(result.selected.size(), 1u);
  for (const auto& c : w.candidates) {
    EXPECT_LE(result.selected[0].dist, c.dist + 1e-12);
  }
}

class GreedyApproxTest : public ::testing::TestWithParam<uint64_t> {};

/// The 2-approximation guarantee of [12]: f(greedy) >= f(OPT) / 2.
TEST_P(GreedyApproxTest, WithinFactorTwoOfBruteForce) {
  LineWorld w = MakeLineWorld(GetParam(), 12, 0.5, 1000.0);
  const size_t k = 4;
  const ThetaFn theta = w.Theta();
  const auto dist_fn = [&w](const SkResult& a, const SkResult& b) {
    return w.Dist(a, b);
  };
  const Objective obj(w.lambda, w.delta_max);

  auto evaluate = [&](const std::vector<SkResult>& sel) {
    std::vector<double> dq;
    std::vector<double> pw(sel.size() * sel.size(), 0.0);
    for (size_t u = 0; u < sel.size(); ++u) {
      dq.push_back(sel[u].dist);
      for (size_t v = 0; v < sel.size(); ++v) {
        if (u != v) pw[u * sel.size() + v] = w.Dist(sel[u], sel[v]);
      }
    }
    return obj.ObjectiveValue(dq, pw);
  };

  const auto greedy = GreedyDiversify(w.candidates, k, theta);
  ASSERT_EQ(greedy.selected.size(), k);
  const auto optimal =
      BruteForceOptimal(w.candidates, k, w.lambda, w.delta_max, theta,
                        dist_fn);
  const double fg = evaluate(greedy.selected);
  const double fo = evaluate(optimal);
  EXPECT_LE(fg, fo + 1e-9);
  EXPECT_GE(fg, fo / 2.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyApproxTest,
                         ::testing::Values(41, 42, 43, 44, 45, 46, 47, 48));

}  // namespace
}  // namespace dsks
