// Status: the error vocabulary every fallible layer speaks. The code
// names double as metric labels ("dsks.query.errors.<CODE>"), so their
// exact spelling is a contract, not a cosmetic detail.
#include <set>
#include <string>
#include <utility>

#include "common/status.h"
#include "gtest/gtest.h"

namespace dsks {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_EQ(Status::IOError("disk on fire").message(), "disk on fire");
  EXPECT_FALSE(Status::IOError("x").ok());
  // The predicates are mutually exclusive.
  EXPECT_FALSE(Status::IOError("x").IsResourceExhausted());
  EXPECT_FALSE(Status::ResourceExhausted("x").IsIOError());
}

TEST(StatusTest, CodeNamesAreStableAndDistinct) {
  EXPECT_STREQ(Status::CodeName(Status::Code::kOk), "OK");
  EXPECT_STREQ(Status::CodeName(Status::Code::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(Status::CodeName(Status::Code::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(Status::CodeName(Status::Code::kCorruption), "CORRUPTION");
  EXPECT_STREQ(Status::CodeName(Status::Code::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(Status::CodeName(Status::Code::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_STREQ(Status::CodeName(Status::Code::kIOError), "IO_ERROR");
  // kNumCodes really covers the enum: every code has a unique name, so a
  // per-code counter array indexed by static_cast<size_t>(code) is safe.
  std::set<std::string> names;
  for (size_t c = 0; c < Status::kNumCodes; ++c) {
    names.insert(Status::CodeName(static_cast<Status::Code>(c)));
  }
  EXPECT_EQ(names.size(), Status::kNumCodes);
}

TEST(StatusTest, CodeNameMatchesInstanceHelper) {
  EXPECT_STREQ(Status::Ok().code_name(), "OK");
  EXPECT_STREQ(Status::Corruption("x").code_name(), "CORRUPTION");
}

TEST(StatusTest, ToStringCombinesCodeAndMessage) {
  EXPECT_EQ(Status::IOError("fault injected").ToString(),
            "IO_ERROR: fault injected");
  EXPECT_EQ(Status::Ok().ToString(), "OK");
}

TEST(StatusTest, CopyAndMovePreserveCodeAndMessage) {
  // OK is a null rep internally; copies of an error must deep-clone so
  // the original stays valid (e.g. a sticky iterator status read after
  // the caller copied it into a query record).
  const Status err = Status::Corruption("page 7");
  Status copy = err;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_TRUE(copy.IsCorruption());
  EXPECT_EQ(copy.message(), "page 7");
  EXPECT_TRUE(err.IsCorruption());
  EXPECT_EQ(err.message(), "page 7");

  Status moved = std::move(copy);
  EXPECT_TRUE(moved.IsCorruption());
  EXPECT_EQ(moved.message(), "page 7");

  Status target;
  target = moved;  // copy-assign error over OK
  EXPECT_TRUE(target.IsCorruption());
  target = Status::Ok();  // assign OK over error
  EXPECT_TRUE(target.ok());

  // Self-assignment must not clear the rep.
  Status self = Status::IOError("keep me");
  Status& alias = self;
  self = alias;
  EXPECT_TRUE(self.IsIOError());
  EXPECT_EQ(self.message(), "keep me");
}

Status FailsAtStep(int failing_step, int* reached) {
  for (int step = 0; step < 3; ++step) {
    *reached = step;
    DSKS_RETURN_IF_ERROR(step == failing_step
                             ? Status::IOError("injected")
                             : Status::Ok());
  }
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagatesAndStops) {
  int reached = -1;
  EXPECT_TRUE(FailsAtStep(-1, &reached).ok());
  EXPECT_EQ(reached, 2);
  const Status s = FailsAtStep(1, &reached);
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.message(), "injected");
  EXPECT_EQ(reached, 1);
}

}  // namespace
}  // namespace dsks
