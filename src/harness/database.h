#ifndef DSKS_HARNESS_DATABASE_H_
#define DSKS_HARNESS_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/div_search.h"
#include "core/query.h"
#include "core/ranked_search.h"
#include "core/sk_search.h"
#include "datagen/presets.h"
#include "graph/ccam.h"
#include "graph/object_set.h"
#include "graph/road_network.h"
#include "index/object_index.h"
#include "index/query_log.h"
#include "index/sif_partitioned.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "text/term_stats.h"

namespace dsks {

/// Which object index a Database mounts.
enum class IndexKind { kIR, kIF, kSIF, kSIFP, kSIFG };

std::string IndexKindName(IndexKind kind);

/// Options for BuildIndex.
struct IndexOptions {
  IndexKind kind = IndexKind::kSIF;
  /// SIF-P settings; `sifp.log_provider` defaults to the kFrequency mode
  /// of §3.3 Remark 1 when unset.
  SifPConfig sifp;
  /// x for SIF-G (top-x frequent terms get pair lists).
  size_t sifg_frequent_terms = 25;
  /// Keywords below this posting count get no signature (one page by
  /// default, per §3.1).
  size_t signature_min_postings = 0;  // 0 = one page worth of postings
};

/// A fully assembled "database instance": a generated dataset, its CCAM
/// file, an object index and the shared buffer pool. Every bench and
/// example talks to the system through this facade.
class Database {
 public:
  /// Generates the dataset and writes the CCAM file. The buffer pool
  /// starts large (for index construction); PrepareForQueries() shrinks it
  /// to the paper's 2% before measurements. `storage` selects the disk
  /// backend: the in-memory simulation (default) or a real index file
  /// (DiskBackendKind::kFile with a path).
  explicit Database(const DatasetConfig& config,
                    const DiskOptions& storage = DiskOptions{});

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  struct IndexBuildInfo {
    double build_millis = 0.0;
    uint64_t size_bytes = 0;
  };

  /// Builds (or replaces) the object index. May be called multiple times;
  /// a rebuild truncates the disk back to the post-CCAM watermark first,
  /// so superseded index pages are reclaimed instead of leaking (on the
  /// file backend this is the difference between a stable and an
  /// ever-growing index file). The "db.disk.leaked_pages" gauge reports
  /// any pages that still escape this accounting.
  IndexBuildInfo BuildIndex(const IndexOptions& options);

  /// Makes the current on-disk image durable: writes back every dirty
  /// buffer-pool frame, then flushes the disk backend (checksum sidecar +
  /// fsync on the file backend). Required before reopening an index file
  /// with DiskManager::OpenExisting.
  Status FlushStorage();

  /// Flushes everything and shrinks the buffer pool to
  /// max(min_frames, fraction · disk pages), then clears all statistics.
  void PrepareForQueries(double fraction = 0.02, size_t min_frames = 64);

  /// Resets the I/O and index counters (per-query measurement).
  void ResetCounters();

  /// Toggles speculative page prefetching (leaf readahead, posting-run
  /// batching hints and CCAM frontier prefetch all route through the
  /// pool's Prefetch). On by default; query results are bit-identical
  /// either way — only the I/O schedule changes.
  void SetPrefetchEnabled(bool enabled) {
    pool_->set_prefetch_enabled(enabled);
  }
  bool prefetch_enabled() const { return pool_->prefetch_enabled(); }

  /// Physical reads since the last ResetCounters (the paper's "# of I/O").
  uint64_t IoCount() const;

  /// Exposes the pool and disk counters as live sources under
  /// "<prefix>.pool.*" and "<prefix>.disk.*". The Database must outlive
  /// the binding; UnbindMetrics (or destroying the registry) releases it.
  void BindMetrics(obs::MetricsRegistry* registry,
                   const std::string& prefix = "db") const;
  void UnbindMetrics(obs::MetricsRegistry* registry,
                     const std::string& prefix = "db") const;

  /// Runs Algorithm 3 to exhaustion; `*out` receives the result objects.
  /// This is the API boundary: the query is validated and canonicalized
  /// (NormalizeSkQuery plus edge-range checks against this network) and a
  /// malformed one returns InvalidArgument instead of aborting. Storage
  /// errors surface as the returned Status with the work done so far
  /// accounted in the context's QueryTrace. Pass a long-lived per-thread
  /// QueryContext to amortize scratch allocations across queries (nullptr:
  /// the search allocates a private one).
  Status RunSkQuery(const SkQuery& query, const QueryEdgeInfo& edge,
                    std::vector<SkResult>* out, QueryContext* ctx = nullptr);

  /// Value-returning convenience for trusted callers (tests, benches):
  /// CHECK-fails on invalid input or a faulty disk.
  std::vector<SkResult> RunSkQuery(const SkQuery& query,
                                   const QueryEdgeInfo& edge,
                                   QueryContext* ctx = nullptr);

  /// Runs a diversified query with SEQ or COM. `strategy` selects the
  /// pairwise-distance scheme (shared expansion by default). Validation
  /// and error reporting as in RunSkQuery; `out->status` mirrors the
  /// returned Status.
  Status RunDivQuery(const DivQuery& query, const QueryEdgeInfo& edge,
                     bool use_com, DivSearchOutput* out,
                     QueryContext* ctx = nullptr,
                     OracleStrategy strategy = OracleStrategy::kSharedExpansion);

  /// Value-returning convenience for trusted callers; CHECK-fails on
  /// invalid input or a faulty disk.
  DivSearchOutput RunDivQuery(
      const DivQuery& query, const QueryEdgeInfo& edge, bool use_com,
      QueryContext* ctx = nullptr,
      OracleStrategy strategy = OracleStrategy::kSharedExpansion);

  /// Boolean k-nearest-neighbour SK query (all keywords, k closest).
  Status RunKnnQuery(const SkQuery& query, const QueryEdgeInfo& edge,
                     size_t k, std::vector<SkResult>* out);
  std::vector<SkResult> RunKnnQuery(const SkQuery& query,
                                    const QueryEdgeInfo& edge, size_t k);

  /// Ranked top-k SK query (OR semantics, distance/text score blend).
  Status RunRankedQuery(const RankedQuery& query, const QueryEdgeInfo& edge,
                        std::vector<RankedResult>* out);
  std::vector<RankedResult> RunRankedQuery(const RankedQuery& query,
                                           const QueryEdgeInfo& edge);

  const RoadNetwork& network() const { return *network_; }
  const ObjectSet& objects() const { return *objects_; }
  const TermStats& term_stats() const { return *term_stats_; }
  const DatasetConfig& config() const { return config_; }
  ObjectIndex* index() { return index_.get(); }
  BufferPool* pool() { return pool_.get(); }
  DiskManager* disk() { return &disk_; }
  const CcamGraph& ccam_graph() const { return *ccam_graph_; }
  uint64_t ccam_size_bytes() const { return ccam_file_.size_bytes(); }

 private:
  /// Boundary checks a normalized query cannot do on its own: edge ids
  /// must exist in this network and the query edge must be coherent.
  Status CheckQueryEdge(const SkQuery& query,
                        const QueryEdgeInfo& edge) const;

  DatasetConfig config_;
  std::unique_ptr<RoadNetwork> network_;
  std::unique_ptr<ObjectSet> objects_;
  std::unique_ptr<TermStats> term_stats_;
  DiskManager disk_;
  std::unique_ptr<BufferPool> pool_;
  CcamFile ccam_file_;
  std::unique_ptr<CcamGraph> ccam_graph_;
  std::unique_ptr<ObjectIndex> index_;
  /// Disk watermark right after the CCAM build: rebuilds truncate back to
  /// here, and pages beyond `index_base_pages_ + index_pages_` are leaks.
  size_t index_base_pages_ = 0;
  /// Pages allocated by the most recent BuildIndex.
  size_t index_pages_ = 0;
};

}  // namespace dsks

#endif  // DSKS_HARNESS_DATABASE_H_
