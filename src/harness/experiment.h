#ifndef DSKS_HARNESS_EXPERIMENT_H_
#define DSKS_HARNESS_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/workload.h"
#include "harness/database.h"

namespace dsks {

/// Applies the simulated per-read disk latency for the duration of a
/// measured workload (not during index builds). Default 50us; override
/// with DSKS_IO_DELAY_US (0 disables — pure CPU timing).
///
/// `yielding` selects DiskManager's sleep mode: the waiting thread blocks
/// and frees its core like a real disk read would, so concurrent queries
/// overlap their I/O. The sequential harness keeps the default busy-wait
/// (scheduler-independent timings).
class ScopedIoDelay {
 public:
  explicit ScopedIoDelay(Database* db, bool yielding = false);
  ~ScopedIoDelay();

  ScopedIoDelay(const ScopedIoDelay&) = delete;
  ScopedIoDelay& operator=(const ScopedIoDelay&) = delete;

 private:
  Database* db_;
};

/// Workload-averaged SK search metrics — the quantities the paper's §5.1
/// figures plot (response time, # I/O accesses, # candidate objects,
/// false-hit volume).
struct SkWorkloadMetrics {
  double avg_millis = 0.0;
  /// 95th-percentile per-query response time (tail behaviour).
  double p95_millis = 0.0;
  double avg_io = 0.0;
  double avg_candidates = 0.0;
  double avg_false_hits = 0.0;
  double avg_false_hit_objects = 0.0;
  double avg_edges_skipped = 0.0;
  double avg_objects_loaded = 0.0;
};

/// Runs every query of the workload through Algorithm 3 (after a warm-up
/// pass is NOT performed — the paper measures with a small LRU buffer and
/// so do we) and averages the counters.
SkWorkloadMetrics RunSkWorkload(Database* db, const Workload& workload);

/// Workload-averaged diversified search metrics (§5.2).
struct DivWorkloadMetrics {
  double avg_millis = 0.0;
  /// 95th-percentile per-query response time (tail behaviour).
  double p95_millis = 0.0;
  double avg_io = 0.0;
  double avg_candidates = 0.0;
  double avg_objective = 0.0;
  double avg_pruned = 0.0;
  double early_termination_rate = 0.0;
  /// Per-object distance fields (bounded Dijkstras) run by the oracle.
  double avg_distance_fields = 0.0;
};

DivWorkloadMetrics RunDivWorkload(Database* db, const Workload& workload,
                                  size_t k, double lambda, bool use_com);

/// Minimal fixed-width table printer for the bench binaries, so every
/// figure's output reads like the paper's series.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print() const;

  static std::string Fmt(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dsks

#endif  // DSKS_HARNESS_EXPERIMENT_H_
