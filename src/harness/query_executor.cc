#include "harness/query_executor.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/macros.h"
#include "common/timer.h"
#include "harness/experiment.h"

namespace dsks {

QueryExecutor::QueryExecutor(const ExecutorConfig& config)
    : queue_capacity_(config.queue_capacity),
      max_retries_(config.max_retries),
      retry_backoff_millis_(config.retry_backoff_millis),
      metrics_(config.metrics),
      sampling_(config.sampling),
      flight_recorder_(config.flight_recorder) {
  DSKS_CHECK_MSG(config.num_threads > 0, "executor needs at least one thread");
  DSKS_CHECK_MSG(config.queue_capacity > 0, "queue capacity must be positive");
  if (metrics_ != nullptr) {
    in_flight_ = &metrics_->gauge("dsks.query.in_flight");
  }
  samples_.resize(config.num_threads);
  errors_.assign(config.num_threads, {});
  rejected_.assign(config.num_threads, 0);
  retries_.assign(config.num_threads, 0);
  sampled_.assign(config.num_threads, 0);
  hists_.reserve(config.num_threads);
  contexts_.reserve(config.num_threads);
  for (size_t i = 0; i < config.num_threads; ++i) {
    hists_.push_back(std::make_unique<obs::Histogram>());
    contexts_.push_back(std::make_unique<QueryContext>());
  }
  workers_.reserve(config.num_threads);
  for (size_t i = 0; i < config.num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

QueryExecutor::~QueryExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  queue_not_empty_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void QueryExecutor::Submit(std::function<void()> task) {
  SubmitQuery([task = std::move(task)](QueryContext* /*ctx*/) {
    task();
    return Status::Ok();
  });
}

void QueryExecutor::SubmitWithContext(
    std::function<void(QueryContext*)> task) {
  SubmitQuery([task = std::move(task)](QueryContext* ctx) {
    task(ctx);
    return Status::Ok();
  });
}

void QueryExecutor::SubmitQuery(std::function<Status(QueryContext*)> task) {
  SubmitQuery(QueryTag{}, std::move(task));
}

void QueryExecutor::SubmitQuery(const QueryTag& tag,
                                std::function<Status(QueryContext*)> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_not_full_.wait(lock,
                         [this] { return queue_.size() < queue_capacity_; });
    queue_.push_back(Task{tag, std::move(task)});
  }
  queue_not_empty_.notify_one();
}

bool QueryExecutor::TrySubmitQuery(const QueryTag& tag,
                                   std::function<Status(QueryContext*)> task,
                                   double wait_millis) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.size() >= queue_capacity_) {
      if (wait_millis <= 0.0) {
        return false;  // immediate rejection — the producer never blocks
      }
      // Bounded submit deadline: wait up to wait_millis for space, then
      // give up. wait_for re-checks the predicate on spurious wakeups.
      if (!queue_not_full_.wait_for(
              lock, std::chrono::duration<double, std::milli>(wait_millis),
              [this] { return queue_.size() < queue_capacity_; })) {
        return false;
      }
    }
    queue_.push_back(Task{tag, std::move(task)});
  }
  queue_not_empty_.notify_one();
  return true;
}

bool QueryExecutor::TrySubmitQuery(std::function<Status(QueryContext*)> task,
                                   double wait_millis) {
  return TrySubmitQuery(QueryTag{}, std::move(task), wait_millis);
}

QueryExecutor::DrainResult QueryExecutor::Drain() {
  DrainResult result;
  {
    std::unique_lock<std::mutex> lock(mu_);
    all_idle_.wait(lock,
                   [this] { return queue_.empty() && active_tasks_ == 0; });
    // Workers are either blocked on queue_not_empty_ or about to block; the
    // mutex hand-off orders their sample writes before these reads.
    for (std::vector<double>& s : samples_) {
      result.samples.insert(result.samples.end(), s.begin(), s.end());
      s.clear();
    }
    for (const std::unique_ptr<obs::Histogram>& h : hists_) {
      result.latency.MergeFrom(h->Snapshot());
      h->Reset();
    }
    for (auto& e : errors_) {
      for (size_t c = 0; c < Status::kNumCodes; ++c) {
        result.errors[c] += e[c];
        e[c] = 0;
      }
    }
    for (uint64_t& r : rejected_) {
      result.rejected += r;
      r = 0;
    }
    for (uint64_t& r : retries_) {
      result.retries += r;
      r = 0;
    }
    for (uint64_t& s : sampled_) {
      result.sampled += s;
      s = 0;
    }
  }
  if (metrics_ != nullptr && result.latency.count > 0) {
    metrics_->histogram("executor.query_ms").MergeFrom(result.latency);
    metrics_->counter("executor.queries").Add(result.latency.count);
  }
  if (metrics_ != nullptr && result.sampled > 0) {
    metrics_->counter("dsks.query.sampled").Add(result.sampled);
  }
  if (metrics_ != nullptr) {
    for (size_t c = 0; c < Status::kNumCodes; ++c) {
      if (result.errors[c] > 0) {
        metrics_
            ->counter(std::string("dsks.query.errors.") +
                      Status::CodeName(static_cast<Status::Code>(c)))
            .Add(result.errors[c]);
      }
    }
    if (result.retries > 0) {
      metrics_->counter("dsks.query.retries").Add(result.retries);
    }
    if (result.rejected > 0) {
      metrics_->counter("dsks.query.rejected").Add(result.rejected);
    }
  }
  return result;
}

void QueryExecutor::WorkerLoop(size_t worker_id) {
  QueryContext* ctx = contexts_[worker_id].get();
  // Reusable per-worker trace sink (capacity survives Clear) bound to this
  // worker's context counters, plus this worker's slice of the sampling
  // stream. Both are worker-private: no locks on the trace path.
  obs::QueryTrace trace;
  trace.BindContextIo(&ctx->io);
  obs::TraceSampler sampler(sampling_, worker_id);
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_not_empty_.wait(lock,
                            [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and no work left
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_tasks_;
    }
    queue_not_full_.notify_one();
    const bool traced = sampler.ShouldTrace();
    if (traced) {
      trace.Clear();
      ctx->trace = &trace;
    }
    if (in_flight_ != nullptr) {
      in_flight_->Add(1.0);
    }
    // Snapshot the context's attribution counters so the delta across the
    // task is this query's exact I/O — with or without a trace.
    const obs::IoCounters io_before = ctx->io;
    // The sample covers retries too — that time was spent on the query.
    Timer timer;
    Status status = task.fn(ctx);
    uint64_t task_retries = 0;
    while (status.IsIOError() && task_retries < max_retries_) {
      ++task_retries;
      if (retry_backoff_millis_ > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            retry_backoff_millis_ * static_cast<double>(task_retries)));
      }
      status = task.fn(ctx);
    }
    const double millis = timer.ElapsedMillis();
    if (in_flight_ != nullptr) {
      in_flight_->Sub(1.0);
    }
    if (traced) {
      ctx->trace = nullptr;
    }
    if (flight_recorder_ != nullptr &&
        sampler.ShouldRecord(traced, status.ok(), millis)) {
      obs::QuerySummary summary;
      summary.kind = task.tag.kind;
      summary.terms = task.tag.terms;
      summary.status = status.ok() ? "OK" : status.code_name();
      summary.error = !status.ok();
      summary.traced = traced;
      summary.total_ms = millis;
      summary.total_io = ctx->io - io_before;
      if (traced && trace.open_depth() == 0) {
        const auto totals = trace.AggregateByPhase();
        for (size_t p = 0; p < obs::kNumPhases; ++p) {
          summary.phase_exclusive_ns[p] = totals[p].exclusive_ns;
          summary.phase_io[p] = totals[p].io;
        }
      }
      flight_recorder_->Record(summary);
    }
    // A query rejected at the validation boundary never ran a search: it
    // counts as an error (and under `rejected`), but not as served
    // throughput — no latency sample, no histogram entry, no qps.
    const bool validation_reject = status.IsInvalidArgument();
    if (!validation_reject) {
      hists_[worker_id]->Record(millis);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!validation_reject) {
        samples_[worker_id].push_back(millis);
      } else {
        ++rejected_[worker_id];
      }
      if (!status.ok()) {
        ++errors_[worker_id][static_cast<size_t>(status.code())];
      }
      retries_[worker_id] += task_retries;
      sampled_[worker_id] += traced ? 1 : 0;
      --active_tasks_;
      if (queue_.empty() && active_tasks_ == 0) {
        all_idle_.notify_all();
      }
    }
  }
}

ThroughputMetrics SummarizeThroughput(size_t num_threads, double wall_millis,
                                      std::vector<double> samples,
                                      uint64_t errors, uint64_t rejected) {
  ThroughputMetrics m;
  m.num_threads = num_threads;
  m.queries = samples.size();
  m.wall_millis = wall_millis;
  m.errors = errors;
  m.rejected = rejected;
  if (samples.size() + rejected > 0) {
    m.error_rate = static_cast<double>(errors) /
                   static_cast<double>(samples.size() + rejected);
  }
  if (samples.empty()) {
    return m;
  }
  m.qps = wall_millis > 0.0
              ? static_cast<double>(samples.size()) / (wall_millis / 1000.0)
              : 0.0;
  double sum = 0.0;
  for (double s : samples) {
    sum += s;
  }
  m.avg_millis = sum / static_cast<double>(samples.size());
  std::sort(samples.begin(), samples.end());
  // Shared nearest-rank definition, matching the sequential harness's p95.
  m.p50_millis = obs::NearestRankPercentile(samples, 50);
  m.p95_millis = obs::NearestRankPercentile(samples, 95);
  m.p99_millis = obs::NearestRankPercentile(samples, 99);
  return m;
}

namespace {

ThroughputMetrics RunConcurrent(
    Database* db, const Workload& workload, size_t num_threads, size_t repeat,
    const obs::TraceSamplerConfig& sampling, obs::FlightRecorder* recorder,
    const char* kind,
    const std::function<Status(const WorkloadQuery&, QueryContext*)>&
        run_one) {
  DSKS_CHECK_MSG(!workload.queries.empty(), "empty workload");
  DSKS_CHECK_MSG(repeat > 0, "repeat must be positive");
  // Yielding delay: a blocked "disk read" frees its core, so concurrent
  // queries overlap I/O the way they would on a real disk.
  ScopedIoDelay delay(db, /*yielding=*/true);
  ExecutorConfig config;
  config.num_threads = num_threads;
  config.sampling = sampling;
  config.flight_recorder = recorder;
  QueryExecutor exec(config);
  Timer wall;
  for (size_t r = 0; r < repeat; ++r) {
    for (const WorkloadQuery& wq : workload.queries) {
      QueryTag tag;
      tag.kind = kind;
      tag.terms = static_cast<uint32_t>(wq.sk.terms.size());
      exec.SubmitQuery(tag, [&run_one, &wq](QueryContext* ctx) {
        return run_one(wq, ctx);
      });
    }
  }
  QueryExecutor::DrainResult drained = exec.Drain();
  ThroughputMetrics m =
      SummarizeThroughput(num_threads, wall.ElapsedMillis(),
                          std::move(drained.samples), drained.total_errors(),
                          drained.rejected);
  m.errors_by_code = drained.errors;
  m.retries = drained.retries;
  m.sampled = drained.sampled;
  m.sample_rate = sampling.sample_every;
  m.histogram = drained.latency;
  return m;
}

}  // namespace

ThroughputMetrics RunSkWorkloadConcurrent(
    Database* db, const Workload& workload, size_t num_threads, size_t repeat,
    const obs::TraceSamplerConfig& sampling, obs::FlightRecorder* recorder) {
  return RunConcurrent(db, workload, num_threads, repeat, sampling, recorder,
                       "sk",
                       [db](const WorkloadQuery& wq, QueryContext* ctx) {
                         std::vector<SkResult> results;
                         return db->RunSkQuery(wq.sk, wq.edge, &results, ctx);
                       });
}

ThroughputMetrics RunDivWorkloadConcurrent(
    Database* db, const Workload& workload, size_t k, double lambda,
    bool use_com, size_t num_threads, size_t repeat,
    const obs::TraceSamplerConfig& sampling, obs::FlightRecorder* recorder) {
  return RunConcurrent(
      db, workload, num_threads, repeat, sampling, recorder,
      use_com ? "div-com" : "div-seq",
      [db, k, lambda, use_com](const WorkloadQuery& wq, QueryContext* ctx) {
        DivQuery dq;
        dq.sk = wq.sk;
        dq.k = k;
        dq.lambda = lambda;
        DivSearchOutput out;
        return db->RunDivQuery(dq, wq.edge, use_com, &out, ctx);
      });
}

}  // namespace dsks
