#ifndef DSKS_HARNESS_QUERY_EXECUTOR_H_
#define DSKS_HARNESS_QUERY_EXECUTOR_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/query_context.h"
#include "datagen/workload.h"
#include "harness/database.h"
#include "obs/metrics.h"

namespace dsks {

/// Thread-pool settings for QueryExecutor.
struct ExecutorConfig {
  /// Worker threads running queries. 1 degenerates to (almost) the
  /// sequential harness, with one extra thread doing the work.
  size_t num_threads = 1;
  /// Bound on queued-but-unstarted tasks; Submit blocks when the queue is
  /// full so a fast producer cannot outrun the workers unboundedly.
  size_t queue_capacity = 1024;
  /// Registry each Drain publishes into ("executor.query_ms" histogram,
  /// "executor.queries" counter). Null disables publication.
  obs::MetricsRegistry* metrics = &obs::GlobalMetrics();
};

/// Aggregate results of a concurrent batch: throughput plus the latency
/// distribution merged from every worker's per-thread samples.
struct ThroughputMetrics {
  size_t num_threads = 0;
  size_t queries = 0;
  /// Wall-clock time of the whole batch (submit of the first query to
  /// drain), which is what queries/sec is computed from.
  double wall_millis = 0.0;
  double qps = 0.0;
  double avg_millis = 0.0;
  double p50_millis = 0.0;
  double p95_millis = 0.0;
  double p99_millis = 0.0;
  /// Merge of the per-worker latency histograms for the batch; lets benches
  /// report the full distribution without keeping every raw sample.
  obs::HistogramSnapshot histogram;
};

/// Fixed-size thread pool with a bounded work queue, built for running
/// many independent read-only queries against one shared Database (whose
/// storage layer is concurrent-reader-safe — see DESIGN.md "Threading
/// model"). Each worker times every task it runs and keeps its latency
/// samples in a private vector; Drain() waits for the queue to empty and
/// merges the per-thread samples under the pool mutex, so no sample is
/// ever written and read concurrently.
///
/// Every worker owns a QueryContext, handed to tasks submitted with
/// SubmitWithContext — steady-state queries then reuse the worker's scratch
/// instead of allocating per query.
class QueryExecutor {
 public:
  explicit QueryExecutor(const ExecutorConfig& config);

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  /// Drains outstanding work, then joins the workers.
  ~QueryExecutor();

  /// Enqueues one task; blocks while the queue is at capacity. Tasks must
  /// not touch single-writer state of the shared database (index builds,
  /// SetCapacity, Clear, counter resets).
  void Submit(std::function<void()> task);

  /// Like Submit, but the task receives the executing worker's private
  /// QueryContext.
  void SubmitWithContext(std::function<void(QueryContext*)> task);

  /// What one Drain hands back: every per-thread latency sample plus the
  /// merge of the per-worker histograms over the same tasks (so
  /// latency.count == samples.size() always).
  struct DrainResult {
    std::vector<double> samples;  // milliseconds, unordered
    obs::HistogramSnapshot latency;
  };

  /// Blocks until every submitted task has finished, then returns the
  /// consumed samples/histogram and publishes the batch into the
  /// configured metrics registry. The executor stays usable for further
  /// Submit calls.
  DrainResult Drain();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop(size_t worker_id);

  const size_t queue_capacity_;

  std::mutex mu_;
  std::condition_variable queue_not_full_;
  std::condition_variable queue_not_empty_;
  std::condition_variable all_idle_;
  std::deque<std::function<void(QueryContext*)>> queue_;
  size_t active_tasks_ = 0;
  bool stopping_ = false;

  /// samples_[i] is written by worker i between queue pops (i.e. while it
  /// owns an active task) and read by Drain only when no task is active.
  std::vector<std::vector<double>> samples_;
  /// hists_[i] records the same latencies as samples_[i]; Histogram is
  /// internally lock-free, and the active_tasks_ hand-off orders worker
  /// records before Drain's snapshot.
  std::vector<std::unique_ptr<obs::Histogram>> hists_;
  /// contexts_[i] is touched only by worker i.
  std::vector<std::unique_ptr<QueryContext>> contexts_;
  std::vector<std::thread> workers_;
  obs::MetricsRegistry* metrics_;
};

/// Computes the latency distribution of `samples` plus queries/sec from
/// the batch wall time.
ThroughputMetrics SummarizeThroughput(size_t num_threads, double wall_millis,
                                      std::vector<double> samples);

/// Runs `repeat` passes over the workload's SK queries on `num_threads`
/// workers sharing `db` and reports aggregate throughput. Applies the same
/// ScopedIoDelay as the sequential harness so numbers are comparable.
ThroughputMetrics RunSkWorkloadConcurrent(Database* db,
                                          const Workload& workload,
                                          size_t num_threads,
                                          size_t repeat = 1);

/// Concurrent counterpart of RunDivWorkload.
ThroughputMetrics RunDivWorkloadConcurrent(Database* db,
                                           const Workload& workload, size_t k,
                                           double lambda, bool use_com,
                                           size_t num_threads,
                                           size_t repeat = 1);

}  // namespace dsks

#endif  // DSKS_HARNESS_QUERY_EXECUTOR_H_
