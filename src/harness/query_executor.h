#ifndef DSKS_HARNESS_QUERY_EXECUTOR_H_
#define DSKS_HARNESS_QUERY_EXECUTOR_H_

#include <array>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/query_context.h"
#include "datagen/workload.h"
#include "harness/database.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace.h"

namespace dsks {

/// Thread-pool settings for QueryExecutor.
struct ExecutorConfig {
  /// Worker threads running queries. 1 degenerates to (almost) the
  /// sequential harness, with one extra thread doing the work.
  size_t num_threads = 1;
  /// Bound on queued-but-unstarted tasks; Submit blocks when the queue is
  /// full so a fast producer cannot outrun the workers unboundedly.
  size_t queue_capacity = 1024;
  /// Registry each Drain publishes into ("executor.query_ms" histogram,
  /// "executor.queries" counter, "dsks.query.errors.<CODE>" counters).
  /// Null disables publication.
  obs::MetricsRegistry* metrics = &obs::GlobalMetrics();
  /// Bounded retry for *transient* faults: a query submitted with
  /// SubmitQuery that fails with IO_ERROR is re-run up to this many times
  /// before counting as failed. Corruption and invalid-argument failures
  /// never retry — re-reading a bad checksum or a bad query cannot help.
  size_t max_retries = 0;
  /// Backoff before retry r (1-based) is r * this many milliseconds.
  double retry_backoff_millis = 0.1;
  /// Always-on sampled tracing: each worker traces a deterministic
  /// 1-in-N subset of the queries it runs (sampling.sample_every; worker
  /// id is the sampler stream) into a reusable per-worker QueryTrace.
  /// Defaults to off, which keeps the per-query cost at one branch.
  obs::TraceSamplerConfig sampling;
  /// Sink for completed-query summaries: every sampled query, every
  /// errored query, and every query slower than sampling.slow_ms records
  /// one entry (see TraceSampler::ShouldRecord). Null disables recording;
  /// the recorder must outlive the executor.
  obs::FlightRecorder* flight_recorder = nullptr;
};

/// Identity carried alongside a submitted query into its flight-recorder
/// entry. Both fields are optional; `kind` must be a static-lifetime
/// string (a literal, a workload label).
struct QueryTag {
  const char* kind = "query";
  uint32_t terms = 0;
};

/// Aggregate results of a concurrent batch: throughput plus the latency
/// distribution merged from every worker's per-thread samples.
struct ThroughputMetrics {
  size_t num_threads = 0;
  size_t queries = 0;
  /// Wall-clock time of the whole batch (submit of the first query to
  /// drain), which is what queries/sec is computed from.
  double wall_millis = 0.0;
  double qps = 0.0;
  double avg_millis = 0.0;
  double p50_millis = 0.0;
  double p95_millis = 0.0;
  double p99_millis = 0.0;
  /// Queries that ended with a non-OK Status (after any retries). Failed
  /// queries that actually ran still count in `queries` and in the latency
  /// distribution — the time was spent either way. Queries rejected at the
  /// validation boundary (INVALID_ARGUMENT) count here and in `rejected`
  /// but NOT in `queries`/qps/percentiles: they never ran a search, and
  /// letting them inflate throughput skews benches under malformed-input
  /// chaos.
  uint64_t errors = 0;
  /// Validation-boundary rejections (INVALID_ARGUMENT), a subset of
  /// `errors`; excluded from `queries` and the latency distribution.
  uint64_t rejected = 0;
  /// errors / (queries + rejected) (0 when the batch is empty).
  double error_rate = 0.0;
  /// Failure breakdown indexed by Status::Code.
  std::array<uint64_t, Status::kNumCodes> errors_by_code{};
  /// Transient-fault re-runs that happened under the retry policy.
  uint64_t retries = 0;
  /// Queries that ran traced under the sampling policy (0 when off).
  uint64_t sampled = 0;
  /// The sampling config's 1-in-N (0 when sampling was off).
  uint32_t sample_rate = 0;
  /// Merge of the per-worker latency histograms for the batch; lets benches
  /// report the full distribution without keeping every raw sample.
  obs::HistogramSnapshot histogram;
};

/// Fixed-size thread pool with a bounded work queue, built for running
/// many independent read-only queries against one shared Database (whose
/// storage layer is concurrent-reader-safe — see DESIGN.md "Threading
/// model"). Each worker times every task it runs and keeps its latency
/// samples in a private vector; Drain() waits for the queue to empty and
/// merges the per-thread samples under the pool mutex, so no sample is
/// ever written and read concurrently.
///
/// Every worker owns a QueryContext, handed to tasks submitted with
/// SubmitWithContext — steady-state queries then reuse the worker's scratch
/// instead of allocating per query.
class QueryExecutor {
 public:
  explicit QueryExecutor(const ExecutorConfig& config);

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  /// Drains outstanding work, then joins the workers.
  ~QueryExecutor();

  /// Enqueues one task; blocks while the queue is at capacity. Tasks must
  /// not touch single-writer state of the shared database (index builds,
  /// SetCapacity, Clear, counter resets).
  void Submit(std::function<void()> task);

  /// Like Submit, but the task receives the executing worker's private
  /// QueryContext.
  void SubmitWithContext(std::function<void(QueryContext*)> task);

  /// Enqueues a query that reports failure through a Status instead of
  /// aborting. A non-OK result is a *recorded failure*, never a crash:
  /// IO_ERROR failures are re-run up to config.max_retries times with
  /// linear backoff, and whatever Status survives is tallied per code in
  /// the next Drain (and into "dsks.query.errors.<CODE>"). The task must
  /// be safe to re-run from scratch — every Run*Query is.
  void SubmitQuery(std::function<Status(QueryContext*)> task);

  /// Like SubmitQuery, with an identity tag that shows up in the query's
  /// flight-recorder entry (when the sampling/recording policy keeps one).
  void SubmitQuery(const QueryTag& tag,
                   std::function<Status(QueryContext*)> task);

  /// Non-blocking admission: enqueues like SubmitQuery but never waits on
  /// a full queue. `wait_millis` > 0 grants a bounded submit deadline —
  /// wait that long for space, then give up. Returns false when the task
  /// was NOT admitted (queue still full); the caller owns the rejection
  /// (a server answers RESOURCE_EXHAUSTED and counts the shed). This is
  /// the server-side admission path; the blocking SubmitQuery stays for
  /// benches, where back-pressure on the producer is the point.
  bool TrySubmitQuery(const QueryTag& tag,
                      std::function<Status(QueryContext*)> task,
                      double wait_millis = 0.0);
  bool TrySubmitQuery(std::function<Status(QueryContext*)> task,
                      double wait_millis = 0.0);

  /// What one Drain hands back: every per-thread latency sample plus the
  /// merge of the per-worker histograms over the same tasks (so
  /// latency.count == samples.size() always), plus the failure tallies of
  /// the batch.
  struct DrainResult {
    std::vector<double> samples;  // milliseconds, unordered
    obs::HistogramSnapshot latency;
    /// Final (post-retry) failures by Status::Code.
    std::array<uint64_t, Status::kNumCodes> errors{};
    /// Validation-boundary rejections (INVALID_ARGUMENT results), also
    /// tallied in errors[kInvalidArgument] but excluded from samples — a
    /// rejected query never ran a search, so it must not count as served
    /// throughput.
    uint64_t rejected = 0;
    /// Transient-fault re-runs performed by the retry policy.
    uint64_t retries = 0;
    /// Queries of the batch that ran traced under the sampling policy.
    uint64_t sampled = 0;

    uint64_t total_errors() const {
      uint64_t n = 0;
      for (const uint64_t e : errors) {
        n += e;
      }
      return n;
    }
  };

  /// Blocks until every submitted task has finished, then returns the
  /// consumed samples/histogram and publishes the batch into the
  /// configured metrics registry. The executor stays usable for further
  /// Submit calls.
  DrainResult Drain();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop(size_t worker_id);

  const size_t queue_capacity_;
  const size_t max_retries_;
  const double retry_backoff_millis_;

  std::mutex mu_;
  std::condition_variable queue_not_full_;
  std::condition_variable queue_not_empty_;
  std::condition_variable all_idle_;
  /// Queued tasks report through a Status; void submissions are wrapped to
  /// return OK so one queue serves both.
  struct Task {
    QueryTag tag;
    std::function<Status(QueryContext*)> fn;
  };
  std::deque<Task> queue_;
  size_t active_tasks_ = 0;
  bool stopping_ = false;

  /// samples_[i] is written by worker i between queue pops (i.e. while it
  /// owns an active task) and read by Drain only when no task is active.
  std::vector<std::vector<double>> samples_;
  /// hists_[i] records the same latencies as samples_[i]; Histogram is
  /// internally lock-free, and the active_tasks_ hand-off orders worker
  /// records before Drain's snapshot.
  std::vector<std::unique_ptr<obs::Histogram>> hists_;
  /// errors_[i]/retries_[i] follow the same ownership discipline as
  /// samples_[i]: written by worker i under mu_, read by Drain when idle.
  std::vector<std::array<uint64_t, Status::kNumCodes>> errors_;
  std::vector<uint64_t> rejected_;
  std::vector<uint64_t> retries_;
  /// sampled_[i]: queries worker i ran traced; same discipline as retries_.
  std::vector<uint64_t> sampled_;
  /// contexts_[i] is touched only by worker i.
  std::vector<std::unique_ptr<QueryContext>> contexts_;
  std::vector<std::thread> workers_;
  obs::MetricsRegistry* metrics_;
  const obs::TraceSamplerConfig sampling_;
  obs::FlightRecorder* const flight_recorder_;
  /// Resolved once at construction; workers Add/Sub around each task.
  obs::Gauge* in_flight_ = nullptr;
};

/// Computes the latency distribution of `samples` plus queries/sec from
/// the batch wall time. `errors` (failed queries among the samples) feeds
/// the error-rate fields.
ThroughputMetrics SummarizeThroughput(size_t num_threads, double wall_millis,
                                      std::vector<double> samples,
                                      uint64_t errors = 0,
                                      uint64_t rejected = 0);

/// Runs `repeat` passes over the workload's SK queries on `num_threads`
/// workers sharing `db` and reports aggregate throughput. Applies the same
/// ScopedIoDelay as the sequential harness so numbers are comparable.
/// `sampling`/`recorder` feed the executor's sampled-tracing policy (both
/// default to off/none).
ThroughputMetrics RunSkWorkloadConcurrent(
    Database* db, const Workload& workload, size_t num_threads,
    size_t repeat = 1, const obs::TraceSamplerConfig& sampling = {},
    obs::FlightRecorder* recorder = nullptr);

/// Concurrent counterpart of RunDivWorkload.
ThroughputMetrics RunDivWorkloadConcurrent(
    Database* db, const Workload& workload, size_t k, double lambda,
    bool use_com, size_t num_threads, size_t repeat = 1,
    const obs::TraceSamplerConfig& sampling = {},
    obs::FlightRecorder* recorder = nullptr);

}  // namespace dsks

#endif  // DSKS_HARNESS_QUERY_EXECUTOR_H_
