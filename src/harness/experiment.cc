#include "harness/experiment.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/macros.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace dsks {

namespace {

/// 95th percentile of a sample set (shared nearest-rank definition).
double Percentile95(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return obs::NearestRankPercentile(samples, 95);
}

}  // namespace

ScopedIoDelay::ScopedIoDelay(Database* db, bool yielding) : db_(db) {
  const char* env = std::getenv("DSKS_IO_DELAY_US");
  db_->disk()->set_read_delay_us(env == nullptr ? 50.0 : std::atof(env));
  db_->disk()->set_read_delay_yields(yielding);
}

ScopedIoDelay::~ScopedIoDelay() {
  db_->disk()->set_read_delay_us(0.0);
  db_->disk()->set_read_delay_yields(false);
}

SkWorkloadMetrics RunSkWorkload(Database* db, const Workload& workload) {
  DSKS_CHECK_MSG(!workload.queries.empty(), "empty workload");
  SkWorkloadMetrics m;
  ScopedIoDelay delay(db);
  QueryContext ctx;  // reused across the whole workload
  std::vector<double> samples;
  samples.reserve(workload.queries.size());
  for (const WorkloadQuery& wq : workload.queries) {
    db->ResetCounters();
    Timer timer;
    const std::vector<SkResult> results = db->RunSkQuery(wq.sk, wq.edge, &ctx);
    samples.push_back(timer.ElapsedMillis());
    m.avg_millis += samples.back();
    m.avg_io += static_cast<double>(db->IoCount());
    m.avg_candidates += static_cast<double>(results.size());
    const ObjectIndexStats& st = db->index()->stats();
    m.avg_false_hits += static_cast<double>(st.false_hits);
    m.avg_false_hit_objects += static_cast<double>(st.false_hit_objects);
    m.avg_edges_skipped += static_cast<double>(st.edges_skipped_by_signature);
    m.avg_objects_loaded += static_cast<double>(st.objects_loaded);
  }
  const auto n = static_cast<double>(workload.queries.size());
  m.avg_millis /= n;
  m.avg_io /= n;
  m.avg_candidates /= n;
  m.avg_false_hits /= n;
  m.avg_false_hit_objects /= n;
  m.avg_edges_skipped /= n;
  m.avg_objects_loaded /= n;
  m.p95_millis = Percentile95(std::move(samples));
  return m;
}

DivWorkloadMetrics RunDivWorkload(Database* db, const Workload& workload,
                                  size_t k, double lambda, bool use_com) {
  DSKS_CHECK_MSG(!workload.queries.empty(), "empty workload");
  DivWorkloadMetrics m;
  ScopedIoDelay delay(db);
  QueryContext ctx;  // reused across the whole workload
  std::vector<double> samples;
  samples.reserve(workload.queries.size());
  for (const WorkloadQuery& wq : workload.queries) {
    DivQuery dq;
    dq.sk = wq.sk;
    dq.k = k;
    dq.lambda = lambda;
    db->ResetCounters();
    Timer timer;
    const DivSearchOutput out = db->RunDivQuery(dq, wq.edge, use_com, &ctx);
    samples.push_back(timer.ElapsedMillis());
    m.avg_millis += samples.back();
    m.avg_io += static_cast<double>(db->IoCount());
    m.avg_candidates += static_cast<double>(out.stats.candidates);
    m.avg_objective += out.objective;
    m.avg_pruned += static_cast<double>(out.stats.pruned_objects);
    m.early_termination_rate += out.stats.early_terminated ? 1.0 : 0.0;
    m.avg_distance_fields += static_cast<double>(out.stats.distance_fields);
  }
  const auto n = static_cast<double>(workload.queries.size());
  m.avg_millis /= n;
  m.avg_io /= n;
  m.avg_candidates /= n;
  m.avg_objective /= n;
  m.avg_pruned /= n;
  m.early_termination_rate /= n;
  m.avg_distance_fields /= n;
  m.p95_millis = Percentile95(std::move(samples));
  return m;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  DSKS_CHECK_MSG(cells.size() == headers_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void TablePrinter::Print() const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&width](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(width[c]), cells[c].c_str(),
                  c + 1 == cells.size() ? "\n" : "  ");
    }
  };
  print_row(headers_);
  size_t total = headers_.size() - 1;
  for (size_t w : width) total += w + 1;
  for (size_t i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows_) {
    print_row(row);
  }
}

}  // namespace dsks
