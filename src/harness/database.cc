#include "harness/database.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "common/timer.h"
#include "datagen/network_generator.h"
#include "datagen/object_generator.h"
#include "index/inverted_file.h"
#include "index/inverted_rtree.h"
#include "index/sif.h"
#include "index/sif_group.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dsks {

std::string IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kIR:
      return "IR";
    case IndexKind::kIF:
      return "IF";
    case IndexKind::kSIF:
      return "SIF";
    case IndexKind::kSIFP:
      return "SIF-P";
    case IndexKind::kSIFG:
      return "SIF-G";
  }
  return "?";
}

namespace {

/// Build-phase pool: large enough that construction is not eviction-bound.
constexpr size_t kBuildPoolFrames = 64 * 1024;  // 256 MiB of frames

}  // namespace

Database::Database(const DatasetConfig& config, const DiskOptions& storage)
    : config_(config), disk_(storage) {
  network_ = GenerateRoadNetwork(config.network);
  objects_ = GenerateObjects(*network_, config.objects);
  term_stats_ = std::make_unique<TermStats>(*objects_, config.objects.vocab_size);
  pool_ = std::make_unique<BufferPool>(&disk_, kBuildPoolFrames);
  ccam_file_ = CcamFileBuilder::Build(*network_, &disk_);
  ccam_graph_ = std::make_unique<CcamGraph>(&ccam_file_, pool_.get());
  index_base_pages_ = disk_.num_pages();
}

Database::IndexBuildInfo Database::BuildIndex(const IndexOptions& options) {
  const size_t vocab = config_.objects.vocab_size;
  const size_t min_postings = options.signature_min_postings == 0
                                  ? PostingFile::EntriesPerPage()
                                  : options.signature_min_postings;
  if (index_ != nullptr) {
    // Reclaim the superseded index's extent: drop the index (its pages
    // may still be pinned through pool frames only until the unique_ptr
    // goes), write back / drop every cached frame, then truncate the disk
    // to the post-CCAM watermark so the rebuild reuses the same page
    // range. Without this, every rebuild leaked its predecessor's pages.
    index_.reset();
    const Status clear_status = pool_->Clear();
    DSKS_CHECK_MSG(clear_status.ok(), "index rebuild on a faulty disk");
    const Status trunc_status = disk_.TruncatePages(index_base_pages_);
    DSKS_CHECK_MSG(trunc_status.ok(), "index rebuild on a faulty disk");
    index_pages_ = 0;
  }
  Timer timer;
  switch (options.kind) {
    case IndexKind::kIR:
      index_ = std::make_unique<InvertedRTreeIndex>(pool_.get(), *objects_,
                                                    vocab);
      break;
    case IndexKind::kIF:
      index_ =
          std::make_unique<InvertedFileIndex>(pool_.get(), *objects_, vocab);
      break;
    case IndexKind::kSIF:
      index_ = std::make_unique<SifIndex>(pool_.get(), *objects_, vocab,
                                          min_postings);
      break;
    case IndexKind::kSIFP: {
      SifPConfig sifp = options.sifp;
      if (sifp.log_provider == nullptr) {
        sifp.log_provider = MakeQueryLogProvider(
            QueryLogMode::kFrequency, {}, /*terms_per_query=*/3,
            /*queries_per_edge=*/8, /*seed=*/config_.network.seed ^ 0xABCD);
      }
      index_ = std::make_unique<SifPartitionedIndex>(pool_.get(), *objects_,
                                                     vocab, sifp, min_postings);
      break;
    }
    case IndexKind::kSIFG:
      index_ = std::make_unique<SifGroupIndex>(pool_.get(), *objects_, vocab,
                                               options.sifg_frequent_terms,
                                               min_postings);
      break;
  }
  IndexBuildInfo info;
  info.build_millis = timer.ElapsedMillis();
  info.size_bytes = index_->SizeBytes();
  index_pages_ = disk_.num_pages() - index_base_pages_;
  return info;
}

Status Database::FlushStorage() {
  DSKS_RETURN_IF_ERROR(pool_->FlushAll());
  return disk_.Flush();
}

void Database::PrepareForQueries(double fraction, size_t min_frames) {
  DSKS_CHECK_MSG(index_ != nullptr, "build an index first");
  const Status flush_status = pool_->FlushAll();
  DSKS_CHECK_MSG(flush_status.ok(), "PrepareForQueries on a faulty disk");
  // Budget relative to the live dataset (CCAM + current index). Since
  // rebuilds truncate the superseded extent this normally equals the raw
  // disk, but the live sum stays correct even if a leak regresses.
  const double live_pages = static_cast<double>(
      (ccam_file_.size_bytes() + index_->SizeBytes()) / kPageSize);
  const auto frames = static_cast<size_t>(
      std::max(static_cast<double>(min_frames), fraction * live_pages));
  const Status clear_status = pool_->Clear();
  DSKS_CHECK_MSG(clear_status.ok(), "PrepareForQueries on a faulty disk");
  // Persist the built image (sidecar + fsync on the file backend) so the
  // measured phase starts from a durable, reopenable index.
  const Status disk_flush = disk_.Flush();
  DSKS_CHECK_MSG(disk_flush.ok(), "PrepareForQueries on a faulty disk");
  pool_->SetCapacity(frames);
  ResetCounters();
}

void Database::ResetCounters() {
  disk_.mutable_stats()->Reset();
  pool_->mutable_stats()->Reset();
  if (index_ != nullptr) {
    index_->stats().Reset();
  }
}

uint64_t Database::IoCount() const { return disk_.stats().reads; }

void Database::BindMetrics(obs::MetricsRegistry* registry,
                           const std::string& prefix) const {
  pool_->BindMetrics(registry, prefix + ".pool");
  disk_.BindMetrics(registry, prefix + ".disk");
  // Pages neither in the CCAM extent nor the current index: 0 unless the
  // rebuild-reclaim path regresses, in which case this gauge is how the
  // leak becomes visible.
  registry->BindSource(prefix + ".disk.leaked_pages", [this] {
    const size_t live = index_base_pages_ + index_pages_;
    const size_t total = disk_.num_pages();
    return static_cast<uint64_t>(total > live ? total - live : 0);
  });
}

void Database::UnbindMetrics(obs::MetricsRegistry* registry,
                             const std::string& prefix) const {
  registry->UnbindSourcesWithPrefix(prefix + ".");
}

namespace {

/// Stamps a failed query's code into its trace, preserving the spans
/// recorded before the error as the partial-work account.
void MarkTraceError(QueryContext* ctx, const Status& status) {
  if (!status.ok() && ctx != nullptr && ctx->trace != nullptr) {
    ctx->trace->MarkError(status.code_name());
  }
}

}  // namespace

Status Database::CheckQueryEdge(const SkQuery& query,
                                const QueryEdgeInfo& edge) const {
  if (query.loc.edge >= network_->num_edges()) {
    return Status::InvalidArgument("query location edge does not exist");
  }
  if (edge.edge >= network_->num_edges()) {
    return Status::InvalidArgument("query edge does not exist");
  }
  if (edge.n1 >= edge.n2 || edge.n2 >= network_->num_nodes()) {
    return Status::InvalidArgument(
        "query edge endpoints must be (reference, far) ordered nodes");
  }
  if (!(edge.weight > 0.0) || edge.w1 < 0.0 || edge.w1 > edge.weight) {
    return Status::InvalidArgument(
        "query position must lie on its edge (0 <= w1 <= weight)");
  }
  return Status::Ok();
}

Status Database::RunSkQuery(const SkQuery& query, const QueryEdgeInfo& edge,
                            std::vector<SkResult>* out, QueryContext* ctx) {
  out->clear();
  SkQuery q = query;
  DSKS_RETURN_IF_ERROR(NormalizeSkQuery(&q));
  DSKS_RETURN_IF_ERROR(CheckQueryEdge(q, edge));
  // Charge this query's storage I/O to its context; with a trace attached,
  // snapshot those per-context counters so span deltas stay exact under
  // concurrency (other queries charge their own contexts).
  obs::ScopedIoAccount io_account(ctx == nullptr ? nullptr : &ctx->io);
  if (ctx != nullptr && ctx->trace != nullptr) {
    ctx->trace->BindContextIo(&ctx->io);
  }
  // Root span: the search constructor already does keyword I/O, so the
  // span must open before it.
  obs::ScopedSpan root(ctx == nullptr ? nullptr : ctx->trace,
                       obs::Phase::kQuery);
  IncrementalSkSearch search(ccam_graph_.get(), index_.get(), q, edge, ctx);
  SkResult r;
  while (search.Next(&r)) {
    out->push_back(r);
  }
  MarkTraceError(ctx, search.status());
  return search.status();
}

std::vector<SkResult> Database::RunSkQuery(const SkQuery& query,
                                           const QueryEdgeInfo& edge,
                                           QueryContext* ctx) {
  std::vector<SkResult> results;
  const Status status = RunSkQuery(query, edge, &results, ctx);
  DSKS_CHECK_MSG(status.ok(), "RunSkQuery failed");
  return results;
}

Status Database::RunKnnQuery(const SkQuery& query, const QueryEdgeInfo& edge,
                             size_t k, std::vector<SkResult>* out) {
  out->clear();
  SkQuery q = query;
  DSKS_RETURN_IF_ERROR(NormalizeSkQuery(&q));
  DSKS_RETURN_IF_ERROR(CheckQueryEdge(q, edge));
  if (k == 0) {
    return Status::InvalidArgument("kNN query needs k >= 1");
  }
  return BooleanKnnSearch(ccam_graph_.get(), index_.get(), q, edge, k, out);
}

std::vector<SkResult> Database::RunKnnQuery(const SkQuery& query,
                                            const QueryEdgeInfo& edge,
                                            size_t k) {
  std::vector<SkResult> results;
  const Status status = RunKnnQuery(query, edge, k, &results);
  DSKS_CHECK_MSG(status.ok(), "RunKnnQuery failed");
  return results;
}

Status Database::RunRankedQuery(const RankedQuery& query,
                                const QueryEdgeInfo& edge,
                                std::vector<RankedResult>* out) {
  out->clear();
  RankedQuery q = query;
  DSKS_RETURN_IF_ERROR(NormalizeSkQuery(&q.sk));
  DSKS_RETURN_IF_ERROR(CheckQueryEdge(q.sk, edge));
  if (q.k == 0) {
    return Status::InvalidArgument("ranked query needs k >= 1");
  }
  if (!(q.alpha >= 0.0 && q.alpha <= 1.0)) {
    return Status::InvalidArgument("alpha must be in [0, 1]");
  }
  return RankedSkSearch(ccam_graph_.get(), index_.get(), q, edge, out);
}

std::vector<RankedResult> Database::RunRankedQuery(const RankedQuery& query,
                                                   const QueryEdgeInfo& edge) {
  std::vector<RankedResult> results;
  const Status status = RunRankedQuery(query, edge, &results);
  DSKS_CHECK_MSG(status.ok(), "RunRankedQuery failed");
  return results;
}

Status Database::RunDivQuery(const DivQuery& query, const QueryEdgeInfo& edge,
                             bool use_com, DivSearchOutput* out,
                             QueryContext* ctx, OracleStrategy strategy) {
  *out = DivSearchOutput();
  DivQuery q = query;
  DSKS_RETURN_IF_ERROR(NormalizeDivQuery(&q));
  DSKS_RETURN_IF_ERROR(CheckQueryEdge(q.sk, edge));
  obs::ScopedIoAccount io_account(ctx == nullptr ? nullptr : &ctx->io);
  if (ctx != nullptr && ctx->trace != nullptr) {
    ctx->trace->BindContextIo(&ctx->io);
  }
  obs::ScopedSpan root(ctx == nullptr ? nullptr : ctx->trace,
                       obs::Phase::kQuery);
  IncrementalSkSearch search(ccam_graph_.get(), index_.get(), q.sk, edge,
                             ctx);
  PairwiseDistanceOracle oracle(ccam_graph_.get(), 2.0 * q.sk.delta_max,
                                strategy, ctx);
  oracle.SetQueryEdge(edge);
  *out = use_com ? DiversifiedSearchCOM(&search, q, &oracle)
                 : DiversifiedSearchSEQ(&search, q, &oracle);
  MarkTraceError(ctx, out->status);
  return out->status;
}

DivSearchOutput Database::RunDivQuery(const DivQuery& query,
                                      const QueryEdgeInfo& edge, bool use_com,
                                      QueryContext* ctx,
                                      OracleStrategy strategy) {
  DivSearchOutput out;
  const Status status = RunDivQuery(query, edge, use_com, &out, ctx, strategy);
  DSKS_CHECK_MSG(status.ok(), "RunDivQuery failed");
  return out;
}

}  // namespace dsks
