#include "harness/database.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "common/timer.h"
#include "datagen/network_generator.h"
#include "datagen/object_generator.h"
#include "index/inverted_file.h"
#include "index/inverted_rtree.h"
#include "index/sif.h"
#include "index/sif_group.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dsks {

std::string IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kIR:
      return "IR";
    case IndexKind::kIF:
      return "IF";
    case IndexKind::kSIF:
      return "SIF";
    case IndexKind::kSIFP:
      return "SIF-P";
    case IndexKind::kSIFG:
      return "SIF-G";
  }
  return "?";
}

namespace {

/// Build-phase pool: large enough that construction is not eviction-bound.
constexpr size_t kBuildPoolFrames = 64 * 1024;  // 256 MiB of frames

}  // namespace

Database::Database(const DatasetConfig& config) : config_(config) {
  network_ = GenerateRoadNetwork(config.network);
  objects_ = GenerateObjects(*network_, config.objects);
  term_stats_ = std::make_unique<TermStats>(*objects_, config.objects.vocab_size);
  pool_ = std::make_unique<BufferPool>(&disk_, kBuildPoolFrames);
  ccam_file_ = CcamFileBuilder::Build(*network_, &disk_);
  ccam_graph_ = std::make_unique<CcamGraph>(&ccam_file_, pool_.get());
}

Database::IndexBuildInfo Database::BuildIndex(const IndexOptions& options) {
  const size_t vocab = config_.objects.vocab_size;
  const size_t min_postings = options.signature_min_postings == 0
                                  ? PostingFile::EntriesPerPage()
                                  : options.signature_min_postings;
  Timer timer;
  switch (options.kind) {
    case IndexKind::kIR:
      index_ = std::make_unique<InvertedRTreeIndex>(pool_.get(), *objects_,
                                                    vocab);
      break;
    case IndexKind::kIF:
      index_ =
          std::make_unique<InvertedFileIndex>(pool_.get(), *objects_, vocab);
      break;
    case IndexKind::kSIF:
      index_ = std::make_unique<SifIndex>(pool_.get(), *objects_, vocab,
                                          min_postings);
      break;
    case IndexKind::kSIFP: {
      SifPConfig sifp = options.sifp;
      if (sifp.log_provider == nullptr) {
        sifp.log_provider = MakeQueryLogProvider(
            QueryLogMode::kFrequency, {}, /*terms_per_query=*/3,
            /*queries_per_edge=*/8, /*seed=*/config_.network.seed ^ 0xABCD);
      }
      index_ = std::make_unique<SifPartitionedIndex>(pool_.get(), *objects_,
                                                     vocab, sifp, min_postings);
      break;
    }
    case IndexKind::kSIFG:
      index_ = std::make_unique<SifGroupIndex>(pool_.get(), *objects_, vocab,
                                               options.sifg_frequent_terms,
                                               min_postings);
      break;
  }
  IndexBuildInfo info;
  info.build_millis = timer.ElapsedMillis();
  info.size_bytes = index_->SizeBytes();
  return info;
}

void Database::PrepareForQueries(double fraction, size_t min_frames) {
  DSKS_CHECK_MSG(index_ != nullptr, "build an index first");
  pool_->FlushAll();
  // Budget relative to the *live* dataset (CCAM + current index) rather
  // than the raw disk, which may hold pages of superseded indexes when
  // BuildIndex was called more than once.
  const double live_pages = static_cast<double>(
      (ccam_file_.size_bytes() + index_->SizeBytes()) / kPageSize);
  const auto frames = static_cast<size_t>(
      std::max(static_cast<double>(min_frames), fraction * live_pages));
  pool_->Clear();
  pool_->SetCapacity(frames);
  ResetCounters();
}

void Database::ResetCounters() {
  disk_.mutable_stats()->Reset();
  pool_->mutable_stats()->Reset();
  if (index_ != nullptr) {
    index_->stats().Reset();
  }
}

uint64_t Database::IoCount() const { return disk_.stats().reads; }

void Database::BindMetrics(obs::MetricsRegistry* registry,
                           const std::string& prefix) const {
  pool_->BindMetrics(registry, prefix + ".pool");
  disk_.BindMetrics(registry, prefix + ".disk");
}

void Database::UnbindMetrics(obs::MetricsRegistry* registry,
                             const std::string& prefix) const {
  registry->UnbindSourcesWithPrefix(prefix + ".");
}

std::vector<SkResult> Database::RunSkQuery(const SkQuery& query,
                                           const QueryEdgeInfo& edge,
                                           QueryContext* ctx) {
  // Root span: the search constructor already does keyword I/O, so the
  // span must open before it.
  obs::ScopedSpan root(ctx == nullptr ? nullptr : ctx->trace,
                       obs::Phase::kQuery);
  IncrementalSkSearch search(ccam_graph_.get(), index_.get(), query, edge,
                             ctx);
  std::vector<SkResult> results;
  SkResult r;
  while (search.Next(&r)) {
    results.push_back(r);
  }
  return results;
}

std::vector<SkResult> Database::RunKnnQuery(const SkQuery& query,
                                            const QueryEdgeInfo& edge,
                                            size_t k) {
  return BooleanKnnSearch(ccam_graph_.get(), index_.get(), query, edge, k);
}

std::vector<RankedResult> Database::RunRankedQuery(const RankedQuery& query,
                                                   const QueryEdgeInfo& edge) {
  return RankedSkSearch(ccam_graph_.get(), index_.get(), query, edge);
}

DivSearchOutput Database::RunDivQuery(const DivQuery& query,
                                      const QueryEdgeInfo& edge, bool use_com,
                                      QueryContext* ctx,
                                      OracleStrategy strategy) {
  obs::ScopedSpan root(ctx == nullptr ? nullptr : ctx->trace,
                       obs::Phase::kQuery);
  IncrementalSkSearch search(ccam_graph_.get(), index_.get(), query.sk, edge,
                             ctx);
  PairwiseDistanceOracle oracle(ccam_graph_.get(), 2.0 * query.sk.delta_max,
                                strategy, ctx);
  oracle.SetQueryEdge(edge);
  return use_com ? DiversifiedSearchCOM(&search, query, &oracle)
                 : DiversifiedSearchSEQ(&search, query, &oracle);
}

}  // namespace dsks
