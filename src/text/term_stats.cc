#include "text/term_stats.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"

namespace dsks {

TermStats::TermStats(const ObjectSet& objects, size_t vocab_size) {
  freq_.assign(vocab_size, 0);
  for (const auto& obj : objects.objects()) {
    for (TermId t : obj.terms) {
      DSKS_CHECK_MSG(t < vocab_size, "object term outside vocabulary");
      ++freq_[t];
      ++total_;
    }
  }
  by_freq_.resize(vocab_size);
  std::iota(by_freq_.begin(), by_freq_.end(), TermId{0});
  std::sort(by_freq_.begin(), by_freq_.end(), [this](TermId a, TermId b) {
    return freq_[a] != freq_[b] ? freq_[a] > freq_[b] : a < b;
  });
  cum_by_freq_.resize(vocab_size);
  double running = 0.0;
  for (size_t i = 0; i < vocab_size; ++i) {
    running += static_cast<double>(freq_[by_freq_[i]]);
    cum_by_freq_[i] = running;
  }
}

}  // namespace dsks
