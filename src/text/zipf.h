#ifndef DSKS_TEXT_ZIPF_H_
#define DSKS_TEXT_ZIPF_H_

#include <cstddef>
#include <vector>

#include "common/random.h"

namespace dsks {

/// Samples ranks from a Zipf distribution: P(rank = r) proportional to
/// 1/r^z for r in [1, n]. The paper's synthetic vocabularies draw term
/// frequencies this way with z in [0.9, 1.3], default 1.1 (§5).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double z);

  /// Returns a 0-based rank in [0, n).
  size_t Sample(Random* rng) const;

  /// Probability mass of 0-based rank `r`.
  double Probability(size_t r) const;

  size_t n() const { return cumulative_.size(); }
  double z() const { return z_; }

 private:
  double z_;
  /// cumulative_[r] = P(rank <= r); strictly increasing, last element 1.
  std::vector<double> cumulative_;
};

}  // namespace dsks

#endif  // DSKS_TEXT_ZIPF_H_
