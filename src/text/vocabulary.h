#ifndef DSKS_TEXT_VOCABULARY_H_
#define DSKS_TEXT_VOCABULARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/types.h"

namespace dsks {

/// Bidirectional mapping between keyword strings and dense TermIds. All
/// query processing works on TermIds; the string side exists for loaders
/// and the example applications.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Returns the id for `term`, creating it if new.
  TermId Intern(std::string_view term);

  /// Returns the id for `term` or kInvalidTermId if absent.
  TermId Lookup(std::string_view term) const;

  /// Inverse of Intern.
  const std::string& Name(TermId id) const { return names_[id]; }

  size_t size() const { return names_.size(); }

  /// Creates `n` synthetic terms named "term<k>". Used by generators that
  /// only care about ids.
  void AddSyntheticTerms(size_t n);

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, TermId> ids_;
};

}  // namespace dsks

#endif  // DSKS_TEXT_VOCABULARY_H_
