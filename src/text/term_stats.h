#ifndef DSKS_TEXT_TERM_STATS_H_
#define DSKS_TEXT_TERM_STATS_H_

#include <cstdint>
#include <vector>

#include "graph/object_set.h"
#include "graph/types.h"

namespace dsks {

/// Corpus-level term frequencies. Query workloads pick keywords with
/// probability freq(t) / sum(freq) (§5), and the SIF-P "Freq" query-log
/// generator uses per-edge frequencies (§3.3, Remark 1).
class TermStats {
 public:
  /// Counts every (object, term) occurrence in `objects`. `vocab_size`
  /// bounds the term-id domain (terms never used get frequency 0).
  TermStats(const ObjectSet& objects, size_t vocab_size);

  uint64_t Frequency(TermId t) const { return freq_[t]; }
  uint64_t total_occurrences() const { return total_; }
  size_t vocab_size() const { return freq_.size(); }

  /// Term ids sorted by decreasing frequency (ties by id). Index = rank.
  const std::vector<TermId>& ByFrequency() const { return by_freq_; }

  /// Cumulative frequency distribution aligned with ByFrequency(); enables
  /// O(log n) frequency-weighted sampling.
  const std::vector<double>& CumulativeByFrequency() const {
    return cum_by_freq_;
  }

 private:
  std::vector<uint64_t> freq_;
  std::vector<TermId> by_freq_;
  std::vector<double> cum_by_freq_;
  uint64_t total_ = 0;
};

}  // namespace dsks

#endif  // DSKS_TEXT_TERM_STATS_H_
