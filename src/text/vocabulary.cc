#include "text/vocabulary.h"

#include "common/macros.h"

namespace dsks {

TermId Vocabulary::Intern(std::string_view term) {
  auto it = ids_.find(std::string(term));
  if (it != ids_.end()) {
    return it->second;
  }
  TermId id = static_cast<TermId>(names_.size());
  names_.emplace_back(term);
  ids_.emplace(names_.back(), id);
  return id;
}

TermId Vocabulary::Lookup(std::string_view term) const {
  auto it = ids_.find(std::string(term));
  return it == ids_.end() ? kInvalidTermId : it->second;
}

void Vocabulary::AddSyntheticTerms(size_t n) {
  names_.reserve(names_.size() + n);
  for (size_t i = 0; i < n; ++i) {
    TermId id = Intern("term" + std::to_string(names_.size()));
    DSKS_CHECK(id + 1 == names_.size());
  }
}

}  // namespace dsks
