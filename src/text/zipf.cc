#include "text/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace dsks {

ZipfSampler::ZipfSampler(size_t n, double z) : z_(z) {
  DSKS_CHECK_MSG(n > 0, "Zipf over empty domain");
  cumulative_.resize(n);
  double total = 0.0;
  for (size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), z);
    cumulative_[r] = total;
  }
  for (double& c : cumulative_) {
    c /= total;
  }
  cumulative_.back() = 1.0;
}

size_t ZipfSampler::Sample(Random* rng) const {
  const double u = rng->NextDouble();
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  if (it == cumulative_.end()) {
    return cumulative_.size() - 1;
  }
  return static_cast<size_t>(it - cumulative_.begin());
}

double ZipfSampler::Probability(size_t r) const {
  DSKS_CHECK(r < cumulative_.size());
  if (r == 0) {
    return cumulative_[0];
  }
  return cumulative_[r] - cumulative_[r - 1];
}

}  // namespace dsks
