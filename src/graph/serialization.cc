#include "graph/serialization.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

namespace dsks {

namespace {

constexpr char kMagic[4] = {'D', 'S', 'K', 'S'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WriteRaw(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadRaw(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status SaveDataset(const RoadNetwork& network, const ObjectSet& objects,
                   const std::string& path) {
  if (!network.finalized() || !objects.finalized()) {
    return Status::InvalidArgument("dataset must be finalized before saving");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  out.write(kMagic, sizeof(kMagic));
  WriteRaw(out, kVersion);

  WriteRaw(out, static_cast<uint64_t>(network.num_nodes()));
  for (const Node& n : network.nodes()) {
    WriteRaw(out, n.loc.x);
    WriteRaw(out, n.loc.y);
  }
  WriteRaw(out, static_cast<uint64_t>(network.num_edges()));
  for (const Edge& e : network.edges()) {
    WriteRaw(out, e.n1);
    WriteRaw(out, e.n2);
    WriteRaw(out, e.weight);
  }
  WriteRaw(out, static_cast<uint64_t>(objects.size()));
  for (const SpatioTextualObject& o : objects.objects()) {
    WriteRaw(out, o.edge);
    WriteRaw(out, o.offset);
    WriteRaw(out, static_cast<uint32_t>(o.terms.size()));
    for (TermId t : o.terms) {
      WriteRaw(out, t);
    }
  }
  out.flush();
  if (!out) {
    return Status::Corruption("short write to " + path);
  }
  return Status::Ok();
}

Status LoadDataset(const std::string& path,
                   std::unique_ptr<RoadNetwork>* network,
                   std::unique_ptr<ObjectSet>* objects) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open: " + path);
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad magic in " + path);
  }
  uint32_t version;
  if (!ReadRaw(in, &version) || version != kVersion) {
    return Status::Corruption("unsupported dataset version");
  }

  auto net = std::make_unique<RoadNetwork>();
  uint64_t num_nodes;
  if (!ReadRaw(in, &num_nodes)) {
    return Status::Corruption("truncated node count");
  }
  for (uint64_t i = 0; i < num_nodes; ++i) {
    Point p;
    if (!ReadRaw(in, &p.x) || !ReadRaw(in, &p.y)) {
      return Status::Corruption("truncated node table");
    }
    net->AddNode(p);
  }
  uint64_t num_edges;
  if (!ReadRaw(in, &num_edges)) {
    return Status::Corruption("truncated edge count");
  }
  for (uint64_t i = 0; i < num_edges; ++i) {
    NodeId n1;
    NodeId n2;
    double weight;
    if (!ReadRaw(in, &n1) || !ReadRaw(in, &n2) || !ReadRaw(in, &weight)) {
      return Status::Corruption("truncated edge table");
    }
    EdgeId unused;
    Status s = net->AddEdge(n1, n2, weight, &unused);
    if (!s.ok()) {
      return Status::Corruption("invalid edge in file: " + s.message());
    }
  }
  net->Finalize();

  auto objs = std::make_unique<ObjectSet>(net.get());
  uint64_t num_objects;
  if (!ReadRaw(in, &num_objects)) {
    return Status::Corruption("truncated object count");
  }
  for (uint64_t i = 0; i < num_objects; ++i) {
    EdgeId edge;
    double offset;
    uint32_t num_terms;
    if (!ReadRaw(in, &edge) || !ReadRaw(in, &offset) ||
        !ReadRaw(in, &num_terms)) {
      return Status::Corruption("truncated object table");
    }
    if (num_terms == 0 || num_terms > 100000) {
      return Status::Corruption("implausible object term count");
    }
    std::vector<TermId> terms(num_terms);
    for (uint32_t t = 0; t < num_terms; ++t) {
      if (!ReadRaw(in, &terms[t])) {
        return Status::Corruption("truncated term list");
      }
    }
    ObjectId unused;
    Status s = objs->Add(edge, offset, std::move(terms), &unused);
    if (!s.ok()) {
      return Status::Corruption("invalid object in file: " + s.message());
    }
  }
  objs->Finalize();

  *network = std::move(net);
  *objects = std::move(objs);
  return Status::Ok();
}

}  // namespace dsks
