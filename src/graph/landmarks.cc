#include "graph/landmarks.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>

#include "common/macros.h"

namespace dsks {

LandmarkIndex::LandmarkIndex(const RoadNetwork* net, size_t num_landmarks)
    : net_(net) {
  DSKS_CHECK_MSG(num_landmarks >= 1, "need at least one landmark");
  DSKS_CHECK_MSG(net->num_nodes() >= 1, "empty network");
  num_landmarks = std::min(num_landmarks, net->num_nodes());

  // Farthest-point sampling: start from node 0, then repeatedly take the
  // node maximizing the distance to the chosen set.
  landmark_nodes_.push_back(0);
  dist_.push_back(DijkstraFromNode(*net_, 0));
  std::vector<double> to_set = dist_.back();
  while (landmark_nodes_.size() < num_landmarks) {
    NodeId best = 0;
    double best_dist = -1.0;
    for (NodeId v = 0; v < net_->num_nodes(); ++v) {
      if (to_set[v] > best_dist && to_set[v] != kInfDistance) {
        best_dist = to_set[v];
        best = v;
      }
    }
    landmark_nodes_.push_back(best);
    dist_.push_back(DijkstraFromNode(*net_, best));
    const auto& d = dist_.back();
    for (NodeId v = 0; v < net_->num_nodes(); ++v) {
      to_set[v] = std::min(to_set[v], d[v]);
    }
  }
}

double LandmarkIndex::LowerBound(NodeId u, NodeId v) const {
  double bound = 0.0;
  for (const auto& d : dist_) {
    bound = std::max(bound, std::abs(d[u] - d[v]));
  }
  return bound;
}

double LandmarkIndex::Distance(NodeId u, NodeId v,
                               uint64_t* expanded) const {
  // A* with the landmark heuristic h(x) = LowerBound(x, v).
  using Entry = std::pair<double, NodeId>;  // (g + h, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> open;
  std::vector<double> g(net_->num_nodes(), kInfDistance);
  std::vector<char> closed(net_->num_nodes(), 0);
  uint64_t settled = 0;

  g[u] = 0.0;
  open.emplace(LowerBound(u, v), u);
  while (!open.empty()) {
    const auto [f, x] = open.top();
    open.pop();
    if (closed[x]) {
      continue;
    }
    closed[x] = 1;
    ++settled;
    if (x == v) {
      break;
    }
    for (const AdjacentEdge& adj : net_->Neighbors(x)) {
      const double ng = g[x] + adj.weight;
      if (ng < g[adj.neighbor]) {
        g[adj.neighbor] = ng;
        open.emplace(ng + LowerBound(adj.neighbor, v), adj.neighbor);
      }
    }
  }
  if (expanded != nullptr) {
    *expanded = settled;
  }
  return g[v];
}

double LandmarkIndex::Distance(const NetworkLocation& a,
                               const NetworkLocation& b,
                               uint64_t* expanded) const {
  const Edge& ea = net_->edge(a.edge);
  const Edge& eb = net_->edge(b.edge);
  const double wa1 = net_->WeightFromN1(a.edge, a.offset);
  const double wa2 = ea.weight - wa1;
  const double wb1 = net_->WeightFromN1(b.edge, b.offset);
  const double wb2 = eb.weight - wb1;

  uint64_t total = 0;
  uint64_t one = 0;
  double best = kInfDistance;
  for (const auto& [an, aw] : {std::pair{ea.n1, wa1}, {ea.n2, wa2}}) {
    for (const auto& [bn, bw] : {std::pair{eb.n1, wb1}, {eb.n2, wb2}}) {
      const double d = Distance(an, bn, &one);
      total += one;
      best = std::min(best, aw + d + bw);
    }
  }
  if (a.edge == b.edge) {
    best = std::min(best, std::abs(wa1 - wb1));
  }
  if (expanded != nullptr) {
    *expanded = total;
  }
  return best;
}

uint64_t LandmarkIndex::SizeBytes() const {
  return dist_.size() * net_->num_nodes() * sizeof(double) +
         landmark_nodes_.size() * sizeof(NodeId);
}

}  // namespace dsks
