#ifndef DSKS_GRAPH_OBJECT_SET_H_
#define DSKS_GRAPH_OBJECT_SET_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "graph/road_network.h"
#include "graph/types.h"

namespace dsks {

/// The collection of spatio-textual objects lying on a road network's
/// edges. This is the ground-truth object store that every index (IR, IF,
/// SIF, SIF-P, SIF-G) is built from and that reference implementations in
/// tests scan directly.
///
/// Usage: Add() objects, then Finalize() to build the per-edge lists (each
/// sorted by offset along the edge, matching the visiting order used by the
/// partitioning technique of §3.3).
class ObjectSet {
 public:
  explicit ObjectSet(const RoadNetwork* network) : network_(network) {}

  ObjectSet(const ObjectSet&) = delete;
  ObjectSet& operator=(const ObjectSet&) = delete;
  ObjectSet(ObjectSet&&) = default;
  ObjectSet& operator=(ObjectSet&&) = default;

  /// Adds an object lying on `edge` at geometric offset `offset` from the
  /// reference node, with sorted-deduplicated `terms`. The object's
  /// location is derived from the edge geometry.
  Status Add(EdgeId edge, double offset, std::vector<TermId> terms,
             ObjectId* out_id);

  void Finalize();
  bool finalized() const { return finalized_; }

  size_t size() const { return objects_.size(); }
  const SpatioTextualObject& object(ObjectId id) const { return objects_[id]; }
  const std::vector<SpatioTextualObject>& objects() const { return objects_; }

  /// Objects on `edge`, ordered by offset from the reference node.
  std::span<const ObjectId> ObjectsOnEdge(EdgeId edge) const;

  /// True iff object `id` contains term `t` (binary search over its sorted
  /// term list).
  bool ObjectHasTerm(ObjectId id, TermId t) const;

  /// True iff object `id` contains every term in `terms` (the boolean AND
  /// keyword constraint of Definition 1).
  bool ObjectHasAllTerms(ObjectId id, std::span<const TermId> terms) const;

  /// Total number of (object, term) pairs; the inverted-file posting count.
  uint64_t TotalTermOccurrences() const;

  const RoadNetwork& network() const { return *network_; }

 private:
  const RoadNetwork* network_;
  std::vector<SpatioTextualObject> objects_;
  /// CSR: ids of objects on each edge, sorted by offset.
  std::vector<ObjectId> edge_objects_;
  std::vector<uint32_t> edge_offsets_;
  bool finalized_ = false;
};

}  // namespace dsks

#endif  // DSKS_GRAPH_OBJECT_SET_H_
