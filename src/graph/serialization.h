#ifndef DSKS_GRAPH_SERIALIZATION_H_
#define DSKS_GRAPH_SERIALIZATION_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "graph/object_set.h"
#include "graph/road_network.h"

namespace dsks {

/// Binary dataset files ("DSKS" format, version 1): a road network plus
/// its spatio-textual objects. Generating large datasets is deterministic
/// but not free; persisting them lets benchmark runs and downstream users
/// share inputs.
///
/// Layout (little-endian): magic "DSKS", u32 version, u64 node count,
/// nodes (f64 x, f64 y), u64 edge count, edges (u32 n1, u32 n2,
/// f64 weight), u64 object count, objects (u32 edge, f64 offset,
/// u32 term count, u32 terms[]).
Status SaveDataset(const RoadNetwork& network, const ObjectSet& objects,
                   const std::string& path);

/// Loads a dataset saved with SaveDataset. On success `*network` and
/// `*objects` are finalized and ready to use; `*objects` refers to
/// `*network`, which must therefore outlive it.
Status LoadDataset(const std::string& path,
                   std::unique_ptr<RoadNetwork>* network,
                   std::unique_ptr<ObjectSet>* objects);

}  // namespace dsks

#endif  // DSKS_GRAPH_SERIALIZATION_H_
