#ifndef DSKS_GRAPH_DIJKSTRA_H_
#define DSKS_GRAPH_DIJKSTRA_H_

#include <limits>
#include <vector>

#include "common/flat_containers.h"
#include "graph/road_network.h"
#include "graph/types.h"

namespace dsks {

inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

/// A point on the road network, addressed as (edge, geometric offset from
/// the reference node n1). Queries and objects are both network locations.
struct NetworkLocation {
  EdgeId edge = kInvalidEdgeId;
  double offset = 0.0;
};

/// In-memory single-source Dijkstra over all nodes. Reference algorithm for
/// tests and for index-construction-time computations; query processing
/// uses the I/O-charged CCAM traversal instead.
std::vector<double> DijkstraFromNode(const RoadNetwork& net, NodeId source);

/// Dijkstra from an arbitrary network location, expanding only nodes with
/// distance <= radius. Returns the node -> distance map (only settled nodes
/// within the radius appear).
FlatHashMap<NodeId, double> BoundedDijkstraFromLocation(
    const RoadNetwork& net, const NetworkLocation& from, double radius);

/// Network distance (cost of the least costly path, §2.1) between two
/// locations, combining node distances with edge-offset costs per
/// Equation 1; handles the same-edge direct path. Exact but O(|E| log |V|):
/// use only for reference checks and small instances.
double ExactNetworkDistance(const RoadNetwork& net, const NetworkLocation& a,
                            const NetworkLocation& b);

/// Distance between location `a` and every object location in `objs`,
/// sharing one Dijkstra run. Returns distances in the order of `objs`.
std::vector<double> DistancesToLocations(const RoadNetwork& net,
                                         const NetworkLocation& a,
                                         const std::vector<NetworkLocation>& objs);

/// All-pairs node distances via Floyd-Warshall; O(V^3), test-only.
std::vector<std::vector<double>> FloydWarshall(const RoadNetwork& net);

}  // namespace dsks

#endif  // DSKS_GRAPH_DIJKSTRA_H_
