#ifndef DSKS_GRAPH_CCAM_H_
#define DSKS_GRAPH_CCAM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "graph/road_network.h"
#include "graph/types.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace dsks {

/// Disk-resident road network in the style of the connectivity-clustered
/// access method (CCAM, §2.2): nodes are ordered by the Z-order code of
/// their locations and their adjacency lists are packed into 4 KiB pages in
/// that order, so that a network expansion touching spatially close nodes
/// exhibits page-access locality. (The paper additionally refines groups by
/// recursive two-way partitioning; Z-order packing preserves the property
/// the experiments depend on — locality of adjacent lists — and keeps the
/// build deterministic.)
///
/// Build once with CcamFileBuilder, then read through CcamGraph which
/// charges every adjacency-list load to the shared buffer pool.
class CcamFile {
 public:
  CcamFile() = default;

  CcamFile(const CcamFile&) = delete;
  CcamFile& operator=(const CcamFile&) = delete;
  CcamFile(CcamFile&&) = default;
  CcamFile& operator=(CcamFile&&) = default;

  /// Page holding node `id`'s adjacency list.
  PageId PageOfNode(NodeId id) const { return node_page_[id]; }

  /// Byte offset of node `id`'s record within its page.
  uint16_t OffsetOfNode(NodeId id) const { return node_offset_[id]; }

  size_t num_pages() const { return num_pages_; }
  size_t num_nodes() const { return node_page_.size(); }
  uint64_t size_bytes() const { return uint64_t{num_pages_} * kPageSize; }

 private:
  friend class CcamFileBuilder;

  /// node id -> page containing its adjacency record. The directory is an
  /// in-memory array (4 bytes/node), the usual arrangement for CCAM.
  std::vector<PageId> node_page_;
  /// node id -> byte offset of its record in that page, recorded at build
  /// time next to the page directory so that a lookup needs no scan over
  /// the page's other records (the page itself is still fetched through
  /// the buffer pool — the I/O cost model is unchanged).
  std::vector<uint16_t> node_offset_;
  size_t num_pages_ = 0;
};

/// Node-to-page placement policy for the CCAM file.
enum class CcamPlacement {
  /// Pack adjacency lists in Z-order of the node locations (default).
  kZOrder,
  /// Z-order packing followed by connectivity refinement passes that move
  /// nodes toward the page holding most of their neighbours — the spirit
  /// of CCAM's two-way partitioning [18].
  kZOrderRefined,
  /// Random packing; the ablation baseline showing what the clustering
  /// buys.
  kRandom,
};

/// Serializes a RoadNetwork into CCAM pages on a DiskManager.
class CcamFileBuilder {
 public:
  /// Packs all adjacency lists. The builder writes pages directly through
  /// the disk manager (construction I/O is not part of query measurements).
  static CcamFile Build(const RoadNetwork& net, DiskManager* disk,
                        CcamPlacement placement = CcamPlacement::kZOrder);
};

/// Fraction of edges whose two endpoints live on the same CCAM page — the
/// locality metric the placement policies optimize (akin to CCAM's
/// connectivity residue ratio).
double CcamConnectivityRatio(const RoadNetwork& net, const CcamFile& file);

/// Query-time view of a CCAM file: adjacency lists are fetched through the
/// buffer pool, so each cold access costs one page read (the C_G term of
/// the cost model in §3.2).
class CcamGraph {
 public:
  CcamGraph(const CcamFile* file, BufferPool* pool)
      : file_(file),
        pool_(pool),
        async_prefetch_(pool != nullptr && pool->disk()->async_enabled()) {}

  /// Appends node `id`'s adjacency list to `out` (cleared first).
  /// Propagates disk errors (IOError/Corruption) from the page fetch and
  /// reports a malformed node record as Corruption; `out` is empty on a
  /// non-OK return.
  Status GetAdjacency(NodeId id, std::vector<AdjacentEdge>* out) const;

  /// Best-effort readahead of the CCAM pages holding these nodes'
  /// adjacency records. Network expansion calls this with a sample of the
  /// frontier so Dijkstra's next settlements find their pages resident.
  /// Purely speculative: failures are dropped by the pool and never reach
  /// a query, and results are bit-identical with or without it.
  void PrefetchNodes(std::span<const NodeId> nodes) const;

  /// True when speculative reads complete off-thread (async disk engine).
  /// Issuers use this to run deeper prefetch windows: with fire-and-forget
  /// submission a bigger burst costs nothing on the query thread, whereas
  /// under sync I/O the same burst would block the expansion that issued
  /// it. Fixed at construction — the disk's engine never changes.
  bool async_prefetch() const { return async_prefetch_; }

  size_t num_nodes() const { return file_->num_nodes(); }

 private:
  const CcamFile* file_;
  BufferPool* pool_;
  const bool async_prefetch_;
};

}  // namespace dsks

#endif  // DSKS_GRAPH_CCAM_H_
