#ifndef DSKS_GRAPH_ROAD_NETWORK_H_
#define DSKS_GRAPH_ROAD_NETWORK_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/status.h"
#include "graph/types.h"
#include "spatial/mbr.h"

namespace dsks {

/// In-memory model of a weighted road network G = (V, E, W) (§2.1).
///
/// This is the canonical representation produced by generators and loaders;
/// query processing reads the *disk-resident* CCAM layout built from it
/// (graph/ccam.h), so that I/O is accounted for. The in-memory form remains
/// available for index construction and for brute-force reference
/// algorithms in tests.
///
/// Usage: AddNode/AddEdge, then Finalize() once to build the CSR adjacency;
/// the network is immutable afterwards.
class RoadNetwork {
 public:
  RoadNetwork() = default;

  RoadNetwork(const RoadNetwork&) = delete;
  RoadNetwork& operator=(const RoadNetwork&) = delete;
  RoadNetwork(RoadNetwork&&) = default;
  RoadNetwork& operator=(RoadNetwork&&) = default;

  NodeId AddNode(Point loc);

  /// Adds a bi-directional edge. The smaller node id becomes the reference
  /// node n1 (§2.1). If `weight` < 0 the Euclidean length is used as the
  /// weight (the paper's default, Example 2). Returns the edge id, or an
  /// error for self-loops / unknown nodes.
  Status AddEdge(NodeId a, NodeId b, double weight, EdgeId* out_id);

  /// Builds the adjacency structure. Must be called exactly once, after all
  /// AddNode/AddEdge calls.
  void Finalize();
  bool finalized() const { return finalized_; }

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }

  const Node& node(NodeId id) const { return nodes_[id]; }
  const Edge& edge(EdgeId id) const { return edges_[id]; }
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Adjacency list of `id`. Requires Finalize().
  std::span<const AdjacentEdge> Neighbors(NodeId id) const;

  /// Bounding box of the edge's two endpoints.
  Mbr EdgeMbr(EdgeId id) const;

  /// Geometric midpoint of the edge; its Z-order code keys the edge in the
  /// inverted-file B+trees (§3.1).
  Point EdgeCenter(EdgeId id) const;

  /// Cost from the reference node n1 to the point at geometric offset
  /// `offset` along edge `id`: w(n1,p) = w(n1,n2) * d(n1,p)/d(n1,n2).
  double WeightFromN1(EdgeId id, double offset) const;

  /// Cost from the far node n2 to the same point.
  double WeightFromN2(EdgeId id, double offset) const;

  /// Point at geometric offset `offset` from n1, linearly interpolated.
  Point PointOnEdge(EdgeId id, double offset) const;

  /// Geometric offset (from n1) of the closest point of edge `id` to `p`,
  /// and optionally the snapped point / distance.
  double ProjectOntoEdge(EdgeId id, const Point& p, Point* snapped,
                         double* euclidean_dist) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;

  /// CSR adjacency: adjacency_[adj_offsets_[v] .. adj_offsets_[v+1]).
  std::vector<AdjacentEdge> adjacency_;
  std::vector<uint32_t> adj_offsets_;
  bool finalized_ = false;
};

}  // namespace dsks

#endif  // DSKS_GRAPH_ROAD_NETWORK_H_
