#include "graph/road_network.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace dsks {

NodeId RoadNetwork::AddNode(Point loc) {
  DSKS_CHECK_MSG(!finalized_, "AddNode after Finalize");
  nodes_.push_back(Node{loc});
  return static_cast<NodeId>(nodes_.size() - 1);
}

Status RoadNetwork::AddEdge(NodeId a, NodeId b, double weight, EdgeId* out_id) {
  DSKS_CHECK_MSG(!finalized_, "AddEdge after Finalize");
  if (a >= nodes_.size() || b >= nodes_.size()) {
    return Status::InvalidArgument("edge endpoint does not exist");
  }
  if (a == b) {
    return Status::InvalidArgument("self-loop edges are not allowed");
  }
  Edge e;
  e.n1 = std::min(a, b);
  e.n2 = std::max(a, b);
  e.length = EuclideanDistance(nodes_[e.n1].loc, nodes_[e.n2].loc);
  e.weight = weight < 0.0 ? e.length : weight;
  if (e.length <= 0.0) {
    return Status::InvalidArgument("edge endpoints are co-located");
  }
  edges_.push_back(e);
  if (out_id != nullptr) {
    *out_id = static_cast<EdgeId>(edges_.size() - 1);
  }
  return Status::Ok();
}

void RoadNetwork::Finalize() {
  DSKS_CHECK_MSG(!finalized_, "Finalize called twice");
  std::vector<uint32_t> degree(nodes_.size() + 1, 0);
  for (const Edge& e : edges_) {
    ++degree[e.n1];
    ++degree[e.n2];
  }
  adj_offsets_.assign(nodes_.size() + 1, 0);
  for (size_t v = 0; v < nodes_.size(); ++v) {
    adj_offsets_[v + 1] = adj_offsets_[v] + degree[v];
  }
  adjacency_.resize(adj_offsets_.back());
  std::vector<uint32_t> cursor(adj_offsets_.begin(), adj_offsets_.end() - 1);
  for (EdgeId id = 0; id < edges_.size(); ++id) {
    const Edge& e = edges_[id];
    adjacency_[cursor[e.n1]++] = AdjacentEdge{e.n2, id, e.weight};
    adjacency_[cursor[e.n2]++] = AdjacentEdge{e.n1, id, e.weight};
  }
  finalized_ = true;
}

std::span<const AdjacentEdge> RoadNetwork::Neighbors(NodeId id) const {
  DSKS_CHECK_MSG(finalized_, "Neighbors before Finalize");
  DSKS_CHECK(id < nodes_.size());
  return {adjacency_.data() + adj_offsets_[id],
          adjacency_.data() + adj_offsets_[id + 1]};
}

Mbr RoadNetwork::EdgeMbr(EdgeId id) const {
  const Edge& e = edges_[id];
  return Mbr::FromPoints(nodes_[e.n1].loc, nodes_[e.n2].loc);
}

Point RoadNetwork::EdgeCenter(EdgeId id) const {
  const Edge& e = edges_[id];
  const Point& a = nodes_[e.n1].loc;
  const Point& b = nodes_[e.n2].loc;
  return Point{(a.x + b.x) / 2.0, (a.y + b.y) / 2.0};
}

double RoadNetwork::WeightFromN1(EdgeId id, double offset) const {
  const Edge& e = edges_[id];
  DSKS_CHECK(offset >= 0.0 && offset <= e.length);
  return e.weight * (offset / e.length);
}

double RoadNetwork::WeightFromN2(EdgeId id, double offset) const {
  return edges_[id].weight - WeightFromN1(id, offset);
}

Point RoadNetwork::PointOnEdge(EdgeId id, double offset) const {
  const Edge& e = edges_[id];
  const Point& a = nodes_[e.n1].loc;
  const Point& b = nodes_[e.n2].loc;
  const double t = offset / e.length;
  return Point{a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)};
}

double RoadNetwork::ProjectOntoEdge(EdgeId id, const Point& p, Point* snapped,
                                    double* euclidean_dist) const {
  const Edge& e = edges_[id];
  const Point& a = nodes_[e.n1].loc;
  const Point& b = nodes_[e.n2].loc;
  const double abx = b.x - a.x;
  const double aby = b.y - a.y;
  const double len_sq = abx * abx + aby * aby;
  double t = ((p.x - a.x) * abx + (p.y - a.y) * aby) / len_sq;
  t = std::clamp(t, 0.0, 1.0);
  Point s{a.x + t * abx, a.y + t * aby};
  if (snapped != nullptr) {
    *snapped = s;
  }
  if (euclidean_dist != nullptr) {
    *euclidean_dist = EuclideanDistance(p, s);
  }
  return t * e.length;
}

}  // namespace dsks
