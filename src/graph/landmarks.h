#ifndef DSKS_GRAPH_LANDMARKS_H_
#define DSKS_GRAPH_LANDMARKS_H_

#include <cstdint>
#include <vector>

#include "graph/dijkstra.h"
#include "graph/road_network.h"
#include "graph/types.h"

namespace dsks {

/// ALT-style landmark index (A*, Landmarks, Triangle inequality).
///
/// The paper deliberately avoids network pre-computation so that INE works
/// under any cost model (§3.2); this module implements the classical
/// alternative it alludes to, so the trade-off can be measured: pick L
/// landmarks by farthest-point sampling, store the exact distance from
/// every landmark to every node (L·|V| doubles, computed at build time),
/// and use |d(l,u) − d(l,v)| as an admissible lower bound to drive
/// goal-directed A* point-to-point queries.
///
/// Unlike the CCAM-based query processing, the landmark table is an
/// in-memory precomputation over the whole network — cheap to query,
/// expensive to build and tied to one weight function.
class LandmarkIndex {
 public:
  /// Builds the index with `num_landmarks` landmarks (>= 1). O(L · E log V).
  LandmarkIndex(const RoadNetwork* net, size_t num_landmarks);

  LandmarkIndex(const LandmarkIndex&) = delete;
  LandmarkIndex& operator=(const LandmarkIndex&) = delete;

  /// Admissible lower bound on δ(u, v) (node to node).
  double LowerBound(NodeId u, NodeId v) const;

  /// Exact node-to-node network distance via landmark-guided A*.
  /// `expanded` (optional) receives the number of settled nodes, the
  /// metric the ablation compares against plain Dijkstra.
  double Distance(NodeId u, NodeId v, uint64_t* expanded = nullptr) const;

  /// Exact location-to-location distance (Equation 1 composition over the
  /// endpoints plus the same-edge direct path).
  double Distance(const NetworkLocation& a, const NetworkLocation& b,
                  uint64_t* expanded = nullptr) const;

  size_t num_landmarks() const { return landmark_nodes_.size(); }
  const std::vector<NodeId>& landmark_nodes() const {
    return landmark_nodes_;
  }

  /// Bytes of the precomputed table — the price ALT pays that INE avoids.
  uint64_t SizeBytes() const;

 private:
  const RoadNetwork* net_;
  std::vector<NodeId> landmark_nodes_;
  /// dist_[l][v] = δ(landmark_l, v).
  std::vector<std::vector<double>> dist_;
};

}  // namespace dsks

#endif  // DSKS_GRAPH_LANDMARKS_H_
