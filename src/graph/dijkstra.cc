#include "graph/dijkstra.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "common/macros.h"

namespace dsks {

namespace {

using HeapEntry = std::pair<double, NodeId>;  // (distance, node), min-heap
using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

}  // namespace

std::vector<double> DijkstraFromNode(const RoadNetwork& net, NodeId source) {
  DSKS_CHECK(source < net.num_nodes());
  std::vector<double> dist(net.num_nodes(), kInfDistance);
  MinHeap heap;
  dist[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) {
      continue;  // stale entry
    }
    for (const AdjacentEdge& adj : net.Neighbors(v)) {
      const double nd = d + adj.weight;
      if (nd < dist[adj.neighbor]) {
        dist[adj.neighbor] = nd;
        heap.emplace(nd, adj.neighbor);
      }
    }
  }
  return dist;
}

FlatHashMap<NodeId, double> BoundedDijkstraFromLocation(
    const RoadNetwork& net, const NetworkLocation& from, double radius) {
  DSKS_CHECK(from.edge < net.num_edges());
  const Edge& e = net.edge(from.edge);
  FlatHashMap<NodeId, double> dist;
  FlatHashMap<NodeId, double> settled;
  dist.reserve(64);
  settled.reserve(64);
  MinHeap heap;

  auto relax = [&](NodeId v, double d) {
    const double* it = dist.find(v);
    if (it == nullptr || d < *it) {
      dist[v] = d;
      heap.emplace(d, v);
    }
  };
  relax(e.n1, net.WeightFromN1(from.edge, from.offset));
  relax(e.n2, net.WeightFromN2(from.edge, from.offset));

  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d > radius) {
      break;
    }
    if (settled.contains(v)) {
      continue;
    }
    settled.try_emplace(v, d);
    for (const AdjacentEdge& adj : net.Neighbors(v)) {
      const double nd = d + adj.weight;
      if (nd <= radius && !settled.contains(adj.neighbor)) {
        relax(adj.neighbor, nd);
      }
    }
  }
  return settled;
}

namespace {

/// Distance from a source whose node distances are in `node_dist` to a
/// target location, applying Equation 1 plus the same-edge direct path.
double CombineToLocation(const RoadNetwork& net,
                         const FlatHashMap<NodeId, double>& node_dist,
                         const NetworkLocation& src,
                         const NetworkLocation& dst) {
  const Edge& e = net.edge(dst.edge);
  double best = kInfDistance;
  if (const double* it = node_dist.find(e.n1)) {
    best = std::min(best, *it + net.WeightFromN1(dst.edge, dst.offset));
  }
  if (const double* it = node_dist.find(e.n2)) {
    best = std::min(best, *it + net.WeightFromN2(dst.edge, dst.offset));
  }
  if (src.edge == dst.edge) {
    const double direct = std::abs(net.WeightFromN1(dst.edge, dst.offset) -
                                   net.WeightFromN1(src.edge, src.offset));
    best = std::min(best, direct);
  }
  return best;
}

}  // namespace

double ExactNetworkDistance(const RoadNetwork& net, const NetworkLocation& a,
                            const NetworkLocation& b) {
  auto node_dist = BoundedDijkstraFromLocation(net, a, kInfDistance);
  return CombineToLocation(net, node_dist, a, b);
}

std::vector<double> DistancesToLocations(
    const RoadNetwork& net, const NetworkLocation& a,
    const std::vector<NetworkLocation>& objs) {
  auto node_dist = BoundedDijkstraFromLocation(net, a, kInfDistance);
  std::vector<double> out;
  out.reserve(objs.size());
  for (const NetworkLocation& loc : objs) {
    out.push_back(CombineToLocation(net, node_dist, a, loc));
  }
  return out;
}

std::vector<std::vector<double>> FloydWarshall(const RoadNetwork& net) {
  const size_t n = net.num_nodes();
  std::vector<std::vector<double>> d(n, std::vector<double>(n, kInfDistance));
  for (size_t v = 0; v < n; ++v) {
    d[v][v] = 0.0;
  }
  for (const Edge& e : net.edges()) {
    d[e.n1][e.n2] = std::min(d[e.n1][e.n2], e.weight);
    d[e.n2][e.n1] = std::min(d[e.n2][e.n1], e.weight);
  }
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (d[i][k] == kInfDistance) continue;
      for (size_t j = 0; j < n; ++j) {
        const double via = d[i][k] + d[k][j];
        if (via < d[i][j]) {
          d[i][j] = via;
        }
      }
    }
  }
  return d;
}

}  // namespace dsks
