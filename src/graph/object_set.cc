#include "graph/object_set.h"

#include <algorithm>

#include "common/macros.h"

namespace dsks {

Status ObjectSet::Add(EdgeId edge, double offset, std::vector<TermId> terms,
                      ObjectId* out_id) {
  DSKS_CHECK_MSG(!finalized_, "Add after Finalize");
  if (edge >= network_->num_edges()) {
    return Status::InvalidArgument("object on unknown edge");
  }
  const Edge& e = network_->edge(edge);
  if (offset < 0.0 || offset > e.length) {
    return Status::InvalidArgument("object offset outside edge");
  }
  if (terms.empty()) {
    return Status::InvalidArgument("object must have at least one keyword");
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());

  SpatioTextualObject obj;
  obj.id = static_cast<ObjectId>(objects_.size());
  obj.edge = edge;
  obj.offset = offset;
  obj.loc = network_->PointOnEdge(edge, offset);
  obj.terms = std::move(terms);
  objects_.push_back(std::move(obj));
  if (out_id != nullptr) {
    *out_id = objects_.back().id;
  }
  return Status::Ok();
}

void ObjectSet::Finalize() {
  DSKS_CHECK_MSG(!finalized_, "Finalize called twice");
  const size_t num_edges = network_->num_edges();
  std::vector<uint32_t> counts(num_edges + 1, 0);
  for (const auto& obj : objects_) {
    ++counts[obj.edge];
  }
  edge_offsets_.assign(num_edges + 1, 0);
  for (size_t e = 0; e < num_edges; ++e) {
    edge_offsets_[e + 1] = edge_offsets_[e] + counts[e];
  }
  edge_objects_.resize(objects_.size());
  std::vector<uint32_t> cursor(edge_offsets_.begin(), edge_offsets_.end() - 1);
  for (const auto& obj : objects_) {
    edge_objects_[cursor[obj.edge]++] = obj.id;
  }
  // Within each edge, order by offset from the reference node (the
  // "visiting order along the edge" of §3.3).
  for (size_t e = 0; e < num_edges; ++e) {
    std::sort(edge_objects_.begin() + edge_offsets_[e],
              edge_objects_.begin() + edge_offsets_[e + 1],
              [this](ObjectId a, ObjectId b) {
                if (objects_[a].offset != objects_[b].offset) {
                  return objects_[a].offset < objects_[b].offset;
                }
                return a < b;
              });
  }
  finalized_ = true;
}

std::span<const ObjectId> ObjectSet::ObjectsOnEdge(EdgeId edge) const {
  DSKS_CHECK_MSG(finalized_, "ObjectsOnEdge before Finalize");
  DSKS_CHECK(edge < network_->num_edges());
  return {edge_objects_.data() + edge_offsets_[edge],
          edge_objects_.data() + edge_offsets_[edge + 1]};
}

bool ObjectSet::ObjectHasTerm(ObjectId id, TermId t) const {
  const auto& terms = objects_[id].terms;
  return std::binary_search(terms.begin(), terms.end(), t);
}

bool ObjectSet::ObjectHasAllTerms(ObjectId id,
                                  std::span<const TermId> terms) const {
  for (TermId t : terms) {
    if (!ObjectHasTerm(id, t)) {
      return false;
    }
  }
  return true;
}

uint64_t ObjectSet::TotalTermOccurrences() const {
  uint64_t total = 0;
  for (const auto& obj : objects_) {
    total += obj.terms.size();
  }
  return total;
}

}  // namespace dsks
