#ifndef DSKS_GRAPH_TYPES_H_
#define DSKS_GRAPH_TYPES_H_

#include <cstdint>
#include <vector>

#include "spatial/point.h"

namespace dsks {

using NodeId = uint32_t;
using EdgeId = uint32_t;
using ObjectId = uint32_t;
using TermId = uint32_t;

inline constexpr NodeId kInvalidNodeId = UINT32_MAX;
inline constexpr EdgeId kInvalidEdgeId = UINT32_MAX;
inline constexpr ObjectId kInvalidObjectId = UINT32_MAX;
inline constexpr TermId kInvalidTermId = UINT32_MAX;

/// A road intersection.
struct Node {
  Point loc;
};

/// A bi-directional road segment between two intersections. Following the
/// paper (§2.1), the end-node with the smaller id (`n1`) is the *reference
/// node* of the edge; object offsets are measured from it. `weight` is the
/// traversal cost (distance or travel time) and `length` the geometric
/// length; the cost of a prefix of the edge is proportional to its length.
struct Edge {
  NodeId n1 = kInvalidNodeId;
  NodeId n2 = kInvalidNodeId;
  double weight = 0.0;
  double length = 0.0;
};

/// A spatio-textual object: a location on some edge plus a set of keywords
/// (term ids into a Vocabulary), kept sorted for O(log n) membership tests.
struct SpatioTextualObject {
  ObjectId id = kInvalidObjectId;
  EdgeId edge = kInvalidEdgeId;
  /// Geometric distance from the reference node n1 along the edge,
  /// in [0, edge.length].
  double offset = 0.0;
  Point loc;
  std::vector<TermId> terms;
};

/// One entry of a node's adjacency list.
struct AdjacentEdge {
  NodeId neighbor = kInvalidNodeId;
  EdgeId edge = kInvalidEdgeId;
  double weight = 0.0;
};

}  // namespace dsks

#endif  // DSKS_GRAPH_TYPES_H_
