#include "graph/ccam.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <random>

#include "common/macros.h"
#include "spatial/zorder.h"

namespace dsks {

namespace {

// On-page record layout:
//   u16 num_records
//   repeated: u32 node_id, u16 degree, degree * { u32 neighbor, u32 edge,
//                                                 f64 weight }
constexpr size_t kPageHeaderSize = sizeof(uint16_t);

// Cap on distinct pages per PrefetchNodes call; bounds both the stack
// array and the burst handed to the pool. Under a sync disk the burst
// blocks the caller, so it stays small; an async engine completes it
// off-thread, so the window doubles to keep the device busy further
// ahead of the expansion.
constexpr size_t kMaxPrefetchNodesSync = 32;
constexpr size_t kMaxPrefetchNodesAsync = 64;
constexpr size_t kRecordHeaderSize = sizeof(uint32_t) + sizeof(uint16_t);
constexpr size_t kNeighborSize = sizeof(uint32_t) * 2 + sizeof(double);

size_t RecordSize(size_t degree) {
  return kRecordHeaderSize + degree * kNeighborSize;
}

template <typename T>
void AppendRaw(char* base, size_t* pos, T value) {
  std::memcpy(base + *pos, &value, sizeof(T));
  *pos += sizeof(T);
}

template <typename T>
T ReadRaw(const char* base, size_t* pos) {
  T value;
  std::memcpy(&value, base + *pos, sizeof(T));
  *pos += sizeof(T);
  return value;
}

/// Greedily packs nodes, in the given order, into groups bounded by the
/// page payload capacity.
std::vector<std::vector<NodeId>> PackGroups(const RoadNetwork& net,
                                            const std::vector<NodeId>& order) {
  std::vector<std::vector<NodeId>> groups;
  size_t used = kPageSize;  // force a new group on the first node
  for (NodeId v : order) {
    const size_t rec = RecordSize(net.Neighbors(v).size());
    DSKS_CHECK_MSG(rec <= kPageSize - kPageHeaderSize,
                   "adjacency list larger than one page");
    if (used + rec > kPageSize) {
      groups.emplace_back();
      used = kPageHeaderSize;
    }
    groups.back().push_back(v);
    used += rec;
  }
  return groups;
}

/// Connectivity refinement: repeatedly move nodes to the group holding the
/// majority of their neighbours when that group has room. A bounded number
/// of passes keeps construction linear in practice.
void RefineGroups(const RoadNetwork& net,
                  std::vector<std::vector<NodeId>>* groups) {
  const size_t num_groups = groups->size();
  if (num_groups <= 1) {
    return;
  }
  std::vector<uint32_t> group_of(net.num_nodes());
  std::vector<size_t> used(num_groups, kPageHeaderSize);
  for (uint32_t g = 0; g < num_groups; ++g) {
    for (NodeId v : (*groups)[g]) {
      group_of[v] = g;
      used[g] += RecordSize(net.Neighbors(v).size());
    }
  }

  for (int pass = 0; pass < 3; ++pass) {
    size_t moves = 0;
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      const auto neighbors = net.Neighbors(v);
      if (neighbors.empty()) {
        continue;
      }
      // Count neighbours per candidate group.
      uint32_t here = group_of[v];
      size_t here_links = 0;
      uint32_t best_group = here;
      size_t best_links = 0;
      // Tiny degree: linear scan over neighbours per candidate is fine.
      for (const AdjacentEdge& a : neighbors) {
        const uint32_t g = group_of[a.neighbor];
        size_t links = 0;
        for (const AdjacentEdge& b : neighbors) {
          links += group_of[b.neighbor] == g ? 1 : 0;
        }
        if (g == here) {
          here_links = links;
        } else if (links > best_links ||
                   (links == best_links && g < best_group)) {
          best_links = links;
          best_group = g;
        }
      }
      if (best_group == here || best_links <= here_links) {
        continue;
      }
      const size_t rec = RecordSize(neighbors.size());
      if (used[best_group] + rec > kPageSize) {
        continue;  // no room; keep it simple (no swaps)
      }
      // Move v.
      auto& src = (*groups)[here];
      src.erase(std::find(src.begin(), src.end(), v));
      (*groups)[best_group].push_back(v);
      used[here] -= rec;
      used[best_group] += rec;
      group_of[v] = best_group;
      ++moves;
    }
    if (moves == 0) {
      break;
    }
  }
  // Drop groups that became empty.
  groups->erase(std::remove_if(groups->begin(), groups->end(),
                               [](const std::vector<NodeId>& g) {
                                 return g.empty();
                               }),
                groups->end());
}

}  // namespace

CcamFile CcamFileBuilder::Build(const RoadNetwork& net, DiskManager* disk,
                                CcamPlacement placement) {
  DSKS_CHECK_MSG(net.finalized(), "network must be finalized");
  CcamFile file;
  file.node_page_.assign(net.num_nodes(), kInvalidPageId);
  file.node_offset_.assign(net.num_nodes(), 0);
  if (net.num_nodes() == 0) {
    return file;
  }

  // Node order for the initial packing.
  std::vector<NodeId> order(net.num_nodes());
  std::iota(order.begin(), order.end(), NodeId{0});
  if (placement == CcamPlacement::kRandom) {
    std::mt19937_64 rng(0x5EED);
    std::shuffle(order.begin(), order.end(), rng);
  } else {
    std::vector<uint64_t> code(net.num_nodes());
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      code[v] = ZOrder::Encode(net.node(v).loc);
    }
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      return code[a] != code[b] ? code[a] < code[b] : a < b;
    });
  }

  std::vector<std::vector<NodeId>> groups = PackGroups(net, order);
  if (placement == CcamPlacement::kZOrderRefined) {
    RefineGroups(net, &groups);
  }

  // Write one page per group.
  char page[kPageSize];
  for (const std::vector<NodeId>& group : groups) {
    std::memset(page, 0, kPageSize);
    size_t pos = kPageHeaderSize;
    const auto count = static_cast<uint16_t>(group.size());
    std::memcpy(page, &count, sizeof(uint16_t));
    const PageId id = disk->AllocatePage();
    for (NodeId v : group) {
      file.node_page_[v] = id;
      file.node_offset_[v] = static_cast<uint16_t>(pos);
      const auto neighbors = net.Neighbors(v);
      AppendRaw(page, &pos, static_cast<uint32_t>(v));
      AppendRaw(page, &pos, static_cast<uint16_t>(neighbors.size()));
      for (const AdjacentEdge& adj : neighbors) {
        AppendRaw(page, &pos, static_cast<uint32_t>(adj.neighbor));
        AppendRaw(page, &pos, static_cast<uint32_t>(adj.edge));
        AppendRaw(page, &pos, adj.weight);
      }
      DSKS_CHECK(pos <= kPageSize);
    }
    const Status write_status = disk->WritePage(id, page);
    DSKS_CHECK_MSG(write_status.ok(), "CCAM build on a faulty disk");
    ++file.num_pages_;
  }
  return file;
}

double CcamConnectivityRatio(const RoadNetwork& net, const CcamFile& file) {
  if (net.num_edges() == 0) {
    return 0.0;
  }
  size_t co_located = 0;
  for (const Edge& e : net.edges()) {
    if (file.PageOfNode(e.n1) == file.PageOfNode(e.n2)) {
      ++co_located;
    }
  }
  return static_cast<double>(co_located) /
         static_cast<double>(net.num_edges());
}

void CcamGraph::PrefetchNodes(std::span<const NodeId> nodes) const {
  if (nodes.empty()) {
    return;
  }
  // Map node → page and drop duplicates (frontier neighbours often share a
  // page — that locality is the whole point of CCAM packing). The window
  // is small, so the quadratic dedup beats hashing.
  const size_t cap =
      async_prefetch() ? kMaxPrefetchNodesAsync : kMaxPrefetchNodesSync;
  PageId pages[kMaxPrefetchNodesAsync];
  size_t n = 0;
  for (const NodeId id : nodes) {
    if (n >= cap) {
      break;
    }
    const PageId pid = file_->PageOfNode(id);
    if (pid == kInvalidPageId) {
      continue;
    }
    bool seen = false;
    for (size_t i = 0; i < n; ++i) {
      if (pages[i] == pid) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      pages[n++] = pid;
    }
  }
  if (n > 0) {
    pool_->Prefetch(std::span<const PageId>(pages, n));
  }
}

Status CcamGraph::GetAdjacency(NodeId id,
                               std::vector<AdjacentEdge>* out) const {
  out->clear();
  const PageId pid = file_->PageOfNode(id);
  DSKS_CHECK_MSG(pid != kInvalidPageId, "node has no CCAM page");
  PageGuard guard;
  DSKS_RETURN_IF_ERROR(PageGuard::Fetch(pool_, pid, &guard));
  const char* data = guard.data();
  // The page directory stores the record's offset, so no scan over the
  // page's other records is needed; the neighbor entries are packed in
  // AdjacentEdge's exact layout and bulk-copied.
  static_assert(sizeof(AdjacentEdge) == kNeighborSize &&
                    offsetof(AdjacentEdge, neighbor) == 0 &&
                    offsetof(AdjacentEdge, edge) == sizeof(uint32_t) &&
                    offsetof(AdjacentEdge, weight) == 2 * sizeof(uint32_t),
                "on-page neighbor entries mirror AdjacentEdge");
  size_t pos = file_->OffsetOfNode(id);
  const auto node = ReadRaw<uint32_t>(data, &pos);
  if (node != id) {
    return Status::Corruption("node record missing from its CCAM page");
  }
  const auto degree = ReadRaw<uint16_t>(data, &pos);
  if (pos + size_t{degree} * kNeighborSize > kPageSize) {
    return Status::Corruption("CCAM adjacency record overruns its page");
  }
  out->resize(degree);
  std::memcpy(out->data(), data + pos, size_t{degree} * kNeighborSize);
  return Status::Ok();
}

}  // namespace dsks
