#ifndef DSKS_CORE_QUERY_CONTEXT_H_
#define DSKS_CORE_QUERY_CONTEXT_H_

#include <chrono>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/flat_containers.h"
#include "graph/types.h"
#include "index/object_index.h"
#include "obs/io_account.h"

namespace dsks {

namespace obs {
class QueryTrace;
}  // namespace obs

/// Per-object search state of the incremental SK search (Algorithm 3):
/// the best known distance plus the object's edge placement, enough to
/// re-derive its network location without reloading the edge.
struct SkObjectState {
  double best = 0.0;
  bool emitted = false;
  EdgeId edge = kInvalidEdgeId;
  NodeId n1 = kInvalidNodeId;
  NodeId n2 = kInvalidNodeId;
  double w1 = 0.0;
  double edge_weight = 0.0;
};

/// One processed edge: weight plus the matching objects loaded from the
/// index. Slots live in a pool so the object vectors keep their capacity
/// across queries.
struct LoadedEdgeSlot {
  double weight = 0.0;
  std::vector<LoadedObject> objects;
};

/// Scratch for one IncrementalSkSearch execution. Everything here is
/// reset-not-freed between queries: epoch arrays invalidate in O(1), flat
/// maps and heaps clear without releasing their backing storage, and the
/// edge pool recycles its per-edge object vectors.
struct SkSearchScratch {
  EpochArray<double> tentative;  // node -> best tentative distance
  EpochArray<double> settled;    // node -> final distance
  ReusableMinHeap<std::pair<double, uint32_t>> node_heap;
  ReusableMinHeap<std::pair<double, uint32_t>> object_heap;
  FlatHashMap<EdgeId, uint32_t> edge_slot;  // edge -> index into edge_pool
  std::vector<LoadedEdgeSlot> edge_pool;    // [0, edge_pool_used) are live
  size_t edge_pool_used = 0;
  FlatHashMap<ObjectId, SkObjectState> object_state;
  std::vector<AdjacentEdge> adjacency;  // GetAdjacency output buffer
};

/// Scratch for one PairwiseDistanceOracle. Holds the shared-expansion
/// shortest-path-tree state (distances, parent edges, settle order and
/// subtree intervals) plus a pool of per-object fallback distance fields.
struct OracleScratch {
  // Shared expansion from the query location.
  EpochArray<double> shared_dist;       // node -> settled distance from q
  EpochArray<double> shared_tentative;  // node -> tentative during the pass
  EpochArray<EdgeId> pending_edge;      // best relaxing edge while tentative
  EpochArray<NodeId> pending_parent;    // best relaxing parent node
  EpochArray<EdgeId> parent_edge;       // edge that settled the node
  EpochArray<uint32_t> local_index;     // node -> index into settle order
  std::vector<NodeId> order;            // nodes in settle order
  std::vector<uint32_t> parent_local;   // parent's local index (or UINT32_MAX)
  std::vector<uint32_t> tin, tout;      // subtree (Euler) intervals per local
  std::vector<uint32_t> child_head;     // children CSR offsets (size n+1)
  std::vector<uint32_t> child_cursor;   // CSR fill cursors
  std::vector<uint32_t> child_list;     // children CSR payload
  std::vector<std::pair<uint32_t, uint32_t>> dfs_stack;

  ReusableMinHeap<std::pair<double, uint32_t>> heap;  // shared pass + fields
  EpochArray<double> field_tentative;   // tentative map for fallback fields
  std::vector<AdjacentEdge> adjacency;  // GetAdjacency output buffer

  // Per-object fallback fields, pooled so their slot arrays survive drops.
  std::vector<FlatHashMap<NodeId, double>> field_pool;
  std::vector<uint32_t> free_fields;  // indices of unused pool entries
  FlatHashMap<ObjectId, uint32_t> field_index;  // object -> pool index

  // Memoized pair distances, keyed by (canonical id << 32 | other id).
  // Distances are exact and independent of field lifetimes, so entries
  // survive DropField and are only cleared between queries.
  FlatHashMap<uint64_t, double> pair_cache;
};

/// Reusable per-thread query scratch. One QueryContext serves one query at
/// a time (one SK search plus one distance oracle — the diversified search
/// uses both concurrently); QueryExecutor owns one per worker thread, the
/// CLI and sequential harness own one per loop. Consumers that get no
/// context allocate a private one, which still beats per-query
/// unordered_maps but misses the cross-query reuse.
struct QueryContext {
  SkSearchScratch sk_search;
  OracleScratch oracle;

  /// Optional per-query trace sink. Null (the default) means tracing is
  /// off and every span hook reduces to a pointer null test; when set, the
  /// search phases record spans into it. The pointer is borrowed — the
  /// trace must outlive the query that uses this context.
  obs::QueryTrace* trace = nullptr;

  /// Per-query I/O attribution account. Database::Run* installs it as the
  /// thread's charge target (obs::ScopedIoAccount) for the query's
  /// duration, so the storage layer adds exactly this query's pool/disk
  /// events here — concurrent queries charge their own contexts. The
  /// counters accumulate across queries on this context (like the global
  /// stats do); consumers snapshot before/after and difference. Only the
  /// thread running the context's query may touch them.
  obs::IoCounters io;

  /// Cooperative cancellation deadline as a steady-clock timestamp in
  /// nanoseconds, 0 meaning "no deadline" (the default — benches and tests
  /// run deadline-free). The query service arms it per request before the
  /// task runs; the search and oracle expansion loops poll DeadlineExceeded
  /// once per settle batch and stop with Status::Cancelled, so partial work
  /// up to the cancellation point stays exactly accounted (trace spans, I/O
  /// counters).
  int64_t deadline_steady_ns = 0;

  bool DeadlineExceeded() const {
    return deadline_steady_ns != 0 &&
           std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
                   .count() >= deadline_steady_ns;
  }

  // Debug-build guards against two live consumers sharing one section.
  bool sk_search_in_use = false;
  bool oracle_in_use = false;
};

/// The deadline value for "`millis` from now" on the steady clock; pass the
/// result to QueryContext::deadline_steady_ns. Non-positive millis arms an
/// already-expired deadline (the first check cancels).
inline int64_t DeadlineFromNowMillis(double millis) {
  const int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now().time_since_epoch())
                          .count();
  return now + static_cast<int64_t>(millis * 1e6);
}

}  // namespace dsks

#endif  // DSKS_CORE_QUERY_CONTEXT_H_
