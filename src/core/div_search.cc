#include "core/div_search.h"

#include <algorithm>

#include "common/flat_containers.h"
#include "common/macros.h"
#include "core/core_pairs.h"
#include "core/diversify.h"
#include "obs/trace.h"

namespace dsks {

namespace {

ThetaFn MakeThetaFn(const Objective* objective,
                    PairwiseDistanceOracle* oracle) {
  return [objective, oracle](const SkResult& a, const SkResult& b) {
    return objective->Theta(a.dist, b.dist, oracle->Distance(a, b));
  };
}

/// θ is monotone increasing in the pairwise distance, so feeding it the
/// oracle's cheap distance upper bound yields an upper bound on θ — without
/// ever triggering a Dijkstra expansion.
ThetaFn MakeThetaUbFn(const Objective* objective,
                      const PairwiseDistanceOracle* oracle) {
  return [objective, oracle](const SkResult& a, const SkResult& b) {
    return objective->Theta(a.dist, b.dist, oracle->DistanceUpperBound(a, b));
  };
}

/// Deterministic stand-in for Algorithm 1's "arbitrary" odd-k filler: the
/// closest unselected candidate.
void AddOddExtra(const std::vector<SkResult>& pool,
                 std::vector<SkResult>* selected) {
  const SkResult* best = nullptr;
  for (const SkResult& r : pool) {
    const bool taken =
        std::any_of(selected->begin(), selected->end(),
                    [&r](const SkResult& s) { return s.id == r.id; });
    if (taken) {
      continue;
    }
    if (best == nullptr || r.dist < best->dist ||
        (r.dist == best->dist && r.id < best->id)) {
      best = &r;
    }
  }
  if (best != nullptr) {
    selected->push_back(*best);
  }
}

void FillOracleStats(const PairwiseDistanceOracle& oracle,
                     DivSearchStats* stats) {
  stats->distance_fields = oracle.fields_computed();
  stats->oracle_pairs = oracle.stats().pairs_evaluated;
  stats->oracle_pairs_shared = oracle.stats().pairs_shared_exact;
  stats->oracle_shared_expansions = oracle.stats().shared_expansions;
}

/// The search's error (it stops the candidate stream) takes precedence
/// over the oracle's (it only degrades pairwise distances).
Status MergeStatus(const IncrementalSkSearch& search,
                   const PairwiseDistanceOracle& oracle) {
  if (!search.status().ok()) {
    return search.status();
  }
  return oracle.status();
}

}  // namespace

double EvaluateObjective(const Objective& objective,
                         PairwiseDistanceOracle* oracle,
                         const std::vector<SkResult>& selected) {
  const size_t k = selected.size();
  if (k < 2) {
    return 0.0;
  }
  std::vector<double> dq;
  dq.reserve(k);
  std::vector<double> pw(k * k, 0.0);
  for (size_t u = 0; u < k; ++u) {
    dq.push_back(selected[u].dist);
    for (size_t v = 0; v < k; ++v) {
      if (u != v) {
        pw[u * k + v] = oracle->Distance(selected[u], selected[v]);
      }
    }
  }
  return objective.ObjectiveValue(dq, pw);
}

DivSearchOutput DiversifiedSearchSEQ(IncrementalSkSearch* search,
                                     const DivQuery& query,
                                     PairwiseDistanceOracle* oracle) {
  const Objective objective(query.lambda, query.sk.delta_max);
  const ThetaFn theta = MakeThetaFn(&objective, oracle);
  const ThetaFn theta_ub = MakeThetaUbFn(&objective, oracle);

  DivSearchOutput out;
  std::vector<SkResult> candidates;
  SkResult res;
  while (search->Next(&res)) {
    candidates.push_back(res);
  }
  out.stats.candidates = candidates.size();

  {
    // The greedy itself calls into the oracle, whose Dijkstra phases nest
    // as children and keep their own time/I/O out of this span's exclusive
    // share.
    obs::ScopedSpan span(search->trace(), obs::Phase::kGreedySelection);
    GreedyDivResult greedy =
        GreedyDiversify(candidates, query.k, theta, &theta_ub);
    out.selected = std::move(greedy.selected);
    out.objective = EvaluateObjective(objective, oracle, out.selected);
  }
  out.status = MergeStatus(*search, *oracle);
  FillOracleStats(*oracle, &out.stats);
  return out;
}

DivSearchOutput DiversifiedSearchCOM(IncrementalSkSearch* search,
                                     const DivQuery& query,
                                     PairwiseDistanceOracle* oracle) {
  const Objective objective(query.lambda, query.sk.delta_max);
  const ThetaFn theta = MakeThetaFn(&objective, oracle);
  const ThetaFn theta_ub = MakeThetaUbFn(&objective, oracle);
  DivSearchOutput out;

  // Phase 1: the first k arrivals initialize CP and θ_T with the plain
  // greedy (Algorithm 6 line 1).
  std::vector<SkResult> first;
  SkResult res;
  while (first.size() < query.k && search->Next(&res)) {
    oracle->EnsureField(res);
    first.push_back(res);
  }
  out.stats.candidates = first.size();
  if (query.k < 2 && !first.empty()) {
    // k = 1 has no pairs to maintain; the closest object is the answer.
    search->Terminate();
    out.selected = {first[0]};
    out.stats.early_terminated = true;
    out.status = MergeStatus(*search, *oracle);
    FillOracleStats(*oracle, &out.stats);
    return out;
  }
  if (first.size() < query.k) {
    // Fewer candidates than requested: everything is the answer.
    out.selected = first;
    out.objective = EvaluateObjective(objective, oracle, out.selected);
    out.status = MergeStatus(*search, *oracle);
    FillOracleStats(*oracle, &out.stats);
    return out;
  }

  FlatHashMap<ObjectId, SkResult> actives;
  std::vector<ObjectId> active_ids;
  FlatHashMap<ObjectId, double> max_pair_theta;
  for (const SkResult& r : first) {
    actives.try_emplace(r.id, r);
    active_ids.push_back(r.id);
    max_pair_theta.try_emplace(r.id, 0.0);
  }
  // max_pair_theta is tracked with θ *upper bounds*, not exact values.
  // It is only ever compared against θ_T to decide removals, and an
  // inflated maximum can only delay a removal, never cause one — the
  // active set stays a superset of the exact-tracking run. Extra-kept
  // objects cannot change the outcome: OnArrival compares exact θ against
  // θ_T, and an object whose every seen pair was below θ_T when it would
  // have been removed stays below the (monotone) threshold forever, so it
  // never enters the core; the odd-k filler picks the closest active,
  // which the superset preserves. See DESIGN.md.
  for (size_t i = 0; i < first.size(); ++i) {
    for (size_t j = i + 1; j < first.size(); ++j) {
      const double th = theta_ub(first[i], first[j]);
      max_pair_theta[first[i].id] = std::max(max_pair_theta[first[i].id], th);
      max_pair_theta[first[j].id] = std::max(max_pair_theta[first[j].id], th);
    }
  }

  CorePairSet cp(query.k / 2);
  {
    obs::ScopedSpan span(search->trace(), obs::Phase::kGreedySelection);
    GreedyDivResult greedy = GreedyDiversify(first, query.k, theta, &theta_ub);
    cp.Init(std::move(greedy.pairs));
  }

  const CorePairSet::ThetaById theta_by_id = [&](ObjectId x, ObjectId y) {
    const SkResult* ix = actives.find(x);
    const SkResult* iy = actives.find(y);
    DSKS_CHECK(ix != nullptr && iy != nullptr);
    return theta(*ix, *iy);
  };
  const CorePairSet::ThetaById theta_ub_by_id = [&](ObjectId x, ObjectId y) {
    const SkResult* ix = actives.find(x);
    const SkResult* iy = actives.find(y);
    DSKS_CHECK(ix != nullptr && iy != nullptr);
    return theta_ub(*ix, *iy);
  };

  // Phase 2: incremental consumption with diversity pruning.
  while (cp.full() && search->Next(&res)) {
    ++out.stats.candidates;
    oracle->EnsureField(res);
    // Upper bounds again (see the phase-1 comment): no exact pairwise
    // distances are computed just to maintain the removal bookkeeping.
    double res_max = 0.0;
    for (ObjectId id : active_ids) {
      const double th = theta_ub(res, actives.at(id));
      double& mx = max_pair_theta.at(id);
      mx = std::max(mx, th);
      res_max = std::max(res_max, th);
    }
    max_pair_theta.try_emplace(res.id, res_max);
    actives.try_emplace(res.id, res);
    active_ids.push_back(res.id);

    {
      obs::ScopedSpan span(search->trace(), obs::Phase::kGreedySelection);
      cp.OnArrival(res.id, active_ids, theta_by_id, &theta_ub_by_id);
    }

    const double gamma = res.dist;
    const double theta_t = cp.threshold().theta;
    if (objective.ThetaUpperBoundUnseenPair(gamma) >= theta_t) {
      continue;  // unseen pairs can still beat θ_T
    }
    bool can_terminate = true;
    std::vector<ObjectId> removals;
    for (ObjectId id : active_ids) {
      const SkResult& oi = actives.at(id);
      const double ub = objective.ThetaUpperBoundSeenUnseen(oi.dist, gamma);
      if (ub >= theta_t) {
        can_terminate = false;  // oi may pair with an unseen object
        break;
      }
      if (!cp.IsCore(id) && max_pair_theta.at(id) < theta_t) {
        removals.push_back(id);  // oi can never become core again
      }
    }
    if (can_terminate) {
      search->Terminate();
      out.stats.early_terminated = true;
      break;
    }
    for (ObjectId id : removals) {
      actives.erase(id);
      max_pair_theta.erase(id);
      oracle->DropField(id);
      active_ids.erase(
          std::find(active_ids.begin(), active_ids.end(), id));
      ++out.stats.pruned_objects;
    }
  }

  // Assemble the answer: the core objects, plus the closest non-core
  // active when k is odd.
  {
    obs::ScopedSpan span(search->trace(), obs::Phase::kGreedySelection);
    for (ObjectId id : cp.CoreObjects()) {
      out.selected.push_back(actives.at(id));
    }
    if (query.k % 2 == 1) {
      std::vector<SkResult> pool;
      pool.reserve(actives.size());
      for (const auto& [id, r] : actives) {
        pool.push_back(r);
      }
      std::sort(pool.begin(), pool.end(), [](const SkResult& a,
                                             const SkResult& b) {
        return a.dist != b.dist ? a.dist < b.dist : a.id < b.id;
      });
      AddOddExtra(pool, &out.selected);
    }
    out.objective = EvaluateObjective(objective, oracle, out.selected);
  }
  out.status = MergeStatus(*search, *oracle);
  FillOracleStats(*oracle, &out.stats);
  return out;
}

}  // namespace dsks
