#ifndef DSKS_CORE_DIVERSIFY_H_
#define DSKS_CORE_DIVERSIFY_H_

#include <functional>
#include <utility>
#include <vector>

#include "core/query.h"
#include "graph/types.h"

namespace dsks {

/// A candidate pair with its diversification distance, ordered by a total
/// order (θ descending, then object ids) so that the greedy (Algorithm 1)
/// and the incremental maintenance (Algorithm 5) break ties identically.
struct ScoredPair {
  double theta = 0.0;
  ObjectId a = kInvalidObjectId;  // smaller id
  ObjectId b = kInvalidObjectId;  // larger id

  static ScoredPair Make(double theta, ObjectId x, ObjectId y);

  /// True if *this ranks strictly better (is picked earlier) than `other`.
  bool Better(const ScoredPair& other) const;
};

/// θ for a pair of result objects, as a function supplied by the caller
/// (it closes over the Objective and the distance oracle).
using ThetaFn =
    std::function<double(const SkResult&, const SkResult&)>;

/// Output of the greedy diversification.
struct GreedyDivResult {
  /// The core pairs in selection order (best first); ⌊k/2⌋ of them (or
  /// fewer if not enough objects).
  std::vector<ScoredPair> pairs;
  /// The selected objects: the pairs' members plus, for odd k, one extra
  /// object (the remaining object with the smallest δ(q, o)).
  std::vector<SkResult> selected;
};

/// Algorithm 1: repeatedly pick the remaining pair with the largest
/// diversification distance; each object joins at most one pair. A
/// 2-approximation of max f(S) [Gollapudi & Sharma].
///
/// `theta_ub`, when given, must satisfy theta_ub(u,v) >= theta(u,v) for
/// every pair. Pairs whose upper bound is *strictly* below the current
/// round's best are skipped without evaluating θ exactly — ties still
/// evaluate, so the chosen pairs (including tie-breaks) are identical to
/// the unbounded run.
GreedyDivResult GreedyDiversify(const std::vector<SkResult>& candidates,
                                size_t k, const ThetaFn& theta,
                                const ThetaFn* theta_ub = nullptr);

/// Exhaustive optimum of f(S) over all k-subsets, for the approximation
/// tests; exponential, use only on tiny instances.
std::vector<SkResult> BruteForceOptimal(
    const std::vector<SkResult>& candidates, size_t k, double lambda,
    double delta_max, const ThetaFn& theta,
    const std::function<double(const SkResult&, const SkResult&)>& dist);

}  // namespace dsks

#endif  // DSKS_CORE_DIVERSIFY_H_
