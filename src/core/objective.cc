#include "core/objective.h"

namespace dsks {

double Objective::ObjectiveValue(std::span<const double> dist_q,
                                 std::span<const double> pairwise) const {
  const size_t k = dist_q.size();
  DSKS_CHECK_MSG(k >= 2, "objective needs at least two objects");
  DSKS_CHECK(pairwise.size() == k * k);
  double total = 0.0;
  for (size_t u = 0; u < k; ++u) {
    for (size_t v = 0; v < k; ++v) {
      if (u == v) continue;
      total += Theta(dist_q[u], dist_q[v], pairwise[u * k + v]);
    }
  }
  return total / (static_cast<double>(k) * static_cast<double>(k - 1));
}

}  // namespace dsks
