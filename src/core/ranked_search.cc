#include "core/ranked_search.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "common/macros.h"

namespace dsks {

Status BooleanKnnSearch(const CcamGraph* graph, ObjectIndex* index,
                        const SkQuery& query,
                        const QueryEdgeInfo& query_edge, size_t k,
                        std::vector<SkResult>* out) {
  out->clear();
  IncrementalSkSearch search(graph, index, query, query_edge);
  SkResult r;
  while (out->size() < k && search.Next(&r)) {
    out->push_back(r);
  }
  return search.status();
}

namespace {

using HeapEntry = std::pair<double, uint32_t>;
using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

struct PendingObject {
  double best = kInfDistance;
  uint32_t matched = 0;
  bool scored = false;
};

}  // namespace

Status RankedSkSearch(const CcamGraph* graph, ObjectIndex* index,
                      const RankedQuery& query,
                      const QueryEdgeInfo& query_edge,
                      std::vector<RankedResult>* out,
                      RankedSearchStats* stats) {
  out->clear();
  const double delta_max = query.sk.delta_max;
  const double alpha = query.alpha;
  const auto num_terms = static_cast<double>(query.sk.terms.size());
  DSKS_CHECK_MSG(!query.sk.terms.empty(), "ranked query needs keywords");
  DSKS_CHECK_MSG(query.k > 0, "ranked query needs k > 0");

  RankedSearchStats local_stats;
  Status status;  // sticky: the first storage error stops the expansion
  std::unordered_map<NodeId, double> tentative;
  std::unordered_map<NodeId, double> settled;
  std::unordered_map<EdgeId, std::vector<ObjectIndex::LoadedObjectUnion>>
      loaded;
  std::unordered_map<ObjectId, PendingObject> pending;
  MinHeap node_heap;
  MinHeap object_heap;  // keyed by best-known network distance

  // Top-k kept as a max-heap over scores (worst on top).
  auto better = [](const RankedResult& a, const RankedResult& b) {
    return a.score != b.score ? a.score < b.score : a.id < b.id;
  };
  std::vector<RankedResult> topk;  // heap via std::push_heap with `better`

  auto relax = [&](NodeId v, double d) {
    if (d > delta_max || settled.count(v) != 0) {
      return;
    }
    auto it = tentative.find(v);
    if (it == tentative.end() || d < it->second) {
      tentative[v] = d;
      node_heap.emplace(d, v);
    }
  };
  auto update_object = [&](const ObjectIndex::LoadedObjectUnion& o,
                           double dist) {
    PendingObject& po = pending[o.id];
    po.matched = o.matched;
    if (dist < po.best) {
      DSKS_CHECK(!po.scored);
      po.best = dist;
      object_heap.emplace(dist, o.id);
    }
  };
  auto score_object = [&](ObjectId id, const PendingObject& po) {
    if (po.best > delta_max) {
      return;
    }
    ++local_stats.objects_scored;
    RankedResult r;
    r.id = id;
    r.dist = po.best;
    r.matched = po.matched;
    r.score = alpha * (po.best / delta_max) +
              (1.0 - alpha) *
                  (1.0 - static_cast<double>(po.matched) / num_terms);
    if (topk.size() < query.k) {
      topk.push_back(r);
      std::push_heap(topk.begin(), topk.end(), better);
    } else if (better(r, topk.front())) {
      std::pop_heap(topk.begin(), topk.end(), better);
      topk.back() = r;
      std::push_heap(topk.begin(), topk.end(), better);
    }
  };
  auto process_edge = [&](EdgeId e, double w, NodeId v, NodeId nb, double d) {
    auto it = loaded.find(e);
    if (it == loaded.end()) {
      it = loaded.emplace(e, std::vector<ObjectIndex::LoadedObjectUnion>())
               .first;
      status = index->LoadObjectsUnion(e, query.sk.terms, &it->second);
      if (!status.ok()) {
        loaded.erase(it);
        return;
      }
    }
    const bool v_is_n1 = v < nb;
    for (const auto& o : it->second) {
      update_object(o, d + (v_is_n1 ? o.w1 : w - o.w1));
    }
  };

  // Seed from the query edge.
  relax(query_edge.n1, query_edge.w1);
  relax(query_edge.n2, query_edge.weight - query_edge.w1);
  {
    auto& objs = loaded[query_edge.edge];
    status = index->LoadObjectsUnion(query_edge.edge, query.sk.terms, &objs);
    for (const auto& o : objs) {
      update_object(o, std::abs(o.w1 - query_edge.w1));
    }
  }

  auto flush_objects = [&](double delta_t) {
    while (!object_heap.empty()) {
      const auto [d, id] = object_heap.top();
      if (d > delta_t) {
        break;
      }
      object_heap.pop();
      PendingObject& po = pending[id];
      if (po.scored || d != po.best) {
        continue;
      }
      po.scored = true;
      score_object(id, po);
    }
  };

  while (status.ok()) {
    // Fresh node frontier (δT).
    double delta_t = kInfDistance;
    while (!node_heap.empty()) {
      const auto& [d, v] = node_heap.top();
      if (settled.count(v) != 0 || tentative[v] != d) {
        node_heap.pop();
        continue;
      }
      delta_t = d;
      break;
    }
    flush_objects(delta_t);

    // Threshold termination: no unfinalized object can have distance
    // below δT, hence no score below α·δT/δmax.
    if (topk.size() == query.k &&
        alpha * (delta_t / delta_max) > topk.front().score) {
      local_stats.early_terminated = true;
      break;
    }
    if (delta_t == kInfDistance) {
      break;  // expansion exhausted; all objects flushed
    }

    const NodeId v = node_heap.top().second;
    const double d = node_heap.top().first;
    node_heap.pop();
    settled.emplace(v, d);
    ++local_stats.nodes_settled;
    std::vector<AdjacentEdge> adjacency;
    status = graph->GetAdjacency(v, &adjacency);
    for (const AdjacentEdge& adj : adjacency) {
      if (settled.count(adj.neighbor) == 0) {
        relax(adj.neighbor, d + adj.weight);
      }
      process_edge(adj.edge, adj.weight, v, adj.neighbor, d);
      if (!status.ok()) {
        break;
      }
    }
  }

  if (stats != nullptr) {
    *stats = local_stats;
  }
  DSKS_RETURN_IF_ERROR(status);
  std::sort(topk.begin(), topk.end(), better);
  *out = std::move(topk);
  return Status::Ok();
}

}  // namespace dsks
