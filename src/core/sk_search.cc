#include "core/sk_search.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "obs/trace.h"

namespace dsks {

namespace {

/// Every kPrefetchInterval settles, hand the buffer pool the CCAM pages of
/// the heap's shallow layers — a sample of the nodes Dijkstra settles next.
/// Purely advisory: the pool drops failures and the expansion never waits,
/// so settled distances are bit-identical with prefetching on or off.
/// Under an async disk engine the submission is fire-and-forget, so the
/// issuer runs further ahead: twice the sample at half the interval keeps
/// the in-flight window full without ever blocking a settle.
constexpr uint64_t kPrefetchIntervalSync = 32;
constexpr uint64_t kPrefetchIntervalAsync = 16;
constexpr size_t kFrontierSampleSync = 16;
constexpr size_t kFrontierSampleAsync = 32;

uint64_t PrefetchInterval(const CcamGraph& graph) {
  return graph.async_prefetch() ? kPrefetchIntervalAsync
                                : kPrefetchIntervalSync;
}

void PrefetchFrontier(const CcamGraph& graph,
                      const ReusableMinHeap<std::pair<double, uint32_t>>& heap) {
  const size_t sample =
      graph.async_prefetch() ? kFrontierSampleAsync : kFrontierSampleSync;
  const std::vector<std::pair<double, uint32_t>>& entries = heap.storage();
  const size_t n = entries.size() < sample ? entries.size() : sample;
  if (n == 0) {
    return;
  }
  NodeId nodes[kFrontierSampleAsync];
  for (size_t i = 0; i < n; ++i) {
    nodes[i] = entries[i].second;
  }
  graph.PrefetchNodes(std::span<const NodeId>(nodes, n));
}

}  // namespace

IncrementalSkSearch::IncrementalSkSearch(const CcamGraph* graph,
                                         ObjectIndex* index,
                                         const SkQuery& query,
                                         const QueryEdgeInfo& query_edge,
                                         QueryContext* ctx)
    : graph_(graph),
      index_(index),
      delta_max_(query.delta_max),
      terms_(query.terms) {
  DSKS_CHECK_MSG(!terms_.empty(), "SK query needs at least one keyword");
  DSKS_CHECK_MSG(delta_max_ > 0.0, "delta_max must be positive");
  DSKS_CHECK(std::is_sorted(terms_.begin(), terms_.end()));
  DSKS_CHECK_MSG(query_edge.n1 < query_edge.n2,
                 "query edge endpoints must be (reference, far) ordered");

  if (ctx == nullptr) {
    owned_ctx_ = std::make_unique<QueryContext>();
    ctx = owned_ctx_.get();
  }
  ctx_ = ctx;
  s_ = &ctx_->sk_search;
  DSKS_DCHECK_MSG(!ctx_->sk_search_in_use,
                  "QueryContext serves one SK search at a time");
  ctx_->sk_search_in_use = true;

  // Reset-not-free: epoch bumps and clears that keep all capacity from the
  // previous query on this context.
  s_->tentative.EnsureSize(graph_->num_nodes());
  s_->settled.EnsureSize(graph_->num_nodes());
  s_->tentative.Reset();
  s_->settled.Reset();
  s_->node_heap.clear();
  s_->object_heap.clear();
  s_->edge_slot.clear();
  s_->edge_pool_used = 0;
  s_->object_state.clear();
  if (s_->adjacency.capacity() == 0) {
    s_->adjacency.reserve(16);
  }

  // Seed Dijkstra with the two endpoints of the query's edge.
  RelaxNode(query_edge.n1, query_edge.w1);
  RelaxNode(query_edge.n2, query_edge.weight - query_edge.w1);

  // Objects on the query's own edge are reachable directly along the edge
  // (δ(q,p) = w(q,p) when both lie on the same edge, §2.1); paths through
  // the endpoints are applied when those endpoints settle.
  const uint32_t slot = AllocEdgeSlot();
  LoadedEdgeSlot& le = s_->edge_pool[slot];
  le.weight = query_edge.weight;
  {
    obs::ScopedSpan span(ctx_->trace, obs::Phase::kKeywordLookup);
    status_ = index_->LoadObjects(query_edge.edge, terms_, &le.objects);
  }
  if (!status_.ok()) {
    le.objects.clear();
    return;
  }
  s_->edge_slot.try_emplace(query_edge.edge, slot);
  for (const LoadedObject& o : le.objects) {
    UpdateObject(o, query_edge.edge, query_edge.n1, query_edge.n2,
                 query_edge.weight, std::abs(o.w1 - query_edge.w1));
  }
}

IncrementalSkSearch::~IncrementalSkSearch() {
  ctx_->sk_search_in_use = false;
}

uint32_t IncrementalSkSearch::AllocEdgeSlot() {
  if (s_->edge_pool_used == s_->edge_pool.size()) {
    s_->edge_pool.emplace_back();
  }
  LoadedEdgeSlot& slot = s_->edge_pool[s_->edge_pool_used];
  slot.objects.clear();  // keeps the vector's capacity
  return static_cast<uint32_t>(s_->edge_pool_used++);
}

void IncrementalSkSearch::RelaxNode(NodeId v, double dist) {
  if (dist > delta_max_ || s_->settled.Contains(v)) {
    return;
  }
  const double* t = s_->tentative.Find(v);
  if (t == nullptr || dist < *t) {
    s_->tentative.Set(v, dist);
    s_->node_heap.push({dist, v});
  }
}

void IncrementalSkSearch::UpdateObject(const LoadedObject& o, EdgeId e,
                                       NodeId n1, NodeId n2, double w,
                                       double dist) {
  auto [st, inserted] = s_->object_state.try_emplace(o.id);
  if (inserted) {
    st->best = dist;
    st->edge = e;
    st->n1 = n1;
    st->n2 = n2;
    st->w1 = o.w1;
    st->edge_weight = w;
    s_->object_heap.push({dist, o.id});
    return;
  }
  if (dist < st->best) {
    DSKS_CHECK_MSG(!st->emitted, "emitted object distance improved");
    st->best = dist;
    s_->object_heap.push({dist, o.id});
  }
}

void IncrementalSkSearch::ProcessEdge(EdgeId e, double w, NodeId v, NodeId nb,
                                      double d) {
  const uint32_t* found = s_->edge_slot.find(e);
  uint32_t slot;
  if (found == nullptr) {
    ++stats_.edges_processed;
    slot = AllocEdgeSlot();
    LoadedEdgeSlot& le = s_->edge_pool[slot];
    le.weight = w;
    // The index loads straight into the pooled vector — no intermediate
    // scratch copy.
    {
      obs::ScopedSpan span(ctx_->trace, obs::Phase::kKeywordLookup);
      status_ = index_->LoadObjects(e, terms_, &le.objects);
    }
    if (!status_.ok()) {
      le.objects.clear();
      return;
    }
    s_->edge_slot.try_emplace(e, slot);
  } else {
    slot = *found;
  }
  // v was just settled at distance d; the cost from v to an object at
  // offset w1 (from the reference node n1 = min endpoint id) is w1 if v is
  // n1, else w - w1.
  const bool v_is_n1 = v < nb;
  const NodeId n1 = std::min(v, nb);
  const NodeId n2 = std::max(v, nb);
  const std::vector<LoadedObject>& objects = s_->edge_pool[slot].objects;
  for (const LoadedObject& o : objects) {
    const double via_v = d + (v_is_n1 ? o.w1 : w - o.w1);
    UpdateObject(o, e, n1, n2, w, via_v);
  }
}

double IncrementalSkSearch::NodeLowerBound() {
  while (!s_->node_heap.empty()) {
    const auto& [d, v] = s_->node_heap.top();
    if (s_->settled.Contains(v)) {
      s_->node_heap.pop();
      continue;
    }
    const double* t = s_->tentative.Find(v);
    if (t == nullptr || *t != d) {
      s_->node_heap.pop();  // superseded entry
      continue;
    }
    if (d > delta_max_) {
      expansion_done_ = true;
      return kInfDistance;
    }
    return d;
  }
  expansion_done_ = true;
  return kInfDistance;
}

bool IncrementalSkSearch::ExpandOneNode() {
  const double d = NodeLowerBound();
  if (expansion_done_) {
    return false;
  }
  obs::ScopedSpan span(ctx_->trace, obs::Phase::kNetworkExpansion);
  const NodeId v = s_->node_heap.top().second;
  s_->node_heap.pop();
  s_->settled.Set(v, d);
  ++stats_.nodes_settled;
  if (stats_.nodes_settled % PrefetchInterval(*graph_) == 0) {
    // Deadline poll shares the settle-batch cadence with the prefetch
    // issuer: one clock read per batch, never per node. The spans and I/O
    // recorded so far remain as the cancelled query's partial-work account.
    if (ctx_->DeadlineExceeded()) {
      status_ = Status::Cancelled("query deadline exceeded during expansion");
      return false;
    }
    PrefetchFrontier(*graph_, s_->node_heap);
  }

  status_ = graph_->GetAdjacency(v, &s_->adjacency);
  if (!status_.ok()) {
    return false;
  }
  for (const AdjacentEdge& adj : s_->adjacency) {
    if (!s_->settled.Contains(adj.neighbor)) {
      RelaxNode(adj.neighbor, d + adj.weight);
    }
    ProcessEdge(adj.edge, adj.weight, v, adj.neighbor, d);
    if (!status_.ok()) {
      return false;
    }
  }
  return true;
}

bool IncrementalSkSearch::Next(SkResult* out) {
  if (terminated_ || !status_.ok()) {
    return false;
  }
  // One poll per pulled result catches deadlines that expire between
  // settle batches (or before the first one on a tiny expansion).
  if (ctx_->DeadlineExceeded()) {
    status_ = Status::Cancelled("query deadline exceeded");
    return false;
  }
  while (true) {
    const double delta_t =
        expansion_done_ ? kInfDistance : NodeLowerBound();

    // Emit the closest finalized object, if any.
    while (!s_->object_heap.empty()) {
      const auto [d, id] = s_->object_heap.top();
      SkObjectState* st = s_->object_state.find(id);
      DSKS_DCHECK(st != nullptr);
      if (st->emitted || d != st->best) {
        s_->object_heap.pop();  // stale or duplicate entry
        continue;
      }
      if (d > delta_t) {
        break;  // might still improve through an unsettled node
      }
      s_->object_heap.pop();
      st->emitted = true;
      if (d > delta_max_) {
        continue;  // final but outside the search range
      }
      ++stats_.objects_emitted;
      out->id = id;
      out->edge = st->edge;
      out->n1 = st->n1;
      out->n2 = st->n2;
      out->w1 = st->w1;
      out->edge_weight = st->edge_weight;
      out->dist = d;
      return true;
    }

    if (expansion_done_) {
      return false;  // nothing settleable left and all objects flushed
    }
    if (!ExpandOneNode()) {
      if (!status_.ok()) {
        return false;  // storage error; the caller reads status()
      }
      continue;  // expansion just finished; flush remaining objects
    }
  }
}

}  // namespace dsks
