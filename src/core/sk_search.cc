#include "core/sk_search.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace dsks {

IncrementalSkSearch::IncrementalSkSearch(const CcamGraph* graph,
                                         ObjectIndex* index,
                                         const SkQuery& query,
                                         const QueryEdgeInfo& query_edge)
    : graph_(graph),
      index_(index),
      delta_max_(query.delta_max),
      terms_(query.terms) {
  DSKS_CHECK_MSG(!terms_.empty(), "SK query needs at least one keyword");
  DSKS_CHECK_MSG(delta_max_ > 0.0, "delta_max must be positive");
  DSKS_CHECK(std::is_sorted(terms_.begin(), terms_.end()));
  DSKS_CHECK_MSG(query_edge.n1 < query_edge.n2,
                 "query edge endpoints must be (reference, far) ordered");

  // Seed Dijkstra with the two endpoints of the query's edge.
  RelaxNode(query_edge.n1, query_edge.w1);
  RelaxNode(query_edge.n2, query_edge.weight - query_edge.w1);

  // Objects on the query's own edge are reachable directly along the edge
  // (δ(q,p) = w(q,p) when both lie on the same edge, §2.1); paths through
  // the endpoints are applied when those endpoints settle.
  index_->LoadObjects(query_edge.edge, terms_, &load_scratch_);
  LoadedEdge& le = loaded_edges_[query_edge.edge];
  le.weight = query_edge.weight;
  le.objects = load_scratch_;
  for (const LoadedObject& o : le.objects) {
    UpdateObject(o, query_edge.edge, query_edge.n1, query_edge.n2,
                 query_edge.weight, std::abs(o.w1 - query_edge.w1));
  }
}

void IncrementalSkSearch::RelaxNode(NodeId v, double dist) {
  if (dist > delta_max_ || settled_.count(v) != 0) {
    return;
  }
  auto it = tentative_.find(v);
  if (it == tentative_.end() || dist < it->second) {
    tentative_[v] = dist;
    node_heap_.emplace(dist, v);
  }
}

void IncrementalSkSearch::UpdateObject(const LoadedObject& o, EdgeId e,
                                       NodeId n1, NodeId n2, double w,
                                       double dist) {
  auto [it, inserted] = object_state_.try_emplace(o.id);
  ObjectState& st = it->second;
  if (inserted) {
    st.best = dist;
    st.edge = e;
    st.n1 = n1;
    st.n2 = n2;
    st.w1 = o.w1;
    st.edge_weight = w;
    object_heap_.emplace(dist, o.id);
    return;
  }
  if (dist < st.best) {
    DSKS_CHECK_MSG(!st.emitted, "emitted object distance improved");
    st.best = dist;
    object_heap_.emplace(dist, o.id);
  }
}

void IncrementalSkSearch::ProcessEdge(EdgeId e, double w, NodeId v, NodeId nb,
                                      double d) {
  auto it = loaded_edges_.find(e);
  if (it == loaded_edges_.end()) {
    ++stats_.edges_processed;
    index_->LoadObjects(e, terms_, &load_scratch_);
    it = loaded_edges_.emplace(e, LoadedEdge{w, load_scratch_}).first;
  }
  // v was just settled at distance d; the cost from v to an object at
  // offset w1 (from the reference node n1 = min endpoint id) is w1 if v is
  // n1, else w - w1.
  const bool v_is_n1 = v < nb;
  const NodeId n1 = std::min(v, nb);
  const NodeId n2 = std::max(v, nb);
  for (const LoadedObject& o : it->second.objects) {
    const double via_v = d + (v_is_n1 ? o.w1 : w - o.w1);
    UpdateObject(o, e, n1, n2, w, via_v);
  }
}

double IncrementalSkSearch::NodeLowerBound() {
  while (!node_heap_.empty()) {
    const auto& [d, v] = node_heap_.top();
    if (settled_.count(v) != 0) {
      node_heap_.pop();
      continue;
    }
    auto it = tentative_.find(v);
    if (it == tentative_.end() || it->second != d) {
      node_heap_.pop();  // superseded entry
      continue;
    }
    if (d > delta_max_) {
      expansion_done_ = true;
      return kInfDistance;
    }
    return d;
  }
  expansion_done_ = true;
  return kInfDistance;
}

bool IncrementalSkSearch::ExpandOneNode() {
  const double d = NodeLowerBound();
  if (expansion_done_) {
    return false;
  }
  const NodeId v = node_heap_.top().second;
  node_heap_.pop();
  settled_.emplace(v, d);
  ++stats_.nodes_settled;

  graph_->GetAdjacency(v, &adjacency_scratch_);
  for (const AdjacentEdge& adj : adjacency_scratch_) {
    if (settled_.count(adj.neighbor) == 0) {
      RelaxNode(adj.neighbor, d + adj.weight);
    }
    ProcessEdge(adj.edge, adj.weight, v, adj.neighbor, d);
  }
  return true;
}

bool IncrementalSkSearch::Next(SkResult* out) {
  if (terminated_) {
    return false;
  }
  while (true) {
    const double delta_t =
        expansion_done_ ? kInfDistance : NodeLowerBound();

    // Emit the closest finalized object, if any.
    while (!object_heap_.empty()) {
      const auto [d, id] = object_heap_.top();
      ObjectState& st = object_state_[id];
      if (st.emitted || d != st.best) {
        object_heap_.pop();  // stale or duplicate entry
        continue;
      }
      if (d > delta_t) {
        break;  // might still improve through an unsettled node
      }
      object_heap_.pop();
      st.emitted = true;
      if (d > delta_max_) {
        continue;  // final but outside the search range
      }
      ++stats_.objects_emitted;
      out->id = id;
      out->edge = st.edge;
      out->n1 = st.n1;
      out->n2 = st.n2;
      out->w1 = st.w1;
      out->edge_weight = st.edge_weight;
      out->dist = d;
      return true;
    }

    if (expansion_done_) {
      return false;  // nothing settleable left and all objects flushed
    }
    if (!ExpandOneNode()) {
      continue;  // expansion just finished; flush remaining objects
    }
  }
}

}  // namespace dsks
