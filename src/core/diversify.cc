#include "core/diversify.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"
#include "core/objective.h"

namespace dsks {

ScoredPair ScoredPair::Make(double theta, ObjectId x, ObjectId y) {
  DSKS_CHECK(x != y);
  return ScoredPair{theta, std::min(x, y), std::max(x, y)};
}

bool ScoredPair::Better(const ScoredPair& other) const {
  if (theta != other.theta) {
    return theta > other.theta;
  }
  if (a != other.a) {
    return a < other.a;
  }
  return b < other.b;
}

GreedyDivResult GreedyDiversify(const std::vector<SkResult>& candidates,
                                size_t k, const ThetaFn& theta,
                                const ThetaFn* theta_ub) {
  GreedyDivResult result;
  const size_t n = candidates.size();
  if (n <= k) {
    // Fewer candidates than requested: everything is selected; pairs are
    // still formed so that θ_T-style consumers can use the result.
    result.selected = candidates;
  }

  std::vector<bool> used(n, false);
  const size_t want_pairs = k / 2;
  while (result.pairs.size() < want_pairs) {
    bool found = false;
    ScoredPair best;
    size_t best_i = 0;
    size_t best_j = 0;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      for (size_t j = i + 1; j < n; ++j) {
        if (used[j]) continue;
        // A pair whose θ upper bound is strictly below the incumbent can
        // never win this round (Better() prefers larger θ first), so the
        // exact evaluation — possibly a Dijkstra — is skipped. Ties must
        // still evaluate: they can win on the id tie-break.
        if (found && theta_ub != nullptr &&
            (*theta_ub)(candidates[i], candidates[j]) < best.theta) {
          continue;
        }
        const ScoredPair sp =
            ScoredPair::Make(theta(candidates[i], candidates[j]),
                             candidates[i].id, candidates[j].id);
        if (!found || sp.Better(best)) {
          found = true;
          best = sp;
          best_i = i;
          best_j = j;
        }
      }
    }
    if (!found) {
      break;  // fewer than two unused objects remain
    }
    used[best_i] = true;
    used[best_j] = true;
    result.pairs.push_back(best);
    if (n > k) {
      result.selected.push_back(candidates[best_i]);
      result.selected.push_back(candidates[best_j]);
    }
  }

  // Odd k: add one more object from the remainder (Algorithm 1 line 5;
  // "arbitrary" resolved deterministically as the closest remaining one).
  if (n > k && result.selected.size() < k) {
    size_t best = n;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      if (best == n || candidates[i].dist < candidates[best].dist ||
          (candidates[i].dist == candidates[best].dist &&
           candidates[i].id < candidates[best].id)) {
        best = i;
      }
    }
    if (best < n) {
      result.selected.push_back(candidates[best]);
    }
  }
  return result;
}

std::vector<SkResult> BruteForceOptimal(
    const std::vector<SkResult>& candidates, size_t k, double lambda,
    double delta_max, const ThetaFn& theta,
    const std::function<double(const SkResult&, const SkResult&)>& dist) {
  (void)theta;
  const size_t n = candidates.size();
  if (n <= k) {
    return candidates;
  }
  DSKS_CHECK_MSG(n <= 24, "brute force limited to tiny instances");
  const Objective objective(lambda, delta_max);

  std::vector<size_t> pick;
  std::vector<size_t> best_pick;
  double best_value = -std::numeric_limits<double>::infinity();

  std::function<void(size_t)> recurse = [&](size_t next) {
    if (pick.size() == k) {
      std::vector<double> dq;
      std::vector<double> pw(k * k, 0.0);
      dq.reserve(k);
      for (size_t u = 0; u < k; ++u) {
        dq.push_back(candidates[pick[u]].dist);
        for (size_t v = 0; v < k; ++v) {
          if (u != v) {
            pw[u * k + v] = dist(candidates[pick[u]], candidates[pick[v]]);
          }
        }
      }
      const double value = objective.ObjectiveValue(dq, pw);
      if (value > best_value) {
        best_value = value;
        best_pick = pick;
      }
      return;
    }
    if (next >= n || pick.size() + (n - next) < k) {
      return;
    }
    pick.push_back(next);
    recurse(next + 1);
    pick.pop_back();
    recurse(next + 1);
  };
  recurse(0);

  std::vector<SkResult> out;
  out.reserve(k);
  for (size_t i : best_pick) {
    out.push_back(candidates[i]);
  }
  return out;
}

}  // namespace dsks
