#ifndef DSKS_CORE_CORE_PAIRS_H_
#define DSKS_CORE_CORE_PAIRS_H_

#include <functional>
#include <vector>

#include "core/diversify.h"
#include "graph/types.h"

namespace dsks {

/// Incrementally maintained core pairs CP and diversification-distance
/// threshold θ_T (§4.2, Algorithm 5).
///
/// After initialization with the greedy pairs of the first k objects, each
/// OnArrival call updates CP in O(n · k) so that it always equals the set
/// of pairs Algorithm 1 would select from scratch over all objects seen so
/// far — the invariant the property tests check. θ_T (the distance of the
/// ⌊k/2⌋-th pair) grows monotonically (Theorem 1), which is what makes the
/// diversity pruning of Algorithm 6 safe.
class CorePairSet {
 public:
  using ThetaById = std::function<double(ObjectId, ObjectId)>;

  explicit CorePairSet(size_t num_pairs) : num_pairs_(num_pairs) {}

  /// Installs the greedy pairs computed on the first k objects. `pairs`
  /// must be in selection (Better-first) order.
  void Init(std::vector<ScoredPair> pairs);

  /// Algorithm 5. `o` is the arriving object; `actives` are the ids of all
  /// non-pruned objects seen so far (excluding `o` is not required — it is
  /// skipped); `theta` evaluates diversification distances. `theta_ub`,
  /// when given, must satisfy theta_ub(u,v) >= theta(u,v); candidates whose
  /// bound is *strictly* below θ_T are skipped without an exact evaluation
  /// (they would fail the Better(θ_T) test anyway), leaving the maintained
  /// pairs bit-identical.
  void OnArrival(ObjectId o, const std::vector<ObjectId>& actives,
                 const ThetaById& theta, const ThetaById* theta_ub = nullptr);

  /// Current core pairs, Better-first; θ_T is pairs().back().
  const std::vector<ScoredPair>& pairs() const { return pairs_; }

  /// θ_T as a ScoredPair (for total-order comparisons) — requires full().
  const ScoredPair& threshold() const { return pairs_.back(); }

  bool full() const { return pairs_.size() == num_pairs_; }
  size_t num_pairs() const { return num_pairs_; }

  bool IsCore(ObjectId id) const;

  /// The 2·⌊k/2⌋ core objects, in pair order.
  std::vector<ObjectId> CoreObjects() const;

 private:
  /// Index of the pair containing `id`, or pairs_.size().
  size_t PairIndexOf(ObjectId id) const;

  void InsertSorted(const ScoredPair& sp);

  size_t num_pairs_;
  std::vector<ScoredPair> pairs_;
};

}  // namespace dsks

#endif  // DSKS_CORE_CORE_PAIRS_H_
