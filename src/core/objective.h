#ifndef DSKS_CORE_OBJECTIVE_H_
#define DSKS_CORE_OBJECTIVE_H_

#include <algorithm>
#include <cstddef>
#include <span>

#include "common/macros.h"

namespace dsks {

/// The bi-criteria max-sum diversification objective of §2.1/§2.3.
///
/// With rel(u) = 1 - δ(q,u)/δmax and div(u,v) = δ(u,v)/(2·δmax), the
/// pairwise diversification distance is
///     θ(u,v) = λ·(rel(u) + rel(v))/2 + (1-λ)·div(u,v)
/// and the objective is the average pairwise θ over the result set,
///     f(S) = (1/(k(k-1))) Σ_{u≠v} θ(u,v)
///          = (λ/k) Σ_u rel(u) + ((1-λ)/(k(k-1))) Σ_{u≠v} div(u,v),
/// i.e. average relevance traded against average pairwise diversity with
/// weight λ (larger λ favors closeness, §5.2).
class Objective {
 public:
  Objective(double lambda, double delta_max)
      : lambda_(lambda), delta_max_(delta_max) {
    DSKS_CHECK_MSG(lambda >= 0.0 && lambda <= 1.0, "lambda must be in [0,1]");
    DSKS_CHECK_MSG(delta_max > 0.0, "delta_max must be positive");
  }

  double lambda() const { return lambda_; }
  double delta_max() const { return delta_max_; }

  /// Relevance of an object at network distance `dist_q` from the query.
  double Relevance(double dist_q) const { return 1.0 - dist_q / delta_max_; }

  /// Diversity contribution of a pair at network distance `dist_uv`.
  double Diversity(double dist_uv) const {
    return dist_uv / (2.0 * delta_max_);
  }

  /// θ(u, v) from the two query distances and the pairwise distance.
  double Theta(double dist_qu, double dist_qv, double dist_uv) const {
    return lambda_ * (Relevance(dist_qu) + Relevance(dist_qv)) / 2.0 +
           (1.0 - lambda_) * Diversity(dist_uv);
  }

  /// Upper bound on θ between two *unseen* objects when every unseen
  /// object is at distance >= gamma from the query (Fig. 5): both
  /// relevances are at most 1 - γ/δmax and their pairwise distance is at
  /// most 2·δmax.
  double ThetaUpperBoundUnseenPair(double gamma) const {
    return lambda_ * Relevance(gamma) + (1.0 - lambda_);
  }

  /// Upper bound on θ between a *seen* object at distance `dist_qo` and
  /// any unseen object (distance >= gamma): the unseen side's relevance is
  /// at most 1 - γ/δmax and δ(o, unseen) <= min(δ(q,o) + δmax, 2·δmax).
  double ThetaUpperBoundSeenUnseen(double dist_qo, double gamma) const {
    const double max_pair_dist =
        std::min(dist_qo + delta_max_, 2.0 * delta_max_);
    return lambda_ * (Relevance(dist_qo) + Relevance(gamma)) / 2.0 +
           (1.0 - lambda_) * Diversity(max_pair_dist);
  }

  /// f(S) from the per-object query distances and the pairwise distance
  /// matrix (row-major k*k, only u != v entries read). k >= 2.
  double ObjectiveValue(std::span<const double> dist_q,
                        std::span<const double> pairwise) const;

 private:
  double lambda_;
  double delta_max_;
};

}  // namespace dsks

#endif  // DSKS_CORE_OBJECTIVE_H_
