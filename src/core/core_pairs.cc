#include "core/core_pairs.h"

#include <algorithm>

#include "common/macros.h"

namespace dsks {

void CorePairSet::Init(std::vector<ScoredPair> pairs) {
  DSKS_CHECK_MSG(pairs.size() <= num_pairs_, "too many initial pairs");
  pairs_ = std::move(pairs);
  for (size_t i = 1; i < pairs_.size(); ++i) {
    DSKS_CHECK_MSG(pairs_[i - 1].Better(pairs_[i]),
                   "initial pairs must be in selection order");
  }
}

size_t CorePairSet::PairIndexOf(ObjectId id) const {
  for (size_t i = 0; i < pairs_.size(); ++i) {
    if (pairs_[i].a == id || pairs_[i].b == id) {
      return i;
    }
  }
  return pairs_.size();
}

bool CorePairSet::IsCore(ObjectId id) const {
  return PairIndexOf(id) < pairs_.size();
}

std::vector<ObjectId> CorePairSet::CoreObjects() const {
  std::vector<ObjectId> out;
  out.reserve(pairs_.size() * 2);
  for (const ScoredPair& p : pairs_) {
    out.push_back(p.a);
    out.push_back(p.b);
  }
  return out;
}

void CorePairSet::InsertSorted(const ScoredPair& sp) {
  auto it = std::lower_bound(
      pairs_.begin(), pairs_.end(), sp,
      [](const ScoredPair& x, const ScoredPair& y) { return x.Better(y); });
  pairs_.insert(it, sp);
}

void CorePairSet::OnArrival(ObjectId o, const std::vector<ObjectId>& actives,
                            const ThetaById& theta,
                            const ThetaById* theta_ub) {
  DSKS_CHECK_MSG(full(), "OnArrival before the first k objects initialized CP");
  ObjectId cur = o;
  // The while loop repeats at most k/2 times (§4.2 correctness argument);
  // the +2 slack keeps the guard from ever firing on valid executions.
  size_t guard = num_pairs_ + 2;
  while (guard-- > 0) {
    const ScoredPair theta_t = pairs_.back();
    // φ(cur): actives with θ(cur, x) > θ_T that do not dominate cur; keep
    // the best candidate pair under the total order.
    bool found = false;
    ScoredPair best;
    ObjectId best_partner = kInvalidObjectId;
    for (ObjectId x : actives) {
      if (x == cur) {
        continue;
      }
      // If even the upper bound is strictly below θ_T then the exact θ is
      // too, and sp.Better(theta_t) below would fail on the θ comparison
      // alone — skip the exact evaluation. Ties still evaluate (they can
      // win Better's id tie-break).
      if (theta_ub != nullptr && (*theta_ub)(cur, x) < theta_t.theta) {
        continue;
      }
      const ScoredPair sp = ScoredPair::Make(theta(cur, x), cur, x);
      if (!sp.Better(theta_t)) {
        continue;
      }
      const size_t px = PairIndexOf(x);
      if (px < pairs_.size() && pairs_[px].Better(sp)) {
        continue;  // x dominates cur (Lemma 1): (cur, x) can never be core
      }
      if (!found || sp.Better(best)) {
        found = true;
        best = sp;
        best_partner = x;
      }
    }
    if (!found) {
      return;  // case i: cur contributes nothing
    }
    const size_t partner_pair = PairIndexOf(best_partner);
    if (partner_pair == pairs_.size()) {
      // Case ii: partner is not a core object. The new pair displaces the
      // current ⌊k/2⌋-th pair.
      pairs_.pop_back();
      InsertSorted(best);
      return;
    }
    // Case iii: partner is core; (cur, partner) replaces its pair and the
    // displaced member re-enters as the arriving object.
    const ScoredPair old = pairs_[partner_pair];
    pairs_.erase(pairs_.begin() + static_cast<ptrdiff_t>(partner_pair));
    InsertSorted(best);
    cur = old.a == best_partner ? old.b : old.a;
  }
  DSKS_CHECK_MSG(false, "Algorithm 5 failed to converge");
}

}  // namespace dsks
