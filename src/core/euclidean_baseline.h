#ifndef DSKS_CORE_EUCLIDEAN_BASELINE_H_
#define DSKS_CORE_EUCLIDEAN_BASELINE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/query.h"
#include "core/sk_search.h"
#include "graph/ccam.h"
#include "graph/road_network.h"
#include "index/inverted_rtree.h"

namespace dsks {

struct EuclideanBaselineStats {
  /// Objects surviving the Euclidean filter (superset of the answer).
  uint64_t euclidean_candidates = 0;
  /// Candidates whose network distance actually fit δmax.
  uint64_t verified = 0;
  uint64_t nodes_settled = 0;
};

/// The filter-and-refine strategy a Euclidean spatial-keyword index
/// (inverted R-tree and friends, §6) forces on road networks: since
/// network distance >= Euclidean distance, every answer lies within the
/// Euclidean δmax circle — so (1) intersect the per-keyword R-trees over
/// that circle, then (2) verify each candidate's *network* distance with a
/// Dijkstra expansion from the query.
///
/// This is the §1 argument made runnable: the filter is blind to the road
/// topology, so in dense areas it admits many candidates whose network
/// distance exceeds δmax (rivers, highways, detours), and the refinement
/// pays a network expansion anyway — which is why the paper builds
/// network-native indexes instead. Returns exactly the Definition 1 result
/// (tests assert equivalence with Algorithm 3).
///
/// Requires edge weights to equal edge lengths: only then is Euclidean
/// distance a lower bound on network distance. This is exactly the kind
/// of "specific restriction" (§3.2) the paper's INE design avoids — with
/// travel-time weights the filter would be unsound while INE still works.
///
/// `net` provides the edge endpoint/weight table for verification (the
/// same in-memory metadata the R-tree build used). On a storage error
/// `*out` is left empty; `*stats` (when given) still accounts the partial
/// work.
Status EuclideanFilterRefine(const CcamGraph* graph, const RoadNetwork& net,
                             InvertedRTreeIndex* index, const SkQuery& query,
                             const QueryEdgeInfo& query_edge,
                             std::vector<SkResult>* out,
                             EuclideanBaselineStats* stats);

}  // namespace dsks

#endif  // DSKS_CORE_EUCLIDEAN_BASELINE_H_
