#include "core/euclidean_baseline.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>

#include "common/macros.h"

namespace dsks {

Status EuclideanFilterRefine(const CcamGraph* graph, const RoadNetwork& net,
                             InvertedRTreeIndex* index, const SkQuery& query,
                             const QueryEdgeInfo& query_edge,
                             std::vector<SkResult>* out,
                             EuclideanBaselineStats* stats) {
  out->clear();
  EuclideanBaselineStats local;
  Status status;

  // Filter: Euclidean circle around the query point.
  const Point q_point = net.PointOnEdge(
      query.loc.edge,
      query.loc.offset);
  std::vector<ObjectId> candidates;
  status = index->EuclideanCandidates(q_point, query.delta_max, query.terms,
                                      &candidates);
  local.euclidean_candidates = candidates.size();
  if (!status.ok()) {
    candidates.clear();
  }

  std::vector<SkResult> results;
  if (!candidates.empty()) {
    // Refine: one bounded Dijkstra from the query over the CCAM file.
    std::unordered_map<NodeId, double> dist;
    std::unordered_map<NodeId, double> tentative;
    using HeapEntry = std::pair<double, NodeId>;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
        heap;
    auto relax = [&](NodeId v, double d) {
      if (d > query.delta_max) {
        return;
      }
      auto it = tentative.find(v);
      if (it == tentative.end() || d < it->second) {
        tentative[v] = d;
        heap.emplace(d, v);
      }
    };
    relax(query_edge.n1, query_edge.w1);
    relax(query_edge.n2, query_edge.weight - query_edge.w1);
    std::vector<AdjacentEdge> adjacency;
    while (!heap.empty()) {
      const auto [d, v] = heap.top();
      heap.pop();
      if (dist.count(v) != 0) {
        continue;
      }
      dist.emplace(v, d);
      ++local.nodes_settled;
      status = graph->GetAdjacency(v, &adjacency);
      if (!status.ok()) {
        break;
      }
      for (const AdjacentEdge& adj : adjacency) {
        if (dist.count(adj.neighbor) == 0) {
          relax(adj.neighbor, d + adj.weight);
        }
      }
    }

    for (ObjectId id : candidates) {
      if (!status.ok()) {
        break;
      }
      ObjectFile::Record rec;
      status = index->GetRecord(id, &rec);  // I/O
      if (!status.ok()) {
        break;
      }
      const Edge& e = net.edge(rec.edge);
      double best = kInfDistance;
      if (auto it = dist.find(e.n1); it != dist.end()) {
        best = std::min(best, it->second + rec.w1);
      }
      if (auto it = dist.find(e.n2); it != dist.end()) {
        best = std::min(best, it->second + (e.weight - rec.w1));
      }
      if (rec.edge == query.loc.edge) {
        best = std::min(best, std::abs(rec.w1 - query_edge.w1));
      }
      if (best <= query.delta_max) {
        SkResult r;
        r.id = id;
        r.edge = rec.edge;
        r.n1 = e.n1;
        r.n2 = e.n2;
        r.w1 = rec.w1;
        r.edge_weight = e.weight;
        r.dist = best;
        results.push_back(r);
        ++local.verified;
      }
    }
  }
  if (stats != nullptr) {
    *stats = local;
  }
  DSKS_RETURN_IF_ERROR(status);
  std::sort(results.begin(), results.end(),
            [](const SkResult& a, const SkResult& b) {
              return a.dist != b.dist ? a.dist < b.dist : a.id < b.id;
            });
  *out = std::move(results);
  return Status::Ok();
}

}  // namespace dsks
