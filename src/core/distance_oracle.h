#ifndef DSKS_CORE_DISTANCE_ORACLE_H_
#define DSKS_CORE_DISTANCE_ORACLE_H_

#include <cstdint>
#include <unordered_map>

#include "core/query.h"
#include "graph/ccam.h"
#include "graph/types.h"

namespace dsks {

/// Computes pairwise network distances between SK results, the expensive
/// ingredient of the diversification objective ("the pairwise network
/// distance computation on road networks is cost expensive", §1).
///
/// For each object the oracle runs one bounded Dijkstra over the CCAM file
/// (radius = 2·δmax, which is an upper bound on the distance between any
/// two objects in the query range) and caches the resulting distance
/// field; a pairwise distance is then two hash lookups plus Equation 1.
/// The traversal I/O is charged to the buffer pool like any other access.
class PairwiseDistanceOracle {
 public:
  /// `radius` bounds each per-object expansion; pass 2·δmax.
  PairwiseDistanceOracle(const CcamGraph* graph, double radius)
      : graph_(graph), radius_(radius) {}

  PairwiseDistanceOracle(const PairwiseDistanceOracle&) = delete;
  PairwiseDistanceOracle& operator=(const PairwiseDistanceOracle&) = delete;

  /// δ(a, b), exact whenever it does not exceed the radius; otherwise the
  /// radius itself is returned (the largest value the objective can see).
  double Distance(const SkResult& a, const SkResult& b);

  /// Computes (or re-uses) the distance field of `a`. Distance() calls it
  /// implicitly; COM calls it on arrival so the cost lands on the arriving
  /// object.
  void EnsureField(const SkResult& a);

  /// Frees the field of a pruned object.
  void DropField(ObjectId id) { fields_.erase(id); }

  uint64_t fields_computed() const { return fields_computed_; }
  size_t cached_fields() const { return fields_.size(); }

 private:
  struct Field {
    std::unordered_map<NodeId, double> dist;
  };

  const Field& FieldOf(const SkResult& a);

  const CcamGraph* graph_;
  double radius_;
  std::unordered_map<ObjectId, Field> fields_;
  uint64_t fields_computed_ = 0;
};

}  // namespace dsks

#endif  // DSKS_CORE_DISTANCE_ORACLE_H_
