#ifndef DSKS_CORE_DISTANCE_ORACLE_H_
#define DSKS_CORE_DISTANCE_ORACLE_H_

#include <cstdint>
#include <memory>

#include "common/flat_containers.h"
#include "common/status.h"
#include "core/query.h"
#include "core/query_context.h"
#include "core/sk_search.h"
#include "graph/ccam.h"
#include "graph/types.h"

namespace dsks {

/// How the oracle obtains pairwise distances.
enum class OracleStrategy {
  /// One radius-bounded Dijkstra from the *query* location builds a shared
  /// node->distance field once; pairwise probes are answered from it as
  /// offset-corrected views whenever the shortest-path tree certifies the
  /// value exact (see DESIGN.md), and only uncertifiable sources fall back
  /// to a per-object bounded Dijkstra.
  kSharedExpansion,
  /// One bounded Dijkstra per source object (the original scheme). Kept as
  /// the reference for equivalence tests and before/after benchmarks.
  kPerObjectDijkstra,
};

/// Counters of one oracle instance (one diversified query).
struct OracleStats {
  /// Per-object bounded Dijkstra expansions (eager or fallback). This is
  /// the paper's expensive operation; the shared strategy exists to shrink
  /// it.
  uint64_t fields_computed = 0;
  /// Shared expansions run (0 or 1 per query).
  uint64_t shared_expansions = 0;
  /// Distinct pairs whose distance was actually computed (memoized
  /// Distance() hits are not re-counted).
  uint64_t pairs_evaluated = 0;
  /// Pairs answered exactly from the shared field, no per-object work.
  uint64_t pairs_shared_exact = 0;
};

/// Computes pairwise network distances between SK results, the expensive
/// ingredient of the diversification objective ("the pairwise network
/// distance computation on road networks is cost expensive", §1).
///
/// Under kPerObjectDijkstra each source object runs one bounded Dijkstra
/// over the CCAM file (radius = 2·δmax, an upper bound on the distance
/// between any two objects in the query range) and caches the resulting
/// distance field; a pairwise distance is then two hash lookups plus
/// Equation 1. Under kSharedExpansion (the default) most pairs are instead
/// answered from a single expansion shared across all objects — call
/// SetQueryEdge() with the query's edge to enable it. The traversal I/O is
/// charged to the buffer pool like any other access either way.
///
/// δ(a,b) is always evaluated from the canonical side — the object with the
/// smaller (dist, id) — so that it is bit-identical to δ(b,a) and
/// independent of evaluation history; near-tied greedy choices therefore
/// cannot diverge between SEQ and COM.
class PairwiseDistanceOracle {
 public:
  /// `radius` bounds each expansion; pass 2·δmax.
  PairwiseDistanceOracle(
      const CcamGraph* graph, double radius,
      OracleStrategy strategy = OracleStrategy::kSharedExpansion,
      QueryContext* ctx = nullptr);
  ~PairwiseDistanceOracle();

  PairwiseDistanceOracle(const PairwiseDistanceOracle&) = delete;
  PairwiseDistanceOracle& operator=(const PairwiseDistanceOracle&) = delete;

  /// Tells the oracle where the query sits, enabling the shared expansion
  /// (its seeds must match the SK search's so that settled distances agree
  /// bit-for-bit). Without it kSharedExpansion degrades gracefully to lazy
  /// per-object fields.
  void SetQueryEdge(const QueryEdgeInfo& query_edge);

  /// δ(a, b), exact whenever it does not exceed the radius; otherwise the
  /// radius itself is returned (the largest value the objective can see).
  /// Memoized per pair for the lifetime of the query.
  double Distance(const SkResult& a, const SkResult& b);

  /// Cheap upper bound on Distance(a, b): the path through the query
  /// (δ(q,a) + δ(q,b)), the same-edge direct path, and the radius cap.
  /// Callers use it to skip exact evaluations that cannot beat a running
  /// maximum — the Objective's θ is monotone in the pairwise distance, so
  /// θ(ub) bounds θ(exact) from above. Pure function of the pair; computes
  /// nothing and never triggers a field.
  double DistanceUpperBound(const SkResult& a, const SkResult& b) const;

  /// kPerObjectDijkstra: computes (or re-uses) the distance field of `a`
  /// eagerly, so the cost lands on the arriving object (COM calls it on
  /// arrival). kSharedExpansion: no-op — fields are built lazily only for
  /// sources the shared pass cannot certify.
  void EnsureField(const SkResult& a);

  /// Frees the field of a pruned object (its pool slot is recycled).
  void DropField(ObjectId id);

  /// First storage error hit by any expansion (OK while healthy). On error
  /// expansions stop early, so Distance() degrades to its radius-capped
  /// upper bound; callers must check this before trusting the objective.
  const Status& status() const { return status_; }

  uint64_t fields_computed() const { return stats_.fields_computed; }
  size_t cached_fields() const { return o_->field_index.size(); }
  const OracleStats& stats() const { return stats_; }
  OracleStrategy strategy() const { return strategy_; }

 private:
  using FieldMap = FlatHashMap<NodeId, double>;

  /// Bounded per-object Dijkstra into a pooled field map.
  FieldMap& FieldOf(const SkResult& a);

  /// Runs the shared expansion and builds the shortest-path-tree subtree
  /// intervals used for certification.
  void BuildSharedField();

  /// Attempts to answer δ(a,b) (a canonical) exactly from the shared
  /// field. `best` holds the already-exact candidates (radius cap and the
  /// same-edge direct path) on entry and the answer on a true return.
  bool TrySharedExact(const SkResult& a, const SkResult& b, double* best);

  /// True iff local settle index `anc` is an ancestor of `node` in the
  /// shared shortest-path tree (inclusive).
  bool IsAncestor(uint32_t anc, uint32_t node) const {
    return o_->tin[anc] <= o_->tin[node] && o_->tout[node] <= o_->tout[anc];
  }

  const CcamGraph* graph_;
  const double radius_;
  const OracleStrategy strategy_;

  std::unique_ptr<QueryContext> owned_ctx_;  // only when no ctx was passed
  QueryContext* ctx_;
  OracleScratch* o_;  // = &ctx_->oracle

  QueryEdgeInfo query_edge_;
  bool has_query_edge_ = false;
  bool shared_ready_ = false;

  Status status_;
  OracleStats stats_;
};

}  // namespace dsks

#endif  // DSKS_CORE_DISTANCE_ORACLE_H_
