#include "core/distance_oracle.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace dsks {

const PairwiseDistanceOracle::Field& PairwiseDistanceOracle::FieldOf(
    const SkResult& a) {
  auto it = fields_.find(a.id);
  if (it != fields_.end()) {
    return it->second;
  }
  ++fields_computed_;
  Field field;

  using HeapEntry = std::pair<double, NodeId>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  std::unordered_map<NodeId, double> tentative;
  auto relax = [&](NodeId v, double d) {
    if (d > radius_) {
      return;
    }
    auto t = tentative.find(v);
    if (t == tentative.end() || d < t->second) {
      tentative[v] = d;
      heap.emplace(d, v);
    }
  };
  relax(a.n1, a.w1);
  relax(a.n2, a.edge_weight - a.w1);

  std::vector<AdjacentEdge> adjacency;
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (field.dist.count(v) != 0) {
      continue;
    }
    field.dist.emplace(v, d);
    graph_->GetAdjacency(v, &adjacency);
    for (const AdjacentEdge& adj : adjacency) {
      if (field.dist.count(adj.neighbor) == 0) {
        relax(adj.neighbor, d + adj.weight);
      }
    }
  }
  return fields_.emplace(a.id, std::move(field)).first->second;
}

void PairwiseDistanceOracle::EnsureField(const SkResult& a) { FieldOf(a); }

double PairwiseDistanceOracle::Distance(const SkResult& a_in,
                                        const SkResult& b_in) {
  if (a_in.id == b_in.id) {
    return 0.0;
  }
  // Evaluate from the smaller-id object's field so that δ(a,b) is
  // bit-identical to δ(b,a): the two directions sum the same edge weights
  // in different orders and can disagree in the last ulp, which would let
  // near-tied greedy choices diverge between SEQ and COM.
  const bool swap = a_in.id > b_in.id;
  const SkResult& a = swap ? b_in : a_in;
  const SkResult& b = swap ? a_in : b_in;
  const Field& field = FieldOf(a);
  double best = radius_;
  if (auto it = field.dist.find(b.n1); it != field.dist.end()) {
    best = std::min(best, it->second + b.w1);
  }
  if (auto it = field.dist.find(b.n2); it != field.dist.end()) {
    best = std::min(best, it->second + (b.edge_weight - b.w1));
  }
  if (a.edge == b.edge) {
    best = std::min(best, std::abs(a.w1 - b.w1));
  }
  return best;
}

}  // namespace dsks
