#include "core/distance_oracle.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "obs/trace.h"

namespace dsks {

namespace {

/// Certification margin. The shared-field lower bounds are computed in
/// floating point and can overshoot the true bound by a few ulps; requiring
/// the exact candidate to win by this margin keeps "certified" honest.
/// Pairs inside the margin simply take the fallback field — correctness is
/// unaffected, only the sharing rate.
constexpr double kCertSlack = 1e-9;

/// Every kPrefetchInterval settles, hand the buffer pool the CCAM pages of
/// the heap's shallow layers — a sample of the nodes this Dijkstra pass
/// settles next. Purely advisory: the pool drops failures and the pass
/// never waits, so settled distances are bit-identical either way.
/// Like sk_search, an async disk engine gets a deeper issue window —
/// twice the sample at half the interval — since submission never blocks.
constexpr size_t kPrefetchIntervalSync = 32;
constexpr size_t kPrefetchIntervalAsync = 16;
constexpr size_t kFrontierSampleSync = 16;
constexpr size_t kFrontierSampleAsync = 32;

size_t PrefetchInterval(const CcamGraph& graph) {
  return graph.async_prefetch() ? kPrefetchIntervalAsync
                                : kPrefetchIntervalSync;
}

void PrefetchFrontier(const CcamGraph& graph,
                      const ReusableMinHeap<std::pair<double, uint32_t>>& heap) {
  const size_t sample =
      graph.async_prefetch() ? kFrontierSampleAsync : kFrontierSampleSync;
  const std::vector<std::pair<double, uint32_t>>& entries = heap.storage();
  const size_t n = entries.size() < sample ? entries.size() : sample;
  if (n == 0) {
    return;
  }
  NodeId nodes[kFrontierSampleAsync];
  for (size_t i = 0; i < n; ++i) {
    nodes[i] = entries[i].second;
  }
  graph.PrefetchNodes(std::span<const NodeId>(nodes, n));
}

}  // namespace

PairwiseDistanceOracle::PairwiseDistanceOracle(const CcamGraph* graph,
                                               double radius,
                                               OracleStrategy strategy,
                                               QueryContext* ctx)
    : graph_(graph), radius_(radius), strategy_(strategy) {
  if (ctx == nullptr) {
    owned_ctx_ = std::make_unique<QueryContext>();
    ctx = owned_ctx_.get();
  }
  ctx_ = ctx;
  o_ = &ctx_->oracle;
  DSKS_DCHECK_MSG(!ctx_->oracle_in_use,
                  "QueryContext serves one oracle at a time");
  ctx_->oracle_in_use = true;
  // Recycle every pooled field from the previous query on this context.
  o_->field_index.clear();
  o_->free_fields.clear();
  for (uint32_t i = 0; i < o_->field_pool.size(); ++i) {
    o_->free_fields.push_back(i);
  }
  o_->pair_cache.clear();
}

PairwiseDistanceOracle::~PairwiseDistanceOracle() {
  ctx_->oracle_in_use = false;
}

void PairwiseDistanceOracle::SetQueryEdge(const QueryEdgeInfo& query_edge) {
  query_edge_ = query_edge;
  has_query_edge_ = true;
  shared_ready_ = false;
}

PairwiseDistanceOracle::FieldMap& PairwiseDistanceOracle::FieldOf(
    const SkResult& a) {
  if (const uint32_t* idx = o_->field_index.find(a.id)) {
    return o_->field_pool[*idx];
  }
  obs::ScopedSpan span(ctx_->trace, obs::Phase::kOracleFieldDijkstra);
  ++stats_.fields_computed;
  uint32_t idx;
  if (!o_->free_fields.empty()) {
    idx = o_->free_fields.back();
    o_->free_fields.pop_back();
  } else {
    idx = static_cast<uint32_t>(o_->field_pool.size());
    o_->field_pool.emplace_back();
  }
  o_->field_index.try_emplace(a.id, idx);
  FieldMap& field = o_->field_pool[idx];
  field.clear();

  o_->field_tentative.EnsureSize(graph_->num_nodes());
  o_->field_tentative.Reset();
  o_->heap.clear();
  auto relax = [&](NodeId v, double d) {
    if (d > radius_) {
      return;
    }
    const double* t = o_->field_tentative.Find(v);
    if (t == nullptr || d < *t) {
      o_->field_tentative.Set(v, d);
      o_->heap.push({d, v});
    }
  };
  relax(a.n1, a.w1);
  relax(a.n2, a.edge_weight - a.w1);

  size_t settles = 0;
  while (!o_->heap.empty()) {
    const auto [d, v] = o_->heap.top();
    o_->heap.pop();
    if (field.contains(v)) {
      continue;
    }
    field.try_emplace(v, d);
    if (++settles % PrefetchInterval(*graph_) == 0) {
      // Same settle-batch deadline poll as the SK expansion: a cancelled
      // query leaves a partial field (safe — distances only fall back to
      // the radius cap) and a sticky CANCELLED status the caller checks.
      if (ctx_->DeadlineExceeded()) {
        if (status_.ok()) {
          status_ = Status::Cancelled("query deadline exceeded in oracle");
        }
        break;
      }
      PrefetchFrontier(*graph_, o_->heap);
    }
    if (const Status s = graph_->GetAdjacency(v, &o_->adjacency); !s.ok()) {
      if (status_.ok()) {
        status_ = s;
      }
      break;  // partial field: distances fall back to the radius cap
    }
    for (const AdjacentEdge& adj : o_->adjacency) {
      if (!field.contains(adj.neighbor)) {
        relax(adj.neighbor, d + adj.weight);
      }
    }
  }
  return field;
}

void PairwiseDistanceOracle::BuildSharedField() {
  obs::ScopedSpan span(ctx_->trace, obs::Phase::kOracleSharedExpansion);
  const size_t n = graph_->num_nodes();
  o_->shared_dist.EnsureSize(n);
  o_->shared_tentative.EnsureSize(n);
  o_->pending_edge.EnsureSize(n);
  o_->pending_parent.EnsureSize(n);
  o_->parent_edge.EnsureSize(n);
  o_->local_index.EnsureSize(n);
  o_->shared_dist.Reset();
  o_->shared_tentative.Reset();
  o_->pending_edge.Reset();
  o_->pending_parent.Reset();
  o_->parent_edge.Reset();
  o_->local_index.Reset();
  o_->order.clear();
  o_->parent_local.clear();
  o_->heap.clear();

  // Seeds replicate the SK search's exactly, so every settled distance
  // here is bit-identical to the distance the search computed for the same
  // node (Dijkstra's settled values are independent of tie order: an
  // equal-distance relaxation is never a strict improvement).
  auto relax = [&](NodeId v, double d, EdgeId via_edge, NodeId via_parent) {
    if (d > radius_ || o_->shared_dist.Contains(v)) {
      return;
    }
    const double* t = o_->shared_tentative.Find(v);
    if (t == nullptr || d < *t) {
      o_->shared_tentative.Set(v, d);
      o_->pending_edge.Set(v, via_edge);
      o_->pending_parent.Set(v, via_parent);
      o_->heap.push({d, v});
    }
  };
  relax(query_edge_.n1, query_edge_.w1, kInvalidEdgeId, kInvalidNodeId);
  relax(query_edge_.n2, query_edge_.weight - query_edge_.w1, kInvalidEdgeId,
        kInvalidNodeId);

  while (!o_->heap.empty()) {
    const auto [d, v] = o_->heap.top();
    o_->heap.pop();
    if (o_->shared_dist.Contains(v)) {
      continue;
    }
    o_->shared_dist.Set(v, d);
    const auto local = static_cast<uint32_t>(o_->order.size());
    o_->local_index.Set(v, local);
    o_->order.push_back(v);
    o_->parent_edge.Set(v, o_->pending_edge.Get(v));
    const NodeId parent = o_->pending_parent.Get(v);
    o_->parent_local.push_back(parent == kInvalidNodeId
                                   ? UINT32_MAX
                                   : o_->local_index.Get(parent));
    if (o_->order.size() % PrefetchInterval(*graph_) == 0) {
      if (ctx_->DeadlineExceeded()) {
        if (status_.ok()) {
          status_ = Status::Cancelled("query deadline exceeded in oracle");
        }
        break;  // partial shared field: fewer pairs certify, none wrongly
      }
      PrefetchFrontier(*graph_, o_->heap);
    }
    if (const Status s = graph_->GetAdjacency(v, &o_->adjacency); !s.ok()) {
      if (status_.ok()) {
        status_ = s;
      }
      break;  // partial shared field: fewer pairs certify, none wrongly
    }
    for (const AdjacentEdge& adj : o_->adjacency) {
      if (!o_->shared_dist.Contains(adj.neighbor)) {
        relax(adj.neighbor, d + adj.weight, adj.edge, v);
      }
    }
  }
  ++stats_.shared_expansions;

  // Subtree (Euler) intervals over the shortest-path forest, so "is node x
  // below a's edge" is two comparisons. Children CSR first (parents settle
  // before their children, so parent_local[i] < i always).
  const auto m = static_cast<uint32_t>(o_->order.size());
  o_->child_head.assign(m + 1, 0);
  for (uint32_t i = 0; i < m; ++i) {
    if (o_->parent_local[i] != UINT32_MAX) {
      ++o_->child_head[o_->parent_local[i] + 1];
    }
  }
  for (uint32_t i = 0; i < m; ++i) {
    o_->child_head[i + 1] += o_->child_head[i];
  }
  o_->child_cursor.assign(o_->child_head.begin(), o_->child_head.end());
  o_->child_list.resize(o_->child_head[m]);
  for (uint32_t i = 0; i < m; ++i) {
    if (o_->parent_local[i] != UINT32_MAX) {
      o_->child_list[o_->child_cursor[o_->parent_local[i]]++] = i;
    }
  }
  o_->tin.resize(m);
  o_->tout.resize(m);
  o_->dfs_stack.clear();
  uint32_t t = 0;
  for (uint32_t root = 0; root < m; ++root) {
    if (o_->parent_local[root] != UINT32_MAX) {
      continue;  // only the (up to two) seed nodes are roots
    }
    o_->tin[root] = t++;
    o_->dfs_stack.push_back({root, o_->child_head[root]});
    while (!o_->dfs_stack.empty()) {
      auto& [v, cursor] = o_->dfs_stack.back();
      if (cursor < o_->child_head[v + 1]) {
        const uint32_t c = o_->child_list[cursor++];
        o_->tin[c] = t++;
        o_->dfs_stack.push_back({c, o_->child_head[c]});
      } else {
        o_->tout[v] = t++;
        o_->dfs_stack.pop_back();
      }
    }
  }
  shared_ready_ = true;
}

bool PairwiseDistanceOracle::TrySharedExact(const SkResult& a,
                                            const SkResult& b, double* best) {
  if (!shared_ready_) {
    if (!has_query_edge_) {
      return false;
    }
    BuildSharedField();
  }
  const double da = a.dist;

  // Locate the SPT subtree(s) hanging below a: every shortest path from q
  // into such a subtree passes over a, so for any node x in it
  // δ(a,x) = δ(q,x) − δ(q,a) (triangle lower bound meets the explicit
  // tree-path upper bound; see DESIGN.md). Two cases:
  //  * a on an ordinary edge: the endpoint r settled *through* a's edge,
  //    provided a's emitted distance is exactly "other endpoint + offset".
  //  * a on the query's own edge: each endpoint whose settled distance is
  //    the direct along-edge path AND with a lying between q and it —
  //    then q reaches that whole side over a. At δ(q,a) = 0 both sides
  //    qualify and every settled node is certified.
  uint32_t roots[2] = {UINT32_MAX, UINT32_MAX};
  if (a.edge == query_edge_.edge) {
    if (a.w1 <= query_edge_.w1 && o_->shared_dist.Contains(a.n1) &&
        o_->shared_dist.Get(a.n1) == query_edge_.w1 &&
        da == query_edge_.w1 - a.w1) {
      roots[0] = o_->local_index.Get(a.n1);
    }
    if (a.w1 >= query_edge_.w1 && o_->shared_dist.Contains(a.n2) &&
        o_->shared_dist.Get(a.n2) == query_edge_.weight - query_edge_.w1 &&
        da == a.w1 - query_edge_.w1) {
      roots[1] = o_->local_index.Get(a.n2);
    }
  } else {
    NodeId r = kInvalidNodeId;
    NodeId other = kInvalidNodeId;
    double off_other = 0.0;
    if (o_->shared_dist.Contains(a.n1) &&
        o_->parent_edge.Get(a.n1) == a.edge) {
      r = a.n1;
      other = a.n2;
      off_other = a.edge_weight - a.w1;
    } else if (o_->shared_dist.Contains(a.n2) &&
               o_->parent_edge.Get(a.n2) == a.edge) {
      r = a.n2;
      other = a.n1;
      off_other = a.w1;
    }
    if (r != kInvalidNodeId && o_->shared_dist.Contains(other) &&
        o_->shared_dist.Get(other) + off_other == da) {
      roots[0] = o_->local_index.Get(r);
    }
  }

  double exact = *best;  // the radius cap and same-edge path are exact
  double lb = kInfDistance;
  auto probe = [&](NodeId n, double off) {
    if (o_->shared_dist.Contains(n)) {
      const double dqn = o_->shared_dist.Get(n);
      const uint32_t n_local = o_->local_index.Get(n);
      if ((roots[0] != UINT32_MAX && IsAncestor(roots[0], n_local)) ||
          (roots[1] != UINT32_MAX && IsAncestor(roots[1], n_local))) {
        exact = std::min(exact, (dqn - da) + off);
      } else {
        // δ(a,n) >= |δ(q,n) − δ(q,a)| by the triangle inequality.
        lb = std::min(lb, std::abs(dqn - da) + off);
      }
    } else {
      // n was not settled within the shared radius: δ(q,n) > radius.
      lb = std::min(lb, std::max(0.0, radius_ - da) + off);
    }
  };
  probe(b.n1, b.w1);
  probe(b.n2, b.edge_weight - b.w1);

  if (exact <= lb - kCertSlack) {
    *best = exact;
    return true;
  }
  return false;
}

double PairwiseDistanceOracle::Distance(const SkResult& a_in,
                                        const SkResult& b_in) {
  if (a_in.id == b_in.id) {
    return 0.0;
  }
  // Evaluate from the canonical side — the object with the smaller
  // (dist, id) — so that δ(a,b) is bit-identical to δ(b,a) and a pure
  // function of the pair: the two directions sum the same edge weights in
  // different orders and can disagree in the last ulp, which would let
  // near-tied greedy choices diverge between SEQ and COM.
  const bool swap =
      a_in.dist != b_in.dist ? a_in.dist > b_in.dist : a_in.id > b_in.id;
  const SkResult& a = swap ? b_in : a_in;
  const SkResult& b = swap ? a_in : b_in;

  const uint64_t key = (static_cast<uint64_t>(a.id) << 32) | b.id;
  if (const double* cached = o_->pair_cache.find(key)) {
    return *cached;
  }
  ++stats_.pairs_evaluated;

  double best = radius_;
  if (a.edge == b.edge) {
    best = std::min(best, std::abs(a.w1 - b.w1));
  }
  if (strategy_ == OracleStrategy::kSharedExpansion &&
      TrySharedExact(a, b, &best)) {
    ++stats_.pairs_shared_exact;
    o_->pair_cache.try_emplace(key, best);
    return best;
  }
  const FieldMap& field = FieldOf(a);
  if (const double* d = field.find(b.n1)) {
    best = std::min(best, *d + b.w1);
  }
  if (const double* d = field.find(b.n2)) {
    best = std::min(best, *d + (b.edge_weight - b.w1));
  }
  o_->pair_cache.try_emplace(key, best);
  return best;
}

double PairwiseDistanceOracle::DistanceUpperBound(const SkResult& a,
                                                 const SkResult& b) const {
  if (a.id == b.id) {
    return 0.0;
  }
  // δ(a,b) ≤ δ(q,a) + δ(q,b) (a walk through the query location), and
  // Distance() never returns more than the radius cap. Both candidates are
  // also in Distance()'s own minimization, so ub >= exact always holds.
  double ub = std::min(radius_, a.dist + b.dist);
  if (a.edge == b.edge) {
    ub = std::min(ub, std::abs(a.w1 - b.w1));
  }
  return ub;
}

void PairwiseDistanceOracle::EnsureField(const SkResult& a) {
  if (strategy_ == OracleStrategy::kPerObjectDijkstra) {
    FieldOf(a);
  }
}

void PairwiseDistanceOracle::DropField(ObjectId id) {
  if (const uint32_t* idx = o_->field_index.find(id)) {
    o_->free_fields.push_back(*idx);
    o_->field_index.erase(id);
  }
}

}  // namespace dsks
