#ifndef DSKS_CORE_RANKED_SEARCH_H_
#define DSKS_CORE_RANKED_SEARCH_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/query.h"
#include "core/sk_search.h"
#include "graph/ccam.h"
#include "index/object_index.h"

namespace dsks {

/// The ranked (top-k) spatial keyword query on road networks, the §6
/// related-work variant studied by Rocha-Junior et al. [17]: instead of
/// the boolean AND constraint, every object containing at least one query
/// keyword competes with the score
///
///     score(o) = α · δ(q,o)/δmax + (1-α) · (1 − |q.T ∩ o.T| / |q.T|)
///
/// (lower is better), and the k best-scored objects within δmax are
/// returned. Implemented on the same incremental network expansion as
/// Algorithm 3 with threshold termination: objects arrive by network
/// distance, so once α·δ/δmax of the expansion frontier exceeds the k-th
/// best score no unseen object can improve the result.
struct RankedQuery {
  SkQuery sk;  // terms under OR semantics here
  size_t k = 10;
  /// Weight of the spatial component; 1 = pure distance.
  double alpha = 0.5;
};

struct RankedResult {
  ObjectId id = kInvalidObjectId;
  double dist = 0.0;
  uint32_t matched = 0;
  double score = 0.0;
};

struct RankedSearchStats {
  uint64_t objects_scored = 0;
  uint64_t nodes_settled = 0;
  bool early_terminated = false;
};

/// Runs the ranked query; `*out` holds the results sorted by (score, id).
/// On a storage error `*out` is left empty and `*stats` (when given) still
/// accounts the work done before the error.
Status RankedSkSearch(const CcamGraph* graph, ObjectIndex* index,
                      const RankedQuery& query,
                      const QueryEdgeInfo& query_edge,
                      std::vector<RankedResult>* out,
                      RankedSearchStats* stats = nullptr);

/// Boolean k-nearest-neighbour SK query (Definition 1 with a result-count
/// bound instead of exhausting δmax): the k closest objects containing all
/// keywords. Thin wrapper over IncrementalSkSearch that stops pulling
/// after k results — the expansion never goes further than needed. On a
/// storage error `*out` keeps the (correct) results emitted before it.
Status BooleanKnnSearch(const CcamGraph* graph, ObjectIndex* index,
                        const SkQuery& query,
                        const QueryEdgeInfo& query_edge, size_t k,
                        std::vector<SkResult>* out);

}  // namespace dsks

#endif  // DSKS_CORE_RANKED_SEARCH_H_
