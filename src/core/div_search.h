#ifndef DSKS_CORE_DIV_SEARCH_H_
#define DSKS_CORE_DIV_SEARCH_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/distance_oracle.h"
#include "core/objective.h"
#include "core/query.h"
#include "core/sk_search.h"

namespace dsks {

/// Counters of one diversified search execution.
struct DivSearchStats {
  /// Objects pulled from the incremental SK search.
  uint64_t candidates = 0;
  /// Visited objects eliminated by the diversity pruning (Algorithm 6
  /// line 13-14).
  uint64_t pruned_objects = 0;
  /// True when the diversity bound terminated the network expansion before
  /// the SK search was exhausted.
  bool early_terminated = false;
  /// Pairwise distance fields computed by the oracle (per-object bounded
  /// Dijkstra expansions — eager under kPerObjectDijkstra, fallback-only
  /// under kSharedExpansion).
  uint64_t distance_fields = 0;
  /// Distance() evaluations with distinct endpoints.
  uint64_t oracle_pairs = 0;
  /// Of those, pairs answered exactly from the shared expansion.
  uint64_t oracle_pairs_shared = 0;
  /// Shared expansions run by the oracle (0 or 1).
  uint64_t oracle_shared_expansions = 0;
};

struct DivSearchOutput {
  /// The k selected objects (fewer if fewer candidates exist).
  std::vector<SkResult> selected;
  /// f(S) of the selection (0 when |S| < 2).
  double objective = 0.0;
  /// First storage error hit by the SK search or the distance oracle.
  /// When non-OK the selection reflects only the work done before the
  /// error; `stats` still accounts that partial work.
  Status status;
  DivSearchStats stats;
};

/// SEQ (§4.1): run Algorithm 3 to completion, then feed every candidate to
/// the greedy Algorithm 1. The straightforward baseline of §5.2.
DivSearchOutput DiversifiedSearchSEQ(IncrementalSkSearch* search,
                                     const DivQuery& query,
                                     PairwiseDistanceOracle* oracle);

/// COM (§4.3, Algorithm 6): consume candidates incrementally, maintain the
/// core pairs and θ_T with Algorithm 5, prune visited objects that can no
/// longer become core, and terminate the network expansion as soon as no
/// unseen object can contribute a pair above θ_T.
DivSearchOutput DiversifiedSearchCOM(IncrementalSkSearch* search,
                                     const DivQuery& query,
                                     PairwiseDistanceOracle* oracle);

/// f(S) of an explicit selection, using the oracle for pairwise distances.
double EvaluateObjective(const Objective& objective,
                         PairwiseDistanceOracle* oracle,
                         const std::vector<SkResult>& selected);

}  // namespace dsks

#endif  // DSKS_CORE_DIV_SEARCH_H_
