#ifndef DSKS_CORE_SK_SEARCH_H_
#define DSKS_CORE_SK_SEARCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/query.h"
#include "core/query_context.h"
#include "graph/ccam.h"
#include "graph/types.h"
#include "index/object_index.h"

namespace dsks {

/// Where the query point sits on the network: the endpoints and weight of
/// its edge plus the cost from the reference node n1 to the query point.
/// Clients know the query's edge (e.g. by snapping through the network
/// R-tree), so this is cheap to provide.
struct QueryEdgeInfo {
  NodeId n1 = kInvalidNodeId;
  NodeId n2 = kInvalidNodeId;
  EdgeId edge = kInvalidEdgeId;
  double weight = 0.0;
  /// w(n1, q).
  double w1 = 0.0;
};

/// Algorithm 3: incremental network expansion (INE) integrated with
/// Dijkstra's algorithm, pulling spatio-textual objects from an
/// ObjectIndex in non-decreasing order of network distance from the query.
///
/// The search is pull-based: each Next() call returns the next closest
/// object satisfying the keyword constraint within δmax, expanding the
/// network only as far as needed. This is what lets the diversified search
/// (Algorithm 6) terminate the expansion early once its pruning bound
/// fires.
///
/// All graph traversal goes through the CCAM file and all object loading
/// through the index, so every page touched is accounted in the buffer
/// pool / disk statistics.
///
/// All mutable search state lives in a QueryContext's SkSearchScratch.
/// Pass a long-lived context (one per thread) and steady-state searches do
/// near-zero heap allocation; with no context the search allocates a
/// private one for its lifetime.
class IncrementalSkSearch {
 public:
  struct Stats {
    uint64_t nodes_settled = 0;
    uint64_t edges_processed = 0;
    uint64_t objects_emitted = 0;
  };

  IncrementalSkSearch(const CcamGraph* graph, ObjectIndex* index,
                      const SkQuery& query, const QueryEdgeInfo& query_edge,
                      QueryContext* ctx = nullptr);
  ~IncrementalSkSearch();

  IncrementalSkSearch(const IncrementalSkSearch&) = delete;
  IncrementalSkSearch& operator=(const IncrementalSkSearch&) = delete;

  /// Produces the next object in non-decreasing δ(q, o), with
  /// δ(q, o) <= δmax. Returns false when the search is exhausted, was
  /// terminated, or hit a storage error — callers distinguish the last
  /// case by checking status() after the final Next() (sticky-status
  /// iterator pattern).
  bool Next(SkResult* out);

  /// Stops the search early: subsequent Next() calls return false and no
  /// further I/O happens. Used by the diversity pruning of Algorithm 6.
  void Terminate() { terminated_ = true; }

  /// First storage error encountered (OK while the search is healthy).
  /// Results already emitted are correct; the search stops at the error.
  const Status& status() const { return status_; }

  const Stats& stats() const { return stats_; }

  /// The query's trace sink (null when tracing is off). Exposed so callers
  /// driving the search (e.g. the diversified search) can record their own
  /// phases into the same trace.
  obs::QueryTrace* trace() const { return ctx_->trace; }

 private:
  void RelaxNode(NodeId v, double dist);

  /// Applies distance `dist` to object `o` on edge `e` = (`n1`, `n2`)
  /// (weight `w`).
  void UpdateObject(const LoadedObject& o, EdgeId e, NodeId n1, NodeId n2,
                    double w, double dist);

  /// Loads (or re-uses) the objects of edge `e` and applies the paths
  /// through endpoint `v`, just settled at distance `d` (`nb` is the other
  /// endpoint).
  void ProcessEdge(EdgeId e, double w, NodeId v, NodeId nb, double d);

  /// Grabs a recycled edge slot from the scratch pool.
  uint32_t AllocEdgeSlot();

  /// Drops settled/stale node-heap entries; returns the fresh top key
  /// (the δT lower bound) or infinity when expansion is finished.
  double NodeLowerBound();

  /// Settles one node and processes its adjacency. Returns false when no
  /// settleable node remains within δmax.
  bool ExpandOneNode();

  const CcamGraph* graph_;
  ObjectIndex* index_;
  const double delta_max_;
  std::vector<TermId> terms_;

  std::unique_ptr<QueryContext> owned_ctx_;  // only when no ctx was passed
  QueryContext* ctx_;
  SkSearchScratch* s_;  // = &ctx_->sk_search

  bool expansion_done_ = false;
  bool terminated_ = false;
  Status status_;
  Stats stats_;
};

}  // namespace dsks

#endif  // DSKS_CORE_SK_SEARCH_H_
