#ifndef DSKS_CORE_QUERY_H_
#define DSKS_CORE_QUERY_H_

#include <vector>

#include "common/status.h"
#include "graph/dijkstra.h"
#include "graph/types.h"

namespace dsks {

/// A boolean spatial keyword query on a road network (Definition 1): find
/// the objects within network distance `delta_max` of `loc` that contain
/// every keyword in `terms`.
struct SkQuery {
  NetworkLocation loc;
  /// Sorted, distinct query keywords (q.T).
  std::vector<TermId> terms;
  /// Maximal network distance δmax of the search.
  double delta_max = 0.0;
};

/// A diversified spatial keyword query (Definition 2): among the SK query
/// results, pick `k` objects maximizing the bi-criteria objective f(S)
/// with relevance weight `lambda`.
struct DivQuery {
  SkQuery sk;
  size_t k = 10;
  double lambda = 0.8;
};

/// Validates and canonicalizes a client-supplied SK query in place: terms
/// are sorted and deduplicated; empty terms, a non-positive or non-finite
/// delta_max, a negative offset, or an invalid edge id yield
/// InvalidArgument. The search constructors CHECK these invariants, so
/// every API boundary (Database, CLI) must funnel untrusted queries
/// through here first. Edge-id range checks against a concrete network
/// are the boundary's own job (it knows the network; this function
/// doesn't).
Status NormalizeSkQuery(SkQuery* query);

/// NormalizeSkQuery plus the diversified knobs: k >= 1 and lambda in
/// [0, 1].
Status NormalizeDivQuery(DivQuery* query);

/// An object produced by the SK search, with everything downstream
/// consumers need: its network distance from the query and its position on
/// its edge (for pairwise network-distance computation).
struct SkResult {
  ObjectId id = kInvalidObjectId;
  EdgeId edge = kInvalidEdgeId;
  /// Endpoints of the object's edge; n1 is the reference node (n1 < n2).
  NodeId n1 = kInvalidNodeId;
  NodeId n2 = kInvalidNodeId;
  /// Cost from the edge's reference node n1 to the object.
  double w1 = 0.0;
  /// Total cost w(n1, n2) of the object's edge.
  double edge_weight = 0.0;
  /// δ(q, o).
  double dist = 0.0;
};

}  // namespace dsks

#endif  // DSKS_CORE_QUERY_H_
