#include "core/query.h"

#include <algorithm>
#include <cmath>

namespace dsks {

Status NormalizeSkQuery(SkQuery* query) {
  if (query->terms.empty()) {
    return Status::InvalidArgument("query needs at least one keyword");
  }
  std::sort(query->terms.begin(), query->terms.end());
  query->terms.erase(
      std::unique(query->terms.begin(), query->terms.end()),
      query->terms.end());
  if (!std::isfinite(query->delta_max) || query->delta_max <= 0.0) {
    return Status::InvalidArgument("delta_max must be positive and finite");
  }
  if (query->loc.edge == kInvalidEdgeId) {
    return Status::InvalidArgument("query location has no edge");
  }
  if (!std::isfinite(query->loc.offset) || query->loc.offset < 0.0) {
    return Status::InvalidArgument(
        "query offset must be non-negative and finite");
  }
  return Status::Ok();
}

Status NormalizeDivQuery(DivQuery* query) {
  DSKS_RETURN_IF_ERROR(NormalizeSkQuery(&query->sk));
  if (query->k == 0) {
    return Status::InvalidArgument("diversified query needs k >= 1");
  }
  if (!std::isfinite(query->lambda) || query->lambda < 0.0 ||
      query->lambda > 1.0) {
    return Status::InvalidArgument("lambda must be in [0, 1]");
  }
  return Status::Ok();
}

}  // namespace dsks
