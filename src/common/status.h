#ifndef DSKS_COMMON_STATUS_H_
#define DSKS_COMMON_STATUS_H_

#include <cstddef>
#include <memory>
#include <string>
#include <utility>

namespace dsks {

/// Lightweight operation result, RocksDB-style. Functions that can fail on
/// bad input, I/O faults, corruption, or resource exhaustion return a
/// Status; programming errors are caught by CHECK macros instead (see
/// DESIGN.md "Error handling" for the contract).
///
/// OK is represented by a null rep pointer, so the fault-free fast path —
/// the overwhelmingly common case on hot read paths like the buffer pool's
/// per-page fetch — costs one register store to construct, one null test
/// to destroy, and a pointer move to return. Errors allocate.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound,
    kInvalidArgument,
    kCorruption,
    kResourceExhausted,
    kOutOfRange,
    kIOError,
    kCancelled,
  };
  /// Number of codes, for per-code counter arrays indexed by Code.
  static constexpr size_t kNumCodes = 8;

  Status() = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;
  Status(const Status& other)
      : rep_(other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
    }
    return *this;
  }

  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  bool IsNotFound() const { return code() == Code::kNotFound; }
  bool IsInvalidArgument() const { return code() == Code::kInvalidArgument; }
  bool IsCorruption() const { return code() == Code::kCorruption; }
  bool IsResourceExhausted() const {
    return code() == Code::kResourceExhausted;
  }
  bool IsOutOfRange() const { return code() == Code::kOutOfRange; }
  bool IsIOError() const { return code() == Code::kIOError; }
  bool IsCancelled() const { return code() == Code::kCancelled; }

  Code code() const { return rep_ ? rep_->code : Code::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// Stable upper-snake-case name of a code ("OK", "IO_ERROR", ...), used
  /// as the {code} label of error counters and in ToString().
  static const char* CodeName(Code code);
  const char* code_name() const { return CodeName(code()); }

  /// Human-readable "<CODE>: <message>" string for logs and errors.
  std::string ToString() const;

 private:
  struct Rep {
    Code code;
    std::string message;
  };

  Status(Code code, std::string msg)
      : rep_(std::make_unique<Rep>(Rep{code, std::move(msg)})) {}

  std::unique_ptr<Rep> rep_;  // null means OK
};

/// Propagates a non-OK Status to the caller.
#define DSKS_RETURN_IF_ERROR(expr)           \
  do {                                       \
    ::dsks::Status _dsks_status = (expr);    \
    if (!_dsks_status.ok()) {                \
      return _dsks_status;                   \
    }                                        \
  } while (0)

}  // namespace dsks

#endif  // DSKS_COMMON_STATUS_H_
