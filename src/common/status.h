#ifndef DSKS_COMMON_STATUS_H_
#define DSKS_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace dsks {

/// Lightweight operation result, RocksDB-style. Functions that can fail on
/// bad input or resource exhaustion return a Status; programming errors are
/// caught by CHECK macros instead.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound,
    kInvalidArgument,
    kCorruption,
    kResourceExhausted,
    kOutOfRange,
  };

  Status() : code_(Code::kOk) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "<CODE>: <message>" string for logs and errors.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

}  // namespace dsks

#endif  // DSKS_COMMON_STATUS_H_
