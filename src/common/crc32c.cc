#include "common/crc32c.h"

#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <nmmintrin.h>
#define DSKS_CRC32C_HAVE_SSE42 1
#endif

namespace dsks {
namespace crc32c {

namespace {

// Slicing-by-8 tables for the reflected Castagnoli polynomial. table_[0]
// is the classic byte-at-a-time table; table_[k] advances a byte that sits
// k positions ahead in the message.
struct Tables {
  uint32_t t[8][256];

  Tables() {
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (int k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xFF] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Tables& tables() {
  static const Tables kTables;
  return kTables;
}

uint32_t ExtendSoftware(uint32_t crc, const uint8_t* p, size_t n) {
  const Tables& tab = tables();
  // Process 8 bytes per iteration via slicing-by-8.
  while (n >= 8) {
    uint32_t lo;
    std::memcpy(&lo, p, 4);
    lo ^= crc;
    uint32_t hi;
    std::memcpy(&hi, p + 4, 4);
    crc = tab.t[7][lo & 0xFF] ^ tab.t[6][(lo >> 8) & 0xFF] ^
          tab.t[5][(lo >> 16) & 0xFF] ^ tab.t[4][lo >> 24] ^
          tab.t[3][hi & 0xFF] ^ tab.t[2][(hi >> 8) & 0xFF] ^
          tab.t[1][(hi >> 16) & 0xFF] ^ tab.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = tab.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

#ifdef DSKS_CRC32C_HAVE_SSE42
// The crc32 instruction has 3-cycle latency but 1-cycle throughput, so a
// single dependency chain runs at 1/3 of peak. For large inputs (the 4 KiB
// page-verify path) we run three independent chains over adjacent blocks
// and stitch them together with a linear "advance the CRC state by kBlock
// zero bytes" operator, applied via four 256-entry tables.
constexpr size_t kBlock = 1360;  // 170 × 8; 3 blocks cover 4080 of a page

struct ShiftTables {
  uint32_t t[4][256];

  ShiftTables() {
    const Tables& tab = tables();
    // Image of each state basis bit under "consume kBlock zero bytes".
    uint32_t basis[32];
    for (int bit = 0; bit < 32; ++bit) {
      uint32_t s = 1u << bit;
      for (size_t i = 0; i < kBlock; ++i) {
        s = tab.t[0][s & 0xFF] ^ (s >> 8);
      }
      basis[bit] = s;
    }
    // CRC state advance is GF(2)-linear, so the operator distributes over
    // the XOR of basis images.
    for (int k = 0; k < 4; ++k) {
      for (uint32_t b = 0; b < 256; ++b) {
        uint32_t s = 0;
        for (int j = 0; j < 8; ++j) {
          if ((b >> j) & 1) {
            s ^= basis[8 * k + j];
          }
        }
        t[k][b] = s;
      }
    }
  }
};

const ShiftTables& shift_tables() {
  static const ShiftTables kShift;
  return kShift;
}

inline uint32_t ShiftByBlock(const ShiftTables& st, uint32_t crc) {
  return st.t[0][crc & 0xFF] ^ st.t[1][(crc >> 8) & 0xFF] ^
         st.t[2][(crc >> 16) & 0xFF] ^ st.t[3][crc >> 24];
}

__attribute__((target("sse4.2"))) uint32_t ExtendHardware(uint32_t crc,
                                                          const uint8_t* p,
                                                          size_t n) {
  if (n >= 3 * kBlock) {
    const ShiftTables& st = shift_tables();
    do {
      uint64_t a = crc;
      uint64_t b = 0;
      uint64_t c = 0;
      for (size_t i = 0; i < kBlock; i += 8) {
        uint64_t va;
        uint64_t vb;
        uint64_t vc;
        std::memcpy(&va, p + i, 8);
        std::memcpy(&vb, p + kBlock + i, 8);
        std::memcpy(&vc, p + 2 * kBlock + i, 8);
        a = _mm_crc32_u64(a, va);
        b = _mm_crc32_u64(b, vb);
        c = _mm_crc32_u64(c, vc);
      }
      // State after A·B·C = shift²(after A) ^ shift(B from zero) ^
      // (C from zero); see the linearity argument on ShiftTables.
      crc = ShiftByBlock(st, ShiftByBlock(st, static_cast<uint32_t>(a))) ^
            ShiftByBlock(st, static_cast<uint32_t>(b)) ^
            static_cast<uint32_t>(c);
      p += 3 * kBlock;
      n -= 3 * kBlock;
    } while (n >= 3 * kBlock);
  }
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    crc64 = _mm_crc32_u64(crc64, v);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (n-- > 0) {
    crc = _mm_crc32_u8(crc, *p++);
  }
  return crc;
}

bool HaveSse42() { return __builtin_cpu_supports("sse4.2") != 0; }
#endif  // DSKS_CRC32C_HAVE_SSE42

using ExtendFn = uint32_t (*)(uint32_t, const uint8_t*, size_t);

ExtendFn PickExtendFn() {
#ifdef DSKS_CRC32C_HAVE_SSE42
  if (HaveSse42()) {
    return &ExtendHardware;
  }
#endif
  return &ExtendSoftware;
}

uint32_t ExtendRaw(uint32_t crc, const uint8_t* p, size_t n) {
  static const ExtendFn fn = PickExtendFn();
  return fn(crc, p, n);
}

}  // namespace

uint32_t Extend(uint32_t init_crc, const void* data, size_t n) {
  return ~ExtendRaw(~init_crc, static_cast<const uint8_t*>(data), n);
}

uint32_t Value(const void* data, size_t n) { return Extend(0, data, n); }

}  // namespace crc32c
}  // namespace dsks
