#ifndef DSKS_COMMON_TIMER_H_
#define DSKS_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace dsks {

/// Wall-clock stopwatch used by the experiment harness.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Reset, in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dsks

#endif  // DSKS_COMMON_TIMER_H_
