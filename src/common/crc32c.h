#ifndef DSKS_COMMON_CRC32C_H_
#define DSKS_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace dsks {
namespace crc32c {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41 reflected to 0x82F63B78) of
/// `data[0, n)`. This is the polynomial used by iSCSI, ext4 and RocksDB
/// page checksums; hardware-accelerated via SSE4.2 when the CPU supports
/// it, with a slicing-by-8 table fallback elsewhere. The two paths produce
/// identical values, so checksums are portable across machines.
uint32_t Value(const void* data, size_t n);

/// Extends `init_crc` (a previous Value/Extend result) over more bytes.
uint32_t Extend(uint32_t init_crc, const void* data, size_t n);

}  // namespace crc32c
}  // namespace dsks

#endif  // DSKS_COMMON_CRC32C_H_
