#ifndef DSKS_COMMON_RANDOM_H_
#define DSKS_COMMON_RANDOM_H_

#include <cstdint>
#include <random>

namespace dsks {

/// Deterministic pseudo-random source used throughout data generation and
/// tests so that every experiment is reproducible from a single seed.
class Random {
 public:
  explicit Random(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) {
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool OneIn(double p) { return NextDouble() < p; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dsks

#endif  // DSKS_COMMON_RANDOM_H_
