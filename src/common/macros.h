#ifndef DSKS_COMMON_MACROS_H_
#define DSKS_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Fatal-on-violation invariant checks. These guard programming errors
/// (broken invariants, out-of-contract calls); recoverable conditions use
/// dsks::Status instead. Enabled in all build types so that benchmarks run
/// against the same checked code that tests exercise; the checks are cheap
/// (a branch) relative to the I/O-bound workloads in this library.
#define DSKS_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "DSKS_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define DSKS_CHECK_MSG(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "DSKS_CHECK failed at %s:%d: %s (%s)\n",        \
                   __FILE__, __LINE__, #cond, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

/// Debug-only variants, compiled out under NDEBUG. For checks on teardown
/// paths (e.g. destructors) where release builds prefer best-effort
/// continuation over aborting the process.
#ifdef NDEBUG
#define DSKS_DCHECK(cond) \
  do {                    \
  } while (0)
#define DSKS_DCHECK_MSG(cond, msg) \
  do {                             \
  } while (0)
#else
#define DSKS_DCHECK(cond) DSKS_CHECK(cond)
#define DSKS_DCHECK_MSG(cond, msg) DSKS_CHECK_MSG(cond, msg)
#endif

#endif  // DSKS_COMMON_MACROS_H_
