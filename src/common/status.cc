#include "common/status.h"

namespace dsks {

const char* Status::CodeName(Code code) {
  switch (code) {
    case Code::kOk:
      return "OK";
    case Code::kNotFound:
      return "NOT_FOUND";
    case Code::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case Code::kCorruption:
      return "CORRUPTION";
    case Code::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case Code::kOutOfRange:
      return "OUT_OF_RANGE";
    case Code::kIOError:
      return "IO_ERROR";
    case Code::kCancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result(code_name());
  if (!message().empty()) {
    result += ": ";
    result += message();
  }
  return result;
}

}  // namespace dsks
