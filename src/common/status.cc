#include "common/status.h"

namespace dsks {

std::string Status::ToString() const {
  const char* name = "UNKNOWN";
  switch (code_) {
    case Code::kOk:
      return "OK";
    case Code::kNotFound:
      name = "NOT_FOUND";
      break;
    case Code::kInvalidArgument:
      name = "INVALID_ARGUMENT";
      break;
    case Code::kCorruption:
      name = "CORRUPTION";
      break;
    case Code::kResourceExhausted:
      name = "RESOURCE_EXHAUSTED";
      break;
    case Code::kOutOfRange:
      name = "OUT_OF_RANGE";
      break;
  }
  std::string result(name);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace dsks
