#ifndef DSKS_COMMON_FLAT_CONTAINERS_H_
#define DSKS_COMMON_FLAT_CONTAINERS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/macros.h"

/// Cache-friendly containers for the query hot path.
///
/// The node/edge/object ids in this codebase are dense 32-bit integers, and
/// the per-query state keyed by them (tentative distances, loaded edges,
/// object best-distances, distance fields) is built up and torn down once per
/// query. `std::unordered_map` pays a heap allocation per node plus a pointer
/// chase per probe for that; the two containers here avoid both:
///
///  * `FlatHashMap` — open addressing with linear probing over a single
///    contiguous slot array (power-of-two capacity, multiplicative hashing).
///    `clear()` keeps the capacity, so a map owned by long-lived scratch
///    (see core/query_context.h) stops allocating after the first few
///    queries.
///  * `EpochArray` — a dense array with a per-slot epoch stamp. `Reset()` is
///    O(1) (bump the epoch) instead of O(capacity), which is what makes a
///    num_nodes-sized array per *query* affordable: clearing 7k doubles per
///    query would cost more than the queries themselves.
namespace dsks {

/// Open-addressed hash map for trivially-copyable integer keys.
///
/// Deliberately minimal: the subset of the `unordered_map` interface the
/// query engine uses (`try_emplace`, `find`, `at`, `count`, `erase`,
/// `operator[]`, range-for), with `clear()` retaining capacity. Deletion
/// uses backward-shift so probe chains never accumulate tombstones.
template <typename K, typename V>
class FlatHashMap {
 public:
  using value_type = std::pair<K, V>;

  class iterator {
   public:
    iterator(FlatHashMap* map, size_t index) : map_(map), index_(index) {
      SkipEmpty();
    }
    value_type& operator*() const { return map_->slots_[index_]; }
    value_type* operator->() const { return &map_->slots_[index_]; }
    iterator& operator++() {
      ++index_;
      SkipEmpty();
      return *this;
    }
    bool operator==(const iterator& o) const { return index_ == o.index_; }
    bool operator!=(const iterator& o) const { return index_ != o.index_; }

   private:
    void SkipEmpty() {
      while (index_ < map_->slots_.size() && !map_->full_[index_]) {
        ++index_;
      }
    }
    FlatHashMap* map_;
    size_t index_;
  };

  class const_iterator {
   public:
    const_iterator(const FlatHashMap* map, size_t index)
        : map_(map), index_(index) {
      SkipEmpty();
    }
    const value_type& operator*() const { return map_->slots_[index_]; }
    const value_type* operator->() const { return &map_->slots_[index_]; }
    const_iterator& operator++() {
      ++index_;
      SkipEmpty();
      return *this;
    }
    bool operator==(const const_iterator& o) const {
      return index_ == o.index_;
    }
    bool operator!=(const const_iterator& o) const {
      return index_ != o.index_;
    }

   private:
    void SkipEmpty() {
      while (index_ < map_->slots_.size() && !map_->full_[index_]) {
        ++index_;
      }
    }
    const FlatHashMap* map_;
    size_t index_;
  };

  FlatHashMap() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return slots_.size(); }

  /// Drops all entries but keeps the slot array — the point of pooling
  /// these maps in per-thread scratch.
  void clear() {
    if (size_ != 0) {
      std::fill(full_.begin(), full_.end(), uint8_t{0});
      size_ = 0;
    }
  }

  void reserve(size_t n) {
    // Grow so that n entries stay under the load factor.
    size_t needed = kMinCapacity;
    while (needed * 3 / 4 < n) {
      needed *= 2;
    }
    if (needed > slots_.size()) {
      Rehash(needed);
    }
  }

  V* find(K key) {
    if (slots_.empty()) {
      return nullptr;
    }
    size_t i = Hash(key) & mask_;
    while (full_[i]) {
      if (slots_[i].first == key) {
        return &slots_[i].second;
      }
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  const V* find(K key) const {
    return const_cast<FlatHashMap*>(this)->find(key);
  }

  size_t count(K key) const { return find(key) ? 1 : 0; }
  bool contains(K key) const { return find(key) != nullptr; }

  V& at(K key) {
    V* v = find(key);
    DSKS_CHECK_MSG(v != nullptr, "FlatHashMap::at on missing key");
    return *v;
  }
  const V& at(K key) const {
    const V* v = find(key);
    DSKS_CHECK_MSG(v != nullptr, "FlatHashMap::at on missing key");
    return *v;
  }

  /// Inserts {key, V(args...)} if absent. Returns {&value, inserted}.
  template <typename... Args>
  std::pair<V*, bool> try_emplace(K key, Args&&... args) {
    GrowIfNeeded();
    size_t i = Hash(key) & mask_;
    while (full_[i]) {
      if (slots_[i].first == key) {
        return {&slots_[i].second, false};
      }
      i = (i + 1) & mask_;
    }
    full_[i] = 1;
    slots_[i].first = key;
    slots_[i].second = V(std::forward<Args>(args)...);
    ++size_;
    return {&slots_[i].second, true};
  }

  V& operator[](K key) { return *try_emplace(key).first; }

  void insert_or_assign(K key, V value) {
    auto [v, inserted] = try_emplace(key);
    *v = std::move(value);
  }

  /// Removes `key` if present; returns the number of entries removed (0/1).
  /// Backward-shift deletion: entries after the hole whose probe chain
  /// passes through it are moved back, so lookups never need tombstones.
  size_t erase(K key) {
    if (slots_.empty()) {
      return 0;
    }
    size_t i = Hash(key) & mask_;
    while (full_[i]) {
      if (slots_[i].first == key) {
        size_t hole = i;
        size_t j = (i + 1) & mask_;
        while (full_[j]) {
          const size_t home = Hash(slots_[j].first) & mask_;
          // Move j back iff the hole lies cyclically between home and j.
          if (((j - home) & mask_) >= ((j - hole) & mask_)) {
            slots_[hole] = std::move(slots_[j]);
            hole = j;
          }
          j = (j + 1) & mask_;
        }
        full_[hole] = 0;
        --size_;
        return 1;
      }
      i = (i + 1) & mask_;
    }
    return 0;
  }

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, slots_.size()); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, slots_.size()); }

 private:
  static constexpr size_t kMinCapacity = 16;

  static size_t Hash(K key) {
    // Fibonacci (multiplicative) hashing; the high bits end up well mixed,
    // so fold them down before masking.
    uint64_t h = static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ull;
    return static_cast<size_t>(h >> 32 ^ h);
  }

  void GrowIfNeeded() {
    if (slots_.empty()) {
      Rehash(kMinCapacity);
    } else if ((size_ + 1) * 4 > slots_.size() * 3) {
      Rehash(slots_.size() * 2);
    }
  }

  void Rehash(size_t new_capacity) {
    std::vector<value_type> old_slots = std::move(slots_);
    std::vector<uint8_t> old_full = std::move(full_);
    slots_.assign(new_capacity, value_type());
    full_.assign(new_capacity, 0);
    mask_ = new_capacity - 1;
    size_ = 0;
    for (size_t i = 0; i < old_slots.size(); ++i) {
      if (old_full[i]) {
        size_t j = Hash(old_slots[i].first) & mask_;
        while (full_[j]) {
          j = (j + 1) & mask_;
        }
        full_[j] = 1;
        slots_[j] = std::move(old_slots[i]);
        ++size_;
      }
    }
  }

  std::vector<value_type> slots_;
  std::vector<uint8_t> full_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

/// Dense array of T keyed by a small integer (node id), with O(1) reset.
///
/// Each slot carries the epoch at which it was last written; `Reset()` bumps
/// the current epoch so every slot instantly reads as "unset". Epochs are
/// 32-bit; on wrap the stamp array is cleared once so stale slots from
/// 4 billion resets ago cannot alias the fresh epoch.
template <typename T>
class EpochArray {
 public:
  /// Ensures capacity for indices [0, n). Existing stamps are preserved;
  /// growth mid-epoch is safe (new slots start at epoch 0 and the live
  /// epoch is >= 1).
  void EnsureSize(size_t n) {
    if (values_.size() < n) {
      values_.resize(n);
      stamps_.resize(n, 0);
    }
  }

  size_t capacity() const { return values_.size(); }

  /// Invalidates every slot. O(1) except on 32-bit epoch wrap.
  void Reset() {
    if (++epoch_ == 0) {
      std::fill(stamps_.begin(), stamps_.end(), 0u);
      epoch_ = 1;
    }
  }

  bool Contains(size_t i) const {
    return i < stamps_.size() && stamps_[i] == epoch_;
  }

  /// Pointer to the value set this epoch, or nullptr.
  T* Find(size_t i) {
    return Contains(i) ? &values_[i] : nullptr;
  }
  const T* Find(size_t i) const {
    return Contains(i) ? &values_[i] : nullptr;
  }

  /// Value set this epoch; must exist.
  const T& Get(size_t i) const {
    DSKS_DCHECK(Contains(i));
    return values_[i];
  }

  T& Set(size_t i, T value) {
    DSKS_DCHECK_MSG(i < values_.size(), "EpochArray index out of range");
    stamps_[i] = epoch_;
    values_[i] = std::move(value);
    return values_[i];
  }

 private:
  std::vector<T> values_;
  std::vector<uint32_t> stamps_;
  uint32_t epoch_ = 1;
};

/// Binary min-heap over a reusable vector; `clear()` keeps capacity.
/// Ordering is `operator<` on T — for std::pair that is lexicographic, which
/// is exactly the (distance, id) tie-break the search algorithms rely on.
template <typename T>
class ReusableMinHeap {
 public:
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  void clear() { heap_.clear(); }
  void reserve(size_t n) { heap_.reserve(n); }

  const T& top() const {
    DSKS_DCHECK(!heap_.empty());
    return heap_.front();
  }

  /// Read-only view of the backing array in heap order (front = minimum,
  /// shallow layers ≈ the next elements to pop). Lets expansion loops
  /// sample the frontier for page prefetching without mutating the heap.
  const std::vector<T>& storage() const { return heap_; }

  void push(T value) {
    heap_.push_back(std::move(value));
    size_t i = heap_.size() - 1;
    while (i > 0) {
      const size_t parent = (i - 1) / 2;
      if (heap_[i] < heap_[parent]) {
        std::swap(heap_[i], heap_[parent]);
        i = parent;
      } else {
        break;
      }
    }
  }

  void pop() {
    DSKS_DCHECK(!heap_.empty());
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    size_t i = 0;
    const size_t n = heap_.size();
    for (;;) {
      const size_t l = 2 * i + 1;
      const size_t r = l + 1;
      size_t smallest = i;
      if (l < n && heap_[l] < heap_[smallest]) {
        smallest = l;
      }
      if (r < n && heap_[r] < heap_[smallest]) {
        smallest = r;
      }
      if (smallest == i) {
        break;
      }
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

 private:
  std::vector<T> heap_;
};

}  // namespace dsks

#endif  // DSKS_COMMON_FLAT_CONTAINERS_H_
