#ifndef DSKS_DATAGEN_PRESETS_H_
#define DSKS_DATAGEN_PRESETS_H_

#include <string>
#include <vector>

#include "datagen/network_generator.h"
#include "datagen/object_generator.h"

namespace dsks {

/// A fully specified dataset: road network plus spatio-textual objects.
struct DatasetConfig {
  std::string name;
  NetworkGenConfig network;
  ObjectGenConfig objects;
};

/// Laptop-scale stand-ins for the paper's four datasets (Table 2), scaled
/// ~25x down (TW ~100x) with the published shape preserved: NA is sparse
/// (|E|/|V| ~ 1.02) with short texts, SF is denser with long texts and a
/// small vocabulary, TW has the densest network (Bay Area, ratio ~2.5) and
/// the largest vocabulary, SYN is the synthetic default (n_k = 15 fixed,
/// Zipf z = 1.1). See DESIGN.md for the substitution rationale.
DatasetConfig PresetNA();
DatasetConfig PresetSF();
DatasetConfig PresetTW();
DatasetConfig PresetSYN();

/// All four presets in the order the paper's figures list them.
std::vector<DatasetConfig> AllPresets();

/// Uniformly scales node and object counts (for quick tests and smoke
/// benches); keeps ratios and text statistics.
DatasetConfig ScalePreset(DatasetConfig config, double factor);

}  // namespace dsks

#endif  // DSKS_DATAGEN_PRESETS_H_
