#include "datagen/network_generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/macros.h"
#include "spatial/zorder.h"

namespace dsks {

namespace {

/// Union-find over node ids for the spanning-tree phase.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  bool Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) {
      return false;
    }
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

std::unique_ptr<RoadNetwork> GenerateRoadNetwork(
    const NetworkGenConfig& config) {
  DSKS_CHECK_MSG(config.num_nodes >= 4, "network too small");
  Random rng(config.seed);
  auto net = std::make_unique<RoadNetwork>();

  // Lay the nodes out on a jittered grid covering the data space.
  const auto side = static_cast<size_t>(
      std::round(std::sqrt(static_cast<double>(config.num_nodes))));
  const size_t rows = side;
  const size_t cols = (config.num_nodes + rows - 1) / rows;
  const double span = ZOrder::kSpaceMax - ZOrder::kSpaceMin;
  const double sx = span / static_cast<double>(cols);
  const double sy = span / static_cast<double>(rows);

  std::vector<std::vector<NodeId>> grid(rows, std::vector<NodeId>(cols));
  size_t created = 0;
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      const double jx = rng.UniformDouble(-config.jitter, config.jitter) * sx;
      const double jy = rng.UniformDouble(-config.jitter, config.jitter) * sy;
      Point p{ZOrder::kSpaceMin + (static_cast<double>(c) + 0.5) * sx + jx,
              ZOrder::kSpaceMin + (static_cast<double>(r) + 0.5) * sy + jy};
      p.x = std::clamp(p.x, ZOrder::kSpaceMin, ZOrder::kSpaceMax);
      p.y = std::clamp(p.y, ZOrder::kSpaceMin, ZOrder::kSpaceMax);
      grid[r][c] = net->AddNode(p);
      ++created;
    }
  }

  // Candidate road segments: the 4-neighbour grid plus both diagonals.
  std::vector<std::pair<NodeId, NodeId>> candidates;
  candidates.reserve(created * 4);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) candidates.emplace_back(grid[r][c], grid[r][c + 1]);
      if (r + 1 < rows) candidates.emplace_back(grid[r][c], grid[r + 1][c]);
      if (r + 1 < rows && c + 1 < cols) {
        candidates.emplace_back(grid[r][c], grid[r + 1][c + 1]);
        candidates.emplace_back(grid[r][c + 1], grid[r + 1][c]);
      }
    }
  }
  std::shuffle(candidates.begin(), candidates.end(), rng.engine());

  const auto target_edges = static_cast<size_t>(
      std::round(static_cast<double>(created) * config.edge_node_ratio));

  // Phase 1: random spanning tree (guarantees connectivity).
  DisjointSets sets(created);
  std::vector<char> taken(candidates.size(), 0);
  size_t edges = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const auto& [a, b] = candidates[i];
    if (sets.Union(a, b)) {
      EdgeId out;
      DSKS_CHECK(net->AddEdge(a, b, -1.0, &out).ok());
      taken[i] = 1;
      ++edges;
    }
  }
  DSKS_CHECK_MSG(edges == created - 1, "grid candidates must span the grid");

  // Phase 2: densify to the edge target with the remaining candidates.
  for (size_t i = 0; i < candidates.size() && edges < target_edges; ++i) {
    if (taken[i]) {
      continue;
    }
    const auto& [a, b] = candidates[i];
    EdgeId out;
    DSKS_CHECK(net->AddEdge(a, b, -1.0, &out).ok());
    ++edges;
  }

  net->Finalize();
  return net;
}

}  // namespace dsks
