#include "datagen/workload.h"

#include <algorithm>

#include "common/macros.h"
#include "common/random.h"

namespace dsks {

QueryEdgeInfo MakeQueryEdgeInfo(const RoadNetwork& net,
                                const NetworkLocation& loc) {
  const Edge& e = net.edge(loc.edge);
  QueryEdgeInfo info;
  info.n1 = e.n1;
  info.n2 = e.n2;
  info.edge = loc.edge;
  info.weight = e.weight;
  info.w1 = net.WeightFromN1(loc.edge, loc.offset);
  return info;
}

Workload GenerateWorkload(const ObjectSet& objects, const TermStats& stats,
                          const WorkloadConfig& config) {
  DSKS_CHECK_MSG(objects.size() > 0, "workload needs objects");
  DSKS_CHECK_MSG(config.num_keywords > 0, "queries need keywords");
  const RoadNetwork& net = objects.network();
  Random rng(config.seed);
  const auto& by_freq = stats.ByFrequency();
  const auto& cum = stats.CumulativeByFrequency();
  const double total = cum.empty() ? 0.0 : cum.back();
  DSKS_CHECK_MSG(total > 0.0, "term statistics are empty");

  Workload workload;
  workload.queries.reserve(config.num_queries);
  for (size_t q = 0; q < config.num_queries; ++q) {
    WorkloadQuery wq;
    // Location: a random object's position (§5).
    const auto& obj =
        objects.object(static_cast<ObjectId>(rng.Uniform(objects.size())));
    wq.sk.loc = NetworkLocation{obj.edge, obj.offset};
    wq.edge = MakeQueryEdgeInfo(net, wq.sk.loc);

    if (config.keyword_source == KeywordSource::kCoLocatedObject) {
      // Keywords: distinct terms of the co-located object, each chosen
      // with probability proportional to its corpus frequency (the
      // paper's freq(t)/Σfreq bias, restricted to a satisfiable set).
      std::vector<TermId> pool = obj.terms;
      const size_t take = std::min(config.num_keywords, pool.size());
      while (wq.sk.terms.size() < take) {
        double pool_total = 0.0;
        for (TermId t : pool) {
          pool_total += static_cast<double>(stats.Frequency(t));
        }
        double u = rng.NextDouble() * pool_total;
        size_t pick = pool.size() - 1;
        for (size_t i = 0; i < pool.size(); ++i) {
          u -= static_cast<double>(stats.Frequency(pool[i]));
          if (u <= 0.0) {
            pick = i;
            break;
          }
        }
        wq.sk.terms.push_back(pool[pick]);
        pool.erase(pool.begin() + static_cast<ptrdiff_t>(pick));
      }
    } else {
      // The paper's independent frequency-weighted sample.
      size_t attempts = 0;
      while (wq.sk.terms.size() < config.num_keywords &&
             attempts < 256 * config.num_keywords) {
        ++attempts;
        const double u = rng.NextDouble() * total;
        const auto it = std::upper_bound(cum.begin(), cum.end(), u);
        const size_t rank = std::min(
            static_cast<size_t>(it - cum.begin()), by_freq.size() - 1);
        const TermId t = by_freq[rank];
        if (std::find(wq.sk.terms.begin(), wq.sk.terms.end(), t) ==
            wq.sk.terms.end()) {
          wq.sk.terms.push_back(t);
        }
      }
    }
    std::sort(wq.sk.terms.begin(), wq.sk.terms.end());

    wq.sk.delta_max =
        config.delta_max_override > 0.0
            ? config.delta_max_override
            : config.delta_max_per_keyword *
                  static_cast<double>(wq.sk.terms.size());
    workload.queries.push_back(std::move(wq));
  }
  return workload;
}

}  // namespace dsks
