#ifndef DSKS_DATAGEN_WORKLOAD_H_
#define DSKS_DATAGEN_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "core/query.h"
#include "core/sk_search.h"
#include "graph/object_set.h"
#include "text/term_stats.h"

namespace dsks {

/// How query keywords are drawn.
enum class KeywordSource {
  /// Keywords are the terms of the (randomly chosen) object at the query
  /// location. Marginally this is still frequency-weighted — every term
  /// occurrence is equally likely — but the keywords co-occur on at least
  /// one real object, so conjunctive queries are satisfiable. This is the
  /// default: the paper's independent model below yields almost-always
  /// empty AND-results at laptop scale (see DESIGN.md).
  kCoLocatedObject,
  /// The paper's literal model: each keyword drawn independently with
  /// probability freq(t)/Σfreq.
  kGlobalFrequency,
};

/// Workload parameters mirroring §5: query locations are drawn from the
/// object locations; keywords are frequency-weighted; δmax defaults to
/// 500·l.
struct WorkloadConfig {
  size_t num_queries = 100;
  /// l, the number of query keywords (1-4 in the paper, default 3).
  size_t num_keywords = 3;
  /// δmax = delta_max_per_keyword · l unless delta_max_override > 0.
  double delta_max_per_keyword = 500.0;
  double delta_max_override = -1.0;
  KeywordSource keyword_source = KeywordSource::kCoLocatedObject;
  uint64_t seed = 99;
};

/// One generated query: the SkQuery plus the precomputed location of the
/// query point on its edge (what IncrementalSkSearch needs to seed the
/// expansion).
struct WorkloadQuery {
  SkQuery sk;
  QueryEdgeInfo edge;
};

struct Workload {
  std::vector<WorkloadQuery> queries;
};

Workload GenerateWorkload(const ObjectSet& objects, const TermStats& stats,
                          const WorkloadConfig& config);

/// The QueryEdgeInfo for an arbitrary network location (exposed for
/// examples and tests that craft their own queries).
QueryEdgeInfo MakeQueryEdgeInfo(const RoadNetwork& net,
                                const NetworkLocation& loc);

}  // namespace dsks

#endif  // DSKS_DATAGEN_WORKLOAD_H_
