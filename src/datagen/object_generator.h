#ifndef DSKS_DATAGEN_OBJECT_GENERATOR_H_
#define DSKS_DATAGEN_OBJECT_GENERATOR_H_

#include <cstdint>
#include <memory>

#include "common/random.h"
#include "graph/object_set.h"
#include "graph/road_network.h"

namespace dsks {

/// Parameters of the synthetic spatio-textual object generator, mirroring
/// the paper's SYN knobs (§5): number of objects n_o, vocabulary size n_v,
/// keywords per object n_k, and Zipf skew z of the term frequencies.
struct ObjectGenConfig {
  size_t num_objects = 100000;
  size_t vocab_size = 10000;
  /// Average keywords per object. With `fixed_keyword_count` the count is
  /// exactly this value (the paper's SYN uses a fixed 15); otherwise it is
  /// Poisson-ish around it (min 1), which matches the real datasets'
  /// "avg. # keywords" statistic.
  size_t keywords_per_object = 15;
  bool fixed_keyword_count = true;
  /// Zipf parameter of the term-frequency distribution (0.9-1.3, §5).
  double zipf_z = 1.1;

  /// Topic model. Real spatio-textual corpora (GeoNames descriptions,
  /// tweet hashtags, POI categories) exhibit topical term co-occurrence
  /// and spatial clustering of topics; independent Zipf draws have
  /// neither, which both starves conjunctive (AND) queries of results and
  /// removes the edge-level term locality the signature techniques
  /// exploit. When `num_topics` > 0:
  ///  * the vocabulary is split into `num_topics` contiguous blocks;
  ///  * every object gets a topic — with probability
  ///    `topic_spatial_coherence` the (deterministic) topic of its map
  ///    cell, otherwise a fresh draw — where topics are Zipf(z_topic)
  ///    popular;
  ///  * each keyword comes from the object's topic block with probability
  ///    `topic_affinity` (Zipf within the block), else from the global
  ///    Zipf distribution.
  /// 0 disables the model (pure independent Zipf, the textbook generator).
  size_t num_topics = 0;
  double topic_zipf_z = 1.2;
  double topic_affinity = 0.85;
  double topic_spatial_coherence = 0.6;
  /// Cells per axis of the coherence grid over [0, 10000]^2.
  size_t topic_cell_grid = 24;

  uint64_t seed = 7;
};

/// Places objects uniformly along the network (edges weighted by length)
/// and tags each with distinct Zipf-distributed keywords. Objects land
/// directly on edges, matching the paper's preprocessing ("we move an
/// object to its closest road segment").
std::unique_ptr<ObjectSet> GenerateObjects(const RoadNetwork& network,
                                           const ObjectGenConfig& config);

}  // namespace dsks

#endif  // DSKS_DATAGEN_OBJECT_GENERATOR_H_
