#ifndef DSKS_DATAGEN_NETWORK_GENERATOR_H_
#define DSKS_DATAGEN_NETWORK_GENERATOR_H_

#include <cstdint>
#include <memory>

#include "common/random.h"
#include "graph/road_network.h"

namespace dsks {

/// Parameters of the synthetic road-network generator.
struct NetworkGenConfig {
  /// Approximate number of road nodes (rounded to a grid).
  size_t num_nodes = 10000;

  /// Target edge/node ratio. Real road networks sit between ~1.0 (NA) and
  /// ~2.5 (the Bay Area network used for TW); the generator honours any
  /// value in [1.0 - 1/n, ~3.9] by sampling grid and diagonal candidates.
  double edge_node_ratio = 1.27;

  /// Jitter applied to grid positions as a fraction of the grid spacing;
  /// breaks the artificial regularity of a pure grid.
  double jitter = 0.30;

  uint64_t seed = 42;
};

/// Generates a connected, near-planar road network in the [0, 10000]^2
/// data space the paper scales all datasets to: nodes on a jittered grid,
/// a random spanning tree of grid-adjacent candidates for connectivity,
/// then extra candidates (including diagonals) until the edge target is
/// met. Edge weights equal their Euclidean lengths, the paper's default
/// cost model.
///
/// Substitute for the public road networks (NA / SF / Bay Area) that are
/// not available offline; matches their degree distribution and locality,
/// which is what the expansion-based algorithms are sensitive to.
std::unique_ptr<RoadNetwork> GenerateRoadNetwork(const NetworkGenConfig& config);

}  // namespace dsks

#endif  // DSKS_DATAGEN_NETWORK_GENERATOR_H_
