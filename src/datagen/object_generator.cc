#include "datagen/object_generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/macros.h"
#include "spatial/zorder.h"
#include "text/zipf.h"

namespace dsks {

namespace {

/// Deterministic topic of a map cell: hash the cell, then push the hash
/// through the topic-popularity Zipf so popular topics own more cells.
size_t CellTopic(size_t cx, size_t cy, const ZipfSampler& topic_zipf,
                 uint64_t seed) {
  uint64_t h = seed ^ (cx * 0x9E3779B97F4A7C15ULL) ^
               (cy * 0xC2B2AE3D27D4EB4FULL);
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  Random rng(h);
  return topic_zipf.Sample(&rng);
}

}  // namespace

std::unique_ptr<ObjectSet> GenerateObjects(const RoadNetwork& network,
                                           const ObjectGenConfig& config) {
  DSKS_CHECK_MSG(network.finalized(), "network must be finalized");
  DSKS_CHECK_MSG(config.vocab_size > config.keywords_per_object * 2,
                 "vocabulary too small for the keyword count");
  Random rng(config.seed);
  auto objects = std::make_unique<ObjectSet>(&network);

  // Cumulative edge lengths for uniform-along-the-network placement.
  std::vector<double> cum_length(network.num_edges());
  double total = 0.0;
  for (EdgeId e = 0; e < network.num_edges(); ++e) {
    total += network.edge(e).length;
    cum_length[e] = total;
  }

  ZipfSampler global_zipf(config.vocab_size, config.zipf_z);

  // Topic machinery (unused when num_topics == 0).
  const size_t num_topics = std::min(config.num_topics,
                                     config.vocab_size /
                                         (config.keywords_per_object + 1));
  const size_t block =
      num_topics == 0 ? 0 : config.vocab_size / num_topics;
  std::unique_ptr<ZipfSampler> topic_zipf;
  std::unique_ptr<ZipfSampler> block_zipf;
  if (num_topics > 0) {
    topic_zipf = std::make_unique<ZipfSampler>(num_topics,
                                               config.topic_zipf_z);
    block_zipf = std::make_unique<ZipfSampler>(block, config.zipf_z);
  }
  const double cell_width =
      (ZOrder::kSpaceMax - ZOrder::kSpaceMin) /
      static_cast<double>(std::max<size_t>(1, config.topic_cell_grid));

  std::vector<TermId> terms;
  for (size_t i = 0; i < config.num_objects; ++i) {
    const double u = rng.NextDouble() * total;
    const auto it =
        std::lower_bound(cum_length.begin(), cum_length.end(), u);
    const EdgeId e = static_cast<EdgeId>(it - cum_length.begin());
    const double offset = rng.NextDouble() * network.edge(e).length;

    size_t count = config.keywords_per_object;
    if (!config.fixed_keyword_count) {
      // Cheap Poisson-ish spread: uniform around the mean.
      const auto lo = static_cast<int64_t>(config.keywords_per_object / 2);
      const auto hi =
          static_cast<int64_t>(config.keywords_per_object * 3 / 2);
      count = static_cast<size_t>(std::max<int64_t>(1, rng.UniformRange(lo, hi)));
    }

    // Topic of this object: usually the cell's topic (spatial clustering
    // of related businesses), sometimes an independent draw.
    size_t topic = 0;
    if (num_topics > 0) {
      if (rng.NextDouble() < config.topic_spatial_coherence) {
        const Point p = network.PointOnEdge(e, offset);
        const auto cx = static_cast<size_t>((p.x - ZOrder::kSpaceMin) /
                                            cell_width);
        const auto cy = static_cast<size_t>((p.y - ZOrder::kSpaceMin) /
                                            cell_width);
        topic = CellTopic(cx, cy, *topic_zipf, config.seed);
      } else {
        topic = topic_zipf->Sample(&rng);
      }
    }

    terms.clear();
    size_t attempts = 0;
    while (terms.size() < count && attempts < count * 64) {
      ++attempts;
      TermId t;
      if (num_topics > 0 && rng.NextDouble() < config.topic_affinity) {
        t = static_cast<TermId>(topic * block + block_zipf->Sample(&rng));
      } else {
        t = static_cast<TermId>(global_zipf.Sample(&rng));
      }
      if (std::find(terms.begin(), terms.end(), t) == terms.end()) {
        terms.push_back(t);
      }
    }
    ObjectId id;
    DSKS_CHECK(objects->Add(e, offset, terms, &id).ok());
  }
  objects->Finalize();
  return objects;
}

}  // namespace dsks
