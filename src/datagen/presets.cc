#include "datagen/presets.h"

#include <algorithm>
#include <cmath>

namespace dsks {

DatasetConfig PresetNA() {
  DatasetConfig c;
  c.name = "NA";
  c.network.num_nodes = 7000;
  c.network.edge_node_ratio = 1.05;
  c.network.seed = 1001;
  c.objects.num_objects = 400000;  // density raised ~5x: preserves per-query
                                   // candidate counts under the ~25x network
                                   // downscale (see DESIGN.md)
  c.objects.vocab_size = 8000;
  c.objects.keywords_per_object = 7;  // paper: 6.8 average
  c.objects.fixed_keyword_count = false;
  c.objects.zipf_z = 1.0;
  c.objects.num_topics = 160;
  c.objects.seed = 2001;
  return c;
}

DatasetConfig PresetSF() {
  DatasetConfig c;
  c.name = "SF";
  c.network.num_nodes = 7000;
  c.network.edge_node_ratio = 1.27;
  c.network.seed = 1002;
  c.objects.num_objects = 255000;  // density raised ~3x (long texts)
  c.objects.vocab_size = 3200;
  c.objects.keywords_per_object = 26;
  c.objects.fixed_keyword_count = false;
  c.objects.zipf_z = 1.0;
  c.objects.num_topics = 64;
  c.objects.seed = 2002;
  return c;
}

DatasetConfig PresetTW() {
  DatasetConfig c;
  c.name = "TW";
  c.network.num_nodes = 12000;
  c.network.edge_node_ratio = 2.40;
  c.network.seed = 1003;
  c.objects.num_objects = 440000;  // density raised ~4x
  c.objects.vocab_size = 16000;
  c.objects.keywords_per_object = 11;  // paper: 10.8 average
  c.objects.fixed_keyword_count = false;
  c.objects.zipf_z = 1.1;
  c.objects.num_topics = 320;
  c.objects.seed = 2003;
  return c;
}

DatasetConfig PresetSYN() {
  DatasetConfig c;
  c.name = "SYN";
  c.network.num_nodes = 7000;
  c.network.edge_node_ratio = 1.27;
  c.network.seed = 1004;
  c.objects.num_objects = 200000;  // paper default n_o = 1M, scaled /5
  c.objects.vocab_size = 4000;    // paper default n_v = 100K, scaled /25
  c.objects.keywords_per_object = 15;
  c.objects.fixed_keyword_count = true;
  c.objects.zipf_z = 1.1;
  c.objects.num_topics = 80;
  c.objects.seed = 2004;
  return c;
}

std::vector<DatasetConfig> AllPresets() {
  return {PresetNA(), PresetSF(), PresetSYN(), PresetTW()};
}

DatasetConfig ScalePreset(DatasetConfig config, double factor) {
  auto scale = [factor](size_t v) {
    return std::max<size_t>(
        16, static_cast<size_t>(std::round(static_cast<double>(v) * factor)));
  };
  config.network.num_nodes = scale(config.network.num_nodes);
  config.objects.num_objects = scale(config.objects.num_objects);
  config.objects.vocab_size = std::max(
      config.objects.keywords_per_object * 2 + 1,
      scale(config.objects.vocab_size));
  return config;
}

}  // namespace dsks
