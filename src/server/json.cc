#include "server/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dsks::server {

/// Cursor over the input with position-carrying errors. At namespace scope
/// (not anonymous) because JsonValue names it as a friend.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Status ParseDocument(JsonValue* out) {
    DSKS_RETURN_IF_ERROR(ParseValue(out, 0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return Status::Ok();
  }

 private:
  static constexpr int kMaxDepth = 32;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at byte " +
                                   std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Error("nesting too deep");
    }
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind_ = JsonValue::Kind::kString;
        return ParseString(&out->string_);
      case 't':
        return ParseLiteral("true", [out] {
          out->kind_ = JsonValue::Kind::kBool;
          out->bool_ = true;
        });
      case 'f':
        return ParseLiteral("false", [out] {
          out->kind_ = JsonValue::Kind::kBool;
          out->bool_ = false;
        });
      case 'n':
        return ParseLiteral("null",
                            [out] { out->kind_ = JsonValue::Kind::kNull; });
      default:
        if (c == '-' || (c >= '0' && c <= '9')) {
          return ParseNumber(out);
        }
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  template <typename Fn>
  Status ParseLiteral(const char* word, Fn apply) {
    const size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) {
      return Error("bad literal");
    }
    pos_ += len;
    apply();
    return Status::Ok();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (token.empty() || end == nullptr || *end != '\0' || !std::isfinite(v)) {
      pos_ = start;
      return Error("bad number '" + token + "'");
    }
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = v;
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) {
      return Error("expected '\"'");
    }
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return Status::Ok();
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          // Basic-plane \uXXXX only; enough for a query language whose
          // strings are tenant tags and option names.
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // UTF-8 encode.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseObject(JsonValue* out, int depth) {
    Consume('{');
    out->kind_ = JsonValue::Kind::kObject;
    SkipSpace();
    if (Consume('}')) {
      return Status::Ok();
    }
    while (true) {
      SkipSpace();
      std::string key;
      DSKS_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) {
        return Error("expected ':'");
      }
      JsonValue value;
      DSKS_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->object_[key] = std::move(value);
      SkipSpace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return Status::Ok();
      }
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    Consume('[');
    out->kind_ = JsonValue::Kind::kArray;
    SkipSpace();
    if (Consume(']')) {
      return Status::Ok();
    }
    while (true) {
      JsonValue value;
      DSKS_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array_.push_back(std::move(value));
      SkipSpace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return Status::Ok();
      }
      return Error("expected ',' or ']'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

Status JsonValue::Parse(const std::string& text, JsonValue* out) {
  *out = JsonValue();
  JsonParser parser(text);
  return parser.ParseDocument(out);
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::Comma() {
  if (!first_.empty()) {
    if (!first_.back()) {
      out_.push_back(',');
    }
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  Comma();
  out_.push_back('{');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_.push_back('}');
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Comma();
  out_.push_back('[');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_.push_back(']');
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(const char* key) {
  Comma();
  out_.push_back('"');
  out_ += key;
  out_ += "\":";
  // The value that follows must not emit another comma.
  if (!first_.empty()) {
    first_.back() = true;
  }
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& s) {
  Comma();
  out_.push_back('"');
  out_ += JsonEscape(s);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::Value(const char* s) {
  return Value(std::string(s));
}

JsonWriter& JsonWriter::Value(double v) {
  Comma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  Comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  Comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  Comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Comma();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(const std::string& json) {
  Comma();
  out_ += json;
  return *this;
}

}  // namespace dsks::server
