#ifndef DSKS_SERVER_QUERY_SERVER_H_
#define DSKS_SERVER_QUERY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "server/query_service.h"

namespace dsks::server {

/// QueryServer settings: the service policy plus the wire-level limits.
struct ServerConfig {
  ServiceConfig service;
  /// Largest accepted request line / HTTP head; longer input is a
  /// protocol error and the connection closes.
  size_t max_line_bytes = 64 * 1024;
  /// Cap on a connection's un-sent response backlog; a client that stops
  /// reading while queries complete is dropped at this bound instead of
  /// growing the buffer without limit.
  size_t max_out_bytes = 4 * 1024 * 1024;
};

/// The TCP front end: one poll loop multiplexing every connection, with
/// the actual query work on the QueryService's executor behind a bounded
/// admission queue. Two protocols share the listener, sniffed from the
/// first bytes:
///
///   - NDJSON query protocol: one JSON request object per line, one JSON
///     response object per line, same order per connection not guaranteed
///     across concurrent queries (responses carry the request "id").
///   - HTTP GET (a head starting "GET "): the observability routes
///     /metrics, /varz, /tracez, /healthz — same payloads as StatsServer —
///     plus /statusz (the server's own counters as JSON). One response,
///     then close.
///
/// The poll loop never blocks on a query: Submit's verdict is synchronous
/// (reject/shed responses queue immediately) and completions from worker
/// threads land in an outbox the loop drains via a self-pipe wakeup. A
/// stalled or disconnected client never wedges the loop either — writes
/// are non-blocking with a bounded backlog, and completions for dead
/// connections are dropped.
class QueryServer {
 public:
  QueryServer(Database* db, const ServerConfig& config);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds 127.0.0.1:port (0 picks an ephemeral port) and starts the poll
  /// thread.
  Status Start(uint16_t port = 0);

  /// Stops accepting, closes every connection, and drains the service —
  /// every admitted query completes (responses to still-open connections
  /// are not guaranteed delivery once Stop begins). Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return port_; }

  /// Exact service-level accounting (see ServiceCounters).
  ServiceCounters counters() const { return service_->counters(); }
  QueryService* service() { return service_.get(); }

 private:
  struct Conn {
    int fd = -1;
    std::string in;
    std::string out;
    bool is_http = false;   // sniffed from the first bytes
    bool read_closed = false;
    size_t in_flight = 0;   // submitted queries without a delivered response
    std::string tenant;     // connection tag ("<ip>:<port>")
  };

  void PollLoop();
  void AcceptNew();
  void HandleReadable(uint64_t conn_id, Conn* conn);
  void HandleWritable(uint64_t conn_id, Conn* conn);
  /// Consumes complete lines / a complete HTTP head from conn->in.
  /// Returns false when the connection must close (protocol error).
  bool ConsumeInput(uint64_t conn_id, Conn* conn);
  void DrainOutbox();
  void CloseConn(uint64_t conn_id);
  void Wake();
  std::string StatuszJson() const;

  Database* const db_;
  const ServerConfig config_;
  std::unique_ptr<QueryService> service_;

  int listen_fd_ = -1;
  int wake_r_ = -1, wake_w_ = -1;  // self-pipe: workers wake the poll loop
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread thread_;

  uint64_t next_conn_id_ = 1;
  std::map<uint64_t, Conn> conns_;  // poll-thread only

  /// Completed responses en route from worker threads to the poll loop.
  std::mutex outbox_mu_;
  std::deque<std::pair<uint64_t, std::string>> outbox_;
};

}  // namespace dsks::server

#endif  // DSKS_SERVER_QUERY_SERVER_H_
