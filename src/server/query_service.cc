#include "server/query_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/timer.h"
#include "core/query.h"
#include "core/query_context.h"
#include "datagen/workload.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "server/json.h"

namespace dsks::server {

namespace {

int64_t NowSteadyNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Reads a non-negative finite number, rejecting anything else.
Status ReadNumber(const JsonValue& obj, const char* key, bool required,
                  double* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) {
    if (required) {
      return Status::InvalidArgument(std::string("missing field '") + key +
                                     "'");
    }
    return Status::Ok();
  }
  if (!v->is_number()) {
    return Status::InvalidArgument(std::string("field '") + key +
                                   "' must be a number");
  }
  *out = v->number();
  return Status::Ok();
}

}  // namespace

/// One parsed request: the normalized query plus the service-level options
/// that traveled with it. `raw_id` is the request's "id" member re-rendered
/// verbatim so the response echoes whatever identifier shape (number,
/// string) the client used.
struct QueryService::Request {
  bool is_div = false;
  SkQuery sk;
  DivQuery div;
  QueryEdgeInfo edge;
  double deadline_ms = 0.0;  // 0 = service default
  bool want_trace = false;
  size_t limit = 0;  // 0 = service max_results
  std::string tenant;
  std::string raw_id;  // pre-rendered JSON for the response's "id"
  std::string batch_key;
  int64_t deadline_ns = 0;  // armed at admission
};

struct QueryService::PendingBatch {
  int64_t flush_at_ns = 0;
  std::vector<std::pair<std::shared_ptr<Request>, Completion>> members;
};

QueryService::QueryService(Database* db, const ServiceConfig& config)
    : db_(db), config_(config) {
  ExecutorConfig exec;
  exec.num_threads = std::max<size_t>(1, config_.threads);
  exec.queue_capacity = std::max<size_t>(1, config_.queue_capacity);
  exec.max_retries = config_.max_retries;
  exec.metrics = config_.metrics;
  exec.sampling = config_.sampling;
  exec.flight_recorder = config_.flight_recorder;
  executor_ = std::make_unique<QueryExecutor>(exec);

  if (config_.metrics != nullptr) {
    auto* m = config_.metrics;
    requests_.published = &m->counter("dsks.server.requests");
    invalid_.published = &m->counter("dsks.server.invalid");
    quota_denied_.published = &m->counter("dsks.server.quota_denied");
    shed_.published = &m->counter("dsks.server.shed");
    admitted_.published = &m->counter("dsks.server.admitted");
    completed_.published = &m->counter("dsks.server.completed");
    cancelled_.published = &m->counter("dsks.server.cancelled");
    batches_.published = &m->counter("dsks.server.batches");
    batched_queries_.published = &m->counter("dsks.server.batched_queries");
  }

  if (config_.batch_window_ms > 0.0) {
    batcher_ = std::thread([this] { BatcherLoop(); });
  }
}

QueryService::~QueryService() { Stop(); }

void QueryService::Stop() {
  if (stopped_) {
    return;
  }
  stopped_ = true;
  if (batcher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(batch_mu_);
      batcher_stop_ = true;
    }
    batch_cv_.notify_all();
    batcher_.join();
  }
  // Flush anything the batcher left behind (it flushes on stop, but be
  // safe against a Stop before the thread ever ran).
  std::map<std::string, PendingBatch> leftovers;
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    leftovers.swap(pending_batches_);
  }
  for (auto& [key, batch] : leftovers) {
    FlushBatch(std::move(batch));
  }
  // Destroying the executor drains it: every admitted query completes and
  // its completion callback has run by the time this returns.
  executor_.reset();
}

ServiceCounters QueryService::counters() const {
  ServiceCounters c;
  c.requests = requests_.get();
  c.invalid = invalid_.get();
  c.quota_denied = quota_denied_.get();
  c.shed = shed_.get();
  c.admitted = admitted_.get();
  c.completed = completed_.get();
  c.cancelled = cancelled_.get();
  c.batches = batches_.get();
  c.batched_queries = batched_queries_.get();
  return c;
}

Status QueryService::ParseRequest(const std::string& line,
                                  Request* out) const {
  JsonValue doc;
  DSKS_RETURN_IF_ERROR(JsonValue::Parse(line, &doc));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }

  const JsonValue* op = doc.Find("op");
  if (op == nullptr || !op->is_string()) {
    return Status::InvalidArgument("missing string field 'op'");
  }
  if (op->string_value() == "sk") {
    out->is_div = false;
  } else if (op->string_value() == "div") {
    out->is_div = true;
  } else {
    return Status::InvalidArgument("unknown op '" + op->string_value() +
                                   "' (want \"sk\" or \"div\")");
  }

  const JsonValue* terms = doc.Find("terms");
  if (terms == nullptr || !terms->is_array() || terms->array().empty()) {
    return Status::InvalidArgument("'terms' must be a non-empty array");
  }
  SkQuery sk;
  for (const JsonValue& t : terms->array()) {
    if (!t.is_number() || t.number() < 0.0 ||
        t.number() != static_cast<double>(static_cast<TermId>(t.number()))) {
      return Status::InvalidArgument("'terms' entries must be term ids");
    }
    sk.terms.push_back(static_cast<TermId>(t.number()));
  }

  double edge = -1.0, offset = -1.0, delta = 0.0;
  DSKS_RETURN_IF_ERROR(ReadNumber(doc, "edge", /*required=*/true, &edge));
  DSKS_RETURN_IF_ERROR(ReadNumber(doc, "offset", /*required=*/true, &offset));
  DSKS_RETURN_IF_ERROR(ReadNumber(doc, "delta", /*required=*/true, &delta));
  if (edge < 0.0 ||
      edge != static_cast<double>(static_cast<EdgeId>(edge)) ||
      static_cast<EdgeId>(edge) >= db_->network().num_edges()) {
    return Status::InvalidArgument("'edge' is not a valid edge id");
  }
  sk.loc.edge = static_cast<EdgeId>(edge);
  // Pre-check the offset against the edge length: MakeQueryEdgeInfo (and
  // the search constructors) CHECK this invariant, and an abort is exactly
  // what a network-facing boundary must never do.
  const double length = db_->network().edge(sk.loc.edge).length;
  if (!(offset >= 0.0 && offset <= length)) {
    return Status::InvalidArgument("'offset' outside [0, edge length]");
  }
  sk.loc.offset = offset;
  sk.delta_max = delta;

  if (out->is_div) {
    DivQuery div;
    div.sk = std::move(sk);
    double k = static_cast<double>(div.k), lambda = div.lambda;
    DSKS_RETURN_IF_ERROR(ReadNumber(doc, "k", /*required=*/false, &k));
    DSKS_RETURN_IF_ERROR(ReadNumber(doc, "lambda", /*required=*/false,
                                    &lambda));
    if (k < 1.0 || k != static_cast<double>(static_cast<size_t>(k))) {
      return Status::InvalidArgument("'k' must be a positive integer");
    }
    div.k = static_cast<size_t>(k);
    div.lambda = lambda;
    DSKS_RETURN_IF_ERROR(NormalizeDivQuery(&div));
    out->div = std::move(div);
    out->sk = out->div.sk;
  } else {
    DSKS_RETURN_IF_ERROR(NormalizeSkQuery(&sk));
    out->sk = std::move(sk);
  }
  out->edge = MakeQueryEdgeInfo(db_->network(), out->sk.loc);

  double deadline_ms = 0.0, limit = 0.0;
  DSKS_RETURN_IF_ERROR(
      ReadNumber(doc, "deadline_ms", /*required=*/false, &deadline_ms));
  if (deadline_ms < 0.0) {
    return Status::InvalidArgument("'deadline_ms' must be >= 0");
  }
  out->deadline_ms = deadline_ms;
  DSKS_RETURN_IF_ERROR(ReadNumber(doc, "limit", /*required=*/false, &limit));
  if (limit < 0.0) {
    return Status::InvalidArgument("'limit' must be >= 0");
  }
  out->limit = static_cast<size_t>(limit);

  if (const JsonValue* trace = doc.Find("trace"); trace != nullptr) {
    if (!trace->is_bool()) {
      return Status::InvalidArgument("'trace' must be a boolean");
    }
    out->want_trace = trace->bool_value();
  }
  if (const JsonValue* tenant = doc.Find("tenant"); tenant != nullptr) {
    if (!tenant->is_string()) {
      return Status::InvalidArgument("'tenant' must be a string");
    }
    out->tenant = tenant->string_value();
  }
  if (const JsonValue* id = doc.Find("id"); id != nullptr) {
    JsonWriter w;
    switch (id->kind()) {
      case JsonValue::Kind::kNumber:
        w.Value(id->number());
        break;
      case JsonValue::Kind::kString:
        w.Value(id->string_value());
        break;
      case JsonValue::Kind::kBool:
        w.Value(id->bool_value());
        break;
      default:
        return Status::InvalidArgument(
            "'id' must be a number, string or boolean");
    }
    out->raw_id = w.Take();
  }

  // Canonical batch key: op + normalized (sorted, deduplicated) terms.
  // Same key = same posting scans, which is exactly what batching shares.
  out->batch_key = out->is_div ? "div:" : "sk:";
  for (const TermId t : out->sk.terms) {
    out->batch_key += std::to_string(t);
    out->batch_key.push_back(',');
  }
  return Status::Ok();
}

bool QueryService::CheckQuota(const std::string& tenant) {
  if (config_.quota.rate_qps <= 0.0) {
    return true;
  }
  const int64_t now = NowSteadyNs();
  std::lock_guard<std::mutex> lock(quota_mu_);
  Bucket& b = buckets_[tenant];
  if (b.last_ns == 0) {
    b.tokens = config_.quota.burst;  // fresh tenant starts with a full burst
  } else {
    const double elapsed_s = static_cast<double>(now - b.last_ns) * 1e-9;
    b.tokens = std::min(config_.quota.burst,
                        b.tokens + elapsed_s * config_.quota.rate_qps);
  }
  b.last_ns = now;
  if (b.tokens < 1.0) {
    return false;
  }
  b.tokens -= 1.0;
  return true;
}

void QueryService::RespondRejected(const Completion& done, const Request* req,
                                   const char* code_name,
                                   const std::string& message,
                                   bool /*quota*/) const {
  JsonWriter w;
  w.BeginObject();
  if (req != nullptr && !req->raw_id.empty()) {
    w.Key("id").Raw(req->raw_id);
  }
  w.Key("status").Value(code_name);
  w.Key("message").Value(message);
  w.EndObject();
  done(w.Take());
}

Status QueryService::RunOne(const Request& req, QueryContext* ctx,
                            bool batched, std::string* response) const {
  JsonWriter w;
  w.BeginObject();
  if (!req.raw_id.empty()) {
    w.Key("id").Raw(req.raw_id);
  }

  Status status;
  Timer timer;
  const obs::IoCounters io_before = ctx->io;

  // A request whose deadline expired while it sat in the queue is
  // cancelled without running — the work it would do is already useless.
  ctx->deadline_steady_ns = req.deadline_ns;
  if (ctx->DeadlineExceeded()) {
    status = Status::Cancelled("deadline expired before execution");
  }

  // Optional per-request trace; uses a local trace so the executor's own
  // sampling policy (which owns the worker trace) is never disturbed.
  obs::QueryTrace trace;
  obs::QueryTrace* const saved_trace = ctx->trace;
  if (req.want_trace && status.ok()) {
    trace.BindContextIo(&ctx->io);
    ctx->trace = &trace;
  }

  size_t count = 0;
  double objective = 0.0;
  std::vector<SkResult> results;
  if (status.ok()) {
    if (req.is_div) {
      DivSearchOutput out;
      status = db_->RunDivQuery(req.div, req.edge, /*use_com=*/true, &out,
                                ctx);
      results = std::move(out.selected);
      objective = out.objective;
    } else {
      status = db_->RunSkQuery(req.sk, req.edge, &results, ctx);
    }
  }
  ctx->trace = saved_trace;
  ctx->deadline_steady_ns = 0;

  count = results.size();
  const double ms = static_cast<double>(timer.ElapsedMicros()) / 1000.0;
  const obs::IoCounters io = ctx->io - io_before;

  w.Key("status").Value(Status::CodeName(status.code()));
  if (!status.ok()) {
    w.Key("message").Value(status.message());
  }
  w.Key("count").Value(static_cast<uint64_t>(count));
  size_t limit = req.limit > 0 ? req.limit : config_.max_results;
  limit = std::min(limit, config_.max_results);
  w.Key("results").BeginArray();
  for (size_t i = 0; i < results.size() && i < limit; ++i) {
    w.BeginObject();
    w.Key("object").Value(static_cast<uint64_t>(results[i].id));
    w.Key("dist").Value(results[i].dist);
    w.EndObject();
  }
  w.EndArray();
  if (req.is_div) {
    w.Key("objective").Value(objective);
  }
  w.Key("ms").Value(ms);
  w.Key("io")
      .BeginObject()
      .Key("pool_hits")
      .Value(io.pool_hits)
      .Key("pool_misses")
      .Value(io.pool_misses)
      .Key("disk_reads")
      .Value(io.disk_reads)
      .Key("disk_writes")
      .Value(io.disk_writes)
      .Key("prefetched_pages")
      .Value(io.prefetched_pages)
      .EndObject();
  if (batched) {
    w.Key("batched").Value(true);
  }
  if (req.want_trace) {
    // Phase summary of the work actually done — for a CANCELLED query
    // that is the partial-work accounting up to the cancellation point.
    w.Key("trace").BeginObject();
    const auto totals = trace.AggregateByPhase();
    for (size_t p = 0; p < obs::kNumPhases; ++p) {
      if (totals[p].spans == 0) {
        continue;
      }
      w.Key(obs::PhaseName(static_cast<obs::Phase>(p)))
          .BeginObject()
          .Key("spans")
          .Value(totals[p].spans)
          .Key("ms")
          .Value(static_cast<double>(totals[p].exclusive_ns) / 1e6)
          .Key("disk_reads")
          .Value(totals[p].io.disk_reads)
          .EndObject();
    }
    w.EndObject();
  }
  w.EndObject();
  *response = w.Take();
  return status;
}

void QueryService::FinishAdmitted(const Status& status) const {
  completed_.Add();
  if (status.IsCancelled()) {
    cancelled_.Add();
  }
}

void QueryService::SubmitDirect(std::shared_ptr<Request> req,
                                Completion done) {
  // Admission verdict must be synchronous so shedding is exact: count the
  // shed here, not in a callback.
  QueryTag tag;
  tag.kind = req->is_div ? "server_div" : "server_sk";
  tag.terms = static_cast<uint32_t>(req->sk.terms.size());
  auto service = this;
  const bool admitted = executor_->TrySubmitQuery(
      tag,
      [service, req, done](QueryContext* ctx) {
        std::string response;
        const Status status =
            service->RunOne(*req, ctx, /*batched=*/false, &response);
        service->FinishAdmitted(status);
        done(std::move(response));
        return status;
      },
      config_.submit_wait_ms);
  if (admitted) {
    admitted_.Add();
  } else {
    shed_.Add();
    RespondRejected(done, req.get(), "RESOURCE_EXHAUSTED",
                    "admission queue full", /*quota=*/false);
  }
}

void QueryService::Submit(const std::string& line, const std::string& tenant,
                          Completion done) {
  requests_.Add();

  auto req = std::make_shared<Request>();
  if (const Status parsed = ParseRequest(line, req.get()); !parsed.ok()) {
    invalid_.Add();
    RespondRejected(done, req.get(), Status::CodeName(parsed.code()),
                    parsed.message(), /*quota=*/false);
    return;
  }
  if (req->tenant.empty()) {
    req->tenant = tenant;
  }
  if (!CheckQuota(req->tenant)) {
    quota_denied_.Add();
    RespondRejected(done, req.get(), "RESOURCE_EXHAUSTED",
                    "tenant '" + req->tenant + "' over quota", /*quota=*/true);
    return;
  }

  const double deadline_ms = req->deadline_ms > 0.0
                                 ? req->deadline_ms
                                 : config_.default_deadline_ms;
  req->deadline_ns = deadline_ms > 0.0 ? DeadlineFromNowMillis(deadline_ms)
                                       : 0;

  if (config_.batch_window_ms > 0.0) {
    EnqueueBatchMember(std::move(req), std::move(done));
    return;
  }
  SubmitDirect(std::move(req), std::move(done));
}

void QueryService::EnqueueBatchMember(std::shared_ptr<Request> req,
                                      Completion done) {
  std::string key = req->batch_key;
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    PendingBatch& batch = pending_batches_[key];
    if (batch.members.empty()) {
      batch.flush_at_ns =
          NowSteadyNs() +
          static_cast<int64_t>(config_.batch_window_ms * 1e6);
    }
    batch.members.emplace_back(std::move(req), std::move(done));
  }
  batch_cv_.notify_one();
}

void QueryService::BatcherLoop() {
  std::unique_lock<std::mutex> lock(batch_mu_);
  while (true) {
    if (pending_batches_.empty()) {
      if (batcher_stop_) {
        return;
      }
      batch_cv_.wait(lock, [this] {
        return batcher_stop_ || !pending_batches_.empty();
      });
      continue;
    }
    // Earliest flush deadline among pending batches.
    int64_t next_ns = INT64_MAX;
    for (const auto& [key, batch] : pending_batches_) {
      next_ns = std::min(next_ns, batch.flush_at_ns);
    }
    const int64_t now = NowSteadyNs();
    if (now < next_ns && !batcher_stop_) {
      batch_cv_.wait_for(lock, std::chrono::nanoseconds(next_ns - now));
      continue;
    }
    // Flush everything due (or everything, when stopping).
    std::vector<PendingBatch> due;
    for (auto it = pending_batches_.begin(); it != pending_batches_.end();) {
      if (batcher_stop_ || it->second.flush_at_ns <= now) {
        due.push_back(std::move(it->second));
        it = pending_batches_.erase(it);
      } else {
        ++it;
      }
    }
    lock.unlock();
    for (PendingBatch& batch : due) {
      FlushBatch(std::move(batch));
    }
    lock.lock();
  }
}

void QueryService::FlushBatch(PendingBatch&& batch) {
  if (batch.members.empty()) {
    return;
  }
  const size_t n = batch.members.size();
  if (n > 1) {
    batches_.Add();
    batched_queries_.Add(n);
  }
  // All members run sequentially as ONE executor task on one worker: the
  // first member's B+tree descents and posting-page reads warm the buffer
  // pool for the rest, so the shared keyword scan is physical exactly
  // once. Results are bit-identical to unbatched runs — each member still
  // executes its own search against the same immutable index.
  QueryTag tag;
  tag.kind = n > 1 ? "server_batch"
                   : (batch.members.front().first->is_div ? "server_div"
                                                          : "server_sk");
  tag.terms =
      static_cast<uint32_t>(batch.members.front().first->sk.terms.size());
  auto members = std::make_shared<
      std::vector<std::pair<std::shared_ptr<Request>, Completion>>>(
      std::move(batch.members));
  auto service = this;
  const bool admitted = executor_->TrySubmitQuery(
      tag,
      [service, members, n](QueryContext* ctx) {
        Status worst;
        for (auto& [req, done] : *members) {
          std::string response;
          const Status status =
              service->RunOne(*req, ctx, /*batched=*/n > 1, &response);
          service->FinishAdmitted(status);
          done(std::move(response));
          if (worst.ok() && !status.ok()) {
            worst = status;
          }
        }
        return worst;
      },
      config_.submit_wait_ms);
  if (admitted) {
    admitted_.Add(n);
  } else {
    // The whole batch is shed as one unit: every member is a rejected
    // submission and every member answers RESOURCE_EXHAUSTED.
    shed_.Add(n);
    for (auto& [req, done] : *members) {
      RespondRejected(done, req.get(), "RESOURCE_EXHAUSTED",
                      "admission queue full (batch shed)", /*quota=*/false);
    }
  }
}

}  // namespace dsks::server
