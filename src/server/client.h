#ifndef DSKS_SERVER_CLIENT_H_
#define DSKS_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace dsks::server {

/// Minimal blocking NDJSON client for the query server — what the CLI
/// drill, the chaos socket mode and the tests speak. One TCP connection;
/// requests go out as lines, responses come back as lines (order not
/// guaranteed across pipelined requests — match on "id").
class QueryClient {
 public:
  QueryClient() = default;
  ~QueryClient() { Close(); }

  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;

  /// Connects to 127.0.0.1:port.
  Status Connect(uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends one request line (terminator appended here).
  Status SendLine(const std::string& line);

  /// Receives the next response line, waiting up to `timeout_ms`.
  /// Times out with IOError("client read timeout").
  Status ReadLine(std::string* line, int timeout_ms = 10000);

  /// SendLine + ReadLine — the simple synchronous round trip.
  Status Request(const std::string& line, std::string* response,
                 int timeout_ms = 10000);

 private:
  int fd_ = -1;
  std::string buf_;  // bytes read past the last returned line
};

}  // namespace dsks::server

#endif  // DSKS_SERVER_CLIENT_H_
