#include "server/query_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/http.h"
#include "server/json.h"

namespace dsks::server {

QueryServer::QueryServer(Database* db, const ServerConfig& config)
    : db_(db), config_(config) {}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start(uint16_t port) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("query server already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("server socket: ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("server bind/listen: " + err);
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("server getsockname: " + err);
  }
  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("server wake pipe: " + err);
  }
  obs::SetNonBlocking(fd);
  obs::SetNonBlocking(pipe_fds[0]);
  obs::SetNonBlocking(pipe_fds[1]);

  listen_fd_ = fd;
  wake_r_ = pipe_fds[0];
  wake_w_ = pipe_fds[1];
  port_ = ntohs(addr.sin_port);
  service_ = std::make_unique<QueryService>(db_, config_.service);
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { PollLoop(); });
  return Status::Ok();
}

void QueryServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  Wake();
  if (thread_.joinable()) {
    thread_.join();
  }
  // Drain the service AFTER the poll loop is gone: every admitted query
  // still completes (the counters invariant holds), and its completion
  // lands in the outbox, which is simply discarded below.
  if (service_ != nullptr) {
    service_->Stop();
  }
  for (auto& [id, conn] : conns_) {
    ::close(conn.fd);
  }
  conns_.clear();
  {
    std::lock_guard<std::mutex> lock(outbox_mu_);
    outbox_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_r_ >= 0) {
    ::close(wake_r_);
    ::close(wake_w_);
    wake_r_ = wake_w_ = -1;
  }
  service_.reset();
  running_.store(false, std::memory_order_release);
}

void QueryServer::Wake() {
  if (wake_w_ >= 0) {
    const char b = 'x';
    // Best-effort: a full pipe already guarantees a pending wakeup.
    [[maybe_unused]] const ssize_t n = ::write(wake_w_, &b, 1);
  }
}

void QueryServer::PollLoop() {
  std::vector<pollfd> pfds;
  std::vector<uint64_t> ids;  // pfds[i >= 2] -> connection id
  while (!stop_.load(std::memory_order_acquire)) {
    DrainOutbox();

    pfds.clear();
    ids.clear();
    pfds.push_back({listen_fd_, POLLIN, 0});
    pfds.push_back({wake_r_, POLLIN, 0});
    for (const auto& [id, conn] : conns_) {
      short events = 0;
      if (!conn.read_closed) {
        events |= POLLIN;
      }
      if (!conn.out.empty()) {
        events |= POLLOUT;
      }
      pfds.push_back({conn.fd, events, 0});
      ids.push_back(id);
    }

    const int ready = ::poll(pfds.data(), pfds.size(), /*timeout_ms=*/200);
    if (stop_.load(std::memory_order_acquire)) {
      break;
    }
    if (ready < 0) {
      continue;  // EINTR
    }

    if (pfds[1].revents & POLLIN) {
      char buf[256];
      while (::read(wake_r_, buf, sizeof(buf)) > 0) {
      }
    }
    if (pfds[0].revents & POLLIN) {
      AcceptNew();
    }
    for (size_t i = 2; i < pfds.size(); ++i) {
      const uint64_t id = ids[i - 2];
      auto it = conns_.find(id);
      if (it == conns_.end()) {
        continue;
      }
      Conn* conn = &it->second;
      if (pfds[i].revents & (POLLERR | POLLNVAL)) {
        CloseConn(id);
        continue;
      }
      if (pfds[i].revents & (POLLIN | POLLHUP)) {
        HandleReadable(id, conn);
        if (conns_.find(id) == conns_.end()) {
          continue;
        }
      }
      if (pfds[i].revents & POLLOUT) {
        HandleWritable(id, conn);
      }
    }

    // Deliver whatever completed while we were handling sockets, then
    // reap connections that are fully done.
    DrainOutbox();
    for (auto it = conns_.begin(); it != conns_.end();) {
      const Conn& c = it->second;
      if (c.read_closed && c.in_flight == 0 && c.out.empty()) {
        ::close(c.fd);
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void QueryServer::AcceptNew() {
  while (true) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    const int fd = ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer),
                            &peer_len);
    if (fd < 0) {
      return;  // EAGAIN or transient error; poll again
    }
    obs::SetNonBlocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Conn conn;
    conn.fd = fd;
    char ip[INET_ADDRSTRLEN] = "?";
    ::inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof(ip));
    conn.tenant = std::string(ip) + ":" + std::to_string(ntohs(peer.sin_port));
    conns_.emplace(next_conn_id_++, std::move(conn));
  }
}

void QueryServer::HandleReadable(uint64_t conn_id, Conn* conn) {
  char buf[16 * 1024];
  while (true) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->in.append(buf, static_cast<size_t>(n));
      if (conn->in.size() > config_.max_line_bytes) {
        CloseConn(conn_id);
        return;
      }
      continue;
    }
    if (n == 0) {
      conn->read_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    CloseConn(conn_id);  // hard error
    return;
  }
  if (!ConsumeInput(conn_id, conn)) {
    CloseConn(conn_id);
    return;
  }
  // Kick the first write inline; the poll loop takes over if it blocks.
  if (!conn->out.empty()) {
    HandleWritable(conn_id, conn);
  }
}

bool QueryServer::ConsumeInput(uint64_t conn_id, Conn* conn) {
  if (conn->in.empty()) {
    return true;
  }
  // Protocol sniff: decide once we have 4 bytes (or know no more come).
  // "GET " can never start a JSON request line, so the two protocols are
  // unambiguous from the first word.
  if (!conn->is_http && conn->in.size() < 4 && !conn->read_closed &&
      std::string("GET ").compare(0, conn->in.size(), conn->in) == 0) {
    return true;  // could still become either; wait for more bytes
  }
  if (!conn->is_http && conn->in.compare(0, 4, "GET ") == 0) {
    conn->is_http = true;
  }

  if (conn->is_http) {
    const size_t head_end = conn->in.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      return conn->in.size() <= config_.max_line_bytes && !conn->read_closed;
    }
    obs::HttpRequest request;
    obs::HttpResponse response;
    if (!obs::ParseHttpRequest(conn->in.substr(0, head_end + 4), &request)) {
      response = {"400 Bad Request", "text/plain", "bad request\n"};
    } else if (request.path == "/statusz") {
      response = {"200 OK", "application/json", StatuszJson()};
    } else {
      response = obs::RenderObsRoute(request, config_.service.metrics,
                                     config_.service.flight_recorder);
    }
    conn->out += obs::FormatHttpResponse(response);
    conn->in.clear();
    conn->read_closed = true;  // Connection: close semantics
    return true;
  }

  // NDJSON: one request per line.
  size_t start = 0;
  while (true) {
    const size_t nl = conn->in.find('\n', start);
    if (nl == std::string::npos) {
      break;
    }
    std::string line = conn->in.substr(start, nl - start);
    start = nl + 1;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty()) {
      continue;
    }
    ++conn->in_flight;
    // The completion may run inline (rejections) or on a worker thread
    // (admitted queries); both routes go through the outbox so delivery
    // is uniformly owned by the poll loop.
    service_->Submit(line, conn->tenant,
                     [this, conn_id](std::string response) {
                       {
                         std::lock_guard<std::mutex> lock(outbox_mu_);
                         outbox_.emplace_back(conn_id, std::move(response));
                       }
                       Wake();
                     });
  }
  conn->in.erase(0, start);
  return true;
}

void QueryServer::DrainOutbox() {
  std::deque<std::pair<uint64_t, std::string>> batch;
  {
    std::lock_guard<std::mutex> lock(outbox_mu_);
    batch.swap(outbox_);
  }
  for (auto& [conn_id, response] : batch) {
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) {
      continue;  // client left before its answer arrived
    }
    Conn& conn = it->second;
    if (conn.in_flight > 0) {
      --conn.in_flight;
    }
    conn.out += response;
    conn.out.push_back('\n');
    if (conn.out.size() > config_.max_out_bytes) {
      // The client stopped reading while responses kept completing;
      // dropping it beats buffering without bound.
      CloseConn(conn_id);
      continue;
    }
    HandleWritable(conn_id, &conn);
  }
}

void QueryServer::HandleWritable(uint64_t conn_id, Conn* conn) {
  while (!conn->out.empty()) {
    const ssize_t n = ::send(conn->fd, conn->out.data(), conn->out.size(),
                             MSG_NOSIGNAL);
    if (n > 0) {
      conn->out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;  // poll loop re-arms POLLOUT
    }
    CloseConn(conn_id);  // peer gone
    return;
  }
}

void QueryServer::CloseConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    return;
  }
  ::close(it->second.fd);
  conns_.erase(it);
}

std::string QueryServer::StatuszJson() const {
  const ServiceCounters c = service_->counters();
  JsonWriter w;
  w.BeginObject();
  w.Key("requests").Value(c.requests);
  w.Key("invalid").Value(c.invalid);
  w.Key("quota_denied").Value(c.quota_denied);
  w.Key("shed").Value(c.shed);
  w.Key("admitted").Value(c.admitted);
  w.Key("completed").Value(c.completed);
  w.Key("cancelled").Value(c.cancelled);
  w.Key("batches").Value(c.batches);
  w.Key("batched_queries").Value(c.batched_queries);
  w.Key("connections").Value(static_cast<uint64_t>(conns_.size()));
  w.EndObject();
  std::string body = w.Take();
  body.push_back('\n');
  return body;
}

}  // namespace dsks::server
