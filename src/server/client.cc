#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace dsks::server {

namespace {

int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Status QueryClient::Connect(uint16_t port) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("client socket: ") +
                           std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("client connect: " + err);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  buf_.clear();
  return Status::Ok();
}

void QueryClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

Status QueryClient::SendLine(const std::string& line) {
  if (fd_ < 0) {
    return Status::InvalidArgument("client not connected");
  }
  std::string wire = line;
  wire.push_back('\n');
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n =
        ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IOError(std::string("client send: ") +
                             std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status QueryClient::ReadLine(std::string* line, int timeout_ms) {
  if (fd_ < 0) {
    return Status::InvalidArgument("client not connected");
  }
  const int64_t deadline = NowMillis() + timeout_ms;
  while (true) {
    const size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      *line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      if (!line->empty() && line->back() == '\r') {
        line->pop_back();
      }
      return Status::Ok();
    }
    const int64_t remaining = deadline - NowMillis();
    if (remaining <= 0) {
      return Status::IOError("client read timeout");
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (ready < 0 && errno != EINTR) {
      return Status::IOError(std::string("client poll: ") +
                             std::strerror(errno));
    }
    if (ready <= 0) {
      continue;
    }
    char chunk[16 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return Status::IOError("server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return Status::IOError(std::string("client recv: ") +
                             std::strerror(errno));
    }
    buf_.append(chunk, static_cast<size_t>(n));
  }
}

Status QueryClient::Request(const std::string& line, std::string* response,
                            int timeout_ms) {
  DSKS_RETURN_IF_ERROR(SendLine(line));
  return ReadLine(response, timeout_ms);
}

}  // namespace dsks::server
