#ifndef DSKS_SERVER_JSON_H_
#define DSKS_SERVER_JSON_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace dsks::server {

/// A parsed JSON value — the request side of the wire protocol. This is a
/// deliberately small recursive-descent parser (no dependencies, RFC 8259
/// minus \uXXXX surrogate pairs, which the query language never needs):
/// requests are one short object per line, so parse speed is irrelevant
/// next to the query they describe. Responses are built by direct string
/// appends (JsonWriter below), never through this tree.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::map<std::string, JsonValue>& object() const { return object_; }

  /// Object member lookup; null when absent or this is not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Parses exactly one JSON document from `text` (trailing garbage is an
  /// error). On failure the Status message points at the offending byte.
  static Status Parse(const std::string& text, JsonValue* out);

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Escapes `text` for embedding inside a JSON string literal (quotes not
/// included).
std::string JsonEscape(const std::string& text);

/// Append-only JSON builder for responses: keeps comma state per nesting
/// level so call sites read like the document they produce.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  /// Starts a keyed member inside an object (call before Begin*/value).
  JsonWriter& Key(const char* key);
  JsonWriter& Value(const std::string& s);
  JsonWriter& Value(const char* s);
  JsonWriter& Value(double v);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(bool v);
  JsonWriter& Null();
  /// Splices a pre-rendered JSON document in as one value.
  JsonWriter& Raw(const std::string& json);

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void Comma();

  std::string out_;
  std::vector<bool> first_;  // per open container: no member emitted yet
};

}  // namespace dsks::server

#endif  // DSKS_SERVER_JSON_H_
