#ifndef DSKS_SERVER_QUERY_SERVICE_H_
#define DSKS_SERVER_QUERY_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "harness/database.h"
#include "harness/query_executor.h"
#include "obs/metrics.h"
#include "obs/sampler.h"

namespace dsks::server {

/// Per-tenant token-bucket quota. Tokens refill at `rate_qps` up to
/// `burst`; each admitted request spends one. 0 rate disables quotas.
struct QuotaConfig {
  double rate_qps = 0.0;
  double burst = 8.0;
};

/// QueryService settings: the executor underneath plus the service-level
/// overload policy (admission, deadlines, quotas, batching).
struct ServiceConfig {
  /// Worker threads of the underlying QueryExecutor.
  size_t threads = 4;
  /// Bound on queued-but-unstarted queries. A full queue is the overload
  /// signal: further requests shed with RESOURCE_EXHAUSTED instead of
  /// queueing unboundedly or blocking the network thread.
  size_t queue_capacity = 64;
  /// IO_ERROR retry budget per query (see ExecutorConfig::max_retries).
  size_t max_retries = 0;
  /// Deadline applied to requests that carry none; 0 = unlimited.
  double default_deadline_ms = 0.0;
  /// Micro-batching window: queries with identical keyword sets admitted
  /// within this many milliseconds run as one executor task on one worker,
  /// so the B+tree descents and posting pages of the shared terms are
  /// fetched once and reused from the buffer pool (one physical scan).
  /// Results are bit-identical to unbatched execution — members still run
  /// their own searches, only the I/O overlaps. 0 disables batching.
  double batch_window_ms = 0.0;
  /// Bounded submit deadline: how long admission may wait for queue space
  /// before shedding. 0 = reject immediately (pure non-blocking).
  double submit_wait_ms = 0.0;
  /// Hard cap on result objects serialized per response (requests may ask
  /// for fewer via "limit"). Keeps one greedy query from turning the
  /// response stream into a bulk export.
  size_t max_results = 1024;
  QuotaConfig quota;
  obs::MetricsRegistry* metrics = &obs::GlobalMetrics();
  obs::FlightRecorder* flight_recorder = nullptr;
  obs::TraceSamplerConfig sampling;
};

/// Exact service-level accounting, readable while the service runs. The
/// overload invariant the integration suite pins down:
///   requests == invalid + quota_denied + shed + admitted
///   admitted == completed (after Stop/drain), every completion carrying
///   an OK / CANCELLED / error Status.
struct ServiceCounters {
  uint64_t requests = 0;
  uint64_t invalid = 0;       // malformed before admission (parse/shape)
  uint64_t quota_denied = 0;  // per-tenant token bucket said no
  uint64_t shed = 0;          // admission queue full → RESOURCE_EXHAUSTED
  uint64_t admitted = 0;      // handed to the executor
  uint64_t completed = 0;     // responses produced by admitted queries
  uint64_t cancelled = 0;     // completions whose Status was CANCELLED
  uint64_t batches = 0;           // flushed multi-member batches
  uint64_t batched_queries = 0;   // members that rode in those batches
};

/// The socket-independent query engine behind the TCP front end: parses
/// the one-line JSON query language into SkQuery/DivQuery at the
/// NormalizeSkQuery/NormalizeDivQuery boundary, applies quota + admission
/// + deadline policy, runs on a QueryExecutor, and hands each request's
/// JSON response to its completion callback (invoked on a worker thread —
/// the caller owns cross-thread delivery).
///
/// Request language (one JSON object per line):
///   {"op":"sk"|"div", "terms":[1,2], "edge":E, "offset":W, "delta":D,
///    "k":K, "lambda":L,            // div only
///    "deadline_ms":D, "trace":true, "limit":N, "tenant":"t", "id":...}
/// Response: {"id":..., "status":"OK", "count":N, "results":[...], "ms":..,
///    "io":{...}, and "objective"/"trace"/"batched"/"message" as apply}.
class QueryService {
 public:
  /// Response JSON plus delivery. Called exactly once per Submit, on a
  /// worker/batcher thread for admitted queries and inline (on the
  /// Submit caller's thread) for pre-admission rejections.
  using Completion = std::function<void(std::string response_json)>;

  QueryService(Database* db, const ServiceConfig& config);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// One request line from connection tag `tenant` (a request-level
  /// "tenant" field overrides it for quota accounting).
  void Submit(const std::string& line, const std::string& tenant,
              Completion done);

  /// Flushes pending batches, drains the executor (every admitted query
  /// completes and its callback runs), and stops the batcher. Idempotent;
  /// also run by the destructor. No Submit may race or follow Stop.
  void Stop();

  ServiceCounters counters() const;
  const ServiceConfig& config() const { return config_; }

 private:
  struct Request;
  struct PendingBatch;

  Status ParseRequest(const std::string& line, Request* out) const;
  bool CheckQuota(const std::string& tenant);
  /// Runs one parsed request on a worker context and returns the response.
  Status RunOne(const Request& req, QueryContext* ctx, bool batched,
                std::string* response) const;
  void FinishAdmitted(const Status& status) const;
  void SubmitDirect(std::shared_ptr<Request> req, Completion done);
  void EnqueueBatchMember(std::shared_ptr<Request> req, Completion done);
  void BatcherLoop();
  void FlushBatch(PendingBatch&& batch);
  void RespondRejected(const Completion& done, const Request* req,
                       const char* code_name, const std::string& message,
                       bool quota) const;

  Database* const db_;
  const ServiceConfig config_;
  std::unique_ptr<QueryExecutor> executor_;

  // Pre-resolved counters; the registry publishes, the atomics are the
  // exact-accounting source of truth for counters().
  struct Counter {
    std::atomic<uint64_t> n{0};
    obs::Counter* published = nullptr;
    void Add(uint64_t d = 1) {
      n.fetch_add(d, std::memory_order_relaxed);
      if (published != nullptr) {
        published->Add(d);
      }
    }
    uint64_t get() const { return n.load(std::memory_order_relaxed); }
  };
  mutable Counter requests_, invalid_, quota_denied_, shed_, admitted_,
      completed_, cancelled_, batches_, batched_queries_;

  // Per-tenant token buckets (steady-clock refill).
  struct Bucket {
    double tokens = 0.0;
    int64_t last_ns = 0;
  };
  std::mutex quota_mu_;
  std::map<std::string, Bucket> buckets_;

  // Micro-batcher state: keyed by canonical term list, flushed by a
  // dedicated thread once a batch's window expires (or at Stop).
  std::mutex batch_mu_;
  std::condition_variable batch_cv_;
  std::map<std::string, PendingBatch> pending_batches_;
  bool batcher_stop_ = false;
  std::thread batcher_;

  bool stopped_ = false;
};

}  // namespace dsks::server

#endif  // DSKS_SERVER_QUERY_SERVICE_H_
