#ifndef DSKS_STORAGE_PAGE_H_
#define DSKS_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>

namespace dsks {

/// Identifier of a page in the simulated disk's global address space.
using PageId = uint32_t;

/// Sentinel for "no page" (e.g. a B+tree leaf with no successor).
inline constexpr PageId kInvalidPageId = UINT32_MAX;

/// All disk-resident structures in this library use 4096-byte pages, the
/// page size fixed in the paper's experimental setup (§5).
inline constexpr size_t kPageSize = 4096;

}  // namespace dsks

#endif  // DSKS_STORAGE_PAGE_H_
