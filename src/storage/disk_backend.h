#ifndef DSKS_STORAGE_DISK_BACKEND_H_
#define DSKS_STORAGE_DISK_BACKEND_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace dsks {

/// Which physical medium a DiskManager puts its pages on.
enum class DiskBackendKind {
  /// In-memory page map with optional simulated latency. Deterministic and
  /// file-system free: the default for unit tests, chaos runs and the
  /// paper-figure harness.
  kSim,
  /// One real index file accessed with pread/pwrite at page-id × kPageSize
  /// offsets; checksums persisted in a `<path>.crc` sidecar; fsync on
  /// Flush. Turns the "# of I/O accesses" benches from a model into a
  /// measurement.
  kFile,
};

/// Stable lower-case name ("sim" / "file") used by --backend flags and the
/// "backend" field of bench JSON records.
const char* DiskBackendKindName(DiskBackendKind kind);

/// How speculative reads reach the medium.
enum class IoMode {
  /// Every read completes on the issuing thread before the call returns
  /// (the PR-7 batched layer, unchanged).
  kSync,
  /// Speculative reads are submitted to an AsyncIoEngine and complete on
  /// engine threads: io_uring where the kernel offers it (file backend,
  /// buffered I/O), a worker pool otherwise. Demand reads stay
  /// synchronous — only Prefetch overlaps.
  kAsync,
};

/// Stable lower-case name ("sync" / "async") used by --io flags and the
/// "io" field of bench JSON records.
const char* IoModeName(IoMode mode);

/// Open-time configuration of a DiskManager.
struct DiskOptions {
  DiskBackendKind backend = DiskBackendKind::kSim;
  /// File backend: path of the index file; its checksum sidecar lives at
  /// `path + ".crc"`. Ignored by the simulated backend.
  std::string path;
  /// File backend: bypass the OS page cache with O_DIRECT so measured
  /// reads hit the device. Best effort: filesystems that reject the flag
  /// (tmpfs) silently fall back to buffered I/O.
  bool o_direct = false;
  /// Speculative-read path: kSync (default) or kAsync (see IoMode).
  IoMode io = IoMode::kSync;
  /// Async only: upper bound on speculative pages in flight at once. The
  /// buffer pool refuses to start prefetches past this window (they are
  /// silently skipped, like pages already resident) and the io_uring SQ
  /// is sized from it.
  size_t io_depth = 64;
};

/// CRC32C of an all-zero page, the checksum recorded for freshly allocated
/// pages by every backend.
uint32_t ZeroPageCrc();

/// One page of a batched read (DiskBackend::ReadPages / DiskManager::
/// ReadPages). The caller fills `id` and `out`; the backend fills
/// `expected_crc` and `status` with exactly the values the equivalent
/// single-page ReadPage would have produced. Statuses are per page: one
/// failed page does not poison its batch mates.
struct PageReadRequest {
  PageId id = kInvalidPageId;
  char* out = nullptr;
  uint32_t expected_crc = 0;
  Status status;
};

/// Storage medium behind a DiskManager: raw page images plus their
/// out-of-line per-page checksums. Implementations do their own locking.
/// Everything policy-level — fault injection, checksum computation and
/// verification, I/O statistics, simulated-latency knobs — lives in the
/// DiskManager front end, so both backends inherit identical failure
/// semantics and `dsks_cli chaos` drills real files exactly like the
/// simulation.
///
/// Concurrency contract (inherited by DiskManager): concurrent calls on
/// distinct pages are safe; concurrent accesses to the *same* page are
/// safe only if at most one of them writes — which the buffer pool
/// guarantees.
class DiskBackend {
 public:
  virtual ~DiskBackend() = default;

  /// Appends a zeroed page (checksum = ZeroPageCrc()) and returns its id.
  virtual PageId AllocatePage() = 0;

  /// Copies page `id` into `out` (kPageSize bytes) and its recorded
  /// checksum into `*expected_crc`. Returns IOError for a device failure
  /// (`out` undefined) and Corruption for a structurally impossible read —
  /// a short read past the end of a torn file. The caller verifies `out`
  /// against `*expected_crc`; the backend does not.
  virtual Status ReadPage(PageId id, char* out, uint32_t* expected_crc) = 0;

  /// Batched ReadPage: fills every request's `expected_crc`/`status` (and
  /// `out` on success) with the same values a per-page loop would, but in
  /// one device round trip where the medium allows it. The file backend
  /// merges contiguous page-id runs into single preadv calls; the sim
  /// backend charges its simulated latency once per batch instead of once
  /// per page. This base implementation is the per-page loop, so custom
  /// backends get correct (if unbatched) behaviour for free.
  virtual void ReadPages(std::span<PageReadRequest> batch) {
    for (PageReadRequest& r : batch) {
      r.status = ReadPage(r.id, r.out, &r.expected_crc);
    }
  }

  /// Completion callback of SubmitRead. Runs exactly once, after every
  /// request in the batch carries its final out/expected_crc/status.
  using ReadCompletion = std::function<void(std::span<PageReadRequest>)>;

  /// Asynchronous ReadPages: takes ownership of `batch`, returns as soon
  /// as the reads are queued, and invokes `done` from an engine thread
  /// when the whole batch has resolved. This base implementation is the
  /// synchronous rung of the fallback ladder — ReadPages plus an inline
  /// completion on the calling thread — so backends without an engine
  /// (and IoMode::kSync configurations) behave exactly like PR 7.
  ///
  /// `done` may therefore run on the *calling* thread before SubmitRead
  /// returns; callers must not hold locks the completion also takes.
  virtual void SubmitRead(std::vector<PageReadRequest> batch,
                          ReadCompletion done) {
    ReadPages(std::span<PageReadRequest>(batch));
    done(std::span<PageReadRequest>(batch));
  }

  /// True when SubmitRead actually overlaps (an engine is attached);
  /// issuers use it to deepen their speculative windows.
  virtual bool async_enabled() const { return false; }

  /// Which rung of the ladder serves SubmitRead: "io_uring",
  /// "worker-pool", or "sync".
  virtual const char* io_engine_name() const { return "sync"; }

  /// Blocks until every SubmitRead completion has fully returned. The
  /// buffer pool drains before destruction/Clear so no completion can
  /// land on a dead pool.
  virtual void DrainReads() {}

  /// Stores `in` as page `id` and records `crc` as its checksum. On error
  /// the recorded checksum is untouched (the page image may be torn on a
  /// real device — the stale checksum then flags it on the next read).
  virtual Status WritePage(PageId id, const char* in, uint32_t crc) = 0;

  /// Drops every page with id >= new_num_pages. Index rebuilds reuse the
  /// freed extent, keeping the disk (or index file) from growing without
  /// bound.
  virtual Status TruncatePages(size_t new_num_pages) = 0;

  /// Makes everything written so far durable: the file backend persists
  /// the checksum sidecar (including the page-allocation watermark) and
  /// fsyncs both files; the simulation is a no-op.
  virtual Status Flush() = 0;

  /// Test hook: flips one bit of the *stored* page image without updating
  /// its checksum (at-rest corruption).
  virtual void CorruptStoredPage(PageId id, uint32_t bit_index) = 0;

  /// Page-allocation watermark (pages ever allocated minus truncations).
  virtual size_t num_pages() const = 0;
};

}  // namespace dsks

#endif  // DSKS_STORAGE_DISK_BACKEND_H_
