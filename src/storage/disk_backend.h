#ifndef DSKS_STORAGE_DISK_BACKEND_H_
#define DSKS_STORAGE_DISK_BACKEND_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "common/status.h"
#include "storage/page.h"

namespace dsks {

/// Which physical medium a DiskManager puts its pages on.
enum class DiskBackendKind {
  /// In-memory page map with optional simulated latency. Deterministic and
  /// file-system free: the default for unit tests, chaos runs and the
  /// paper-figure harness.
  kSim,
  /// One real index file accessed with pread/pwrite at page-id × kPageSize
  /// offsets; checksums persisted in a `<path>.crc` sidecar; fsync on
  /// Flush. Turns the "# of I/O accesses" benches from a model into a
  /// measurement.
  kFile,
};

/// Stable lower-case name ("sim" / "file") used by --backend flags and the
/// "backend" field of bench JSON records.
const char* DiskBackendKindName(DiskBackendKind kind);

/// Open-time configuration of a DiskManager.
struct DiskOptions {
  DiskBackendKind backend = DiskBackendKind::kSim;
  /// File backend: path of the index file; its checksum sidecar lives at
  /// `path + ".crc"`. Ignored by the simulated backend.
  std::string path;
  /// File backend: bypass the OS page cache with O_DIRECT so measured
  /// reads hit the device. Best effort: filesystems that reject the flag
  /// (tmpfs) silently fall back to buffered I/O.
  bool o_direct = false;
};

/// CRC32C of an all-zero page, the checksum recorded for freshly allocated
/// pages by every backend.
uint32_t ZeroPageCrc();

/// One page of a batched read (DiskBackend::ReadPages / DiskManager::
/// ReadPages). The caller fills `id` and `out`; the backend fills
/// `expected_crc` and `status` with exactly the values the equivalent
/// single-page ReadPage would have produced. Statuses are per page: one
/// failed page does not poison its batch mates.
struct PageReadRequest {
  PageId id = kInvalidPageId;
  char* out = nullptr;
  uint32_t expected_crc = 0;
  Status status;
};

/// Storage medium behind a DiskManager: raw page images plus their
/// out-of-line per-page checksums. Implementations do their own locking.
/// Everything policy-level — fault injection, checksum computation and
/// verification, I/O statistics, simulated-latency knobs — lives in the
/// DiskManager front end, so both backends inherit identical failure
/// semantics and `dsks_cli chaos` drills real files exactly like the
/// simulation.
///
/// Concurrency contract (inherited by DiskManager): concurrent calls on
/// distinct pages are safe; concurrent accesses to the *same* page are
/// safe only if at most one of them writes — which the buffer pool
/// guarantees.
class DiskBackend {
 public:
  virtual ~DiskBackend() = default;

  /// Appends a zeroed page (checksum = ZeroPageCrc()) and returns its id.
  virtual PageId AllocatePage() = 0;

  /// Copies page `id` into `out` (kPageSize bytes) and its recorded
  /// checksum into `*expected_crc`. Returns IOError for a device failure
  /// (`out` undefined) and Corruption for a structurally impossible read —
  /// a short read past the end of a torn file. The caller verifies `out`
  /// against `*expected_crc`; the backend does not.
  virtual Status ReadPage(PageId id, char* out, uint32_t* expected_crc) = 0;

  /// Batched ReadPage: fills every request's `expected_crc`/`status` (and
  /// `out` on success) with the same values a per-page loop would, but in
  /// one device round trip where the medium allows it. The file backend
  /// merges contiguous page-id runs into single preadv calls; the sim
  /// backend charges its simulated latency once per batch instead of once
  /// per page. This base implementation is the per-page loop, so custom
  /// backends get correct (if unbatched) behaviour for free.
  virtual void ReadPages(std::span<PageReadRequest> batch) {
    for (PageReadRequest& r : batch) {
      r.status = ReadPage(r.id, r.out, &r.expected_crc);
    }
  }

  /// Stores `in` as page `id` and records `crc` as its checksum. On error
  /// the recorded checksum is untouched (the page image may be torn on a
  /// real device — the stale checksum then flags it on the next read).
  virtual Status WritePage(PageId id, const char* in, uint32_t crc) = 0;

  /// Drops every page with id >= new_num_pages. Index rebuilds reuse the
  /// freed extent, keeping the disk (or index file) from growing without
  /// bound.
  virtual Status TruncatePages(size_t new_num_pages) = 0;

  /// Makes everything written so far durable: the file backend persists
  /// the checksum sidecar (including the page-allocation watermark) and
  /// fsyncs both files; the simulation is a no-op.
  virtual Status Flush() = 0;

  /// Test hook: flips one bit of the *stored* page image without updating
  /// its checksum (at-rest corruption).
  virtual void CorruptStoredPage(PageId id, uint32_t bit_index) = 0;

  /// Page-allocation watermark (pages ever allocated minus truncations).
  virtual size_t num_pages() const = 0;
};

}  // namespace dsks

#endif  // DSKS_STORAGE_DISK_BACKEND_H_
