#include "storage/async_io_engine.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/macros.h"

#if defined(__linux__)
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#define DSKS_HAVE_IO_URING 1
#endif

namespace dsks {

// ---------------------------------------------------------------------------
// WorkerPoolIoEngine
// ---------------------------------------------------------------------------

WorkerPoolIoEngine::WorkerPoolIoEngine(ReadFn read_fn, size_t num_threads)
    : read_fn_(std::move(read_fn)) {
  DSKS_CHECK_MSG(num_threads > 0, "worker-pool engine needs a thread");
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPoolIoEngine::~WorkerPoolIoEngine() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  // Workers drain the queue before exiting, so every accepted batch still
  // gets its completion.
  work_ready_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void WorkerPoolIoEngine::Submit(AsyncReadBatch batch) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DSKS_CHECK_MSG(!stop_, "Submit on a stopped engine");
    queue_.push_back(std::move(batch));
  }
  work_ready_.notify_one();
}

void WorkerPoolIoEngine::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void WorkerPoolIoEngine::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [this] { return !queue_.empty() || stop_; });
    if (queue_.empty()) {
      return;  // stop_ set and nothing left to service
    }
    AsyncReadBatch batch = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    read_fn_(std::span<PageReadRequest>(batch.reqs));
    batch.done(std::span<PageReadRequest>(batch.reqs));
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) {
      idle_.notify_all();
    }
  }
}

// ---------------------------------------------------------------------------
// IoUringIoEngine
// ---------------------------------------------------------------------------

#ifdef DSKS_HAVE_IO_URING

namespace {

int SysIoUringSetup(unsigned entries, struct io_uring_params* p) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, p));
}

int SysIoUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(syscall(__NR_io_uring_enter, fd, to_submit,
                                  min_complete, flags, nullptr, 0));
}

unsigned LoadAcquire(const unsigned* p) {
  return __atomic_load_n(p, __ATOMIC_ACQUIRE);
}

void StoreRelease(unsigned* p, unsigned v) {
  __atomic_store_n(p, v, __ATOMIC_RELEASE);
}

}  // namespace

/// mmap'd kernel ring views. All pointers live inside the three (or two,
/// with IORING_FEAT_SINGLE_MMAP) mappings and are fixed for the ring's
/// lifetime.
struct IoUringIoEngine::Ring {
  int ring_fd = -1;
  unsigned sq_entries = 0;
  unsigned cq_entries = 0;
  void* sq_map = nullptr;
  size_t sq_map_len = 0;
  void* cq_map = nullptr;  // aliases sq_map under FEAT_SINGLE_MMAP
  size_t cq_map_len = 0;
  struct io_uring_sqe* sqes = nullptr;
  size_t sqes_len = 0;

  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned sq_mask = 0;
  unsigned* sq_array = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned cq_mask = 0;
  struct io_uring_cqe* cqes = nullptr;

  ~Ring() {
    if (sqes != nullptr) {
      ::munmap(sqes, sqes_len);
    }
    if (cq_map != nullptr && cq_map != sq_map) {
      ::munmap(cq_map, cq_map_len);
    }
    if (sq_map != nullptr) {
      ::munmap(sq_map, sq_map_len);
    }
    if (ring_fd >= 0) {
      ::close(ring_fd);
    }
  }
};

struct IoUringIoEngine::Batch {
  struct Tag {
    Batch* batch = nullptr;
    uint32_t idx = 0;
  };

  AsyncReadBatch work;
  /// Unresolved device reads + one sentinel held by Submit; whoever drops
  /// the count to zero runs the completion.
  std::atomic<size_t> pending{1};
  std::vector<Tag> tags;
};

std::unique_ptr<IoUringIoEngine> IoUringIoEngine::Probe(int data_fd,
                                                        size_t queue_depth,
                                                        FallbackFn fallback) {
  unsigned entries = 8;
  while (entries < queue_depth && entries < 512) {
    entries *= 2;
  }
  struct io_uring_params params;
  std::memset(&params, 0, sizeof(params));
  auto ring = std::make_unique<Ring>();
  ring->ring_fd = SysIoUringSetup(entries, &params);
  if (ring->ring_fd < 0) {
    return nullptr;  // ENOSYS / EPERM / old kernel: fall back to the pool
  }
  ring->sq_entries = params.sq_entries;
  ring->cq_entries = params.cq_entries;
  size_t sq_len =
      params.sq_off.array + params.sq_entries * sizeof(unsigned);
  size_t cq_len =
      params.cq_off.cqes + params.cq_entries * sizeof(struct io_uring_cqe);
  const bool single_mmap =
      (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap) {
    sq_len = cq_len = sq_len > cq_len ? sq_len : cq_len;
  }
  ring->sq_map_len = sq_len;
  ring->sq_map = ::mmap(nullptr, sq_len, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring->ring_fd,
                        IORING_OFF_SQ_RING);
  if (ring->sq_map == MAP_FAILED) {
    ring->sq_map = nullptr;
    return nullptr;
  }
  if (single_mmap) {
    ring->cq_map = ring->sq_map;
    ring->cq_map_len = cq_len;
  } else {
    ring->cq_map_len = cq_len;
    ring->cq_map = ::mmap(nullptr, cq_len, PROT_READ | PROT_WRITE,
                          MAP_SHARED | MAP_POPULATE, ring->ring_fd,
                          IORING_OFF_CQ_RING);
    if (ring->cq_map == MAP_FAILED) {
      ring->cq_map = nullptr;
      return nullptr;
    }
  }
  ring->sqes_len = params.sq_entries * sizeof(struct io_uring_sqe);
  void* sqes = ::mmap(nullptr, ring->sqes_len, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring->ring_fd,
                      IORING_OFF_SQES);
  if (sqes == MAP_FAILED) {
    return nullptr;
  }
  ring->sqes = static_cast<struct io_uring_sqe*>(sqes);

  char* sq_base = static_cast<char*>(ring->sq_map);
  ring->sq_head = reinterpret_cast<unsigned*>(sq_base + params.sq_off.head);
  ring->sq_tail = reinterpret_cast<unsigned*>(sq_base + params.sq_off.tail);
  ring->sq_mask =
      *reinterpret_cast<unsigned*>(sq_base + params.sq_off.ring_mask);
  ring->sq_array = reinterpret_cast<unsigned*>(sq_base + params.sq_off.array);
  char* cq_base = static_cast<char*>(ring->cq_map);
  ring->cq_head = reinterpret_cast<unsigned*>(cq_base + params.cq_off.head);
  ring->cq_tail = reinterpret_cast<unsigned*>(cq_base + params.cq_off.tail);
  ring->cq_mask =
      *reinterpret_cast<unsigned*>(cq_base + params.cq_off.ring_mask);
  ring->cqes = reinterpret_cast<struct io_uring_cqe*>(cq_base +
                                                      params.cq_off.cqes);

  return std::unique_ptr<IoUringIoEngine>(
      new IoUringIoEngine(data_fd, std::move(fallback), std::move(ring)));
}

IoUringIoEngine::IoUringIoEngine(int data_fd, FallbackFn fallback,
                                 std::unique_ptr<Ring> ring)
    : data_fd_(data_fd), fallback_(std::move(fallback)),
      ring_(std::move(ring)) {
  reaper_ = std::thread([this] { ReaperLoop(); });
}

IoUringIoEngine::~IoUringIoEngine() {
  Drain();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    SubmitNopLocked();  // wakes the reaper out of io_uring_enter
  }
  reaper_.join();
}

bool IoUringIoEngine::PushSqeLocked(PageId id, char* out, void* user_data) {
  const unsigned head = LoadAcquire(ring_->sq_head);
  const unsigned tail = *ring_->sq_tail;  // sole writer, under mutex_
  if (tail - head >= ring_->sq_entries) {
    return false;
  }
  const unsigned idx = tail & ring_->sq_mask;
  struct io_uring_sqe* sqe = &ring_->sqes[idx];
  std::memset(sqe, 0, sizeof(*sqe));
  sqe->opcode = IORING_OP_READ;
  sqe->fd = data_fd_;
  sqe->addr = reinterpret_cast<uint64_t>(out);
  sqe->len = kPageSize;
  sqe->off = static_cast<uint64_t>(id) * kPageSize;
  sqe->user_data = reinterpret_cast<uint64_t>(user_data);
  ring_->sq_array[idx] = idx;
  StoreRelease(ring_->sq_tail, tail + 1);
  return true;
}

void IoUringIoEngine::SubmitNopLocked() {
  const unsigned head = LoadAcquire(ring_->sq_head);
  const unsigned tail = *ring_->sq_tail;
  // The SQ cannot be full here: the destructor drained first, so every
  // data SQE has been consumed.
  DSKS_CHECK_MSG(tail - head < ring_->sq_entries, "NOP into a full SQ");
  const unsigned idx = tail & ring_->sq_mask;
  struct io_uring_sqe* sqe = &ring_->sqes[idx];
  std::memset(sqe, 0, sizeof(*sqe));
  sqe->opcode = IORING_OP_NOP;
  sqe->user_data = 0;
  ring_->sq_array[idx] = idx;
  StoreRelease(ring_->sq_tail, tail + 1);
  while (SysIoUringEnter(ring_->ring_fd, 1, 0, 0) < 0 && errno == EINTR) {
  }
}

void IoUringIoEngine::Submit(AsyncReadBatch batch) {
  auto* b = new Batch;
  b->work = std::move(batch);
  const size_t n = b->work.reqs.size();
  b->tags.resize(n);
  std::vector<size_t> overflow;  // SQ-full pages, read synchronously below
  unsigned pushed = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DSKS_CHECK_MSG(!stop_, "Submit on a stopped engine");
    ++outstanding_batches_;
    for (size_t i = 0; i < n; ++i) {
      PageReadRequest& r = b->work.reqs[i];
      b->tags[i].batch = b;
      b->tags[i].idx = static_cast<uint32_t>(i);
      // Count the read before publishing its SQE: the kernel may complete
      // it (and the reaper drop its reference) before the next statement
      // runs, and pending must never hit zero while this loop still
      // touches the batch.
      b->pending.fetch_add(1, std::memory_order_relaxed);
      if (PushSqeLocked(r.id, r.out, &b->tags[i])) {
        ++pushed;
      } else {
        b->pending.fetch_sub(1, std::memory_order_relaxed);
        overflow.push_back(i);
      }
    }
    if (pushed > 0) {
      while (SysIoUringEnter(ring_->ring_fd, pushed, 0, 0) < 0 &&
             errno == EINTR) {
      }
    }
  }
  for (size_t i : overflow) {
    fallback_(&b->work.reqs[i]);
  }
  // Drop the sentinel; if every device read already completed (or none
  // was needed) the completion runs here, on the submitting thread —
  // exactly the synchronous rung of the fallback ladder.
  if (b->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    b->work.done(std::span<PageReadRequest>(b->work.reqs));
    delete b;
    std::lock_guard<std::mutex> lock(mutex_);
    if (--outstanding_batches_ == 0) {
      idle_.notify_all();
    }
  }
}

void IoUringIoEngine::ReaperLoop() {
  for (;;) {
    unsigned head = LoadAcquire(ring_->cq_head);
    const unsigned tail = LoadAcquire(ring_->cq_tail);
    if (head == tail) {
      const int rc =
          SysIoUringEnter(ring_->ring_fd, 0, 1, IORING_ENTER_GETEVENTS);
      if (rc < 0 && errno != EINTR && errno != EAGAIN && errno != EBUSY) {
        // Unexpected ring failure: without CQEs no completion can ever
        // land, so surface it loudly rather than hanging Drain().
        DSKS_CHECK_MSG(false, "io_uring_enter(GETEVENTS) failed");
      }
      continue;
    }
    // A CQE can only exist after the Submit that pushed its SQE ran
    // io_uring_enter inside the mutex_ critical section, so acquiring the
    // mutex here (after observing the CQ tail) synchronizes-with that
    // section's release and makes its writes — the Batch, its tags, the
    // request array — visible to this thread. The kernel's SQ-to-CQ hop
    // is invisible to the C++ memory model (and to TSan); this edge is
    // the user-space half of the handoff.
    { std::lock_guard<std::mutex> lock(mutex_); }
    bool saw_stop_nop = false;
    while (head != tail) {
      const struct io_uring_cqe& cqe = ring_->cqes[head & ring_->cq_mask];
      const uint64_t user_data = cqe.user_data;
      const int32_t res = cqe.res;
      ++head;
      StoreRelease(ring_->cq_head, head);
      if (user_data == 0) {
        saw_stop_nop = true;
        continue;
      }
      auto* tag = reinterpret_cast<Batch::Tag*>(
          static_cast<uintptr_t>(user_data));
      Batch* b = tag->batch;
      PageReadRequest& r = b->work.reqs[tag->idx];
      if (res == static_cast<int32_t>(kPageSize)) {
        r.status = Status::Ok();
      } else {
        // Short read or device/ring error (-EINVAL on an unsupported
        // opcode included): retry through the backend's single-page path
        // so the error semantics match the synchronous rung exactly.
        fallback_(&r);
      }
      if (b->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        b->work.done(std::span<PageReadRequest>(b->work.reqs));
        delete b;
        std::lock_guard<std::mutex> lock(mutex_);
        if (--outstanding_batches_ == 0) {
          idle_.notify_all();
        }
      }
    }
    if (saw_stop_nop) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stop_) {
        return;
      }
    }
  }
}

void IoUringIoEngine::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return outstanding_batches_ == 0; });
}

#else  // !DSKS_HAVE_IO_URING

struct IoUringIoEngine::Ring {};
struct IoUringIoEngine::Batch {};

std::unique_ptr<IoUringIoEngine> IoUringIoEngine::Probe(int, size_t,
                                                        FallbackFn) {
  return nullptr;
}

IoUringIoEngine::~IoUringIoEngine() = default;
void IoUringIoEngine::Submit(AsyncReadBatch) {}
void IoUringIoEngine::Drain() {}

#endif  // DSKS_HAVE_IO_URING

}  // namespace dsks
