#ifndef DSKS_STORAGE_FAULT_INJECTOR_H_
#define DSKS_STORAGE_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "storage/page.h"

namespace dsks {

/// Deterministic, seedable fault source for the simulated disk. A
/// DiskManager owns one and consults it on every ReadPage/WritePage; when
/// disarmed (the default) the per-op cost is a single relaxed atomic load.
///
/// Three fault mechanisms compose:
///  - per-op probabilities: each read/write/corruption decision hashes a
///    dedicated operation counter with the seed (SplitMix64), so the
///    *number* of injected faults over N operations is a pure function of
///    (seed, N, p) even under concurrency — only *which* interleaved op
///    draws a given counter value varies between runs.
///  - one-shot faults: the next read (or write) fails exactly once.
///  - targeted-page faults: reads of a specific page fail `count` times
///    (kAlways for every time). Useful for aiming a fault at a known index
///    page.
///
/// Corruption mode does not fail the operation: it flips one
/// deterministically-chosen bit in the buffer returned by ReadPage, so the
/// caller only notices through checksum verification (kCorruption), which
/// is exactly the silent-corruption scenario checksums exist for.
class FaultInjector {
 public:
  static constexpr uint32_t kAlways = UINT32_MAX;

  struct Config {
    double read_fault_p = 0.0;
    double write_fault_p = 0.0;
    /// Probability that a successful read is returned with one flipped bit.
    double corrupt_read_p = 0.0;
    uint64_t seed = 0;
  };

  /// Plain copy of the injection counters (single coherent read).
  struct StatsSnapshot {
    uint64_t read_faults = 0;
    uint64_t write_faults = 0;
    uint64_t corruptions = 0;
  };

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Installs probabilities + seed and arms the injector. Does not clear
  /// one-shot/targeted faults or stats.
  void Configure(const Config& config);

  /// Turns all injection off (probabilities, one-shots and targeted faults
  /// stop firing) without clearing stats.
  void Disarm();

  /// True when any fault source is active; the disarmed fast path is one
  /// relaxed load.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Arms a fault for the next read (any page), firing exactly once.
  void InjectReadFaultOnce();
  /// Arms a fault for the next write (any page), firing exactly once.
  void InjectWriteFaultOnce();
  /// Arms `count` read faults targeted at page `id` (kAlways = persistent).
  void FailPageReads(PageId id, uint32_t count);

  /// Decision hooks for DiskManager. Each returns true when the current
  /// operation must fail (and bumps the matching stat).
  bool ShouldFailRead(PageId id);
  bool ShouldFailWrite(PageId id);
  /// True when the read of `id` should be returned corrupted; `*bit_index`
  /// receives the bit to flip, in [0, kPageSize * 8).
  bool ShouldCorruptRead(PageId id, uint32_t* bit_index);

  StatsSnapshot stats() const {
    StatsSnapshot s;
    s.read_faults = read_faults_.load(std::memory_order_relaxed);
    s.write_faults = write_faults_.load(std::memory_order_relaxed);
    s.corruptions = corruptions_.load(std::memory_order_relaxed);
    return s;
  }
  void ResetStats() {
    read_faults_.store(0, std::memory_order_relaxed);
    write_faults_.store(0, std::memory_order_relaxed);
    corruptions_.store(0, std::memory_order_relaxed);
  }

 private:
  /// Hashes (seed, op counter) into a uniform uint64 and compares against
  /// the probability threshold.
  bool Draw(double p, std::atomic<uint64_t>* op_counter, uint64_t salt,
            uint64_t* hash_out);
  void RecomputeArmedLocked();

  std::atomic<bool> armed_{false};

  mutable std::mutex mutex_;
  Config config_;
  bool one_shot_read_ = false;
  bool one_shot_write_ = false;
  /// PageId -> remaining targeted read faults (kAlways = persistent).
  std::unordered_map<PageId, uint32_t> targeted_reads_;

  /// Per-category operation counters feeding the deterministic draws.
  std::atomic<uint64_t> read_ops_{0};
  std::atomic<uint64_t> write_ops_{0};
  std::atomic<uint64_t> corrupt_ops_{0};

  std::atomic<uint64_t> read_faults_{0};
  std::atomic<uint64_t> write_faults_{0};
  std::atomic<uint64_t> corruptions_{0};
};

}  // namespace dsks

#endif  // DSKS_STORAGE_FAULT_INJECTOR_H_
