#ifndef DSKS_STORAGE_SIM_DISK_BACKEND_H_
#define DSKS_STORAGE_SIM_DISK_BACKEND_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "storage/disk_backend.h"

namespace dsks {

/// In-memory simulation of a disk: a flat, growable array of 4 KiB pages
/// addressed by PageId. Deliberately stores page images out-of-line (one
/// heap block per page) so that a buffer-pool miss performs a real 4 KiB
/// copy, keeping measured query times sensitive to I/O volume.
///
/// The simulated per-read latency knobs live here because they model a
/// device this backend replaces; the file backend has a real device and
/// the knobs are documented no-ops there (see DiskManager).
///
/// Thread safety: the page directory is guarded by a mutex; the 4 KiB copy
/// (and the simulated latency wait) happens outside it, so reads of
/// distinct pages proceed in parallel.
class SimDiskBackend : public DiskBackend {
 public:
  SimDiskBackend() = default;

  PageId AllocatePage() override;
  Status ReadPage(PageId id, char* out, uint32_t* expected_crc) override;
  /// Batched read: one directory pass under the mutex, then the simulated
  /// latency is charged once for the whole batch — the model of a single
  /// vectored device request — before all pages are copied.
  void ReadPages(std::span<PageReadRequest> batch) override;
  Status WritePage(PageId id, const char* in, uint32_t crc) override;
  Status TruncatePages(size_t new_num_pages) override;
  Status Flush() override { return Status::Ok(); }
  void CorruptStoredPage(PageId id, uint32_t bit_index) override;
  size_t num_pages() const override;

  /// Simulated read latency in microseconds, applied by every ReadPage.
  void set_read_delay_us(double us) {
    read_delay_us_.store(us, std::memory_order_relaxed);
  }
  double read_delay_us() const {
    return read_delay_us_.load(std::memory_order_relaxed);
  }

  /// How the simulated latency passes: busy-wait (precise,
  /// scheduler-independent) or sleep (frees the core like a real blocking
  /// read, used by the concurrent harness).
  void set_read_delay_yields(bool yields) {
    read_delay_yields_.store(yields, std::memory_order_relaxed);
  }
  bool read_delay_yields() const {
    return read_delay_yields_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mutex_;
  /// The unique_ptr array may reallocate on growth, but the page blocks
  /// themselves are stable, so a pointer resolved under the mutex stays
  /// valid for the out-of-lock copy (pages are only freed by
  /// TruncatePages, whose caller guarantees no in-flight access to the
  /// dropped range).
  std::vector<std::unique_ptr<char[]>> pages_;
  /// CRC32C of each page image, kept out-of-line so page layout (and thus
  /// every on-disk structure) is unchanged by checksumming.
  std::vector<uint32_t> checksums_;
  std::atomic<double> read_delay_us_{0.0};
  std::atomic<bool> read_delay_yields_{false};
};

}  // namespace dsks

#endif  // DSKS_STORAGE_SIM_DISK_BACKEND_H_
