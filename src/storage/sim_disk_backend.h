#ifndef DSKS_STORAGE_SIM_DISK_BACKEND_H_
#define DSKS_STORAGE_SIM_DISK_BACKEND_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "storage/async_io_engine.h"
#include "storage/disk_backend.h"

namespace dsks {

/// In-memory simulation of a disk: a flat, growable array of 4 KiB pages
/// addressed by PageId. Deliberately stores page images out-of-line (one
/// heap block per page) so that a buffer-pool miss performs a real 4 KiB
/// copy, keeping measured query times sensitive to I/O volume.
///
/// The simulated per-read latency knobs live here because they model a
/// device this backend replaces; the file backend has a real device and
/// the knobs are documented no-ops there (see DiskManager).
///
/// Thread safety: the page directory is guarded by a mutex; the 4 KiB copy
/// (and the simulated latency wait) happens outside it, so reads of
/// distinct pages proceed in parallel.
class SimDiskBackend : public DiskBackend {
 public:
  SimDiskBackend() = default;
  /// IoMode::kAsync attaches a worker-pool engine (the simulation has no
  /// file descriptor for io_uring); SubmitRead then completes on engine
  /// threads with the simulated latency charged on the completion path —
  /// one round trip per batch, the same unit the sync path charges — each
  /// delay scaled by a deterministic seeded jitter factor (SplitMix64 of
  /// a per-op counter, like FaultInjector's draws) so completions reorder
  /// reproducibly in unit tests. The worker count scales with
  /// DiskOptions::io_depth: each worker sleeping a round trip is one
  /// command the simulated device has in flight, so the queue-depth knob
  /// translates into genuinely overlapped round trips.
  explicit SimDiskBackend(const DiskOptions& options);

  PageId AllocatePage() override;
  Status ReadPage(PageId id, char* out, uint32_t* expected_crc) override;
  /// Batched read: one directory pass under the mutex, then the simulated
  /// latency is charged once for the whole batch — the model of a single
  /// vectored device request — before all pages are copied.
  void ReadPages(std::span<PageReadRequest> batch) override;
  void SubmitRead(std::vector<PageReadRequest> batch,
                  ReadCompletion done) override;
  bool async_enabled() const override { return engine_ != nullptr; }
  const char* io_engine_name() const override {
    return engine_ != nullptr ? engine_->name() : "sync";
  }
  void DrainReads() override {
    if (engine_ != nullptr) {
      engine_->Drain();
    }
  }
  Status WritePage(PageId id, const char* in, uint32_t crc) override;
  Status TruncatePages(size_t new_num_pages) override;
  Status Flush() override { return Status::Ok(); }
  void CorruptStoredPage(PageId id, uint32_t bit_index) override;
  size_t num_pages() const override;

  /// Simulated read latency in microseconds, applied by every ReadPage.
  void set_read_delay_us(double us) {
    read_delay_us_.store(us, std::memory_order_relaxed);
  }
  double read_delay_us() const {
    return read_delay_us_.load(std::memory_order_relaxed);
  }

  /// How the simulated latency passes: busy-wait (precise,
  /// scheduler-independent) or sleep (frees the core like a real blocking
  /// read, used by the concurrent harness).
  void set_read_delay_yields(bool yields) {
    read_delay_yields_.store(yields, std::memory_order_relaxed);
  }
  bool read_delay_yields() const {
    return read_delay_yields_.load(std::memory_order_relaxed);
  }

 private:
  /// Engine read function: resolves sources, then — per page, in request
  /// order — sleeps the jittered simulated latency and copies. Always
  /// sleeps (never spins): engine threads share cores with query compute,
  /// and a spinning "device" would steal exactly the overlap async I/O
  /// exists to create.
  void ReadPagesOnEngine(std::span<PageReadRequest> batch);

  mutable std::mutex mutex_;
  /// The unique_ptr array may reallocate on growth, but the page blocks
  /// themselves are stable, so a pointer resolved under the mutex stays
  /// valid for the out-of-lock copy (pages are only freed by
  /// TruncatePages, whose caller guarantees no in-flight access to the
  /// dropped range).
  std::vector<std::unique_ptr<char[]>> pages_;
  /// CRC32C of each page image, kept out-of-line so page layout (and thus
  /// every on-disk structure) is unchanged by checksumming.
  std::vector<uint32_t> checksums_;
  std::atomic<double> read_delay_us_{0.0};
  std::atomic<bool> read_delay_yields_{false};
  /// Per-op counter feeding the deterministic jitter draw; the sequence
  /// of factors is a pure function of the counter, so total simulated
  /// delay over N async reads is run-to-run stable even though engine
  /// threads interleave.
  std::atomic<uint64_t> async_read_ops_{0};
  /// Declared last: destroyed first, so engine threads are joined (after
  /// draining the queue) before the page directory they read goes away.
  std::unique_ptr<WorkerPoolIoEngine> engine_;
};

}  // namespace dsks

#endif  // DSKS_STORAGE_SIM_DISK_BACKEND_H_
