#ifndef DSKS_STORAGE_DISK_MANAGER_H_
#define DSKS_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/fault_injector.h"
#include "storage/page.h"

namespace dsks {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// Plain single-read copy of DiskStats (see BufferPoolStatsSnapshot for
/// the rationale).
struct DiskStatsSnapshot {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t allocations = 0;
  uint64_t read_faults = 0;
  uint64_t write_faults = 0;
  uint64_t corruptions_detected = 0;
};

/// Physical I/O counters for a simulated disk. `reads` is the number the
/// paper's figures call "# of I/O accesses": every buffer-pool miss costs
/// exactly one read here. `read_faults`/`write_faults` count injected I/O
/// failures surfaced as Status::IOError; `corruptions_detected` counts
/// checksum mismatches surfaced as Status::Corruption.
///
/// Counters are relaxed atomics so concurrent readers can account I/O
/// without a lock; the struct is not copyable — take Snapshot() for a
/// coherent multi-counter view.
struct DiskStats {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> allocations{0};
  std::atomic<uint64_t> read_faults{0};
  std::atomic<uint64_t> write_faults{0};
  std::atomic<uint64_t> corruptions_detected{0};

  void Reset() {
    reads.store(0, std::memory_order_relaxed);
    writes.store(0, std::memory_order_relaxed);
    allocations.store(0, std::memory_order_relaxed);
    read_faults.store(0, std::memory_order_relaxed);
    write_faults.store(0, std::memory_order_relaxed);
    corruptions_detected.store(0, std::memory_order_relaxed);
  }

  DiskStatsSnapshot Snapshot() const {
    DiskStatsSnapshot s;
    s.reads = reads.load(std::memory_order_relaxed);
    s.writes = writes.load(std::memory_order_relaxed);
    s.allocations = allocations.load(std::memory_order_relaxed);
    s.read_faults = read_faults.load(std::memory_order_relaxed);
    s.write_faults = write_faults.load(std::memory_order_relaxed);
    s.corruptions_detected =
        corruptions_detected.load(std::memory_order_relaxed);
    return s;
  }
};

/// In-memory simulation of a disk: a flat, growable array of 4 KiB pages
/// addressed by PageId. All index structures (CCAM file, B+trees, R-trees,
/// posting pages) allocate from a DiskManager so that their sizes and I/O
/// traffic are measured in the same unit the paper reports (pages).
///
/// The simulation deliberately stores page images out-of-line (one heap
/// block per page) so that a buffer-pool miss performs a real 4 KiB copy,
/// keeping measured query times sensitive to I/O volume.
///
/// Integrity and failures: every WritePage records a CRC32C of the page
/// out-of-line (so the 4 KiB image and all on-page layouts are unchanged);
/// every ReadPage verifies the copy it returns against that checksum and
/// reports a mismatch as Status::Corruption. The embedded FaultInjector
/// can make reads/writes fail with Status::IOError or silently flip a bit
/// in a read's output (which the checksum then catches); with the injector
/// disarmed the only extra cost per op is one relaxed load plus the CRC of
/// the page (reads are already buffer-pool misses, so this is off the hit
/// path entirely).
///
/// Thread safety: AllocatePage/ReadPage/WritePage may be called from many
/// threads. The page directory is guarded by a mutex; the 4 KiB copy (and
/// the simulated latency spin) happens outside it, so reads of distinct
/// pages proceed in parallel. Concurrent accesses to the *same* page are
/// safe only if at most one of them writes — which the buffer pool
/// guarantees, since a page resident in the pool is never read from disk
/// and a page being written back has just left the pool under its latch.
class DiskManager {
 public:
  DiskManager() = default;

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Allocates a zeroed page and returns its id.
  PageId AllocatePage();

  /// Copies page `id` into `out` (exactly kPageSize bytes). Returns
  /// IOError on an injected read fault (out is untouched) or Corruption
  /// when the copy fails checksum verification (out holds the bad bytes).
  Status ReadPage(PageId id, char* out);

  /// Copies `in` (exactly kPageSize bytes) into page `id` and records its
  /// checksum. Returns IOError on an injected write fault; the stored page
  /// and checksum are untouched in that case.
  Status WritePage(PageId id, const char* in);

  /// Number of pages ever allocated; `size * kPageSize` is the disk size.
  size_t num_pages() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return pages_.size();
  }

  /// Total bytes occupied on the simulated disk.
  uint64_t size_bytes() const {
    return static_cast<uint64_t>(num_pages()) * kPageSize;
  }

  /// Deterministic fault source consulted by ReadPage/WritePage.
  FaultInjector* fault_injector() { return &fault_injector_; }

  /// Test hook: flips `bit_index` (in [0, kPageSize*8)) of the *stored*
  /// page image without updating its checksum, simulating at-rest
  /// corruption. The next cold read of the page returns kCorruption.
  void CorruptStoredPage(PageId id, uint32_t bit_index);

  const DiskStats& stats() const { return stats_; }
  DiskStats* mutable_stats() { return &stats_; }
  /// One coherent read of all counters.
  DiskStatsSnapshot stats_snapshot() const { return stats_.Snapshot(); }
  /// Zeroes the counters between measured phases.
  void ResetStats() { stats_.Reset(); }

  /// Exposes reads/writes/allocations/pages plus the fault counters
  /// (read_faults/write_faults/corruptions_detected) as live sources named
  /// "<prefix>.reads" etc.; same lifetime contract as
  /// BufferPool::BindMetrics.
  void BindMetrics(obs::MetricsRegistry* registry,
                   const std::string& prefix) const;

  /// Simulated read latency in microseconds, applied by every ReadPage.
  /// 0 by default; the experiment harness enables it during measured
  /// workloads so that response times reflect I/O volume the way the
  /// paper's disk-resident setup does.
  void set_read_delay_us(double us) {
    read_delay_us_.store(us, std::memory_order_relaxed);
  }
  double read_delay_us() const {
    return read_delay_us_.load(std::memory_order_relaxed);
  }

  /// How the simulated latency passes. Spin (default) busy-waits, giving
  /// precise scheduler-independent per-query timings — right for the
  /// sequential paper experiments. Sleep blocks the calling thread and
  /// frees the core, modelling what a real blocking disk read does; the
  /// concurrent query harness uses it so in-flight "I/O" overlaps instead
  /// of contending for CPU.
  void set_read_delay_yields(bool yields) {
    read_delay_yields_.store(yields, std::memory_order_relaxed);
  }
  bool read_delay_yields() const {
    return read_delay_yields_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mutex_;
  /// The unique_ptr array may reallocate on growth, but the page blocks
  /// themselves are stable, so a pointer resolved under the mutex stays
  /// valid for the out-of-lock copy (pages are never freed).
  std::vector<std::unique_ptr<char[]>> pages_;
  /// CRC32C of each page image, kept out-of-line so page layout (and thus
  /// every on-disk structure) is unchanged by checksumming. Guarded by
  /// mutex_; coherent with the page because concurrent same-page
  /// read/write is excluded by the buffer-pool contract above.
  std::vector<uint32_t> checksums_;
  DiskStats stats_;
  FaultInjector fault_injector_;
  std::atomic<double> read_delay_us_{0.0};
  std::atomic<bool> read_delay_yields_{false};
};

}  // namespace dsks

#endif  // DSKS_STORAGE_DISK_MANAGER_H_
