#ifndef DSKS_STORAGE_DISK_MANAGER_H_
#define DSKS_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "storage/disk_backend.h"
#include "storage/fault_injector.h"
#include "storage/page.h"
#include "storage/sim_disk_backend.h"

namespace dsks {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// Plain single-read copy of DiskStats (see BufferPoolStatsSnapshot for
/// the rationale).
struct DiskStatsSnapshot {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t allocations = 0;
  uint64_t read_faults = 0;
  uint64_t write_faults = 0;
  uint64_t corruptions_detected = 0;
};

/// Physical I/O counters for a disk. `reads` is the number the paper's
/// figures call "# of I/O accesses": every buffer-pool miss costs exactly
/// one read here. `read_faults`/`write_faults` count I/O failures
/// (injected or real errno) surfaced as Status::IOError;
/// `corruptions_detected` counts checksum mismatches and short reads
/// surfaced as Status::Corruption.
///
/// Counters are relaxed atomics so concurrent readers can account I/O
/// without a lock; the struct is not copyable — take Snapshot() for a
/// coherent multi-counter view.
struct DiskStats {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> allocations{0};
  std::atomic<uint64_t> read_faults{0};
  std::atomic<uint64_t> write_faults{0};
  std::atomic<uint64_t> corruptions_detected{0};

  void Reset() {
    reads.store(0, std::memory_order_relaxed);
    writes.store(0, std::memory_order_relaxed);
    allocations.store(0, std::memory_order_relaxed);
    read_faults.store(0, std::memory_order_relaxed);
    write_faults.store(0, std::memory_order_relaxed);
    corruptions_detected.store(0, std::memory_order_relaxed);
  }

  DiskStatsSnapshot Snapshot() const {
    DiskStatsSnapshot s;
    s.reads = reads.load(std::memory_order_relaxed);
    s.writes = writes.load(std::memory_order_relaxed);
    s.allocations = allocations.load(std::memory_order_relaxed);
    s.read_faults = read_faults.load(std::memory_order_relaxed);
    s.write_faults = write_faults.load(std::memory_order_relaxed);
    s.corruptions_detected =
        corruptions_detected.load(std::memory_order_relaxed);
    return s;
  }
};

/// A disk of 4 KiB pages addressed by PageId. All index structures (CCAM
/// file, B+trees, R-trees, posting pages) allocate from a DiskManager so
/// that their sizes and I/O traffic are measured in the same unit the
/// paper reports (pages).
///
/// The storage medium is a pluggable DiskBackend: the default in-memory
/// simulation (deterministic, filesystem-free), or a real index file
/// accessed with pread/pwrite (see FileDiskBackend). Policy is identical
/// for both and lives here in the front end:
///
/// Integrity and failures: every WritePage records a CRC32C of the page
/// out-of-line (so the 4 KiB image and all on-page layouts are unchanged);
/// every ReadPage verifies the copy it returns against that checksum and
/// reports a mismatch as Status::Corruption. The embedded FaultInjector
/// can make reads/writes fail with Status::IOError or silently flip a bit
/// in a read's output (which the checksum then catches) — on *either*
/// backend, so `dsks_cli chaos` drills real files too. Real errno failures
/// from the file backend map onto the same contract: pread/pwrite errors
/// (EIO, ...) → IOError, a short read of an allocated page → Corruption.
///
/// Thread safety: AllocatePage/ReadPage/WritePage may be called from many
/// threads. Concurrent accesses to the *same* page are safe only if at
/// most one of them writes — which the buffer pool guarantees, since a
/// page resident in the pool is never read from disk and a page being
/// written back has just left the pool under its latch.
class DiskManager {
 public:
  /// The default: a fresh simulated disk.
  DiskManager() : DiskManager(DiskOptions{}) {}

  /// Opens a fresh disk on the requested backend. Creation failure (bad
  /// path for the file backend) is a setup error and aborts; use
  /// OpenExisting to reopen a previously flushed file without aborting.
  explicit DiskManager(const DiskOptions& options);

  /// Reopens an index file pair persisted by a prior Flush() (file
  /// backend only). Malformed or missing files come back as a Status, not
  /// an abort: reopening untrusted on-disk state is a runtime failure.
  static Status OpenExisting(const DiskOptions& options,
                             std::unique_ptr<DiskManager>* out);

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Allocates a zeroed page and returns its id.
  PageId AllocatePage();

  /// Copies page `id` into `out` (exactly kPageSize bytes). Returns
  /// IOError on a read fault — injected or a real pread failure (out is
  /// unspecified) — or Corruption when the copy fails checksum
  /// verification or the backing file ends mid-page.
  Status ReadPage(PageId id, char* out);

  /// Batched ReadPage: one backend round trip for the whole batch, with
  /// the full per-page policy applied to every request — fault-injection
  /// draws, stats accounting, bit-flip corruption and CRC verification all
  /// happen per page, in batch order, so each request's `status` equals
  /// what a sequential ReadPage loop would have returned (and seeded chaos
  /// draw sequences are identical, batched or not).
  void ReadPages(std::span<PageReadRequest> batch);

  /// Asynchronous ReadPages for speculative callers: takes ownership of
  /// `batch` and invokes `done` once every request carries its final
  /// status. With a sync backend this is ReadPages plus an inline
  /// completion on the calling thread; with an async engine it returns as
  /// soon as the reads are queued and the full per-page policy (fault
  /// draws, stats, bit-flip corruption, CRC verification) runs in the
  /// completion context instead of at submit time. Fault *counts* are
  /// unchanged either way — the injector's draws are counter-hashed, so
  /// completion order cannot move them. Callers must not hold locks the
  /// completion also takes (it may run inline).
  void SubmitReadPages(std::vector<PageReadRequest> batch,
                       DiskBackend::ReadCompletion done);

  /// True when SubmitReadPages actually overlaps (the backend carries an
  /// async engine); prefetch issuers deepen their windows on it.
  bool async_enabled() const { return backend_->async_enabled(); }

  /// Which rung serves speculative reads: "io_uring" / "worker-pool" /
  /// "sync". Stamped into bench JSON next to the "io" regime field.
  const char* io_engine_name() const { return backend_->io_engine_name(); }

  /// Configured bound on speculative pages in flight (async only; the
  /// buffer pool enforces it).
  size_t io_depth() const { return io_depth_; }

  /// Blocks until every SubmitReadPages completion has fully returned.
  /// No-op for sync backends. The buffer pool calls it before destruction
  /// and Clear() so completions never land on a dead pool.
  void DrainAsyncReads() { backend_->DrainReads(); }

  /// Copies `in` (exactly kPageSize bytes) into page `id` and records its
  /// checksum. Returns IOError on a write fault (injected or real errno);
  /// the recorded checksum is untouched in that case, so a torn physical
  /// write is caught on the next cold read.
  Status WritePage(PageId id, const char* in);

  /// Drops every page with id >= new_num_pages, shrinking the disk (and,
  /// on the file backend, the index file). The caller must guarantee no
  /// live references to the dropped range — Database drops its buffer
  /// pool's frames first.
  Status TruncatePages(size_t new_num_pages);

  /// Makes all pages durable: the file backend persists the checksum
  /// sidecar (with the allocation watermark) and fsyncs; sim is a no-op.
  Status Flush();

  DiskBackendKind backend_kind() const { return backend_kind_; }
  const char* backend_name() const {
    return DiskBackendKindName(backend_kind_);
  }

  /// Number of pages ever allocated; `size * kPageSize` is the disk size.
  size_t num_pages() const { return backend_->num_pages(); }

  /// Total bytes occupied on the disk.
  uint64_t size_bytes() const {
    return static_cast<uint64_t>(num_pages()) * kPageSize;
  }

  /// Deterministic fault source consulted by ReadPage/WritePage.
  FaultInjector* fault_injector() { return &fault_injector_; }

  /// Test hook: flips `bit_index` (in [0, kPageSize*8)) of the *stored*
  /// page image without updating its checksum, simulating at-rest
  /// corruption. The next cold read of the page returns kCorruption.
  void CorruptStoredPage(PageId id, uint32_t bit_index);

  const DiskStats& stats() const { return stats_; }
  DiskStats* mutable_stats() { return &stats_; }
  /// One coherent read of all counters.
  DiskStatsSnapshot stats_snapshot() const { return stats_.Snapshot(); }
  /// Zeroes the counters between measured phases.
  void ResetStats() { stats_.Reset(); }

  /// Exposes reads/writes/allocations/pages plus the fault counters
  /// (read_faults/write_faults/corruptions_detected) as live sources named
  /// "<prefix>.reads" etc.; same lifetime contract as
  /// BufferPool::BindMetrics.
  void BindMetrics(obs::MetricsRegistry* registry,
                   const std::string& prefix) const;

  /// Simulated read latency in microseconds, applied by every ReadPage.
  /// 0 by default; the experiment harness enables it during measured
  /// workloads so that response times reflect I/O volume the way the
  /// paper's disk-resident setup does. Sim backend only: the file backend
  /// has real device latency, so these are documented no-ops there (reads
  /// as 0 / false).
  void set_read_delay_us(double us) {
    if (sim_ != nullptr) sim_->set_read_delay_us(us);
  }
  double read_delay_us() const {
    return sim_ != nullptr ? sim_->read_delay_us() : 0.0;
  }

  /// How the simulated latency passes. Spin (default) busy-waits, giving
  /// precise scheduler-independent per-query timings — right for the
  /// sequential paper experiments. Sleep blocks the calling thread and
  /// frees the core, modelling what a real blocking disk read does; the
  /// concurrent query harness uses it so in-flight "I/O" overlaps instead
  /// of contending for CPU. Sim backend only (no-op on file).
  void set_read_delay_yields(bool yields) {
    if (sim_ != nullptr) sim_->set_read_delay_yields(yields);
  }
  bool read_delay_yields() const {
    return sim_ != nullptr && sim_->read_delay_yields();
  }

 private:
  explicit DiskManager(std::unique_ptr<DiskBackend> backend,
                       DiskBackendKind kind);

  std::unique_ptr<DiskBackend> backend_;
  DiskBackendKind backend_kind_;
  /// Downcast view of backend_ when it is the simulation; null for the
  /// file backend. Only the delay knobs go through it.
  SimDiskBackend* sim_ = nullptr;
  size_t io_depth_ = 64;
  DiskStats stats_;
  FaultInjector fault_injector_;
};

}  // namespace dsks

#endif  // DSKS_STORAGE_DISK_MANAGER_H_
