#ifndef DSKS_STORAGE_DISK_MANAGER_H_
#define DSKS_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/page.h"

namespace dsks {

/// Physical I/O counters for a simulated disk. `reads` is the number the
/// paper's figures call "# of I/O accesses": every buffer-pool miss costs
/// exactly one read here.
struct DiskStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t allocations = 0;

  void Reset() { reads = writes = allocations = 0; }
};

/// In-memory simulation of a disk: a flat, growable array of 4 KiB pages
/// addressed by PageId. All index structures (CCAM file, B+trees, R-trees,
/// posting pages) allocate from a DiskManager so that their sizes and I/O
/// traffic are measured in the same unit the paper reports (pages).
///
/// The simulation deliberately stores page images out-of-line (one heap
/// block per page) so that a buffer-pool miss performs a real 4 KiB copy,
/// keeping measured query times sensitive to I/O volume.
class DiskManager {
 public:
  DiskManager() = default;

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Allocates a zeroed page and returns its id.
  PageId AllocatePage();

  /// Copies page `id` into `out` (exactly kPageSize bytes).
  void ReadPage(PageId id, char* out);

  /// Copies `in` (exactly kPageSize bytes) into page `id`.
  void WritePage(PageId id, const char* in);

  /// Number of pages ever allocated; `size * kPageSize` is the disk size.
  size_t num_pages() const { return pages_.size(); }

  /// Total bytes occupied on the simulated disk.
  uint64_t size_bytes() const {
    return static_cast<uint64_t>(pages_.size()) * kPageSize;
  }

  const DiskStats& stats() const { return stats_; }
  DiskStats* mutable_stats() { return &stats_; }

  /// Simulated read latency in microseconds (busy wait applied by every
  /// ReadPage). 0 by default; the experiment harness enables it during
  /// measured workloads so that response times reflect I/O volume the way
  /// the paper's disk-resident setup does.
  void set_read_delay_us(double us) { read_delay_us_ = us; }
  double read_delay_us() const { return read_delay_us_; }

 private:
  std::vector<std::unique_ptr<char[]>> pages_;
  DiskStats stats_;
  double read_delay_us_ = 0.0;
};

}  // namespace dsks

#endif  // DSKS_STORAGE_DISK_MANAGER_H_
