#include "storage/buffer_pool.h"

#include <cstring>

#include "common/macros.h"

namespace dsks {

BufferPool::BufferPool(DiskManager* disk, size_t capacity)
    : disk_(disk), capacity_(capacity) {
  DSKS_CHECK_MSG(capacity_ > 0, "buffer pool needs at least one frame");
}

BufferPool::~BufferPool() { FlushAll(); }

BufferPool::Frame* BufferPool::GetFrame(PageId id) {
  auto it = frames_.find(id);
  return it == frames_.end() ? nullptr : &it->second;
}

char* BufferPool::FetchPage(PageId id) {
  Frame* frame = GetFrame(id);
  if (frame != nullptr) {
    ++stats_.hits;
    if (frame->in_lru) {
      lru_.erase(frame->lru_pos);
      frame->in_lru = false;
    }
    ++frame->pin_count;
    return frame->data.get();
  }
  ++stats_.misses;
  if (frames_.size() >= capacity_) {
    EvictOne();
  }
  Frame& f = frames_[id];
  f.data = std::make_unique<char[]>(kPageSize);
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.in_lru = false;
  disk_->ReadPage(id, f.data.get());
  return f.data.get();
}

char* BufferPool::NewPage(PageId* id) {
  *id = disk_->AllocatePage();
  if (frames_.size() >= capacity_) {
    EvictOne();
  }
  Frame& f = frames_[*id];
  f.data = std::make_unique<char[]>(kPageSize);
  std::memset(f.data.get(), 0, kPageSize);
  f.page_id = *id;
  f.pin_count = 1;
  f.dirty = true;
  f.in_lru = false;
  return f.data.get();
}

void BufferPool::UnpinPage(PageId id, bool dirty) {
  Frame* frame = GetFrame(id);
  DSKS_CHECK_MSG(frame != nullptr, "unpin of page not in pool");
  DSKS_CHECK_MSG(frame->pin_count > 0, "unpin of unpinned page");
  frame->dirty = frame->dirty || dirty;
  --frame->pin_count;
  if (frame->pin_count == 0) {
    lru_.push_back(id);
    frame->lru_pos = std::prev(lru_.end());
    frame->in_lru = true;
  }
}

void BufferPool::EvictOne() {
  DSKS_CHECK_MSG(!lru_.empty(), "buffer pool exhausted: all pages pinned");
  PageId victim = lru_.front();
  lru_.pop_front();
  auto it = frames_.find(victim);
  DSKS_CHECK(it != frames_.end());
  Frame& f = it->second;
  DSKS_CHECK(f.pin_count == 0);
  if (f.dirty) {
    disk_->WritePage(victim, f.data.get());
  }
  frames_.erase(it);
  ++stats_.evictions;
}

void BufferPool::FlushAll() {
  for (auto& [id, frame] : frames_) {
    if (frame.dirty) {
      disk_->WritePage(id, frame.data.get());
      frame.dirty = false;
    }
  }
}

void BufferPool::SetCapacity(size_t capacity) {
  DSKS_CHECK_MSG(capacity > 0, "buffer pool needs at least one frame");
  capacity_ = capacity;
  while (frames_.size() > capacity_) {
    EvictOne();
  }
}

void BufferPool::Clear() {
  FlushAll();
  for (auto& [id, frame] : frames_) {
    DSKS_CHECK_MSG(frame.pin_count == 0, "Clear with pinned pages");
    (void)id;
  }
  frames_.clear();
  lru_.clear();
}

}  // namespace dsks
