#include "storage/buffer_pool.h"

#include <cstring>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "obs/io_account.h"
#include "obs/metrics.h"

namespace dsks {

BufferPool::BufferPool(DiskManager* disk, size_t capacity)
    : disk_(disk), capacity_(capacity) {
  DSKS_CHECK_MSG(capacity > 0, "buffer pool needs at least one frame");
}

BufferPool::~BufferPool() {
  // Async completions touch pool state under the latch; drain the engine
  // first so no reaper callback can land on a pool mid-teardown. Blocks
  // until every in-flight completion has fully returned.
  disk_->DrainAsyncReads();
#ifndef NDEBUG
  for (const auto& [id, frame] : frames_) {
    DSKS_DCHECK_MSG(frame.pin_count == 0,
                    "buffer pool destroyed with pinned pages (pin leak)");
    (void)id;
  }
#endif
  std::lock_guard<std::mutex> lock(latch_);
  // Best-effort final flush; a failed write-back has no caller to report
  // to at destruction time.
  (void)FlushAllLocked();
}

BufferPool::Frame* BufferPool::GetFrameLocked(PageId id) {
  auto it = frames_.find(id);
  return it == frames_.end() ? nullptr : &it->second;
}

char* BufferPool::PinHitLocked(Frame* frame) {
  stats_.hits.fetch_add(1, std::memory_order_relaxed);
  obs::ChargePoolHit();
  if (frame->prefetched) {
    // First demand touch of a speculatively read page: the prefetch paid
    // off. The flag resolves exactly once per issued prefetch.
    frame->prefetched = false;
    stats_.prefetch_hits.fetch_add(1, std::memory_order_relaxed);
  }
  if (frame->in_lru) {
    lru_.erase(frame->lru_pos);
    frame->in_lru = false;
  }
  ++frame->pin_count;
  return frame->data.get();
}

Status BufferPool::FetchPage(PageId id, char** out) {
  std::unique_lock<std::mutex> lock(latch_);
  for (;;) {
    Frame* frame = GetFrameLocked(id);
    if (frame == nullptr) {
      break;
    }
    if (frame->io_in_progress) {
      // Another thread is reading this page from disk; wait for it rather
      // than double-reading. The frame may be evicted between wake-ups —
      // or erased entirely if that read *failed* — so re-look it up each
      // time; a failed read leaves no frame and we retry as a fresh miss.
      io_done_.wait(lock);
      continue;
    }
    *out = PinHitLocked(frame);
    return Status::Ok();
  }
  stats_.misses.fetch_add(1, std::memory_order_relaxed);
  obs::ChargePoolMiss();
  if (frames_.size() >= capacity_.load(std::memory_order_relaxed)) {
    // Best effort: when every frame is pinned this fails and the pool
    // temporarily runs over capacity (UnpinPage trims back down).
    TryEvictOneLocked();
  }
  Frame& f = frames_[id];
  f.data = std::make_unique<char[]>(kPageSize);
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.in_lru = false;
  f.io_in_progress = true;
  // Read outside the latch so concurrent misses on *different* pages
  // overlap their (simulated) disk latency. The frame is pinned and not in
  // the LRU, so nothing can evict it meanwhile; unordered_map guarantees
  // the reference stays valid across other threads' inserts/erases.
  lock.unlock();
  const Status status = disk_->ReadPage(id, f.data.get());
  lock.lock();
  if (!status.ok()) {
    // The read failed: drop the in-flight frame so waiters (and future
    // fetches) retry from scratch instead of pinning garbage.
    frames_.erase(id);
    io_done_.notify_all();
    return status;
  }
  f.io_in_progress = false;
  io_done_.notify_all();
  *out = f.data.get();
  return Status::Ok();
}

Status BufferPool::FetchPages(std::span<const PageId> ids,
                              std::span<char*> outs) {
  DSKS_CHECK_MSG(ids.size() == outs.size(),
                 "FetchPages needs one output slot per page id");
#ifndef NDEBUG
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t j = i + 1; j < ids.size(); ++j) {
      DSKS_DCHECK_MSG(ids[i] != ids[j], "FetchPages ids must be distinct");
    }
  }
#endif
  if (ids.empty()) {
    return Status::Ok();
  }
  std::unique_lock<std::mutex> lock(latch_);
  // nullptr in outs[i] marks "not pinned by this call (yet)" for the
  // all-or-nothing rollback below.
  for (char*& out : outs) {
    out = nullptr;
  }
  // Classification never blocks: a page in flight on *another* thread is
  // deferred to a plain FetchPage after our own batch resolves. Waiting
  // here would deadlock two concurrent FetchPages calls that each hold
  // not-yet-started in-flight frames the other is waiting on.
  std::vector<size_t> miss_index;
  std::vector<size_t> deferred_index;
  for (size_t i = 0; i < ids.size(); ++i) {
    Frame* frame = GetFrameLocked(ids[i]);
    if (frame != nullptr) {
      if (frame->io_in_progress) {
        deferred_index.push_back(i);
      } else {
        outs[i] = PinHitLocked(frame);
      }
      continue;
    }
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
    obs::ChargePoolMiss();
    if (frames_.size() >= capacity_.load(std::memory_order_relaxed)) {
      TryEvictOneLocked();
    }
    Frame& f = frames_[ids[i]];
    f.data = std::make_unique<char[]>(kPageSize);
    f.page_id = ids[i];
    f.pin_count = 1;
    f.dirty = false;
    f.in_lru = false;
    f.io_in_progress = true;
    miss_index.push_back(i);
  }
  Status first = Status::Ok();
  if (!miss_index.empty()) {
    // One batched disk round trip for every miss, outside the latch; the
    // in-flight frames are pinned and off the LRU, so nothing evicts them.
    std::vector<PageReadRequest> reqs(miss_index.size());
    for (size_t k = 0; k < miss_index.size(); ++k) {
      reqs[k].id = ids[miss_index[k]];
      reqs[k].out = frames_[reqs[k].id].data.get();
    }
    lock.unlock();
    disk_->ReadPages(std::span<PageReadRequest>(reqs));
    lock.lock();
    for (size_t k = 0; k < miss_index.size(); ++k) {
      const size_t i = miss_index[k];
      Frame* frame = GetFrameLocked(ids[i]);
      DSKS_CHECK(frame != nullptr);
      if (reqs[k].status.ok()) {
        frame->io_in_progress = false;
        outs[i] = frame->data.get();
      } else {
        frames_.erase(ids[i]);
        if (first.ok()) {
          first = std::move(reqs[k].status);
        }
      }
    }
    io_done_.notify_all();
  }
  if (first.ok() && !deferred_index.empty()) {
    // Safe to block now: this call holds no unresolved in-flight frames.
    lock.unlock();
    for (size_t i : deferred_index) {
      const Status s = FetchPage(ids[i], &outs[i]);
      if (!s.ok()) {
        first = s;
        break;
      }
    }
    lock.lock();
  }
  if (!first.ok()) {
    // All-or-nothing: release every pin this call took so the caller has
    // nothing to clean up (the per-page contract of FetchPage, batched).
    for (size_t i = 0; i < ids.size(); ++i) {
      if (outs[i] != nullptr) {
        UnpinPageLocked(ids[i], /*dirty=*/false);
        outs[i] = nullptr;
      }
    }
    return first;
  }
  return Status::Ok();
}

void BufferPool::Prefetch(std::span<const PageId> ids) {
  if (ids.empty() || !prefetch_enabled_.load(std::memory_order_relaxed)) {
    return;
  }
  const bool async = disk_->async_enabled();
  const size_t io_depth = disk_->io_depth();
  const size_t allocated = disk_->num_pages();
  std::unique_lock<std::mutex> lock(latch_);
  std::vector<PageReadRequest> reqs;
  reqs.reserve(ids.size());
  size_t refused = 0;  // pinned-and-dirty pages: counted no-ops
  for (PageId id : ids) {
    if (id >= allocated) {
      continue;  // speculative callers may guess past the watermark
    }
    Frame* frame = GetFrameLocked(id);
    if (frame != nullptr) {
      // Resident or already in flight (ours or another thread's): nothing
      // to do, and never wait — prefetch must not block. A frame pinned
      // *and dirty* additionally gets counted: its writer holds newer
      // bytes than the disk, so a queued speculative read could only ever
      // race the write-back with stale data. Issued-and-dropped keeps the
      // lifecycle telescope exact without a device read.
      if (frame->pin_count > 0 && frame->dirty) {
        ++refused;
      }
      continue;
    }
    if (async &&
        prefetch_inflight_.load(std::memory_order_relaxed) + reqs.size() >=
            io_depth) {
      // In-flight window full: skip silently, like a resident page. The
      // issuer re-requests anything still useful on its next interval.
      continue;
    }
    if (frames_.size() >= capacity_.load(std::memory_order_relaxed)) {
      TryEvictOneLocked();
    }
    Frame& f = frames_[id];
    f.data = std::make_unique<char[]>(kPageSize);
    f.page_id = id;
    // Pinned while in flight so eviction/Clear can't touch the frame; the
    // pin drops when the completion publishes it.
    f.pin_count = 1;
    f.dirty = false;
    f.in_lru = false;
    f.io_in_progress = true;
    PageReadRequest req;
    req.id = id;
    req.out = f.data.get();
    reqs.push_back(req);
  }
  if (refused > 0) {
    stats_.prefetch_issued.fetch_add(refused, std::memory_order_relaxed);
    stats_.prefetch_dropped.fetch_add(refused, std::memory_order_relaxed);
    obs::ChargePrefetchIssued(refused);
  }
  if (reqs.empty()) {
    return;
  }
  stats_.prefetch_issued.fetch_add(reqs.size(), std::memory_order_relaxed);
  obs::ChargePrefetchIssued(reqs.size());
  prefetch_inflight_.fetch_add(reqs.size(), std::memory_order_relaxed);
  const auto submitted = std::chrono::steady_clock::now();
  lock.unlock();
  // Fire and forget: with an async disk this returns as soon as the reads
  // are queued and CompletePrefetch runs in the reaper context; with a
  // sync disk the completion runs inline right here, preserving PR 7
  // behaviour exactly.
  disk_->SubmitReadPages(
      std::move(reqs), [this, submitted](std::span<PageReadRequest> done) {
        CompletePrefetch(done, submitted);
      });
}

void BufferPool::CompletePrefetch(
    std::span<PageReadRequest> reqs,
    std::chrono::steady_clock::time_point submitted) {
  {
    std::lock_guard<std::mutex> lock(latch_);
    for (PageReadRequest& req : reqs) {
      Frame* frame = GetFrameLocked(req.id);
      DSKS_CHECK(frame != nullptr);
      if (req.status.ok()) {
        frame->io_in_progress = false;
        frame->pin_count = 0;
        frame->prefetched = true;
        lru_.push_back(req.id);
        frame->lru_pos = std::prev(lru_.end());
        frame->in_lru = true;
      } else {
        // Fault-silent by design: drop the frame, count it, and let any
        // later demand fetch re-read and surface its own error. A query
        // never fails because of a speculative read it didn't ask for.
        frames_.erase(req.id);
        stats_.prefetch_dropped.fetch_add(1, std::memory_order_relaxed);
      }
    }
    TrimToCapacityLocked();
  }
  prefetch_inflight_.fetch_sub(reqs.size(), std::memory_order_relaxed);
  io_done_.notify_all();
  if (obs::Histogram* hist =
          prefetch_latency_.load(std::memory_order_relaxed)) {
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - submitted;
    hist->Record(elapsed.count());
  }
}

void BufferPool::DrainPrefetches() { disk_->DrainAsyncReads(); }

char* BufferPool::NewPage(PageId* id) {
  *id = disk_->AllocatePage();
  std::lock_guard<std::mutex> lock(latch_);
  if (frames_.size() >= capacity_.load(std::memory_order_relaxed)) {
    TryEvictOneLocked();
  }
  Frame& f = frames_[*id];
  f.data = std::make_unique<char[]>(kPageSize);
  std::memset(f.data.get(), 0, kPageSize);
  f.page_id = *id;
  f.pin_count = 1;
  f.dirty = true;
  f.in_lru = false;
  return f.data.get();
}

void BufferPool::UnpinPage(PageId id, bool dirty) {
  std::lock_guard<std::mutex> lock(latch_);
  UnpinPageLocked(id, dirty);
}

void BufferPool::UnpinPageLocked(PageId id, bool dirty) {
  Frame* frame = GetFrameLocked(id);
  DSKS_CHECK_MSG(frame != nullptr, "unpin of page not in pool");
  DSKS_CHECK_MSG(frame->pin_count > 0, "unpin of unpinned page");
  frame->dirty = frame->dirty || dirty;
  --frame->pin_count;
  if (frame->pin_count == 0) {
    lru_.push_back(id);
    frame->lru_pos = std::prev(lru_.end());
    frame->in_lru = true;
    // Drain any overflow frames (pin pressure) or a deferred shrink.
    TrimToCapacityLocked();
  }
}

bool BufferPool::TryEvictOneLocked() {
  for (auto it = lru_.begin(); it != lru_.end();) {
    const PageId victim = *it;
    auto fit = frames_.find(victim);
    DSKS_CHECK(fit != frames_.end());
    Frame& f = fit->second;
    DSKS_CHECK(f.pin_count == 0);
    if (f.dirty) {
      const Status status = disk_->WritePage(victim, f.data.get());
      if (!status.ok()) {
        // Injected write fault: keep the frame (still dirty, still in the
        // LRU) and try the next candidate; a later trim retries it.
        ++it;
        continue;
      }
    }
    if (f.prefetched) {
      // Evicted without ever being demanded: the speculative read was
      // wasted work.
      stats_.prefetch_wasted.fetch_add(1, std::memory_order_relaxed);
    }
    lru_.erase(it);
    frames_.erase(fit);
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void BufferPool::TrimToCapacityLocked() {
  while (frames_.size() > capacity_.load(std::memory_order_relaxed) &&
         TryEvictOneLocked()) {
  }
}

Status BufferPool::FlushAllLocked() {
  Status first = Status::Ok();
  for (auto& [id, frame] : frames_) {
    if (frame.dirty) {
      const Status status = disk_->WritePage(id, frame.data.get());
      if (status.ok()) {
        frame.dirty = false;
      } else if (first.ok()) {
        first = status;
      }
    }
  }
  return first;
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(latch_);
  return FlushAllLocked();
}

void BufferPool::SetCapacity(size_t capacity) {
  DSKS_CHECK_MSG(capacity > 0, "buffer pool needs at least one frame");
  std::lock_guard<std::mutex> lock(latch_);
  capacity_.store(capacity, std::memory_order_relaxed);
  // Evict what we can now; if pinned pages hold the pool above the target,
  // the rest of the shrink happens in UnpinPage as pins drain.
  TrimToCapacityLocked();
}

Status BufferPool::Clear() {
  // In-flight speculative frames hold pins; wait them out (outside the
  // latch — completions need it) so the no-pins contract below checks
  // only true pin leaks.
  disk_->DrainAsyncReads();
  std::lock_guard<std::mutex> lock(latch_);
  const Status status = FlushAllLocked();
  for (auto& [id, frame] : frames_) {
    DSKS_CHECK_MSG(frame.pin_count == 0, "Clear with pinned pages");
    if (frame.prefetched) {
      stats_.prefetch_wasted.fetch_add(1, std::memory_order_relaxed);
    }
    (void)id;
  }
  frames_.clear();
  lru_.clear();
  return status;
}

size_t BufferPool::num_frames_in_use() const {
  std::lock_guard<std::mutex> lock(latch_);
  return frames_.size();
}

void BufferPool::BindMetrics(obs::MetricsRegistry* registry,
                             const std::string& prefix) const {
  auto counter = [](const std::atomic<uint64_t>* c) {
    return [c] { return c->load(std::memory_order_relaxed); };
  };
  registry->BindSource(prefix + ".hits", counter(&stats_.hits));
  registry->BindSource(prefix + ".misses", counter(&stats_.misses));
  registry->BindSource(prefix + ".evictions", counter(&stats_.evictions));
  registry->BindSource(prefix + ".prefetch.issued",
                       counter(&stats_.prefetch_issued));
  registry->BindSource(prefix + ".prefetch.hits",
                       counter(&stats_.prefetch_hits));
  registry->BindSource(prefix + ".prefetch.wasted",
                       counter(&stats_.prefetch_wasted));
  registry->BindSource(prefix + ".prefetch.dropped",
                       counter(&stats_.prefetch_dropped));
  registry->BindSource(prefix + ".prefetch.inflight",
                       counter(&prefetch_inflight_));
  prefetch_latency_.store(&registry->histogram(prefix + ".prefetch.completion"),
                          std::memory_order_relaxed);
  registry->BindSource(prefix + ".capacity_frames",
                       [this] { return static_cast<uint64_t>(capacity()); });
  registry->BindSource(prefix + ".frames_in_use", [this] {
    return static_cast<uint64_t>(num_frames_in_use());
  });
}

}  // namespace dsks
