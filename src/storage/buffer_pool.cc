#include "storage/buffer_pool.h"

#include <cstring>

#include "common/macros.h"
#include "obs/metrics.h"

namespace dsks {

BufferPool::BufferPool(DiskManager* disk, size_t capacity)
    : disk_(disk), capacity_(capacity) {
  DSKS_CHECK_MSG(capacity > 0, "buffer pool needs at least one frame");
}

BufferPool::~BufferPool() {
#ifndef NDEBUG
  for (const auto& [id, frame] : frames_) {
    DSKS_DCHECK_MSG(frame.pin_count == 0,
                    "buffer pool destroyed with pinned pages (pin leak)");
    (void)id;
  }
#endif
  std::lock_guard<std::mutex> lock(latch_);
  // Best-effort final flush; a failed write-back has no caller to report
  // to at destruction time.
  (void)FlushAllLocked();
}

BufferPool::Frame* BufferPool::GetFrameLocked(PageId id) {
  auto it = frames_.find(id);
  return it == frames_.end() ? nullptr : &it->second;
}

Status BufferPool::FetchPage(PageId id, char** out) {
  std::unique_lock<std::mutex> lock(latch_);
  for (;;) {
    Frame* frame = GetFrameLocked(id);
    if (frame == nullptr) {
      break;
    }
    if (frame->io_in_progress) {
      // Another thread is reading this page from disk; wait for it rather
      // than double-reading. The frame may be evicted between wake-ups —
      // or erased entirely if that read *failed* — so re-look it up each
      // time; a failed read leaves no frame and we retry as a fresh miss.
      io_done_.wait(lock);
      continue;
    }
    stats_.hits.fetch_add(1, std::memory_order_relaxed);
    if (frame->in_lru) {
      lru_.erase(frame->lru_pos);
      frame->in_lru = false;
    }
    ++frame->pin_count;
    *out = frame->data.get();
    return Status::Ok();
  }
  stats_.misses.fetch_add(1, std::memory_order_relaxed);
  if (frames_.size() >= capacity_.load(std::memory_order_relaxed)) {
    // Best effort: when every frame is pinned this fails and the pool
    // temporarily runs over capacity (UnpinPage trims back down).
    TryEvictOneLocked();
  }
  Frame& f = frames_[id];
  f.data = std::make_unique<char[]>(kPageSize);
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.in_lru = false;
  f.io_in_progress = true;
  // Read outside the latch so concurrent misses on *different* pages
  // overlap their (simulated) disk latency. The frame is pinned and not in
  // the LRU, so nothing can evict it meanwhile; unordered_map guarantees
  // the reference stays valid across other threads' inserts/erases.
  lock.unlock();
  const Status status = disk_->ReadPage(id, f.data.get());
  lock.lock();
  if (!status.ok()) {
    // The read failed: drop the in-flight frame so waiters (and future
    // fetches) retry from scratch instead of pinning garbage.
    frames_.erase(id);
    io_done_.notify_all();
    return status;
  }
  f.io_in_progress = false;
  io_done_.notify_all();
  *out = f.data.get();
  return Status::Ok();
}

char* BufferPool::NewPage(PageId* id) {
  *id = disk_->AllocatePage();
  std::lock_guard<std::mutex> lock(latch_);
  if (frames_.size() >= capacity_.load(std::memory_order_relaxed)) {
    TryEvictOneLocked();
  }
  Frame& f = frames_[*id];
  f.data = std::make_unique<char[]>(kPageSize);
  std::memset(f.data.get(), 0, kPageSize);
  f.page_id = *id;
  f.pin_count = 1;
  f.dirty = true;
  f.in_lru = false;
  return f.data.get();
}

void BufferPool::UnpinPage(PageId id, bool dirty) {
  std::lock_guard<std::mutex> lock(latch_);
  Frame* frame = GetFrameLocked(id);
  DSKS_CHECK_MSG(frame != nullptr, "unpin of page not in pool");
  DSKS_CHECK_MSG(frame->pin_count > 0, "unpin of unpinned page");
  frame->dirty = frame->dirty || dirty;
  --frame->pin_count;
  if (frame->pin_count == 0) {
    lru_.push_back(id);
    frame->lru_pos = std::prev(lru_.end());
    frame->in_lru = true;
    // Drain any overflow frames (pin pressure) or a deferred shrink.
    TrimToCapacityLocked();
  }
}

bool BufferPool::TryEvictOneLocked() {
  for (auto it = lru_.begin(); it != lru_.end();) {
    const PageId victim = *it;
    auto fit = frames_.find(victim);
    DSKS_CHECK(fit != frames_.end());
    Frame& f = fit->second;
    DSKS_CHECK(f.pin_count == 0);
    if (f.dirty) {
      const Status status = disk_->WritePage(victim, f.data.get());
      if (!status.ok()) {
        // Injected write fault: keep the frame (still dirty, still in the
        // LRU) and try the next candidate; a later trim retries it.
        ++it;
        continue;
      }
    }
    lru_.erase(it);
    frames_.erase(fit);
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void BufferPool::TrimToCapacityLocked() {
  while (frames_.size() > capacity_.load(std::memory_order_relaxed) &&
         TryEvictOneLocked()) {
  }
}

Status BufferPool::FlushAllLocked() {
  Status first = Status::Ok();
  for (auto& [id, frame] : frames_) {
    if (frame.dirty) {
      const Status status = disk_->WritePage(id, frame.data.get());
      if (status.ok()) {
        frame.dirty = false;
      } else if (first.ok()) {
        first = status;
      }
    }
  }
  return first;
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(latch_);
  return FlushAllLocked();
}

void BufferPool::SetCapacity(size_t capacity) {
  DSKS_CHECK_MSG(capacity > 0, "buffer pool needs at least one frame");
  std::lock_guard<std::mutex> lock(latch_);
  capacity_.store(capacity, std::memory_order_relaxed);
  // Evict what we can now; if pinned pages hold the pool above the target,
  // the rest of the shrink happens in UnpinPage as pins drain.
  TrimToCapacityLocked();
}

Status BufferPool::Clear() {
  std::lock_guard<std::mutex> lock(latch_);
  const Status status = FlushAllLocked();
  for (auto& [id, frame] : frames_) {
    DSKS_CHECK_MSG(frame.pin_count == 0, "Clear with pinned pages");
    (void)id;
  }
  frames_.clear();
  lru_.clear();
  return status;
}

size_t BufferPool::num_frames_in_use() const {
  std::lock_guard<std::mutex> lock(latch_);
  return frames_.size();
}

void BufferPool::BindMetrics(obs::MetricsRegistry* registry,
                             const std::string& prefix) const {
  auto counter = [](const std::atomic<uint64_t>* c) {
    return [c] { return c->load(std::memory_order_relaxed); };
  };
  registry->BindSource(prefix + ".hits", counter(&stats_.hits));
  registry->BindSource(prefix + ".misses", counter(&stats_.misses));
  registry->BindSource(prefix + ".evictions", counter(&stats_.evictions));
  registry->BindSource(prefix + ".capacity_frames",
                       [this] { return static_cast<uint64_t>(capacity()); });
  registry->BindSource(prefix + ".frames_in_use", [this] {
    return static_cast<uint64_t>(num_frames_in_use());
  });
}

}  // namespace dsks
