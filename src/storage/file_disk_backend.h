#ifndef DSKS_STORAGE_FILE_DISK_BACKEND_H_
#define DSKS_STORAGE_FILE_DISK_BACKEND_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/async_io_engine.h"
#include "storage/disk_backend.h"

namespace dsks {

/// Pages in one real file, accessed with pread/pwrite at page-id ×
/// kPageSize offsets. Checksums are persisted in a `<path>.crc` sidecar:
/// a fixed header carrying the page-allocation watermark followed by one
/// CRC32C per page. Flush() rewrites the sidecar, trims the data file to
/// the watermark, and fsyncs both — an index is durable (and reopenable
/// with OpenExisting) only after a Flush; the destructor deliberately
/// closes without flushing so a crash between write and flush leaves the
/// stale sidecar that checksum verification then catches.
///
/// O_DIRECT is best effort: if open(2) rejects the flag (tmpfs), the
/// backend silently falls back to buffered I/O. When active, transfers go
/// through a per-thread page-aligned bounce buffer so callers keep using
/// ordinary heap frames.
///
/// errno mapping (the PR-4 contract): pread/pwrite failure → IOError;
/// a short read inside the allocated range (torn/truncated file) →
/// Corruption. Reads of pages past the physical end but inside the
/// watermark return zeros, matching ZeroPageCrc for never-written pages.
///
/// Thread safety: the checksum array and watermark are mutex-guarded;
/// pread/pwrite themselves are atomic at the syscall level and the buffer
/// pool never issues concurrent same-page read/write, so file I/O runs
/// outside the mutex.
class FileDiskBackend : public DiskBackend {
 public:
  /// Creates (truncates) `options.path` and its sidecar. Any error is
  /// returned, not thrown; `*out` is set only on Ok.
  static Status Create(const DiskOptions& options,
                       std::unique_ptr<FileDiskBackend>* out);

  /// Opens an existing index file pair written by a prior Flush(). Fails
  /// with Corruption when the sidecar is missing, malformed, or its
  /// watermark disagrees with a plausible data-file size.
  static Status Open(const DiskOptions& options,
                     std::unique_ptr<FileDiskBackend>* out);

  ~FileDiskBackend() override;

  FileDiskBackend(const FileDiskBackend&) = delete;
  FileDiskBackend& operator=(const FileDiskBackend&) = delete;

  PageId AllocatePage() override;
  Status ReadPage(PageId id, char* out, uint32_t* expected_crc) override;
  /// Batched read: requests whose page ids form contiguous ascending runs
  /// are merged into single preadv calls (scattering straight into the
  /// callers' buffers, or through one aligned run buffer under O_DIRECT).
  /// Any page a vectored call could not fully serve falls back to the
  /// single-page path, so per-page error semantics match ReadPage exactly.
  void ReadPages(std::span<PageReadRequest> batch) override;
  /// IoMode::kAsync: reads land via io_uring SQEs against the data fd
  /// (checksums pre-resolved under the mutex; any CQE short of a full
  /// page retries through the single-page path), or via the worker pool
  /// when the kernel lacks io_uring or O_DIRECT is active (the kernel
  /// path would need aligned frames; the pool reuses ReadPages and its
  /// bounce buffers). Sync mode uses the inherited inline rung.
  void SubmitRead(std::vector<PageReadRequest> batch,
                  ReadCompletion done) override;
  bool async_enabled() const override { return engine_ != nullptr; }
  const char* io_engine_name() const override {
    return engine_ != nullptr ? engine_->name() : "sync";
  }
  void DrainReads() override {
    if (engine_ != nullptr) {
      engine_->Drain();
    }
  }
  Status WritePage(PageId id, const char* in, uint32_t crc) override;
  Status TruncatePages(size_t new_num_pages) override;
  Status Flush() override;
  void CorruptStoredPage(PageId id, uint32_t bit_index) override;
  size_t num_pages() const override;

  const std::string& path() const { return path_; }
  /// Whether O_DIRECT actually took (false after the tmpfs fallback).
  bool o_direct_active() const { return o_direct_; }

  /// CRC sidecar entries rewritten by all Flush() calls so far. A flush
  /// after writing W pages rewrites O(W) entries, not O(all pages); the
  /// flush-cost regression test pins this down.
  uint64_t crc_entries_rewritten() const;

 private:
  FileDiskBackend(std::string path, int data_fd, int crc_fd, bool o_direct);

  /// Attaches the async engine requested by `options` (no-op for kSync):
  /// io_uring when the runtime probe succeeds and O_DIRECT is off, else
  /// the worker pool — the io_uring → worker-pool → sync ladder.
  void SetupEngine(const DiskOptions& options);

  /// Raw positioned I/O with EINTR/partial-transfer loops. Short reads
  /// inside [0, physical size) become Corruption; reads past the physical
  /// end zero-fill (unwritten allocated pages).
  Status PreadPage(PageId id, char* out);
  Status PwritePage(PageId id, const char* in);

  /// Reads `n` physically contiguous pages (run[0].id .. run[0].id+n-1)
  /// with one vectored call, falling back to PreadPage for any page the
  /// vectored call did not fully deliver. Fills each request's status.
  void ReadContiguousRun(PageReadRequest* run, size_t n);

  const std::string path_;
  const std::string crc_path_;
  int data_fd_;
  int crc_fd_;
  bool o_direct_;

  mutable std::mutex mutex_;
  /// In-memory copy of the sidecar CRCs; Flush() persists the entries
  /// dirtied since the last flush (plus the header).
  std::vector<uint32_t> checksums_;
  /// Per-entry dirty bits for the sidecar: set by AllocatePage/WritePage/
  /// TruncatePages, cleared by a successful Flush. `dirty_crc_count_`
  /// caches the number of set bits so Flush can skip a full scan when the
  /// sidecar is clean.
  std::vector<bool> crc_dirty_;
  size_t dirty_crc_count_ = 0;
  /// Cumulative sidecar entries rewritten by Flush (see accessor).
  uint64_t crc_entries_rewritten_ = 0;
  /// Pages the data file is physically sized for; grown in chunks so
  /// AllocatePage is O(1) amortised (ftruncate'd zeros read back as the
  /// zero page, matching the checksum recorded at allocation).
  size_t physical_pages_ = 0;

  /// Non-null view of engine_ when it is the io_uring implementation
  /// (its SubmitRead path pre-resolves checksums; the worker pool's
  /// read function is ReadPages, which resolves its own).
  IoUringIoEngine* uring_ = nullptr;
  /// Declared last: destroyed first, so engine threads drain and join
  /// while the file descriptors they read from are still open.
  std::unique_ptr<AsyncIoEngine> engine_;
};

}  // namespace dsks

#endif  // DSKS_STORAGE_FILE_DISK_BACKEND_H_
