#ifndef DSKS_STORAGE_BUFFER_POOL_H_
#define DSKS_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace dsks {

namespace obs {
class Histogram;
class MetricsRegistry;
}  // namespace obs

/// Plain single-read copy of BufferPoolStats: every counter is loaded
/// exactly once, so derived quantities (accesses, hit rate) cannot tear
/// across counters that other threads are still advancing.
struct BufferPoolStatsSnapshot {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_wasted = 0;
  uint64_t prefetch_dropped = 0;

  uint64_t accesses() const { return hits + misses; }
  double hit_rate() const {
    return accesses() == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(accesses());
  }
};

/// Cache behaviour counters. A `miss` is a logical page request that had to
/// go to disk; together with DiskStats::reads it is the I/O metric the
/// paper's experiments report.
///
/// Counters are relaxed atomics so that concurrent readers can account
/// hits/misses without serializing on the pool latch; the struct is not
/// copyable — consumers that need a consistent view take Snapshot() once
/// instead of reading the live counters field by field.
struct BufferPoolStats {
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> evictions{0};
  /// Prefetch lifecycle counters. Every *started* speculative read counts
  /// in `issued`; each issued page is later accounted exactly once as a
  /// `hit` (its first demand fetch found it resident), `wasted` (evicted
  /// or cleared before any demand touch), or `dropped` (the speculative
  /// read itself failed — injected fault, real errno, corruption). At
  /// quiescence (no frame still carrying its prefetched flag):
  /// issued == hits + wasted + dropped.
  std::atomic<uint64_t> prefetch_issued{0};
  std::atomic<uint64_t> prefetch_hits{0};
  std::atomic<uint64_t> prefetch_wasted{0};
  std::atomic<uint64_t> prefetch_dropped{0};

  void Reset() {
    hits.store(0, std::memory_order_relaxed);
    misses.store(0, std::memory_order_relaxed);
    evictions.store(0, std::memory_order_relaxed);
    prefetch_issued.store(0, std::memory_order_relaxed);
    prefetch_hits.store(0, std::memory_order_relaxed);
    prefetch_wasted.store(0, std::memory_order_relaxed);
    prefetch_dropped.store(0, std::memory_order_relaxed);
  }

  BufferPoolStatsSnapshot Snapshot() const {
    BufferPoolStatsSnapshot s;
    s.hits = hits.load(std::memory_order_relaxed);
    s.misses = misses.load(std::memory_order_relaxed);
    s.evictions = evictions.load(std::memory_order_relaxed);
    s.prefetch_issued = prefetch_issued.load(std::memory_order_relaxed);
    s.prefetch_hits = prefetch_hits.load(std::memory_order_relaxed);
    s.prefetch_wasted = prefetch_wasted.load(std::memory_order_relaxed);
    s.prefetch_dropped = prefetch_dropped.load(std::memory_order_relaxed);
    return s;
  }

  uint64_t accesses() const { return Snapshot().accesses(); }
  double hit_rate() const { return Snapshot().hit_rate(); }
};

/// Fixed-capacity LRU buffer pool over a DiskManager, mirroring the paper's
/// setup ("an LRU memory buffer whose size is set to 2% of the network
/// dataset size", §5). Pages are pinned while in use; only unpinned frames
/// are eligible for eviction.
///
/// Thread safety: all public methods are safe to call from multiple threads
/// concurrently. The page table and LRU list are guarded by one latch;
/// misses perform their disk read *outside* the latch (the frame is marked
/// in-flight so concurrent fetchers of the same page wait instead of
/// double-reading), which keeps parallel query streams from serializing on
/// simulated I/O. Page *contents* are not latched: concurrent readers of a
/// page are safe, but writers of the same page must coordinate externally
/// (every structure in this library writes pages only during single-threaded
/// build/ingest phases).
///
/// Memory pressure: when every frame is pinned, Fetch/New do not fail —
/// the pool temporarily exceeds `capacity()` with overflow frames and
/// shrinks back as pins drain (see UnpinPage). The capacity is a target,
/// not a hard limit; `num_frames_in_use() > capacity()` is possible while
/// more than `capacity()` pages are pinned at once.
///
/// Typical use goes through PageGuard (RAII pin/unpin); direct Fetch/Unpin
/// calls are available for structures that manage pins across scopes.
class BufferPool {
 public:
  /// `capacity` is the number of 4 KiB frames the pool targets.
  BufferPool(DiskManager* disk, size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Flushes dirty frames. Destroying a pool with pinned pages is a caller
  /// bug (some PageGuard or manual pin outlived the pool); it is asserted
  /// in debug builds and tolerated in release builds, consistent with
  /// Clear()'s stricter always-on check.
  ~BufferPool();

  /// Pins page `id` and stores a pointer to its contents in `*out`; the
  /// pointer stays valid until the matching UnpinPage. Pin pressure never
  /// fails (the pool over-allocates a temporary frame instead); a non-OK
  /// status (IOError / Corruption from the disk read) means the page is
  /// NOT pinned and `*out` is untouched, so there is nothing to unpin.
  Status FetchPage(PageId id, char** out);

  /// Batched FetchPage: pins every page of `ids` (same contract per page
  /// as FetchPage) resolving all misses with a single DiskManager batch
  /// read and one latch pass, so K cold pages cost one device round trip
  /// instead of K. All-or-nothing: on any page's failure every pin this
  /// call took is released and the first error is returned (`outs` is then
  /// unspecified, nothing is left pinned). `ids` must be duplicate-free —
  /// a duplicate would wait on its own in-flight read.
  Status FetchPages(std::span<const PageId> ids, std::span<char*> outs);

  /// Best-effort, non-blocking readahead: starts one batched speculative
  /// read for the pages of `ids` not already resident or in flight, and
  /// publishes whatever succeeds as unpinned LRU frames. Failures of any
  /// kind — injected faults, real I/O errors, corruption — are dropped
  /// (counted in prefetch_dropped) and never surfaced: a later demand
  /// fetch of that page retries from scratch and reports its own error.
  /// Never waits on other threads' in-flight reads, skips unallocated ids,
  /// and is a no-op while prefetching is disabled. Results of queries are
  /// bit-identical with prefetch on or off; only cache temperature moves.
  ///
  /// With an async disk (IoMode::kAsync) this is fire-and-forget: frames
  /// enter IO_IN_FLIGHT (pinned, off-LRU, io_in_progress) and the call
  /// returns as soon as the reads are queued; the DiskManager completion
  /// — running in the engine's reaper context, after CRC verification and
  /// fault draws — publishes or drops each frame and wakes demand
  /// fetchers waiting on the per-frame condvar. At most `io_depth`
  /// speculative pages are in flight at once; ids past the window are
  /// silently skipped like resident pages. A page currently pinned *and
  /// dirty* is refused as a counted no-op (prefetch_issued AND
  /// prefetch_dropped, never a device read) — a speculative read racing
  /// an in-progress writer would publish stale bytes.
  void Prefetch(std::span<const PageId> ids);

  /// Speculative pages currently in flight (0 whenever the pool is
  /// quiescent — pinned by tests after DrainPrefetches). Exposed as the
  /// "<prefix>.prefetch.inflight" metrics source.
  uint64_t prefetch_inflight() const {
    return prefetch_inflight_.load(std::memory_order_relaxed);
  }

  /// Blocks until every in-flight speculative read has completed and
  /// published (or dropped) its frame. No-op on a sync disk. Clear() and
  /// the destructor drain implicitly.
  void DrainPrefetches();

  /// Kill switch for Prefetch (default on). Tests that need exact demand
  /// I/O sequences (one-shot fault placement) turn it off; `--prefetch`
  /// flags on the CLI/bench A/B the two modes.
  void set_prefetch_enabled(bool enabled) {
    prefetch_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool prefetch_enabled() const {
    return prefetch_enabled_.load(std::memory_order_relaxed);
  }

  /// Allocates a fresh page on disk and returns it pinned; `*id` receives
  /// the new page id.
  char* NewPage(PageId* id);

  /// Releases one pin; `dirty` marks the frame for write-back on eviction.
  /// If the pool is over capacity (overflow frames or a deferred
  /// SetCapacity shrink), unpinning evicts down toward the target.
  void UnpinPage(PageId id, bool dirty);

  /// Writes back every dirty frame (pinned or not) without evicting.
  /// Attempts every dirty frame even after a failure; returns the first
  /// error (frames whose write failed stay dirty for a later retry).
  Status FlushAll();

  /// Drops all unpinned frames (writing back dirty ones). Used between
  /// experiment runs to start from a cold cache. Frames are dropped even
  /// when a write-back fails; the first error is returned so callers know
  /// the disk image may be stale.
  ///
  /// Contract: requires that *no* page is pinned; a pinned page here means
  /// a pin leak that would silently skew subsequent cold-cache
  /// measurements, so the condition is CHECK-enforced in all build types
  /// (unlike the destructor, which only asserts in debug builds).
  Status Clear();

  /// Changes the frame budget. Lets a database be built with a large pool
  /// and queried with the paper's 2% LRU buffer without invalidating
  /// pointers held by the index structures. Evicts unpinned frames down to
  /// the new target immediately; if pinned pages keep the pool above the
  /// target, the remainder of the shrink is deferred and completes as the
  /// pins drain (no abort).
  void SetCapacity(size_t capacity);

  size_t capacity() const { return capacity_.load(std::memory_order_relaxed); }
  size_t num_frames_in_use() const;

  const BufferPoolStats& stats() const { return stats_; }
  BufferPoolStats* mutable_stats() { return &stats_; }
  /// One coherent read of all counters (see BufferPoolStatsSnapshot).
  BufferPoolStatsSnapshot stats_snapshot() const { return stats_.Snapshot(); }
  /// Zeroes the counters; used between bench phases so each phase's
  /// snapshot is a pure delta.
  void ResetStats() { stats_.Reset(); }

  /// Exposes the pool's counters (plus capacity / frames-in-use gauges) as
  /// live sources named "<prefix>.hits" etc. The pool must outlive the
  /// binding; call registry->UnbindSourcesWithPrefix(prefix) before
  /// destroying the pool (Database does this for its own pool).
  void BindMetrics(obs::MetricsRegistry* registry,
                   const std::string& prefix) const;

  DiskManager* disk() { return disk_; }

 private:
  struct Frame {
    std::unique_ptr<char[]> data;
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    /// True while the owning fetch reads the page from disk outside the
    /// latch; concurrent fetchers of the same page wait on io_done_.
    bool io_in_progress = false;
    /// Set when a speculative read published this frame; cleared (counting
    /// a prefetch hit) by the first demand fetch, or counted as wasted if
    /// the frame is evicted/cleared still carrying it.
    bool prefetched = false;
    /// Position in lru_ when pin_count == 0.
    std::list<PageId>::iterator lru_pos;
    bool in_lru = false;
  };

  /// Evicts the least-recently-used unpinned frame whose (dirty)
  /// write-back succeeds, scanning each LRU candidate at most once per
  /// call. Returns false when everything is pinned or every dirty
  /// candidate's write-back failed this call (the pool then runs over
  /// capacity until a later trim succeeds — bounded, not an abort).
  /// Requires latch_ held.
  bool TryEvictOneLocked();

  /// Evicts unpinned frames while the pool exceeds capacity_. Requires
  /// latch_ held.
  void TrimToCapacityLocked();

  /// Requires latch_ held.
  Frame* GetFrameLocked(PageId id);

  /// Pins `*frame` as a demand hit: hit accounting (including the
  /// prefetched-flag resolution), LRU removal, pin count. Requires latch_
  /// held and the frame not in flight.
  char* PinHitLocked(Frame* frame);

  /// UnpinPage's body; requires latch_ held.
  void UnpinPageLocked(PageId id, bool dirty);

  /// Completion tail of Prefetch, run once per submitted batch (inline on
  /// the issuing thread for a sync disk, in the reaper context for an
  /// async one): publishes successful frames to the LRU, drops failures,
  /// decrements the in-flight gauge and wakes demand fetchers.
  void CompletePrefetch(std::span<PageReadRequest> reqs,
                        std::chrono::steady_clock::time_point submitted);

  Status FlushAllLocked();

  DiskManager* disk_;
  std::atomic<size_t> capacity_;
  std::atomic<bool> prefetch_enabled_{true};

  mutable std::mutex latch_;
  /// Signalled when a frame's in-flight disk read completes.
  std::condition_variable io_done_;
  std::unordered_map<PageId, Frame> frames_;
  /// Unpinned pages, least-recently-used at the front.
  std::list<PageId> lru_;
  BufferPoolStats stats_;
  /// Speculative pages submitted but not yet completed. A gauge, not part
  /// of BufferPoolStats: ResetStats between bench phases must not zero a
  /// live in-flight count (its decrements are paired with submissions,
  /// never reset).
  std::atomic<uint64_t> prefetch_inflight_{0};
  /// Submit-to-completion latency of speculative batches; bound lazily by
  /// BindMetrics (null until then, recording skipped).
  mutable std::atomic<obs::Histogram*> prefetch_latency_{nullptr};
};

/// RAII pin on a buffer-pool page.
class PageGuard {
 public:
  PageGuard() : pool_(nullptr), id_(kInvalidPageId), data_(nullptr) {}

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  PageGuard(PageGuard&& other) noexcept { MoveFrom(&other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(&other);
    }
    return *this;
  }

  ~PageGuard() { Release(); }

  /// Fetches (and pins) page `id`, surfacing disk errors as Status. On a
  /// non-OK return `*out` is released/empty and nothing is pinned.
  static Status Fetch(BufferPool* pool, PageId id, PageGuard* out) {
    out->Release();
    char* data = nullptr;
    DSKS_RETURN_IF_ERROR(pool->FetchPage(id, &data));
    out->pool_ = pool;
    out->id_ = id;
    out->data_ = data;
    out->dirty_ = false;
    return Status::Ok();
  }

  /// Allocates a new pinned page via the pool.
  static PageGuard New(BufferPool* pool, PageId* id) {
    PageGuard g;
    g.pool_ = pool;
    g.data_ = pool->NewPage(id);
    g.id_ = *id;
    g.dirty_ = true;
    return g;
  }

  char* data() { return data_; }
  const char* data() const { return data_; }
  PageId id() const { return id_; }
  bool valid() const { return data_ != nullptr; }

  void MarkDirty() { dirty_ = true; }

  /// Unpins early (before destruction).
  void Release() {
    if (pool_ != nullptr && data_ != nullptr) {
      pool_->UnpinPage(id_, dirty_);
    }
    pool_ = nullptr;
    data_ = nullptr;
    id_ = kInvalidPageId;
    dirty_ = false;
  }

 private:
  void MoveFrom(PageGuard* other) {
    pool_ = other->pool_;
    id_ = other->id_;
    data_ = other->data_;
    dirty_ = other->dirty_;
    other->pool_ = nullptr;
    other->data_ = nullptr;
    other->id_ = kInvalidPageId;
    other->dirty_ = false;
  }

  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
  char* data_ = nullptr;
  bool dirty_ = false;
};

/// Pin for single-threaded build/ingest phases only, where the disk is
/// fault-free by contract: fault injection is armed after PrepareForQueries
/// and a build interleaved with faults has no partial state worth
/// salvaging, so a disk error here is a setup failure and CHECK-aborts
/// rather than threading a Status through every builder. This path cannot
/// see query-time faults; query code uses PageGuard::Fetch and propagates
/// the Status.
inline PageGuard FetchForBuild(BufferPool* pool, PageId id) {
  PageGuard guard;
  const Status s = PageGuard::Fetch(pool, id, &guard);
  DSKS_CHECK_MSG(s.ok(), "build-phase fetch on a faulty disk");
  return guard;
}

}  // namespace dsks

#endif  // DSKS_STORAGE_BUFFER_POOL_H_
