#ifndef DSKS_STORAGE_BUFFER_POOL_H_
#define DSKS_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/page.h"

namespace dsks {

/// Cache behaviour counters. A `miss` is a logical page request that had to
/// go to disk; together with DiskStats::reads it is the I/O metric the
/// paper's experiments report.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;

  void Reset() { hits = misses = evictions = 0; }

  uint64_t accesses() const { return hits + misses; }
  double hit_rate() const {
    uint64_t a = accesses();
    return a == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(a);
  }
};

/// Fixed-capacity LRU buffer pool over a DiskManager, mirroring the paper's
/// setup ("an LRU memory buffer whose size is set to 2% of the network
/// dataset size", §5). Pages are pinned while in use; only unpinned frames
/// are eligible for eviction.
///
/// Typical use goes through PageGuard (RAII pin/unpin); direct Fetch/Unpin
/// calls are available for structures that manage pins across scopes.
class BufferPool {
 public:
  /// `capacity` is the number of 4 KiB frames the pool may hold at once.
  BufferPool(DiskManager* disk, size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  ~BufferPool();

  /// Returns a pinned pointer to the page contents. The pointer stays valid
  /// until the matching UnpinPage.
  char* FetchPage(PageId id);

  /// Allocates a fresh page on disk and returns it pinned; `*id` receives
  /// the new page id.
  char* NewPage(PageId* id);

  /// Releases one pin; `dirty` marks the frame for write-back on eviction.
  void UnpinPage(PageId id, bool dirty);

  /// Writes back every dirty frame (pinned or not) without evicting.
  void FlushAll();

  /// Drops all unpinned frames (writing back dirty ones). Used between
  /// experiment runs to start from a cold cache. Requires no pinned pages.
  void Clear();

  /// Changes the frame budget, evicting down if needed. Lets a database be
  /// built with a large pool and queried with the paper's 2% LRU buffer
  /// without invalidating pointers held by the index structures.
  void SetCapacity(size_t capacity);

  size_t capacity() const { return capacity_; }
  size_t num_frames_in_use() const { return frames_.size(); }

  const BufferPoolStats& stats() const { return stats_; }
  BufferPoolStats* mutable_stats() { return &stats_; }
  DiskManager* disk() { return disk_; }

 private:
  struct Frame {
    std::unique_ptr<char[]> data;
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    /// Position in lru_ when pin_count == 0.
    std::list<PageId>::iterator lru_pos;
    bool in_lru = false;
  };

  /// Evicts one unpinned frame to make room. Fatal if everything is pinned.
  void EvictOne();

  Frame* GetFrame(PageId id);

  DiskManager* disk_;
  size_t capacity_;
  std::unordered_map<PageId, Frame> frames_;
  /// Unpinned pages, least-recently-used at the front.
  std::list<PageId> lru_;
  BufferPoolStats stats_;
};

/// RAII pin on a buffer-pool page.
class PageGuard {
 public:
  PageGuard() : pool_(nullptr), id_(kInvalidPageId), data_(nullptr) {}

  /// Fetches (and pins) page `id`.
  PageGuard(BufferPool* pool, PageId id)
      : pool_(pool), id_(id), data_(pool->FetchPage(id)), dirty_(false) {}

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  PageGuard(PageGuard&& other) noexcept { MoveFrom(&other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(&other);
    }
    return *this;
  }

  ~PageGuard() { Release(); }

  /// Allocates a new pinned page via the pool.
  static PageGuard New(BufferPool* pool, PageId* id) {
    PageGuard g;
    g.pool_ = pool;
    g.data_ = pool->NewPage(id);
    g.id_ = *id;
    g.dirty_ = true;
    return g;
  }

  char* data() { return data_; }
  const char* data() const { return data_; }
  PageId id() const { return id_; }
  bool valid() const { return data_ != nullptr; }

  void MarkDirty() { dirty_ = true; }

  /// Unpins early (before destruction).
  void Release() {
    if (pool_ != nullptr && data_ != nullptr) {
      pool_->UnpinPage(id_, dirty_);
    }
    pool_ = nullptr;
    data_ = nullptr;
    id_ = kInvalidPageId;
    dirty_ = false;
  }

 private:
  void MoveFrom(PageGuard* other) {
    pool_ = other->pool_;
    id_ = other->id_;
    data_ = other->data_;
    dirty_ = other->dirty_;
    other->pool_ = nullptr;
    other->data_ = nullptr;
    other->id_ = kInvalidPageId;
    other->dirty_ = false;
  }

  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
  char* data_ = nullptr;
  bool dirty_ = false;
};

}  // namespace dsks

#endif  // DSKS_STORAGE_BUFFER_POOL_H_
