#include "storage/disk_backend.h"

#include <vector>

#include "common/crc32c.h"

namespace dsks {

const char* DiskBackendKindName(DiskBackendKind kind) {
  switch (kind) {
    case DiskBackendKind::kSim:
      return "sim";
    case DiskBackendKind::kFile:
      return "file";
  }
  return "unknown";
}

const char* IoModeName(IoMode mode) {
  switch (mode) {
    case IoMode::kSync:
      return "sync";
    case IoMode::kAsync:
      return "async";
  }
  return "unknown";
}

uint32_t ZeroPageCrc() {
  static const uint32_t kCrc = [] {
    std::vector<char> zeros(kPageSize, 0);
    return crc32c::Value(zeros.data(), zeros.size());
  }();
  return kCrc;
}

}  // namespace dsks
