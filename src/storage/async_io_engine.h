#ifndef DSKS_STORAGE_ASYNC_IO_ENGINE_H_
#define DSKS_STORAGE_ASYNC_IO_ENGINE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "storage/disk_backend.h"

namespace dsks {

/// One submitted read batch: the engine owns the requests until the
/// completion callback has returned, so callers can fire and forget.
struct AsyncReadBatch {
  std::vector<PageReadRequest> reqs;
  /// Invoked exactly once, from an engine thread, after every request's
  /// `out`/`expected_crc`/`status` is final. Runs policy-level work (CRC
  /// verification, fault draws, buffer-pool publication) — the "reaper"
  /// context of DESIGN.md's async section. Must not call back into
  /// Submit/Drain of the same engine.
  std::function<void(std::span<PageReadRequest>)> done;
};

/// Asynchronous read service under a DiskBackend: Submit returns before
/// the pages land; completions run on engine-owned threads. Engines move
/// raw bytes only — checksum verification, fault injection and statistics
/// all stay in the DiskManager completion wrapper, exactly as they do on
/// the synchronous path.
class AsyncIoEngine {
 public:
  virtual ~AsyncIoEngine() = default;

  /// Queues `batch` and returns immediately. The completion fires on an
  /// engine thread once the whole batch is resolved.
  virtual void Submit(AsyncReadBatch batch) = 0;

  /// Blocks until every previously submitted batch's completion callback
  /// has fully returned. New Submit calls racing a Drain are the caller's
  /// bug (the buffer pool drains only at quiescence points).
  virtual void Drain() = 0;

  /// Stable engine name for logs and bench JSON: "worker-pool"/"io_uring".
  virtual const char* name() const = 0;
};

/// Portable engine: N I/O threads servicing a submission queue. Works for
/// any backend — the read function is the backend's own (synchronous,
/// possibly vectored) ReadPages, so batching and error semantics are
/// inherited unchanged; only the thread it runs on moves.
class WorkerPoolIoEngine : public AsyncIoEngine {
 public:
  using ReadFn = std::function<void(std::span<PageReadRequest>)>;

  WorkerPoolIoEngine(ReadFn read_fn, size_t num_threads);
  ~WorkerPoolIoEngine() override;

  WorkerPoolIoEngine(const WorkerPoolIoEngine&) = delete;
  WorkerPoolIoEngine& operator=(const WorkerPoolIoEngine&) = delete;

  void Submit(AsyncReadBatch batch) override;
  void Drain() override;
  const char* name() const override { return "worker-pool"; }

 private:
  void WorkerLoop();

  const ReadFn read_fn_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<AsyncReadBatch> queue_;
  size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// True kernel-async engine over one file descriptor, using raw io_uring
/// syscalls (no liburing dependency). A reaper thread harvests CQEs and
/// runs completions. Any page a CQE could not fully deliver (short read,
/// device error) is retried through `fallback` on the reaper thread, so
/// per-page semantics match the backend's synchronous single-page path
/// exactly. Created via Probe(); returns null when the kernel lacks
/// io_uring (ENOSYS, seccomp) and the caller falls back to the worker
/// pool — the middle rung of the io_uring → worker-pool → sync ladder.
class IoUringIoEngine : public AsyncIoEngine {
 public:
  /// Per-request fallback re-read with single-page semantics (fills
  /// `status`, may refill `out`).
  using FallbackFn = std::function<void(PageReadRequest*)>;

  /// Probes io_uring_setup at runtime; null (not an error) when the
  /// kernel or sandbox refuses. `queue_depth` bounds outstanding SQEs and
  /// is rounded up to a power of two.
  static std::unique_ptr<IoUringIoEngine> Probe(int data_fd,
                                                size_t queue_depth,
                                                FallbackFn fallback);

  ~IoUringIoEngine() override;

  IoUringIoEngine(const IoUringIoEngine&) = delete;
  IoUringIoEngine& operator=(const IoUringIoEngine&) = delete;

  void Submit(AsyncReadBatch batch) override;
  void Drain() override;
  const char* name() const override { return "io_uring"; }

 private:
  struct Ring;  // mmap'd SQ/CQ views; hidden so <linux/io_uring.h> stays
                // out of this header
  struct Batch;

  IoUringIoEngine(int data_fd, FallbackFn fallback, std::unique_ptr<Ring> ring);

  void ReaperLoop();
  /// Requires mutex_ held. Pushes one SQE; returns false when the SQ is
  /// full (caller falls back to a synchronous read for that page).
  bool PushSqeLocked(PageId id, char* out, void* user_data);
  void SubmitNopLocked();

  const int data_fd_;
  const FallbackFn fallback_;
  std::unique_ptr<Ring> ring_;

  std::mutex mutex_;
  std::condition_variable idle_;
  size_t outstanding_batches_ = 0;
  bool stop_ = false;
  std::thread reaper_;
};

}  // namespace dsks

#endif  // DSKS_STORAGE_ASYNC_IO_ENGINE_H_
