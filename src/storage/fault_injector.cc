#include "storage/fault_injector.h"

namespace dsks {

namespace {

/// SplitMix64 finalizer: maps (seed, counter) to a uniform 64-bit hash.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// p in [0,1] -> threshold such that (hash <= threshold) fires with
/// probability ~p. 0 means never (guarded explicitly), UINT64_MAX always.
uint64_t Threshold(double p) {
  if (p <= 0.0) {
    return 0;
  }
  if (p >= 1.0) {
    return UINT64_MAX;
  }
  return static_cast<uint64_t>(p * 18446744073709551616.0L);  // p * 2^64
}

constexpr uint64_t kReadSalt = 0x72656164ull;     // "read"
constexpr uint64_t kWriteSalt = 0x77726974ull;    // "writ"
constexpr uint64_t kCorruptSalt = 0x636F7272ull;  // "corr"

}  // namespace

void FaultInjector::Configure(const Config& config) {
  std::lock_guard<std::mutex> lock(mutex_);
  config_ = config;
  RecomputeArmedLocked();
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  config_ = Config{};
  one_shot_read_ = false;
  one_shot_write_ = false;
  targeted_reads_.clear();
  RecomputeArmedLocked();
}

void FaultInjector::InjectReadFaultOnce() {
  std::lock_guard<std::mutex> lock(mutex_);
  one_shot_read_ = true;
  RecomputeArmedLocked();
}

void FaultInjector::InjectWriteFaultOnce() {
  std::lock_guard<std::mutex> lock(mutex_);
  one_shot_write_ = true;
  RecomputeArmedLocked();
}

void FaultInjector::FailPageReads(PageId id, uint32_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count == 0) {
    targeted_reads_.erase(id);
  } else {
    targeted_reads_[id] = count;
  }
  RecomputeArmedLocked();
}

void FaultInjector::RecomputeArmedLocked() {
  const bool armed = config_.read_fault_p > 0.0 ||
                     config_.write_fault_p > 0.0 ||
                     config_.corrupt_read_p > 0.0 || one_shot_read_ ||
                     one_shot_write_ || !targeted_reads_.empty();
  armed_.store(armed, std::memory_order_relaxed);
}

bool FaultInjector::Draw(double p, std::atomic<uint64_t>* op_counter,
                         uint64_t salt, uint64_t* hash_out) {
  const uint64_t threshold = Threshold(p);
  // Every armed op consumes one counter tick so the fault count over N ops
  // is deterministic in (seed, N, p) regardless of thread interleaving.
  const uint64_t op = op_counter->fetch_add(1, std::memory_order_relaxed);
  uint64_t seed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    seed = config_.seed;
  }
  const uint64_t hash = SplitMix64(seed ^ SplitMix64(op ^ salt));
  if (hash_out != nullptr) {
    *hash_out = hash;
  }
  return threshold != 0 && hash <= threshold;
}

bool FaultInjector::ShouldFailRead(PageId id) {
  if (!armed()) {
    return false;
  }
  double p;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (one_shot_read_) {
      one_shot_read_ = false;
      RecomputeArmedLocked();
      read_faults_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    auto it = targeted_reads_.find(id);
    if (it != targeted_reads_.end()) {
      if (it->second != kAlways && --it->second == 0) {
        targeted_reads_.erase(it);
        RecomputeArmedLocked();
      }
      read_faults_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    p = config_.read_fault_p;
  }
  if (p > 0.0 && Draw(p, &read_ops_, kReadSalt, nullptr)) {
    read_faults_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool FaultInjector::ShouldFailWrite(PageId id) {
  (void)id;
  if (!armed()) {
    return false;
  }
  double p;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (one_shot_write_) {
      one_shot_write_ = false;
      RecomputeArmedLocked();
      write_faults_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    p = config_.write_fault_p;
  }
  if (p > 0.0 && Draw(p, &write_ops_, kWriteSalt, nullptr)) {
    write_faults_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool FaultInjector::ShouldCorruptRead(PageId id, uint32_t* bit_index) {
  (void)id;
  if (!armed()) {
    return false;
  }
  double p;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    p = config_.corrupt_read_p;
  }
  uint64_t hash = 0;
  if (p > 0.0 && Draw(p, &corrupt_ops_, kCorruptSalt, &hash)) {
    corruptions_.fetch_add(1, std::memory_order_relaxed);
    // Reuse high bits of the draw to pick which bit flips.
    *bit_index = static_cast<uint32_t>((hash >> 32) % (kPageSize * 8));
    return true;
  }
  return false;
}

}  // namespace dsks
