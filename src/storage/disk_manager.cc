#include "storage/disk_manager.h"

#include <chrono>
#include <cstring>

#include "common/macros.h"

namespace dsks {

namespace {

void SpinForMicros(double us) {
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::nanoseconds(
                                    static_cast<int64_t>(us * 1000.0));
  while (std::chrono::steady_clock::now() < deadline) {
    // busy wait: simulated device latency
  }
}

}  // namespace

PageId DiskManager::AllocatePage() {
  auto page = std::make_unique<char[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  pages_.push_back(std::move(page));
  ++stats_.allocations;
  return static_cast<PageId>(pages_.size() - 1);
}

void DiskManager::ReadPage(PageId id, char* out) {
  DSKS_CHECK_MSG(id < pages_.size(), "read of unallocated page");
  if (read_delay_us_ > 0.0) {
    SpinForMicros(read_delay_us_);
  }
  std::memcpy(out, pages_[id].get(), kPageSize);
  ++stats_.reads;
}

void DiskManager::WritePage(PageId id, const char* in) {
  DSKS_CHECK_MSG(id < pages_.size(), "write of unallocated page");
  std::memcpy(pages_[id].get(), in, kPageSize);
  ++stats_.writes;
}

}  // namespace dsks
