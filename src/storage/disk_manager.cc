#include "storage/disk_manager.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "common/macros.h"
#include "obs/metrics.h"

namespace dsks {

namespace {

void SpinForMicros(double us) {
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::nanoseconds(
                                    static_cast<int64_t>(us * 1000.0));
  while (std::chrono::steady_clock::now() < deadline) {
    // busy wait: simulated device latency
  }
}

}  // namespace

PageId DiskManager::AllocatePage() {
  auto page = std::make_unique<char[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  std::lock_guard<std::mutex> lock(mutex_);
  pages_.push_back(std::move(page));
  stats_.allocations.fetch_add(1, std::memory_order_relaxed);
  return static_cast<PageId>(pages_.size() - 1);
}

char* DiskManager::PageData(PageId id, const char* op) const {
  std::lock_guard<std::mutex> lock(mutex_);
  DSKS_CHECK_MSG(id < pages_.size(), op);
  return pages_[id].get();
}

void DiskManager::ReadPage(PageId id, char* out) {
  const char* src = PageData(id, "read of unallocated page");
  // Wait and copy outside the mutex so concurrent reads overlap.
  const double delay = read_delay_us_.load(std::memory_order_relaxed);
  if (delay > 0.0) {
    if (read_delay_yields_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(delay));
    } else {
      SpinForMicros(delay);
    }
  }
  std::memcpy(out, src, kPageSize);
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
}

void DiskManager::WritePage(PageId id, const char* in) {
  char* dst = PageData(id, "write of unallocated page");
  std::memcpy(dst, in, kPageSize);
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
}

void DiskManager::BindMetrics(obs::MetricsRegistry* registry,
                              const std::string& prefix) const {
  auto counter = [](const std::atomic<uint64_t>* c) {
    return [c] { return c->load(std::memory_order_relaxed); };
  };
  registry->BindSource(prefix + ".reads", counter(&stats_.reads));
  registry->BindSource(prefix + ".writes", counter(&stats_.writes));
  registry->BindSource(prefix + ".allocations", counter(&stats_.allocations));
  registry->BindSource(prefix + ".pages",
                       [this] { return static_cast<uint64_t>(num_pages()); });
}

}  // namespace dsks
