#include "storage/disk_manager.h"

#include <utility>
#include <vector>

#include "common/crc32c.h"
#include "common/macros.h"
#include "obs/io_account.h"
#include "obs/metrics.h"
#include "storage/file_disk_backend.h"

namespace dsks {

namespace {

std::unique_ptr<DiskBackend> MakeBackend(const DiskOptions& options) {
  switch (options.backend) {
    case DiskBackendKind::kSim:
      return std::make_unique<SimDiskBackend>(options);
    case DiskBackendKind::kFile: {
      std::unique_ptr<FileDiskBackend> backend;
      const Status s = FileDiskBackend::Create(options, &backend);
      DSKS_CHECK_MSG(s.ok(), "failed to create file-backed disk");
      return backend;
    }
  }
  DSKS_CHECK_MSG(false, "unknown disk backend kind");
  return nullptr;
}

}  // namespace

DiskManager::DiskManager(const DiskOptions& options)
    : DiskManager(MakeBackend(options), options.backend) {
  io_depth_ = options.io_depth;
}

DiskManager::DiskManager(std::unique_ptr<DiskBackend> backend,
                         DiskBackendKind kind)
    : backend_(std::move(backend)), backend_kind_(kind) {
  if (kind == DiskBackendKind::kSim) {
    sim_ = static_cast<SimDiskBackend*>(backend_.get());
  }
}

Status DiskManager::OpenExisting(const DiskOptions& options,
                                 std::unique_ptr<DiskManager>* out) {
  if (options.backend != DiskBackendKind::kFile) {
    return Status::InvalidArgument(
        "OpenExisting requires the file backend (sim state is not durable)");
  }
  std::unique_ptr<FileDiskBackend> backend;
  DSKS_RETURN_IF_ERROR(FileDiskBackend::Open(options, &backend));
  out->reset(new DiskManager(std::move(backend), options.backend));
  (*out)->io_depth_ = options.io_depth;
  return Status::Ok();
}

PageId DiskManager::AllocatePage() {
  const PageId id = backend_->AllocatePage();
  stats_.allocations.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Status DiskManager::ReadPage(PageId id, char* out) {
  const bool armed = fault_injector_.armed();
  if (armed && fault_injector_.ShouldFailRead(id)) {
    stats_.read_faults.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError("injected read fault on page " +
                           std::to_string(id));
  }
  uint32_t expected_crc = 0;
  Status s = backend_->ReadPage(id, out, &expected_crc);
  if (!s.ok()) {
    // Real device failures get the same accounting as injected ones.
    if (s.IsCorruption()) {
      stats_.corruptions_detected.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_.read_faults.fetch_add(1, std::memory_order_relaxed);
    }
    return s;
  }
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  obs::ChargeDiskRead();
  if (armed) {
    uint32_t bit_index = 0;
    if (fault_injector_.ShouldCorruptRead(id, &bit_index)) {
      out[bit_index / 8] ^= static_cast<char>(1u << (bit_index % 8));
    }
  }
  // Verify the bytes actually handed to the caller — freshly copied, so
  // cache-hot for the checksum pass — catching at-rest corruption
  // (CorruptStoredPage, torn files) and in-flight bit flips alike.
  if (crc32c::Value(out, kPageSize) != expected_crc) {
    stats_.corruptions_detected.fetch_add(1, std::memory_order_relaxed);
    return Status::Corruption("checksum mismatch on page " +
                              std::to_string(id));
  }
  return Status::Ok();
}

void DiskManager::ReadPages(std::span<PageReadRequest> batch) {
  if (batch.empty()) {
    return;
  }
  const bool armed = fault_injector_.armed();
  // Per-page policy after the backend filled a request. `armed` is passed
  // down so the corrupt-read draw sequence matches a sequential loop:
  // pages whose backend read failed never draw (ReadPage returns before
  // ShouldCorruptRead in that case too).
  auto finish = [this, armed](PageReadRequest* r) {
    if (!r->status.ok()) {
      if (r->status.IsCorruption()) {
        stats_.corruptions_detected.fetch_add(1, std::memory_order_relaxed);
      } else {
        stats_.read_faults.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    stats_.reads.fetch_add(1, std::memory_order_relaxed);
    obs::ChargeDiskRead();
    if (armed) {
      uint32_t bit_index = 0;
      if (fault_injector_.ShouldCorruptRead(r->id, &bit_index)) {
        r->out[bit_index / 8] ^= static_cast<char>(1u << (bit_index % 8));
      }
    }
    if (crc32c::Value(r->out, kPageSize) != r->expected_crc) {
      stats_.corruptions_detected.fetch_add(1, std::memory_order_relaxed);
      r->status = Status::Corruption("checksum mismatch on page " +
                                     std::to_string(r->id));
    }
  };
  if (!armed) {
    backend_->ReadPages(batch);
    for (PageReadRequest& r : batch) {
      finish(&r);
    }
    return;
  }
  // Armed: draw the read-fault decision for every page first (batch order
  // == loop order, so seeded fault counts are unchanged), then hand only
  // the survivors to the backend.
  std::vector<PageReadRequest> device;
  std::vector<size_t> device_index;
  device.reserve(batch.size());
  device_index.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    PageReadRequest& r = batch[i];
    if (fault_injector_.ShouldFailRead(r.id)) {
      stats_.read_faults.fetch_add(1, std::memory_order_relaxed);
      r.status = Status::IOError("injected read fault on page " +
                                 std::to_string(r.id));
      continue;
    }
    device.push_back(r);
    device_index.push_back(i);
  }
  if (!device.empty()) {
    backend_->ReadPages(std::span<PageReadRequest>(device));
  }
  for (size_t k = 0; k < device.size(); ++k) {
    PageReadRequest& r = batch[device_index[k]];
    r.expected_crc = device[k].expected_crc;
    r.status = std::move(device[k].status);
    finish(&r);
  }
}

void DiskManager::SubmitReadPages(std::vector<PageReadRequest> batch,
                                  DiskBackend::ReadCompletion done) {
  if (batch.empty()) {
    return;
  }
  if (!backend_->async_enabled()) {
    // Synchronous rung: the batched path with its submit-time draws, then
    // an inline completion — byte- and counter-identical to PR 7.
    ReadPages(std::span<PageReadRequest>(batch));
    done(std::span<PageReadRequest>(batch));
    return;
  }
  // Async: the backend moves raw bytes; ALL policy — fault draws, stats,
  // bit-flip corruption, CRC verification — runs at completion time in
  // the engine's reaper context. The injector's counter-hashed draws make
  // fault *counts* a pure function of (seed, ops, p) regardless of the
  // order completions land in, which is what keeps seeded chaos runs
  // reproducible across sync and async regimes.
  backend_->SubmitRead(
      std::move(batch),
      [this, done = std::move(done)](std::span<PageReadRequest> b) {
        const bool armed = fault_injector_.armed();
        for (PageReadRequest& r : b) {
          if (armed && fault_injector_.ShouldFailRead(r.id)) {
            // The injected fault wins even though the device read already
            // happened: the op fails, and like the sync path it is not
            // accounted as a successful read.
            stats_.read_faults.fetch_add(1, std::memory_order_relaxed);
            r.status = Status::IOError("injected read fault on page " +
                                       std::to_string(r.id));
            continue;
          }
          if (!r.status.ok()) {
            if (r.status.IsCorruption()) {
              stats_.corruptions_detected.fetch_add(1,
                                                    std::memory_order_relaxed);
            } else {
              stats_.read_faults.fetch_add(1, std::memory_order_relaxed);
            }
            continue;
          }
          stats_.reads.fetch_add(1, std::memory_order_relaxed);
          obs::ChargeDiskRead();
          if (armed) {
            uint32_t bit_index = 0;
            if (fault_injector_.ShouldCorruptRead(r.id, &bit_index)) {
              r.out[bit_index / 8] ^=
                  static_cast<char>(1u << (bit_index % 8));
            }
          }
          if (crc32c::Value(r.out, kPageSize) != r.expected_crc) {
            stats_.corruptions_detected.fetch_add(1,
                                                  std::memory_order_relaxed);
            r.status = Status::Corruption("checksum mismatch on page " +
                                          std::to_string(r.id));
          }
        }
        done(b);
      });
}

Status DiskManager::WritePage(PageId id, const char* in) {
  if (fault_injector_.armed() && fault_injector_.ShouldFailWrite(id)) {
    stats_.write_faults.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError("injected write fault on page " +
                           std::to_string(id));
  }
  const uint32_t crc = crc32c::Value(in, kPageSize);
  Status s = backend_->WritePage(id, in, crc);
  if (!s.ok()) {
    stats_.write_faults.fetch_add(1, std::memory_order_relaxed);
    return s;
  }
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  obs::ChargeDiskWrite();
  return Status::Ok();
}

Status DiskManager::TruncatePages(size_t new_num_pages) {
  return backend_->TruncatePages(new_num_pages);
}

Status DiskManager::Flush() { return backend_->Flush(); }

void DiskManager::CorruptStoredPage(PageId id, uint32_t bit_index) {
  backend_->CorruptStoredPage(id, bit_index);
}

void DiskManager::BindMetrics(obs::MetricsRegistry* registry,
                              const std::string& prefix) const {
  auto counter = [](const std::atomic<uint64_t>* c) {
    return [c] { return c->load(std::memory_order_relaxed); };
  };
  registry->BindSource(prefix + ".reads", counter(&stats_.reads));
  registry->BindSource(prefix + ".writes", counter(&stats_.writes));
  registry->BindSource(prefix + ".allocations", counter(&stats_.allocations));
  registry->BindSource(prefix + ".read_faults", counter(&stats_.read_faults));
  registry->BindSource(prefix + ".write_faults",
                       counter(&stats_.write_faults));
  registry->BindSource(prefix + ".corruptions_detected",
                       counter(&stats_.corruptions_detected));
  registry->BindSource(prefix + ".pages",
                       [this] { return static_cast<uint64_t>(num_pages()); });
}

}  // namespace dsks
