#include "storage/disk_manager.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "common/crc32c.h"
#include "common/macros.h"
#include "obs/metrics.h"

namespace dsks {

namespace {

void SpinForMicros(double us) {
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::nanoseconds(
                                    static_cast<int64_t>(us * 1000.0));
  while (std::chrono::steady_clock::now() < deadline) {
    // busy wait: simulated device latency
  }
}

uint32_t ZeroPageCrc() {
  static const uint32_t kCrc = [] {
    std::vector<char> zeros(kPageSize, 0);
    return crc32c::Value(zeros.data(), zeros.size());
  }();
  return kCrc;
}

}  // namespace

PageId DiskManager::AllocatePage() {
  auto page = std::make_unique<char[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  const uint32_t zero_crc = ZeroPageCrc();
  std::lock_guard<std::mutex> lock(mutex_);
  pages_.push_back(std::move(page));
  checksums_.push_back(zero_crc);
  stats_.allocations.fetch_add(1, std::memory_order_relaxed);
  return static_cast<PageId>(pages_.size() - 1);
}

Status DiskManager::ReadPage(PageId id, char* out) {
  const bool armed = fault_injector_.armed();
  if (armed && fault_injector_.ShouldFailRead(id)) {
    stats_.read_faults.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError("injected read fault on page " +
                           std::to_string(id));
  }
  const char* src;
  uint32_t expected_crc;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DSKS_CHECK_MSG(id < pages_.size(), "read of unallocated page");
    src = pages_[id].get();
    expected_crc = checksums_[id];
  }
  // Wait and copy outside the mutex so concurrent reads overlap.
  const double delay = read_delay_us_.load(std::memory_order_relaxed);
  if (delay > 0.0) {
    if (read_delay_yields_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(delay));
    } else {
      SpinForMicros(delay);
    }
  }
  std::memcpy(out, src, kPageSize);
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  if (armed) {
    uint32_t bit_index = 0;
    if (fault_injector_.ShouldCorruptRead(id, &bit_index)) {
      out[bit_index / 8] ^= static_cast<char>(1u << (bit_index % 8));
    }
  }
  // Verify the bytes actually handed to the caller — freshly written, so
  // cache-hot for the checksum pass — catching both at-rest corruption
  // (CorruptStoredPage) and in-flight bit flips.
  if (crc32c::Value(out, kPageSize) != expected_crc) {
    stats_.corruptions_detected.fetch_add(1, std::memory_order_relaxed);
    return Status::Corruption("checksum mismatch on page " +
                              std::to_string(id));
  }
  return Status::Ok();
}

Status DiskManager::WritePage(PageId id, const char* in) {
  if (fault_injector_.armed() && fault_injector_.ShouldFailWrite(id)) {
    stats_.write_faults.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError("injected write fault on page " +
                           std::to_string(id));
  }
  const uint32_t crc = crc32c::Value(in, kPageSize);
  char* dst;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DSKS_CHECK_MSG(id < pages_.size(), "write of unallocated page");
    dst = pages_[id].get();
    checksums_[id] = crc;
  }
  std::memcpy(dst, in, kPageSize);
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

void DiskManager::CorruptStoredPage(PageId id, uint32_t bit_index) {
  std::lock_guard<std::mutex> lock(mutex_);
  DSKS_CHECK_MSG(id < pages_.size(), "corrupt of unallocated page");
  DSKS_CHECK_MSG(bit_index < kPageSize * 8, "bit index out of page");
  pages_[id][bit_index / 8] ^= static_cast<char>(1u << (bit_index % 8));
}

void DiskManager::BindMetrics(obs::MetricsRegistry* registry,
                              const std::string& prefix) const {
  auto counter = [](const std::atomic<uint64_t>* c) {
    return [c] { return c->load(std::memory_order_relaxed); };
  };
  registry->BindSource(prefix + ".reads", counter(&stats_.reads));
  registry->BindSource(prefix + ".writes", counter(&stats_.writes));
  registry->BindSource(prefix + ".allocations", counter(&stats_.allocations));
  registry->BindSource(prefix + ".read_faults", counter(&stats_.read_faults));
  registry->BindSource(prefix + ".write_faults",
                       counter(&stats_.write_faults));
  registry->BindSource(prefix + ".corruptions_detected",
                       counter(&stats_.corruptions_detected));
  registry->BindSource(prefix + ".pages",
                       [this] { return static_cast<uint64_t>(num_pages()); });
}

}  // namespace dsks
