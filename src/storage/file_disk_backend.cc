#include "storage/file_disk_backend.h"

#include <fcntl.h>
#include <limits.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/macros.h"

namespace dsks {

namespace {

/// Sidecar layout: header {magic, page-allocation watermark} then
/// `num_pages` little-endian u32 CRC32C values.
constexpr char kCrcMagic[8] = {'D', 'S', 'K', 'S', 'C', 'R', 'C', '1'};

struct CrcHeader {
  char magic[8];
  uint64_t num_pages;
};
static_assert(sizeof(CrcHeader) == 16, "sidecar header must be packed");

/// Grow the physical file in chunks so page allocation stays O(1)
/// amortised even for multi-GiB index builds.
constexpr size_t kMinPhysicalPages = 256;  // 1 MiB

/// Longest contiguous run merged into one vectored read: 64 pages
/// (256 KiB) is deep enough to amortise the syscall while staying well
/// under every platform's IOV_MAX.
constexpr size_t kMaxRunPages =
#ifdef IOV_MAX
    IOV_MAX < 64 ? IOV_MAX : 64;
#else
    16;
#endif

std::string ErrnoMessage(const char* op, const std::string& path, int err) {
  return std::string(op) + " " + path + ": " + std::strerror(err);
}

/// O_DIRECT transfers must use an aligned buffer; one page per thread is
/// enough because the buffer pool performs at most one disk op at a time
/// per calling thread.
char* AlignedBounceBuffer() {
  thread_local std::unique_ptr<char, decltype(&std::free)> buf(
      static_cast<char*>(std::aligned_alloc(kPageSize, kPageSize)),
      &std::free);
  DSKS_CHECK_MSG(buf != nullptr, "aligned_alloc failed");
  return buf.get();
}

/// pread with EINTR/partial-transfer retry. Returns bytes read (< count
/// only at end of file) or -1 with errno set.
ssize_t FullPread(int fd, char* buf, size_t count, off_t offset) {
  size_t done = 0;
  while (done < count) {
    const ssize_t n = ::pread(fd, buf + done, count - done,
                              offset + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) break;  // end of file
    done += static_cast<size_t>(n);
  }
  return static_cast<ssize_t>(done);
}

/// pwrite with EINTR/partial-transfer retry. Returns 0 or -1 with errno.
int FullPwrite(int fd, const char* buf, size_t count, off_t offset) {
  size_t done = 0;
  while (done < count) {
    const ssize_t n = ::pwrite(fd, buf + done, count - done,
                               offset + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    done += static_cast<size_t>(n);
  }
  return 0;
}

/// Opens the data file, falling back to buffered I/O when the filesystem
/// rejects O_DIRECT (tmpfs). `*o_direct` is updated to what actually took.
int OpenDataFile(const std::string& path, int base_flags, bool* o_direct) {
  if (*o_direct) {
#ifdef O_DIRECT
    const int fd = ::open(path.c_str(), base_flags | O_DIRECT, 0644);
    if (fd >= 0) return fd;
    if (errno != EINVAL) return -1;
#endif
    *o_direct = false;  // filesystem (or platform) can't do it; fall back
  }
  return ::open(path.c_str(), base_flags, 0644);
}

}  // namespace

FileDiskBackend::FileDiskBackend(std::string path, int data_fd, int crc_fd,
                                 bool o_direct)
    : path_(std::move(path)),
      crc_path_(path_ + ".crc"),
      data_fd_(data_fd),
      crc_fd_(crc_fd),
      o_direct_(o_direct) {}

FileDiskBackend::~FileDiskBackend() {
  // No implicit flush: durability is an explicit Flush(), and the torn
  // write tests rely on close-without-flush leaving a stale sidecar.
  if (data_fd_ >= 0) ::close(data_fd_);
  if (crc_fd_ >= 0) ::close(crc_fd_);
}

Status FileDiskBackend::Create(const DiskOptions& options,
                               std::unique_ptr<FileDiskBackend>* out) {
  if (options.path.empty()) {
    return Status::InvalidArgument("file backend requires a non-empty path");
  }
  bool o_direct = options.o_direct;
  const int data_fd = OpenDataFile(options.path,
                                   O_RDWR | O_CREAT | O_TRUNC, &o_direct);
  if (data_fd < 0) {
    return Status::IOError(ErrnoMessage("open", options.path, errno));
  }
  const std::string crc_path = options.path + ".crc";
  const int crc_fd = ::open(crc_path.c_str(), O_RDWR | O_CREAT | O_TRUNC,
                            0644);
  if (crc_fd < 0) {
    const int err = errno;
    ::close(data_fd);
    return Status::IOError(ErrnoMessage("open", crc_path, err));
  }
  out->reset(new FileDiskBackend(options.path, data_fd, crc_fd, o_direct));
  (*out)->SetupEngine(options);
  return Status::Ok();
}

Status FileDiskBackend::Open(const DiskOptions& options,
                             std::unique_ptr<FileDiskBackend>* out) {
  if (options.path.empty()) {
    return Status::InvalidArgument("file backend requires a non-empty path");
  }
  bool o_direct = options.o_direct;
  const int data_fd = OpenDataFile(options.path, O_RDWR, &o_direct);
  if (data_fd < 0) {
    return Status::IOError(ErrnoMessage("open", options.path, errno));
  }
  const std::string crc_path = options.path + ".crc";
  const int crc_fd = ::open(crc_path.c_str(), O_RDWR, 0644);
  if (crc_fd < 0) {
    const int err = errno;
    ::close(data_fd);
    if (err == ENOENT) {
      return Status::Corruption("checksum sidecar missing: " + crc_path);
    }
    return Status::IOError(ErrnoMessage("open", crc_path, err));
  }

  CrcHeader header;
  const ssize_t got = FullPread(crc_fd, reinterpret_cast<char*>(&header),
                                sizeof(header), 0);
  if (got < 0) {
    const int err = errno;
    ::close(data_fd);
    ::close(crc_fd);
    return Status::IOError(ErrnoMessage("pread", crc_path, err));
  }
  if (static_cast<size_t>(got) != sizeof(header) ||
      std::memcmp(header.magic, kCrcMagic, sizeof(kCrcMagic)) != 0) {
    ::close(data_fd);
    ::close(crc_fd);
    return Status::Corruption("checksum sidecar malformed: " + crc_path);
  }

  std::unique_ptr<FileDiskBackend> backend(
      new FileDiskBackend(options.path, data_fd, crc_fd, o_direct));
  backend->checksums_.resize(header.num_pages);
  // The sidecar on disk is authoritative for everything just loaded.
  backend->crc_dirty_.assign(header.num_pages, false);
  if (header.num_pages > 0) {
    const size_t bytes = header.num_pages * sizeof(uint32_t);
    const ssize_t n = FullPread(
        backend->crc_fd_, reinterpret_cast<char*>(backend->checksums_.data()),
        bytes, sizeof(CrcHeader));
    if (n < 0) {
      return Status::IOError(ErrnoMessage("pread", crc_path, errno));
    }
    if (static_cast<size_t>(n) != bytes) {
      return Status::Corruption("checksum sidecar truncated: " + crc_path);
    }
  }
  struct stat st;
  if (::fstat(backend->data_fd_, &st) != 0) {
    return Status::IOError(ErrnoMessage("fstat", options.path, errno));
  }
  backend->physical_pages_ =
      static_cast<size_t>(st.st_size + kPageSize - 1) / kPageSize;
  backend->SetupEngine(options);
  *out = std::move(backend);
  return Status::Ok();
}

void FileDiskBackend::SetupEngine(const DiskOptions& options) {
  if (options.io != IoMode::kAsync) {
    return;
  }
  if (!o_direct_) {
    // Heap frames are unaligned, so the kernel path is buffered-only;
    // O_DIRECT configurations take the worker pool, whose ReadPages
    // already bounces through aligned buffers.
    auto uring = IoUringIoEngine::Probe(
        data_fd_, options.io_depth, [this](PageReadRequest* r) {
          // Single-page retry with full ReadPage semantics: zero-fill
          // past the physical end, IOError/Corruption mapping, checksum
          // re-resolution.
          r->status = ReadPage(r->id, r->out, &r->expected_crc);
        });
    if (uring != nullptr) {
      uring_ = uring.get();
      engine_ = std::move(uring);
      return;
    }
  }
  engine_ = std::make_unique<WorkerPoolIoEngine>(
      [this](std::span<PageReadRequest> batch) { ReadPages(batch); },
      /*num_threads=*/2);
}

void FileDiskBackend::SubmitRead(std::vector<PageReadRequest> batch,
                                 ReadCompletion done) {
  if (engine_ == nullptr) {
    DiskBackend::SubmitRead(std::move(batch), std::move(done));
    return;
  }
  if (uring_ != nullptr) {
    // Pre-resolve the checksums the success path hands back with each
    // CQE; short or failed CQEs re-resolve through the fallback.
    std::lock_guard<std::mutex> lock(mutex_);
    for (PageReadRequest& r : batch) {
      DSKS_CHECK_MSG(r.id < checksums_.size(), "read of unallocated page");
      r.expected_crc = checksums_[r.id];
    }
  }
  AsyncReadBatch work;
  work.reqs = std::move(batch);
  work.done = std::move(done);
  engine_->Submit(std::move(work));
}

PageId FileDiskBackend::AllocatePage() {
  std::lock_guard<std::mutex> lock(mutex_);
  const PageId id = static_cast<PageId>(checksums_.size());
  checksums_.push_back(ZeroPageCrc());
  crc_dirty_.push_back(true);
  ++dirty_crc_count_;
  if (checksums_.size() > physical_pages_) {
    // Double the physical extent; ftruncate'd holes read back zeroed,
    // matching the checksum just recorded, so no page write is needed.
    size_t grown = physical_pages_ < kMinPhysicalPages ? kMinPhysicalPages
                                                       : physical_pages_ * 2;
    if (grown < checksums_.size()) grown = checksums_.size();
    DSKS_CHECK_MSG(
        ::ftruncate(data_fd_, static_cast<off_t>(grown) * kPageSize) == 0,
        "ftruncate failed growing the index file (disk full?)");
    physical_pages_ = grown;
  }
  return id;
}

Status FileDiskBackend::PreadPage(PageId id, char* out) {
  char* dst = o_direct_ ? AlignedBounceBuffer() : out;
  const off_t offset = static_cast<off_t>(id) * kPageSize;
  const ssize_t n = FullPread(data_fd_, dst, kPageSize, offset);
  if (n < 0) {
    return Status::IOError(ErrnoMessage("pread", path_, errno) + " (page " +
                           std::to_string(id) + ")");
  }
  if (static_cast<size_t>(n) != kPageSize) {
    // Allocated page but the file ends mid-page: a torn/truncated file.
    return Status::Corruption("short read of page " + std::to_string(id) +
                              " (" + std::to_string(n) + " of " +
                              std::to_string(kPageSize) + " bytes): " + path_);
  }
  if (o_direct_) std::memcpy(out, dst, kPageSize);
  return Status::Ok();
}

Status FileDiskBackend::PwritePage(PageId id, const char* in) {
  const char* src = in;
  if (o_direct_) {
    char* bounce = AlignedBounceBuffer();
    std::memcpy(bounce, in, kPageSize);
    src = bounce;
  }
  const off_t offset = static_cast<off_t>(id) * kPageSize;
  if (FullPwrite(data_fd_, src, kPageSize, offset) != 0) {
    return Status::IOError(ErrnoMessage("pwrite", path_, errno) + " (page " +
                           std::to_string(id) + ")");
  }
  return Status::Ok();
}

Status FileDiskBackend::ReadPage(PageId id, char* out,
                                 uint32_t* expected_crc) {
  size_t physical;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DSKS_CHECK_MSG(id < checksums_.size(), "read of unallocated page");
    *expected_crc = checksums_[id];
    physical = physical_pages_;
  }
  if (id >= physical) {
    // Allocated but past the physical end (possible only after a foreign
    // truncate since AllocatePage grows the file): zero-fill so the
    // checksum check reports the damage instead of a raw syscall error.
    std::memset(out, 0, kPageSize);
    return Status::Ok();
  }
  return PreadPage(id, out);
}

void FileDiskBackend::ReadContiguousRun(PageReadRequest* run, size_t n) {
  if (n == 1) {
    run->status = PreadPage(run->id, run->out);
    return;
  }
  const off_t offset = static_cast<off_t>(run->id) * kPageSize;
  size_t full = 0;  // pages completely delivered by the vectored call
  if (!o_direct_) {
    struct iovec iov[kMaxRunPages];
    for (size_t k = 0; k < n; ++k) {
      iov[k].iov_base = run[k].out;
      iov[k].iov_len = kPageSize;
    }
    ssize_t got;
    do {
      got = ::preadv(data_fd_, iov, static_cast<int>(n), offset);
    } while (got < 0 && errno == EINTR);
    if (got > 0) {
      full = static_cast<size_t>(got) / kPageSize;
    }
  } else {
    // O_DIRECT transfers need an aligned buffer; one run-sized buffer and
    // a scatter copy keeps callers on ordinary heap frames.
    std::unique_ptr<char, decltype(&std::free)> buf(
        static_cast<char*>(std::aligned_alloc(kPageSize, n * kPageSize)),
        &std::free);
    DSKS_CHECK_MSG(buf != nullptr, "aligned_alloc failed");
    const ssize_t got = FullPread(data_fd_, buf.get(), n * kPageSize, offset);
    if (got > 0) {
      full = static_cast<size_t>(got) / kPageSize;
      for (size_t k = 0; k < full; ++k) {
        std::memcpy(run[k].out, buf.get() + k * kPageSize, kPageSize);
      }
    }
  }
  for (size_t k = 0; k < full; ++k) {
    run[k].status = Status::Ok();
  }
  // Pages the vectored call did not fully deliver — a device error, a
  // partial transfer, or a foreign-truncated file — retry one at a time so
  // each gets the single-page path's exact IOError/Corruption semantics.
  for (size_t k = full; k < n; ++k) {
    run[k].status = PreadPage(run[k].id, run[k].out);
  }
}

void FileDiskBackend::ReadPages(std::span<PageReadRequest> batch) {
  if (batch.empty()) {
    return;
  }
  size_t physical;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (PageReadRequest& r : batch) {
      DSKS_CHECK_MSG(r.id < checksums_.size(), "read of unallocated page");
      r.expected_crc = checksums_[r.id];
    }
    physical = physical_pages_;
  }
  size_t i = 0;
  while (i < batch.size()) {
    if (batch[i].id >= physical) {
      // Same contract as ReadPage: allocated but past the physical end
      // reads back as the zero page.
      std::memset(batch[i].out, 0, kPageSize);
      batch[i].status = Status::Ok();
      ++i;
      continue;
    }
    size_t j = i + 1;
    while (j < batch.size() && j - i < kMaxRunPages &&
           batch[j].id == batch[j - 1].id + 1 && batch[j].id < physical) {
      ++j;
    }
    ReadContiguousRun(&batch[i], j - i);
    i = j;
  }
}

Status FileDiskBackend::WritePage(PageId id, const char* in, uint32_t crc) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DSKS_CHECK_MSG(id < checksums_.size(), "write of unallocated page");
  }
  DSKS_RETURN_IF_ERROR(PwritePage(id, in));
  // Only a successful write updates the recorded checksum; a failed or
  // torn one leaves the stale CRC to flag the page on its next cold read.
  std::lock_guard<std::mutex> lock(mutex_);
  checksums_[id] = crc;
  if (!crc_dirty_[id]) {
    crc_dirty_[id] = true;
    ++dirty_crc_count_;
  }
  return Status::Ok();
}

Status FileDiskBackend::TruncatePages(size_t new_num_pages) {
  std::lock_guard<std::mutex> lock(mutex_);
  DSKS_CHECK_MSG(new_num_pages <= checksums_.size(),
                 "truncate beyond the allocation watermark");
  for (size_t i = new_num_pages; i < crc_dirty_.size(); ++i) {
    if (crc_dirty_[i]) --dirty_crc_count_;
  }
  checksums_.resize(new_num_pages);
  crc_dirty_.resize(new_num_pages);
  if (::ftruncate(data_fd_,
                  static_cast<off_t>(new_num_pages) * kPageSize) != 0) {
    return Status::IOError(ErrnoMessage("ftruncate", path_, errno));
  }
  physical_pages_ = new_num_pages;
  return Status::Ok();
}

Status FileDiskBackend::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Trim the physical extent to the watermark so the on-disk size equals
  // num_pages() * kPageSize exactly (stable across build/flush/reopen).
  if (::ftruncate(data_fd_,
                  static_cast<off_t>(checksums_.size()) * kPageSize) != 0) {
    return Status::IOError(ErrnoMessage("ftruncate", path_, errno));
  }
  physical_pages_ = checksums_.size();

  CrcHeader header;
  std::memcpy(header.magic, kCrcMagic, sizeof(kCrcMagic));
  header.num_pages = checksums_.size();
  if (FullPwrite(crc_fd_, reinterpret_cast<const char*>(&header),
                 sizeof(header), 0) != 0) {
    return Status::IOError(ErrnoMessage("pwrite", crc_path_, errno));
  }
  // Rewrite only the entries dirtied since the last flush, coalescing
  // them into contiguous pwrites. Entries never flushed before are dirty
  // by construction (AllocatePage marks them), so skipping clean ones can
  // never leave a hole in the sidecar. A flush after W page writes costs
  // O(W), not O(all pages) — the difference between a checkpoint and a
  // full sidecar rewrite on a big index.
  if (dirty_crc_count_ > 0) {
    size_t i = 0;
    const size_t n = checksums_.size();
    while (i < n) {
      if (!crc_dirty_[i]) {
        ++i;
        continue;
      }
      size_t j = i + 1;
      while (j < n && crc_dirty_[j]) {
        ++j;
      }
      if (FullPwrite(
              crc_fd_,
              reinterpret_cast<const char*>(checksums_.data() + i),
              (j - i) * sizeof(uint32_t),
              static_cast<off_t>(sizeof(CrcHeader) + i * sizeof(uint32_t))) !=
          0) {
        return Status::IOError(ErrnoMessage("pwrite", crc_path_, errno));
      }
      crc_entries_rewritten_ += j - i;
      i = j;
    }
  }
  const off_t crc_size = static_cast<off_t>(
      sizeof(CrcHeader) + checksums_.size() * sizeof(uint32_t));
  if (::ftruncate(crc_fd_, crc_size) != 0) {
    return Status::IOError(ErrnoMessage("ftruncate", crc_path_, errno));
  }
  if (::fsync(data_fd_) != 0) {
    return Status::IOError(ErrnoMessage("fsync", path_, errno));
  }
  if (::fsync(crc_fd_) != 0) {
    return Status::IOError(ErrnoMessage("fsync", crc_path_, errno));
  }
  // Entries are clean only once they are durable: clearing the bits after
  // the fsyncs means a failed flush retries every still-dirty entry.
  crc_dirty_.assign(crc_dirty_.size(), false);
  dirty_crc_count_ = 0;
  return Status::Ok();
}

uint64_t FileDiskBackend::crc_entries_rewritten() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return crc_entries_rewritten_;
}

void FileDiskBackend::CorruptStoredPage(PageId id, uint32_t bit_index) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DSKS_CHECK_MSG(id < checksums_.size(), "corrupt of unallocated page");
    DSKS_CHECK_MSG(bit_index < kPageSize * 8, "bit index out of page");
  }
  // Read-modify-write of the whole page keeps the path O_DIRECT-clean.
  // A local buffer, not the bounce buffer: PreadPage/PwritePage use that
  // one themselves when O_DIRECT is active.
  auto page = std::make_unique<char[]>(kPageSize);
  uint32_t unused_crc = 0;
  DSKS_CHECK_MSG(ReadPage(id, page.get(), &unused_crc).ok(),
                 "CorruptStoredPage: read failed");
  page[bit_index / 8] ^= static_cast<char>(1u << (bit_index % 8));
  DSKS_CHECK_MSG(PwritePage(id, page.get()).ok(),
                 "CorruptStoredPage: write-back failed");
}

size_t FileDiskBackend::num_pages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return checksums_.size();
}

}  // namespace dsks
