#include "storage/sim_disk_backend.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "common/macros.h"

namespace dsks {

namespace {

void SpinForMicros(double us) {
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::nanoseconds(
                                    static_cast<int64_t>(us * 1000.0));
  while (std::chrono::steady_clock::now() < deadline) {
    // busy wait: simulated device latency
  }
}

}  // namespace

PageId SimDiskBackend::AllocatePage() {
  auto page = std::make_unique<char[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  const uint32_t zero_crc = ZeroPageCrc();
  std::lock_guard<std::mutex> lock(mutex_);
  pages_.push_back(std::move(page));
  checksums_.push_back(zero_crc);
  return static_cast<PageId>(pages_.size() - 1);
}

Status SimDiskBackend::ReadPage(PageId id, char* out,
                                uint32_t* expected_crc) {
  const char* src;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DSKS_CHECK_MSG(id < pages_.size(), "read of unallocated page");
    src = pages_[id].get();
    *expected_crc = checksums_[id];
  }
  // Wait and copy outside the mutex so concurrent reads overlap.
  const double delay = read_delay_us_.load(std::memory_order_relaxed);
  if (delay > 0.0) {
    if (read_delay_yields_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(delay));
    } else {
      SpinForMicros(delay);
    }
  }
  std::memcpy(out, src, kPageSize);
  return Status::Ok();
}

void SimDiskBackend::ReadPages(std::span<PageReadRequest> batch) {
  if (batch.empty()) {
    return;
  }
  std::vector<const char*> srcs(batch.size());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t i = 0; i < batch.size(); ++i) {
      DSKS_CHECK_MSG(batch[i].id < pages_.size(), "read of unallocated page");
      srcs[i] = pages_[batch[i].id].get();
      batch[i].expected_crc = checksums_[batch[i].id];
    }
  }
  // One simulated device round trip for the whole batch: this latency
  // discount is exactly what batched I/O buys on a real disk.
  const double delay = read_delay_us_.load(std::memory_order_relaxed);
  if (delay > 0.0) {
    if (read_delay_yields_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(delay));
    } else {
      SpinForMicros(delay);
    }
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    std::memcpy(batch[i].out, srcs[i], kPageSize);
    batch[i].status = Status::Ok();
  }
}

Status SimDiskBackend::WritePage(PageId id, const char* in, uint32_t crc) {
  char* dst;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DSKS_CHECK_MSG(id < pages_.size(), "write of unallocated page");
    dst = pages_[id].get();
    checksums_[id] = crc;
  }
  std::memcpy(dst, in, kPageSize);
  return Status::Ok();
}

Status SimDiskBackend::TruncatePages(size_t new_num_pages) {
  std::lock_guard<std::mutex> lock(mutex_);
  DSKS_CHECK_MSG(new_num_pages <= pages_.size(),
                 "truncate beyond the allocation watermark");
  pages_.resize(new_num_pages);
  checksums_.resize(new_num_pages);
  return Status::Ok();
}

void SimDiskBackend::CorruptStoredPage(PageId id, uint32_t bit_index) {
  std::lock_guard<std::mutex> lock(mutex_);
  DSKS_CHECK_MSG(id < pages_.size(), "corrupt of unallocated page");
  DSKS_CHECK_MSG(bit_index < kPageSize * 8, "bit index out of page");
  pages_[id][bit_index / 8] ^= static_cast<char>(1u << (bit_index % 8));
}

size_t SimDiskBackend::num_pages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pages_.size();
}

}  // namespace dsks
