#include "storage/sim_disk_backend.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/macros.h"

namespace dsks {

namespace {

void SpinForMicros(double us) {
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::nanoseconds(
                                    static_cast<int64_t>(us * 1000.0));
  while (std::chrono::steady_clock::now() < deadline) {
    // busy wait: simulated device latency
  }
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Deterministic per-op latency jitter for the async completion path:
/// op counter -> factor in [0.75, 1.25). Fixed seed — the point is
/// reproducible reordering, not configurable noise.
double JitterFactor(uint64_t op) {
  constexpr uint64_t kJitterSeed = 0xD5A61D5Cull;
  const uint64_t h = SplitMix64(op ^ kJitterSeed);
  const double unit =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
  return 0.75 + 0.5 * unit;
}

}  // namespace

SimDiskBackend::SimDiskBackend(const DiskOptions& options) {
  if (options.io == IoMode::kAsync) {
    // One worker per ~8 pages of configured queue depth (a batch is a
    // few to 32 pages): each worker sleeping a round trip models one
    // command in flight on the device, so io_depth buys overlapped round
    // trips like NCQ does. Workers spend their lives asleep in the
    // simulated latency, so even on a single core a handful of them costs
    // nothing — they hold no CPU while a query computes.
    const size_t workers =
        std::min<size_t>(8, std::max<size_t>(2, options.io_depth / 8));
    engine_ = std::make_unique<WorkerPoolIoEngine>(
        [this](std::span<PageReadRequest> batch) { ReadPagesOnEngine(batch); },
        workers);
  }
}

PageId SimDiskBackend::AllocatePage() {
  auto page = std::make_unique<char[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  const uint32_t zero_crc = ZeroPageCrc();
  std::lock_guard<std::mutex> lock(mutex_);
  pages_.push_back(std::move(page));
  checksums_.push_back(zero_crc);
  return static_cast<PageId>(pages_.size() - 1);
}

Status SimDiskBackend::ReadPage(PageId id, char* out,
                                uint32_t* expected_crc) {
  const char* src;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DSKS_CHECK_MSG(id < pages_.size(), "read of unallocated page");
    src = pages_[id].get();
    *expected_crc = checksums_[id];
  }
  // Wait and copy outside the mutex so concurrent reads overlap.
  const double delay = read_delay_us_.load(std::memory_order_relaxed);
  if (delay > 0.0) {
    if (read_delay_yields_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(delay));
    } else {
      SpinForMicros(delay);
    }
  }
  std::memcpy(out, src, kPageSize);
  return Status::Ok();
}

void SimDiskBackend::ReadPages(std::span<PageReadRequest> batch) {
  if (batch.empty()) {
    return;
  }
  std::vector<const char*> srcs(batch.size());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t i = 0; i < batch.size(); ++i) {
      DSKS_CHECK_MSG(batch[i].id < pages_.size(), "read of unallocated page");
      srcs[i] = pages_[batch[i].id].get();
      batch[i].expected_crc = checksums_[batch[i].id];
    }
  }
  // One simulated device round trip for the whole batch: this latency
  // discount is exactly what batched I/O buys on a real disk.
  const double delay = read_delay_us_.load(std::memory_order_relaxed);
  if (delay > 0.0) {
    if (read_delay_yields_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(delay));
    } else {
      SpinForMicros(delay);
    }
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    std::memcpy(batch[i].out, srcs[i], kPageSize);
    batch[i].status = Status::Ok();
  }
}

void SimDiskBackend::ReadPagesOnEngine(std::span<PageReadRequest> batch) {
  if (batch.empty()) {
    return;
  }
  std::vector<const char*> srcs(batch.size());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t i = 0; i < batch.size(); ++i) {
      DSKS_CHECK_MSG(batch[i].id < pages_.size(), "read of unallocated page");
      srcs[i] = pages_[batch[i].id].get();
      batch[i].expected_crc = checksums_[batch[i].id];
    }
  }
  // The delay lands here, on the completion path: the issuing thread kept
  // computing the moment Submit returned, which is the overlap the async
  // mode models. Same cost unit as the sync path — one round trip per
  // batch — so the two regimes simulate the same device; only *who* waits
  // differs. Deterministic per-op jitter makes completions of concurrent
  // batches interleave the same way on every run. Always a sleep, never a
  // spin: a spinning engine thread would steal the very CPU the issuer
  // overlaps with (this box has one core).
  const double base = read_delay_us_.load(std::memory_order_relaxed);
  if (base > 0.0) {
    const uint64_t op = async_read_ops_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(
        base * JitterFactor(op)));
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    std::memcpy(batch[i].out, srcs[i], kPageSize);
    batch[i].status = Status::Ok();
  }
}

void SimDiskBackend::SubmitRead(std::vector<PageReadRequest> batch,
                                ReadCompletion done) {
  if (engine_ == nullptr) {
    DiskBackend::SubmitRead(std::move(batch), std::move(done));
    return;
  }
  AsyncReadBatch work;
  work.reqs = std::move(batch);
  work.done = std::move(done);
  engine_->Submit(std::move(work));
}

Status SimDiskBackend::WritePage(PageId id, const char* in, uint32_t crc) {
  char* dst;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DSKS_CHECK_MSG(id < pages_.size(), "write of unallocated page");
    dst = pages_[id].get();
    checksums_[id] = crc;
  }
  std::memcpy(dst, in, kPageSize);
  return Status::Ok();
}

Status SimDiskBackend::TruncatePages(size_t new_num_pages) {
  std::lock_guard<std::mutex> lock(mutex_);
  DSKS_CHECK_MSG(new_num_pages <= pages_.size(),
                 "truncate beyond the allocation watermark");
  pages_.resize(new_num_pages);
  checksums_.resize(new_num_pages);
  return Status::Ok();
}

void SimDiskBackend::CorruptStoredPage(PageId id, uint32_t bit_index) {
  std::lock_guard<std::mutex> lock(mutex_);
  DSKS_CHECK_MSG(id < pages_.size(), "corrupt of unallocated page");
  DSKS_CHECK_MSG(bit_index < kPageSize * 8, "bit index out of page");
  pages_[id][bit_index / 8] ^= static_cast<char>(1u << (bit_index % 8));
}

size_t SimDiskBackend::num_pages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pages_.size();
}

}  // namespace dsks
