#include "spatial/mbr.h"

#include <cmath>

namespace dsks {

double Mbr::MinDistance(const Point& p) const {
  double dx = 0.0;
  if (p.x < min_x) {
    dx = min_x - p.x;
  } else if (p.x > max_x) {
    dx = p.x - max_x;
  }
  double dy = 0.0;
  if (p.y < min_y) {
    dy = min_y - p.y;
  } else if (p.y > max_y) {
    dy = p.y - max_y;
  }
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace dsks
