#ifndef DSKS_SPATIAL_POINT_H_
#define DSKS_SPATIAL_POINT_H_

#include <cmath>

namespace dsks {

/// A location in the 2-dimensional space the paper scales all datasets to
/// ([0, 10000] x [0, 10000], §5).
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Euclidean distance between two points. Used for edge lengths and for
/// snapping objects to their closest road segment; query processing itself
/// always uses network distance.
inline double EuclideanDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace dsks

#endif  // DSKS_SPATIAL_POINT_H_
