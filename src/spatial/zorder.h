#ifndef DSKS_SPATIAL_ZORDER_H_
#define DSKS_SPATIAL_ZORDER_H_

#include <cstdint>

#include "spatial/point.h"

namespace dsks {

/// Z-order (Morton) codes over the [0, 10000]^2 data space, quantized to
/// 16 bits per dimension. Used to (a) cluster road nodes into CCAM pages
/// (§2.2) and (b) key edges in the per-keyword inverted-file B+trees by the
/// Z-ordering of their center points (§3.1).
class ZOrder {
 public:
  /// Extent of the data space; the paper scales every dataset into
  /// [0, 10000]^2 (§5).
  static constexpr double kSpaceMin = 0.0;
  static constexpr double kSpaceMax = 10000.0;
  static constexpr uint32_t kBitsPerDim = 16;
  static constexpr uint32_t kCellsPerDim = 1u << kBitsPerDim;

  /// Morton code of a point; interleaves the quantized x and y bits.
  static uint64_t Encode(const Point& p);

  /// Morton code from already-quantized cell coordinates.
  static uint64_t EncodeCell(uint32_t cx, uint32_t cy);

  /// Inverse of EncodeCell.
  static void DecodeCell(uint64_t code, uint32_t* cx, uint32_t* cy);

  /// Center of the cell a code addresses (round trip is lossy by at most
  /// half a cell width per dimension).
  static Point DecodeApprox(uint64_t code);

  /// Quantizes one coordinate to its cell index.
  static uint32_t Quantize(double v);

 private:
  static uint64_t SpreadBits(uint32_t v);
  static uint32_t CompactBits(uint64_t v);
};

}  // namespace dsks

#endif  // DSKS_SPATIAL_ZORDER_H_
