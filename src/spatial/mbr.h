#ifndef DSKS_SPATIAL_MBR_H_
#define DSKS_SPATIAL_MBR_H_

#include <algorithm>
#include <limits>

#include "spatial/point.h"

namespace dsks {

/// Axis-aligned minimum bounding rectangle, the unit of organization in the
/// network R-tree over road-segment extents (§2.2) and in the inverted
/// R-tree baseline (§5).
struct Mbr {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  /// An MBR containing nothing; Extend()ing it yields the argument.
  static Mbr Empty() { return Mbr(); }

  static Mbr FromPoint(const Point& p) { return Mbr{p.x, p.y, p.x, p.y}; }

  static Mbr FromPoints(const Point& a, const Point& b) {
    return Mbr{std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x),
               std::max(a.y, b.y)};
  }

  bool IsEmpty() const { return min_x > max_x; }

  void Extend(const Mbr& other) {
    min_x = std::min(min_x, other.min_x);
    min_y = std::min(min_y, other.min_y);
    max_x = std::max(max_x, other.max_x);
    max_y = std::max(max_y, other.max_y);
  }

  void Extend(const Point& p) { Extend(FromPoint(p)); }

  bool Intersects(const Mbr& other) const {
    return !(other.min_x > max_x || other.max_x < min_x ||
             other.min_y > max_y || other.max_y < min_y);
  }

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  Point Center() const {
    return Point{(min_x + max_x) / 2.0, (min_y + max_y) / 2.0};
  }

  double Area() const {
    if (IsEmpty()) return 0.0;
    return (max_x - min_x) * (max_y - min_y);
  }

  /// Area growth if `other` were merged in; the ChooseSubtree criterion.
  double Enlargement(const Mbr& other) const {
    Mbr merged = *this;
    merged.Extend(other);
    return merged.Area() - Area();
  }

  /// Minimum Euclidean distance from `p` to this rectangle (0 if inside).
  double MinDistance(const Point& p) const;
};

}  // namespace dsks

#endif  // DSKS_SPATIAL_MBR_H_
