#include "spatial/zorder.h"

#include <algorithm>

namespace dsks {

uint32_t ZOrder::Quantize(double v) {
  double clamped = std::clamp(v, kSpaceMin, kSpaceMax);
  double norm = (clamped - kSpaceMin) / (kSpaceMax - kSpaceMin);
  auto cell = static_cast<uint32_t>(norm * (kCellsPerDim - 1));
  return std::min(cell, kCellsPerDim - 1);
}

uint64_t ZOrder::SpreadBits(uint32_t v) {
  uint64_t x = v;
  x = (x | (x << 16)) & 0x0000FFFF0000FFFFULL;
  x = (x | (x << 8)) & 0x00FF00FF00FF00FFULL;
  x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0FULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

uint32_t ZOrder::CompactBits(uint64_t v) {
  uint64_t x = v & 0x5555555555555555ULL;
  x = (x | (x >> 1)) & 0x3333333333333333ULL;
  x = (x | (x >> 2)) & 0x0F0F0F0F0F0F0F0FULL;
  x = (x | (x >> 4)) & 0x00FF00FF00FF00FFULL;
  x = (x | (x >> 8)) & 0x0000FFFF0000FFFFULL;
  x = (x | (x >> 16)) & 0x00000000FFFFFFFFULL;
  return static_cast<uint32_t>(x);
}

uint64_t ZOrder::EncodeCell(uint32_t cx, uint32_t cy) {
  return SpreadBits(cx) | (SpreadBits(cy) << 1);
}

void ZOrder::DecodeCell(uint64_t code, uint32_t* cx, uint32_t* cy) {
  *cx = CompactBits(code);
  *cy = CompactBits(code >> 1);
}

uint64_t ZOrder::Encode(const Point& p) {
  return EncodeCell(Quantize(p.x), Quantize(p.y));
}

Point ZOrder::DecodeApprox(uint64_t code) {
  uint32_t cx = 0;
  uint32_t cy = 0;
  DecodeCell(code, &cx, &cy);
  const double cell_w = (kSpaceMax - kSpaceMin) / (kCellsPerDim - 1);
  return Point{kSpaceMin + cx * cell_w, kSpaceMin + cy * cell_w};
}

}  // namespace dsks
