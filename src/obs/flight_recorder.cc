#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "obs/metrics.h"

namespace dsks::obs {

namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out->append(buf);
}

/// Min-heap order on total_ms: the root is the cheapest retained record,
/// i.e. the one a slower newcomer evicts.
bool SlowerThan(const QuerySummary& a, const QuerySummary& b) {
  return a.total_ms > b.total_ms;
}

void AppendSummaryJson(std::string* out, const QuerySummary& s) {
  AppendF(out,
          "{\"seq\":%llu,\"kind\":\"%s\",\"terms\":%u,\"status\":\"%s\","
          "\"traced\":%s,\"ms\":%.6f,\"io\":{\"pool_hits\":%llu,"
          "\"pool_misses\":%llu,\"disk_reads\":%llu,\"disk_writes\":%llu,"
          "\"prefetched_pages\":%llu}",
          static_cast<unsigned long long>(s.seq), s.kind, s.terms, s.status,
          s.traced ? "true" : "false", s.total_ms,
          static_cast<unsigned long long>(s.total_io.pool_hits),
          static_cast<unsigned long long>(s.total_io.pool_misses),
          static_cast<unsigned long long>(s.total_io.disk_reads),
          static_cast<unsigned long long>(s.total_io.disk_writes),
          static_cast<unsigned long long>(s.total_io.prefetched_pages));
  if (s.traced) {
    out->append(",\"phases\":{");
    bool first = true;
    for (size_t p = 0; p < kNumPhases; ++p) {
      if (s.phase_exclusive_ns[p] == 0 && s.phase_io[p] == IoCounters{}) {
        continue;
      }
      if (!first) {
        out->append(",");
      }
      first = false;
      AppendF(out,
              "\"%s\":{\"own_ms\":%.6f,\"pool_hits\":%llu,"
              "\"pool_misses\":%llu,\"disk_reads\":%llu}",
              PhaseName(static_cast<Phase>(p)),
              static_cast<double>(s.phase_exclusive_ns[p]) / 1e6,
              static_cast<unsigned long long>(s.phase_io[p].pool_hits),
              static_cast<unsigned long long>(s.phase_io[p].pool_misses),
              static_cast<unsigned long long>(s.phase_io[p].disk_reads));
    }
    out->append("}");
  }
  out->append("}");
}

void AppendSummaryText(std::string* out, const QuerySummary& s) {
  AppendF(out, "#%-8llu %-10s %5u terms %-16s %10.3f ms %6llu rd %6llu miss%s\n",
          static_cast<unsigned long long>(s.seq), s.kind, s.terms, s.status,
          s.total_ms,
          static_cast<unsigned long long>(s.total_io.disk_reads),
          static_cast<unsigned long long>(s.total_io.pool_misses),
          s.traced ? "  [traced]" : "");
}

}  // namespace

FlightRecorder::FlightRecorder() : FlightRecorder(Options()) {}

FlightRecorder::FlightRecorder(const Options& options) : options_(options) {
  recent_.reserve(options_.recent_capacity);
  errors_.reserve(options_.error_capacity);
  slowest_.reserve(options_.slow_capacity);
}

void FlightRecorder::FileIntoRingLocked(std::vector<QuerySummary>* ring,
                                        size_t* next, size_t capacity,
                                        const QuerySummary& s) {
  if (capacity == 0) {
    return;
  }
  if (ring->size() < capacity) {
    ring->push_back(s);
  } else {
    (*ring)[*next % capacity] = s;
  }
  ++*next;
}

uint64_t FlightRecorder::Record(QuerySummary summary) {
  std::lock_guard<std::mutex> lock(mu_);
  summary.seq = ++recorded_;
  FileIntoRingLocked(&recent_, &recent_next_, options_.recent_capacity,
                     summary);
  if (summary.error) {
    FileIntoRingLocked(&errors_, &error_next_, options_.error_capacity,
                       summary);
  }
  if (options_.slow_capacity > 0) {
    if (slowest_.size() < options_.slow_capacity) {
      slowest_.push_back(summary);
      std::push_heap(slowest_.begin(), slowest_.end(), SlowerThan);
    } else if (summary.total_ms > slowest_.front().total_ms) {
      std::pop_heap(slowest_.begin(), slowest_.end(), SlowerThan);
      slowest_.back() = summary;
      std::push_heap(slowest_.begin(), slowest_.end(), SlowerThan);
    }
  }
  UpdateGaugeLocked();
  return summary.seq;
}

FlightRecorder::Snapshot FlightRecorder::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.recorded = recorded_;
  snap.recent.reserve(recent_.size());
  for (size_t k = 0; k < recent_.size(); ++k) {
    // Walk the ring backwards from the newest slot.
    const size_t pos =
        (recent_next_ - 1 - k) % options_.recent_capacity;
    snap.recent.push_back(recent_[pos]);
  }
  snap.errors.reserve(errors_.size());
  for (size_t k = 0; k < errors_.size(); ++k) {
    const size_t pos = (error_next_ - 1 - k) % options_.error_capacity;
    snap.errors.push_back(errors_[pos]);
  }
  snap.slowest = slowest_;
  std::sort(snap.slowest.begin(), snap.slowest.end(), SlowerThan);
  return snap;
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  recorded_ = 0;
  recent_.clear();
  recent_next_ = 0;
  errors_.clear();
  error_next_ = 0;
  slowest_.clear();
  UpdateGaugeLocked();
}

size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recent_.size() + errors_.size() + slowest_.size();
}

uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

void FlightRecorder::set_occupancy_gauge(Gauge* gauge) {
  std::lock_guard<std::mutex> lock(mu_);
  occupancy_ = gauge;
  UpdateGaugeLocked();
}

void FlightRecorder::UpdateGaugeLocked() {
  if (occupancy_ != nullptr) {
    occupancy_->Set(static_cast<double>(recent_.size() + errors_.size() +
                                        slowest_.size()));
  }
}

std::string FlightRecorder::ToText() const {
  const Snapshot snap = TakeSnapshot();
  std::string out;
  AppendF(&out, "flight recorder: %llu queries recorded\n",
          static_cast<unsigned long long>(snap.recorded));
  out.append("--- slowest ---\n");
  for (const QuerySummary& s : snap.slowest) {
    AppendSummaryText(&out, s);
  }
  out.append("--- errors (newest first) ---\n");
  for (const QuerySummary& s : snap.errors) {
    AppendSummaryText(&out, s);
  }
  out.append("--- recent (newest first) ---\n");
  for (const QuerySummary& s : snap.recent) {
    AppendSummaryText(&out, s);
  }
  return out;
}

std::string FlightRecorder::ToJson() const {
  const Snapshot snap = TakeSnapshot();
  std::string out;
  AppendF(&out, "{\"recorded\":%llu",
          static_cast<unsigned long long>(snap.recorded));
  const struct {
    const char* name;
    const std::vector<QuerySummary>* list;
  } regions[] = {{"recent", &snap.recent},
                 {"slowest", &snap.slowest},
                 {"errors", &snap.errors}};
  for (const auto& region : regions) {
    AppendF(&out, ",\"%s\":[", region.name);
    for (size_t i = 0; i < region.list->size(); ++i) {
      if (i > 0) {
        out.append(",");
      }
      AppendSummaryJson(&out, (*region.list)[i]);
    }
    out.append("]");
  }
  out.append("}");
  return out;
}

}  // namespace dsks::obs
