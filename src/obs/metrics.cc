#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <limits>

#include "common/macros.h"

namespace dsks::obs {

namespace {

constexpr double kFirstUpperMs = 0.001;  // 1 µs
constexpr double kGrowth = 1.25;

/// Precomputed bucket upper bounds, shared by BucketIndex and rendering.
const std::array<double, Histogram::kNumBuckets>& BucketBounds() {
  static const auto bounds = [] {
    std::array<double, Histogram::kNumBuckets> b{};
    double ub = kFirstUpperMs;
    for (size_t i = 0; i < b.size(); ++i) {
      b[i] = ub;
      ub *= kGrowth;
    }
    return b;
  }();
  return bounds;
}

}  // namespace

double NearestRankPercentile(std::span<const double> sorted, int pct) {
  if (sorted.empty()) {
    return 0.0;
  }
  DSKS_CHECK_MSG(pct >= 0 && pct <= 100, "percentile must be in [0, 100]");
  // ceil(pct/100 · n) in exact integer arithmetic; the +99 trick cannot
  // overshoot past n (pct <= 100), and the max() keeps pct = 0 at rank 1.
  const size_t rank =
      std::max<size_t>(1, (sorted.size() * static_cast<size_t>(pct) + 99) / 100);
  return sorted[rank - 1];
}

double HistogramSnapshot::Percentile(int pct) const {
  if (count == 0) {
    return 0.0;
  }
  DSKS_CHECK_MSG(pct >= 0 && pct <= 100, "percentile must be in [0, 100]");
  const uint64_t rank = std::max<uint64_t>(
      1, (count * static_cast<uint64_t>(pct) + 99) / 100);  // ceil, 1-based
  // The extreme ranks are known exactly — the histogram tracks min/max.
  if (rank == 1) {
    return min;
  }
  if (rank >= count) {
    return max;
  }
  uint64_t cum = 0;  // samples in buckets before bucket i
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (cum + buckets[i] >= rank) {
      // Interpolate: model the bucket's samples as evenly spread, each at
      // the midpoint of its 1/n slice, and read the rank-th one. Clamp to
      // the observed range so a lone outlier bucket cannot report a value
      // no sample reached.
      const double lo = i == 0 ? 0.0 : Histogram::BucketUpperBound(i - 1);
      const double hi = Histogram::BucketUpperBound(i);
      const double pos = (static_cast<double>(rank - cum) - 0.5) /
                         static_cast<double>(buckets[i]);
      return std::clamp(lo + pos * (hi - lo), min, max);
    }
    cum += buckets[i];
  }
  return max;  // unreachable: bucket counts always sum to count
}

void HistogramSnapshot::MergeFrom(const HistogramSnapshot& other) {
  if (other.count == 0) {
    return;
  }
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
}

double Histogram::BucketUpperBound(size_t i) {
  DSKS_CHECK(i < kNumBuckets);
  return BucketBounds()[i];
}

size_t Histogram::BucketIndex(double ms) {
  const auto& bounds = BucketBounds();
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), ms);
  return it == bounds.end() ? kNumBuckets - 1
                            : static_cast<size_t>(it - bounds.begin());
}

void Histogram::AtomicAddDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void Histogram::AtomicMinDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v < cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Histogram::AtomicMaxDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v > cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Histogram::Record(double ms) {
  buckets_[BucketIndex(ms)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, ms);
  AtomicMinDouble(&min_, ms);
  AtomicMaxDouble(&max_, ms);
}

void Histogram::MergeFrom(const HistogramSnapshot& other) {
  if (other.count == 0) {
    return;
  }
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (other.buckets[i] != 0) {
      buckets_[i].fetch_add(other.buckets[i], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(other.count, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, other.sum);
  AtomicMinDouble(&min_, other.min);
  AtomicMaxDouble(&max_, other.max);
}

void Histogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = s.count == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

void MetricsRegistry::BindSource(const std::string& name,
                                 std::function<uint64_t()> read) {
  std::lock_guard<std::mutex> lock(mu_);
  sources_[name] = std::move(read);
}

void MetricsRegistry::UnbindSource(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  sources_.erase(name);
}

void MetricsRegistry::UnbindSourcesWithPrefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = sources_.lower_bound(prefix); it != sources_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;  // map is sorted; past the prefix range
    }
    it = sources_.erase(it);
  }
}

void MetricsRegistry::ResetOwned() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    c->Reset();
  }
  for (auto& [name, g] : gauges_) {
    g->Reset();
  }
  for (auto& [name, h] : histograms_) {
    h->Reset();
  }
}

namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out->append(buf);
}

/// Prometheus metric names allow [a-zA-Z0-9_:] only.
std::string Sanitize(const std::string& name) {
  std::string s = "dsks_";
  for (char c : name) {
    s.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  return s;
}

template <typename Map, typename ValueFn>
void JsonSection(std::string* out, const char* key, const Map& map,
                 ValueFn value, bool* first_section) {
  if (!*first_section) {
    out->append(",");
  }
  *first_section = false;
  AppendF(out, "\"%s\":{", key);
  bool first = true;
  for (const auto& [name, v] : map) {
    if (!first) {
      out->append(",");
    }
    first = false;
    AppendF(out, "\"%s\":", name.c_str());
    value(out, v);
  }
  out->append("}");
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first_section = true;
  JsonSection(&out, "counters", counters_,
              [](std::string* o, const std::unique_ptr<Counter>& c) {
                AppendF(o, "%llu",
                        static_cast<unsigned long long>(c->value()));
              },
              &first_section);
  JsonSection(&out, "gauges", gauges_,
              [](std::string* o, const std::unique_ptr<Gauge>& g) {
                AppendF(o, "%.6g", g->value());
              },
              &first_section);
  JsonSection(&out, "sources", sources_,
              [](std::string* o, const std::function<uint64_t()>& f) {
                AppendF(o, "%llu", static_cast<unsigned long long>(f()));
              },
              &first_section);
  JsonSection(&out, "histograms", histograms_,
              [](std::string* o, const std::unique_ptr<Histogram>& h) {
                const HistogramSnapshot s = h->Snapshot();
                AppendF(o,
                        "{\"count\":%llu,\"sum_ms\":%.6g,\"min_ms\":%.6g,"
                        "\"max_ms\":%.6g,\"avg_ms\":%.6g,\"p50_ms\":%.6g,"
                        "\"p95_ms\":%.6g,\"p99_ms\":%.6g}",
                        static_cast<unsigned long long>(s.count), s.sum,
                        s.min, s.max, s.avg(), s.Percentile(50),
                        s.Percentile(95), s.Percentile(99));
              },
              &first_section);
  out.append("}");
  return out;
}

std::string MetricsRegistry::ToPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    const std::string n = Sanitize(name);
    AppendF(&out, "# TYPE %s counter\n%s %llu\n", n.c_str(), n.c_str(),
            static_cast<unsigned long long>(c->value()));
  }
  for (const auto& [name, f] : sources_) {
    const std::string n = Sanitize(name);
    AppendF(&out, "# TYPE %s counter\n%s %llu\n", n.c_str(), n.c_str(),
            static_cast<unsigned long long>(f()));
  }
  for (const auto& [name, g] : gauges_) {
    const std::string n = Sanitize(name);
    AppendF(&out, "# TYPE %s gauge\n%s %.6g\n", n.c_str(), n.c_str(),
            g->value());
  }
  for (const auto& [name, h] : histograms_) {
    const std::string n = Sanitize(name);
    const HistogramSnapshot s = h->Snapshot();
    AppendF(&out, "# TYPE %s summary\n", n.c_str());
    AppendF(&out, "%s{quantile=\"0.5\"} %.6g\n", n.c_str(), s.Percentile(50));
    AppendF(&out, "%s{quantile=\"0.95\"} %.6g\n", n.c_str(),
            s.Percentile(95));
    AppendF(&out, "%s{quantile=\"0.99\"} %.6g\n", n.c_str(),
            s.Percentile(99));
    AppendF(&out, "%s_sum %.6g\n%s_count %llu\n", n.c_str(), s.sum,
            n.c_str(), static_cast<unsigned long long>(s.count));
  }
  return out;
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

}  // namespace dsks::obs
