#ifndef DSKS_OBS_FLIGHT_RECORDER_H_
#define DSKS_OBS_FLIGHT_RECORDER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/io_account.h"
#include "obs/trace.h"

namespace dsks::obs {

class Gauge;

/// One completed query, compressed to a fixed-size record: identity,
/// outcome, total cost, and (when the query ran traced) the per-phase
/// exclusive breakdown. `kind` and `status` are static-lifetime strings
/// (workload labels, Status::CodeName) so a record is trivially copyable
/// and recording never allocates.
struct QuerySummary {
  uint64_t seq = 0;  // assigned by FlightRecorder::Record, 1-based
  const char* kind = "query";
  uint32_t terms = 0;
  const char* status = "OK";
  bool error = false;
  bool traced = false;  // phase_* below carry real data
  double total_ms = 0.0;
  /// The query's exact I/O attribution (its context's counter delta).
  IoCounters total_io;
  std::array<int64_t, kNumPhases> phase_exclusive_ns{};
  std::array<IoCounters, kNumPhases> phase_io{};
};

/// Bounded in-memory record of completed queries — the part of the
/// telemetry you want when a live system misbehaves: what just ran, what
/// was slow, what failed. Three fixed-capacity regions, each preallocated
/// at construction:
///
///   recent  — ring of the last `recent_capacity` records, any outcome.
///   slowest — the top `slow_capacity` records by total_ms since the last
///             Clear, kept even after recency evicts them from the ring.
///   errors  — ring of the last `error_capacity` records with a non-OK
///             status, likewise retained past recency eviction.
///
/// Record is one short mutex hold, O(log slow_capacity), allocation-free;
/// snapshots and renderings copy out under the same mutex. An optional
/// occupancy gauge tracks the number of live slots across the regions.
class FlightRecorder {
 public:
  struct Options {
    size_t recent_capacity = 256;
    size_t slow_capacity = 16;
    size_t error_capacity = 64;
  };

  FlightRecorder();
  explicit FlightRecorder(const Options& options);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Stamps the record's seq (returned) and files it into every region it
  /// qualifies for. Thread-safe.
  uint64_t Record(QuerySummary summary);

  struct Snapshot {
    uint64_t recorded = 0;  // total Record calls since Clear
    std::vector<QuerySummary> recent;   // newest first
    std::vector<QuerySummary> slowest;  // slowest first
    std::vector<QuerySummary> errors;   // newest first
  };
  Snapshot TakeSnapshot() const;

  /// Drops every region and restarts seq numbering.
  void Clear();

  /// Live slots across the three regions (a query retained in two regions
  /// occupies two slots). This is what the occupancy gauge reports.
  size_t size() const;
  uint64_t recorded() const;

  /// Optional gauge kept equal to size(); pass null to detach. The gauge
  /// must outlive the recorder (registry-owned gauges do).
  void set_occupancy_gauge(Gauge* gauge);

  /// Human-readable dump: one line per record, region by region.
  std::string ToText() const;
  /// {"recorded":N,"recent":[...],"slowest":[...],"errors":[...]} with
  /// per-record phase breakdowns for traced entries.
  std::string ToJson() const;

 private:
  void FileIntoRingLocked(std::vector<QuerySummary>* ring, size_t* next,
                          size_t capacity, const QuerySummary& s);
  void UpdateGaugeLocked();

  const Options options_;

  mutable std::mutex mu_;
  uint64_t recorded_ = 0;
  // recent/errors are rings: position `next % capacity` is overwritten.
  std::vector<QuerySummary> recent_;
  size_t recent_next_ = 0;
  std::vector<QuerySummary> errors_;
  size_t error_next_ = 0;
  // slowest is a min-heap on total_ms, so the eviction candidate is root.
  std::vector<QuerySummary> slowest_;
  Gauge* occupancy_ = nullptr;
};

}  // namespace dsks::obs

#endif  // DSKS_OBS_FLIGHT_RECORDER_H_
