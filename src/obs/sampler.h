#ifndef DSKS_OBS_SAMPLER_H_
#define DSKS_OBS_SAMPLER_H_

#include <cstdint>

namespace dsks::obs {

/// Policy knobs for always-on sampled tracing. Default-constructed, both
/// mechanisms are off and the sampler costs one branch per query.
struct TraceSamplerConfig {
  /// Trace 1 query in N on each worker; 0 turns sampling off.
  uint32_t sample_every = 0;
  /// Queries at least this slow always get a flight-recorder entry, traced
  /// or not — the slow tail is exactly what a 1-in-N subset would miss.
  /// 0 disables the threshold.
  double slow_ms = 0.0;
  /// Shifts which positions of the 1-in-N stream are sampled, so repeated
  /// runs with the same seed trace the same queries.
  uint64_t seed = 0;
};

/// Per-worker sampling decisions, deterministic by construction: worker
/// `stream` with seed S samples query n of its own stream iff
/// (n + S + stream·phi) mod sample_every == 0 (phi spreads distinct
/// streams over distinct phases, so workers don't all trace their first
/// query in lockstep). No RNG, no atomics — each worker owns its sampler.
class TraceSampler {
 public:
  TraceSampler() = default;
  TraceSampler(const TraceSamplerConfig& config, uint64_t stream)
      : config_(config) {
    if (config_.sample_every > 0) {
      countdown_ = static_cast<uint32_t>(
          (config_.seed + stream * 0x9e3779b97f4a7c15ULL) %
          config_.sample_every);
    }
  }

  /// Pre-execution: should this query run traced? Advances the stream.
  bool ShouldTrace() {
    if (config_.sample_every == 0) {
      return false;
    }
    const bool hit = countdown_ == 0;
    countdown_ = hit ? config_.sample_every - 1 : countdown_ - 1;
    return hit;
  }

  /// Post-execution: should this query get a flight-recorder entry?
  /// Sampled queries always record; errored and over-threshold queries
  /// record even when they weren't in the sampled subset.
  bool ShouldRecord(bool traced, bool ok, double total_ms) const {
    if (traced || !ok) {
      return true;
    }
    return config_.slow_ms > 0.0 && total_ms >= config_.slow_ms;
  }

  const TraceSamplerConfig& config() const { return config_; }

 private:
  TraceSamplerConfig config_;
  uint32_t countdown_ = 0;  // queries until the next sampled one
};

}  // namespace dsks::obs

#endif  // DSKS_OBS_SAMPLER_H_
