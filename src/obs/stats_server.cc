#include "obs/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace dsks::obs {

namespace {

/// Largest request head we accept; a scrape's GET line + headers is far
/// smaller, anything bigger is garbage.
constexpr size_t kMaxRequestBytes = 4096;

void SendAll(int fd, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return;  // peer went away; nothing useful to do
    }
    sent += static_cast<size_t>(n);
  }
}

void SendResponse(int fd, const char* status_line, const char* content_type,
                  const std::string& body) {
  std::string head = "HTTP/1.1 ";
  head += status_line;
  head += "\r\nContent-Type: ";
  head += content_type;
  head += "\r\nContent-Length: " + std::to_string(body.size());
  head += "\r\nConnection: close\r\n\r\n";
  SendAll(fd, head.data(), head.size());
  SendAll(fd, body.data(), body.size());
}

}  // namespace

StatsServer::StatsServer(const MetricsRegistry* metrics,
                         const FlightRecorder* recorder)
    : metrics_(metrics), recorder_(recorder) {}

StatsServer::~StatsServer() { Stop(); }

Status StatsServer::Start(uint16_t port) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("stats server already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("stats server socket: ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("stats server bind/listen: " + err);
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("stats server getsockname: " + err);
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void StatsServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) {
    thread_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void StatsServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    // Poll with a timeout instead of blocking in accept() so Stop() is
    // honored within one tick without needing a self-connect wakeup.
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready <= 0) {
      continue;  // timeout or EINTR; re-check stop_
    }
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      continue;
    }
    // A stuck or malicious client must not wedge the accept loop forever.
    timeval tv{};
    tv.tv_sec = 2;
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    HandleConnection(conn);
    ::close(conn);
  }
}

void StatsServer::HandleConnection(int fd) {
  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      break;
    }
    request.append(buf, static_cast<size_t>(n));
  }
  // Parse "<METHOD> <path> HTTP/1.x" from the request line.
  const size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    SendResponse(fd, "400 Bad Request", "text/plain", "bad request\n");
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = path.find('?');
  if (query != std::string::npos) {
    path.resize(query);
  }
  if (method != "GET") {
    SendResponse(fd, "405 Method Not Allowed", "text/plain",
                 "GET only\n");
    return;
  }
  if (path == "/metrics" && metrics_ != nullptr) {
    SendResponse(fd, "200 OK", "text/plain; version=0.0.4",
                 metrics_->ToPrometheus());
  } else if (path == "/varz" && metrics_ != nullptr) {
    SendResponse(fd, "200 OK", "application/json", metrics_->ToJson());
  } else if (path == "/tracez" && recorder_ != nullptr) {
    SendResponse(fd, "200 OK", "application/json", recorder_->ToJson());
  } else if (path == "/healthz") {
    SendResponse(fd, "200 OK", "text/plain", "ok\n");
  } else {
    SendResponse(fd, "404 Not Found", "text/plain", "not found\n");
  }
}

}  // namespace dsks::obs
