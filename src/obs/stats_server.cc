#include "obs/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/flight_recorder.h"
#include "obs/http.h"
#include "obs/metrics.h"

namespace dsks::obs {

namespace {

/// Largest request head we accept; a scrape's GET line + headers is far
/// smaller, anything bigger is garbage.
constexpr size_t kMaxRequestBytes = 4096;

}  // namespace

StatsServer::StatsServer(const MetricsRegistry* metrics,
                         const FlightRecorder* recorder)
    : metrics_(metrics), recorder_(recorder) {}

StatsServer::~StatsServer() { Stop(); }

Status StatsServer::Start(uint16_t port) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("stats server already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("stats server socket: ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("stats server bind/listen: " + err);
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("stats server getsockname: " + err);
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void StatsServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) {
    thread_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void StatsServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    // Poll with a timeout instead of blocking in accept() so Stop() is
    // honored within one tick without needing a self-connect wakeup.
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready <= 0) {
      continue;  // timeout or EINTR; re-check stop_
    }
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      continue;
    }
    // Non-blocking I/O with an overall per-connection budget: a stuck,
    // malicious, or trickle-reading client is dropped after io_timeout_ms_
    // instead of wedging the accept loop for every other scraper.
    SetNonBlocking(conn);
    HandleConnection(conn);
    ::close(conn);
  }
}

void StatsServer::HandleConnection(int fd) {
  std::string request;
  if (!ReadHttpHeadWithDeadline(fd, &request, kMaxRequestBytes,
                                io_timeout_ms_)) {
    if (request.empty()) {
      return;  // nothing arrived within the budget
    }
  }
  HttpRequest parsed;
  HttpResponse response;
  if (!ParseHttpRequest(request, &parsed)) {
    response = {"400 Bad Request", "text/plain", "bad request\n"};
  } else {
    response = RenderObsRoute(parsed, metrics_, recorder_);
  }
  const std::string wire = FormatHttpResponse(response);
  SendAllWithDeadline(fd, wire.data(), wire.size(), io_timeout_ms_);
}

}  // namespace dsks::obs
