#ifndef DSKS_OBS_METRICS_H_
#define DSKS_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>

namespace dsks::obs {

/// Nearest-rank percentile of an already-sorted sample set: the 1-based
/// rank is ceil(pct/100 · n), clamped to [1, n]. This is the single
/// definition every latency summary in the repo uses (harness, executor,
/// benches); p99 of 100 samples is sorted[98], never sorted[99].
/// `pct` is an integer in [0, 100]; pct = 0 returns the minimum.
double NearestRankPercentile(std::span<const double> sorted, int pct);

/// Monotonically increasing event count. Relaxed atomic: concurrent
/// increments never serialize, reads are cheap and may lag by a few events
/// while writers run (same contract the storage-layer stats always had).
class Counter {
 public:
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Instantaneous value (pool capacity, frames in use, queries in flight).
/// Set is last-write-wins; Add/Sub are atomic CAS deltas, so concurrent
/// up/down movers (in-flight counts, ring occupancy) need no counter pair.
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  void Add(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
    }
  }
  void Sub(double v) { Add(-v); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Plain-struct copy of a Histogram, safe to pass around and compare; all
/// derived quantities (avg, percentiles) are computed on the snapshot so a
/// concurrently-updated histogram cannot tear mid-summary.
struct HistogramSnapshot {
  static constexpr size_t kNumBuckets = 96;

  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when count == 0
  double max = 0.0;
  std::array<uint64_t, kNumBuckets> buckets{};

  double avg() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }

  /// Nearest-rank percentile over the bucket counts, linearly interpolated
  /// within the bucket holding the rank: the rank-th sample is modelled at
  /// its proportional position inside the bucket (mid-offset, so a
  /// one-sample bucket reads its midpoint), clamped to the observed
  /// [min, max]. Worst-case error is one bucket width (~25% of the value)
  /// when the samples inside the bucket are maximally skewed, but unbiased
  /// in expectation — unlike the upper-bound rule this replaced, which
  /// always overestimated. pct 0 and 100 return the exact observed
  /// min/max.
  double Percentile(int pct) const;

  void MergeFrom(const HistogramSnapshot& other);
};

/// Fixed-bucket latency histogram (milliseconds): 96 geometric buckets
/// with ratio 1.25 starting at 1 µs, covering up to ~27 minutes. Record is
/// lock-free (one relaxed increment plus sum/min/max updates), Merge is a
/// per-bucket addition, so per-worker histograms merged after a run are
/// exactly the histogram a single pooled recorder would have produced.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = HistogramSnapshot::kNumBuckets;

  /// Upper bound of bucket `i` in ms; values v with
  /// BucketUpperBound(i-1) < v <= BucketUpperBound(i) land in bucket i.
  static double BucketUpperBound(size_t i);
  /// Bucket index that `ms` falls into (out-of-range values clamp to the
  /// first/last bucket).
  static size_t BucketIndex(double ms);

  void Record(double ms);
  void MergeFrom(const HistogramSnapshot& other);
  void Reset();

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  HistogramSnapshot Snapshot() const;

 private:
  static void AtomicAddDouble(std::atomic<double>* a, double v);
  static void AtomicMinDouble(std::atomic<double>* a, double v);
  static void AtomicMaxDouble(std::atomic<double>* a, double v);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  /// +inf sentinel while empty, so concurrent first Records need no
  /// initialization handshake; Snapshot maps the empty case back to 0.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{0.0};
};

/// Process-wide registry of named metrics. Owned metrics (counter / gauge /
/// histogram) are created on first lookup and live for the registry's
/// lifetime, so hot paths resolve a name once at setup and then touch only
/// the returned reference — no lock, no map probe per event.
///
/// Live *sources* expose counters owned elsewhere (the storage layer's
/// relaxed-atomic stats) without copying them: a source is a callback read
/// at dump time. The binder must unbind before the underlying object dies
/// (Database does this in its destructor; see BufferPool::BindMetrics).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the named metric, creating it on first use. The reference
  /// stays valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Registers a live read-only source; replaces any source of that name.
  void BindSource(const std::string& name, std::function<uint64_t()> read);
  void UnbindSource(const std::string& name);
  /// Drops every source whose name starts with `prefix` (a binder's
  /// teardown path; see class comment).
  void UnbindSourcesWithPrefix(const std::string& prefix);

  /// Zeroes every owned counter/gauge/histogram. Sources are not touched
  /// (their owners reset them, e.g. Database::ResetCounters).
  void ResetOwned();

  /// One JSON object: {"counters":{...},"gauges":{...},"sources":{...},
  /// "histograms":{name:{count,sum_ms,min_ms,max_ms,avg_ms,p50_ms,p95_ms,
  /// p99_ms}}}. Deterministic key order (sorted by name).
  std::string ToJson() const;

  /// Prometheus text exposition: counters and sources as counter samples,
  /// gauges as gauges, histograms as summaries with p50/p95/p99 quantiles.
  /// Names are sanitized ('.', '-' -> '_') and prefixed "dsks_".
  std::string ToPrometheus() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::function<uint64_t()>> sources_;
};

/// The process-wide registry (executor latencies, CLI dumps). Libraries
/// never bind to it implicitly — tests and tools choose what to expose.
MetricsRegistry& GlobalMetrics();

}  // namespace dsks::obs

#endif  // DSKS_OBS_METRICS_H_
