#ifndef DSKS_OBS_HTTP_H_
#define DSKS_OBS_HTTP_H_

#include <cstddef>
#include <string>

namespace dsks::obs {

class FlightRecorder;
class MetricsRegistry;

/// The request-line fields of a parsed HTTP/1.x request head. Any query
/// string is already stripped from `path`.
struct HttpRequest {
  std::string method;
  std::string path;
};

/// Parses "<METHOD> <path> HTTP/1.x" from a raw request head (everything
/// up to the blank line). Returns false on a malformed request line.
bool ParseHttpRequest(const std::string& head, HttpRequest* out);

/// One response, ready to serialize. `status_line` and `content_type` are
/// static-lifetime strings ("200 OK", "text/plain").
struct HttpResponse {
  const char* status_line = "200 OK";
  const char* content_type = "text/plain";
  std::string body;
};

/// Serializes head + body into one Connection: close HTTP/1.1 response.
std::string FormatHttpResponse(const HttpResponse& response);

/// The shared observability routes, mounted by both the stats server and
/// the query server so one port per process serves queries and telemetry:
///   /metrics — MetricsRegistry::ToPrometheus (text/plain)
///   /varz    — MetricsRegistry::ToJson (application/json)
///   /tracez  — FlightRecorder::ToJson (application/json)
///   /healthz — "ok"
/// Non-GET methods answer 405, unknown paths (or a null source) 404.
HttpResponse RenderObsRoute(const HttpRequest& request,
                            const MetricsRegistry* metrics,
                            const FlightRecorder* recorder);

/// Puts `fd` into non-blocking mode. Returns false on fcntl failure.
bool SetNonBlocking(int fd);

/// Writes all `len` bytes to non-blocking `fd` within an *overall*
/// `deadline_ms` budget, polling for writability between partial sends.
/// Returns false when the peer is gone or the budget runs out — per-send
/// SO_SNDTIMEO cannot bound a trickle-reading client (each send succeeds
/// just often enough to reset the timer), so a stalled scraper used to
/// wedge the single accept loop for every other client; the overall
/// deadline is what actually drops it.
bool SendAllWithDeadline(int fd, const char* data, size_t len,
                         int deadline_ms);

/// Reads from non-blocking `fd` into `*request` until the HTTP head
/// terminator "\r\n\r\n" arrives, `max_bytes` is reached, the peer closes,
/// or the overall `deadline_ms` budget runs out. Returns true when the
/// terminator was seen.
bool ReadHttpHeadWithDeadline(int fd, std::string* request, size_t max_bytes,
                              int deadline_ms);

}  // namespace dsks::obs

#endif  // DSKS_OBS_HTTP_H_
