#include "obs/http.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <chrono>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace dsks::obs {

namespace {

int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

bool ParseHttpRequest(const std::string& head, HttpRequest* out) {
  const size_t line_end = head.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    return false;
  }
  out->method = line.substr(0, sp1);
  out->path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = out->path.find('?');
  if (query != std::string::npos) {
    out->path.resize(query);
  }
  return true;
}

std::string FormatHttpResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 ";
  out += response.status_line;
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: " + std::to_string(response.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return out;
}

HttpResponse RenderObsRoute(const HttpRequest& request,
                            const MetricsRegistry* metrics,
                            const FlightRecorder* recorder) {
  if (request.method != "GET") {
    return {"405 Method Not Allowed", "text/plain", "GET only\n"};
  }
  if (request.path == "/metrics" && metrics != nullptr) {
    return {"200 OK", "text/plain; version=0.0.4", metrics->ToPrometheus()};
  }
  if (request.path == "/varz" && metrics != nullptr) {
    return {"200 OK", "application/json", metrics->ToJson()};
  }
  if (request.path == "/tracez" && recorder != nullptr) {
    return {"200 OK", "application/json", recorder->ToJson()};
  }
  if (request.path == "/healthz") {
    return {"200 OK", "text/plain", "ok\n"};
  }
  return {"404 Not Found", "text/plain", "not found\n"};
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool SendAllWithDeadline(int fd, const char* data, size_t len,
                         int deadline_ms) {
  const int64_t deadline = NowMillis() + deadline_ms;
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const int64_t remaining = deadline - NowMillis();
      if (remaining <= 0) {
        return false;  // budget exhausted: drop the slow client
      }
      pollfd pfd{fd, POLLOUT, 0};
      if (::poll(&pfd, 1, static_cast<int>(remaining)) < 0 &&
          errno != EINTR) {
        return false;
      }
      continue;
    }
    return false;  // peer went away; nothing useful to do
  }
  return true;
}

bool ReadHttpHeadWithDeadline(int fd, std::string* request, size_t max_bytes,
                              int deadline_ms) {
  const int64_t deadline = NowMillis() + deadline_ms;
  char buf[1024];
  while (request->size() < max_bytes &&
         request->find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      request->append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      break;  // peer closed before finishing the head
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const int64_t remaining = deadline - NowMillis();
      if (remaining <= 0) {
        break;
      }
      pollfd pfd{fd, POLLIN, 0};
      if (::poll(&pfd, 1, static_cast<int>(remaining)) < 0 &&
          errno != EINTR) {
        break;
      }
      continue;
    }
    break;
  }
  return request->find("\r\n\r\n") != std::string::npos;
}

}  // namespace dsks::obs
