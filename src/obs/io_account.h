#ifndef DSKS_OBS_IO_ACCOUNT_H_
#define DSKS_OBS_IO_ACCOUNT_H_

#include <cstdint>

namespace dsks::obs {

/// Buffer-pool/disk I/O event counts. Two uses: (a) span delta snapshots
/// inside QueryTrace, and (b) the per-query attribution account embedded
/// in QueryContext that the storage layer charges directly (see below),
/// which stays exact no matter how many other queries run concurrently.
struct IoCounters {
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t disk_reads = 0;
  uint64_t disk_writes = 0;
  /// Pages the pool read speculatively (Prefetch). These reads also appear
  /// in disk_reads when they reach the backend; this counter attributes
  /// them, since a prefetched read is not a blocking miss even though it
  /// touches the disk.
  uint64_t prefetched_pages = 0;

  IoCounters operator-(const IoCounters& o) const {
    return {pool_hits - o.pool_hits, pool_misses - o.pool_misses,
            disk_reads - o.disk_reads, disk_writes - o.disk_writes,
            prefetched_pages - o.prefetched_pages};
  }
  IoCounters& operator+=(const IoCounters& o) {
    pool_hits += o.pool_hits;
    pool_misses += o.pool_misses;
    disk_reads += o.disk_reads;
    disk_writes += o.disk_writes;
    prefetched_pages += o.prefetched_pages;
    return *this;
  }
  bool operator==(const IoCounters& o) const = default;
};

/// Thread-affine I/O attribution: the storage layer charges every pool
/// hit/miss, disk read/write and prefetch issue to the IoCounters the
/// *calling thread* has installed here (in addition to the global
/// relaxed-atomic stats), so a query's context accumulates exactly the
/// I/O that query caused — other threads charge their own accounts.
///
/// All storage I/O is synchronous today (the issuing thread performs the
/// read, even for batches — see DESIGN.md "Threading model"), so the
/// installed counters are only ever touched by their owning thread and
/// need no atomics. An async backend would have to route completions back
/// to the issuer's account; the hook is the single place to do that.
///
/// Null (the default) means unattributed: the charge helpers reduce to a
/// thread-local load and a branch, which is what keeps the storage hot
/// paths at their old cost for build phases and untracked callers.
inline thread_local IoCounters* tls_io_account = nullptr;

inline IoCounters* CurrentIoAccount() { return tls_io_account; }

/// Installs `account` as the calling thread's charge target for the scope;
/// restores the previous target on destruction. A null argument is a no-op
/// (keeps whatever is installed), which lets query entry points accept an
/// optional context without branching at every call site.
class ScopedIoAccount {
 public:
  explicit ScopedIoAccount(IoCounters* account) : prev_(tls_io_account) {
    if (account != nullptr) {
      tls_io_account = account;
    }
  }
  ~ScopedIoAccount() { tls_io_account = prev_; }

  ScopedIoAccount(const ScopedIoAccount&) = delete;
  ScopedIoAccount& operator=(const ScopedIoAccount&) = delete;

 private:
  IoCounters* prev_;
};

// Charge hooks, called by BufferPool/DiskManager next to the matching
// global stats increment so the per-account and global views move in
// lockstep (per-account sums telescope to the global deltas).
inline void ChargePoolHit() {
  if (IoCounters* a = tls_io_account) {
    ++a->pool_hits;
  }
}
inline void ChargePoolMiss() {
  if (IoCounters* a = tls_io_account) {
    ++a->pool_misses;
  }
}
inline void ChargePrefetchIssued(uint64_t pages) {
  if (IoCounters* a = tls_io_account) {
    a->prefetched_pages += pages;
  }
}
inline void ChargeDiskRead() {
  if (IoCounters* a = tls_io_account) {
    ++a->disk_reads;
  }
}
inline void ChargeDiskWrite() {
  if (IoCounters* a = tls_io_account) {
    ++a->disk_writes;
  }
}

}  // namespace dsks::obs

#endif  // DSKS_OBS_IO_ACCOUNT_H_
