#include "obs/trace.h"

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <utility>

#include "common/macros.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace dsks::obs {

namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[320];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out->append(buf);
}

double Ms(int64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

const char* PhaseName(Phase p) {
  switch (p) {
    case Phase::kQuery:
      return "query";
    case Phase::kKeywordLookup:
      return "keyword_lookup";
    case Phase::kNetworkExpansion:
      return "network_expansion";
    case Phase::kOracleSharedExpansion:
      return "oracle_shared_expansion";
    case Phase::kOracleFieldDijkstra:
      return "oracle_field_dijkstra";
    case Phase::kGreedySelection:
      return "greedy_selection";
  }
  return "?";
}

void QueryTrace::BindContextIo(const IoCounters* io) {
  DSKS_CHECK_MSG(open_.empty(),
                 "rebinding the trace I/O source with spans open");
  context_io_ = io;
}

void QueryTrace::BindIoSources(const BufferPoolStats* pool,
                               const DiskStats* disk) {
  pool_stats_ = pool;
  disk_stats_ = disk;
}

void QueryTrace::Clear() {
  spans_.clear();
  open_.clear();
  epoch_ns_ = 0;
  error_code_name_ = nullptr;
}

IoCounters QueryTrace::ReadIo() const {
  if (context_io_ != nullptr) {
    // The context's counters are only written by the thread running its
    // query — this thread — so a plain copy is an exact snapshot.
    return *context_io_;
  }
  IoCounters io;
  if (pool_stats_ != nullptr) {
    io.pool_hits = pool_stats_->hits.load(std::memory_order_relaxed);
    io.pool_misses = pool_stats_->misses.load(std::memory_order_relaxed);
    io.prefetched_pages =
        pool_stats_->prefetch_issued.load(std::memory_order_relaxed);
  }
  if (disk_stats_ != nullptr) {
    io.disk_reads = disk_stats_->reads.load(std::memory_order_relaxed);
    io.disk_writes = disk_stats_->writes.load(std::memory_order_relaxed);
  }
  return io;
}

int64_t QueryTrace::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint32_t QueryTrace::OpenSpan(Phase phase) {
  const int64_t now = NowNs();
  if (spans_.empty()) {
    epoch_ns_ = now;
  }
  const auto index = static_cast<uint32_t>(spans_.size());
  TraceSpan& s = spans_.emplace_back();
  s.phase = phase;
  s.depth = static_cast<uint16_t>(open_.size());
  s.parent = open_.empty() ? TraceSpan::kNoParent : open_.back();
  s.start_ns = now - epoch_ns_;
  // Stash the open-time absolute values in the delta fields; CloseSpan
  // turns them into real deltas.
  s.inclusive_ns = now;
  s.inclusive_io = ReadIo();
  open_.push_back(index);
  return index;
}

void QueryTrace::CloseSpan(uint32_t index) {
  DSKS_CHECK_MSG(!open_.empty() && open_.back() == index,
                 "trace spans must close in LIFO order");
  open_.pop_back();
  TraceSpan& s = spans_[index];
  s.inclusive_ns = NowNs() - s.inclusive_ns;
  s.inclusive_io = ReadIo() - s.inclusive_io;
  if (s.parent != TraceSpan::kNoParent) {
    TraceSpan& p = spans_[s.parent];
    p.child_ns += s.inclusive_ns;
    p.child_io += s.inclusive_io;
  }
}

std::array<QueryTrace::PhaseTotals, kNumPhases> QueryTrace::AggregateByPhase()
    const {
  DSKS_CHECK_MSG(open_.empty(), "aggregate with spans still open");
  std::array<PhaseTotals, kNumPhases> totals{};
  for (const TraceSpan& s : spans_) {
    PhaseTotals& t = totals[static_cast<size_t>(s.phase)];
    ++t.spans;
    t.exclusive_ns += s.exclusive_ns();
    t.io += s.exclusive_io();
  }
  return totals;
}

std::vector<QueryTrace::TreeNode> QueryTrace::AggregateTree() const {
  DSKS_CHECK_MSG(open_.empty(), "aggregate with spans still open");
  std::vector<TreeNode> nodes;
  // (parent tree node, phase) -> tree node; spans_ lists parents before
  // their children, so the parent's node always exists already.
  std::map<std::pair<uint32_t, Phase>, uint32_t> by_key;
  std::vector<uint32_t> span_node(spans_.size());
  for (size_t i = 0; i < spans_.size(); ++i) {
    const TraceSpan& s = spans_[i];
    const uint32_t parent_node = s.parent == TraceSpan::kNoParent
                                     ? TreeNode::kNoParent
                                     : span_node[s.parent];
    const auto key = std::make_pair(parent_node, s.phase);
    auto [it, inserted] = by_key.try_emplace(
        key, static_cast<uint32_t>(nodes.size()));
    if (inserted) {
      TreeNode& n = nodes.emplace_back();
      n.phase = s.phase;
      n.depth = s.depth;
      n.parent = parent_node;
    }
    span_node[i] = it->second;
    TreeNode& n = nodes[it->second];
    ++n.count;
    n.inclusive_ns += s.inclusive_ns;
    n.child_ns += s.child_ns;
    n.inclusive_io += s.inclusive_io;
    n.child_io += s.child_io;
  }
  return nodes;
}

std::string QueryTrace::ToText() const {
  const std::vector<TreeNode> nodes = AggregateTree();
  std::string out;
  if (error_code_name_ != nullptr) {
    AppendF(&out, "ERROR %s (spans below = work done before the failure)\n",
            error_code_name_);
  }
  AppendF(&out, "%-48s %8s %12s %12s %9s %9s %9s %9s %9s\n", "span", "count",
          "incl ms", "own ms", "hits", "misses", "reads", "writes",
          "prefetch");
  for (const TreeNode& n : nodes) {
    std::string label(static_cast<size_t>(n.depth) * 2, ' ');
    label += PhaseName(n.phase);
    const IoCounters own = n.exclusive_io();
    AppendF(&out,
            "%-48s %8llu %12.3f %12.3f %9llu %9llu %9llu %9llu %9llu\n",
            label.c_str(), static_cast<unsigned long long>(n.count),
            Ms(n.inclusive_ns), Ms(n.exclusive_ns()),
            static_cast<unsigned long long>(own.pool_hits),
            static_cast<unsigned long long>(own.pool_misses),
            static_cast<unsigned long long>(own.disk_reads),
            static_cast<unsigned long long>(own.disk_writes),
            static_cast<unsigned long long>(own.prefetched_pages));
  }
  return out;
}

std::string QueryTrace::ToJson() const {
  const std::vector<TreeNode> nodes = AggregateTree();
  std::string out = "{";
  if (error_code_name_ != nullptr) {
    AppendF(&out, "\"error\":\"%s\",", error_code_name_);
  }
  out.append("\"tree\":[");
  // Nodes are emitted flat with a parent index — nesting the JSON would
  // complicate consumers for no benefit (depth + parent reconstruct it).
  for (size_t i = 0; i < nodes.size(); ++i) {
    const TreeNode& n = nodes[i];
    const IoCounters own = n.exclusive_io();
    if (i > 0) {
      out.append(",");
    }
    AppendF(&out,
            "{\"phase\":\"%s\",\"depth\":%u,\"parent\":%lld,"
            "\"count\":%llu,\"ms\":%.6f,\"own_ms\":%.6f,"
            "\"pool_hits\":%llu,\"pool_misses\":%llu,"
            "\"disk_reads\":%llu,\"disk_writes\":%llu,"
            "\"prefetched_pages\":%llu}",
            PhaseName(n.phase), n.depth,
            n.parent == TreeNode::kNoParent ? -1LL
                                            : static_cast<long long>(n.parent),
            static_cast<unsigned long long>(n.count), Ms(n.inclusive_ns),
            Ms(n.exclusive_ns()),
            static_cast<unsigned long long>(own.pool_hits),
            static_cast<unsigned long long>(own.pool_misses),
            static_cast<unsigned long long>(own.disk_reads),
            static_cast<unsigned long long>(own.disk_writes),
            static_cast<unsigned long long>(own.prefetched_pages));
  }
  out.append("],\"phases\":{");
  const auto totals = AggregateByPhase();
  bool first = true;
  for (size_t p = 0; p < kNumPhases; ++p) {
    const PhaseTotals& t = totals[p];
    if (t.spans == 0) {
      continue;
    }
    if (!first) {
      out.append(",");
    }
    first = false;
    AppendF(&out,
            "\"%s\":{\"spans\":%llu,\"ms\":%.6f,\"pool_hits\":%llu,"
            "\"pool_misses\":%llu,\"disk_reads\":%llu,\"disk_writes\":%llu,"
            "\"prefetched_pages\":%llu}",
            PhaseName(static_cast<Phase>(p)),
            static_cast<unsigned long long>(t.spans), Ms(t.exclusive_ns),
            static_cast<unsigned long long>(t.io.pool_hits),
            static_cast<unsigned long long>(t.io.pool_misses),
            static_cast<unsigned long long>(t.io.disk_reads),
            static_cast<unsigned long long>(t.io.disk_writes),
            static_cast<unsigned long long>(t.io.prefetched_pages));
  }
  out.append("}}");
  return out;
}

}  // namespace dsks::obs
