#ifndef DSKS_OBS_TRACE_H_
#define DSKS_OBS_TRACE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/io_account.h"

namespace dsks {

struct BufferPoolStats;
struct DiskStats;

namespace obs {

/// The query phases the paper's cost model distinguishes: object loading
/// through the index (Algorithm 2), network expansion (Algorithm 3), the
/// oracle's Dijkstra work (§4's pairwise distances) and the greedy
/// diversification (Algorithms 1/5/6). kQuery is the root span one whole
/// query runs under; time and I/O not covered by a child phase show up as
/// the root's exclusive share ("query overhead").
enum class Phase : uint8_t {
  kQuery = 0,
  kKeywordLookup,
  kNetworkExpansion,
  kOracleSharedExpansion,
  kOracleFieldDijkstra,
  kGreedySelection,
};
inline constexpr size_t kNumPhases = 6;

const char* PhaseName(Phase p);

/// One recorded phase span. `inclusive_*` covers the span's whole
/// lifetime; `child_*` is the part spent inside nested spans, so
/// exclusive = inclusive - child is the span's own share and per-phase
/// exclusive totals sum exactly to the root's inclusive totals.
struct TraceSpan {
  static constexpr uint32_t kNoParent = UINT32_MAX;

  Phase phase = Phase::kQuery;
  uint16_t depth = 0;
  uint32_t parent = kNoParent;  // index into QueryTrace::spans()

  int64_t start_ns = 0;  // monotonic, relative to the trace's first span
  int64_t inclusive_ns = 0;
  int64_t child_ns = 0;
  IoCounters inclusive_io;
  IoCounters child_io;

  int64_t exclusive_ns() const { return inclusive_ns - child_ns; }
  IoCounters exclusive_io() const { return inclusive_io - child_io; }
};

/// Per-query trace sink: phase spans with monotonic-clock timings and
/// delta-snapshots of an I/O counter source. A query runs traced when its
/// QueryContext carries a non-null `trace` pointer; otherwise every hook
/// is an inlined null check and nothing else — the hot paths stay at
/// their untraced cost.
///
/// One QueryTrace belongs to one thread (like the QueryContext carrying
/// it). Bind it to the query's per-context counters with BindContextIo —
/// Database::Run* does this automatically when the context carries a
/// trace — and the span I/O deltas are exact regardless of how many other
/// queries run concurrently, because the storage layer charges each
/// query's I/O to its own context (see obs/io_account.h). BindIoSources
/// (global pool/disk stats) remains as the fallback for consumers with no
/// QueryContext; those deltas absorb other threads' traffic and are only
/// exact single-threaded. Tracing several queries into one trace is fine —
/// each becomes another kQuery root and the aggregates accumulate.
class QueryTrace {
 public:
  /// Snapshots the query context's own attribution counters per span;
  /// takes precedence over BindIoSources. Null unbinds. Must not be
  /// called while spans are open — an open span's delta would mix
  /// snapshots of different counters.
  void BindContextIo(const IoCounters* io);

  /// Fallback counter sources snapshotted per span when no context
  /// counters are bound; either may be null (those deltas then stay zero).
  void BindIoSources(const BufferPoolStats* pool, const DiskStats* disk);

  /// Drops all recorded spans (keeps capacity and the bound sources).
  void Clear();

  /// Records that the traced query failed with `code_name` (a
  /// Status::CodeName string). The spans recorded up to the error remain —
  /// that is the query's partial-work accounting: how far it got and what
  /// I/O it paid before failing. Shown in ToText/ToJson.
  void MarkError(const char* code_name) { error_code_name_ = code_name; }
  bool has_error() const { return error_code_name_ != nullptr; }
  /// Null when the query completed cleanly.
  const char* error_code_name() const { return error_code_name_; }

  /// Opens a span; returns its index. Pair with CloseSpan (spans close in
  /// LIFO order). Use ScopedSpan instead of calling these directly.
  uint32_t OpenSpan(Phase phase);
  void CloseSpan(uint32_t index);

  const std::vector<TraceSpan>& spans() const { return spans_; }
  size_t open_depth() const { return open_.size(); }

  /// Exclusive totals per phase. Summing ns/io over all phases yields
  /// exactly the inclusive totals of the root span(s).
  struct PhaseTotals {
    uint64_t spans = 0;
    int64_t exclusive_ns = 0;
    IoCounters io;
  };
  std::array<PhaseTotals, kNumPhases> AggregateByPhase() const;

  /// Spans aggregated into a tree by phase path: sibling spans of the same
  /// phase under the same tree node merge into one node with a count, so
  /// the rendering stays readable for thousands of raw spans.
  struct TreeNode {
    static constexpr uint32_t kNoParent = UINT32_MAX;
    Phase phase = Phase::kQuery;
    uint16_t depth = 0;
    uint32_t parent = kNoParent;  // index into the returned vector
    uint64_t count = 0;
    int64_t inclusive_ns = 0;
    int64_t child_ns = 0;
    IoCounters inclusive_io;
    IoCounters child_io;

    int64_t exclusive_ns() const { return inclusive_ns - child_ns; }
    IoCounters exclusive_io() const { return inclusive_io - child_io; }
  };
  std::vector<TreeNode> AggregateTree() const;

  /// Human-readable span tree (one line per aggregated node).
  std::string ToText() const;
  /// {"tree":[{phase,count,ms,own_ms,pool_hits,...,children:[...]}],
  ///  "phases":{name:{spans,ms,pool_hits,pool_misses,disk_reads,
  ///  disk_writes}}}
  std::string ToJson() const;

 private:
  IoCounters ReadIo() const;
  int64_t NowNs() const;

  const IoCounters* context_io_ = nullptr;
  const BufferPoolStats* pool_stats_ = nullptr;
  const DiskStats* disk_stats_ = nullptr;
  std::vector<TraceSpan> spans_;
  std::vector<uint32_t> open_;  // stack of open span indices
  int64_t epoch_ns_ = 0;        // set by the first OpenSpan after Clear
  const char* error_code_name_ = nullptr;  // static-lifetime code name
};

/// RAII span: no-op when `trace` is null, which is what makes the hooks
/// free in untraced runs — the constructor and destructor inline to a
/// single pointer test.
class ScopedSpan {
 public:
  ScopedSpan(QueryTrace* trace, Phase phase) : trace_(trace) {
    if (trace_ != nullptr) {
      index_ = trace_->OpenSpan(phase);
    }
  }
  ~ScopedSpan() {
    if (trace_ != nullptr) {
      trace_->CloseSpan(index_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  QueryTrace* trace_;
  uint32_t index_ = 0;
};

}  // namespace obs
}  // namespace dsks

#endif  // DSKS_OBS_TRACE_H_
