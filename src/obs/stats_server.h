#ifndef DSKS_OBS_STATS_SERVER_H_
#define DSKS_OBS_STATS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/status.h"

namespace dsks::obs {

class FlightRecorder;
class MetricsRegistry;

/// Minimal embedded HTTP/1.1 server exposing the process's telemetry for
/// live scraping — the operational front door that precedes the real
/// query service (ROADMAP item 2). GET-only, Connection: close, one
/// blocking accept loop on its own thread; request handling reads the
/// registry/recorder snapshots, so a scrape never blocks a query beyond
/// the snapshot mutex holds they already pay.
///
/// Routes:
///   /metrics — MetricsRegistry::ToPrometheus (text/plain)
///   /varz    — MetricsRegistry::ToJson (application/json)
///   /tracez  — FlightRecorder::ToJson (application/json)
///   /healthz — "ok"
///
/// Either source may be null; its routes then answer 404.
class StatsServer {
 public:
  StatsServer(const MetricsRegistry* metrics, const FlightRecorder* recorder);
  ~StatsServer();

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// Binds 127.0.0.1:port (0 picks an ephemeral port, readable from
  /// port() afterwards) and starts the accept thread.
  Status Start(uint16_t port = 0);

  /// Stops the accept loop and joins the thread. Idempotent; also run by
  /// the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port; 0 before a successful Start.
  uint16_t port() const { return port_; }

  /// Overall per-connection I/O budget (read the request head, send the
  /// response), default 2000 ms. A client that cannot take the response
  /// within the budget is dropped — a per-send SO_SNDTIMEO is defeated by
  /// a trickle-reading client and every stall wedges the single accept
  /// loop for all other scrapers. Set before Start; tests shrink it.
  void set_io_timeout_ms(int ms) { io_timeout_ms_ = ms; }
  int io_timeout_ms() const { return io_timeout_ms_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  const MetricsRegistry* metrics_;
  const FlightRecorder* recorder_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  int io_timeout_ms_ = 2000;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace dsks::obs

#endif  // DSKS_OBS_STATS_SERVER_H_
