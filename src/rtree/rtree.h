#ifndef DSKS_RTREE_RTREE_H_
#define DSKS_RTREE_RTREE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/status.h"
#include "spatial/mbr.h"
#include "spatial/point.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace dsks {

/// Disk-resident R-tree over (MBR, 64-bit payload) entries, bulk loaded
/// with the Sort-Tile-Recursive (STR) algorithm. Used for:
///  * the network R-tree organizing edge MBRs (§2.2), which snaps objects
///    and query points to their road segments, and
///  * the per-keyword object R-trees of the IR (inverted R-tree) baseline
///    compared in §5.
///
/// All node accesses go through the buffer pool and are counted as I/O.
class RTree {
 public:
  struct Entry {
    Mbr mbr;
    uint64_t payload = 0;
  };

  /// Opens an existing tree.
  RTree(BufferPool* pool, PageId root, int height)
      : pool_(pool), root_(root), height_(height) {}

  /// Builds a tree from `entries` (consumed). An empty input produces a
  /// valid empty tree.
  static RTree BulkLoad(BufferPool* pool, std::vector<Entry> entries);

  /// Creates an empty tree ready for Insert().
  static RTree CreateEmpty(BufferPool* pool);

  /// Dynamic insertion (Guttman): choose-subtree by least enlargement,
  /// quadratic split on overflow. May increase height().
  void Insert(const Entry& entry);

  /// Visits every entry whose MBR intersects `range`; the visitor returns
  /// false to stop the search (not an error). Disk errors during the
  /// traversal are returned; entries already visited stand.
  Status RangeSearch(
      const Mbr& range,
      const std::function<bool(const Mbr&, uint64_t)>& visit) const;

  /// Best-first nearest-neighbour search by MBR distance to `p`. On OK,
  /// `*found` says whether the tree was non-empty and `*out` holds the
  /// closest entry when it was.
  Status Nearest(const Point& p, Entry* out, bool* found) const;

  /// Nearest for fault-free-by-contract callers; CHECK-fails on a disk
  /// error. Returns false if the tree is empty.
  bool Nearest(const Point& p, Entry* out) const {
    bool found = false;
    const Status s = Nearest(p, out, &found);
    DSKS_CHECK_MSG(s.ok(), "RTree::Nearest on a faulty disk");
    return found;
  }

  /// Nodes in the tree (for index-size accounting).
  uint64_t CountPages() const;

  PageId root() const { return root_; }
  int height() const { return height_; }

  static size_t LeafCapacity();
  static size_t InternalCapacity();

 private:
  struct SplitResult {
    Mbr mbr;
    PageId page;
  };

  /// Inserts into the subtree at `node` (whose level counts down to 1 at
  /// the leaves); returns the new sibling if the node split, and updates
  /// `*node_mbr` to the node's MBR after insertion.
  std::optional<SplitResult> InsertRecursive(PageId node, int level,
                                             const Entry& entry,
                                             Mbr* node_mbr);

  Status RangeSearchRecursive(
      PageId node, int level, const Mbr& range,
      const std::function<bool(const Mbr&, uint64_t)>& visit,
      bool* keep_going) const;

  uint64_t CountPagesRecursive(PageId node, int level) const;

  BufferPool* pool_;
  PageId root_;
  /// 1 = root is a leaf.
  int height_;
};

}  // namespace dsks

#endif  // DSKS_RTREE_RTREE_H_
