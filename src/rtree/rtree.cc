#include "rtree/rtree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <queue>

#include "common/macros.h"

namespace dsks {

namespace {

// Node layout:
//   u8  is_leaf
//   u16 count
//   entries: { f64 min_x, f64 min_y, f64 max_x, f64 max_y, u64 payload }
// For internal nodes the payload's low 32 bits hold the child PageId.
constexpr size_t kHeaderSize = 3;
constexpr size_t kEntrySize = 4 * sizeof(double) + sizeof(uint64_t);
constexpr size_t kCapacity = (kPageSize - kHeaderSize) / kEntrySize;

bool IsLeaf(const char* p) { return p[0] != 0; }
void SetLeaf(char* p, bool leaf) { p[0] = leaf ? 1 : 0; }
uint16_t Count(const char* p) {
  uint16_t c;
  std::memcpy(&c, p + 1, 2);
  return c;
}
void SetCount(char* p, uint16_t c) { std::memcpy(p + 1, &c, 2); }

void WriteEntry(char* p, size_t i, const Mbr& mbr, uint64_t payload) {
  char* base = p + kHeaderSize + i * kEntrySize;
  std::memcpy(base, &mbr.min_x, 8);
  std::memcpy(base + 8, &mbr.min_y, 8);
  std::memcpy(base + 16, &mbr.max_x, 8);
  std::memcpy(base + 24, &mbr.max_y, 8);
  std::memcpy(base + 32, &payload, 8);
}

void ReadEntry(const char* p, size_t i, Mbr* mbr, uint64_t* payload) {
  const char* base = p + kHeaderSize + i * kEntrySize;
  std::memcpy(&mbr->min_x, base, 8);
  std::memcpy(&mbr->min_y, base + 8, 8);
  std::memcpy(&mbr->max_x, base + 16, 8);
  std::memcpy(&mbr->max_y, base + 24, 8);
  std::memcpy(payload, base + 32, 8);
}

}  // namespace

size_t RTree::LeafCapacity() { return kCapacity; }
size_t RTree::InternalCapacity() { return kCapacity; }

RTree RTree::BulkLoad(BufferPool* pool, std::vector<Entry> entries) {
  // Empty tree: a single empty leaf keeps all read paths uniform.
  if (entries.empty()) {
    PageId root;
    PageGuard guard = PageGuard::New(pool, &root);
    SetLeaf(guard.data(), true);
    SetCount(guard.data(), 0);
    return RTree(pool, root, 1);
  }

  // STR: sort by center x, slice into vertical strips of ~sqrt(n/C) pages,
  // sort each strip by center y, pack runs of C entries into nodes. Repeat
  // one level up until a single node remains.
  int height = 1;
  bool leaf_level = true;
  while (true) {
    const size_t n = entries.size();
    const size_t num_nodes = (n + kCapacity - 1) / kCapacity;
    const auto slice_count =
        static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(num_nodes))));
    const size_t slice_size =
        slice_count == 0 ? n : (n + slice_count - 1) / slice_count;

    std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
      return a.mbr.Center().x < b.mbr.Center().x;
    });
    for (size_t start = 0; start < n; start += slice_size) {
      const size_t end = std::min(n, start + slice_size);
      std::sort(entries.begin() + start, entries.begin() + end,
                [](const Entry& a, const Entry& b) {
                  return a.mbr.Center().y < b.mbr.Center().y;
                });
    }

    std::vector<Entry> parents;
    parents.reserve(num_nodes);
    for (size_t start = 0; start < n; start += kCapacity) {
      const size_t end = std::min(n, start + kCapacity);
      PageId node_id;
      PageGuard guard = PageGuard::New(pool, &node_id);
      char* p = guard.data();
      SetLeaf(p, leaf_level);
      SetCount(p, static_cast<uint16_t>(end - start));
      Mbr node_mbr = Mbr::Empty();
      for (size_t i = start; i < end; ++i) {
        WriteEntry(p, i - start, entries[i].mbr, entries[i].payload);
        node_mbr.Extend(entries[i].mbr);
      }
      guard.MarkDirty();
      parents.push_back(Entry{node_mbr, node_id});
    }

    if (parents.size() == 1) {
      return RTree(pool, static_cast<PageId>(parents[0].payload), height);
    }
    entries = std::move(parents);
    leaf_level = false;
    ++height;
  }
}

RTree RTree::CreateEmpty(BufferPool* pool) {
  PageId root;
  PageGuard guard = PageGuard::New(pool, &root);
  SetLeaf(guard.data(), true);
  SetCount(guard.data(), 0);
  return RTree(pool, root, 1);
}

namespace {

/// Guttman's quadratic split over `entries` (size kCapacity + 1): returns
/// the index partition into two groups.
void QuadraticSplit(const std::vector<RTree::Entry>& entries,
                    std::vector<size_t>* left, std::vector<size_t>* right) {
  const size_t n = entries.size();
  // Pick the pair of seeds wasting the most area together.
  size_t seed_a = 0;
  size_t seed_b = 1;
  double worst = -1.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      Mbr merged = entries[i].mbr;
      merged.Extend(entries[j].mbr);
      const double dead =
          merged.Area() - entries[i].mbr.Area() - entries[j].mbr.Area();
      if (dead > worst) {
        worst = dead;
        seed_a = i;
        seed_b = j;
      }
    }
  }
  left->assign(1, seed_a);
  right->assign(1, seed_b);
  Mbr left_mbr = entries[seed_a].mbr;
  Mbr right_mbr = entries[seed_b].mbr;
  const size_t min_fill = n / 3;  // keep both sides reasonably full

  for (size_t i = 0; i < n; ++i) {
    if (i == seed_a || i == seed_b) continue;
    const size_t remaining = n - left->size() - right->size();
    // Force-assign when one side must take everything left to reach the
    // minimum fill.
    if (left->size() + remaining <= min_fill + 1) {
      left->push_back(i);
      left_mbr.Extend(entries[i].mbr);
      continue;
    }
    if (right->size() + remaining <= min_fill + 1) {
      right->push_back(i);
      right_mbr.Extend(entries[i].mbr);
      continue;
    }
    const double grow_l = left_mbr.Enlargement(entries[i].mbr);
    const double grow_r = right_mbr.Enlargement(entries[i].mbr);
    if (grow_l < grow_r ||
        (grow_l == grow_r && left->size() <= right->size())) {
      left->push_back(i);
      left_mbr.Extend(entries[i].mbr);
    } else {
      right->push_back(i);
      right_mbr.Extend(entries[i].mbr);
    }
  }
}

}  // namespace

std::optional<RTree::SplitResult> RTree::InsertRecursive(PageId node,
                                                         int level,
                                                         const Entry& entry,
                                                         Mbr* node_mbr) {
  PageGuard guard = FetchForBuild(pool_, node);
  char* p = guard.data();
  const size_t n = Count(p);
  const bool leaf = IsLeaf(p);

  if (!leaf) {
    // Choose the child whose MBR grows least.
    size_t best = 0;
    double best_grow = 0.0;
    double best_area = 0.0;
    for (size_t i = 0; i < n; ++i) {
      Mbr mbr;
      uint64_t payload;
      ReadEntry(p, i, &mbr, &payload);
      const double grow = mbr.Enlargement(entry.mbr);
      const double area = mbr.Area();
      if (i == 0 || grow < best_grow ||
          (grow == best_grow && area < best_area)) {
        best = i;
        best_grow = grow;
        best_area = area;
      }
    }
    Mbr child_mbr;
    uint64_t child_payload;
    ReadEntry(p, best, &child_mbr, &child_payload);
    guard.Release();  // no pin across recursion

    Mbr new_child_mbr = child_mbr;
    auto split = InsertRecursive(static_cast<PageId>(child_payload),
                                 level - 1, entry, &new_child_mbr);

    PageGuard again = FetchForBuild(pool_, node);
    p = again.data();
    WriteEntry(p, best, new_child_mbr, child_payload);
    again.MarkDirty();
    if (!split.has_value()) {
      // Recompute this node's MBR cheaply by extending.
      *node_mbr = Mbr::Empty();
      for (size_t i = 0; i < Count(p); ++i) {
        Mbr mbr;
        uint64_t payload;
        ReadEntry(p, i, &mbr, &payload);
        node_mbr->Extend(mbr);
      }
      return std::nullopt;
    }
    // Add the new sibling entry here (fall through to common overflow
    // handling below with the promoted entry).
    const Entry promoted{split->mbr, split->page};
    const size_t count = Count(p);
    if (count < kCapacity) {
      WriteEntry(p, count, promoted.mbr, promoted.payload);
      SetCount(p, static_cast<uint16_t>(count + 1));
      *node_mbr = Mbr::Empty();
      for (size_t i = 0; i < count + 1; ++i) {
        Mbr mbr;
        uint64_t payload;
        ReadEntry(p, i, &mbr, &payload);
        node_mbr->Extend(mbr);
      }
      return std::nullopt;
    }
    // Overflow: split this internal node.
    std::vector<Entry> all;
    all.reserve(count + 1);
    for (size_t i = 0; i < count; ++i) {
      Entry e;
      ReadEntry(p, i, &e.mbr, &e.payload);
      all.push_back(e);
    }
    all.push_back(promoted);
    std::vector<size_t> left_idx;
    std::vector<size_t> right_idx;
    QuadraticSplit(all, &left_idx, &right_idx);

    SetCount(p, static_cast<uint16_t>(left_idx.size()));
    *node_mbr = Mbr::Empty();
    for (size_t i = 0; i < left_idx.size(); ++i) {
      WriteEntry(p, i, all[left_idx[i]].mbr, all[left_idx[i]].payload);
      node_mbr->Extend(all[left_idx[i]].mbr);
    }
    again.MarkDirty();

    PageId right_id;
    PageGuard right = PageGuard::New(pool_, &right_id);
    char* rp = right.data();
    SetLeaf(rp, false);
    SetCount(rp, static_cast<uint16_t>(right_idx.size()));
    Mbr right_mbr = Mbr::Empty();
    for (size_t i = 0; i < right_idx.size(); ++i) {
      WriteEntry(rp, i, all[right_idx[i]].mbr, all[right_idx[i]].payload);
      right_mbr.Extend(all[right_idx[i]].mbr);
    }
    right.MarkDirty();
    return SplitResult{right_mbr, right_id};
  }

  // Leaf.
  if (n < kCapacity) {
    WriteEntry(p, n, entry.mbr, entry.payload);
    SetCount(p, static_cast<uint16_t>(n + 1));
    guard.MarkDirty();
    *node_mbr = Mbr::Empty();
    for (size_t i = 0; i < n + 1; ++i) {
      Mbr mbr;
      uint64_t payload;
      ReadEntry(p, i, &mbr, &payload);
      node_mbr->Extend(mbr);
    }
    return std::nullopt;
  }
  std::vector<Entry> all;
  all.reserve(n + 1);
  for (size_t i = 0; i < n; ++i) {
    Entry e;
    ReadEntry(p, i, &e.mbr, &e.payload);
    all.push_back(e);
  }
  all.push_back(entry);
  std::vector<size_t> left_idx;
  std::vector<size_t> right_idx;
  QuadraticSplit(all, &left_idx, &right_idx);

  SetCount(p, static_cast<uint16_t>(left_idx.size()));
  *node_mbr = Mbr::Empty();
  for (size_t i = 0; i < left_idx.size(); ++i) {
    WriteEntry(p, i, all[left_idx[i]].mbr, all[left_idx[i]].payload);
    node_mbr->Extend(all[left_idx[i]].mbr);
  }
  guard.MarkDirty();

  PageId right_id;
  PageGuard right = PageGuard::New(pool_, &right_id);
  char* rp = right.data();
  SetLeaf(rp, true);
  SetCount(rp, static_cast<uint16_t>(right_idx.size()));
  Mbr right_mbr = Mbr::Empty();
  for (size_t i = 0; i < right_idx.size(); ++i) {
    WriteEntry(rp, i, all[right_idx[i]].mbr, all[right_idx[i]].payload);
    right_mbr.Extend(all[right_idx[i]].mbr);
  }
  right.MarkDirty();
  return SplitResult{right_mbr, right_id};
}

void RTree::Insert(const Entry& entry) {
  Mbr root_mbr = Mbr::Empty();
  auto split = InsertRecursive(root_, height_, entry, &root_mbr);
  if (!split.has_value()) {
    return;
  }
  // Root split: grow the tree.
  PageId new_root;
  PageGuard guard = PageGuard::New(pool_, &new_root);
  char* p = guard.data();
  SetLeaf(p, false);
  SetCount(p, 2);
  WriteEntry(p, 0, root_mbr, root_);
  WriteEntry(p, 1, split->mbr, split->page);
  guard.MarkDirty();
  root_ = new_root;
  ++height_;
}

Status RTree::RangeSearchRecursive(
    PageId node, int level, const Mbr& range,
    const std::function<bool(const Mbr&, uint64_t)>& visit,
    bool* keep_going) const {
  if (!*keep_going) return Status::Ok();
  PageGuard guard;
  DSKS_RETURN_IF_ERROR(PageGuard::Fetch(pool_, node, &guard));
  const char* p = guard.data();
  const size_t n = Count(p);
  const bool leaf = IsLeaf(p);
  // Collect matching children before releasing the pin (recursion must not
  // hold pins, or deep trees could exhaust a small pool).
  std::vector<uint64_t> children;
  for (size_t i = 0; i < n && *keep_going; ++i) {
    Mbr mbr;
    uint64_t payload;
    ReadEntry(p, i, &mbr, &payload);
    if (!mbr.Intersects(range)) continue;
    if (leaf) {
      if (!visit(mbr, payload)) {
        *keep_going = false;
      }
    } else {
      children.push_back(payload);
    }
  }
  guard.Release();
  for (uint64_t child : children) {
    if (!*keep_going) return Status::Ok();
    DSKS_RETURN_IF_ERROR(RangeSearchRecursive(static_cast<PageId>(child),
                                              level + 1, range, visit,
                                              keep_going));
  }
  return Status::Ok();
}

Status RTree::RangeSearch(
    const Mbr& range,
    const std::function<bool(const Mbr&, uint64_t)>& visit) const {
  bool keep_going = true;
  return RangeSearchRecursive(root_, 0, range, visit, &keep_going);
}

Status RTree::Nearest(const Point& p, Entry* out, bool* found) const {
  *found = false;
  struct QueueItem {
    double dist;
    bool is_entry;
    Mbr mbr;
    uint64_t payload;
  };
  auto cmp = [](const QueueItem& a, const QueueItem& b) {
    return a.dist > b.dist;
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, decltype(cmp)> heap(
      cmp);
  heap.push(QueueItem{0.0, false, Mbr::Empty(), root_});
  // The first item popped is the node; nodes at height_ levels down are
  // leaves whose entries we enqueue as final answers.
  // We track leafness by reading each node's header instead of depth.
  bool root_item = true;
  while (!heap.empty()) {
    QueueItem item = heap.top();
    heap.pop();
    if (item.is_entry) {
      *out = Entry{item.mbr, item.payload};
      *found = true;
      return Status::Ok();
    }
    PageGuard guard;
    DSKS_RETURN_IF_ERROR(
        PageGuard::Fetch(pool_, static_cast<PageId>(item.payload), &guard));
    const char* node = guard.data();
    const size_t n = Count(node);
    const bool leaf = IsLeaf(node);
    if (root_item && n == 0) {
      return Status::Ok();  // empty tree
    }
    root_item = false;
    for (size_t i = 0; i < n; ++i) {
      Mbr mbr;
      uint64_t payload;
      ReadEntry(node, i, &mbr, &payload);
      heap.push(QueueItem{mbr.MinDistance(p), leaf, mbr, payload});
    }
  }
  return Status::Ok();
}

uint64_t RTree::CountPagesRecursive(PageId node, int level) const {
  PageGuard guard = FetchForBuild(pool_, node);
  const char* p = guard.data();
  if (IsLeaf(p)) {
    return 1;
  }
  const size_t n = Count(p);
  std::vector<PageId> children;
  children.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Mbr mbr;
    uint64_t payload;
    ReadEntry(p, i, &mbr, &payload);
    children.push_back(static_cast<PageId>(payload));
  }
  guard.Release();
  uint64_t total = 1;
  for (PageId c : children) {
    total += CountPagesRecursive(c, level + 1);
  }
  return total;
}

uint64_t RTree::CountPages() const { return CountPagesRecursive(root_, 0); }

}  // namespace dsks
