#include "btree/bplus_tree.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/macros.h"

namespace dsks {

namespace {

// Node layout (shared header):
//   u8  is_leaf
//   u16 count
//   u32 next            (leaf sibling chain; unused for internal nodes)
// Leaf body:     count * { u64 key, u64 value }
// Internal body: u32 child0, count * { u64 key, u32 child }
//   Key k at index i separates child i (keys < k) from child i+1 (>= k).
constexpr size_t kHeaderSize = 1 + 2 + 4;
constexpr size_t kLeafEntrySize = 16;
constexpr size_t kInternalEntrySize = 12;
constexpr size_t kLeafCapacity = (kPageSize - kHeaderSize) / kLeafEntrySize;
constexpr size_t kInternalCapacity =
    (kPageSize - kHeaderSize - 4) / kInternalEntrySize;

bool IsLeaf(const char* p) { return p[0] != 0; }
void SetLeaf(char* p, bool leaf) { p[0] = leaf ? 1 : 0; }

uint16_t Count(const char* p) {
  uint16_t c;
  std::memcpy(&c, p + 1, 2);
  return c;
}
void SetCount(char* p, uint16_t c) { std::memcpy(p + 1, &c, 2); }

PageId Next(const char* p) {
  PageId n;
  std::memcpy(&n, p + 3, 4);
  return n;
}
void SetNext(char* p, PageId n) { std::memcpy(p + 3, &n, 4); }

uint64_t LeafKey(const char* p, size_t i) {
  uint64_t k;
  std::memcpy(&k, p + kHeaderSize + i * kLeafEntrySize, 8);
  return k;
}
uint64_t LeafValue(const char* p, size_t i) {
  uint64_t v;
  std::memcpy(&v, p + kHeaderSize + i * kLeafEntrySize + 8, 8);
  return v;
}
void SetLeafEntry(char* p, size_t i, uint64_t k, uint64_t v) {
  std::memcpy(p + kHeaderSize + i * kLeafEntrySize, &k, 8);
  std::memcpy(p + kHeaderSize + i * kLeafEntrySize + 8, &v, 8);
}

PageId Child(const char* p, size_t i) {
  // child i lives before key i; child0 directly after header.
  PageId c;
  if (i == 0) {
    std::memcpy(&c, p + kHeaderSize, 4);
  } else {
    std::memcpy(&c, p + kHeaderSize + 4 + (i - 1) * kInternalEntrySize + 8, 4);
  }
  return c;
}
void SetChild(char* p, size_t i, PageId c) {
  if (i == 0) {
    std::memcpy(p + kHeaderSize, &c, 4);
  } else {
    std::memcpy(p + kHeaderSize + 4 + (i - 1) * kInternalEntrySize + 8, &c, 4);
  }
}
uint64_t InternalKey(const char* p, size_t i) {
  uint64_t k;
  std::memcpy(&k, p + kHeaderSize + 4 + i * kInternalEntrySize, 8);
  return k;
}
void SetInternalKey(char* p, size_t i, uint64_t k) {
  std::memcpy(p + kHeaderSize + 4 + i * kInternalEntrySize, &k, 8);
}

/// Index of the first leaf entry with key >= `key`.
size_t LeafLowerBound(const char* p, uint64_t key) {
  size_t lo = 0;
  size_t hi = Count(p);
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (LeafKey(p, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Child slot to descend into for `key`: number of separators <= key.
size_t InternalChildIndex(const char* p, uint64_t key) {
  size_t lo = 0;
  size_t hi = Count(p);
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (InternalKey(p, mid) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

size_t BPlusTree::LeafCapacity() { return kLeafCapacity; }
size_t BPlusTree::InternalCapacity() { return kInternalCapacity; }

BPlusTree BPlusTree::Create(BufferPool* pool) {
  PageId root;
  PageGuard guard = PageGuard::New(pool, &root);
  SetLeaf(guard.data(), true);
  SetCount(guard.data(), 0);
  SetNext(guard.data(), kInvalidPageId);
  guard.MarkDirty();
  return BPlusTree(pool, root);
}

BPlusTree BPlusTree::BulkLoad(
    BufferPool* pool, std::span<const std::pair<Key, Value>> sorted) {
  if (sorted.empty()) {
    return Create(pool);
  }
  // Leaves first, ~90% full so subsequent inserts do not split at once.
  const size_t leaf_fill = std::max<size_t>(1, kLeafCapacity * 9 / 10);
  struct ChildRef {
    Key first_key;
    PageId page;
  };
  std::vector<ChildRef> level;
  PageId prev_leaf = kInvalidPageId;
  for (size_t start = 0; start < sorted.size(); start += leaf_fill) {
    const size_t end = std::min(sorted.size(), start + leaf_fill);
    PageId id;
    PageGuard guard = PageGuard::New(pool, &id);
    char* p = guard.data();
    SetLeaf(p, true);
    SetCount(p, static_cast<uint16_t>(end - start));
    SetNext(p, kInvalidPageId);
    for (size_t i = start; i < end; ++i) {
      if (i > start) {
        DSKS_CHECK_MSG(sorted[i - 1].first < sorted[i].first,
                       "BulkLoad requires strictly increasing keys");
      }
      SetLeafEntry(p, i - start, sorted[i].first, sorted[i].second);
    }
    guard.MarkDirty();
    guard.Release();
    if (prev_leaf != kInvalidPageId) {
      PageGuard prev = FetchForBuild(pool, prev_leaf);
      SetNext(prev.data(), id);
      prev.MarkDirty();
    }
    prev_leaf = id;
    level.push_back(ChildRef{sorted[start].first, id});
  }

  // Internal levels until a single node remains.
  const size_t fanout = std::max<size_t>(2, kInternalCapacity * 9 / 10);
  while (level.size() > 1) {
    std::vector<ChildRef> parents;
    for (size_t start = 0; start < level.size(); start += fanout + 1) {
      const size_t end = std::min(level.size(), start + fanout + 1);
      PageId id;
      PageGuard guard = PageGuard::New(pool, &id);
      char* p = guard.data();
      SetLeaf(p, false);
      SetNext(p, kInvalidPageId);
      SetCount(p, static_cast<uint16_t>(end - start - 1));
      SetChild(p, 0, level[start].page);
      for (size_t i = start + 1; i < end; ++i) {
        SetInternalKey(p, i - start - 1, level[i].first_key);
        SetChild(p, i - start, level[i].page);
      }
      guard.MarkDirty();
      parents.push_back(ChildRef{level[start].first_key, id});
    }
    level = std::move(parents);
  }
  return BPlusTree(pool, level[0].page);
}

std::optional<BPlusTree::SplitResult> BPlusTree::InsertRecursive(PageId node,
                                                                 Key key,
                                                                 Value value) {
  PageGuard guard = FetchForBuild(pool_, node);
  char* p = guard.data();

  if (IsLeaf(p)) {
    const size_t n = Count(p);
    const size_t idx = LeafLowerBound(p, key);
    if (idx < n && LeafKey(p, idx) == key) {
      SetLeafEntry(p, idx, key, value);  // overwrite
      guard.MarkDirty();
      return std::nullopt;
    }
    if (n < kLeafCapacity) {
      std::memmove(p + kHeaderSize + (idx + 1) * kLeafEntrySize,
                   p + kHeaderSize + idx * kLeafEntrySize,
                   (n - idx) * kLeafEntrySize);
      SetLeafEntry(p, idx, key, value);
      SetCount(p, static_cast<uint16_t>(n + 1));
      guard.MarkDirty();
      return std::nullopt;
    }
    // Split the full leaf: left keeps the first half, right the rest.
    PageId right_id;
    PageGuard right = PageGuard::New(pool_, &right_id);
    char* r = right.data();
    SetLeaf(r, true);
    const size_t left_n = (n + 1) / 2;
    const size_t right_n = n - left_n;
    std::memcpy(r + kHeaderSize, p + kHeaderSize + left_n * kLeafEntrySize,
                right_n * kLeafEntrySize);
    SetCount(r, static_cast<uint16_t>(right_n));
    SetNext(r, Next(p));
    SetCount(p, static_cast<uint16_t>(left_n));
    SetNext(p, right_id);
    guard.MarkDirty();
    right.MarkDirty();
    // Insert into whichever side now owns the key's range.
    const Key separator = LeafKey(r, 0);
    right.Release();
    guard.Release();
    if (key < separator) {
      auto sub = InsertRecursive(node, key, value);
      DSKS_CHECK(!sub.has_value());
    } else {
      auto sub = InsertRecursive(right_id, key, value);
      DSKS_CHECK(!sub.has_value());
    }
    return SplitResult{separator, right_id};
  }

  // Internal node: descend, then apply any child split here.
  const size_t slot = InternalChildIndex(p, key);
  const PageId child = Child(p, slot);
  guard.Release();  // do not hold a pin across the recursive call
  auto split = InsertRecursive(child, key, value);
  if (!split.has_value()) {
    return std::nullopt;
  }

  PageGuard again = FetchForBuild(pool_, node);
  p = again.data();
  const size_t n = Count(p);
  if (n < kInternalCapacity) {
    // Shift separators/children right of `slot` and place the new entry.
    for (size_t i = n; i > slot; --i) {
      SetInternalKey(p, i, InternalKey(p, i - 1));
      SetChild(p, i + 1, Child(p, i));
    }
    SetInternalKey(p, slot, split->separator);
    SetChild(p, slot + 1, split->right);
    SetCount(p, static_cast<uint16_t>(n + 1));
    again.MarkDirty();
    return std::nullopt;
  }

  // Split the full internal node. Gather the n+1 separators and n+2
  // children that logically exist after the pending insertion.
  std::vector<Key> keys(n + 1);
  std::vector<PageId> children(n + 2);
  for (size_t i = 0; i < n; ++i) keys[i] = InternalKey(p, i);
  for (size_t i = 0; i <= n; ++i) children[i] = Child(p, i);
  keys.insert(keys.begin() + slot, split->separator);
  children.insert(children.begin() + slot + 1, split->right);

  const size_t total = n + 1;          // separators after insert
  const size_t mid = total / 2;        // separator promoted to the parent
  const Key up_key = keys[mid];

  PageId right_id;
  PageGuard right = PageGuard::New(pool_, &right_id);
  char* r = right.data();
  SetLeaf(r, false);
  SetNext(r, kInvalidPageId);
  const size_t right_n = total - mid - 1;
  SetCount(r, static_cast<uint16_t>(right_n));
  SetChild(r, 0, children[mid + 1]);
  for (size_t i = 0; i < right_n; ++i) {
    SetInternalKey(r, i, keys[mid + 1 + i]);
    SetChild(r, i + 1, children[mid + 2 + i]);
  }
  right.MarkDirty();

  SetCount(p, static_cast<uint16_t>(mid));
  SetChild(p, 0, children[0]);
  for (size_t i = 0; i < mid; ++i) {
    SetInternalKey(p, i, keys[i]);
    SetChild(p, i + 1, children[i + 1]);
  }
  again.MarkDirty();
  return SplitResult{up_key, right_id};
}

void BPlusTree::Insert(Key key, Value value) {
  auto split = InsertRecursive(root_, key, value);
  if (!split.has_value()) {
    return;
  }
  // Grow a new root above the old one.
  PageId new_root;
  PageGuard guard = PageGuard::New(pool_, &new_root);
  char* p = guard.data();
  SetLeaf(p, false);
  SetCount(p, 1);
  SetNext(p, kInvalidPageId);
  SetChild(p, 0, root_);
  SetInternalKey(p, 0, split->separator);
  SetChild(p, 1, split->right);
  guard.MarkDirty();
  root_ = new_root;
}

Status BPlusTree::FindLeaf(Key key, PageId* leaf) const {
  PageId node = root_;
  // A healthy tree over 2^32 pages is < 64 levels deep; anything deeper
  // means a corrupted internal node formed a cycle.
  for (int depth = 0; depth < 64; ++depth) {
    PageGuard guard;
    DSKS_RETURN_IF_ERROR(PageGuard::Fetch(pool_, node, &guard));
    const char* p = guard.data();
    if (IsLeaf(p)) {
      *leaf = node;
      return Status::Ok();
    }
    node = Child(p, InternalChildIndex(p, key));
  }
  return Status::Corruption("B+tree descent exceeded maximum depth");
}

Status BPlusTree::Get(Key key, std::optional<Value>* result) const {
  result->reset();
  PageId leaf = kInvalidPageId;
  DSKS_RETURN_IF_ERROR(FindLeaf(key, &leaf));
  PageGuard guard;
  DSKS_RETURN_IF_ERROR(PageGuard::Fetch(pool_, leaf, &guard));
  const char* p = guard.data();
  const size_t idx = LeafLowerBound(p, key);
  if (idx < Count(p) && LeafKey(p, idx) == key) {
    *result = LeafValue(p, idx);
  }
  return Status::Ok();
}

Status BPlusTree::MultiGet(BufferPool* pool, std::span<const PageId> roots,
                           Key key,
                           std::span<std::optional<Value>> results) {
  DSKS_CHECK_MSG(results.size() == roots.size(),
                 "MultiGet needs one result slot per root");
  const size_t t = roots.size();
  std::vector<PageId> current(roots.begin(), roots.end());
  std::vector<bool> done(t, false);
  std::vector<PageId> batch;
  batch.reserve(t);
  for (size_t i = 0; i < t; ++i) {
    results[i].reset();
    if (current[i] == kInvalidPageId) {
      done[i] = true;
    }
  }
  for (int depth = 0; depth < 64; ++depth) {
    batch.clear();
    for (size_t i = 0; i < t; ++i) {
      if (!done[i]) {
        batch.push_back(current[i]);
      }
    }
    if (batch.empty()) {
      return Status::Ok();
    }
    // Speculative: resident and in-flight pages are skipped, failures are
    // re-surfaced by the demand Fetch below. Duplicate roots are fine.
    pool->Prefetch(std::span<const PageId>(batch.data(), batch.size()));
    for (size_t i = 0; i < t; ++i) {
      if (done[i]) {
        continue;
      }
      PageGuard guard;
      DSKS_RETURN_IF_ERROR(PageGuard::Fetch(pool, current[i], &guard));
      const char* p = guard.data();
      if (IsLeaf(p)) {
        const size_t idx = LeafLowerBound(p, key);
        if (idx < Count(p) && LeafKey(p, idx) == key) {
          results[i] = LeafValue(p, idx);
        }
        done[i] = true;
      } else {
        current[i] = Child(p, InternalChildIndex(p, key));
      }
    }
  }
  return Status::Corruption("B+tree descent exceeded maximum depth");
}

Status BPlusTree::RangeScan(
    Key lo, Key hi, const std::function<bool(Key, Value)>& visit) const {
  // Readahead window: how many leaves past the cursor's first leaf are
  // speculatively pulled in one batch. Leaves hold ~250 entries, so eight
  // pages cover ~2000 upcoming range entries — deep enough to hide the
  // chain walk's I/O, small next to the paper's 2% pool. With an async
  // disk engine the submission never blocks the scan, so the window
  // doubles to keep more of the leaf chain in flight ahead of the cursor.
  constexpr size_t kScanReadaheadSync = 8;
  constexpr size_t kScanReadaheadAsync = 16;
  const size_t scan_readahead = pool_->disk()->async_enabled()
                                    ? kScanReadaheadAsync
                                    : kScanReadaheadSync;
  PageId readahead[kScanReadaheadAsync];
  size_t n_readahead = 0;
  PageId leaf = kInvalidPageId;
  {
    // FindLeaf's descent, additionally remembering the upcoming in-range
    // children of each internal node; the deepest level's snapshot is
    // exactly the leaf chain ahead of the cursor (bounded by `hi`: a
    // sibling whose separator exceeds the range end is never visited).
    PageId node = root_;
    for (int depth = 0; depth < 64; ++depth) {
      PageGuard guard;
      DSKS_RETURN_IF_ERROR(PageGuard::Fetch(pool_, node, &guard));
      const char* p = guard.data();
      if (IsLeaf(p)) {
        leaf = node;
        break;
      }
      const size_t slot = InternalChildIndex(p, lo);
      const size_t n = Count(p);
      n_readahead = 0;
      for (size_t j = slot + 1;
           j <= n && n_readahead < scan_readahead; ++j) {
        if (InternalKey(p, j - 1) > hi) {
          break;
        }
        readahead[n_readahead++] = Child(p, j);
      }
      node = Child(p, slot);
    }
    if (leaf == kInvalidPageId) {
      return Status::Corruption("B+tree descent exceeded maximum depth");
    }
  }
  if (n_readahead > 0) {
    pool_->Prefetch(std::span<const PageId>(readahead, n_readahead));
  }
  while (leaf != kInvalidPageId) {
    PageGuard guard;
    DSKS_RETURN_IF_ERROR(PageGuard::Fetch(pool_, leaf, &guard));
    const char* p = guard.data();
    const size_t n = Count(p);
    for (size_t i = LeafLowerBound(p, lo); i < n; ++i) {
      const Key k = LeafKey(p, i);
      if (k > hi) {
        return Status::Ok();
      }
      if (!visit(k, LeafValue(p, i))) {
        return Status::Ok();
      }
    }
    leaf = Next(p);
  }
  return Status::Ok();
}

uint64_t BPlusTree::CountEntries() const {
  uint64_t total = 0;
  const Status s = RangeScan(0, UINT64_MAX, [&total](Key, Value) {
    ++total;
    return true;
  });
  DSKS_CHECK_MSG(s.ok(), "CountEntries on a faulty disk");
  return total;
}

uint64_t BPlusTree::CountPagesRecursive(PageId node) const {
  PageGuard guard = FetchForBuild(pool_, node);
  const char* p = guard.data();
  if (IsLeaf(p)) {
    return 1;
  }
  uint64_t total = 1;
  const size_t n = Count(p);
  std::vector<PageId> children(n + 1);
  for (size_t i = 0; i <= n; ++i) {
    children[i] = Child(p, i);
  }
  guard.Release();
  for (PageId c : children) {
    total += CountPagesRecursive(c);
  }
  return total;
}

uint64_t BPlusTree::CountPages() const { return CountPagesRecursive(root_); }

}  // namespace dsks
