#ifndef DSKS_BTREE_BPLUS_TREE_H_
#define DSKS_BTREE_BPLUS_TREE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <utility>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace dsks {

/// Disk-based B+ tree with fixed-size 64-bit keys and 64-bit values, built
/// on the paged buffer pool. The inverted index of §3.1 maintains one such
/// tree per keyword, keyed by the Z-order code of the edge's center point
/// (disambiguated by edge id in the low bits); values point at posting
/// pages.
///
/// Keys are unique; Insert of an existing key overwrites its value. The
/// tree starts as a single leaf page and grows by splitting; all node
/// accesses go through the buffer pool and therefore show up in the I/O
/// statistics.
class BPlusTree {
 public:
  using Key = uint64_t;
  using Value = uint64_t;

  /// Opens an existing tree rooted at `root`.
  BPlusTree(BufferPool* pool, PageId root) : pool_(pool), root_(root) {}

  /// Creates an empty tree (a single empty leaf) and returns its handle.
  static BPlusTree Create(BufferPool* pool);

  /// Builds a tree bottom-up from strictly increasing (key, value) pairs —
  /// O(n) page writes instead of O(n log n) descent work. Used by the
  /// inverted-file builder, whose per-keyword edge lists are produced in
  /// sorted order.
  static BPlusTree BulkLoad(BufferPool* pool,
                            std::span<const std::pair<Key, Value>> sorted);

  /// Inserts or overwrites. May change root().
  void Insert(Key key, Value value);

  /// Point lookup. `*result` is nullopt when the key is absent; a non-OK
  /// status (disk error during the descent) leaves `*result` nullopt.
  Status Get(Key key, std::optional<Value>* result) const;

  /// Point lookup for fault-free-by-contract callers (build paths, tests);
  /// CHECK-fails on a disk error.
  std::optional<Value> Get(Key key) const {
    std::optional<Value> result;
    const Status s = Get(key, &result);
    DSKS_CHECK_MSG(s.ok(), "BPlusTree::Get on a faulty disk");
    return result;
  }

  /// Looks up the same key in several trees at once, descending them in
  /// lockstep: before any node of a level is fetched, the whole level is
  /// offered to the pool as one speculative batch, so T point lookups cost
  /// one batched read per level on a cold pool instead of T blocking reads
  /// per level. The inverted file uses this to probe every query keyword's
  /// tree for one edge key in a handful of round trips.
  ///
  /// `results[i]` matches what `BPlusTree(pool, roots[i]).Get(key)` would
  /// produce; a root of kInvalidPageId yields nullopt without I/O. With
  /// prefetching disabled on the pool this degenerates to T independent
  /// descents with identical read counts. On a disk error the partial
  /// results are meaningless; discard them.
  static Status MultiGet(BufferPool* pool, std::span<const PageId> roots,
                         Key key, std::span<std::optional<Value>> results);

  /// Visits all entries with lo <= key <= hi in key order. The visitor
  /// returns false to stop early (that is not an error). Disk errors
  /// during the scan are returned; entries already visited stand.
  Status RangeScan(Key lo, Key hi,
                   const std::function<bool(Key, Value)>& visit) const;

  /// Number of entries (O(leaves) scan; for stats and tests).
  uint64_t CountEntries() const;

  /// Number of pages owned by the tree (O(nodes) walk; for index-size
  /// accounting).
  uint64_t CountPages() const;

  PageId root() const { return root_; }

  /// Max entries per leaf/internal node; exposed for tests that want to
  /// force splits.
  static size_t LeafCapacity();
  static size_t InternalCapacity();

 private:
  struct SplitResult {
    Key separator;
    PageId right;
  };

  /// Recursive insert; returns the split to apply at the parent, if any.
  std::optional<SplitResult> InsertRecursive(PageId node, Key key,
                                             Value value);

  /// Descends to the leaf that would contain `key`. Reports a cyclic or
  /// over-deep descent (corrupted internal node) as Corruption instead of
  /// looping forever.
  Status FindLeaf(Key key, PageId* leaf) const;

  uint64_t CountPagesRecursive(PageId node) const;

  BufferPool* pool_;
  PageId root_;
};

}  // namespace dsks

#endif  // DSKS_BTREE_BPLUS_TREE_H_
