#include "index/kd_edge_order.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"

namespace dsks {

KdEdgeOrder::KdEdgeOrder(const RoadNetwork& net) {
  const size_t n = net.num_edges();
  edge_at_.resize(n);
  std::iota(edge_at_.begin(), edge_at_.end(), EdgeId{0});
  if (n > 1) {
    BuildRecursive(&edge_at_, 0, n, 0, net);
  }
  position_.resize(n);
  for (uint32_t pos = 0; pos < n; ++pos) {
    position_[edge_at_[pos]] = pos;
  }
}

void KdEdgeOrder::BuildRecursive(std::vector<EdgeId>* edges, size_t lo,
                                 size_t hi, int axis,
                                 const RoadNetwork& net) {
  if (hi - lo <= 1) {
    return;
  }
  const size_t mid = (lo + hi) / 2;
  auto cmp = [&net, axis](EdgeId a, EdgeId b) {
    const Point ca = net.EdgeCenter(a);
    const Point cb = net.EdgeCenter(b);
    const double va = axis == 0 ? ca.x : ca.y;
    const double vb = axis == 0 ? cb.x : cb.y;
    return va != vb ? va < vb : a < b;
  };
  std::nth_element(edges->begin() + lo, edges->begin() + mid,
                   edges->begin() + hi, cmp);
  BuildRecursive(edges, lo, mid, 1 - axis, net);
  BuildRecursive(edges, mid, hi, 1 - axis, net);
}

uint64_t KdEdgeOrder::CompactedTrieNodesRecursive(
    std::span<const uint32_t> positions, uint32_t range_lo,
    uint32_t range_hi) const {
  const uint32_t range_size = range_hi - range_lo;
  // Uniform subtree (all zeros or all ones): one compacted node.
  if (positions.empty() || positions.size() == range_size) {
    return 1;
  }
  DSKS_CHECK(range_size > 1);
  const uint32_t mid = range_lo + range_size / 2;  // matches BuildRecursive
  auto split = std::lower_bound(positions.begin(), positions.end(), mid);
  const auto left =
      positions.subspan(0, static_cast<size_t>(split - positions.begin()));
  const auto right =
      positions.subspan(static_cast<size_t>(split - positions.begin()));
  return 1 + CompactedTrieNodesRecursive(left, range_lo, mid) +
         CompactedTrieNodesRecursive(right, mid, range_hi);
}

uint64_t KdEdgeOrder::CompactedTrieNodes(
    std::span<const uint32_t> sorted_positions) const {
  if (edge_at_.empty()) {
    return 0;
  }
  return CompactedTrieNodesRecursive(sorted_positions, 0,
                                     static_cast<uint32_t>(edge_at_.size()));
}

}  // namespace dsks
