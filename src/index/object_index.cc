#include "index/object_index.h"

#include <algorithm>
#include <map>

namespace dsks {

Status ObjectIndex::LoadObjectsUnion(EdgeId edge,
                                     std::span<const TermId> terms,
                                     std::vector<LoadedObjectUnion>* out) {
  out->clear();
  // Generic implementation on top of single-term AND loads; subclasses
  // with cheaper access paths may override.
  std::map<ObjectId, LoadedObjectUnion> merged;
  std::vector<LoadedObject> per_term;
  for (TermId t : terms) {
    const TermId single[1] = {t};
    DSKS_RETURN_IF_ERROR(LoadObjects(edge, single, &per_term));
    for (const LoadedObject& o : per_term) {
      auto [it, inserted] = merged.try_emplace(o.id);
      if (inserted) {
        it->second.id = o.id;
        it->second.w1 = o.w1;
      }
      ++it->second.matched;
    }
  }
  out->reserve(merged.size());
  for (const auto& [id, o] : merged) {
    out->push_back(o);
  }
  return Status::Ok();
}

}  // namespace dsks
