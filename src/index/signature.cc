#include "index/signature.h"

#include <algorithm>

#include "common/macros.h"

namespace dsks {

SignatureFile::SignatureFile(const ObjectSet& objects,
                             const KdEdgeOrder& order, size_t vocab_size,
                             size_t min_postings)
    : order_(&order) {
  const RoadNetwork& net = objects.network();
  std::vector<uint64_t> posting_count(vocab_size, 0);
  for (const auto& obj : objects.objects()) {
    for (TermId t : obj.terms) {
      ++posting_count[t];
    }
  }

  positions_.assign(vocab_size, {});
  for (EdgeId e = 0; e < net.num_edges(); ++e) {
    const uint32_t pos = order.PositionOf(e);
    for (ObjectId id : objects.ObjectsOnEdge(e)) {
      for (TermId t : objects.object(id).terms) {
        if (posting_count[t] >= min_postings) {
          positions_[t].push_back(pos);
        }
      }
    }
  }
  for (TermId t = 0; t < vocab_size; ++t) {
    auto& v = positions_[t];
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    if (!v.empty()) {
      size_bytes_ = size_bytes_ + (order.CompactedTrieNodes(v) + 7) / 8;
    }
  }
}

void SignatureFile::AddObjectTerms(EdgeId e, std::span<const TermId> terms) {
  const uint32_t pos = order_->PositionOf(e);
  for (TermId t : terms) {
    DSKS_CHECK(t < positions_.size());
    auto& v = positions_[t];
    if (v.empty()) {
      continue;  // unsigned keyword: already pass-through
    }
    auto it = std::lower_bound(v.begin(), v.end(), pos);
    if (it == v.end() || *it != pos) {
      v.insert(it, pos);
    }
  }
}

bool SignatureFile::Test(EdgeId e, TermId t) const {
  DSKS_CHECK(t < positions_.size());
  const auto& v = positions_[t];
  if (v.empty()) {
    return true;  // no signature built for this keyword
  }
  return std::binary_search(v.begin(), v.end(), order_->PositionOf(e));
}

}  // namespace dsks
