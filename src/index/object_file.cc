#include "index/object_file.h"

#include <cstring>

#include "common/macros.h"
#include "storage/page.h"

namespace dsks {

namespace {

// 16-byte record: u32 edge, u16 pos, u16 reserved, f64 w1.
constexpr size_t kRecordSize = 16;
constexpr size_t kRecordsPerPage = kPageSize / kRecordSize;

}  // namespace

ObjectFile::ObjectFile(BufferPool* pool, const ObjectSet& objects)
    : pool_(pool), num_objects_(objects.size()) {
  const RoadNetwork& net = objects.network();

  // Precompute each object's rank along its edge.
  std::vector<uint16_t> pos_of(objects.size(), 0);
  for (EdgeId e = 0; e < net.num_edges(); ++e) {
    uint16_t pos = 0;
    for (ObjectId id : objects.ObjectsOnEdge(e)) {
      pos_of[id] = pos++;
    }
  }

  const size_t num_pages =
      (objects.size() + kRecordsPerPage - 1) / kRecordsPerPage;
  pages_.reserve(num_pages);
  for (size_t p = 0; p < num_pages; ++p) {
    PageId id;
    PageGuard guard = PageGuard::New(pool_, &id);
    char* data = guard.data();
    const size_t begin = p * kRecordsPerPage;
    const size_t end = std::min(objects.size(), begin + kRecordsPerPage);
    for (size_t i = begin; i < end; ++i) {
      const SpatioTextualObject& obj = objects.object(static_cast<ObjectId>(i));
      char* base = data + (i - begin) * kRecordSize;
      std::memcpy(base, &obj.edge, 4);
      std::memcpy(base + 4, &pos_of[i], 2);
      uint16_t reserved = 0;
      std::memcpy(base + 6, &reserved, 2);
      const double w1 = net.WeightFromN1(obj.edge, obj.offset);
      std::memcpy(base + 8, &w1, 8);
    }
    guard.MarkDirty();
    pages_.push_back(id);
  }
}

Status ObjectFile::Get(ObjectId id, Record* out) const {
  DSKS_CHECK_MSG(id < num_objects_, "object id out of range");
  PageGuard guard;
  DSKS_RETURN_IF_ERROR(
      PageGuard::Fetch(pool_, pages_[id / kRecordsPerPage], &guard));
  const char* base = guard.data() + (id % kRecordsPerPage) * kRecordSize;
  std::memcpy(&out->edge, base, 4);
  std::memcpy(&out->pos, base + 4, 2);
  std::memcpy(&out->w1, base + 8, 8);
  return Status::Ok();
}

}  // namespace dsks
