#ifndef DSKS_INDEX_SIGNATURE_H_
#define DSKS_INDEX_SIGNATURE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/object_set.h"
#include "graph/types.h"
#include "index/kd_edge_order.h"

namespace dsks {

/// The in-memory signature file of §3.1: for each keyword t, the set of
/// edges that carry at least one object containing t (I(e,t) = 1). The
/// signature test lets the SK search skip an edge — with zero I/O — as
/// soon as one query keyword's bit is 0.
///
/// Each keyword's bit vector is stored as the sorted list of KD positions
/// of its 1-edges (an exact, lossless encoding); SizeBytes() reports the
/// size of the equivalent compacted KD-trie, which is what the paper's
/// index-size figures measure.
///
/// Following the paper, no signature is built for a keyword whose whole
/// inverted file fits into one data page (`min_postings`); Test() returns
/// true for such keywords.
class SignatureFile {
 public:
  /// `min_postings`: keywords with fewer total postings than this get no
  /// signature (pass-through). The paper's rule corresponds to the posting
  /// capacity of one page.
  SignatureFile(const ObjectSet& objects, const KdEdgeOrder& order,
                size_t vocab_size, size_t min_postings);

  /// I(e, t): true if edge `e` may contain an object with keyword `t`
  /// (exact for signed keywords, always true for unsigned ones).
  bool Test(EdgeId e, TermId t) const;

  /// True if keyword `t` has a signature (its bit vector is materialized).
  bool HasSignature(TermId t) const { return !positions_[t].empty(); }

  /// Dynamic-ingestion hook: sets I(e, t) = 1 for every signed term of a
  /// newly indexed object. Unsigned keywords (below the build-time posting
  /// threshold) stay pass-through, so the signature never produces false
  /// negatives. SizeBytes() keeps its build-time value.
  void AddObjectTerms(EdgeId e, std::span<const TermId> terms);

  /// Compacted signature size over all keywords (one bit per trie node).
  uint64_t SizeBytes() const { return size_bytes_; }

  const KdEdgeOrder& order() const { return *order_; }

 private:
  const KdEdgeOrder* order_;
  /// Per keyword: sorted KD positions of edges with the keyword; empty for
  /// keywords below `min_postings` (treated as all-ones).
  std::vector<std::vector<uint32_t>> positions_;
  uint64_t size_bytes_ = 0;
};

}  // namespace dsks

#endif  // DSKS_INDEX_SIGNATURE_H_
