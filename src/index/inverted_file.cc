#include "index/inverted_file.h"

#include <algorithm>
#include <unordered_map>

#include "common/macros.h"
#include "spatial/zorder.h"

namespace dsks {

InvertedFileIndex::InvertedFileIndex(BufferPool* pool,
                                     const ObjectSet& objects,
                                     size_t vocab_size)
    : pool_(pool) {
  const RoadNetwork& net = objects.network();
  DSKS_CHECK_MSG(objects.finalized(), "object set must be finalized");

  edge_zcode_.resize(net.num_edges());
  for (EdgeId e = 0; e < net.num_edges(); ++e) {
    edge_zcode_[e] = ZOrder::Encode(net.EdgeCenter(e));
  }

  // Collect per-term posting runs. Iterating edges in id order and objects
  // in position order makes each run sorted by position for free.
  struct Run {
    EdgeId edge;
    std::vector<PostingFile::Entry> entries;
  };
  std::vector<std::vector<Run>> term_runs(vocab_size);
  posting_count_.assign(vocab_size, 0);
  for (EdgeId e = 0; e < net.num_edges(); ++e) {
    uint16_t pos = 0;
    for (ObjectId id : objects.ObjectsOnEdge(e)) {
      const SpatioTextualObject& obj = objects.object(id);
      const double w1 = net.WeightFromN1(e, obj.offset);
      for (TermId t : obj.terms) {
        auto& runs = term_runs[t];
        if (runs.empty() || runs.back().edge != e) {
          runs.push_back(Run{e, {}});
        }
        runs.back().entries.push_back(PostingFile::Entry{id, pos, w1});
        ++posting_count_[t];
      }
      ++pos;
    }
  }

  // Phase 1: append every posting run (exclusive allocation so that runs
  // can span contiguous pages).
  postings_ = std::make_unique<PostingFile>(pool_);
  std::vector<std::vector<std::pair<EdgeId, PostingFile::Locator>>> locators(
      vocab_size);
  for (TermId t = 0; t < vocab_size; ++t) {
    for (const Run& run : term_runs[t]) {
      locators[t].emplace_back(run.edge, postings_->AppendRun(run.entries));
    }
    term_runs[t].clear();
  }

  // Phase 2: one B+tree per keyword mapping edge keys to run locators,
  // bulk loaded from the keyword's sorted edge-key list.
  term_roots_.assign(vocab_size, kInvalidPageId);
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  for (TermId t = 0; t < vocab_size; ++t) {
    if (locators[t].empty()) {
      continue;
    }
    pairs.clear();
    pairs.reserve(locators[t].size());
    for (const auto& [edge, loc] : locators[t]) {
      pairs.emplace_back(EdgeKey(edge_zcode_[edge], edge), loc);
    }
    std::sort(pairs.begin(), pairs.end());
    BPlusTree tree = BPlusTree::BulkLoad(pool_, pairs);
    term_roots_[t] = tree.root();
    btree_pages_ += tree.CountPages();
  }
  directory_bytes_ = term_roots_.size() * sizeof(PageId) +
                     edge_zcode_.size() * sizeof(uint64_t);

  edge_next_pos_.assign(net.num_edges(), 0);
  for (EdgeId e = 0; e < net.num_edges(); ++e) {
    edge_next_pos_[e] =
        static_cast<uint16_t>(objects.ObjectsOnEdge(e).size());
  }
}

void InvertedFileIndex::AddObject(ObjectId id, EdgeId edge, double w1,
                                  std::span<const TermId> terms) {
  DSKS_CHECK_MSG(edge < edge_zcode_.size(), "unknown edge");
  DSKS_CHECK_MSG(!terms.empty(), "object needs at least one keyword");
  DSKS_CHECK(std::is_sorted(terms.begin(), terms.end()));
  const uint16_t pos = edge_next_pos_[edge]++;

  std::vector<PostingFile::Entry> run;
  for (TermId t : terms) {
    DSKS_CHECK_MSG(t < term_roots_.size(), "term outside vocabulary");
    run.clear();
    const uint64_t key = EdgeKey(edge_zcode_[edge], edge);
    std::optional<PostingFile::Locator> loc;
    Status status = FindRun(t, edge, &loc);
    if (status.ok() && loc.has_value()) {
      status = postings_->ReadRun(*loc, &run);
    }
    DSKS_CHECK_MSG(status.ok(), "AddObject on a faulty disk");
    // New positions are assigned in increasing order, so appending keeps
    // the run sorted by position.
    run.push_back(PostingFile::Entry{id, pos, w1});
    const PostingFile::Locator new_loc = postings_->AppendRun(run);
    if (term_roots_[t] == kInvalidPageId) {
      BPlusTree tree = BPlusTree::Create(pool_);
      tree.Insert(key, new_loc);
      term_roots_[t] = tree.root();
    } else {
      BPlusTree tree(pool_, term_roots_[t]);
      tree.Insert(key, new_loc);
      term_roots_[t] = tree.root();  // root may change on split
    }
    ++posting_count_[t];
  }
  OnObjectAdded(id, edge, terms);
}

Status InvertedFileIndex::FindRun(
    TermId t, EdgeId edge, std::optional<PostingFile::Locator>* loc) const {
  loc->reset();
  if (t >= term_roots_.size() || term_roots_[t] == kInvalidPageId) {
    return Status::Ok();
  }
  BPlusTree tree(pool_, term_roots_[t]);
  return tree.Get(EdgeKey(edge_zcode_[edge], edge), loc);
}

Status InvertedFileIndex::LoadObjects(EdgeId edge,
                                      std::span<const TermId> terms,
                                      std::vector<LoadedObject>* out) {
  out->clear();
  DSKS_CHECK_MSG(!terms.empty(), "query must have at least one keyword");
  ++stats_.edges_probed;

  std::vector<PosRange> ranges;
  if (!CheckSignature(edge, terms, &ranges)) {
    ++stats_.edges_skipped_by_signature;
    return Status::Ok();
  }
  auto in_ranges = [&ranges](uint16_t pos) {
    if (ranges.empty()) {
      return true;
    }
    for (const PosRange& r : ranges) {
      if (pos >= r.start && pos < r.end) {
        return true;
      }
    }
    return false;
  };

  uint64_t loaded_here = 0;
  // Resolve every term's run locator up front. With prefetching enabled
  // the per-keyword B+trees are descended in lockstep — one batched read
  // per level instead of one blocking miss per tree per level — and the
  // surviving runs' pages are pulled in a single speculative batch so the
  // ReadRun calls below hit the pool. With prefetching disabled this is
  // the classic one-tree-at-a-time probe with identical read counts.
  std::vector<std::optional<PostingFile::Locator>> locs(terms.size());
  if (pool_->prefetch_enabled() && terms.size() > 1) {
    std::vector<PageId> roots(terms.size(), kInvalidPageId);
    for (size_t i = 0; i < terms.size(); ++i) {
      if (terms[i] < term_roots_.size()) {
        roots[i] = term_roots_[terms[i]];
      }
    }
    DSKS_RETURN_IF_ERROR(BPlusTree::MultiGet(
        pool_, roots, EdgeKey(edge_zcode_[edge], edge),
        std::span<std::optional<uint64_t>>(locs.data(), locs.size())));
    // Prefetch only the prefix up to the first absent term: the
    // intersection loop below stops there, and runs past it are never
    // read.
    std::vector<PostingFile::Locator> present;
    present.reserve(terms.size());
    for (const auto& l : locs) {
      if (!l.has_value()) {
        break;
      }
      present.push_back(*l);
    }
    if (present.size() > 1) {
      postings_->PrefetchRuns(present);
    }
  } else {
    for (size_t i = 0; i < terms.size(); ++i) {
      DSKS_RETURN_IF_ERROR(FindRun(terms[i], edge, &locs[i]));
      if (!locs[i].has_value()) {
        break;  // the intersection is already empty; skip the other trees
      }
    }
  }

  // Candidate map: position -> (entry, number of terms matched so far).
  std::vector<PostingFile::Entry> run;
  std::vector<PostingFile::Entry> candidates;
  bool first = true;
  for (const std::optional<PostingFile::Locator>& loc : locs) {
    if (!loc.has_value()) {
      candidates.clear();
      break;
    }
    DSKS_RETURN_IF_ERROR(postings_->ReadRun(*loc, &run));
    std::vector<PostingFile::Entry> filtered;
    filtered.reserve(run.size());
    for (const PostingFile::Entry& e : run) {
      if (in_ranges(e.pos)) {
        filtered.push_back(e);
      }
    }
    loaded_here += filtered.size();
    if (first) {
      candidates = std::move(filtered);
      first = false;
    } else {
      // Intersect by position (positions are unique per edge); both lists
      // are sorted by position.
      std::vector<PostingFile::Entry> merged;
      merged.reserve(std::min(candidates.size(), filtered.size()));
      size_t i = 0;
      size_t j = 0;
      while (i < candidates.size() && j < filtered.size()) {
        if (candidates[i].pos < filtered[j].pos) {
          ++i;
        } else if (candidates[i].pos > filtered[j].pos) {
          ++j;
        } else {
          merged.push_back(candidates[i]);
          ++i;
          ++j;
        }
      }
      candidates = std::move(merged);
    }
    if (candidates.empty()) {
      break;
    }
  }

  stats_.objects_loaded += loaded_here;
  if (candidates.empty()) {
    if (loaded_here > 0) {
      ++stats_.false_hits;
      stats_.false_hit_objects += loaded_here;
    }
    return Status::Ok();
  }
  out->reserve(candidates.size());
  for (const PostingFile::Entry& e : candidates) {
    out->push_back(LoadedObject{e.object, e.w1});
  }
  stats_.objects_returned += out->size();
  return Status::Ok();
}

uint64_t InvertedFileIndex::SizeBytes() const {
  return (postings_->num_pages() + btree_pages_) * kPageSize +
         directory_bytes_ + SummarySizeBytes();
}

}  // namespace dsks
