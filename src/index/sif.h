#ifndef DSKS_INDEX_SIF_H_
#define DSKS_INDEX_SIF_H_

#include <memory>
#include <string>

#include "index/inverted_file.h"
#include "index/kd_edge_order.h"
#include "index/posting_file.h"
#include "index/signature.h"

namespace dsks {

/// SIF — the signature-based inverted file of §3.1: IF plus an in-memory
/// per-keyword edge signature. An edge is skipped with zero I/O as soon as
/// one query keyword's signature bit is 0, which removes most of IF's
/// false hits under AND semantics.
class SifIndex : public InvertedFileIndex {
 public:
  /// `min_postings`: keywords whose inverted file fits below this posting
  /// count get no signature (the paper's one-page rule by default).
  SifIndex(BufferPool* pool, const ObjectSet& objects, size_t vocab_size,
           size_t min_postings = PostingFile::EntriesPerPage());

  std::string name() const override { return "SIF"; }

  const SignatureFile& signature() const { return *signature_; }
  const KdEdgeOrder& kd_order() const { return *kd_order_; }

 protected:
  bool CheckSignature(EdgeId edge, std::span<const TermId> terms,
                      std::vector<PosRange>* ranges) override;

  uint64_t SummarySizeBytes() const override {
    return signature_->SizeBytes();
  }

  void OnObjectAdded(ObjectId id, EdgeId edge,
                     std::span<const TermId> terms) override {
    (void)id;
    signature_->AddObjectTerms(edge, terms);
  }

 private:
  std::unique_ptr<KdEdgeOrder> kd_order_;
  std::unique_ptr<SignatureFile> signature_;
};

}  // namespace dsks

#endif  // DSKS_INDEX_SIF_H_
