#ifndef DSKS_INDEX_INVERTED_FILE_H_
#define DSKS_INDEX_INVERTED_FILE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "btree/bplus_tree.h"
#include "graph/object_set.h"
#include "index/object_index.h"
#include "index/posting_file.h"
#include "storage/buffer_pool.h"

namespace dsks {

/// The IF index of §3.1: for each keyword, the objects containing it are
/// kept with their edges in a B+tree whose key is the Z-order code of the
/// edge's center point (disambiguated by edge id in the low 32 bits);
/// leaf values locate posting runs in a shared PostingFile.
///
/// LoadObjects (Algorithm 2) fetches each query keyword's posting run for
/// the edge and intersects them; it stops as soon as an intermediate
/// intersection is empty. Subclasses (SIF/SIF-P/SIF-G) override
/// CheckSignature to skip edges — or restrict position ranges — before any
/// I/O happens.
class InvertedFileIndex : public ObjectIndex {
 public:
  InvertedFileIndex(BufferPool* pool, const ObjectSet& objects,
                    size_t vocab_size);

  Status LoadObjects(EdgeId edge, std::span<const TermId> terms,
                     std::vector<LoadedObject>* out) override;

  uint64_t SizeBytes() const override;

  std::string name() const override { return "IF"; }

  /// Dynamic ingestion: indexes one new object (id, edge, cost offset
  /// w(n1,o), sorted keyword set) without a rebuild. Each affected
  /// (keyword, edge) run is rewritten at the end of the posting file and
  /// its B+tree entry updated; subclasses extend their in-memory summaries
  /// via OnObjectAdded. The new object's position along the edge is an
  /// append rank (positions stay unique per edge, which is all query
  /// processing relies on).
  void AddObject(ObjectId id, EdgeId edge, double w1,
                 std::span<const TermId> terms);

  /// B+tree key of an edge: Z-order code of its center in the high 32
  /// bits, edge id in the low 32 bits.
  static uint64_t EdgeKey(uint64_t zcode, EdgeId edge) {
    return (zcode << 32) | edge;
  }

  /// Total postings of keyword `t` (for the one-page signature rule and
  /// SIF-G's frequent-term selection).
  uint64_t PostingCount(TermId t) const { return posting_count_[t]; }

  /// Bytes of the in-memory summaries (signatures, partitions, pair
  /// lists) on top of the disk-resident inverted file. The space axis of
  /// the Fig. 9 comparison.
  uint64_t InMemorySummaryBytes() const { return SummarySizeBytes(); }

  size_t vocab_size() const { return posting_count_.size(); }

 protected:
  /// A contiguous run of object positions on an edge that survived the
  /// signature tests; objects outside every range are not reported.
  struct PosRange {
    uint16_t start = 0;
    uint16_t end = 0;  // exclusive
  };

  /// Signature hook, evaluated before any I/O. Returns false to skip the
  /// edge entirely. If it returns true and fills `ranges`, only postings
  /// whose position lies in one of the ranges count as loaded (SIF-P's
  /// virtual edges); an empty `ranges` means the whole edge.
  virtual bool CheckSignature(EdgeId edge, std::span<const TermId> terms,
                              std::vector<PosRange>* ranges) {
    (void)edge;
    (void)terms;
    (void)ranges;
    return true;
  }

  /// Sizes of in-memory summaries added by subclasses.
  virtual uint64_t SummarySizeBytes() const { return 0; }

  /// Notifies subclasses that AddObject indexed a new object, so that
  /// signatures / partitions can be maintained.
  virtual void OnObjectAdded(ObjectId id, EdgeId edge,
                             std::span<const TermId> terms) {
    (void)id;
    (void)edge;
    (void)terms;
  }

  BufferPool* pool_;

 private:
  /// Fetches the posting run of (term, edge); `*loc` is nullopt if absent.
  /// Counts one probe I/O path through the B+tree.
  Status FindRun(TermId t, EdgeId edge,
                 std::optional<PostingFile::Locator>* loc) const;

  std::unique_ptr<PostingFile> postings_;
  /// Per-keyword B+tree roots (kInvalidPageId when the keyword is unused).
  std::vector<PageId> term_roots_;
  std::vector<uint64_t> posting_count_;
  /// Z-order code (32-bit) of each edge's center, precomputed.
  std::vector<uint64_t> edge_zcode_;
  /// Next position rank to assign per edge (for dynamic ingestion).
  std::vector<uint16_t> edge_next_pos_;
  uint64_t btree_pages_ = 0;
  uint64_t directory_bytes_ = 0;
};

}  // namespace dsks

#endif  // DSKS_INDEX_INVERTED_FILE_H_
