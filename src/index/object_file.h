#ifndef DSKS_INDEX_OBJECT_FILE_H_
#define DSKS_INDEX_OBJECT_FILE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/object_set.h"
#include "graph/types.h"
#include "storage/buffer_pool.h"

namespace dsks {

/// Disk-resident array of fixed-size object records addressed directly by
/// ObjectId. The IR (inverted R-tree) baseline uses it to verify, for each
/// candidate returned by the per-keyword R-trees, which edge the object
/// lies on and its cost offset — the extra I/O that makes IR expensive
/// (§5.1: "it is cost expensive to check the objects lying on an edge").
class ObjectFile {
 public:
  struct Record {
    EdgeId edge = kInvalidEdgeId;
    /// Cost from the edge's reference node n1 to the object.
    double w1 = 0.0;
    /// Rank of the object along its edge (offset order).
    uint16_t pos = 0;
  };

  /// Writes one record per object in id order.
  ObjectFile(BufferPool* pool, const ObjectSet& objects);

  ObjectFile(const ObjectFile&) = delete;
  ObjectFile& operator=(const ObjectFile&) = delete;
  ObjectFile(ObjectFile&&) = default;

  /// Fetches the record of `id` (one page access via the buffer pool).
  Status Get(ObjectId id, Record* out) const;

  /// Get for fault-free-by-contract callers; CHECK-fails on a disk error.
  Record Get(ObjectId id) const {
    Record rec;
    const Status s = Get(id, &rec);
    DSKS_CHECK_MSG(s.ok(), "ObjectFile::Get on a faulty disk");
    return rec;
  }

  uint64_t num_pages() const { return pages_.size(); }

 private:
  BufferPool* pool_;
  std::vector<PageId> pages_;
  size_t num_objects_ = 0;
};

}  // namespace dsks

#endif  // DSKS_INDEX_OBJECT_FILE_H_
