#ifndef DSKS_INDEX_INVERTED_RTREE_H_
#define DSKS_INDEX_INVERTED_RTREE_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/object_set.h"
#include "index/object_file.h"
#include "index/object_index.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"

namespace dsks {

/// IR — the inverted R-tree baseline (§5, [23]): one R-tree per keyword
/// over the locations of the objects containing it, plus an object file
/// for verification. It is "a natural extension of the spatial object
/// indexing method in [16]" and the slowest method in Fig. 6 because its
/// construction is independent of the road network: probing an edge
/// requires a Euclidean range search per keyword and then a record fetch
/// per surviving candidate to check that the object actually lies on the
/// probed edge.
class InvertedRTreeIndex : public ObjectIndex {
 public:
  InvertedRTreeIndex(BufferPool* pool, const ObjectSet& objects,
                     size_t vocab_size);

  Status LoadObjects(EdgeId edge, std::span<const TermId> terms,
                     std::vector<LoadedObject>* out) override;

  uint64_t SizeBytes() const override;

  std::string name() const override { return "IR"; }

  /// Euclidean candidate retrieval for the filter-and-refine baseline
  /// (core/euclidean_baseline.h): ids of objects within Euclidean
  /// distance `radius` of `center` containing every term, sorted by id.
  Status EuclideanCandidates(const Point& center, double radius,
                             std::span<const TermId> terms,
                             std::vector<ObjectId>* out);

  /// Object record lookup (charged as I/O), for candidate verification.
  Status GetRecord(ObjectId id, ObjectFile::Record* out) const {
    return object_file_->Get(id, out);
  }

 private:
  BufferPool* pool_;
  const ObjectSet* objects_meta_;  // for edge MBRs only
  std::vector<std::unique_ptr<RTree>> term_trees_;
  std::unique_ptr<ObjectFile> object_file_;
  uint64_t rtree_pages_ = 0;
};

}  // namespace dsks

#endif  // DSKS_INDEX_INVERTED_RTREE_H_
