#ifndef DSKS_INDEX_SIF_PARTITIONED_H_
#define DSKS_INDEX_SIF_PARTITIONED_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/partition.h"
#include "index/sif.h"

namespace dsks {

/// Configuration of the SIF-P partitioning pass.
struct SifPConfig {
  /// Maximum cuts per partitioned edge (3 in the paper's default setup).
  size_t max_cuts = 3;

  /// Only the edges whose object count ranks in this top fraction are
  /// partitioned (top 10% in §5).
  double heavy_edge_fraction = 0.10;

  /// Minimum objects an edge needs before partitioning is considered.
  size_t min_objects = 2;

  /// Produces the training query log for one edge, given the sorted term
  /// sets of the edge's objects in visiting order. Implementations cover
  /// the paper's SIF-P-Real / SIF-P-Freq / SIF-P-Rand variants (Fig. 10);
  /// see index/query_log.h.
  std::function<std::vector<LogQuery>(
      EdgeId, std::span<const std::vector<TermId>>)>
      log_provider;

  /// When true the exact DP (Algorithm 4) is used instead of the greedy
  /// heuristic; intended for ablation on small edges only.
  bool use_dp = false;
};

/// SIF-P (§3.3): SIF enhanced by splitting the object sequence of heavy
/// edges into virtual edges with their own signatures, trained against a
/// query log to minimize the false-hit cost ξ(Q, P).
class SifPartitionedIndex : public SifIndex {
 public:
  SifPartitionedIndex(BufferPool* pool, const ObjectSet& objects,
                      size_t vocab_size, const SifPConfig& config,
                      size_t min_postings = PostingFile::EntriesPerPage());

  std::string name() const override { return "SIF-P"; }

  size_t num_partitioned_edges() const { return partitions_.size(); }

  /// Milliseconds spent computing partitions (reported by the Fig. 6(b)
  /// construction-time comparison).
  double partition_build_millis() const { return partition_build_millis_; }

 protected:
  bool CheckSignature(EdgeId edge, std::span<const TermId> terms,
                      std::vector<PosRange>* ranges) override;

  uint64_t SummarySizeBytes() const override;

  /// A dynamically ingested object invalidates its edge's partition (the
  /// trained virtual edges no longer cover the new object safely); the
  /// edge falls back to plain SIF behaviour.
  void OnObjectAdded(ObjectId id, EdgeId edge,
                     std::span<const TermId> terms) override {
    partitions_.erase(edge);
    SifIndex::OnObjectAdded(id, edge, terms);
  }

 private:
  struct PartitionedEdge {
    EdgePartition partition;
    /// Number of objects on the edge.
    uint16_t num_objects = 0;
    /// Sorted union of terms per virtual edge.
    std::vector<std::vector<TermId>> ve_terms;
  };

  std::unordered_map<EdgeId, PartitionedEdge> partitions_;
  uint64_t partition_bytes_ = 0;
  double partition_build_millis_ = 0.0;
};

}  // namespace dsks

#endif  // DSKS_INDEX_SIF_PARTITIONED_H_
