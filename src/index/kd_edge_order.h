#ifndef DSKS_INDEX_KD_EDGE_ORDER_H_
#define DSKS_INDEX_KD_EDGE_ORDER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/road_network.h"
#include "graph/types.h"

namespace dsks {

/// KD-tree ordering of the edges of a road network, built by recursively
/// median-splitting the edge center points with alternating axes (§3.1:
/// "we recursively divide the edges by KD-tree partition method based on
/// the center points of the edges, and each leaf node corresponds to the
/// signature of an edge").
///
/// The ordering assigns every edge a *position*: the index of its leaf in
/// left-to-right order. A keyword's signature is then the set of positions
/// whose edges carry the keyword; because the KD layout keeps spatially
/// close edges in contiguous position ranges, the signature compacts well
/// ("compacting the tree node if all of its descendant nodes share the
/// same signature value"), which CompactedTrieNodes quantifies.
class KdEdgeOrder {
 public:
  explicit KdEdgeOrder(const RoadNetwork& net);

  /// Position (leaf rank) of edge `e` in the KD layout.
  uint32_t PositionOf(EdgeId e) const { return position_[e]; }

  /// Edge at KD position `pos`.
  EdgeId EdgeAt(uint32_t pos) const { return edge_at_[pos]; }

  size_t num_edges() const { return edge_at_.size(); }

  /// Number of nodes in the compacted signature trie for the given sorted
  /// set of positions: subtrees that are uniformly 0 or uniformly 1
  /// collapse to a single node. One bit per node approximates the size of
  /// the paper's compacted signature.
  uint64_t CompactedTrieNodes(std::span<const uint32_t> sorted_positions) const;

 private:
  void BuildRecursive(std::vector<EdgeId>* edges, size_t lo, size_t hi,
                      int axis, const RoadNetwork& net);

  uint64_t CompactedTrieNodesRecursive(std::span<const uint32_t> positions,
                                       uint32_t range_lo,
                                       uint32_t range_hi) const;

  std::vector<uint32_t> position_;
  std::vector<EdgeId> edge_at_;
};

}  // namespace dsks

#endif  // DSKS_INDEX_KD_EDGE_ORDER_H_
