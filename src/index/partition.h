#ifndef DSKS_INDEX_PARTITION_H_
#define DSKS_INDEX_PARTITION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace dsks {

/// A query-log entry used to train the §3.3 edge partitioning: a keyword
/// set and the probability the query is issued (Equation 6).
struct LogQuery {
  std::vector<TermId> terms;  // sorted unique
  double prob = 1.0;
};

/// A partition of the m objects on one edge into contiguous *virtual
/// edges*. `boundaries` holds the start index of every virtual edge except
/// the first (so `boundaries.size()` == number of cuts); virtual edge i
/// covers object indexes [start_i, start_{i+1}).
struct EdgePartition {
  std::vector<uint16_t> boundaries;

  size_t num_virtual_edges() const { return boundaries.size() + 1; }

  /// [start, end) object-index range of virtual edge `i` given `m` objects.
  void Range(size_t i, size_t m, size_t* start, size_t* end) const;
};

/// False-hit cost ξ(Q, P) (Equations 5-6) of partitioning `edge_objects`
/// (the sorted term set of each object on the edge, in visiting order)
/// with `partition`, under query log `log`. A virtual edge contributes its
/// object count for query q iff it passes the signature test (every term
/// of q appears on some object) but contains no object with all terms.
double PartitionCost(std::span<const std::vector<TermId>> edge_objects,
                     const EdgePartition& partition,
                     std::span<const LogQuery> log);

/// The greedy heuristic of §3.3: starting from the whole edge, repeatedly
/// adds the single cut that minimizes ξ(Q, P), stopping after `max_cuts`
/// cuts or when no cut strictly improves the cost. This is the variant the
/// paper uses in all experiments (up to two orders of magnitude faster
/// than the DP at similar quality).
EdgePartition GreedyPartition(std::span<const std::vector<TermId>> edge_objects,
                              std::span<const LogQuery> log, size_t max_cuts);

/// Algorithm 4: exact dynamic program over P*(i, j, c); O(c^2 m^3).
/// Returns a minimum-cost partition with *exactly* min(c, m-1) cuts unless
/// fewer cuts already achieve cost 0. Intended for small m (tests,
/// ablations).
EdgePartition DpPartition(std::span<const std::vector<TermId>> edge_objects,
                          std::span<const LogQuery> log, size_t cuts);

}  // namespace dsks

#endif  // DSKS_INDEX_PARTITION_H_
