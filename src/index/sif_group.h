#ifndef DSKS_INDEX_SIF_GROUP_H_
#define DSKS_INDEX_SIF_GROUP_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/sif.h"

namespace dsks {

/// SIF-G, the group-based alternative evaluated in Fig. 9: on top of SIF,
/// every pair of the top-x most frequent keywords acts as a combined term
/// whose "inverted list" keeps only the edges carrying an object that
/// contains *both* keywords. A query containing such a pair can skip any
/// edge absent from the pair's list.
///
/// The pair lists are much larger than SIF-P's signatures (the paper
/// grants SIF-G 10x the space and it still loses), which this class's
/// SizeBytes() makes visible.
class SifGroupIndex : public SifIndex {
 public:
  /// `num_frequent_terms`: x, the number of top-frequency keywords whose
  /// pairwise combinations are indexed.
  SifGroupIndex(BufferPool* pool, const ObjectSet& objects, size_t vocab_size,
                size_t num_frequent_terms,
                size_t min_postings = PostingFile::EntriesPerPage());

  std::string name() const override { return "SIF-G"; }

  /// Bytes occupied by the pairwise inverted lists alone.
  uint64_t pair_list_bytes() const { return pair_bytes_; }

  /// Size the pair lists *would* take for a given x, without building the
  /// index. Used by the Fig. 9 harness to pick x for a space budget.
  static uint64_t EstimatePairListBytes(const ObjectSet& objects,
                                        size_t vocab_size,
                                        size_t num_frequent_terms);

  size_t num_indexed_pairs() const { return pair_edges_.size(); }

 protected:
  bool CheckSignature(EdgeId edge, std::span<const TermId> terms,
                      std::vector<PosRange>* ranges) override;

  uint64_t SummarySizeBytes() const override {
    return SifIndex::SummarySizeBytes() + pair_bytes_;
  }

  void OnObjectAdded(ObjectId id, EdgeId edge,
                     std::span<const TermId> terms) override;

 private:
  static uint64_t PairKey(TermId a, TermId b) {
    return (static_cast<uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
  }

  /// Terms in the frequent set (sorted for binary search).
  std::vector<TermId> frequent_terms_;
  /// pair key -> sorted edge ids containing an object with both terms.
  std::unordered_map<uint64_t, std::vector<EdgeId>> pair_edges_;
  uint64_t pair_bytes_ = 0;
};

}  // namespace dsks

#endif  // DSKS_INDEX_SIF_GROUP_H_
