#include "index/posting_file.h"

#include <cstring>

#include "common/macros.h"
#include "storage/page.h"

namespace dsks {

namespace {

// Fixed 16-byte on-page posting record; pages are packed completely, the
// locator carries the run length so no page header is needed.
//   u32 object, u16 pos, u16 reserved, f64 w1
constexpr size_t kEntrySize = 16;
constexpr size_t kEntriesPerPage = kPageSize / kEntrySize;

PostingFile::Locator PackLocator(PageId page, uint32_t slot, uint32_t count) {
  return (static_cast<uint64_t>(page) << 32) |
         (static_cast<uint64_t>(slot & 0xFFFF) << 16) |
         static_cast<uint64_t>(count & 0xFFFF);
}

void UnpackLocator(PostingFile::Locator loc, PageId* page, uint32_t* slot,
                   uint32_t* count) {
  *page = static_cast<PageId>(loc >> 32);
  *slot = static_cast<uint32_t>((loc >> 16) & 0xFFFF);
  *count = static_cast<uint32_t>(loc & 0xFFFF);
}

void WriteEntry(char* page, uint32_t slot, const PostingFile::Entry& e) {
  char* base = page + slot * kEntrySize;
  std::memcpy(base, &e.object, 4);
  std::memcpy(base + 4, &e.pos, 2);
  uint16_t reserved = 0;
  std::memcpy(base + 6, &reserved, 2);
  std::memcpy(base + 8, &e.w1, 8);
}

PostingFile::Entry ReadEntry(const char* page, uint32_t slot) {
  PostingFile::Entry e;
  const char* base = page + slot * kEntrySize;
  std::memcpy(&e.object, base, 4);
  std::memcpy(&e.pos, base + 4, 2);
  std::memcpy(&e.w1, base + 8, 8);
  return e;
}

}  // namespace

size_t PostingFile::EntriesPerPage() { return kEntriesPerPage; }

PostingFile::Locator PostingFile::AppendRun(std::span<const Entry> entries) {
  DSKS_CHECK_MSG(entries.size() <= 0xFFFF, "posting run too long");
  DSKS_CHECK_MSG(!entries.empty(), "empty posting run");

  // A run must occupy consecutive page ids (the locator only records where
  // it starts). If it does not fit in the current page's remainder, start
  // on fresh pages allocated in one burst — that way no assumption is made
  // about allocations that happened between AppendRun calls (dynamic
  /// ingestion interleaves B+tree splits with posting appends).
  const size_t remainder =
      current_page_ == kInvalidPageId ? 0 : kEntriesPerPage - current_slot_;
  if (entries.size() > remainder) {
    const size_t pages =
        (entries.size() + kEntriesPerPage - 1) / kEntriesPerPage;
    PageId first = kInvalidPageId;
    for (size_t i = 0; i < pages; ++i) {
      PageId id;
      PageGuard guard = PageGuard::New(pool_, &id);
      guard.MarkDirty();
      if (i == 0) {
        first = id;
      } else {
        DSKS_CHECK_MSG(id == first + i,
                       "burst page allocation must be contiguous");
      }
      ++num_pages_;
    }
    current_page_ = first;
    current_slot_ = 0;
  }

  const PageId start_page = current_page_;
  const uint32_t start_slot = current_slot_;

  PageGuard guard = FetchForBuild(pool_, current_page_);
  for (const Entry& e : entries) {
    if (current_slot_ >= kEntriesPerPage) {
      guard.Release();
      ++current_page_;  // pre-allocated above
      current_slot_ = 0;
      guard = FetchForBuild(pool_, current_page_);
    }
    WriteEntry(guard.data(), current_slot_, e);
    guard.MarkDirty();
    ++current_slot_;
    ++num_entries_;
  }
  return PackLocator(start_page, start_slot,
                     static_cast<uint32_t>(entries.size()));
}

Status PostingFile::ReadRun(Locator locator, std::vector<Entry>* out) const {
  out->clear();
  PageId page;
  uint32_t slot;
  uint32_t count;
  UnpackLocator(locator, &page, &slot, &count);
  out->reserve(count);
  // A run's page extent is fully known from its locator, so a multi-page
  // run is fetched in batched chunks: one disk round trip per chunk on a
  // cold cache instead of one per page. The chunk bound keeps the number
  // of simultaneously pinned frames small next to the paper's 2% pool.
  constexpr size_t kChunkPages = 16;
  while (count > 0) {
    const size_t span_pages =
        (slot + count + kEntriesPerPage - 1) / kEntriesPerPage;
    const size_t n = span_pages < kChunkPages ? span_pages : kChunkPages;
    PageId ids[kChunkPages];
    char* datas[kChunkPages];
    for (size_t i = 0; i < n; ++i) {
      ids[i] = page + static_cast<PageId>(i);
    }
    DSKS_RETURN_IF_ERROR(pool_->FetchPages(std::span<const PageId>(ids, n),
                                           std::span<char*>(datas, n)));
    for (size_t i = 0; i < n; ++i) {
      while (slot < kEntriesPerPage && count > 0) {
        out->push_back(ReadEntry(datas[i], slot));
        ++slot;
        --count;
      }
      slot = 0;
    }
    for (size_t i = 0; i < n; ++i) {
      pool_->UnpinPage(ids[i], /*dirty=*/false);
    }
    page += static_cast<PageId>(n);
  }
  return Status::Ok();
}

void PostingFile::PrefetchRuns(std::span<const Locator> locators) const {
  // Bounded like the other speculative readers: enough for a keyword
  // conjunction's runs on one edge, small next to the paper's 2% pool.
  // An async disk engine completes the burst off-thread, so the cap
  // doubles — long multi-run conjunctions stay fully in flight.
  constexpr size_t kMaxPrefetchPagesSync = 32;
  constexpr size_t kMaxPrefetchPagesAsync = 64;
  const size_t cap = pool_->disk()->async_enabled() ? kMaxPrefetchPagesAsync
                                                    : kMaxPrefetchPagesSync;
  PageId pages[kMaxPrefetchPagesAsync];
  size_t n = 0;
  for (const Locator loc : locators) {
    PageId page;
    uint32_t slot;
    uint32_t count;
    UnpackLocator(loc, &page, &slot, &count);
    const size_t span_pages =
        (slot + count + kEntriesPerPage - 1) / kEntriesPerPage;
    for (size_t i = 0; i < span_pages && n < cap; ++i) {
      const PageId pid = page + static_cast<PageId>(i);
      bool seen = false;
      for (size_t j = 0; j < n; ++j) {
        if (pages[j] == pid) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        pages[n++] = pid;
      }
    }
    if (n >= cap) {
      break;
    }
  }
  if (n > 0) {
    pool_->Prefetch(std::span<const PageId>(pages, n));
  }
}

uint32_t PostingFile::RunLength(Locator locator) {
  return static_cast<uint32_t>(locator & 0xFFFF);
}

}  // namespace dsks
