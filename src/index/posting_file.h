#ifndef DSKS_INDEX_POSTING_FILE_H_
#define DSKS_INDEX_POSTING_FILE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "graph/types.h"
#include "storage/buffer_pool.h"

namespace dsks {

/// Append-only storage for inverted-file posting runs. A *run* is the list
/// of postings of one (keyword, edge) pair: every object on that edge that
/// contains the keyword, ordered by position along the edge. The
/// per-keyword B+trees (§3.1) map edges to run locators in this file.
///
/// Runs are packed back to back; a run may span consecutive pages, so all
/// AppendRun calls must happen in one exclusive build phase (no interleaved
/// page allocation on the same disk), which the builder enforces.
class PostingFile {
 public:
  /// One posting: the object, its rank along the edge (the visiting order
  /// used by the §3.3 partitioning), and its cost offset w(n1, o) from the
  /// edge's reference node. w(n2, o) is edge_weight - w1.
  struct Entry {
    ObjectId object = kInvalidObjectId;
    uint16_t pos = 0;
    double w1 = 0.0;
  };

  /// Opaque run locator: packs (first page, first slot, entry count).
  using Locator = uint64_t;

  explicit PostingFile(BufferPool* pool) : pool_(pool) {}

  PostingFile(const PostingFile&) = delete;
  PostingFile& operator=(const PostingFile&) = delete;
  PostingFile(PostingFile&&) = default;

  /// Appends a run (at most 65535 entries) and returns its locator.
  Locator AppendRun(std::span<const Entry> entries);

  /// Reads a whole run into `out` (cleared first). On a disk error `out`
  /// holds the entries read so far; discard it.
  Status ReadRun(Locator locator, std::vector<Entry>* out) const;

  /// Best-effort speculative read of several runs' pages as one batched
  /// request, so subsequent ReadRun calls hit the pool instead of paying
  /// one blocking miss per run. A run's page extent is fully determined by
  /// its locator, so no I/O is needed to plan the batch. Failures are
  /// dropped (never surfaced); the later ReadRun reports them.
  void PrefetchRuns(std::span<const Locator> locators) const;

  /// Number of entries in a run without reading it.
  static uint32_t RunLength(Locator locator);

  uint64_t num_pages() const { return num_pages_; }
  uint64_t num_entries() const { return num_entries_; }

  /// Entries that fit on one 4 KiB page.
  static size_t EntriesPerPage();

 private:
  BufferPool* pool_;
  PageId current_page_ = kInvalidPageId;
  uint32_t current_slot_ = 0;
  uint64_t num_pages_ = 0;
  uint64_t num_entries_ = 0;
};

}  // namespace dsks

#endif  // DSKS_INDEX_POSTING_FILE_H_
