#include "index/partition.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <utility>

#include "common/macros.h"

namespace dsks {

namespace {

constexpr double kInfCost = std::numeric_limits<double>::infinity();

/// ξ(q, e') of a single virtual edge covering object indexes [lo, hi]
/// (inclusive): its object count if it passes the signature test but no
/// object matches all query terms, else 0.
double VirtualEdgeCost(std::span<const std::vector<TermId>> objs, size_t lo,
                       size_t hi, const LogQuery& q) {
  bool some_object_full = false;
  for (size_t i = lo; i <= hi && !some_object_full; ++i) {
    some_object_full = std::includes(objs[i].begin(), objs[i].end(),
                                     q.terms.begin(), q.terms.end());
  }
  if (some_object_full) {
    return 0.0;  // true hit
  }
  // Signature test: every query term present on some object in the range.
  for (TermId t : q.terms) {
    bool present = false;
    for (size_t i = lo; i <= hi && !present; ++i) {
      present = std::binary_search(objs[i].begin(), objs[i].end(), t);
    }
    if (!present) {
      return 0.0;  // fails the signature test, nothing is loaded
    }
  }
  return static_cast<double>(hi - lo + 1);  // false hit: all objects loaded
}

/// ξ(Q, [lo..hi]) summed over the log with probabilities.
double RangeCost(std::span<const std::vector<TermId>> objs, size_t lo,
                 size_t hi, std::span<const LogQuery> log) {
  double total = 0.0;
  for (const LogQuery& q : log) {
    total += q.prob * VirtualEdgeCost(objs, lo, hi, q);
  }
  return total;
}

}  // namespace

void EdgePartition::Range(size_t i, size_t m, size_t* start,
                          size_t* end) const {
  DSKS_CHECK(i < num_virtual_edges());
  *start = i == 0 ? 0 : boundaries[i - 1];
  *end = i == boundaries.size() ? m : boundaries[i];
}

double PartitionCost(std::span<const std::vector<TermId>> edge_objects,
                     const EdgePartition& partition,
                     std::span<const LogQuery> log) {
  const size_t m = edge_objects.size();
  DSKS_CHECK(m > 0);
  double total = 0.0;
  for (size_t i = 0; i < partition.num_virtual_edges(); ++i) {
    size_t start = 0;
    size_t end = 0;
    partition.Range(i, m, &start, &end);
    DSKS_CHECK_MSG(start < end, "empty virtual edge");
    total += RangeCost(edge_objects, start, end - 1, log);
  }
  return total;
}

EdgePartition GreedyPartition(
    std::span<const std::vector<TermId>> edge_objects,
    std::span<const LogQuery> log, size_t max_cuts) {
  const size_t m = edge_objects.size();
  EdgePartition best;
  if (m <= 1) {
    return best;
  }
  // Incremental evaluation (the O(c·m·(s_e + |Q|·q_t)) greedy of §3.3):
  // splitting one virtual edge only changes that edge's contribution, so
  // each candidate cut costs two RangeCost calls instead of re-evaluating
  // the whole partition.
  auto range_cost = [&](size_t start, size_t end) {
    return RangeCost(edge_objects, start, end - 1, log);
  };
  // Virtual edges as (start, end, cost), kept sorted by start.
  struct Ve {
    size_t start;
    size_t end;
    double cost;
  };
  std::vector<Ve> ves = {{0, m, range_cost(0, m)}};

  for (size_t iter = 0; iter < max_cuts; ++iter) {
    double best_gain = 0.0;
    size_t best_ve = 0;
    size_t best_cut = 0;
    double best_left = 0.0;
    double best_right = 0.0;
    for (size_t v = 0; v < ves.size(); ++v) {
      const Ve& ve = ves[v];
      if (ve.cost == 0.0 || ve.end - ve.start < 2) {
        continue;  // splitting a zero-cost edge can only hurt
      }
      for (size_t cut = ve.start + 1; cut < ve.end; ++cut) {
        const double left = range_cost(ve.start, cut);
        const double right = range_cost(cut, ve.end);
        const double gain = ve.cost - left - right;
        if (gain > best_gain) {
          best_gain = gain;
          best_ve = v;
          best_cut = cut;
          best_left = left;
          best_right = right;
        }
      }
    }
    if (best_gain <= 0.0) {
      break;  // no strictly improving cut
    }
    const Ve old = ves[best_ve];
    ves[best_ve] = Ve{old.start, best_cut, best_left};
    ves.insert(ves.begin() + static_cast<ptrdiff_t>(best_ve) + 1,
               Ve{best_cut, old.end, best_right});
  }

  for (size_t v = 1; v < ves.size(); ++v) {
    best.boundaries.push_back(static_cast<uint16_t>(ves[v].start));
  }
  return best;
}

EdgePartition DpPartition(std::span<const std::vector<TermId>> edge_objects,
                          std::span<const LogQuery> log, size_t cuts) {
  const size_t m = edge_objects.size();
  EdgePartition result;
  if (m <= 1 || cuts == 0) {
    return result;
  }
  const size_t max_c = std::min(cuts, m - 1);

  // P[c][i][j]: minimal cost of splitting objects [i..j] into c+1 virtual
  // edges (Equations 7-9); choice[c][i][j] records the fixed cut position k
  // and the left-side cut count v that achieve it.
  auto idx = [m](size_t i, size_t j) { return i * m + j; };
  std::vector<std::vector<double>> cost(
      max_c + 1, std::vector<double>(m * m, kInfCost));
  std::vector<std::vector<std::pair<uint16_t, uint16_t>>> choice(
      max_c + 1, std::vector<std::pair<uint16_t, uint16_t>>(m * m, {0, 0}));

  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i; j < m; ++j) {
      cost[0][idx(i, j)] = RangeCost(edge_objects, i, j, log);
    }
  }
  for (size_t c = 1; c <= max_c; ++c) {
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = i + c; j < m; ++j) {
        double best = kInfCost;
        std::pair<uint16_t, uint16_t> best_choice = {0, 0};
        for (size_t k = i; k < j; ++k) {
          // Q*(i,j,k,c): cut after object k, distribute remaining cuts.
          for (size_t v = 0; v < c; ++v) {
            const double left = cost[v][idx(i, k)];
            const double right = cost[c - 1 - v][idx(k + 1, j)];
            if (left == kInfCost || right == kInfCost) {
              continue;
            }
            if (left + right < best) {
              best = left + right;
              best_choice = {static_cast<uint16_t>(k),
                             static_cast<uint16_t>(v)};
            }
          }
        }
        cost[c][idx(i, j)] = best;
        choice[c][idx(i, j)] = best_choice;
      }
    }
  }

  // The "number of cuts allowed" semantics: pick the best c in [0, max_c].
  size_t best_c = 0;
  for (size_t c = 1; c <= max_c; ++c) {
    if (cost[c][idx(0, m - 1)] < cost[best_c][idx(0, m - 1)]) {
      best_c = c;
    }
  }

  // Reconstruct the cut positions.
  std::vector<uint16_t> bounds;
  std::function<void(size_t, size_t, size_t)> rebuild = [&](size_t i, size_t j,
                                                            size_t c) {
    if (c == 0) {
      return;
    }
    auto [k, v] = choice[c][idx(i, j)];
    bounds.push_back(static_cast<uint16_t>(k + 1));
    rebuild(i, k, v);
    rebuild(k + 1, j, c - 1 - v);
  };
  rebuild(0, m - 1, best_c);
  std::sort(bounds.begin(), bounds.end());
  result.boundaries = std::move(bounds);
  return result;
}

}  // namespace dsks
